// The gemmtune command-line tool; see src/cli/cli.hpp for commands.
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return gemmtune::cli::run(args, std::cout);
}
