#!/usr/bin/env bash
# CI-style verification: the tier-1 build + full test suite, then a
# ThreadSanitizer build of the concurrency-sensitive tests (the parallel
# execution layer and the work-group-parallel interpreter).
#
# Usage: tools/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== ThreadSanitizer: parallel_test + kernelir_test =="
cmake -B build-tsan -S . -DGEMMTUNE_TSAN=ON >/dev/null
cmake --build build-tsan -j "$JOBS" --target parallel_test kernelir_test
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -R '^(parallel_test|kernelir_test)$'

echo "== all checks passed =="
