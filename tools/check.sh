#!/usr/bin/env bash
# CI-style verification: the tier-1 build + full test suite, then a
# ThreadSanitizer build of the concurrency-sensitive tests (the parallel
# execution layer, the work-group-parallel interpreter, the native JIT
# program cache, the trace collector, and the concurrent serving core).
#
# Usage: tools/check.sh [--tier1-only|--tsan-only] [jobs]
#
# Environment:
#   CTEST_PARALLEL_LEVEL  test-run parallelism (default: the jobs value)
#   WERROR=1              configure with -DGEMMTUNE_WERROR=ON (CI sets this)
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TIER1=1
RUN_TSAN=1
case "${1:-}" in
  --tier1-only) RUN_TSAN=0; shift ;;
  --tsan-only)  RUN_TIER1=0; shift ;;
esac

# Portable core count: nproc is Linux-only.
detect_jobs() {
  if command -v nproc >/dev/null 2>&1; then nproc
  elif getconf _NPROCESSORS_ONLN >/dev/null 2>&1; then
    getconf _NPROCESSORS_ONLN
  elif sysctl -n hw.ncpu >/dev/null 2>&1; then
    sysctl -n hw.ncpu
  else echo 2
  fi
}

JOBS="${1:-$(detect_jobs)}"
TEST_JOBS="${CTEST_PARALLEL_LEVEL:-$JOBS}"
CMAKE_ARGS=()
if [[ "${WERROR:-0}" == "1" ]]; then
  CMAKE_ARGS+=(-DGEMMTUNE_WERROR=ON)
fi

if [[ "$RUN_TIER1" == "1" ]]; then
  echo "== tier-1: build + full test suite =="
  cmake -B build -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}" >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$TEST_JOBS"
fi

if [[ "$RUN_TSAN" == "1" ]]; then
  echo "== ThreadSanitizer: parallel_test + kernelir_test + vm_test + native_test + trace_test + servecore_test =="
  cmake -B build-tsan -S . -DGEMMTUNE_TSAN=ON \
    "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}" >/dev/null
  cmake --build build-tsan -j "$JOBS" \
    --target parallel_test kernelir_test vm_test native_test trace_test \
             servecore_test
  TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-tsan --output-on-failure \
    -R '^(parallel_test|kernelir_test|vm_test|native_test|trace_test|servecore_test)$'
fi

echo "== all checks passed =="
