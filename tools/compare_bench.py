#!/usr/bin/env python3
"""DEPRECATED shim: forwards to `gemmtune bench-db compare`.

The comparison logic moved into the gemmtune binary (src/benchdb) so the
same code also powers the experiment database's commit-vs-commit and
trajectory gates. This wrapper keeps old invocations working; call

    $BUILD_DIR/tools/gemmtune bench-db compare BASELINE CURRENT --rtol X

directly instead. The BUILD_DIR environment variable (default: build)
locates the binary.
"""

import os
import subprocess
import sys


def main():
    build_dir = os.environ.get("BUILD_DIR", "build")
    tool = os.environ.get(
        "GEMMTUNE", os.path.join(build_dir, "tools", "gemmtune"))
    if not os.access(tool, os.X_OK):
        print(f"compare_bench.py: {tool} not found or not executable; "
              "build the gemmtune_tool target (or set BUILD_DIR/GEMMTUNE)",
              file=sys.stderr)
        return 2
    print("compare_bench.py is deprecated; use "
          f"'{tool} bench-db compare' instead", file=sys.stderr)
    return subprocess.call([tool, "bench-db", "compare"] + sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
