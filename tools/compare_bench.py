#!/usr/bin/env python3
"""Compare a bench result JSON against its checked-in baseline.

Both files follow the "gemmtune-bench-v1" schema emitted by bench_util's
reporter, the "gemmtune-serve-v1" schema emitted by `gemmtune serve`
(which carries only a "scalars" section plus workload metadata), or the
"gemmtune-dist-v1" schema emitted by `gemmtune dist`. Only the
deterministic sections are compared — "comparisons" (matched by
section+label), "series" (matched by section+name, point by point) and
"scalars" (matched by name) — never the "metrics" section, whose span
durations are wall-clock. Numbers must agree within a relative
tolerance; missing or extra entries fail too, so a bench that silently
drops a series trips the gate.

Usage: compare_bench.py BASELINE CURRENT [--rtol X]
Exit status: 0 when everything matches, 1 on any regression/mismatch.
"""

import argparse
import json
import sys


def close(a, b, rtol):
    if a == b:
        return True
    denom = max(abs(a), abs(b))
    return denom > 0 and abs(a - b) / denom <= rtol


def key_cmp(entry):
    return (entry.get("section", ""), entry.get("label", ""))


def key_series(entry):
    return (entry.get("section", ""), entry.get("name", ""))


def index(entries, keyfn):
    out = {}
    for e in entries:
        out[keyfn(e)] = e
    return out


def diff_maps(kind, base, cur, errors):
    for k in base:
        if k not in cur:
            errors.append(f"{kind} {k}: missing from current result")
    for k in cur:
        if k not in base:
            errors.append(f"{kind} {k}: not in baseline (update baselines?)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--rtol", type=float, default=1e-4,
                    help="relative tolerance (default 1e-4)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    known_schemas = {"gemmtune-bench-v1", "gemmtune-serve-v1",
                     "gemmtune-dist-v1"}
    errors = []
    for doc, which in ((base, args.baseline), (cur, args.current)):
        if doc.get("schema") not in known_schemas:
            errors.append(f"{which}: unexpected schema {doc.get('schema')!r}")
    if base.get("schema") != cur.get("schema"):
        errors.append(
            f"schema mismatch: baseline {base.get('schema')!r} vs "
            f"current {cur.get('schema')!r}")
    if errors:
        print("\n".join(errors))
        return 1

    bcomp = index(base.get("comparisons", []), key_cmp)
    ccomp = index(cur.get("comparisons", []), key_cmp)
    diff_maps("comparison", bcomp, ccomp, errors)
    for k, b in bcomp.items():
        c = ccomp.get(k)
        if c is None:
            continue
        for field in ("paper", "measured"):
            if not close(b[field], c[field], args.rtol):
                errors.append(
                    f"comparison {k} {field}: baseline {b[field]:.6g} vs "
                    f"current {c[field]:.6g}")

    bser = index(base.get("series", []), key_series)
    cser = index(cur.get("series", []), key_series)
    diff_maps("series", bser, cser, errors)
    for k, b in bser.items():
        c = cser.get(k)
        if c is None:
            continue
        bp, cp = b["points"], c["points"]
        if [p[0] for p in bp] != [p[0] for p in cp]:
            errors.append(f"series {k}: size grid changed")
            continue
        for (n, bg), (_, cg) in zip(bp, cp):
            if not close(bg, cg, args.rtol):
                errors.append(
                    f"series {k} at N={n}: baseline {bg:.6g} vs "
                    f"current {cg:.6g}")

    bsc = base.get("scalars", {})
    csc = cur.get("scalars", {})
    diff_maps("scalar", bsc, csc, errors)
    for k, v in bsc.items():
        if k in csc and not close(v, csc[k], args.rtol):
            errors.append(
                f"scalar {k}: baseline {v:.6g} vs current {csc[k]:.6g}")

    name = base.get("bench", base.get("schema", "?"))
    if errors:
        print(f"[{name}] {len(errors)} mismatch(es) vs baseline:")
        for e in errors:
            print(f"  {e}")
        return 1
    n_items = len(bcomp) + len(bser) + len(bsc)
    print(f"[{name}] OK: {n_items} baseline entries match "
          f"(rtol {args.rtol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
