#!/usr/bin/env bash
# Bench regression smoke: run a small, fast, deterministic subset of the
# reproduction benches, emit their machine-readable result files, and gate
# them against the checked-in baselines in bench/baselines/ with
# tools/compare_bench.py. CI runs this as its third job.
#
# Usage: tools/bench_smoke.sh [--update]
#   --update   regenerate bench/baselines/ from the current build instead
#              of comparing (commit the result)
#
# Environment:
#   BUILD_DIR  build tree with compiled benches (default: build)
#   OUT_DIR    where to put the fresh results (default: $BUILD_DIR/bench-smoke)
#   RTOL       relative tolerance for the comparison (default: 1e-4)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench-smoke}"
RTOL="${RTOL:-1e-4}"
BASELINES=bench/baselines

# Model-driven benches (pure functions of the device tables, so the
# baselines are tight) plus the micro benches, whose gated scalars are
# deterministic pass/fail bits, dynamic counters and exact element sums —
# wall-clock numbers live in the (uncompared) metrics section.
SMOKE="table3_impl_vs_vendor fig9_tahiti fig10_nvidia smallsize_direct \
micro_interp micro_layout"

UPDATE=0
if [[ "${1:-}" == "--update" ]]; then UPDATE=1; fi

mkdir -p "$OUT_DIR"
status=0
for b in $SMOKE; do
  bin="$BUILD_DIR/bench/bench_$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (build the repo first)" >&2
    exit 2
  fi
  # The micro benches embed google-benchmark timing loops; a short
  # min_time keeps the smoke fast (their gated scalars don't depend on it).
  extra=""
  case "$b" in micro_*) extra="--benchmark_min_time=0.05" ;; esac
  "$bin" $extra --json "$OUT_DIR/$b.json" > "$OUT_DIR/$b.txt"
  if [[ "$UPDATE" == "1" ]]; then
    mkdir -p "$BASELINES"
    cp "$OUT_DIR/$b.json" "$BASELINES/$b.json"
    echo "[$b] baseline updated"
  else
    python3 tools/compare_bench.py "$BASELINES/$b.json" "$OUT_DIR/$b.json" \
      --rtol "$RTOL" || status=1
  fi
done

# Native-backend leg: re-run the micro_interp bench in --native mode. It
# JITs the Table II kernel through the host toolchain into a fresh
# GEMMTUNE_JIT_CACHE directory (so the .so landing there proves the disk
# cache works end to end) and gates the three-way differential bits plus
# the native >= 3x-over-bytecode speedup bit against
# micro_interp_native.json. The bench exits 3 when no usable host
# compiler exists; that skips the leg instead of failing it.
NATIVE_CACHE="$OUT_DIR/jit-cache"
rm -rf "$NATIVE_CACHE"
mkdir -p "$NATIVE_CACHE"
native_rc=0
GEMMTUNE_JIT_CACHE="$NATIVE_CACHE" "$BUILD_DIR/bench/bench_micro_interp" \
  --native --benchmark_min_time=0.05 \
  --json "$OUT_DIR/micro_interp_native.json" \
  > "$OUT_DIR/micro_interp_native.txt" || native_rc=$?
if [[ "$native_rc" == "3" ]]; then
  echo "[micro_interp_native] skipped: no usable host toolchain"
elif [[ "$native_rc" != "0" ]]; then
  echo "error: bench_micro_interp --native failed (rc $native_rc)" >&2
  status=1
else
  if ! ls "$NATIVE_CACHE"/gemmtune-*.so >/dev/null 2>&1; then
    echo "[micro_interp_native] no .so landed in GEMMTUNE_JIT_CACHE" >&2
    status=1
  fi
  if [[ "$UPDATE" == "1" ]]; then
    cp "$OUT_DIR/micro_interp_native.json" "$BASELINES/micro_interp_native.json"
    echo "[micro_interp_native] baseline updated"
  else
    python3 tools/compare_bench.py "$BASELINES/micro_interp_native.json" \
      "$OUT_DIR/micro_interp_native.json" --rtol "$RTOL" || status=1
  fi
fi

if [[ "$UPDATE" == "0" && "$status" != "0" ]]; then
  echo "bench smoke: regressions detected (see above)" >&2
fi
exit "$status"
