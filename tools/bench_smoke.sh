#!/usr/bin/env bash
# Bench regression smoke: run a small, fast, deterministic subset of the
# reproduction benches, emit their machine-readable result files, ingest
# every report into a scratch bench-db, and gate them against the
# checked-in baselines in bench/baselines/ with `gemmtune bench-db
# compare`. CI runs this as its third job.
#
# Usage: tools/bench_smoke.sh [--update | --reseed-db]
#   --update     regenerate bench/baselines/ from the current build
#                instead of comparing (commit the result)
#   --reseed-db  regenerate the committed trajectory seed bench/db/ci.jsonl
#                from the current build: five synthetic commits seed-1..5
#                of every smoke report, with a pinned hostname and thread
#                count so the artifact is machine-independent (commit it)
#
# Environment:
#   BUILD_DIR  build tree with compiled benches (default: build)
#   OUT_DIR    where to put the fresh results (default: $BUILD_DIR/bench-smoke)
#   RTOL       relative tolerance for the comparison (default: 1e-4)
#   GEMMTUNE   gemmtune binary (default: $BUILD_DIR/tools/gemmtune)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-$BUILD_DIR/bench-smoke}"
RTOL="${RTOL:-1e-4}"
GEMMTUNE="${GEMMTUNE:-$BUILD_DIR/tools/gemmtune}"
BASELINES=bench/baselines
SMOKE_DB="$OUT_DIR/smoke.jsonl"
CI_DB=bench/db/ci.jsonl

# Model-driven benches (pure functions of the device tables, so the
# baselines are tight) plus the micro benches, whose gated scalars are
# deterministic pass/fail bits, dynamic counters and exact element sums —
# wall-clock numbers live in the (uncompared) metrics section. serve_core
# follows the same contract: its virtual-mode differential and overload
# accounting are exact, and the realtime >= 1.5x stress result is gated
# as a bit with the raw wall-clock numbers in gauges. strategy_quality
# gates the guided-search acceptance criterion (model_topk and anneal
# match the exhaustive winner at <= 10% of its measurements) and exits
# non-zero when a strategy regresses below the exhaustive bar.
SMOKE="table3_impl_vs_vendor fig9_tahiti fig10_nvidia smallsize_direct \
micro_interp micro_layout serve_core strategy_quality"

MODE=check
case "${1:-}" in
  --update) MODE=update ;;
  --reseed-db) MODE=reseed ;;
  "") ;;
  *) echo "usage: tools/bench_smoke.sh [--update | --reseed-db]" >&2; exit 2 ;;
esac

if [[ ! -x "$GEMMTUNE" ]]; then
  echo "error: $GEMMTUNE not built (build the gemmtune_tool target first)" >&2
  exit 2
fi

# The reseed artifact is committed, so pin every machine-dependent meta
# field the reports would otherwise pick up from this host.
if [[ "$MODE" == "reseed" ]]; then
  export GEMMTUNE_HOSTNAME=ci-seed
  export GEMMTUNE_THREADS=1
fi

mkdir -p "$OUT_DIR"
rm -f "$SMOKE_DB"
status=0
reports=()
for b in $SMOKE; do
  bin="$BUILD_DIR/bench/bench_$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (build the repo first)" >&2
    exit 2
  fi
  # The micro benches embed google-benchmark timing loops; a short
  # min_time keeps the smoke fast (their gated scalars don't depend on it).
  extra=""
  case "$b" in
    micro_*) extra="--benchmark_min_time=0.05" ;;
    # Smaller space (800 candidates, budget 80 = 10%) keeps the smoke
    # fast; the acceptance gate is identical to the full-size run.
    strategy_quality) extra="800 80" ;;
  esac
  "$bin" $extra --json "$OUT_DIR/$b.json" > "$OUT_DIR/$b.txt"
  reports+=("$OUT_DIR/$b.json")
  if [[ "$MODE" == "update" ]]; then
    mkdir -p "$BASELINES"
    cp "$OUT_DIR/$b.json" "$BASELINES/$b.json"
    echo "[$b] baseline updated"
  elif [[ "$MODE" == "check" ]]; then
    "$GEMMTUNE" bench-db compare "$BASELINES/$b.json" "$OUT_DIR/$b.json" \
      --rtol "$RTOL" || status=1
  fi
done

# Native-backend leg: re-run the micro_interp bench in --native mode. It
# JITs the Table II kernel through the host toolchain into a fresh
# GEMMTUNE_JIT_CACHE directory (so the .so landing there proves the disk
# cache works end to end) and gates the three-way differential bits plus
# the native >= 3x-over-bytecode speedup bit against
# micro_interp_native.json. The bench exits 3 when no usable host
# compiler exists; that skips the leg instead of failing it.
NATIVE_CACHE="$OUT_DIR/jit-cache"
rm -rf "$NATIVE_CACHE"
mkdir -p "$NATIVE_CACHE"
native_rc=0
GEMMTUNE_JIT_CACHE="$NATIVE_CACHE" "$BUILD_DIR/bench/bench_micro_interp" \
  --native --benchmark_min_time=0.05 \
  --json "$OUT_DIR/micro_interp_native.json" \
  > "$OUT_DIR/micro_interp_native.txt" || native_rc=$?
if [[ "$native_rc" == "3" ]]; then
  echo "[micro_interp_native] skipped: no usable host toolchain"
elif [[ "$native_rc" != "0" ]]; then
  echo "error: bench_micro_interp --native failed (rc $native_rc)" >&2
  status=1
else
  if ! ls "$NATIVE_CACHE"/gemmtune-*.so >/dev/null 2>&1; then
    echo "[micro_interp_native] no .so landed in GEMMTUNE_JIT_CACHE" >&2
    status=1
  fi
  reports+=("$OUT_DIR/micro_interp_native.json")
  if [[ "$MODE" == "update" ]]; then
    cp "$OUT_DIR/micro_interp_native.json" "$BASELINES/micro_interp_native.json"
    echo "[micro_interp_native] baseline updated"
  elif [[ "$MODE" == "check" ]]; then
    "$GEMMTUNE" bench-db compare "$BASELINES/micro_interp_native.json" \
      "$OUT_DIR/micro_interp_native.json" --rtol "$RTOL" || status=1
  fi
fi

# Concurrent-serving stress leg: a sustained overload workload through
# the async core in virtual mode (deterministic at any shard / thread
# count), so the serve report's throughput, shed counters and
# p50/p99/p999 tail percentiles ride the same baseline + trajectory gates
# as the bench reports. The differential run doubles as a correctness
# smoke: serial and async cores must agree exactly.
SERVE_WL="requests=500,seed=23,rate=120000,max_batch=8,queue=32"
SERVE_WL="$SERVE_WL,devices=Tahiti+Kepler+Cayman+SandyBridge"
"$GEMMTUNE" serve --workload "$SERVE_WL" --core diff \
  > "$OUT_DIR/serve_stress_diff.txt"
grep -q "cores agree: PASS" "$OUT_DIR/serve_stress_diff.txt"
"$GEMMTUNE" serve --workload "$SERVE_WL" --core async --shards 4 \
  --report "$OUT_DIR/serve_stress.json" > "$OUT_DIR/serve_stress.txt"
reports+=("$OUT_DIR/serve_stress.json")
if [[ "$MODE" == "update" ]]; then
  cp "$OUT_DIR/serve_stress.json" "$BASELINES/serve_stress.json"
  echo "[serve_stress] baseline updated"
elif [[ "$MODE" == "check" ]]; then
  "$GEMMTUNE" bench-db compare "$BASELINES/serve_stress.json" \
    "$OUT_DIR/serve_stress.json" --rtol "$RTOL" || status=1
fi

if [[ "$MODE" == "reseed" ]]; then
  # Five synthetic commits of the identical deterministic results: the
  # trajectory the CI gate starts from until real history accumulates.
  mkdir -p "$(dirname "$CI_DB")"
  rm -f "$CI_DB"
  for i in 1 2 3 4 5; do
    "$GEMMTUNE" bench-db ingest "${reports[@]}" --db "$CI_DB" \
      --commit "seed-$i" --time "$i"
  done
  echo "reseeded $CI_DB ($(wc -l < "$CI_DB") records)"
  exit 0
fi

# Every report of this run also lands in a scratch experiment database,
# which doubles as an ingest smoke and gives one queryable record set.
"$GEMMTUNE" bench-db ingest "${reports[@]}" --db "$SMOKE_DB"
"$GEMMTUNE" bench-db query --db "$SMOKE_DB"

if [[ "$MODE" == "check" && "$status" != "0" ]]; then
  echo "bench smoke: regressions detected (see above)" >&2
fi
exit "$status"
