// Performance-model tests:
//  * every Table II parameter set validates on its device,
//  * static work analysis exactly matches the interpreter's dynamic
//    counters (so the model times the kernels the generator emits),
//  * the solved anchors reproduce the paper's Table II GFlop/s,
//  * the qualitative findings of Section IV-A hold in the model.
#include <gtest/gtest.h>

#include <cstring>

#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/interp.hpp"
#include "perfmodel/model.hpp"
#include "perfmodel/statics.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::Algorithm;
using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;
using perfmodel::PerfModel;
using simcl::DeviceId;

TEST(PaperKernels, AllTableIIEntriesValidateOnTheirDevice) {
  for (DeviceId id : simcl::all_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto entry = codegen::table2_entry(id, prec);
      const auto why = validate(entry.params, simcl::device_spec(id));
      EXPECT_EQ(why, std::nullopt)
          << simcl::to_string(id) << " " << to_string(prec) << ": "
          << why.value_or("") << "\n  " << entry.params.summary();
      EXPECT_GT(entry.max_gflops, 0);
    }
  }
}

// ---- statics vs. interpreter ------------------------------------------------

ir::Counters interpret_counts(const KernelParams& p, std::int64_t Mp,
                              std::int64_t Np, std::int64_t Kp) {
  simcl::Context ctx(simcl::device_spec(DeviceId::Tahiti));
  const int es = element_bytes(p.prec);
  auto dA = ctx.create_buffer(static_cast<std::size_t>(Mp * Kp * es));
  auto dB = ctx.create_buffer(static_cast<std::size_t>(Kp * Np * es));
  auto dC = ctx.create_buffer(static_cast<std::size_t>(Mp * Np * es));
  ir::Kernel k = codegen::generate_gemm_kernel(p);
  const auto geo = codegen::launch_geometry(p, Mp, Np);
  std::vector<ir::ArgValue> args(8);
  args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[GemmKernelArgs::M] = ir::ArgValue::of_int(Mp);
  args[GemmKernelArgs::N] = ir::ArgValue::of_int(Np);
  args[GemmKernelArgs::K] = ir::ArgValue::of_int(Kp);
  args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.0);
  args[GemmKernelArgs::beta] = ir::ArgValue::of_float(0.0);
  return ir::launch(k, geo.global, geo.local, args);
}

class StaticsMatch : public ::testing::TestWithParam<KernelParams> {};

TEST_P(StaticsMatch, CountersAgree) {
  const KernelParams p = GetParam();
  const std::int64_t Mp = 2 * p.Mwg, Np = 2 * p.Nwg, Kp = 3 * p.Kwg;
  const auto st = perfmodel::analyze(p, Mp, Np, Kp);
  const auto dyn = interpret_counts(p, Mp, Np, Kp);
  EXPECT_EQ(st.flops, dyn.flops) << p.summary();
  EXPECT_EQ(st.mads, dyn.mads) << p.summary();
  EXPECT_EQ(st.global_load_bytes(),
            dyn.global_load_bytes) << p.summary();
  EXPECT_EQ(st.c_global_store_bytes, dyn.global_store_bytes) << p.summary();
  EXPECT_EQ(st.local_load_bytes, dyn.local_load_bytes) << p.summary();
  EXPECT_EQ(st.local_store_bytes, dyn.local_store_bytes) << p.summary();
  EXPECT_EQ(st.barriers, dyn.barriers) << p.summary();
  EXPECT_EQ(static_cast<std::uint64_t>(st.work_groups), dyn.work_groups);
}

std::vector<KernelParams> statics_cases() {
  std::vector<KernelParams> v;
  for (Algorithm algo : {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
    for (int share = 0; share < 4; ++share) {
      if (algo != Algorithm::BA && share == 0) continue;
      KernelParams p;
      p.prec = share % 2 ? Precision::SP : Precision::DP;
      p.Mwg = 8;
      p.Nwg = 8;
      p.Kwg = 4;
      p.MdimC = p.NdimC = 4;
      p.MdimA = p.NdimB = 8;
      p.Kwi = 2;
      p.vw = 2;
      p.algo = algo;
      p.share_a = (share & 1) != 0;
      p.share_b = (share & 2) != 0;
      v.push_back(p);
    }
  }
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StaticsMatch,
                         ::testing::ValuesIn(statics_cases()));

// ---- anchors reproduce Table II ------------------------------------------------

TEST(PerfModel, AnchorsReproduceTableII) {
  for (DeviceId id : simcl::evaluation_devices()) {
    PerfModel model(id);
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto entry = codegen::table2_entry(id, prec);
      const std::int64_t n = model.stage1_size(entry.params);
      const auto e = model.kernel_estimate(entry.params, n, n, n);
      ASSERT_TRUE(e.ok) << simcl::to_string(id) << ": " << e.reason;
      EXPECT_NEAR(e.gflops, entry.max_gflops, 0.02 * entry.max_gflops)
          << simcl::to_string(id) << " " << to_string(prec);
    }
  }
}

TEST(PerfModel, EfficiencyBelowBoostedPeak) {
  for (DeviceId id : simcl::evaluation_devices()) {
    PerfModel model(id);
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto entry = codegen::table2_entry(id, prec);
      const std::int64_t n = model.stage1_size(entry.params);
      const auto e = model.kernel_estimate(entry.params, n, n, n);
      const bool dp = prec == Precision::DP;
      EXPECT_LE(e.gflops,
                model.spec().peak_gflops(dp) * 1.001)
          << simcl::to_string(id);
    }
  }
}

// ---- qualitative paper findings -------------------------------------------------

TEST(PerfModel, PerformanceGrowsWithProblemSizeToSaturation) {
  PerfModel model(DeviceId::Tahiti);
  const auto p = codegen::table2_entry(DeviceId::Tahiti, Precision::DP).params;
  const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);
  double prev = 0;
  for (std::int64_t n = lcm; n <= 8 * lcm; n += lcm) {
    const double g = model.kernel_gflops(p, n);
    EXPECT_GT(g, 0.65 * prev) << n;  // roughly monotone ramp
    prev = g;
  }
  // Small problems far below the plateau.
  EXPECT_LT(model.kernel_gflops(p, lcm), 0.9 * prev);
}

TEST(PerfModel, KeplerSgemmLosesWithoutLocalMemory) {
  // Section IV-A: Kepler SGEMM drops from 1440 to ~1150 GFlop/s when local
  // memory is not used for both matrices. The paper's 1150 is the best
  // no-local kernel the tuner can find, so compare against a small
  // hand-picked set of strong no-local candidates (big register tiles that
  // minimize the L1 stream).
  PerfModel model(DeviceId::Kepler);
  const auto seed = codegen::table2_entry(DeviceId::Kepler, Precision::SP);
  const std::int64_t n = model.stage1_size(seed.params);
  const double with_local =
      model.kernel_estimate(seed.params, n, n, n).gflops;
  double without = 0;
  for (int mwi : {4, 8}) {
    for (int nwi : {4, 8, 12}) {
      KernelParams p = seed.params;
      p.share_a = p.share_b = false;
      p.algo = Algorithm::BA;
      p.Mwg = 8 * mwi;
      p.Nwg = 16 * nwi;  // keep MdimC=8, NdimC=16
      p.Kwi = 8;
      if (validate(p, model.spec())) continue;
      const auto e = model.kernel_estimate(p, n, n, n);
      if (e.ok) without = std::max(without, e.gflops);
    }
  }
  // The paper's ratio is ~0.80; the full search-based ablation
  // (bench_ablation_localmem) lands at ~0.73, and this reduced candidate
  // set sits a little lower still.
  EXPECT_LT(without, 0.92 * with_local);
  EXPECT_GT(without, 0.55 * with_local);
}

TEST(PerfModel, CaymanPaysForBarriers) {
  // Section IV-A: "The Cayman runs slower when the local memory is
  // utilized, probably because the cost for barrier synchronizations is
  // too large."
  PerfModel model(DeviceId::Cayman);
  auto p = codegen::table2_entry(DeviceId::Cayman, Precision::DP).params;
  const std::int64_t n = model.stage1_size(p);
  const double no_local = model.kernel_estimate(p, n, n, n).gflops;
  auto q = p;
  q.share_b = true;  // sharing both at Kwg=48 would exceed Cayman's 32 KB
  q.NdimB = 8;
  ASSERT_EQ(validate(q, model.spec()), std::nullopt);
  const double with_local = model.kernel_estimate(q, n, n, n).gflops;
  EXPECT_LT(with_local, no_local);
}

TEST(PerfModel, RowMajorCollapsesAtConflictStride) {
  // Section IV-A: the fastest row-major Tahiti DGEMM kernel reaches 837
  // GFlop/s but is "drastically deteriorated" at sizes that are multiples
  // of 2048 because of memory bank conflicts.
  PerfModel model(DeviceId::Tahiti);
  auto p = codegen::table2_entry(DeviceId::Tahiti, Precision::DP).params;
  p.layout_a = BlockLayout::RowMajor;
  p.layout_b = BlockLayout::RowMajor;
  // Conflicts hit when the row pitch in bytes is a multiple of 16 KB, i.e.
  // N a multiple of 2048 doubles; 6144 is also a multiple of the blocking.
  const std::int64_t bad = 6144;
  const std::int64_t good = bad - lcm3(p.Mwg, p.Nwg, p.Kwg);
  ASSERT_EQ(bad % p.Mwg, 0);
  ASSERT_EQ(good % p.Mwg, 0);
  const double at_bad = model.kernel_gflops(p, bad);
  const double at_good = model.kernel_gflops(p, good);
  EXPECT_LT(at_bad, 0.7 * at_good);
}

TEST(PerfModel, BlockLayoutBeatsRowMajorEverywhere) {
  // "GEMM kernels using block-major matrix layouts show the highest
  // performance on all tested processors."
  for (DeviceId id : simcl::evaluation_devices()) {
    PerfModel model(id);
    auto p = codegen::table2_entry(id, Precision::DP).params;
    const std::int64_t n = model.stage1_size(p);
    const double block = model.kernel_estimate(p, n, n, n).gflops;
    auto q = p;
    q.layout_a = q.layout_b = BlockLayout::RowMajor;
    const double rm = model.kernel_estimate(q, n, n, n).gflops;
    EXPECT_LE(rm, block * 1.0001) << simcl::to_string(id);
  }
}

TEST(PerfModel, FermiDgemmPrefersPipelining) {
  // Fig. 8: the PL algorithm wins DGEMM on Fermi.
  PerfModel model(DeviceId::Fermi);
  auto p = codegen::table2_entry(DeviceId::Fermi, Precision::DP).params;
  const std::int64_t n = model.stage1_size(p);
  ASSERT_EQ(p.algo, Algorithm::PL);
  const double pl = model.kernel_estimate(p, n, n, n).gflops;
  auto q = p;
  q.algo = Algorithm::BA;
  const double ba = model.kernel_estimate(q, n, n, n).gflops;
  EXPECT_GT(pl, ba);
}

TEST(PerfModel, BulldozerPlDgemmFails) {
  PerfModel model(DeviceId::Bulldozer);
  auto p = codegen::table2_entry(DeviceId::Bulldozer, Precision::DP).params;
  p.algo = Algorithm::PL;
  const auto e = model.kernel_estimate(p, 96, 96, 96 * 2);
  EXPECT_FALSE(e.ok);
}

TEST(PerfModel, CopyOverheadQuadratic) {
  PerfModel model(DeviceId::Tahiti);
  const double t1 = model.copy_seconds(1 << 20);
  const double t2 = model.copy_seconds(1 << 22);
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 4.5 * t1);
}

}  // namespace
}  // namespace gemmtune
