// CLI tests: every subcommand, argument validation, and the compile
// command against generated kernel source.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/emit.hpp"

namespace gemmtune {
namespace {

std::pair<int, std::string> run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  const int rc = cli::run(args, out);
  return {rc, out.str()};
}

TEST(Cli, UsageOnNoArgsOrUnknownCommand) {
  auto [rc1, out1] = run_cli({});
  EXPECT_EQ(rc1, 2);
  EXPECT_NE(out1.find("usage:"), std::string::npos);
  auto [rc2, out2] = run_cli({"frobnicate"});
  EXPECT_EQ(rc2, 2);
}

TEST(Cli, Devices) {
  auto [rc, out] = run_cli({"devices"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Tahiti"), std::string::npos);
  EXPECT_NE(out.find("Bulldozer"), std::string::npos);
  EXPECT_NE(out.find("Cypress"), std::string::npos);
}

TEST(Cli, EmitProducesOpenCl) {
  auto [rc, out] = run_cli({"emit", "Fermi", "DGEMM"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("__kernel"), std::string::npos);
  EXPECT_NE(out.find("dgemm_atb_PL"), std::string::npos);
}

TEST(Cli, EmitRejectsBadDevice) {
  auto [rc, out] = run_cli({"emit", "Voodoo", "DGEMM"});
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, CompileRoundTrip) {
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Kepler, codegen::Precision::SP)
          .params;
  const std::string src =
      ir::emit_opencl(codegen::generate_gemm_kernel(p));
  const std::string path = ::testing::TempDir() + "/cli_kernel.cl";
  {
    std::ofstream f(path);
    f << src;
  }
  auto [rc, out] = run_cli({"compile", path});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("kernel: sgemm_atb_PL"), std::string::npos);
  EXPECT_NE(out.find("arguments: 8"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, CompileRejectsMissingFile) {
  auto [rc, out] = run_cli({"compile", "/nonexistent.cl"});
  EXPECT_EQ(rc, 1);
}

TEST(Cli, EstimateReportsBothSides) {
  auto [rc, out] = run_cli({"estimate", "Sandy Bridge", "DGEMM", "NN",
                            "1536"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("GFlop/s"), std::string::npos);
  EXPECT_NE(out.find("Intel MKL"), std::string::npos);
}

TEST(Cli, SweepPrintsLcmGrid) {
  auto [rc, out] = run_cli({"sweep", "Kepler", "DGEMM", "256"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("| N"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);  // Kepler DP LCM = 64
}

TEST(Cli, TuneSmallBudget) {
  auto [rc, out] = run_cli({"tune", "Cayman", "SGEMM", "300"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("best:"), std::string::npos);
  EXPECT_NE(out.find("paper Table II"), std::string::npos);
}

TEST(Cli, VerifyPassesAndBoundsSizes) {
  auto [rc, out] = run_cli({"verify", "Tahiti", "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("PASS"), std::string::npos);
  auto [rc2, out2] = run_cli({"verify", "Tahiti", "DGEMM", "9999", "10",
                              "10"});
  EXPECT_EQ(rc2, 1);
}

}  // namespace
}  // namespace gemmtune
