// CLI tests: every subcommand, argument validation, and the compile
// command against generated kernel source.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "common/thread_pool.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/native.hpp"
#include "kernelir/vm.hpp"

namespace gemmtune {
namespace {

std::pair<int, std::string> run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  const int rc = cli::run(args, out);
  return {rc, out.str()};
}

TEST(Cli, UsageOnNoArgsOrUnknownCommand) {
  auto [rc1, out1] = run_cli({});
  EXPECT_EQ(rc1, 2);
  EXPECT_NE(out1.find("usage:"), std::string::npos);
  auto [rc2, out2] = run_cli({"frobnicate"});
  EXPECT_EQ(rc2, 2);
}

TEST(Cli, Devices) {
  auto [rc, out] = run_cli({"devices"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("Tahiti"), std::string::npos);
  EXPECT_NE(out.find("Bulldozer"), std::string::npos);
  EXPECT_NE(out.find("Cypress"), std::string::npos);
  // The host-transfer model columns are part of the table.
  EXPECT_NE(out.find("Host GB/s"), std::string::npos);
  EXPECT_NE(out.find("Xfer us"), std::string::npos);
}

TEST(Cli, EmitProducesOpenCl) {
  auto [rc, out] = run_cli({"emit", "Fermi", "DGEMM"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("__kernel"), std::string::npos);
  EXPECT_NE(out.find("dgemm_atb_PL"), std::string::npos);
}

TEST(Cli, EmitRejectsBadDevice) {
  auto [rc, out] = run_cli({"emit", "Voodoo", "DGEMM"});
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
}

TEST(Cli, CompileRoundTrip) {
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Kepler, codegen::Precision::SP)
          .params;
  const std::string src =
      ir::emit_opencl(codegen::generate_gemm_kernel(p));
  const std::string path = ::testing::TempDir() + "/cli_kernel.cl";
  {
    std::ofstream f(path);
    f << src;
  }
  auto [rc, out] = run_cli({"compile", path});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("kernel: sgemm_atb_PL"), std::string::npos);
  EXPECT_NE(out.find("arguments: 8"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, CompileRejectsMissingFile) {
  auto [rc, out] = run_cli({"compile", "/nonexistent.cl"});
  EXPECT_EQ(rc, 1);
}

TEST(Cli, EstimateReportsBothSides) {
  auto [rc, out] = run_cli({"estimate", "Sandy Bridge", "DGEMM", "NN",
                            "1536"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("GFlop/s"), std::string::npos);
  EXPECT_NE(out.find("Intel MKL"), std::string::npos);
}

TEST(Cli, SweepPrintsLcmGrid) {
  auto [rc, out] = run_cli({"sweep", "Kepler", "DGEMM", "256"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("| N"), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);  // Kepler DP LCM = 64
}

TEST(Cli, TuneSmallBudget) {
  auto [rc, out] = run_cli({"tune", "Cayman", "SGEMM", "300"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("best:"), std::string::npos);
  EXPECT_NE(out.find("paper Table II"), std::string::npos);
}

TEST(Cli, VerifyPassesAndBoundsSizes) {
  auto [rc, out] = run_cli({"verify", "Tahiti", "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("PASS"), std::string::npos);
  auto [rc2, out2] = run_cli({"verify", "Tahiti", "DGEMM", "9999", "10",
                              "10"});
  EXPECT_EQ(rc2, 1);
}

TEST(Cli, InterpFlagSelectsBackend) {
  // Every backend must verify successfully; bad values are rejected
  // before any command runs, with a keyval-style error naming the value
  // and the allowed set.
  auto [rc1, out1] =
      run_cli({"--interp", "tree", "verify", "Tahiti", "DGEMM", "40", "30",
               "20"});
  EXPECT_EQ(rc1, 0) << out1;
  EXPECT_EQ(ir::resolve_backend(ir::Backend::Auto), ir::Backend::Tree);
  auto [rc2, out2] =
      run_cli({"--interp=bytecode", "verify", "Tahiti", "DGEMM", "40", "30",
               "20"});
  EXPECT_EQ(rc2, 0) << out2;
  EXPECT_EQ(ir::resolve_backend(ir::Backend::Auto), ir::Backend::Bytecode);
  // The native backend must run every verb too — with no toolchain it
  // falls back to bytecode, so this passes on any machine.
  auto [rc4, out4] =
      run_cli({"--interp=native", "verify", "Tahiti", "DGEMM", "40", "30",
               "20"});
  EXPECT_EQ(rc4, 0) << out4;
  EXPECT_EQ(ir::resolve_backend(ir::Backend::Auto), ir::Backend::Native);
  auto [rc3, out3] = run_cli({"--interp", "jit", "devices"});
  EXPECT_EQ(rc3, 1);
  EXPECT_NE(
      out3.find("--interp: unknown value 'jit' (use tree, bytecode, native)"),
      std::string::npos)
      << out3;
  ir::set_backend_override(ir::Backend::Auto);
}

TEST(Cli, VmDispatchAndNativeSimdFlags) {
  // Both knobs must verify successfully in every mode (the contract is
  // bit-identical results, so PASS is the only acceptable outcome) and
  // land in the process-wide overrides; bad values are rejected with the
  // keyval-style message.
  auto [rc1, out1] = run_cli({"--vm-dispatch", "switch", "verify", "Tahiti",
                              "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc1, 0) << out1;
  EXPECT_EQ(ir::resolve_vm_dispatch(), ir::VmDispatch::Switch);
  auto [rc2, out2] = run_cli({"--vm-dispatch=threaded", "verify", "Tahiti",
                              "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc2, 0) << out2;
  auto [rc3, out3] = run_cli({"--native-simd=off", "verify", "Tahiti",
                              "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc3, 0) << out3;
  EXPECT_EQ(ir::native_simd_width(), 0);
  auto [rc4, out4] = run_cli({"--native-simd", "on", "verify", "Tahiti",
                              "DGEMM", "40", "30", "20"});
  EXPECT_EQ(rc4, 0) << out4;
  EXPECT_GT(ir::native_simd_width(), 0);
  auto [rc5, out5] = run_cli({"--vm-dispatch", "goto", "devices"});
  EXPECT_EQ(rc5, 1);
  EXPECT_NE(
      out5.find("--vm-dispatch: unknown value 'goto' (use switch, threaded)"),
      std::string::npos)
      << out5;
  auto [rc6, out6] = run_cli({"--native-simd=avx", "devices"});
  EXPECT_EQ(rc6, 1);
  EXPECT_NE(out6.find("--native-simd: unknown value 'avx' (use on, off)"),
            std::string::npos)
      << out6;
  ir::set_vm_dispatch_override(ir::VmDispatch::Auto);
  ir::set_native_simd_override(ir::NativeSimd::Auto);
}

TEST(Cli, JitCacheDirFlagPopulatesCache) {
  // --jit-cache-dir points the native backend's .so cache at a directory;
  // with a toolchain present a native verify leaves an object behind.
  const std::string dir = ::testing::TempDir() + "cli_jit_cache";
  std::system(("rm -rf " + dir).c_str());
  // Earlier tests may have native-compiled the same kernel into the
  // process-wide cache; clear it so this launch must go through the JIT
  // (and hence the cache directory) again.
  ir::compiled_cache_clear();
  auto [rc, out] = run_cli({"--interp=native", "--jit-cache-dir", dir,
                            "verify", "Tahiti", "DGEMM", "24", "16", "8"});
  EXPECT_EQ(rc, 0) << out;
  if (ir::native_toolchain_available()) {
    EXPECT_EQ(std::system(
                  ("ls " + dir + "/gemmtune-*.so >/dev/null 2>&1").c_str()),
              0);
  }
  ir::set_jit_cache_dir("");
  ir::set_backend_override(ir::Backend::Auto);
  std::system(("rm -rf " + dir).c_str());
}

TEST(Cli, ServeThenReplayMatches) {
  const std::string dir = ::testing::TempDir();
  const std::string trace = dir + "/cli_serve_trace.json";
  const std::string report1 = dir + "/cli_serve_r1.json";
  const std::string report2 = dir + "/cli_serve_r2.json";
  auto [rc, out] = run_cli({"serve",
                            "--workload=requests=60,seed=5,devices=Tahiti",
                            "--save-trace=" + trace,
                            "--report=" + report1});
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("throughput:"), std::string::npos) << out;
  auto [rc2, out2] =
      run_cli({"replay", trace, "--report=" + report2});
  EXPECT_EQ(rc2, 0) << out2;
  const auto slurp = [](const std::string& p) {
    std::ifstream f(p);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  };
  const std::string a = slurp(report1), b = slurp(report2);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "replay must reproduce the serve report exactly";
  EXPECT_NE(a.find("gemmtune-serve-v1"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(report1.c_str());
  std::remove(report2.c_str());
}

TEST(Cli, DistRunsAndWritesTheReport) {
  const std::string report = ::testing::TempDir() + "/cli_dist_report.json";
  auto [rc, out] = run_cli(
      {"dist", "--spec=size=4096,prec=SGEMM,devices=Tahiti+Cayman",
       "--report=" + report});
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("problem: SGEMM NN 4096x4096x4096"), std::string::npos)
      << out;
  EXPECT_NE(out.find("fleet:"), std::string::npos);
  EXPECT_NE(out.find("best single device:"), std::string::npos);
  std::ifstream f(report);
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_FALSE(doc.empty());
  EXPECT_NE(doc.find("gemmtune-dist-v1"), std::string::npos);
  std::remove(report.c_str());
}

TEST(Cli, DistRejectsBadSpec) {
  auto [rc, out] = run_cli({"dist", "--spec=siez=4096"});
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("unknown key 'siez'"), std::string::npos) << out;
}

TEST(Cli, ServeRejectsBadArguments) {
  auto [rc, out] = run_cli({"serve", "--bogus"});
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("unknown argument"), std::string::npos);
  auto [rc2, out2] = run_cli({"replay"});
  EXPECT_EQ(rc2, 1);
  auto [rc3, out3] = run_cli({"replay", "/nonexistent/trace.json"});
  EXPECT_EQ(rc3, 1);
  EXPECT_NE(out3.find("/nonexistent/trace.json"), std::string::npos);
}

TEST(Cli, ThreadsFlagRejectsGarbageNamingTheRange) {
  // Historically "--threads banana" and "--threads 0" were silently
  // treated as "use the hardware default"; they must fail loudly now.
  for (const char* bad : {"banana", "0", "-3", "4x", "", "99999"}) {
    auto [rc, out] = run_cli({"--threads", bad, "devices"});
    EXPECT_EQ(rc, 1) << "--threads " << bad;
    EXPECT_NE(out.find("--threads"), std::string::npos) << out;
    EXPECT_NE(out.find("invalid thread count"), std::string::npos) << out;
    EXPECT_NE(out.find("1..1024"), std::string::npos)
        << "error should name the allowed range: " << out;
  }
  // A valid value still works.
  auto [rc, out] = run_cli({"--threads", "2", "devices"});
  EXPECT_EQ(rc, 0) << out;
}

TEST(Cli, ThreadsEnvRejectsGarbageNamingTheVariable) {
  // A prior in-process --threads run leaves the process-wide override
  // set; clear it so the environment variable is actually consulted.
  set_thread_override(0);
  ASSERT_EQ(setenv("GEMMTUNE_THREADS", "lots", 1), 0);
  auto [rc, out] =
      run_cli({"serve", "--workload=requests=5,devices=Tahiti"});
  ASSERT_EQ(unsetenv("GEMMTUNE_THREADS"), 0);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("GEMMTUNE_THREADS"), std::string::npos) << out;
  EXPECT_NE(out.find("invalid thread count"), std::string::npos) << out;
}

TEST(Cli, ServeCoreFlagsValidated) {
  auto [rc, out] = run_cli({"serve", "--workload=requests=5",
                            "--core", "turbo"});
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("'turbo'"), std::string::npos) << out;
  EXPECT_NE(out.find("async"), std::string::npos)
      << "error should list the accepted cores: " << out;
  auto [rc2, out2] = run_cli({"serve", "--workload=requests=5",
                              "--shards", "0"});
  EXPECT_EQ(rc2, 1);
  EXPECT_NE(out2.find("--shards"), std::string::npos) << out2;
  auto [rc3, out3] = run_cli({"serve", "--workload=requests=5",
                              "--slo-ms", "-2"});
  EXPECT_EQ(rc3, 1);
  EXPECT_NE(out3.find("--slo-ms"), std::string::npos) << out3;
}

TEST(Cli, ServeAsyncCoreAndDifferential) {
  const std::string report =
      ::testing::TempDir() + "/cli_async_report.json";
  auto [rc, out] = run_cli(
      {"serve", "--workload=requests=40,seed=5,devices=Tahiti",
       "--core", "async", "--report=" + report});
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("async core:"), std::string::npos) << out;
  EXPECT_NE(out.find("p99"), std::string::npos) << out;
  std::ifstream f(report);
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("gemmtune-serve-v1"), std::string::npos);
  EXPECT_NE(doc.find("\"core\""), std::string::npos);
  EXPECT_NE(doc.find("hist.p999_ms"), std::string::npos);
  std::remove(report.c_str());
  auto [rc2, out2] =
      run_cli({"serve", "--workload=requests=40,seed=5,devices=Tahiti",
               "--core", "diff"});
  EXPECT_EQ(rc2, 0) << out2;
  EXPECT_NE(out2.find("cores agree: PASS"), std::string::npos) << out2;
}

}  // namespace
}  // namespace gemmtune
