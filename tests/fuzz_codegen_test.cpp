// Randomized property tests over the code generator: sample random valid
// parameter sets from the full space and check, for each,
//  (1) the generated kernel matches the host reference on random data,
//  (2) parse(emit(kernel)) executes bit-identically (text <-> semantics),
//  (3) KernelParams survives the JSON round trip.
// Deterministic: everything derives from fixed seeds.
#include <gtest/gtest.h>

#include <cstring>

#include "blas/hostblas.hpp"
#include "clfront/parser.hpp"
#include "codegen/gemm_generator.hpp"
#include "common/rng.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/native.hpp"
#include "layout/packing.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::Algorithm;
using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

template <typename C>
auto pick(Rng& rng, const C& values) {
  return values[static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(values.size())))];
}

/// Samples one random parameter set; may be invalid (caller validates).
KernelParams random_params(Rng& rng) {
  static const std::vector<int> wg_sizes = {8, 16, 24, 32};
  static const std::vector<int> k_sizes = {4, 8, 12, 16};
  static const std::vector<int> dims = {2, 4, 8};
  static const std::vector<int> kwis = {1, 2, 4};
  static const std::vector<int> vws = {1, 2, 4};
  static const std::vector<BlockLayout> layouts = {
      BlockLayout::RowMajor, BlockLayout::CBL, BlockLayout::RBL};
  static const std::vector<Algorithm> algos = {Algorithm::BA, Algorithm::PL,
                                               Algorithm::DB};
  KernelParams p;
  p.prec = rng.next_below(2) ? Precision::SP : Precision::DP;
  p.Mwg = pick(rng, wg_sizes);
  p.Nwg = pick(rng, wg_sizes);
  p.Kwg = pick(rng, k_sizes);
  p.MdimC = pick(rng, dims);
  p.NdimC = pick(rng, dims);
  p.MdimA = pick(rng, dims);
  p.NdimB = pick(rng, dims);
  p.Kwi = pick(rng, kwis);
  p.vw = pick(rng, vws);
  p.stride_m = rng.next_below(2) != 0;
  p.stride_n = rng.next_below(2) != 0;
  p.share_a = rng.next_below(2) != 0;
  p.share_b = rng.next_below(2) != 0;
  p.layout_a = pick(rng, layouts);
  p.layout_b = pick(rng, layouts);
  p.algo = pick(rng, algos);
  return p;
}

/// Runs both the generated kernel and its emit->parse round trip on the
/// same random data; checks correctness and equivalence.
template <typename T>
void check_kernel_properties(const KernelParams& p, std::uint64_t seed) {
  Rng rng(seed);
  const index_t M = 2 * p.Mwg, N = 2 * p.Nwg, K = 2 * p.Kwg;
  Matrix<T> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  Matrix<T> Cref = C;
  hostblas::gemm_naive(Transpose::No, Transpose::No, M, N, K, T(1.5), A, B,
                       T(-0.5), Cref);

  const ir::Kernel k1 = codegen::generate_gemm_kernel(p);
  const ir::Kernel k2 = clfront::parse_kernel(ir::emit_opencl(k1));

  auto run = [&](const ir::Kernel& k, ir::Backend backend,
                 ir::Counters* counters) {
    auto abuf = pack_a(A, Transpose::No, M, K, M, K, p.layout_a, p.Mwg,
                       p.Kwg);
    auto bbuf = pack_b(B, Transpose::No, K, N, K, N, p.layout_b, p.Kwg,
                       p.Nwg);
    auto cbuf = pack_c(C, M, N, M, N);
    auto dA = std::make_shared<simcl::Buffer>(abuf.size() * sizeof(T));
    auto dB = std::make_shared<simcl::Buffer>(bbuf.size() * sizeof(T));
    auto dC = std::make_shared<simcl::Buffer>(cbuf.size() * sizeof(T));
    std::memcpy(dA->data(), abuf.data(), abuf.size() * sizeof(T));
    std::memcpy(dB->data(), bbuf.data(), bbuf.size() * sizeof(T));
    std::memcpy(dC->data(), cbuf.data(), cbuf.size() * sizeof(T));
    const auto geo = codegen::launch_geometry(p, M, N);
    std::vector<ir::ArgValue> args(8);
    args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[GemmKernelArgs::M] = ir::ArgValue::of_int(M);
    args[GemmKernelArgs::N] = ir::ArgValue::of_int(N);
    args[GemmKernelArgs::K] = ir::ArgValue::of_int(K);
    args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.5);
    args[GemmKernelArgs::beta] = ir::ArgValue::of_float(-0.5);
    const ir::Counters c =
        ir::launch_with_backend(k, geo.global, geo.local, args, 0, backend);
    if (counters) *counters = c;
    std::vector<T> out(dC->template count<T>());
    std::memcpy(out.data(), dC->data(), dC->size());
    return out;
  };

  ir::Counters c_byte, c_tree;
  const auto out1 = run(k1, ir::Backend::Bytecode, &c_byte);
  const auto out2 = run(k2, ir::Backend::Bytecode, nullptr);
  EXPECT_EQ(out1, out2) << "round-trip divergence: " << p.summary();

  // Differential check: the tree-walking reference backend must produce
  // bit-identical buffers and counters for the same launch.
  const auto out_tree = run(k1, ir::Backend::Tree, &c_tree);
  EXPECT_EQ(out1, out_tree) << "backend divergence: " << p.summary();
  EXPECT_EQ(c_byte, c_tree) << "counter divergence: " << p.summary();

  // Native leg: each distinct kernel costs one host-compiler invocation
  // (~1s), so only the first few fuzzed shapes run it — enough to catch an
  // emitter divergence across the random parameter space without blowing
  // up the suite's runtime.
  static int native_budget = 8;
  if (native_budget > 0 && ir::native_toolchain_available()) {
    --native_budget;
    ir::Counters c_native;
    const auto out_native = run(k1, ir::Backend::Native, &c_native);
    EXPECT_EQ(out1, out_native) << "native divergence: " << p.summary();
    EXPECT_EQ(c_byte, c_native)
        << "native counter divergence: " << p.summary();
  }

  Matrix<T> Cgot(M, N);
  unpack_c(out1, M, N, Cgot, M, N);
  EXPECT_LE(max_abs_diff(Cgot, Cref), hostblas::gemm_tolerance<T>(K))
      << p.summary();
}

TEST(FuzzCodegen, RandomValidParameterSets) {
  const auto& dev = simcl::device_spec(simcl::DeviceId::Tahiti);
  Rng rng(0xFACADE);
  int tested = 0, rejected = 0;
  while (tested < 60) {
    const KernelParams p = random_params(rng);
    if (validate(p, dev)) {
      ++rejected;
      ASSERT_LT(rejected, 5000) << "sampler cannot find valid sets";
      continue;
    }
    if (p.prec == Precision::DP) {
      check_kernel_properties<double>(p, 0x1000u + static_cast<unsigned>(tested));
    } else {
      check_kernel_properties<float>(p, 0x2000u + static_cast<unsigned>(tested));
    }
    ++tested;
  }
  // The space must contain both valid and invalid points.
  EXPECT_GT(rejected, 0);
}

TEST(FuzzCodegen, JsonRoundTripForRandomParams) {
  Rng rng(0xBEEF);
  for (int i = 0; i < 500; ++i) {
    const KernelParams p = random_params(rng);
    const KernelParams back = KernelParams::from_json(
        Json::parse(p.to_json().dump(i % 3)));
    EXPECT_EQ(p, back) << p.summary();
    // key() must be injective over distinct parameter sets (round-trip
    // through the summary string is not required, but keys must match).
    EXPECT_EQ(p.key(), back.key());
  }
}

TEST(FuzzCodegen, ValidationIsConsistentWithGeneration) {
  // Anything validate() accepts must generate and launch without throwing.
  const auto& dev = simcl::device_spec(simcl::DeviceId::Fermi);
  Rng rng(0xC0DE);
  int tested = 0;
  while (tested < 200) {
    const KernelParams p = random_params(rng);
    if (validate(p, dev)) continue;
    EXPECT_NO_THROW({
      const ir::Kernel k = codegen::generate_gemm_kernel(p);
      (void)ir::emit_opencl(k);
    }) << p.summary();
    ++tested;
  }
}

}  // namespace
}  // namespace gemmtune
