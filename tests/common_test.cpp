// Unit tests for the common utilities: integer math, RNG determinism,
// string helpers, table rendering, and the JSON round trip.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/intmath.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gemmtune {
namespace {

TEST(IntMath, CeilDivAndRounding) {
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(round_up(5, 4), 8);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_down(5, 4), 4);
  EXPECT_EQ(round_down(8, 4), 8);
}

TEST(IntMath, Divides) {
  EXPECT_TRUE(divides(4, 12));
  EXPECT_FALSE(divides(5, 12));
  EXPECT_FALSE(divides(0, 12));
}

TEST(IntMath, Lcm3MatchesPaperUsage) {
  // The paper's stage-1 size uses LCM(Mwg, Nwg, Kwg).
  EXPECT_EQ(lcm3(96, 32, 48), 96);
  EXPECT_EQ(lcm3(64, 32, 48), 192);
  EXPECT_EQ(lcm3(32, 48, 192), 192);
  EXPECT_THROW(lcm3(0, 1, 1), Error);
}

TEST(IntMath, LargestMultipleLe) {
  EXPECT_EQ(largest_multiple_le(4096, 96), 4032);
  EXPECT_EQ(largest_multiple_le(4096, 64), 4096);
  EXPECT_EQ(largest_multiple_le(100, 192), 192);  // clamps up to one step
}

TEST(IntMath, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(a.next_below(7), 7u);
  }
}

TEST(Rng, RangeDouble) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    const double d = r.next_double(-2.0, 3.0);
    EXPECT_GE(d, -2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(Strings, Basic) {
  EXPECT_EQ(strf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_TRUE(starts_with("CBL,CBL", "CBL"));
  EXPECT_FALSE(starts_with("C", "CBL"));
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(fmt_gflops(863.2), "863");
  EXPECT_EQ(fmt_gflops(37.4), "37.4");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"Processor", "GFlop/s"});
  t.add_row({"Tahiti", "863"});
  t.add_rule();
  t.add_row({"Bulldozer", "37"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Processor |"), std::string::npos);
  EXPECT_NE(s.find("863"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);  // two data rows + one rule
}

TEST(Table, RejectsRaggedRows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-1.5").as_number(), -1.5);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string(), "a\nb");
}

TEST(Json, DocumentRoundTrip) {
  Json j = Json::object();
  j["name"] = "Tahiti";
  j["gflops"] = 863.0;
  j["shared"] = true;
  Json arr = Json::array();
  arr.push_back(96);
  arr.push_back(32);
  arr.push_back(48);
  j["wg"] = std::move(arr);
  for (int indent : {0, 2}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back, j) << "indent=" << indent;
  }
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(Json::parse("nope"), Error);
}

TEST(Json, AccessorsEnforceKinds) {
  const Json j = Json::parse("{\"a\": [1, 2]}");
  EXPECT_THROW(j.as_int(), Error);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_EQ(j.at("a").size(), 2u);
  EXPECT_THROW(j.at("a").at(std::size_t{5}), Error);
}

TEST(ErrorCheck, CarriesLocation) {
  try {
    check(false, "boom");
    FAIL() << "check did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gemmtune
