// Kernel-IR tests: expression/statement invariants, the OpenCL C emitter's
// output structure, and the lockstep interpreter's semantics (memory
// spaces, builtins, float rounding, uniformity checking, bounds checking).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/kernel.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune::ir {
namespace {

simcl::BufferPtr make_buffer(std::size_t bytes) {
  return std::make_shared<simcl::Buffer>(bytes);
}

TEST(IrTypes, OclNames) {
  EXPECT_EQ(ocl_name(i32()), "int");
  EXPECT_EQ(ocl_name(fp(Scalar::F32, 1)), "float");
  EXPECT_EQ(ocl_name(fp(Scalar::F64, 4)), "double4");
  EXPECT_EQ(scalar_bytes(Scalar::F64), 8);
  EXPECT_THROW(fp(Scalar::F64, 3), Error);
  EXPECT_THROW(fp(Scalar::I32, 1), Error);
}

TEST(IrExpr, TypeChecking) {
  EXPECT_THROW(bin(BinOp::Add, iconst(1), fconst(1.0, fp(Scalar::F64, 1))),
               Error);
  EXPECT_THROW(bin(BinOp::FAdd, fconst(1.0, fp(Scalar::F64, 2)),
                   fconst(1.0, fp(Scalar::F64, 4))),
               Error);
  EXPECT_THROW(mad(fconst(1, fp(Scalar::F32, 2)), fconst(1, fp(Scalar::F32, 2)),
                   fconst(1, fp(Scalar::F64, 2))),
               Error);
  EXPECT_THROW(lane(fconst(1, fp(Scalar::F32, 2)), 2), Error);
  EXPECT_THROW(builtin(BuiltinFn::LocalId, 2), Error);
}

// Builds a simple kernel: out[gid] = a[gid] * alpha + out[gid] over a 1-D
// (N x 1) range, vector width `lanes`.
Kernel axpy_kernel(Scalar s, int lanes) {
  KernelBuilder b("axpy", s);
  b.add_arg("out", ArgKind::GlobalPtr, s);
  b.add_arg("a", ArgKind::GlobalConstPtr, s);
  b.add_arg("alpha", ArgKind::Float, s);
  const int gid = b.decl_var("gid", i32());
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  const Type vt = fp(s, lanes);
  ExprPtr idx = b.ref(gid) * lanes;
  b.append(store_global(
      0, idx,
      mad(splat(arg_ref(2, fp(s, 1)), lanes), load_global(1, idx, vt),
          load_global(0, idx, vt))));
  return b.build();
}

TEST(Interp, AxpyComputesLanewise) {
  Kernel k = axpy_kernel(Scalar::F64, 2);
  auto out = make_buffer(8 * sizeof(double));
  auto a = make_buffer(8 * sizeof(double));
  for (int i = 0; i < 8; ++i) {
    out->as<double>()[i] = i;
    a->as<double>()[i] = 10 * i;
  }
  const Counters c = launch(k, {4, 1}, {2, 1},
                            {ArgValue::of(out), ArgValue::of(a),
                             ArgValue::of_float(0.5)});
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(out->as<double>()[i], i + 5.0 * i);
  EXPECT_EQ(c.work_items, 4u);
  EXPECT_EQ(c.work_groups, 2u);
  EXPECT_EQ(c.flops, 4u * 2u * 2u);  // one mad of width 2 per item
  EXPECT_EQ(c.global_load_bytes, 4u * 2u * 2u * 8u);
  EXPECT_EQ(c.global_store_bytes, 4u * 2u * 8u);
}

TEST(Interp, SinglePrecisionRoundsEachOperation) {
  // 1 + 2^-30 rounds away in float but not in double.
  for (Scalar s : {Scalar::F32, Scalar::F64}) {
    KernelBuilder b("round", s);
    b.add_arg("out", ArgKind::GlobalPtr, s);
    const Type t1 = fp(s, 1);
    b.append(store_global(
        0, iconst(0),
        bin(BinOp::FAdd, fconst(1.0, t1), fconst(9.313e-10, t1))));
    Kernel k = b.build();
    auto out = make_buffer(8);
    launch(k, {1, 1}, {1, 1}, {ArgValue::of(out)});
    const double got = s == Scalar::F32
                           ? static_cast<double>(out->as<float>()[0])
                           : out->as<double>()[0];
    if (s == Scalar::F32) {
      EXPECT_EQ(got, 1.0);
    } else {
      EXPECT_GT(got, 1.0);
    }
  }
}

TEST(Interp, LocalMemorySharesAcrossItemsWithBarrier) {
  // Each item writes its lx to Lm[lx], barrier, then reads Lm[(lx+1)%4]:
  // a shuffle that only works when local memory is truly shared.
  KernelBuilder b("shuffle", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  const int lm = b.decl_array("Lm", Scalar::F64, 4, AddrSpace::Local);
  const int lx = b.decl_var("lx", i32());
  const int nxt = b.decl_var("nxt", i32());
  const Type t1 = fp(Scalar::F64, 1);
  b.append(assign(lx, builtin(BuiltinFn::LocalId, 0)));
  b.append(assign(nxt, bin(BinOp::Mod, b.ref(lx) + 1, iconst(4))));
  // Store 100 + lx as a float value: use splat of int via fconst trick —
  // write the value through a private var loaded from an integer-valued
  // expression is not supported, so store mad(lx_as_float...) instead:
  // simplest: Lm[lx] = alpha-like literal plus... we store literal 7.0 at
  // lx and check the shuffle pattern by position instead.
  b.append(store_local(lm, b.ref(lx), fconst(7.0, t1)));
  b.append(barrier());
  b.append(store_global(0, b.ref(lx), load_local(lm, b.ref(nxt), t1)));
  Kernel k = b.build();
  auto out = make_buffer(4 * sizeof(double));
  const Counters c = launch(k, {4, 1}, {4, 1}, {ArgValue::of(out)});
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(out->as<double>()[i], 7.0);
  EXPECT_EQ(c.barriers, 1u);
  EXPECT_EQ(c.local_store_bytes, 4u * 8u);
  EXPECT_EQ(c.local_load_bytes, 4u * 8u);
}

TEST(Interp, PrivateMemoryIsPerItem) {
  // Each item stages its own input element through a private array, then
  // writes it out. Because every statement runs across all items before
  // the next one (lockstep), a shared "private" array would leak the last
  // writer's value to everyone; per-item isolation must preserve each
  // item's own element.
  KernelBuilder b("priv", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F32);
  const int arr = b.decl_array("P", Scalar::F32, 1, AddrSpace::Private);
  const Type t1 = fp(Scalar::F32, 1);
  b.append(store_private(arr, iconst(0),
                         load_global(1, builtin(BuiltinFn::GlobalId, 0),
                                     t1)));
  b.append(store_global(0, builtin(BuiltinFn::GlobalId, 0),
                        load_private(arr, iconst(0), t1)));
  Kernel k = b.build();
  auto out = make_buffer(4 * sizeof(float));
  auto a = make_buffer(4 * sizeof(float));
  for (int j = 0; j < 4; ++j) a->as<float>()[j] = static_cast<float>(j);
  launch(k, {4, 1}, {4, 1}, {ArgValue::of(out), ArgValue::of(a)});
  for (int j = 0; j < 4; ++j)
    EXPECT_EQ(out->as<float>()[j], static_cast<float>(j));
}

TEST(Interp, UniformLoopRunsLockstep) {
  // out[gid] = sum of 3 increments computed in a uniform loop.
  KernelBuilder b("loop", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  b.add_arg("n", ArgKind::Int, Scalar::I32);
  const int acc = b.decl_var("acc", fp(Scalar::F64, 1));
  const int i = b.decl_var("i", i32());
  b.append(assign(acc, fconst(0.0, fp(Scalar::F64, 1))));
  b.append(for_loop(
      i, iconst(0), arg_ref(1, i32()), iconst(1),
      {assign(acc, bin(BinOp::FAdd, b.ref(acc),
                       fconst(1.0, fp(Scalar::F64, 1))))}));
  b.append(store_global(0, builtin(BuiltinFn::GlobalId, 0), b.ref(acc)));
  Kernel k = b.build();
  auto out = make_buffer(2 * sizeof(double));
  launch(k, {2, 1}, {2, 1}, {ArgValue::of(out), ArgValue::of_int(3)});
  EXPECT_DOUBLE_EQ(out->as<double>()[0], 3.0);
  EXPECT_DOUBLE_EQ(out->as<double>()[1], 3.0);
}

TEST(Interp, NonUniformLoopBoundsAreRejected) {
  KernelBuilder b("bad", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  const int i = b.decl_var("i", i32());
  const int lx = b.decl_var("lx", i32());
  b.append(assign(lx, builtin(BuiltinFn::LocalId, 0)));
  b.append(for_loop(i, iconst(0), b.ref(lx) + 1, iconst(1),
                    {store_global(0, b.ref(i),
                                  fconst(1.0, fp(Scalar::F64, 1)))}));
  Kernel k = b.build();
  auto out = make_buffer(64);
  EXPECT_THROW(launch(k, {2, 1}, {2, 1}, {ArgValue::of(out)}), Error);
}

TEST(Interp, OutOfRangeAccessIsCaught) {
  Kernel k = axpy_kernel(Scalar::F64, 2);
  auto small = make_buffer(2 * sizeof(double));  // too small for 4 items
  auto a = make_buffer(8 * sizeof(double));
  EXPECT_THROW(launch(k, {4, 1}, {2, 1},
                      {ArgValue::of(small), ArgValue::of(a),
                       ArgValue::of_float(1.0)}),
               Error);
}

TEST(Interp, ArgumentValidation) {
  Kernel k = axpy_kernel(Scalar::F64, 1);
  auto buf = make_buffer(64);
  // Wrong count.
  EXPECT_THROW(launch(k, {2, 1}, {2, 1}, {ArgValue::of(buf)}), Error);
  // Scalar passed where buffer expected.
  EXPECT_THROW(launch(k, {2, 1}, {2, 1},
                      {ArgValue::of_int(0), ArgValue::of(buf),
                       ArgValue::of_float(1.0)}),
               Error);
  // Global size not a multiple of local size.
  EXPECT_THROW(launch(k, {3, 1}, {2, 1},
                      {ArgValue::of(buf), ArgValue::of(buf),
                       ArgValue::of_float(1.0)}),
               Error);
}

TEST(Interp, StoreToReadOnlyArgRejected) {
  KernelBuilder b("ro", Scalar::F64);
  b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F64);
  b.append(store_global(0, iconst(0), fconst(1.0, fp(Scalar::F64, 1))));
  Kernel k = b.build();
  auto buf = make_buffer(64);
  EXPECT_THROW(launch(k, {1, 1}, {1, 1}, {ArgValue::of(buf)}), Error);
}

TEST(Interp, ReqdWorkGroupSizeEnforced) {
  KernelBuilder b("wg", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  b.set_reqd_local(4, 1);
  b.append(store_global(0, builtin(BuiltinFn::GlobalId, 0),
                        fconst(1.0, fp(Scalar::F32, 1))));
  Kernel k = b.build();
  auto buf = make_buffer(64);
  EXPECT_NO_THROW(launch(k, {4, 1}, {4, 1}, {ArgValue::of(buf)}));
  EXPECT_THROW(launch(k, {4, 1}, {2, 1}, {ArgValue::of(buf)}), Error);
}

// ---- emitter ---------------------------------------------------------------

TEST(Emit, AxpyLooksLikeOpenCL) {
  const Kernel k = axpy_kernel(Scalar::F64, 2);
  const std::string src = emit_opencl(k);
  EXPECT_NE(src.find("#pragma OPENCL EXTENSION cl_khr_fp64 : enable"),
            std::string::npos);
  EXPECT_NE(src.find("__kernel"), std::string::npos);
  EXPECT_NE(src.find("void axpy(__global double* out, "
                     "__global const double* a, const double alpha)"),
            std::string::npos);
  EXPECT_NE(src.find("vload2"), std::string::npos);
  EXPECT_NE(src.find("vstore2"), std::string::npos);
  EXPECT_NE(src.find("mad("), std::string::npos);
  EXPECT_NE(src.find("get_global_id(0)"), std::string::npos);
  // Balanced braces and parens.
  EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
            std::count(src.begin(), src.end(), '}'));
  EXPECT_EQ(std::count(src.begin(), src.end(), '('),
            std::count(src.begin(), src.end(), ')'));
}

TEST(Emit, FloatKernelHasNoFp64Pragma) {
  const Kernel k = axpy_kernel(Scalar::F32, 1);
  const std::string src = emit_opencl(k);
  EXPECT_EQ(src.find("cl_khr_fp64"), std::string::npos);
  EXPECT_NE(src.find("float"), std::string::npos);
}

TEST(Emit, LocalDeclarationsAndBarrier) {
  KernelBuilder b("lmem", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  b.decl_array("Alm", Scalar::F32, 128, AddrSpace::Local);
  b.append(barrier());
  b.append(comment("hello"));
  b.append(store_global(0, iconst(0), fconst(2.0, fp(Scalar::F32, 1))));
  const std::string src = emit_opencl(b.build());
  EXPECT_NE(src.find("__local float Alm[128];"), std::string::npos);
  EXPECT_NE(src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
  EXPECT_NE(src.find("/* hello */"), std::string::npos);
  EXPECT_NE(src.find("out[0] = 2.0f;"), std::string::npos);
}

TEST(Emit, LaneAndSplatSyntax) {
  KernelBuilder b("lanes", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  const Type v4 = fp(Scalar::F32, 4);
  ExprPtr vec = load_global(0, iconst(0), v4);
  const std::string lane_s = emit_expr(b.build(), lane(vec, 3));
  EXPECT_NE(lane_s.find(".s3"), std::string::npos);
}

}  // namespace
}  // namespace gemmtune::ir

namespace gemmtune::ir {
namespace {

TEST(Interp, SelectShortCircuitsAndComparisons) {
  // out[gid] = (gid < n) ? a[gid] : 0 — the untaken branch must not fault
  // even though a[] is too small for the full range.
  KernelBuilder b("guard", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F64);
  b.add_arg("n", ArgKind::Int, Scalar::I32);
  const int gid = b.decl_var("gid", i32());
  const Type t1 = fp(Scalar::F64, 1);
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(store_global(
      0, b.ref(gid),
      select(bin(BinOp::Lt, b.ref(gid), arg_ref(2, i32())),
             load_global(1, b.ref(gid), t1), fconst(0.0, t1))));
  Kernel k = b.build();
  auto out = std::make_shared<simcl::Buffer>(8 * sizeof(double));
  auto a = std::make_shared<simcl::Buffer>(3 * sizeof(double));  // short!
  for (int i = 0; i < 3; ++i) a->as<double>()[i] = 10.0 + i;
  launch(k, {8, 1}, {4, 1},
         {ArgValue::of(out), ArgValue::of(a), ArgValue::of_int(3)});
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(out->as<double>()[i], i < 3 ? 10.0 + i : 0.0);
}

TEST(Interp, IfMasksDivergentItems) {
  // if (gid < 2) out[gid] = 1.0; — only the first two items write.
  KernelBuilder b("mask", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  const int gid = b.decl_var("gid", i32());
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(if_then(bin(BinOp::Lt, b.ref(gid), iconst(2)),
                   {store_global(0, b.ref(gid),
                                 fconst(1.0, fp(Scalar::F32, 1)))}));
  Kernel k = b.build();
  auto out = std::make_shared<simcl::Buffer>(4 * sizeof(float));
  launch(k, {4, 1}, {4, 1}, {ArgValue::of(out)});
  EXPECT_EQ(out->as<float>()[0], 1.0f);
  EXPECT_EQ(out->as<float>()[1], 1.0f);
  EXPECT_EQ(out->as<float>()[2], 0.0f);
  EXPECT_EQ(out->as<float>()[3], 0.0f);
}

TEST(Interp, BarrierInsideDivergentIfIsRejected) {
  KernelBuilder b("badbar", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  const int gid = b.decl_var("gid", i32());
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(if_then(bin(BinOp::Lt, b.ref(gid), iconst(1)), {barrier()}));
  Kernel k = b.build();
  auto out = std::make_shared<simcl::Buffer>(4 * sizeof(float));
  EXPECT_THROW(launch(k, {2, 1}, {2, 1}, {ArgValue::of(out)}), Error);
  // A uniformly-true condition keeps all items active: barrier is fine.
  KernelBuilder b2("okbar", Scalar::F32);
  b2.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  b2.append(if_then(bin(BinOp::Lt, iconst(0), iconst(1)), {barrier()}));
  Kernel k2 = b2.build();
  EXPECT_NO_THROW(launch(k2, {2, 1}, {2, 1}, {ArgValue::of(out)}));
}

TEST(Emit, SelectIfAndComparisonsPrint) {
  KernelBuilder b("ctl", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  const int gid = b.decl_var("gid", i32());
  const Type t1 = fp(Scalar::F64, 1);
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(if_then(
      bin(BinOp::And, bin(BinOp::Lt, b.ref(gid), iconst(4)),
          bin(BinOp::Lt, iconst(0), b.ref(gid))),
      {store_global(0, b.ref(gid),
                    select(bin(BinOp::Lt, b.ref(gid), iconst(2)),
                           fconst(1.0, t1), fconst(2.0, t1)))}));
  const std::string src = emit_opencl(b.build());
  EXPECT_NE(src.find("if (((gid < 4) && (0 < gid))) {"), std::string::npos);
  EXPECT_NE(src.find("((gid < 2) ? 1.0 : 2.0)"), std::string::npos);
}

}  // namespace
}  // namespace gemmtune::ir
