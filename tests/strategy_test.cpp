// Guided-autotuning tests: --strategy spec parsing, strategy equivalence
// and budget accounting, bit-reproducibility of the stochastic searches
// across thread counts, the input-aware (shape-class) search path, the
// shape-keyed TunedDatabase rows, and the guided serve warmup.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/paper_kernels.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "tuner/results_db.hpp"
#include "tuner/search.hpp"
#include "tuner/shape.hpp"
#include "tuner/strategy/strategy.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using simcl::DeviceId;
using tuner::SearchEngine;
using tuner::SearchOptions;
using tuner::ShapeClass;
using tuner::TunedDatabase;
using tuner::TunedKernel;
using tuner::strategy::StrategyKind;
using tuner::strategy::StrategySpec;
using tuner::strategy::StrategyStats;
using tuner::strategy::parse_strategy_spec;
using tuner::strategy::run_strategy;

SearchOptions small_search(int candidates = 400) {
  SearchOptions opt;
  opt.enumeration.max_candidates = candidates;
  return opt;
}

ShapeClass shape_of(Precision prec, index_t M, index_t N, index_t K,
                    GemmType type = GemmType::NN) {
  ShapeClass s;
  s.prec = prec;
  s.type = type;
  s.Mc = ShapeClass::quantize(M);
  s.Nc = ShapeClass::quantize(N);
  s.Kc = ShapeClass::quantize(K);
  return s;
}

// --- Spec parsing (the --strategy keyval satellite) ---

TEST(StrategySpecTest, ParsesNamesAndOptions) {
  EXPECT_EQ(parse_strategy_spec("exhaustive").kind,
            StrategyKind::Exhaustive);
  EXPECT_EQ(parse_strategy_spec("model_topk").kind, StrategyKind::ModelTopK);

  const StrategySpec a = parse_strategy_spec("anneal,budget=128,seed=9,"
                                             "restarts=4");
  EXPECT_EQ(a.kind, StrategyKind::Anneal);
  EXPECT_EQ(a.budget, 128);
  EXPECT_EQ(a.seed, 9u);
  EXPECT_EQ(a.restarts, 4);

  const StrategySpec p = parse_strategy_spec("pso,particles=8,budget=64");
  EXPECT_EQ(p.kind, StrategyKind::Pso);
  EXPECT_EQ(p.particles, 8);
  EXPECT_EQ(p.budget, 64);
}

TEST(StrategySpecTest, UnknownNameListsAllowedSet) {
  try {
    parse_strategy_spec("genetic,budget=10");
    FAIL() << "expected Error for unknown strategy";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown value 'genetic'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exhaustive, model_topk, anneal, pso"),
              std::string::npos)
        << msg;
  }
}

TEST(StrategySpecTest, UnknownKeyListsAllowedSet) {
  try {
    parse_strategy_spec("anneal,temperature=3");
    FAIL() << "expected Error for unknown key";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'temperature'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("restarts"), std::string::npos) << msg;
  }
}

TEST(StrategySpecTest, StrategySpecificKeysAreScoped) {
  // particles belongs to pso only; anneal must reject it (and vice versa).
  EXPECT_THROW(parse_strategy_spec("anneal,particles=8"), Error);
  EXPECT_THROW(parse_strategy_spec("pso,restarts=4"), Error);
  EXPECT_THROW(parse_strategy_spec("exhaustive,restarts=4"), Error);
}

TEST(StrategySpecTest, RejectsBadValues) {
  EXPECT_THROW(parse_strategy_spec("model_topk,budget=abc"), Error);
  EXPECT_THROW(parse_strategy_spec("model_topk,budget=0"), Error);
  EXPECT_THROW(parse_strategy_spec("anneal,restarts=0"), Error);
  EXPECT_THROW(parse_strategy_spec("pso,particles=1"), Error);
}

// --- Strategy equivalence and budget accounting ---

TEST(StrategyTest, ExhaustiveMatchesEngineTune) {
  const SearchEngine engine(DeviceId::Tahiti);
  const SearchOptions opt = small_search();
  tuner::SearchStats st;
  const TunedKernel direct = engine.tune(Precision::DP, opt, &st);
  StrategyStats sst;
  const TunedKernel via =
      run_strategy(engine, Precision::DP, opt, {}, &sst);
  EXPECT_EQ(via.params.key(), direct.params.key());
  EXPECT_EQ(via.best_gflops, direct.best_gflops);
  EXPECT_EQ(sst.measured, st.stage1_evaluated);
  EXPECT_DOUBLE_EQ(sst.fraction_measured, 1.0);
}

TEST(StrategyTest, ModelTopKMatchesExhaustiveAtFractionalBudget) {
  // The measurement IS the analytic model, so ranking the space with the
  // model and measuring only the top-K >= stage1_keep candidates must
  // select the exact kernel the exhaustive search selects.
  const SearchEngine engine(DeviceId::Cayman);
  const SearchOptions opt = small_search();
  StrategyStats exh_st, topk_st;
  const TunedKernel exh = run_strategy(engine, Precision::SP, opt,
                                       {StrategyKind::Exhaustive}, &exh_st);
  StrategySpec spec;
  spec.kind = StrategyKind::ModelTopK;
  spec.budget = 64;
  const TunedKernel topk =
      run_strategy(engine, Precision::SP, opt, spec, &topk_st);
  EXPECT_EQ(topk.params.key(), exh.params.key());
  EXPECT_DOUBLE_EQ(topk.best_gflops, exh.best_gflops);
  EXPECT_EQ(topk_st.measured, 64);
  EXPECT_EQ(topk_st.model_ranked, topk_st.space);
  EXPECT_LT(topk_st.fraction_measured, 0.17);
}

TEST(StrategyTest, GuidedBudgetsAreRespected) {
  const SearchEngine engine(DeviceId::Tahiti);
  const SearchOptions opt = small_search();
  for (StrategyKind kind :
       {StrategyKind::ModelTopK, StrategyKind::Anneal, StrategyKind::Pso}) {
    StrategySpec spec;
    spec.kind = kind;
    spec.budget = 40;
    StrategyStats st;
    (void)run_strategy(engine, Precision::DP, opt, spec, &st);
    EXPECT_LE(st.measured, 40) << to_string(kind);
    EXPECT_GT(st.measured, 0) << to_string(kind);
    EXPECT_LE(st.fraction_measured, 0.11) << to_string(kind);
  }
}

// --- Bit-reproducibility of the stochastic strategies ---

void expect_identical(const TunedKernel& a, const TunedKernel& b,
                      const char* what) {
  EXPECT_EQ(a.params.key(), b.params.key()) << what;
  EXPECT_EQ(a.best_gflops, b.best_gflops) << what;
  EXPECT_EQ(a.best_n, b.best_n) << what;
  EXPECT_EQ(a.curve, b.curve) << what;
}

TEST(StrategyTest, AnnealIsBitIdenticalAcrossThreadsAndRuns) {
  const SearchEngine engine(DeviceId::Fermi);
  StrategySpec spec;
  spec.kind = StrategyKind::Anneal;
  spec.budget = 96;
  spec.seed = 42;
  SearchOptions opt1 = small_search();
  opt1.threads = 1;
  SearchOptions opt8 = small_search();
  opt8.threads = 8;
  const TunedKernel t1 = run_strategy(engine, Precision::DP, opt1, spec);
  const TunedKernel t8 = run_strategy(engine, Precision::DP, opt8, spec);
  const TunedKernel t8b = run_strategy(engine, Precision::DP, opt8, spec);
  expect_identical(t1, t8, "threads 1 vs 8");
  expect_identical(t8, t8b, "repeated run");

  // A different seed must be able to explore a different trajectory (the
  // selected kernel may coincide, but the stats trace should not).
  StrategySpec other = spec;
  other.seed = 43;
  StrategyStats sa, sb;
  (void)run_strategy(engine, Precision::DP, opt8, spec, &sa);
  (void)run_strategy(engine, Precision::DP, opt8, other, &sb);
  EXPECT_NE(std::make_pair(sa.proposals, sa.measured),
            std::make_pair(sb.proposals, sb.measured));
}

TEST(StrategyTest, PsoIsBitIdenticalAcrossThreadsAndRuns) {
  const SearchEngine engine(DeviceId::SandyBridge);
  StrategySpec spec;
  spec.kind = StrategyKind::Pso;
  spec.budget = 96;
  spec.seed = 7;
  spec.particles = 12;
  SearchOptions opt1 = small_search();
  opt1.threads = 1;
  SearchOptions opt8 = small_search();
  opt8.threads = 8;
  const TunedKernel t1 = run_strategy(engine, Precision::SP, opt1, spec);
  const TunedKernel t8 = run_strategy(engine, Precision::SP, opt8, spec);
  const TunedKernel t8b = run_strategy(engine, Precision::SP, opt8, spec);
  expect_identical(t1, t8, "threads 1 vs 8");
  expect_identical(t8, t8b, "repeated run");
}

TEST(StrategyTest, ModelTopKIsDeterministicAcrossThreads) {
  const SearchEngine engine(DeviceId::Cypress);
  StrategySpec spec;
  spec.kind = StrategyKind::ModelTopK;
  spec.budget = 60;
  SearchOptions opt1 = small_search();
  opt1.threads = 1;
  SearchOptions opt8 = small_search();
  opt8.threads = 8;
  const TunedKernel t1 = run_strategy(engine, Precision::DP, opt1, spec);
  const TunedKernel t8 = run_strategy(engine, Precision::DP, opt8, spec);
  expect_identical(t1, t8, "threads 1 vs 8");
}

// --- Input-aware (shape-class) search ---

TEST(ShapeTest, ShapeCostMatchesEngineEstimate) {
  // shape_cost is the single pricing function: the tuner-side numbers must
  // be exactly what GemmEngine::estimate (serving dispatch) computes.
  const auto id = DeviceId::Tahiti;
  const auto params = codegen::table2_entry(id, Precision::DP).params;
  const perfmodel::PerfModel model(id);
  blas::GemmEngine engine(id);
  for (const auto& [M, N, K] : {std::tuple<index_t, index_t, index_t>{
                                    2048, 2048, 2048},
                                {2000, 64, 2000},
                                {48, 48, 48}}) {
    const tuner::ShapeCost c = tuner::shape_cost(model, params, M, N, K);
    const auto prof = engine.estimate(GemmType::NN, Precision::DP, M, N, K);
    ASSERT_TRUE(c.ok);
    EXPECT_DOUBLE_EQ(c.seconds, prof.total_seconds);
    EXPECT_DOUBLE_EQ(c.gflops, prof.gflops);
    EXPECT_EQ(c.used_direct, prof.used_direct);
  }
}

TEST(ShapeTest, ShapeAwareTuneBeatsTheTableIIKernel) {
  // A skinny class: the square-sweep winner is a poor fit, and the class
  // tune must do at least as well as the Table II seed it includes.
  const auto id = DeviceId::Tahiti;
  const SearchEngine engine(id);
  const perfmodel::PerfModel model(id);
  SearchOptions opt = small_search();
  opt.shape = shape_of(Precision::DP, 2000, 64, 2000);
  const TunedKernel t = engine.tune(Precision::DP, opt);
  ASSERT_TRUE(t.shape.has_value());
  EXPECT_EQ(*t.shape, *opt.shape);
  const auto seed = codegen::table2_entry(id, Precision::DP).params;
  const tuner::ShapeCost seed_cost =
      tuner::shape_cost(model, seed, opt.shape->Mc, opt.shape->Nc,
                        opt.shape->Kc);
  ASSERT_TRUE(seed_cost.ok);
  EXPECT_GE(t.best_gflops, seed_cost.gflops);
  // The class kernel's profile is the class point, not a square sweep.
  EXPECT_EQ(t.best_n, opt.shape->Nc);
  ASSERT_EQ(t.curve.size(), 1u);
}

TEST(ShapeTest, GuidedStrategiesCarryTheShapeClass) {
  const SearchEngine engine(DeviceId::Cayman);
  SearchOptions opt = small_search();
  opt.shape = shape_of(Precision::SP, 120, 120, 1000);
  for (StrategyKind kind :
       {StrategyKind::ModelTopK, StrategyKind::Anneal, StrategyKind::Pso}) {
    StrategySpec spec;
    spec.kind = kind;
    spec.budget = 48;
    const TunedKernel t = run_strategy(engine, Precision::SP, opt, spec);
    ASSERT_TRUE(t.shape.has_value()) << to_string(kind);
    EXPECT_EQ(*t.shape, *opt.shape) << to_string(kind);
    EXPECT_GT(t.best_gflops, 0) << to_string(kind);
  }
}

// --- Shape-keyed TunedDatabase rows ---

TEST(ResultsDbTest, ShapeKeyedRowsAreIndependent) {
  const auto id = DeviceId::Tahiti;
  const SearchEngine engine(id);
  SearchOptions opt = small_search();
  const TunedKernel classic = engine.tune(Precision::DP, opt);
  opt.shape = shape_of(Precision::DP, 2000, 64, 2000);
  const TunedKernel classy = engine.tune(Precision::DP, opt);

  TunedDatabase db;
  db.put(id, Precision::DP, classic);
  db.put(id, Precision::DP, *opt.shape, classy);
  ASSERT_TRUE(db.find(id, Precision::DP).has_value());
  ASSERT_TRUE(db.find(id, Precision::DP, *opt.shape).has_value());
  EXPECT_EQ(db.find(id, Precision::DP)->params.key(), classic.params.key());
  EXPECT_EQ(db.find(id, Precision::DP, *opt.shape)->params.key(),
            classy.params.key());
  // A different class is a different row.
  EXPECT_FALSE(db.find(id, Precision::DP,
                       shape_of(Precision::DP, 64, 2000, 64))
                   .has_value());
}

TEST(ResultsDbTest, ShapeClassSurvivesJsonRoundTrip) {
  const auto id = DeviceId::Kepler;
  const SearchEngine engine(id);
  SearchOptions opt = small_search();
  opt.shape = shape_of(Precision::SP, 256, 48, 512);
  const TunedKernel t = engine.tune(Precision::SP, opt);

  const std::string path = "strategy_test_db.json";
  {
    TunedDatabase db;
    db.put(id, Precision::SP, *opt.shape, t);
    db.save_file(path);
  }
  const TunedDatabase loaded = TunedDatabase::load_file(path);
  std::remove(path.c_str());
  const auto row = loaded.find(id, Precision::SP, *opt.shape);
  ASSERT_TRUE(row.has_value());
  ASSERT_TRUE(row->shape.has_value());
  EXPECT_EQ(*row->shape, *opt.shape);
  EXPECT_EQ(row->params.key(), t.params.key());
  // The class-agnostic row does not exist in this database.
  EXPECT_FALSE(loaded.find(id, Precision::SP).has_value());
}

TEST(ResultsDbTest, LegacyJsonWithoutShapeClassLoads) {
  // Pre-shape-class databases carry no "shape_class" field; they must load
  // as class-agnostic rows (backward compatibility satellite).
  const auto id = DeviceId::Tahiti;
  const SearchEngine engine(id);
  const TunedKernel t = engine.tune(Precision::DP, small_search());
  const std::string path = "strategy_test_legacy.json";
  {
    TunedDatabase db;
    db.put(id, Precision::DP, t);
    db.save_file(path);
  }
  // Strip any shape_class fields to simulate an old file (a class-agnostic
  // save has none, so this is a pure passthrough check).
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  in.close();
  EXPECT_EQ(ss.str().find("shape_class"), std::string::npos);
  const TunedDatabase loaded = TunedDatabase::load_file(path);
  std::remove(path.c_str());
  const auto row = loaded.find(id, Precision::DP);
  ASSERT_TRUE(row.has_value());
  EXPECT_FALSE(row->shape.has_value());
  EXPECT_EQ(row->params.key(), t.params.key());
}

// --- Guided serve warmup ---

serve::WorkloadSpec tiny_spec() {
  return serve::parse_spec(
      "requests=60,seed=11,rate=3000,max_batch=8,queue=128,"
      "devices=Tahiti+SandyBridge");
}

TEST(ServeGuidedTest, GuidedEstimatesAreNeverWorseThanTableII) {
  const auto spec = tiny_spec();
  const auto requests = serve::generate_workload(spec);

  serve::ServeOptions classic_opt;
  serve::GemmServer classic(spec.resolved_devices(), classic_opt);
  classic.warmup();
  classic.ensure_estimates(requests);

  serve::ServeOptions guided_opt;
  guided_opt.tune_strategy = "model_topk,budget=24";
  guided_opt.tune_candidates = 300;
  serve::GemmServer guided(spec.resolved_devices(), guided_opt);
  guided.warmup();
  guided.ensure_estimates(requests);
  EXPECT_GT(guided.class_kernels(), 0u);

  // Every per-class tune includes the Table II seed in its space, so the
  // guided estimate can only match or beat the classic one.
  ASSERT_EQ(classic.estimates().size(), guided.estimates().size());
  bool improved = false;
  for (const auto& [s, classic_row] : classic.estimates()) {
    const auto& guided_row = guided.estimates_for(s);
    ASSERT_EQ(classic_row.size(), guided_row.size());
    for (std::size_t d = 0; d < classic_row.size(); ++d) {
      EXPECT_GE(guided_row[d].gflops, classic_row[d].gflops * (1 - 1e-12))
          << to_string(s) << " device " << d;
      if (guided_row[d].gflops > classic_row[d].gflops * (1 + 1e-12))
        improved = true;
    }
  }
  EXPECT_TRUE(improved);
}

TEST(ServeGuidedTest, GuidedRunCompletesAndReportsStrategy) {
  const auto spec = tiny_spec();
  const auto requests = serve::generate_workload(spec);
  serve::ServeOptions opt;
  opt.tune_strategy = "anneal,budget=32,seed=5";
  opt.tune_candidates = 300;
  serve::GemmServer server(spec.resolved_devices(), opt);
  server.warmup();
  const auto batched = server.run(requests, spec.max_batch,
                                  spec.queue_capacity);
  const auto unbatched = server.run(requests, 1, spec.queue_capacity);
  const Json report =
      serve::build_report(spec, requests, batched, unbatched, opt);
  EXPECT_EQ(report.at("options").at("tune_strategy").as_string(),
            "anneal,budget=32,seed=5");
  std::int64_t completed = 0;
  for (const auto& r : batched.responses)
    if (r.status == serve::RequestStatus::Completed) ++completed;
  EXPECT_GT(completed, 0);
}

TEST(ServeGuidedTest, FreshEstimatesMatchTheWarmTable) {
  const auto spec = tiny_spec();
  const auto requests = serve::generate_workload(spec);
  serve::ServeOptions opt;
  opt.tune_strategy = "model_topk,budget=24";
  opt.tune_candidates = 300;
  serve::GemmServer server(spec.resolved_devices(), opt);
  server.warmup();
  server.ensure_estimates(requests);
  std::vector<tuner::ShapeClass> dp_shapes;
  for (const auto& [s, row] : server.estimates())
    if (s.prec == Precision::DP) dp_shapes.push_back(s);
  ASSERT_FALSE(dp_shapes.empty());
  const auto fresh = server.fresh_estimates(0, Precision::DP, dp_shapes);
  ASSERT_EQ(fresh.size(), dp_shapes.size());
  for (std::size_t i = 0; i < dp_shapes.size(); ++i) {
    const auto& row = server.estimates_for(dp_shapes[i]);
    EXPECT_DOUBLE_EQ(fresh[i].seconds, row[0].seconds);
    EXPECT_DOUBLE_EQ(fresh[i].gflops, row[0].gflops);
    EXPECT_EQ(fresh[i].used_direct, row[0].used_direct);
  }
}

TEST(ServeGuidedTest, BadStrategySpecFailsAtConstruction) {
  serve::ServeOptions opt;
  opt.tune_strategy = "gradient_descent";
  EXPECT_THROW(
      serve::GemmServer({DeviceId::Tahiti}, opt), Error);
}

}  // namespace
}  // namespace gemmtune
