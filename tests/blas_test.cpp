// BLAS-level tests: host reference implementations against each other, and
// the GemmEngine's four multiplication types executed functionally through
// the generated kernels (paper Section IV-B pipeline).
#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "blas/hostblas.hpp"
#include "common/rng.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using blas::GemmEngine;
using codegen::Precision;
using simcl::DeviceId;

template <typename T>
void check_host_variants(Transpose ta, Transpose tb) {
  const index_t M = 17, N = 13, K = 9;
  Rng rng(11);
  Matrix<T> A(ta == Transpose::No ? M : K, ta == Transpose::No ? K : M);
  Matrix<T> B(tb == Transpose::No ? K : N, tb == Transpose::No ? N : K);
  Matrix<T> C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  Matrix<T> Cnaive = C, Cblocked = C, Cparallel = C;
  const T alpha = T(1.5), beta = T(-0.5);
  hostblas::gemm_naive(ta, tb, M, N, K, alpha, A, B, beta, Cnaive);
  hostblas::gemm_blocked(ta, tb, M, N, K, alpha, A, B, beta, Cblocked, 4);
  hostblas::gemm_parallel(ta, tb, M, N, K, alpha, A, B, beta, Cparallel, 3);
  const double tol = hostblas::gemm_tolerance<T>(K);
  EXPECT_LE(max_abs_diff(Cnaive, Cblocked), tol);
  EXPECT_LE(max_abs_diff(Cnaive, Cparallel), tol);
}

TEST(HostBlas, VariantsAgreeDouble) {
  for (GemmType t : all_gemm_types())
    check_host_variants<double>(trans_a(t), trans_b(t));
}

TEST(HostBlas, VariantsAgreeFloat) {
  for (GemmType t : all_gemm_types())
    check_host_variants<float>(trans_a(t), trans_b(t));
}

TEST(HostBlas, ShapeChecks) {
  Matrix<double> A(2, 3), B(3, 2), C(2, 2), Bad(1, 1);
  EXPECT_NO_THROW(hostblas::gemm_naive(Transpose::No, Transpose::No, 2, 2, 3,
                                       1.0, A, B, 0.0, C));
  EXPECT_THROW(hostblas::gemm_naive(Transpose::No, Transpose::No, 2, 2, 3,
                                    1.0, Bad, B, 0.0, C),
               Error);
}

// ---- GemmEngine functional path ------------------------------------------------

template <typename T>
void run_engine_type(DeviceId dev, GemmType type, index_t M, index_t N,
                     index_t K, std::uint64_t seed) {
  GemmEngine engine(dev);
  const Transpose ta = trans_a(type), tb = trans_b(type);
  Rng rng(seed);
  Matrix<T> A(ta == Transpose::No ? M : K, ta == Transpose::No ? K : M);
  Matrix<T> B(tb == Transpose::No ? K : N, tb == Transpose::No ? N : K);
  Matrix<T> C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  const auto prof = engine.gemm(ta, tb, M, N, K, T(1.25), A, B, T(0.5), C,
                                /*verify=*/true);
  EXPECT_GE(prof.max_error, 0);
  EXPECT_LE(prof.max_error, hostblas::gemm_tolerance<T>(K))
      << simcl::to_string(dev) << " " << to_string(type);
  EXPECT_GT(prof.total_seconds, 0);
  EXPECT_GT(prof.kernel_seconds, 0);
  if (prof.used_direct) {
    // The copy-free path has no pack/unpack time at all.
    EXPECT_DOUBLE_EQ(prof.copy_seconds, 0.0);
  } else {
    EXPECT_GT(prof.copy_seconds, 0);
  }
  EXPECT_NEAR(prof.total_seconds, prof.kernel_seconds + prof.copy_seconds,
              1e-12);
  EXPECT_GT(prof.gflops, 0);
}

TEST(GemmEngine, AllFourTypesDoubleOnTahiti) {
  for (GemmType t : all_gemm_types())
    run_engine_type<double>(DeviceId::Tahiti, t, 100, 37, 50, 21);
}

TEST(GemmEngine, AllFourTypesFloatOnTahiti) {
  for (GemmType t : all_gemm_types())
    run_engine_type<float>(DeviceId::Tahiti, t, 100, 37, 50, 22);
}

TEST(GemmEngine, FunctionalOnEveryDevice) {
  // Every device's tuned kernel must produce correct results for an
  // awkward (padded) problem shape.
  for (DeviceId dev : simcl::evaluation_devices()) {
    run_engine_type<double>(dev, GemmType::NN, 70, 41, 33, 23);
    run_engine_type<float>(dev, GemmType::TN, 70, 41, 33, 24);
  }
}

TEST(GemmEngine, EstimateMatchesPaperScaleOnTahiti) {
  GemmEngine engine(DeviceId::Tahiti);
  // Table III: our DGEMM implementation reaches ~852 GFlop/s on Tahiti at
  // large sizes (column-major, including copy overhead).
  const double g = engine.estimate_gflops(GemmType::NN, Precision::DP, 5760);
  EXPECT_GT(g, 780);
  EXPECT_LT(g, 960);
}

TEST(GemmEngine, CopyOverheadDominatesSmallSizes) {
  // Paper Section IV-B: "the current implementation is not fast for small
  // sizes because the ratio of copying time to total time is relatively
  // big", amortized as O(N^2)/O(N^3) at larger sizes.
  GemmEngine engine(DeviceId::Tahiti);
  const auto small = engine.estimate(GemmType::NN, Precision::DP, 256, 256,
                                     256);
  const auto large = engine.estimate(GemmType::NN, Precision::DP, 4096, 4096,
                                     4096);
  EXPECT_GT(small.copy_seconds / small.total_seconds,
            large.copy_seconds / large.total_seconds);
  EXPECT_LT(large.copy_seconds / large.total_seconds, 0.2);
  EXPECT_LT(small.gflops, large.gflops);
}

TEST(GemmEngine, TypeInsensitivity) {
  // Table III: our implementation's performance "does not highly depend on
  // GEMM types" — all four types pack into the same A^T*B kernel.
  GemmEngine engine(DeviceId::Cayman);
  double lo = 1e30, hi = 0;
  for (GemmType t : all_gemm_types()) {
    const double g = engine.estimate_gflops(t, Precision::SP, 3840);
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_LT((hi - lo) / hi, 0.02);
}

}  // namespace
}  // namespace gemmtune

namespace gemmtune {
namespace {

TEST(GemmEngine, HonorsAnInjectedTuningDatabase) {
  // A database tuned elsewhere (e.g. by the CLI) drives the engine: inject
  // a deliberately different kernel and observe it being used.
  codegen::KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 16;
  p.Nwg = 16;
  p.Kwg = 8;
  p.MdimC = p.NdimC = 8;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 1;
  p.share_a = p.share_b = true;
  tuner::TunedDatabase db;
  db.put(DeviceId::Tahiti, Precision::DP,
         tuner::profile_kernel(DeviceId::Tahiti, p, 1024));
  GemmEngine engine(DeviceId::Tahiti, std::move(db));
  EXPECT_EQ(engine.kernel_for(Precision::DP).params, p);
  // And the functional path runs correctly with it.
  run_engine_type<double>(DeviceId::Tahiti, GemmType::NT, 40, 24, 20, 77);
}

TEST(GemmEngine, RectangularProblemsAllDevices) {
  for (DeviceId dev : {DeviceId::Cayman, DeviceId::SandyBridge}) {
    run_engine_type<double>(dev, GemmType::TT, 90, 30, 55, 88);
    run_engine_type<float>(dev, GemmType::NT, 33, 120, 47, 89);
  }
}

}  // namespace
}  // namespace gemmtune
