// Tests for the native JIT backend's machinery (native.hpp) and the
// LRU-bounded program cache (compile.hpp): emitter determinism, the
// on-disk .so cache round-trip (a warm start needs no compiler at all),
// graceful fallback to bytecode when no toolchain is usable, read-only
// cache-dir handling, and cache eviction under GEMMTUNE_PROGRAM_CACHE_MAX.
// Semantic equivalence of the native backend (buffers, counters, error
// parity) lives in vm_test.cpp's three-way differentials and
// fuzz_codegen_test.cpp.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/kernel.hpp"
#include "kernelir/native.hpp"
#include "simcl/runtime.hpp"
#include "trace/trace.hpp"

namespace gemmtune::ir {
namespace {

// Restores every piece of process-wide state a test may touch: the JIT
// probe/dir, the backend override, the program cache and its cap, and the
// environment knobs.
class NativeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The SIMD tests pin the mode through the process-wide override, so
    // an externally-exported GEMMTUNE_NATIVE_SIMD must not leak in.
    unsetenv("GEMMTUNE_NATIVE_SIMD");
    reset_all();
  }
  void TearDown() override {
    unsetenv("GEMMTUNE_JIT_CXX");
    unsetenv("GEMMTUNE_JIT_CACHE");
    unsetenv("GEMMTUNE_NATIVE_SIMD");
    reset_all();
    trace::set_enabled(false);
  }
  static void reset_all() {
    set_jit_cache_dir("");
    reset_native_probe();
    set_backend_override(Backend::Auto);
    set_native_simd_override(NativeSimd::Auto);
    set_program_cache_max(0);
    compiled_cache_clear();
  }
};

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "native-test-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = ::mkdtemp(buf.data());
  EXPECT_NE(d, nullptr);
  return d != nullptr ? d : "";
}

int count_shared_objects(const std::string& dir) {
  int n = 0;
  std::string cmd = "ls " + dir + "/gemmtune-*.so >/dev/null 2>&1";
  if (std::system(cmd.c_str()) == 0) {
    // Count via a shell glob so the test has no directory-walk helper.
    FILE* p = ::popen(("ls " + dir + " | grep -c '\\.so$'").c_str(), "r");
    if (p != nullptr) {
      char line[32] = {0};
      if (std::fgets(line, sizeof line, p) != nullptr) n = std::atoi(line);
      ::pclose(p);
    }
  }
  return n;
}

/// A small kernel parameterized by `salt` so each value compiles to a
/// distinct cache entry: out[gid] = a[gid] * salt + gid.
Kernel salted_kernel(int salt) {
  const Type t1 = fp(Scalar::F64, 1);
  KernelBuilder b("salted", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F64);
  const int gid = b.decl_var("gid", i32());
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(store_global(
      0, b.ref(gid),
      bin(BinOp::FMul, load_global(1, b.ref(gid), t1),
          fconst(static_cast<double>(salt), t1))));
  return b.build();
}

struct LaunchSetup {
  std::vector<simcl::BufferPtr> bufs;
  std::vector<ArgValue> args;
};

LaunchSetup salted_args(int n) {
  LaunchSetup s;
  auto out = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n) * sizeof(double));
  auto a = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n) * sizeof(double));
  for (int j = 0; j < n; ++j) a->as<double>()[j] = 0.5 * j - 1.0;
  s.bufs = {out, a};
  s.args = {ArgValue::of(out), ArgValue::of(a)};
  return s;
}

std::vector<double> run_salted(int salt, Backend be) {
  const Kernel k = salted_kernel(salt);
  LaunchSetup s = salted_args(8);
  launch_with_backend(k, {8, 1}, {4, 1}, s.args, 1, be);
  const double* p = s.bufs[0]->as<double>();
  return std::vector<double>(p, p + 8);
}

std::uint64_t trace_counter(const char* name) {
  const Json m = trace::metrics_json();
  const Json& c = m.at("counters");
  if (!c.contains(name)) return 0;
  return static_cast<std::uint64_t>(c.at(name).as_int());
}

// ---- emitter ---------------------------------------------------------------

TEST_F(NativeTest, EmitterIsDeterministicAndSelfContained) {
  const Kernel k = salted_kernel(3);
  const CompiledKernelPtr prog = compile(k);
  const std::string src1 = emit_native_source(k, *prog);
  const std::string src2 = emit_native_source(k, *prog);
  EXPECT_EQ(src1, src2);
  // The TU must export the versioned entry symbol and include nothing
  // beyond the C standard headers it spells out.
  EXPECT_NE(src1.find(kNativeEntrySymbol), std::string::npos);
  EXPECT_NE(src1.find("extern \"C\""), std::string::npos);
  EXPECT_EQ(src1.find("#include \""), std::string::npos);
}

// ---- JIT + disk cache ------------------------------------------------------

TEST_F(NativeTest, DiskCacheRoundTripSkipsCompilerOnWarmStart) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  const std::string dir = make_temp_dir();
  set_jit_cache_dir(dir);

  const std::vector<double> cold = run_salted(7, Backend::Native);
  EXPECT_EQ(count_shared_objects(dir), 1);

  // Warm start: fresh program cache, *broken* compiler. The cached .so
  // must carry the launch without any fallback.
  compiled_cache_clear();
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  trace::reset();
  trace::set_enabled(true);
  const std::vector<double> warm = run_salted(7, Backend::Native);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(trace_counter("interp.native_fallback"), 0u);
  EXPECT_GE(trace_counter("interp.native_disk_hits"), 1u);
  EXPECT_EQ(trace_counter("interp.native_compiles"), 0u);
}

TEST_F(NativeTest, NativeMatchesBytecodeBuffers) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  EXPECT_EQ(run_salted(5, Backend::Native), run_salted(5, Backend::Bytecode));
}

// ---- fallback --------------------------------------------------------------

TEST_F(NativeTest, FallsBackToBytecodeWithoutToolchain) {
  // Simulate a machine with no usable compiler: GEMMTUNE_JIT_CXX is
  // consulted exclusively when set, and this one cannot run.
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  EXPECT_FALSE(native_toolchain_available());

  trace::reset();
  trace::set_enabled(true);
  const std::vector<double> via_native = run_salted(9, Backend::Native);
  EXPECT_EQ(via_native, run_salted(9, Backend::Bytecode));
  EXPECT_GE(trace_counter("interp.native_fallback"), 1u);
}

TEST_F(NativeTest, ReadOnlyCacheDirStillRunsNatively) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores directory modes";
  const std::string dir = make_temp_dir();
  ASSERT_EQ(::chmod(dir.c_str(), 0555), 0);
  set_jit_cache_dir(dir);
  trace::reset();
  trace::set_enabled(true);
  // The unwritable persistent dir is skipped in favour of the process
  // temp dir; the launch still runs natively (no fallback) and nothing
  // lands in the read-only directory.
  const std::vector<double> got = run_salted(11, Backend::Native);
  EXPECT_EQ(trace_counter("interp.native_fallback"), 0u);
  EXPECT_EQ(count_shared_objects(dir), 0);
  ::chmod(dir.c_str(), 0755);
  EXPECT_EQ(got, run_salted(11, Backend::Bytecode));
}

TEST_F(NativeTest, FailureIsStickyPerKernel) {
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  const Kernel k = salted_kernel(13);
  std::string why1, why2;
  EXPECT_EQ(get_or_compile_native(k, &why1), nullptr);
  EXPECT_FALSE(why1.empty());
  // The second call answers from the cache without re-probing.
  EXPECT_EQ(get_or_compile_native(k, &why2), nullptr);
  EXPECT_EQ(why2, "native compilation previously failed");
}

// ---- SIMD emitter: three-way differential over fuzzed shapes ---------------

/// One randomized launch shape for the SIMD differential: precision,
/// vector width, work-group geometry and loop trip count all vary.
struct FuzzShape {
  Scalar s = Scalar::F64;
  int w = 2;       ///< vector lanes of the accumulator / global accesses
  int local = 4;   ///< work-group size
  int groups = 2;  ///< number of work-groups
  int trip = 3;    ///< mad-loop trip count
  std::string summary() const {
    return std::string(s == Scalar::F64 ? "f64" : "f32") + " w=" +
           std::to_string(w) + " local=" + std::to_string(local) +
           " groups=" + std::to_string(groups) +
           " trip=" + std::to_string(trip);
  }
};

/// A kernel touching every SIMD-emitted path: local staging + barrier,
/// private staging, the fused splat(load_private) * load_global + acc mad
/// form, a divergent (masked) if, select, and a vector store — all at the
/// shape's width and precision.
Kernel fuzzed_kernel(const FuzzShape& f) {
  const Type t1 = fp(f.s, 1);
  const Type tw = fp(f.s, f.w);
  KernelBuilder b("fuzz", f.s);
  b.add_arg("out", ArgKind::GlobalPtr, f.s);
  b.add_arg("a", ArgKind::GlobalConstPtr, f.s);
  b.add_arg("n", ArgKind::Int, Scalar::I32);
  b.add_arg("alpha", ArgKind::Float, f.s);
  const int gid = b.decl_var("gid", i32());
  const int lx = b.decl_var("lx", i32());
  const int i = b.decl_var("i", i32());
  const int acc = b.decl_var("acc", tw);
  const int t = b.decl_var("t", t1);
  const int lm = b.decl_array("Lm", f.s, f.local, AddrSpace::Local);
  const int pa = b.decl_array("P", f.s, 2, AddrSpace::Private);
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(assign(lx, builtin(BuiltinFn::LocalId, 0)));
  b.append(store_local(lm, b.ref(lx), load_global(1, b.ref(gid), t1)));
  b.append(barrier());
  b.append(assign(t, load_local(lm,
                                bin(BinOp::Mod, b.ref(lx) + 1,
                                    iconst(f.local)),
                                t1)));
  b.append(store_private(pa, iconst(0), b.ref(t)));
  b.append(assign(acc, splat(arg_ref(3, t1), f.w)));
  b.append(for_loop(
      i, iconst(0), arg_ref(2, i32()), iconst(1),
      {
          assign(acc, mad(splat(load_private(pa, iconst(0), t1), f.w),
                          load_global(1, bin(BinOp::Mul, b.ref(gid),
                                             iconst(f.w)),
                                      tw),
                          b.ref(acc))),
          if_then(bin(BinOp::Lt, bin(BinOp::Mod, b.ref(gid), iconst(3)),
                      iconst(1)),
                  {assign(t, bin(BinOp::FMul, b.ref(t),
                                 fconst(1.5, t1)))}),
      }));
  b.append(store_global(
      0, bin(BinOp::Mul, b.ref(gid), iconst(f.w)),
      select(bin(BinOp::Lt, b.ref(gid), iconst(f.groups * f.local / 2)),
             b.ref(acc),
             bin(BinOp::FAdd, b.ref(acc), splat(b.ref(t), f.w)))));
  return b.build();
}

struct FuzzResult {
  std::vector<std::uint8_t> bytes;
  Counters counters;
};

FuzzResult run_fuzzed(const FuzzShape& f, Backend be) {
  const Kernel k = fuzzed_kernel(f);
  const std::size_t es = f.s == Scalar::F64 ? 8 : 4;
  const int nitems = f.groups * f.local;
  const std::size_t elems = static_cast<std::size_t>(nitems) *
                            static_cast<std::size_t>(f.w);
  auto out = std::make_shared<simcl::Buffer>(elems * es);
  auto a = std::make_shared<simcl::Buffer>(elems * es);
  for (std::size_t j = 0; j < elems; ++j) {
    const double v = 0.23 * static_cast<double>(j) - 2.75;
    if (f.s == Scalar::F64) {
      a->as<double>()[j] = v;
    } else {
      a->as<float>()[j] = static_cast<float>(v);
    }
  }
  const std::vector<ArgValue> args = {ArgValue::of(out), ArgValue::of(a),
                                      ArgValue::of_int(f.trip),
                                      ArgValue::of_float(1.25)};
  FuzzResult r;
  r.counters = launch_with_backend(k, {nitems, 1}, {f.local, 1}, args, 1, be);
  for (const auto& buf : {out, a}) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(buf->data());
    r.bytes.insert(r.bytes.end(), p, p + buf->size());
  }
  return r;
}

TEST_F(NativeTest, SimdDifferentialAcrossFuzzedShapes) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  ASSERT_GT(native_simd_width(), 0) << "SIMD emission should be the default";
  // Eight fuzzed shapes, alternating precision and cycling the vector
  // width so every (precision, width) pair appears; geometry and trip
  // count are drawn from the seeded stream. Buffers must come back
  // byte-identical (ULP-exact, including f32 rounding inside the vector
  // bodies) across bytecode, scalar-native and SIMD-native, with equal
  // counters.
  static const int kWidths[] = {1, 2, 4, 8};
  static const int kLocals[] = {2, 4, 8};
  static const int kTrips[] = {0, 1, 3, 7};
  Rng rng(0x51D5);
  for (int n = 0; n < 8; ++n) {
    FuzzShape f;
    f.s = (n % 2) != 0 ? Scalar::F32 : Scalar::F64;
    f.w = kWidths[n % 4];
    f.local = kLocals[rng.next_below(3)];
    f.groups = 1 + static_cast<int>(rng.next_below(3));
    f.trip = kTrips[rng.next_below(4)];
    const FuzzResult byte = run_fuzzed(f, Backend::Bytecode);
    set_native_simd_override(NativeSimd::Off);
    const FuzzResult scalar = run_fuzzed(f, Backend::Native);
    set_native_simd_override(NativeSimd::On);
    const FuzzResult simd = run_fuzzed(f, Backend::Native);
    set_native_simd_override(NativeSimd::Auto);
    EXPECT_EQ(byte.bytes, scalar.bytes)
        << "scalar-native divergence: " << f.summary();
    EXPECT_EQ(byte.counters, scalar.counters)
        << "scalar-native counter divergence: " << f.summary();
    EXPECT_EQ(byte.bytes, simd.bytes)
        << "SIMD-native divergence: " << f.summary();
    EXPECT_EQ(byte.counters, simd.counters)
        << "SIMD-native counter divergence: " << f.summary();
  }
}

TEST_F(NativeTest, ScalarAndSimdObjectsDoNotCollide) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  ASSERT_GT(native_simd_width(), 0);
  const std::string dir = make_temp_dir();
  set_jit_cache_dir(dir);
  set_native_simd_override(NativeSimd::Off);
  const std::vector<double> off = run_salted(31, Backend::Native);
  EXPECT_EQ(count_shared_objects(dir), 1);
  // Flipping the mode mid-process must compile a second object (separate
  // hash), not serve the scalar one from either cache layer.
  compiled_cache_clear();
  set_native_simd_override(NativeSimd::On);
  const std::vector<double> on = run_salted(31, Backend::Native);
  EXPECT_EQ(count_shared_objects(dir), 2);
  EXPECT_EQ(off, on);
}

TEST_F(NativeTest, SimdResolutionPrecedence) {
  // Environment: on / off.
  setenv("GEMMTUNE_NATIVE_SIMD", "off", 1);
  EXPECT_EQ(native_simd_width(), 0);
  setenv("GEMMTUNE_NATIVE_SIMD", "on", 1);
  EXPECT_GT(native_simd_width(), 0);
  // The process-wide override (the --native-simd flag) beats it.
  setenv("GEMMTUNE_NATIVE_SIMD", "on", 1);
  set_native_simd_override(NativeSimd::Off);
  EXPECT_EQ(native_simd_width(), 0);
  setenv("GEMMTUNE_NATIVE_SIMD", "off", 1);
  set_native_simd_override(NativeSimd::On);
  EXPECT_GT(native_simd_width(), 0);
  // Unknown values are rejected, not guessed at.
  setenv("GEMMTUNE_NATIVE_SIMD", "nonsense", 1);
  set_native_simd_override(NativeSimd::Auto);
  try {
    native_simd_width();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GEMMTUNE_NATIVE_SIMD: unknown value 'nonsense' "
                        "(use on, off)"),
              std::string::npos)
        << what;
  }
  unsetenv("GEMMTUNE_NATIVE_SIMD");
}

// ---- toolchain probe caching -----------------------------------------------

TEST_F(NativeTest, ToolchainProbeIsCachedProcessWide) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  trace::reset();
  trace::set_enabled(true);
  reset_native_probe();
  run_salted(21, Backend::Native);
  const std::uint64_t probes = trace_counter("interp.toolchain_probe");
  EXPECT_GE(probes, 1u);
  // Three more cold compiles (fresh program cache, fresh disk cache, so
  // the compiler genuinely runs each time) must not probe again.
  for (int salt = 22; salt <= 24; ++salt) {
    compiled_cache_clear();
    set_jit_cache_dir(make_temp_dir());
    run_salted(salt, Backend::Native);
  }
  EXPECT_GE(trace_counter("interp.native_compiles"), 3u);
  EXPECT_EQ(trace_counter("interp.toolchain_probe"), probes);
}

// ---- LRU-bounded program cache ---------------------------------------------

TEST_F(NativeTest, ProgramCacheEvictsLeastRecentlyUsed) {
  set_program_cache_max(8);
  trace::reset();
  trace::set_enabled(true);
  // A fuzzing-style stream of distinct kernels must not grow the cache
  // beyond the cap no matter how many shapes flow through.
  for (int salt = 1; salt <= 300; ++salt) {
    run_salted(salt, Backend::Bytecode);
    ASSERT_LE(compiled_cache_size(), 8u) << "salt " << salt;
  }
  EXPECT_EQ(compiled_cache_size(), 8u);
  EXPECT_GE(trace_counter("interp.cache_evict"), 292u);

  // Recency: re-touch salt 300 (the newest), then push 7 fresh kernels —
  // 300 must survive; salt 294 (the oldest of the final eight) must not.
  run_salted(300, Backend::Bytecode);
  const std::uint64_t misses_before = trace_counter("interp.cache_miss");
  for (int salt = 301; salt <= 307; ++salt)
    run_salted(salt, Backend::Bytecode);
  run_salted(300, Backend::Bytecode);  // still cached -> no new miss
  EXPECT_EQ(trace_counter("interp.cache_miss"), misses_before + 7);
  run_salted(294, Backend::Bytecode);  // evicted -> recompiles
  EXPECT_EQ(trace_counter("interp.cache_miss"), misses_before + 8);
}

TEST_F(NativeTest, ShrinkingCapEvictsImmediately) {
  set_program_cache_max(16);
  for (int salt = 1; salt <= 12; ++salt)
    run_salted(salt, Backend::Bytecode);
  EXPECT_EQ(compiled_cache_size(), 12u);
  set_program_cache_max(4);
  EXPECT_LE(compiled_cache_size(), 4u);
}

}  // namespace
}  // namespace gemmtune::ir
