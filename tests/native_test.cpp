// Tests for the native JIT backend's machinery (native.hpp) and the
// LRU-bounded program cache (compile.hpp): emitter determinism, the
// on-disk .so cache round-trip (a warm start needs no compiler at all),
// graceful fallback to bytecode when no toolchain is usable, read-only
// cache-dir handling, and cache eviction under GEMMTUNE_PROGRAM_CACHE_MAX.
// Semantic equivalence of the native backend (buffers, counters, error
// parity) lives in vm_test.cpp's three-way differentials and
// fuzz_codegen_test.cpp.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/kernel.hpp"
#include "kernelir/native.hpp"
#include "simcl/runtime.hpp"
#include "trace/trace.hpp"

namespace gemmtune::ir {
namespace {

// Restores every piece of process-wide state a test may touch: the JIT
// probe/dir, the backend override, the program cache and its cap, and the
// environment knobs.
class NativeTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_all(); }
  void TearDown() override {
    unsetenv("GEMMTUNE_JIT_CXX");
    unsetenv("GEMMTUNE_JIT_CACHE");
    reset_all();
    trace::set_enabled(false);
  }
  static void reset_all() {
    set_jit_cache_dir("");
    reset_native_probe();
    set_backend_override(Backend::Auto);
    set_program_cache_max(0);
    compiled_cache_clear();
  }
};

std::string make_temp_dir() {
  std::string tmpl = ::testing::TempDir() + "native-test-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = ::mkdtemp(buf.data());
  EXPECT_NE(d, nullptr);
  return d != nullptr ? d : "";
}

int count_shared_objects(const std::string& dir) {
  int n = 0;
  std::string cmd = "ls " + dir + "/gemmtune-*.so >/dev/null 2>&1";
  if (std::system(cmd.c_str()) == 0) {
    // Count via a shell glob so the test has no directory-walk helper.
    FILE* p = ::popen(("ls " + dir + " | grep -c '\\.so$'").c_str(), "r");
    if (p != nullptr) {
      char line[32] = {0};
      if (std::fgets(line, sizeof line, p) != nullptr) n = std::atoi(line);
      ::pclose(p);
    }
  }
  return n;
}

/// A small kernel parameterized by `salt` so each value compiles to a
/// distinct cache entry: out[gid] = a[gid] * salt + gid.
Kernel salted_kernel(int salt) {
  const Type t1 = fp(Scalar::F64, 1);
  KernelBuilder b("salted", Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F64);
  const int gid = b.decl_var("gid", i32());
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(store_global(
      0, b.ref(gid),
      bin(BinOp::FMul, load_global(1, b.ref(gid), t1),
          fconst(static_cast<double>(salt), t1))));
  return b.build();
}

struct LaunchSetup {
  std::vector<simcl::BufferPtr> bufs;
  std::vector<ArgValue> args;
};

LaunchSetup salted_args(int n) {
  LaunchSetup s;
  auto out = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n) * sizeof(double));
  auto a = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n) * sizeof(double));
  for (int j = 0; j < n; ++j) a->as<double>()[j] = 0.5 * j - 1.0;
  s.bufs = {out, a};
  s.args = {ArgValue::of(out), ArgValue::of(a)};
  return s;
}

std::vector<double> run_salted(int salt, Backend be) {
  const Kernel k = salted_kernel(salt);
  LaunchSetup s = salted_args(8);
  launch_with_backend(k, {8, 1}, {4, 1}, s.args, 1, be);
  const double* p = s.bufs[0]->as<double>();
  return std::vector<double>(p, p + 8);
}

std::uint64_t trace_counter(const char* name) {
  const Json m = trace::metrics_json();
  const Json& c = m.at("counters");
  if (!c.contains(name)) return 0;
  return static_cast<std::uint64_t>(c.at(name).as_int());
}

// ---- emitter ---------------------------------------------------------------

TEST_F(NativeTest, EmitterIsDeterministicAndSelfContained) {
  const Kernel k = salted_kernel(3);
  const CompiledKernelPtr prog = compile(k);
  const std::string src1 = emit_native_source(k, *prog);
  const std::string src2 = emit_native_source(k, *prog);
  EXPECT_EQ(src1, src2);
  // The TU must export the versioned entry symbol and include nothing
  // beyond the C standard headers it spells out.
  EXPECT_NE(src1.find(kNativeEntrySymbol), std::string::npos);
  EXPECT_NE(src1.find("extern \"C\""), std::string::npos);
  EXPECT_EQ(src1.find("#include \""), std::string::npos);
}

// ---- JIT + disk cache ------------------------------------------------------

TEST_F(NativeTest, DiskCacheRoundTripSkipsCompilerOnWarmStart) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  const std::string dir = make_temp_dir();
  set_jit_cache_dir(dir);

  const std::vector<double> cold = run_salted(7, Backend::Native);
  EXPECT_EQ(count_shared_objects(dir), 1);

  // Warm start: fresh program cache, *broken* compiler. The cached .so
  // must carry the launch without any fallback.
  compiled_cache_clear();
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  trace::reset();
  trace::set_enabled(true);
  const std::vector<double> warm = run_salted(7, Backend::Native);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(trace_counter("interp.native_fallback"), 0u);
  EXPECT_GE(trace_counter("interp.native_disk_hits"), 1u);
  EXPECT_EQ(trace_counter("interp.native_compiles"), 0u);
}

TEST_F(NativeTest, NativeMatchesBytecodeBuffers) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  EXPECT_EQ(run_salted(5, Backend::Native), run_salted(5, Backend::Bytecode));
}

// ---- fallback --------------------------------------------------------------

TEST_F(NativeTest, FallsBackToBytecodeWithoutToolchain) {
  // Simulate a machine with no usable compiler: GEMMTUNE_JIT_CXX is
  // consulted exclusively when set, and this one cannot run.
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  EXPECT_FALSE(native_toolchain_available());

  trace::reset();
  trace::set_enabled(true);
  const std::vector<double> via_native = run_salted(9, Backend::Native);
  EXPECT_EQ(via_native, run_salted(9, Backend::Bytecode));
  EXPECT_GE(trace_counter("interp.native_fallback"), 1u);
}

TEST_F(NativeTest, ReadOnlyCacheDirStillRunsNatively) {
  if (!native_toolchain_available()) GTEST_SKIP() << "no host toolchain";
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores directory modes";
  const std::string dir = make_temp_dir();
  ASSERT_EQ(::chmod(dir.c_str(), 0555), 0);
  set_jit_cache_dir(dir);
  trace::reset();
  trace::set_enabled(true);
  // The unwritable persistent dir is skipped in favour of the process
  // temp dir; the launch still runs natively (no fallback) and nothing
  // lands in the read-only directory.
  const std::vector<double> got = run_salted(11, Backend::Native);
  EXPECT_EQ(trace_counter("interp.native_fallback"), 0u);
  EXPECT_EQ(count_shared_objects(dir), 0);
  ::chmod(dir.c_str(), 0755);
  EXPECT_EQ(got, run_salted(11, Backend::Bytecode));
}

TEST_F(NativeTest, FailureIsStickyPerKernel) {
  setenv("GEMMTUNE_JIT_CXX", "/nonexistent-compiler", 1);
  reset_native_probe();
  const Kernel k = salted_kernel(13);
  std::string why1, why2;
  EXPECT_EQ(get_or_compile_native(k, &why1), nullptr);
  EXPECT_FALSE(why1.empty());
  // The second call answers from the cache without re-probing.
  EXPECT_EQ(get_or_compile_native(k, &why2), nullptr);
  EXPECT_EQ(why2, "native compilation previously failed");
}

// ---- LRU-bounded program cache ---------------------------------------------

TEST_F(NativeTest, ProgramCacheEvictsLeastRecentlyUsed) {
  set_program_cache_max(8);
  trace::reset();
  trace::set_enabled(true);
  // A fuzzing-style stream of distinct kernels must not grow the cache
  // beyond the cap no matter how many shapes flow through.
  for (int salt = 1; salt <= 300; ++salt) {
    run_salted(salt, Backend::Bytecode);
    ASSERT_LE(compiled_cache_size(), 8u) << "salt " << salt;
  }
  EXPECT_EQ(compiled_cache_size(), 8u);
  EXPECT_GE(trace_counter("interp.cache_evict"), 292u);

  // Recency: re-touch salt 300 (the newest), then push 7 fresh kernels —
  // 300 must survive; salt 294 (the oldest of the final eight) must not.
  run_salted(300, Backend::Bytecode);
  const std::uint64_t misses_before = trace_counter("interp.cache_miss");
  for (int salt = 301; salt <= 307; ++salt)
    run_salted(salt, Backend::Bytecode);
  run_salted(300, Backend::Bytecode);  // still cached -> no new miss
  EXPECT_EQ(trace_counter("interp.cache_miss"), misses_before + 7);
  run_salted(294, Backend::Bytecode);  // evicted -> recompiles
  EXPECT_EQ(trace_counter("interp.cache_miss"), misses_before + 8);
}

TEST_F(NativeTest, ShrinkingCapEvictsImmediately) {
  set_program_cache_max(16);
  for (int salt = 1; salt <= 12; ++salt)
    run_salted(salt, Backend::Bytecode);
  EXPECT_EQ(compiled_cache_size(), 12u);
  set_program_cache_max(4);
  EXPECT_LE(compiled_cache_size(), 4u);
}

}  // namespace
}  // namespace gemmtune::ir
