// End-to-end correctness of generated GEMM kernels: for a sweep of
// parameter sets covering all algorithms, sharing modes, layouts, vector
// widths and stride modes, pack random operands, interpret the generated
// kernel, and compare against the host reference.
#include <gtest/gtest.h>

#include <cstring>

#include "blas/hostblas.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/params.hpp"
#include "common/rng.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::Algorithm;
using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

/// Runs one generated kernel on random data and returns the max abs error
/// against the naive host reference. Also cross-checks basic counters.
template <typename T>
double run_kernel_case(const KernelParams& p, index_t M, index_t N,
                       index_t K, T alpha, T beta, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<T> A(M, K), B(K, N), C(M, N), Cref;
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  Cref = C;
  hostblas::gemm_naive(Transpose::No, Transpose::No, M, N, K, alpha, A, B,
                       beta, Cref);

  const PackedExtents ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);
  auto abuf = pack_a(A, Transpose::No, M, K, ext.Mp, ext.Kp, p.layout_a,
                     p.Mwg, p.Kwg);
  auto bbuf = pack_b(B, Transpose::No, K, N, ext.Kp, ext.Np, p.layout_b,
                     p.Kwg, p.Nwg);
  auto cbuf = pack_c(C, M, N, ext.Mp, ext.Np);

  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Tahiti));
  auto dA = ctx.create_buffer(abuf.size() * sizeof(T));
  auto dB = ctx.create_buffer(bbuf.size() * sizeof(T));
  auto dC = ctx.create_buffer(cbuf.size() * sizeof(T));
  std::memcpy(dA->data(), abuf.data(), abuf.size() * sizeof(T));
  std::memcpy(dB->data(), bbuf.data(), bbuf.size() * sizeof(T));
  std::memcpy(dC->data(), cbuf.data(), cbuf.size() * sizeof(T));

  ir::Kernel k = codegen::generate_gemm_kernel(p);
  const auto geo = codegen::launch_geometry(p, ext.Mp, ext.Np);
  std::vector<ir::ArgValue> args(8);
  args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[GemmKernelArgs::M] = ir::ArgValue::of_int(ext.Mp);
  args[GemmKernelArgs::N] = ir::ArgValue::of_int(ext.Np);
  args[GemmKernelArgs::K] = ir::ArgValue::of_int(ext.Kp);
  args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
  args[GemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
  const ir::Counters counters = ir::launch(k, geo.global, geo.local, args);

  // The micro-kernel performs exactly 2*Mp*Np*Kp flops plus the merge.
  const auto mnk = static_cast<std::uint64_t>(ext.Mp) *
                   static_cast<std::uint64_t>(ext.Np) *
                   static_cast<std::uint64_t>(ext.Kp);
  EXPECT_GE(counters.flops, 2 * mnk);
  EXPECT_EQ(counters.work_groups,
            static_cast<std::uint64_t>((ext.Mp / p.Mwg) * (ext.Np / p.Nwg)));

  std::vector<T> cout(cbuf.size());
  std::memcpy(cout.data(), dC->data(), cout.size() * sizeof(T));
  Matrix<T> Cgot(M, N);
  unpack_c(cout, ext.Mp, ext.Np, Cgot, M, N);
  return max_abs_diff(Cgot, Cref);
}

KernelParams small_base(Precision prec) {
  KernelParams p;
  p.prec = prec;
  p.Mwg = 8;
  p.Nwg = 8;
  p.Kwg = 4;
  p.MdimC = 4;
  p.NdimC = 4;
  p.MdimA = 4;
  p.NdimB = 4;
  p.Kwi = 1;
  p.vw = 1;
  return p;
}

TEST(CodegenGemm, SmokeBasicAlgorithmNoLocal) {
  KernelParams p = small_base(Precision::DP);
  p.layout_a = BlockLayout::RowMajor;
  p.layout_b = BlockLayout::RowMajor;
  const double err = run_kernel_case<double>(p, 16, 16, 12, 1.5, -0.5, 1);
  EXPECT_LE(err, hostblas::gemm_tolerance<double>(12));
}

TEST(CodegenGemm, SmokeSharedBothCBL) {
  KernelParams p = small_base(Precision::DP);
  p.share_a = p.share_b = true;
  const double err = run_kernel_case<double>(p, 16, 16, 12, 1.0, 0.0, 2);
  EXPECT_LE(err, hostblas::gemm_tolerance<double>(12));
}

TEST(CodegenGemm, PaddingNonMultipleSizes) {
  KernelParams p = small_base(Precision::DP);
  p.share_a = p.share_b = true;
  // 13 x 11 x 7 forces padding in every dimension.
  const double err = run_kernel_case<double>(p, 13, 11, 7, 2.0, 3.0, 3);
  EXPECT_LE(err, hostblas::gemm_tolerance<double>(7));
}

TEST(CodegenGemm, SingleTileKEqualsKwg) {
  for (Algorithm algo : {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
    KernelParams p = small_base(Precision::DP);
    p.algo = algo;
    p.share_a = p.share_b = true;
    if (algo == Algorithm::DB) {
      // DB fills half-tiles of Kwg/2 = 2 rows, so KdimA/KdimB must be <= 2.
      p.MdimA = 8;
      p.NdimB = 8;
    }
    ASSERT_EQ(validate(p, simcl::device_spec(simcl::DeviceId::Tahiti)),
              std::nullopt)
        << codegen::to_string(algo);
    const double err = run_kernel_case<double>(p, 8, 8, 4, 1.0, 1.0, 4);
    EXPECT_LE(err, hostblas::gemm_tolerance<double>(4))
        << "algo=" << codegen::to_string(algo);
  }
}

TEST(CodegenGemm, TableIIRepresentativeTahitiDgemm) {
  // The paper's fastest Tahiti DGEMM kernel (Table II), on one block.
  KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 96;
  p.Nwg = 32;
  p.Kwg = 48;
  p.MdimC = 16;
  p.NdimC = 16;
  p.MdimA = 16;
  p.NdimB = 16;
  p.Kwi = 2;
  p.vw = 2;
  p.share_b = true;
  p.layout_a = BlockLayout::CBL;
  p.layout_b = BlockLayout::CBL;
  p.algo = Algorithm::BA;
  ASSERT_EQ(validate(p, simcl::device_spec(simcl::DeviceId::Tahiti)),
            std::nullopt);
  const double err = run_kernel_case<double>(p, 96, 32, 48, 1.0, -1.0, 5);
  EXPECT_LE(err, hostblas::gemm_tolerance<double>(48));
}

TEST(CodegenGemm, TableIIRepresentativeFermiDgemmPL) {
  // Fermi's fastest DGEMM kernel: PL algorithm, B shared, CBL/RBL layouts.
  KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 64;
  p.Nwg = 64;
  p.Kwg = 8;
  p.MdimC = 16;
  p.NdimC = 16;
  p.MdimA = 64;
  p.NdimB = 64;
  p.Kwi = 2;
  p.vw = 1;
  p.stride_n = true;
  p.share_b = true;
  p.layout_a = BlockLayout::CBL;
  p.layout_b = BlockLayout::RBL;
  p.algo = Algorithm::PL;
  ASSERT_EQ(validate(p, simcl::device_spec(simcl::DeviceId::Fermi)),
            std::nullopt);
  const double err = run_kernel_case<double>(p, 64, 64, 24, 0.5, 2.0, 6);
  EXPECT_LE(err, hostblas::gemm_tolerance<double>(24));
}

// ---- exhaustive small sweep -------------------------------------------------

struct SweepCase {
  KernelParams p;
  std::string label;
};

std::vector<SweepCase> make_sweep() {
  std::vector<SweepCase> cases;
  const auto& dev = simcl::device_spec(simcl::DeviceId::Tahiti);
  for (Precision prec : {Precision::DP, Precision::SP}) {
    for (Algorithm algo : {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
      for (int share = 0; share < 4; ++share) {
        for (BlockLayout la : {BlockLayout::RowMajor, BlockLayout::CBL,
                               BlockLayout::RBL}) {
          for (BlockLayout lb : {BlockLayout::CBL, BlockLayout::RBL}) {
            for (int vw : {1, 2}) {
              for (int stride = 0; stride < 4; ++stride) {
                for (int Kwi : {1, 2}) {
                  KernelParams p = small_base(prec);
                  p.algo = algo;
                  p.share_a = (share & 1) != 0;
                  p.share_b = (share & 2) != 0;
                  p.layout_a = la;
                  p.layout_b = lb;
                  p.vw = vw;
                  p.stride_m = (stride & 1) != 0;
                  p.stride_n = (stride & 2) != 0;
                  p.Kwi = Kwi;
                  // Vary the fill reshape when sharing.
                  p.MdimA = p.share_a ? 8 : 4;
                  p.NdimB = p.share_b ? 8 : 4;
                  if (validate(p, dev) != std::nullopt) continue;
                  cases.push_back({p, p.key()});
                }
              }
            }
          }
        }
      }
    }
  }
  return cases;
}

class GemmSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const KernelParams& p = GetParam().p;
  const index_t M = 16, N = 16, K = 12;
  double err, tol;
  if (p.prec == Precision::DP) {
    err = run_kernel_case<double>(p, M, N, K, 1.25, -0.75, 7);
    tol = hostblas::gemm_tolerance<double>(K);
  } else {
    err = run_kernel_case<float>(p, M, N, K, 1.25f, -0.75f, 7);
    tol = hostblas::gemm_tolerance<float>(K);
  }
  EXPECT_LE(err, tol) << p.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmSweep, ::testing::ValuesIn(make_sweep()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string n = info.param.label;
      for (char& c : n)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(CodegenGemmSweep, SweepIsLarge) {
  // Guard against the sweep silently collapsing to a handful of cases.
  EXPECT_GE(make_sweep().size(), 200u);
}

}  // namespace
}  // namespace gemmtune
