// Tuner tests: candidate enumeration validity and determinism, the
// two-stage search procedure of Section III-F, and the results database.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "codegen/paper_kernels.hpp"
#include "tuner/results_db.hpp"
#include "tuner/search.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using simcl::DeviceId;
using tuner::EnumOptions;
using tuner::EnumStats;
using tuner::SearchEngine;
using tuner::SearchOptions;
using tuner::SearchStats;
using tuner::TunedDatabase;

EnumOptions small_enum() {
  EnumOptions o;
  o.max_candidates = 1500;
  return o;
}

TEST(Candidates, AllEnumeratedSetsAreValid) {
  EnumStats st;
  const auto cands = tuner::enumerate_candidates(DeviceId::Tahiti,
                                                 Precision::DP, small_enum(),
                                                 &st);
  EXPECT_EQ(cands.size(), 1500u);
  EXPECT_GT(st.raw_combinations, st.kept);
  EXPECT_GT(st.invalid, 0);
  const auto& dev = simcl::device_spec(DeviceId::Tahiti);
  for (const auto& p : cands) {
    EXPECT_EQ(validate(p, dev), std::nullopt) << p.summary();
    EXPECT_EQ(p.prec, Precision::DP);
  }
}

TEST(Candidates, SpaceIsTensOfThousands) {
  // The paper: "We searched tens of thousands of kernel variants per
  // single GEMM type." Our valid space exceeds that before subsampling.
  EnumStats st;
  EnumOptions o;
  o.max_candidates = 10;
  (void)tuner::enumerate_candidates(DeviceId::Tahiti, Precision::SP, o, &st);
  EXPECT_GT(st.kept, 50000);
}

TEST(Candidates, DeterministicForSeed) {
  const auto a = tuner::enumerate_candidates(DeviceId::Fermi, Precision::SP,
                                             small_enum());
  const auto b = tuner::enumerate_candidates(DeviceId::Fermi, Precision::SP,
                                             small_enum());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Candidates, DeviceConstraintsShapeTheSpace) {
  // Cayman has 32 KB of local memory; no candidate may exceed it.
  const auto cands = tuner::enumerate_candidates(DeviceId::Cayman,
                                                 Precision::SP, small_enum());
  for (const auto& p : cands)
    EXPECT_LE(p.local_mem_bytes(), 32 * 1024) << p.summary();
}

TEST(Search, TwoStageProcedureFindsAFastKernel) {
  SearchEngine engine(DeviceId::Tahiti);
  SearchOptions opt;
  opt.enumeration.max_candidates = 3000;
  SearchStats st;
  const auto best = engine.tune(Precision::DP, opt, &st);
  EXPECT_EQ(st.stage1_evaluated, 3001);  // +1 for the Table II seed
  EXPECT_GT(st.stage2_points, 0);
  // The search must do at least as well as the paper's own kernel, since
  // that kernel is seeded into the candidate set.
  const double paper = codegen::table2_entry(DeviceId::Tahiti,
                                             Precision::DP).max_gflops;
  EXPECT_GE(best.best_gflops, paper * 0.999);
  // ...and not absurdly better (the model caps at the device peak).
  EXPECT_LE(best.best_gflops,
            simcl::device_spec(DeviceId::Tahiti).peak_dp_gflops);
  EXPECT_FALSE(best.curve.empty());
  EXPECT_GT(best.best_n, 0);
}

TEST(Search, SweepIsLcmSpacedAndMonotoneInN) {
  SearchEngine engine(DeviceId::Kepler);
  const auto p = codegen::table2_entry(DeviceId::Kepler, Precision::SP).params;
  const auto curve = engine.sweep(p, 4096);
  ASSERT_GT(curve.size(), 4u);
  const std::int64_t lcm = curve.front().first;
  for (std::size_t i = 0; i < curve.size(); ++i)
    EXPECT_EQ(curve[i].first, static_cast<std::int64_t>(i + 1) * lcm);
}

TEST(Search, BulldozerNeverSelectsPlForDgemm) {
  SearchEngine engine(DeviceId::Bulldozer);
  SearchOptions opt;
  opt.enumeration.max_candidates = 2000;
  const auto best = engine.tune(Precision::DP, opt);
  EXPECT_NE(best.params.algo, codegen::Algorithm::PL);
}

TEST(ResultsDb, PutFindRoundTrip) {
  TunedDatabase db;
  EXPECT_FALSE(db.find(DeviceId::Tahiti, Precision::DP).has_value());
  auto t = tuner::profile_kernel(
      DeviceId::Tahiti,
      codegen::table2_entry(DeviceId::Tahiti, Precision::DP).params, 4096);
  db.put(DeviceId::Tahiti, Precision::DP, t);
  const auto hit = db.find(DeviceId::Tahiti, Precision::DP);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->params, t.params);
  EXPECT_EQ(hit->best_gflops, t.best_gflops);
}

TEST(ResultsDb, JsonRoundTrip) {
  TunedDatabase db;
  db.put(DeviceId::Fermi, Precision::SP,
         tuner::profile_kernel(
             DeviceId::Fermi,
             codegen::table2_entry(DeviceId::Fermi, Precision::SP).params,
             2048));
  const std::string text = db.save_json();
  const TunedDatabase back = TunedDatabase::load_json(text);
  const auto hit = back.find(DeviceId::Fermi, Precision::SP);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->params,
            codegen::table2_entry(DeviceId::Fermi, Precision::SP).params);
  EXPECT_EQ(hit->curve.size(),
            db.find(DeviceId::Fermi, Precision::SP)->curve.size());
}

TEST(ResultsDb, FileRoundTrip) {
  TunedDatabase db;
  db.put(DeviceId::Cayman, Precision::DP,
         tuner::profile_kernel(
             DeviceId::Cayman,
             codegen::table2_entry(DeviceId::Cayman, Precision::DP).params,
             2048));
  const std::string path = ::testing::TempDir() + "/gemmtune_db.json";
  db.save_file(path);
  const TunedDatabase back = TunedDatabase::load_file(path);
  EXPECT_TRUE(back.find(DeviceId::Cayman, Precision::DP).has_value());
  std::remove(path.c_str());
  EXPECT_THROW(TunedDatabase::load_file("/nonexistent/x.json"), Error);
}

TEST(ResultsDb, SaveFileLeavesNoTempBehind) {
  TunedDatabase db;
  db.put(DeviceId::Tahiti, Precision::SP,
         tuner::profile_kernel(
             DeviceId::Tahiti,
             codegen::table2_entry(DeviceId::Tahiti, Precision::SP).params,
             1024));
  const std::string path = ::testing::TempDir() + "/gemmtune_atomic.json";
  db.save_file(path);
  // The write goes through path+".tmp" then rename; after a successful
  // save only the final file may exist.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  EXPECT_TRUE(
      TunedDatabase::load_file(path).find(DeviceId::Tahiti, Precision::SP)
          .has_value());
  std::remove(path.c_str());
}

TEST(ResultsDb, LoadFileCorruptJsonNamesThePath) {
  const std::string path = ::testing::TempDir() + "/gemmtune_corrupt.json";
  {
    std::ofstream f(path);
    f << "{ this is not json";
  }
  try {
    TunedDatabase::load_file(path);
    FAIL() << "expected Error for corrupt database";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ResultsDb, LoadFileTruncatedDocumentNamesThePath) {
  TunedDatabase db;
  db.put(DeviceId::Fermi, Precision::DP,
         tuner::profile_kernel(
             DeviceId::Fermi,
             codegen::table2_entry(DeviceId::Fermi, Precision::DP).params,
             1024));
  const std::string path = ::testing::TempDir() + "/gemmtune_trunc.json";
  db.save_file(path);
  std::string text;
  {
    std::ifstream f(path);
    std::ostringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }
  {
    std::ofstream f(path, std::ios::trunc);
    f << text.substr(0, text.size() / 2);  // valid prefix, cut mid-document
  }
  try {
    TunedDatabase::load_file(path);
    FAIL() << "expected Error for truncated database";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ResultsDb, PaperSeededCoversAllDevices) {
  const TunedDatabase db = TunedDatabase::paper_seeded();
  EXPECT_EQ(db.size(), 14u);  // 7 devices x 2 precisions
  for (DeviceId id : simcl::all_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto hit = db.find(id, prec);
      ASSERT_TRUE(hit.has_value()) << simcl::to_string(id);
      EXPECT_GT(hit->best_gflops, 0);
    }
  }
}

TEST(ResultsDb, GetOrTuneCachesTheResult) {
  TunedDatabase db;
  SearchOptions opt;
  opt.enumeration.max_candidates = 300;
  const auto& a = db.get_or_tune(DeviceId::Kepler, Precision::DP, opt);
  const auto& b = db.get_or_tune(DeviceId::Kepler, Precision::DP, opt);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(db.size(), 1u);
}

}  // namespace
}  // namespace gemmtune

namespace gemmtune {
namespace {

TEST(Search, DeterministicAcrossRuns) {
  // The whole pipeline is seeded: two identical searches must select the
  // same kernel with the same measured numbers.
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 800;
  tuner::SearchEngine engine(simcl::DeviceId::Cayman);
  const auto a = engine.tune(codegen::Precision::SP, opt);
  const auto b = engine.tune(codegen::Precision::SP, opt);
  EXPECT_EQ(a.params, b.params);
  EXPECT_DOUBLE_EQ(a.best_gflops, b.best_gflops);
  EXPECT_EQ(a.best_n, b.best_n);
}

TEST(Search, RestrictionsAreHonored) {
  tuner::SearchEngine engine(simcl::DeviceId::Tahiti);
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 800;
  opt.restrict_algo = codegen::Algorithm::DB;
  const auto db_only = engine.tune(codegen::Precision::DP, opt);
  EXPECT_EQ(db_only.params.algo, codegen::Algorithm::DB);
  tuner::SearchOptions opt2;
  opt2.enumeration.max_candidates = 800;
  opt2.restrict_local = false;
  const auto no_local = engine.tune(codegen::Precision::DP, opt2);
  EXPECT_FALSE(no_local.params.share_a || no_local.params.share_b);
}

}  // namespace
}  // namespace gemmtune
