// Vendor baseline model tests: coverage, Table III anchoring, and curve
// behaviour.
#include <gtest/gtest.h>

#include "vendor/baselines.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using simcl::DeviceId;

TEST(Vendor, EveryDeviceHasATableIIIVendor) {
  for (DeviceId id : simcl::evaluation_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto& b = vendor::table3_vendor(id, prec);
      EXPECT_FALSE(b.name.empty());
      for (GemmType t : all_gemm_types())
        EXPECT_GT(vendor::baseline_gflops(b, t, 4096), 0);
    }
  }
}

TEST(Vendor, SaturationsAnchorTableIII) {
  // Spot-check Table III vendor numbers (saturation = reported max).
  const auto& clblas_dp = vendor::table3_vendor(DeviceId::Tahiti,
                                                Precision::DP);
  EXPECT_DOUBLE_EQ(clblas_dp.sat[0], 647);  // NN
  EXPECT_DOUBLE_EQ(clblas_dp.sat[1], 731);  // NT
  EXPECT_DOUBLE_EQ(clblas_dp.sat[2], 549);  // TN
  const auto& clblas_sp = vendor::table3_vendor(DeviceId::Tahiti,
                                                Precision::SP);
  EXPECT_DOUBLE_EQ(clblas_sp.sat[2], 1476);  // the big TN SGEMM dip
  const auto& mkl = vendor::table3_vendor(DeviceId::SandyBridge,
                                          Precision::DP);
  EXPECT_EQ(mkl.name, "Intel MKL 2011.10.319");
  EXPECT_DOUBLE_EQ(mkl.sat[0], 138);
  const auto& acml = vendor::table3_vendor(DeviceId::Bulldozer,
                                           Precision::SP);
  EXPECT_DOUBLE_EQ(acml.sat[0], 103);
}

TEST(Vendor, CurvesAreMonotoneAndSaturating) {
  for (DeviceId id : simcl::evaluation_devices()) {
    const auto& b = vendor::table3_vendor(id, Precision::DP);
    double prev = 0;
    for (std::int64_t n = 256; n <= 8192; n *= 2) {
      const double g = vendor::baseline_gflops(b, GemmType::NN, n);
      EXPECT_GT(g, prev);
      EXPECT_LT(g, b.sat[0]);
      prev = g;
    }
    // Near saturation by n = 8192.
    EXPECT_GT(prev, 0.9 * b.sat[0]);
  }
}

TEST(Vendor, ExtraCurvesExist) {
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::Fermi, Precision::DP,
                                           "MAGMA"));
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::SandyBridge,
                                           Precision::DP, "ATLAS"));
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::SandyBridge,
                                           Precision::DP,
                                           "This study (Intel SDK 2012)"));
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::Tahiti, Precision::DP,
                                           "Our previous study"));
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::Cypress, Precision::DP,
                                           "Nakasato"));
  EXPECT_NO_THROW(vendor::baseline_by_name(DeviceId::Cypress, Precision::DP,
                                           "Du et al."));
  EXPECT_THROW(vendor::baseline_by_name(DeviceId::Cayman, Precision::DP,
                                        "MAGMA"),
               Error);
}

TEST(Vendor, BaselinesListIsStable) {
  const auto a = vendor::baselines(DeviceId::SandyBridge, Precision::DP);
  EXPECT_EQ(a.size(), 3u);  // MKL, ATLAS, SDK-2012 build
  EXPECT_EQ(a.front().name, "Intel MKL 2011.10.319");
}

}  // namespace
}  // namespace gemmtune
