// Tests for the benchmark experiment database: JSONL append/load round
// trips, corruption tolerance with offsets, concurrent appends under the
// shared thread pool, ingest of all three report schemas, deterministic
// query ordering, and the trajectory gate's tolerance boundaries and
// last-K windowing.
#include "benchdb/benchdb.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/report_version.hpp"
#include "common/thread_pool.hpp"

namespace gemmtune::benchdb {
namespace {

/// Fresh per-test database path under the gtest temp dir.
class BenchDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "benchdb_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

Record make_record(const std::string& commit, std::int64_t time,
                   const std::string& bench, double value) {
  Record r;
  r.commit = commit;
  r.commit_time = time;
  r.host = "testhost";
  r.device = "Tahiti";
  r.prec = "SGEMM";
  r.backend = "bytecode";
  r.bench = bench;
  r.scenario = bench;
  r.threads = 1;
  r.source_schema = kBenchReportSchema;
  r.metrics["best_gflops"] = value;
  r.metrics["best_seconds"] = 1.0 / value;
  return r;
}

TEST_F(BenchDbTest, AppendLoadRoundTrip) {
  std::vector<Record> recs = {make_record("aaa", 1, "fig9", 100.0),
                              make_record("bbb", 2, "fig10", 200.0)};
  recs[1].metrics["series.gflops/NN@1024"] = 123.456789012345;
  append_db(path_, recs);

  const LoadResult got = load_db(path_);
  ASSERT_TRUE(got.skipped.empty());
  ASSERT_EQ(got.records.size(), 2u);
  const Record& r = got.records[1];
  EXPECT_EQ(r.commit, "bbb");
  EXPECT_EQ(r.commit_time, 2);
  EXPECT_EQ(r.host, "testhost");
  EXPECT_EQ(r.device, "Tahiti");
  EXPECT_EQ(r.prec, "SGEMM");
  EXPECT_EQ(r.backend, "bytecode");
  EXPECT_EQ(r.bench, "fig10");
  EXPECT_EQ(r.threads, 1);
  EXPECT_EQ(r.source_schema, kBenchReportSchema);
  ASSERT_EQ(r.metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(r.metrics.at("best_gflops"), 200.0);
  EXPECT_DOUBLE_EQ(r.metrics.at("series.gflops/NN@1024"),
                   123.456789012345);
}

TEST_F(BenchDbTest, AppendIsByteDeterministic) {
  append_db(path_, {make_record("aaa", 1, "fig9", 100.0)});
  std::ifstream in(path_);
  std::string line1, rest;
  std::getline(in, line1);
  EXPECT_FALSE(std::getline(in, rest));  // exactly one line
  // Round-tripping the line through parse + to_json reproduces it byte
  // for byte (sorted keys, stable number formatting).
  EXPECT_EQ(Record::from_json(Json::parse(line1)).to_json().dump(), line1);
  // Schema marker is on every line.
  EXPECT_NE(line1.find(kBenchDbSchema), std::string::npos);
}

TEST_F(BenchDbTest, LoadSkipsCorruptLinesWithOffsets) {
  append_db(path_, {make_record("aaa", 1, "fig9", 100.0)});
  std::int64_t good_len = 0;
  {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    good_len = static_cast<std::int64_t>(in.tellg());
  }
  {
    std::ofstream out(path_, std::ios::app);
    out << "{not json at all\n";             // line 2: parse error
    out << "{\"schema\": \"bogus-v9\"}\n";   // line 3: not a record
  }
  append_db(path_, {make_record("bbb", 2, "fig9", 101.0)});

  const LoadResult got = load_db(path_);
  ASSERT_EQ(got.records.size(), 2u);  // good lines survive around the bad
  EXPECT_EQ(got.records[0].commit, "aaa");
  EXPECT_EQ(got.records[1].commit, "bbb");
  ASSERT_EQ(got.skipped.size(), 2u);
  EXPECT_EQ(got.skipped[0].line_no, 2);
  EXPECT_EQ(got.skipped[0].byte_offset, good_len);
  EXPECT_EQ(got.skipped[1].line_no, 3);
  EXPECT_EQ(got.skipped[1].byte_offset,
            good_len + static_cast<std::int64_t>(
                           std::string("{not json at all\n").size()));
  EXPECT_FALSE(got.skipped[0].error.empty());
}

TEST_F(BenchDbTest, MissingFileLoadsEmpty) {
  const LoadResult got = load_db(path_);
  EXPECT_TRUE(got.records.empty());
  EXPECT_TRUE(got.skipped.empty());
}

TEST_F(BenchDbTest, ConcurrentAppendLosesNothing) {
  constexpr int kAppends = 32;
  ThreadPool pool(4);
  pool.parallel_for(kAppends, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i)
      append_db(path_, {make_record("c" + std::to_string(i), i, "fig9",
                                    100.0 + static_cast<double>(i))});
  });

  const LoadResult got = load_db(path_);
  EXPECT_TRUE(got.skipped.empty());  // no torn or interleaved lines
  ASSERT_EQ(got.records.size(), static_cast<std::size_t>(kAppends));
  std::vector<bool> seen(kAppends, false);
  for (const Record& r : got.records)
    seen[static_cast<std::size_t>(r.commit_time)] = true;
  for (int i = 0; i < kAppends; ++i) EXPECT_TRUE(seen[i]) << "lost " << i;
}

TEST_F(BenchDbTest, RecordFromJsonNamesMissingField) {
  Json doc = make_record("aaa", 1, "fig9", 100.0).to_json();
  doc.erase("backend");
  try {
    Record::from_json(doc);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'backend'"), std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------------------
// Ingest

Json bench_report() {
  return Json::parse(R"({
    "schema": ")" + std::string(kBenchReportSchema) + R"(",
    "bench": "fig9_tahiti",
    "meta": {"backend": "bytecode", "commit": "abc123", "commit_time": 7,
             "host": "ci", "threads": 2},
    "scalars": {"best_gflops": 2048.5},
    "comparisons": [{"section": "Fig9", "label": "NN 4096",
                     "paper": 2000.0, "measured": 2100.0}],
    "series": [{"section": "Fig9", "name": "NN",
                "points": [[1024, 1500.0], [2048, 1800.0]]}]
  })");
}

TEST_F(BenchDbTest, IngestBenchReportFlattensSections) {
  const Record r = ingest_report(bench_report(), "fig9.json");
  EXPECT_EQ(r.source_schema, kBenchReportSchema);
  EXPECT_EQ(r.bench, "fig9_tahiti");
  EXPECT_EQ(r.scenario, "fig9_tahiti");
  EXPECT_EQ(r.commit, "abc123");
  EXPECT_EQ(r.commit_time, 7);
  EXPECT_EQ(r.host, "ci");
  EXPECT_EQ(r.backend, "bytecode");
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.device, "mixed");
  ASSERT_EQ(r.metrics.size(), 4u);
  EXPECT_DOUBLE_EQ(r.metrics.at("best_gflops"), 2048.5);
  EXPECT_DOUBLE_EQ(r.metrics.at("comparison.Fig9/NN 4096"), 2100.0);
  EXPECT_DOUBLE_EQ(r.metrics.at("series.Fig9/NN@1024"), 1500.0);
  EXPECT_DOUBLE_EQ(r.metrics.at("series.Fig9/NN@2048"), 1800.0);
}

TEST_F(BenchDbTest, IngestServeReport) {
  const Json doc = Json::parse(R"({
    "schema": ")" + std::string(kServeReportSchema) + R"(",
    "meta": {"backend": "native", "commit": "abc", "commit_time": 1,
             "host": "ci", "threads": 4},
    "workload": {"devices": ["Tahiti", "Cayman"], "requests": 64,
                 "seed": 42, "rate_rps": 800.0, "max_batch": 8},
    "scalars": {"p50_latency_seconds": 0.002, "throughput_rps": 750.0}
  })");
  const Record r = ingest_report(doc, "serve.json");
  EXPECT_EQ(r.bench, "serve");
  EXPECT_EQ(r.device, "Tahiti+Cayman");
  EXPECT_EQ(r.scenario, "requests=64,seed=42,rate=800,max_batch=8");
  EXPECT_DOUBLE_EQ(r.metrics.at("throughput_rps"), 750.0);
}

TEST_F(BenchDbTest, IngestDistReport) {
  const Json doc = Json::parse(R"({
    "schema": ")" + std::string(kDistReportSchema) + R"(",
    "meta": {"backend": "tree", "commit": "abc", "commit_time": 1,
             "host": "ci", "threads": 4},
    "problem": {"devices": ["Tahiti"], "prec": "DGEMM", "type": "NT",
                "m": 4096, "n": 2048, "k": 1024},
    "scalars": {"throughput.gflops": 900.0}
  })");
  const Record r = ingest_report(doc, "dist.json");
  EXPECT_EQ(r.bench, "dist");
  EXPECT_EQ(r.device, "Tahiti");
  EXPECT_EQ(r.prec, "DGEMM");
  EXPECT_EQ(r.scenario, "NT,m=4096,n=2048,k=1024");
}

TEST_F(BenchDbTest, IngestRejectsMissingMetaFieldByName) {
  Json doc = bench_report();
  doc["meta"].erase("threads");
  try {
    ingest_report(doc, "fig9.json");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'threads'"), std::string::npos) << what;
    EXPECT_NE(what.find("fig9.json"), std::string::npos) << what;
  }
}

TEST_F(BenchDbTest, IngestRejectsMissingMetaBlockAndUnknownSchema) {
  Json no_meta = bench_report();
  no_meta.erase("meta");
  EXPECT_THROW(ingest_report(no_meta, "x.json"), Error);

  Json bad = bench_report();
  bad["schema"] = Json("gemmtune-other-v1");
  EXPECT_THROW(ingest_report(bad, "x.json"), Error);
}

TEST_F(BenchDbTest, IngestOverridesReplaceCommitAndTime) {
  IngestOverrides ov;
  ov.commit = "seed-3";
  ov.commit_time = 33;
  const Record r = ingest_report(bench_report(), "fig9.json", ov);
  EXPECT_EQ(r.commit, "seed-3");
  EXPECT_EQ(r.commit_time, 33);
}

// -------------------------------------------------------------------
// Query

TEST_F(BenchDbTest, QueryOrdersDeterministically) {
  // Deliberately shuffled input: ordering is (commit_time, commit, bench,
  // scenario, device, prec, backend, threads).
  std::vector<Record> recs = {make_record("ccc", 3, "fig9", 1),
                              make_record("aaa", 1, "fig10", 2),
                              make_record("aaa", 1, "fig9", 3),
                              make_record("bbb", 2, "fig9", 4)};
  const std::vector<Record> q = query(recs, Filter{});
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q[0].bench, "fig10");  // time 1, fig10 < fig9
  EXPECT_EQ(q[1].bench, "fig9");
  EXPECT_EQ(q[1].commit, "aaa");
  EXPECT_EQ(q[2].commit, "bbb");
  EXPECT_EQ(q[3].commit, "ccc");
}

TEST_F(BenchDbTest, QueryFiltersAndMetricPatterns) {
  std::vector<Record> recs = {make_record("aaa", 1, "fig9", 1),
                              make_record("aaa", 1, "fig10", 2)};
  Filter f;
  f.bench = "fig9";
  EXPECT_EQ(query(recs, f).size(), 1u);

  Filter prefix;
  prefix.commit = "aa";  // commit filters are prefix matches
  EXPECT_EQ(query(recs, prefix).size(), 2u);

  Filter metric;
  metric.metric = "best_g*";
  const std::vector<Record> q = query(recs, metric);
  ASSERT_EQ(q.size(), 2u);
  ASSERT_EQ(q[0].metrics.size(), 1u);
  EXPECT_EQ(q[0].metrics.begin()->first, "best_gflops");

  Filter none;
  none.metric = "nonexistent";  // records left with no metrics are dropped
  EXPECT_TRUE(query(recs, none).empty());

  EXPECT_TRUE(metric_matches("", "anything"));
  EXPECT_TRUE(metric_matches("a.b", "a.b"));
  EXPECT_FALSE(metric_matches("a.b", "a.bc"));
  EXPECT_TRUE(metric_matches("a.*", "a.bc"));
}

TEST_F(BenchDbTest, CommitSequenceIsFirstAppearanceOrder) {
  std::vector<Record> recs = {make_record("x", 5, "fig9", 1),
                              make_record("y", 1, "fig9", 2),
                              make_record("x", 5, "fig10", 3)};
  const std::vector<std::string> seq = commit_sequence(recs);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], "x");  // append order, not timestamp order
  EXPECT_EQ(seq[1], "y");
}

// -------------------------------------------------------------------
// Gate

/// History at `value` for commits h1..hN, then one current-commit record
/// at `current`.
std::vector<Record> gate_fixture(int history, double value,
                                 double current) {
  std::vector<Record> recs;
  for (int i = 1; i <= history; ++i)
    recs.push_back(
        make_record("h" + std::to_string(i), i, "fig9", value));
  recs.push_back(make_record("cur", history + 1, "fig9", current));
  return recs;
}

/// Like gate_fixture but with ONLY best_gflops, so tolerance boundaries
/// can be probed without the reciprocal best_seconds moving too.
std::vector<Record> gflops_fixture(int history, double value,
                                   double current) {
  std::vector<Record> recs = gate_fixture(history, value, current);
  for (Record& r : recs) r.metrics.erase("best_seconds");
  return recs;
}

TEST_F(BenchDbTest, GateExactlyAtToleranceStillPasses) {
  GateOptions opt;
  opt.tol.default_rtol = 0.05;
  // best_gflops is higher-is-better: a drop of exactly 5% passes...
  GateResult at = gate(gflops_fixture(5, 100.0, 95.0), opt);
  EXPECT_TRUE(at.ok()) << at.failures.size();
  EXPECT_GT(at.checked, 0);
  // ...and any drop beyond it fails, reporting the regression geometry.
  GateResult beyond = gate(gflops_fixture(5, 100.0, 94.9), opt);
  ASSERT_EQ(beyond.failures.size(), 1u);
  const GateFailure& f = beyond.failures[0];
  EXPECT_EQ(f.metric, "best_gflops");
  EXPECT_DOUBLE_EQ(f.median, 100.0);
  EXPECT_DOUBLE_EQ(f.current, 94.9);
  EXPECT_NEAR(f.rel_change, 0.051, 1e-12);
  EXPECT_DOUBLE_EQ(f.tolerance, 0.05);
  EXPECT_EQ(f.window, 5);
}

TEST_F(BenchDbTest, GateDirectionFollowsMetricName) {
  GateOptions opt;
  opt.tol.default_rtol = 0.05;
  // best_seconds is lower-is-better (fixture sets it to 1/value):
  // a faster run (higher gflops => lower seconds) must never fail, no
  // matter how large the improvement.
  EXPECT_TRUE(gate(gate_fixture(5, 100.0, 300.0), opt).ok());
  // A slower run fails on BOTH metrics: gflops down and seconds up.
  const GateResult r = gate(gate_fixture(5, 100.0, 50.0), opt);
  EXPECT_EQ(r.failures.size(), 2u);
}

TEST_F(BenchDbTest, GateTwentyPercentRegressionFails) {
  // The acceptance criterion: a synthetic 20% regression on a gated
  // metric fails the default gate.
  GateOptions opt;
  opt.tol.default_rtol = 0.05;
  const GateResult r = gate(gate_fixture(5, 1000.0, 800.0), opt);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const GateFailure& f : r.failures)
    if (f.metric == "best_gflops") {
      found = true;
      EXPECT_NEAR(f.rel_change, 0.20, 1e-12);
    }
  EXPECT_TRUE(found);
}

TEST_F(BenchDbTest, GateWindowsLastKAndHandlesShortHistory) {
  GateOptions opt;
  opt.last_k = 3;
  opt.tol.default_rtol = 0.05;
  // Seven historical values 10,20,...,70: the window is the LAST three
  // (50,60,70, median 60), so current=40 is a 33% drop and fails even
  // though it beats the all-time median of 40.
  std::vector<Record> recs;
  for (int i = 1; i <= 7; ++i)
    recs.push_back(make_record("h" + std::to_string(i), i, "fig9",
                               10.0 * static_cast<double>(i)));
  recs.push_back(make_record("cur", 8, "fig9", 40.0));
  GateResult r = gate(recs, opt);
  ASSERT_FALSE(r.ok());
  EXPECT_DOUBLE_EQ(r.failures[0].median, 60.0);
  EXPECT_EQ(r.failures[0].window, 3);

  // Fewer records than K: gates against what exists (median of an even
  // window is the midpoint average).
  opt.last_k = 5;
  GateResult two = gate(gate_fixture(2, 100.0, 50.0), opt);
  ASSERT_FALSE(two.ok());
  EXPECT_EQ(two.failures[0].window, 2);
  EXPECT_DOUBLE_EQ(two.failures[0].median, 100.0);
}

TEST_F(BenchDbTest, GateNoHistoryPasses) {
  std::vector<Record> recs = {make_record("cur", 1, "fig9", 100.0)};
  GateOptions opt;
  const GateResult r = gate(recs, opt);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.checked, 0);
  EXPECT_EQ(r.no_history, 2);  // both fixture metrics are new
}

TEST_F(BenchDbTest, GateSeparatesSeriesByBackendButNotThreads) {
  // Same bench measured with a different thread count contributes to the
  // same series (results are thread-count invariant); a different
  // backend forms its own series and gates independently.
  std::vector<Record> recs = gate_fixture(5, 100.0, 100.0);
  recs.back().threads = 8;
  EXPECT_TRUE(gate(recs, GateOptions{}).ok());
  Record native = make_record("cur", 6, "fig9", 40.0);
  native.backend = "native";
  recs.push_back(native);
  GateResult r = gate(recs, GateOptions{});
  EXPECT_TRUE(r.ok());  // native series has no history of its own
  EXPECT_GT(r.no_history, 0);

  GateOptions grouped;
  grouped.group_threads = true;
  // With thread grouping the threads=8 current record starts a fresh
  // series too, so nothing gates against the threads=1 history.
  const GateResult g = gate(recs, grouped);
  EXPECT_EQ(g.checked, 0);
}

TEST_F(BenchDbTest, GateSymmetricModeFlagsImprovements) {
  GateOptions opt;
  opt.symmetric = true;
  opt.tol.default_rtol = 0.05;
  // +50% "improvement" on gflops: plain gate passes, symmetric flags it.
  const std::vector<Record> recs = gate_fixture(5, 100.0, 150.0);
  EXPECT_FALSE(gate(recs, opt).ok());
  opt.symmetric = false;
  EXPECT_TRUE(gate(recs, opt).ok());
}

TEST_F(BenchDbTest, PerMetricTolerancesOverrideDefault) {
  Tolerances tol;
  tol.default_rtol = 0.01;
  tol.per_metric = {{"best_gflops", 0.5}, {"series.*", 0.25}};
  EXPECT_DOUBLE_EQ(tol.for_metric("best_gflops"), 0.5);
  EXPECT_DOUBLE_EQ(tol.for_metric("series.Fig9/NN@1024"), 0.25);
  EXPECT_DOUBLE_EQ(tol.for_metric("best_seconds"), 0.01);

  GateOptions opt;
  opt.tol = tol;
  // 20% drop passes under the loosened per-metric tolerance.
  EXPECT_TRUE(gate(gflops_fixture(5, 100.0, 80.0), opt).ok());
}

TEST(BenchDbLowerIsBetter, NameHeuristic) {
  EXPECT_TRUE(lower_is_better("best_seconds"));
  EXPECT_TRUE(lower_is_better("p99_latency_seconds"));
  EXPECT_TRUE(lower_is_better("rejected"));
  // Serving-core tail percentiles and overload counters.
  EXPECT_TRUE(lower_is_better("hist.p99_ms"));
  EXPECT_TRUE(lower_is_better("class.SGEMM.NN.64x64x64.p999_ms"));
  EXPECT_TRUE(lower_is_better("shed.queue_full"));
  EXPECT_TRUE(lower_is_better("shed.expired"));
  EXPECT_FALSE(lower_is_better("best_gflops"));
  EXPECT_FALSE(lower_is_better("throughput_rps"));
  EXPECT_FALSE(lower_is_better("speedup.completed_vs_serial"));
}

// -------------------------------------------------------------------
// Compare

TEST_F(BenchDbTest, CompareReportsIgnoresWallClockSections) {
  Json a = bench_report();
  Json b = bench_report();
  b["metrics"] = Json::parse(R"({"spans": {"x": {"total_ns": 123}}})");
  b["meta"]["host"] = Json("elsewhere");
  std::ostringstream out;
  EXPECT_EQ(compare_reports(a, b, 1e-4, out), 0) << out.str();

  b["scalars"]["best_gflops"] = Json(1024.0);  // real divergence
  std::ostringstream out2;
  EXPECT_GT(compare_reports(a, b, 1e-4, out2), 0);
  EXPECT_NE(out2.str().find("best_gflops"), std::string::npos);
}

TEST_F(BenchDbTest, CompareCommitsResolvesPrefixes) {
  std::vector<Record> recs = {make_record("aaa111", 1, "fig9", 100.0),
                              make_record("bbb222", 2, "fig9", 100.0)};
  std::ostringstream out;
  EXPECT_EQ(compare_commits(recs, "aaa", "bbb", Tolerances{}, out), 0);

  recs[1].metrics["best_gflops"] = 90.0;
  std::ostringstream out2;
  EXPECT_GT(compare_commits(recs, "aaa", "bbb", Tolerances{}, out2), 0);
  EXPECT_THROW(compare_commits(recs, "zzz", "bbb", Tolerances{}, out2),
               Error);
}

// -------------------------------------------------------------------
// Trend

TEST_F(BenchDbTest, SparklineScalesToOwnRange) {
  EXPECT_EQ(sparkline({1.0, 1.0, 1.0}), "▁▁▁");
  const std::string s = sparkline({0.0, 7.0});
  EXPECT_EQ(s, "▁█");  // min -> lowest block, max -> full block
}

TEST_F(BenchDbTest, TrendTracksCommitTrajectory) {
  std::vector<Record> recs;
  for (int i = 1; i <= 4; ++i)
    recs.push_back(make_record("c" + std::to_string(i), i, "fig9",
                               100.0 + static_cast<double>(i)));
  const std::vector<TrendSeries> all = trend(recs, Filter{}, 0);
  ASSERT_EQ(all.size(), 2u);  // one series per metric, key-sorted
  EXPECT_EQ(all[0].metric, "best_gflops");
  ASSERT_EQ(all[0].values.size(), 4u);
  EXPECT_DOUBLE_EQ(all[0].values.front(), 101.0);
  EXPECT_DOUBLE_EQ(all[0].values.back(), 104.0);

  // last_k trims to the trailing commits of the trajectory.
  const std::vector<TrendSeries> tail = trend(recs, Filter{}, 2);
  ASSERT_EQ(tail[0].values.size(), 2u);
  EXPECT_DOUBLE_EQ(tail[0].values.front(), 103.0);

  std::ostringstream out;
  print_trend(all, out);
  EXPECT_NE(out.str().find("best_gflops"), std::string::npos);
  EXPECT_NE(out.str().find("▁"), std::string::npos);
}

TEST_F(BenchDbTest, TrendHtmlIsSelfContainedAndDeterministic) {
  std::vector<Record> recs;
  for (int i = 1; i <= 3; ++i)
    recs.push_back(make_record("c" + std::to_string(i), i, "fig9",
                               100.0 * static_cast<double>(i)));
  const std::vector<TrendSeries> series = trend(recs, Filter{}, 0);
  const std::string html_path = path_ + ".html";
  write_trend_html(series, html_path);
  std::ifstream in(html_path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string html = buf.str();
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("best_gflops"), std::string::npos);
  EXPECT_EQ(html.find("http://"), std::string::npos);   // no external
  EXPECT_EQ(html.find("https://"), std::string::npos);  // resources

  write_trend_html(series, html_path + "2");
  std::ifstream in2(html_path + "2");
  std::stringstream buf2;
  buf2 << in2.rdbuf();
  EXPECT_EQ(html, buf2.str());  // byte-identical re-render
  std::remove(html_path.c_str());
  std::remove((html_path + "2").c_str());
}

// -------------------------------------------------------------------
// CLI round trip

TEST_F(BenchDbTest, CliIngestQueryGateRoundTrip) {
  const std::string report = path_ + ".report.json";
  {
    std::ofstream out(report);
    out << bench_report().dump();
  }
  std::ostringstream out;
  EXPECT_EQ(run_cli({"ingest", report, "--db", path_, "--commit", "s1",
                     "--time", "1"},
                    out),
            0);
  EXPECT_EQ(run_cli({"ingest", report, "--db", path_, "--commit", "s2",
                     "--time", "2"},
                    out),
            0);
  EXPECT_EQ(run_cli({"query", "--db", path_}, out), 0);
  EXPECT_NE(out.str().find("fig9_tahiti"), std::string::npos);
  EXPECT_EQ(run_cli({"gate", "--db", path_, "--last", "5"}, out), 0);
  EXPECT_EQ(run_cli({"compare", "--db", path_, "s1", "s2"}, out), 0);

  // Bad usage paths return nonzero instead of throwing.
  std::ostringstream err;
  EXPECT_NE(run_cli({"frobnicate"}, err), 0);
  EXPECT_NE(run_cli({"ingest", "/nonexistent.json", "--db", path_}, err),
            0);
  std::remove(report.c_str());
}

}  // namespace
}  // namespace gemmtune::benchdb
