// Parallel-execution tests: the thread pool itself, bit-identical tuning
// across thread counts, serial-vs-parallel interpreter equivalence, the
// stage-2 fallback path, concurrent TunedDatabase access, and the CLI
// --threads flag. This binary is also the main ThreadSanitizer target
// (tools/check.sh runs it under -DGEMMTUNE_TSAN=ON).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <sstream>
#include <thread>

#include "cli/cli.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/interp.hpp"
#include "tuner/results_db.hpp"
#include "tuner/search.hpp"

namespace gemmtune {
namespace {

using codegen::Algorithm;
using codegen::KernelParams;
using codegen::Precision;
using simcl::DeviceId;

// ---- thread pool ------------------------------------------------------------

TEST(ThreadPool, ParallelMapPreservesOrder) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    const auto out = parallel_map<std::int64_t>(
        pool, 1000, [](std::int64_t i) { return i * i; });
    ASSERT_EQ(out.size(), 1000u);
    for (std::int64_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(5);
  std::vector<std::atomic<int>> hits(777);
  pool.parallel_for(777, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) sum += static_cast<int>(i) + 1;
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(ThreadPool, PropagatesTheLowestChunkException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(100, [](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i)
        if (i == 37) throw std::runtime_error("chunk failed at 37");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failed at 37");
  }
  // The pool stays usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::int64_t b, std::int64_t e, int) {
    n += static_cast<int>(e - b);
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, NestedDispatchRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) {
      pool.parallel_for(10, [&](std::int64_t b2, std::int64_t e2, int) {
        total += static_cast<int>(e2 - b2);
      });
    }
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPool, ConfigurationPrecedence) {
  set_thread_override(0);
  ASSERT_EQ(setenv("GEMMTUNE_THREADS", "3", 1), 0);
  EXPECT_EQ(configured_threads(), 3);
  set_thread_override(5);  // the CLI flag wins over the environment
  EXPECT_EQ(configured_threads(), 5);
  set_thread_override(0);
  ASSERT_EQ(unsetenv("GEMMTUNE_THREADS"), 0);
  EXPECT_GE(configured_threads(), 1);
}

// ---- tuner determinism ------------------------------------------------------

tuner::SearchOptions fast_opt(int threads) {
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 400;
  opt.stage2_max_n = 4096;
  opt.threads = threads;
  return opt;
}

TEST(ParallelTune, BitIdenticalAcrossThreadCounts) {
  for (DeviceId id : {DeviceId::Tahiti, DeviceId::SandyBridge}) {
    for (Precision prec : {Precision::SP, Precision::DP}) {
      tuner::SearchEngine engine(id);
      tuner::SearchStats st1;
      const auto base = engine.tune(prec, fast_opt(1), &st1);
      for (int threads : {2, 8}) {
        tuner::SearchStats st;
        const auto got = engine.tune(prec, fast_opt(threads), &st);
        SCOPED_TRACE(std::string(simcl::to_string(id)) + " " +
                     to_string(prec) + " threads=" + std::to_string(threads));
        EXPECT_EQ(got.params, base.params);
        EXPECT_EQ(got.stage1_gflops, base.stage1_gflops);  // bit-identical
        EXPECT_EQ(got.best_gflops, base.best_gflops);
        EXPECT_EQ(got.best_n, base.best_n);
        ASSERT_EQ(got.curve.size(), base.curve.size());
        for (std::size_t i = 0; i < got.curve.size(); ++i) {
          EXPECT_EQ(got.curve[i].first, base.curve[i].first);
          EXPECT_EQ(got.curve[i].second, base.curve[i].second);
        }
        EXPECT_EQ(st.stage1_evaluated, st1.stage1_evaluated);
        EXPECT_EQ(st.stage1_failed, st1.stage1_failed);
        EXPECT_EQ(st.stage2_points, st1.stage2_points);
      }
    }
  }
}

TEST(ParallelTune, FallsBackToStage1WhenEverySweepIsEmpty) {
  tuner::SearchEngine engine(DeviceId::Tahiti);
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 200;
  opt.stage2_max_n = 4;  // below every blocking LCM: all sweeps are empty
  tuner::SearchStats st;
  const auto best = engine.tune(Precision::DP, opt, &st);
  EXPECT_TRUE(st.used_stage1_fallback);
  EXPECT_GT(st.stage2_empty, 0);
  EXPECT_EQ(st.stage2_failed.size(), static_cast<std::size_t>(st.stage2_empty));
  EXPECT_GT(best.best_gflops, 0);
  EXPECT_EQ(best.best_gflops, best.stage1_gflops);
  ASSERT_EQ(best.curve.size(), 1u);
  EXPECT_EQ(best.curve[0].first, best.best_n);
}

// ---- interpreter serial vs. parallel ---------------------------------------

struct LaunchResult {
  std::vector<std::byte> c_bytes;
  ir::Counters counters;
};

/// Packs nothing — runs a generated kernel on synthetic pre-padded data so
/// the comparison covers exactly the interpreter, not the pack pipeline.
LaunchResult run_generated(const KernelParams& p, std::int64_t Mp,
                           std::int64_t Np, std::int64_t Kp, int threads) {
  simcl::Context ctx(simcl::device_spec(DeviceId::Tahiti));
  const std::size_t es = static_cast<std::size_t>(element_bytes(p.prec));
  auto dA = ctx.create_buffer(static_cast<std::size_t>(Mp * Kp) * es);
  auto dB = ctx.create_buffer(static_cast<std::size_t>(Kp * Np) * es);
  auto dC = ctx.create_buffer(static_cast<std::size_t>(Mp * Np) * es);
  // Deterministic non-trivial fill.
  auto fill = [&](simcl::Buffer& buf, double scale) {
    const std::size_t n = buf.size() / es;
    for (std::size_t i = 0; i < n; ++i) {
      const double v = scale * (static_cast<double>(i % 97) - 48.0) / 31.0;
      if (p.prec == Precision::DP) {
        buf.as<double>()[i] = v;
      } else {
        buf.as<float>()[i] = static_cast<float>(v);
      }
    }
  };
  fill(*dA, 1.0);
  fill(*dB, 0.75);
  fill(*dC, -0.5);

  ir::Kernel k = codegen::generate_gemm_kernel(p);
  const auto geo = codegen::launch_geometry(p, Mp, Np);
  std::vector<ir::ArgValue> args(8);
  args[codegen::GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[codegen::GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[codegen::GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[codegen::GemmKernelArgs::M] = ir::ArgValue::of_int(Mp);
  args[codegen::GemmKernelArgs::N] = ir::ArgValue::of_int(Np);
  args[codegen::GemmKernelArgs::K] = ir::ArgValue::of_int(Kp);
  args[codegen::GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.25);
  args[codegen::GemmKernelArgs::beta] = ir::ArgValue::of_float(-0.75);
  LaunchResult r;
  r.counters = ir::launch(k, geo.global, geo.local, args, threads);
  r.c_bytes.assign(dC->data(), dC->data() + dC->size());
  return r;
}

KernelParams interp_params(Algorithm algo) {
  KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 8;
  p.Nwg = 8;
  p.Kwg = 4;
  p.MdimC = 4;
  p.NdimC = 4;
  p.MdimA = algo == Algorithm::DB ? 8 : 4;
  p.NdimB = algo == Algorithm::DB ? 8 : 4;
  p.share_a = p.share_b = true;
  p.algo = algo;
  return p;
}

TEST(ParallelInterp, BuffersAndCountersMatchSerialOnBaAndDb) {
  for (Algorithm algo : {Algorithm::BA, Algorithm::DB}) {
    const KernelParams p = interp_params(algo);
    ASSERT_EQ(validate(p, simcl::device_spec(DeviceId::Tahiti)),
              std::nullopt);
    // 4 x 6 = 24 work-groups, so every thread count gets several groups.
    const auto serial = run_generated(p, 32, 48, 12, 1);
    for (int threads : {2, 8}) {
      const auto par = run_generated(p, 32, 48, 12, threads);
      SCOPED_TRACE(std::string(codegen::to_string(algo)) +
                   " threads=" + std::to_string(threads));
      EXPECT_TRUE(par.counters == serial.counters);
      ASSERT_EQ(par.c_bytes.size(), serial.c_bytes.size());
      EXPECT_EQ(std::memcmp(par.c_bytes.data(), serial.c_bytes.data(),
                            serial.c_bytes.size()),
                0);
    }
  }
}

TEST(ParallelInterp, SingleGroupLaunchStaysSerial) {
  const KernelParams p = interp_params(Algorithm::BA);
  const auto serial = run_generated(p, 8, 8, 4, 1);
  const auto par = run_generated(p, 8, 8, 4, 8);
  EXPECT_TRUE(par.counters == serial.counters);
  EXPECT_EQ(std::memcmp(par.c_bytes.data(), serial.c_bytes.data(),
                        serial.c_bytes.size()),
            0);
}

// ---- TunedDatabase concurrency ---------------------------------------------

TEST(ParallelDb, ConcurrentGetOrTuneDedupesSameKey) {
  tuner::TunedDatabase db;
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 150;
  std::vector<const tuner::TunedKernel*> got(4, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)] =
          &db.get_or_tune(DeviceId::Kepler, Precision::DP, opt);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.size(), 1u);
  for (int t = 1; t < 4; ++t) EXPECT_EQ(got[static_cast<std::size_t>(t)],
                                        got[0]);
}

TEST(ParallelDb, ConcurrentDistinctKeysAllLand) {
  tuner::TunedDatabase db;
  tuner::SearchOptions opt;
  opt.enumeration.max_candidates = 150;
  const DeviceId ids[] = {DeviceId::Tahiti, DeviceId::Cayman,
                          DeviceId::Kepler, DeviceId::Fermi};
  std::vector<std::thread> threads;
  for (DeviceId id : ids) {
    threads.emplace_back(
        [&db, &opt, id] { db.get_or_tune(id, Precision::SP, opt); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.size(), 4u);
  for (DeviceId id : ids)
    EXPECT_TRUE(db.find(id, Precision::SP).has_value());
}

// ---- CLI flag ---------------------------------------------------------------

TEST(ParallelCli, ThreadsFlagIsAcceptedEverywhere) {
  std::ostringstream out;
  EXPECT_EQ(cli::run({"--threads", "2", "devices"}, out), 0);
  EXPECT_NE(out.str().find("Tahiti"), std::string::npos);
  std::ostringstream out2;
  EXPECT_EQ(cli::run({"--threads=3", "tune", "Cayman", "SGEMM", "200"}, out2),
            0);
  EXPECT_NE(out2.str().find("best:"), std::string::npos);
  std::ostringstream bad;
  EXPECT_EQ(cli::run({"--threads", "0", "devices"}, bad), 1);
  EXPECT_NE(bad.str().find("error:"), std::string::npos);
  set_thread_override(0);  // don't leak the override into other tests
}

}  // namespace
}  // namespace gemmtune
