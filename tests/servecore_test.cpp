// Concurrent serving core tests: latency histogram invariants, sharded
// queue parity with the serial BatchScheduler, arrival-process modes of
// the workload generator, and the serial-vs-async differential — same
// seed must yield identical request outcomes and bit-identical GEMM
// checksums across shard counts and thread counts, with the accounting
// invariant (completed + shed + expired == generated) holding in every
// mode including realtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/histogram.hpp"
#include "serve/core/async_server.hpp"
#include "serve/core/differential.hpp"
#include "serve/core/sharded_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using serve::Arrival;
using serve::AsyncOptions;
using serve::AsyncOutcome;
using serve::AsyncServer;
using serve::BatchScheduler;
using serve::DiffReport;
using serve::GemmRequest;
using serve::GemmServer;
using serve::RequestStatus;
using serve::ServeOptions;
using serve::ServeOutcome;
using serve::ShapeClass;
using serve::ShardedQueue;
using serve::WorkloadSpec;
using simcl::DeviceId;

GemmRequest small_request(std::int64_t id, double arrival = 0,
                          double deadline = 0, int priority = 0) {
  GemmRequest r;
  r.id = id;
  r.type = GemmType::NN;
  r.prec = Precision::SP;
  r.M = r.N = r.K = 64;
  r.priority = priority;
  r.arrival_seconds = arrival;
  r.deadline_seconds = deadline;
  return r;
}

// --- Latency histogram -------------------------------------------------

TEST(HistogramTest, BucketBoundsRoundTrip) {
  // Every sample must land in a bucket whose upper bound is >= the sample
  // and within the layout's relative-error bound (1/kSubBuckets).
  for (double s : {1e-9, 7e-9, 9e-9, 1e-6, 3.3e-6, 25e-6, 1e-3, 0.5, 7.0,
                   123.0}) {
    const std::size_t b = LatencyHistogram::bucket_of(s);
    const double upper = LatencyHistogram::bucket_upper_seconds(b);
    EXPECT_GE(upper * (1 + 1e-12), s) << "s=" << s;
    EXPECT_LE(upper, s * (1.0 + 1.0 / LatencyHistogram::kSubBuckets) +
                         2e-9)
        << "s=" << s;
    if (b > 0) {
      // A sample on a bucket boundary may sit exactly at the previous
      // bucket's upper bound; it must never sit below it.
      EXPECT_LE(LatencyHistogram::bucket_upper_seconds(b - 1), s);
    }
  }
}

TEST(HistogramTest, QuantilesAreConservativeAndClamped) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.99), 0.0);
  for (int i = 1; i <= 100; ++i) h.record(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 100e-3);
  // Nearest-rank p50 covers the 50th sample; conservative means >=.
  EXPECT_GE(h.quantile(0.50), 50e-3);
  EXPECT_LE(h.quantile(0.50), 50e-3 * 1.2);
  // The extreme quantile is clamped to the true maximum, never beyond.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100e-3);
  EXPECT_LE(h.quantile(0.999), 100e-3);
}

TEST(HistogramTest, MergeEqualsCombinedRecordAnyOrder) {
  std::vector<double> samples;
  std::uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    samples.push_back(1e-9 * static_cast<double>(state % 1000000000ULL));
  }
  LatencyHistogram whole;
  for (double s : samples) whole.record(s);
  // Split across three "executors" in a different order, then merge.
  LatencyHistogram a, b, c;
  for (std::size_t i = samples.size(); i-- > 0;)
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(samples[i]);
  LatencyHistogram merged;
  merged.merge(b);
  merged.merge(a);
  merged.merge(c);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.max_seconds(), whole.max_seconds());
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
  const Json j = whole.summary_json();
  EXPECT_EQ(j.at("count").as_int(), 500);
  EXPECT_GT(j.at("p99_ms").as_number(), j.at("p50_ms").as_number() * 0.99);
}

// --- Shape class helpers -----------------------------------------------

TEST(ShapeClassTest, ToStringAndHash) {
  const GemmRequest r = small_request(0);
  EXPECT_EQ(to_string(ShapeClass::of(r)), "SGEMM.NN.64x64x64");
  GemmRequest other = small_request(1);
  other.prec = Precision::DP;
  EXPECT_EQ(serve::shape_class_hash(ShapeClass::of(r)),
            serve::shape_class_hash(ShapeClass::of(r)));
  EXPECT_NE(serve::shape_class_hash(ShapeClass::of(r)),
            serve::shape_class_hash(ShapeClass::of(other)));
}

// --- Sharded queue parity ----------------------------------------------

std::vector<GemmRequest> mixed_requests(int n) {
  std::vector<GemmRequest> reqs;
  for (int i = 0; i < n; ++i) {
    GemmRequest r = small_request(i, /*arrival=*/i * 1e-6);
    r.M = r.N = r.K = 16 * (1 + i % 5);  // five shape classes
    r.prec = i % 2 ? Precision::DP : Precision::SP;
    r.priority = i % 3;
    reqs.push_back(r);
  }
  return reqs;
}

TEST(ShardedQueueTest, AdmissionIsShardCountInvariant) {
  // The depth bound is global: which requests get shed by backpressure
  // must not depend on how many lock shards the queue uses.
  const auto reqs = mixed_requests(40);
  std::vector<bool> baseline;
  for (int shards : {1, 3, 8}) {
    ShardedQueue q(shards, /*max_batch=*/8, /*queue_capacity=*/16);
    std::vector<bool> admitted;
    for (const auto& r : reqs) admitted.push_back(q.admit(r));
    EXPECT_EQ(q.depth(), 16u);
    EXPECT_EQ(q.peak_depth(), 16u);
    if (baseline.empty())
      baseline = admitted;
    else
      EXPECT_EQ(admitted, baseline) << "shards=" << shards;
  }
}

TEST(ShardedQueueTest, GroupViewsMatchSerialSchedulerOrder) {
  const auto reqs = mixed_requests(30);
  BatchScheduler sched(/*max_batch=*/8, /*queue_capacity=*/64);
  for (const auto& r : reqs) ASSERT_TRUE(sched.admit(r));
  std::vector<GemmRequest> serial_expired, sharded_expired;
  const auto serial_views = sched.group_views(1.0, serial_expired);
  for (int shards : {1, 4, 7}) {
    ShardedQueue q(shards, 8, 64);
    for (const auto& r : reqs) ASSERT_TRUE(q.admit(r));
    sharded_expired.clear();
    const auto views = q.group_views(1.0, sharded_expired);
    ASSERT_EQ(views.size(), serial_views.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(views[i].head.id, serial_views[i].head.id);
      EXPECT_EQ(views[i].shape, serial_views[i].shape);
      EXPECT_EQ(views[i].size, serial_views[i].size);
    }
    EXPECT_TRUE(sharded_expired.empty());
  }
}

TEST(ShardedQueueTest, PopSkimsExpiredLikeSerialScheduler) {
  ShardedQueue q(4, /*max_batch=*/16, /*queue_capacity=*/64);
  ASSERT_TRUE(q.admit(small_request(0, 0.0, /*deadline=*/0.5)));
  ASSERT_TRUE(q.admit(small_request(1, 0.0, /*deadline=*/5.0)));
  ASSERT_TRUE(q.admit(small_request(2, 0.0, /*deadline=*/0.5)));
  std::vector<GemmRequest> expired;
  const auto batch = q.pop_from(ShapeClass::of(small_request(0)),
                                /*clock=*/1.0, 16, expired);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batch->requests[0].id, 1);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0);
  EXPECT_EQ(expired[1].id, 2);
  EXPECT_TRUE(q.empty());
  // Popped and expired slots are released back to the global bound.
  EXPECT_EQ(q.depth(), 0u);
}

// --- Arrival processes -------------------------------------------------

TEST(ArrivalTest, PoissonIsTheLegacyDefaultStream) {
  WorkloadSpec legacy;
  legacy.requests = 100;
  legacy.seed = 7;
  WorkloadSpec explicit_poisson = legacy;
  explicit_poisson.arrival = Arrival::Poisson;
  const auto a = serve::generate_workload(legacy);
  const auto b = serve::generate_workload(explicit_poisson);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].M, b[i].M);
  }
}

TEST(ArrivalTest, UniformSpacingAndBurstClusters) {
  WorkloadSpec spec;
  spec.requests = 96;
  spec.seed = 3;
  spec.rate_rps = 1000;
  spec.arrival = Arrival::Uniform;
  const auto uni = serve::generate_workload(spec);
  for (std::size_t i = 1; i < uni.size(); ++i)
    EXPECT_NEAR(uni[i].arrival_seconds - uni[i - 1].arrival_seconds, 1e-3,
                1e-9);
  spec.arrival = Arrival::Burst;
  const auto burst = serve::generate_workload(spec);
  // Within a burst the arrival time is flat; it jumps between bursts.
  int jumps = 0;
  for (std::size_t i = 1; i < burst.size(); ++i) {
    const double gap =
        burst[i].arrival_seconds - burst[i - 1].arrival_seconds;
    EXPECT_GE(gap, 0.0);
    jumps += gap > 0 ? 1 : 0;
  }
  // The first burst is offset from t=0, and the remaining boundaries show
  // up as inter-arrival jumps (96 requests = 3 bursts -> 2 internal gaps).
  EXPECT_GT(burst[0].arrival_seconds, 0.0);
  EXPECT_EQ(jumps, 96 / serve::kBurstSize - 1);
}

TEST(ArrivalTest, RequestMixtureIsArrivalModeInvariant) {
  // Changing only the arrival process must not perturb which GEMMs are
  // generated — each mode consumes exactly one interarrival draw.
  WorkloadSpec spec;
  spec.requests = 80;
  spec.seed = 11;
  const auto poisson = serve::generate_workload(spec);
  spec.arrival = Arrival::Burst;
  const auto burst = serve::generate_workload(spec);
  ASSERT_EQ(poisson.size(), burst.size());
  for (std::size_t i = 0; i < poisson.size(); ++i) {
    EXPECT_EQ(poisson[i].M, burst[i].M);
    EXPECT_EQ(poisson[i].N, burst[i].N);
    EXPECT_EQ(poisson[i].K, burst[i].K);
    EXPECT_EQ(poisson[i].prec, burst[i].prec);
    EXPECT_EQ(poisson[i].type, burst[i].type);
    EXPECT_EQ(poisson[i].priority, burst[i].priority);
  }
}

TEST(ArrivalTest, SpecKeyParsesAndRejectsUnknownValues) {
  EXPECT_EQ(serve::parse_spec("arrival=uniform").arrival, Arrival::Uniform);
  EXPECT_EQ(serve::parse_spec("arrival=burst,rate=500").arrival,
            Arrival::Burst);
  try {
    serve::parse_spec("arrival=gaussian");
    FAIL() << "expected an error for the unknown arrival value";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'gaussian'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("poisson"), std::string::npos)
        << "error should list the accepted values: " << msg;
  }
}

TEST(ArrivalTest, TraceRoundTripAndBackCompat) {
  WorkloadSpec spec;
  spec.requests = 10;
  spec.arrival = Arrival::Burst;
  const auto reqs = serve::generate_workload(spec);
  const Json doc = serve::workload_json(spec, reqs);
  EXPECT_EQ(doc.at("spec").at("arrival").as_string(), "burst");
  EXPECT_EQ(serve::workload_from_json(doc).spec.arrival, Arrival::Burst);
  // A trace written before the arrival key existed loads as Poisson.
  Json old = Json::object();
  old["schema"] = doc.at("schema").as_string();
  Json sp = Json::object();
  for (const auto& [key, value] : doc.at("spec").items())
    if (key != "arrival") sp[key] = value;
  old["spec"] = std::move(sp);
  old["requests"] = doc.at("requests");
  EXPECT_EQ(serve::workload_from_json(old).spec.arrival, Arrival::Poisson);
}

// --- Differential: serial reference vs concurrent core ------------------

/// One warmed two-device server shared by the differential tests (warmup
/// profiles four kernels; share the cost across tests).
class ServeCoreSim : public ::testing::Test {
 protected:
  static GemmServer& fleet_server() {
    static GemmServer* server = [] {
      auto* s = new GemmServer({DeviceId::Tahiti, DeviceId::SandyBridge},
                               ServeOptions{});
      s->warmup();
      return s;
    }();
    return *server;
  }

  static std::vector<GemmRequest> workload(int requests, double rate,
                                           std::uint64_t seed = 7) {
    WorkloadSpec spec;
    spec.requests = requests;
    spec.seed = seed;
    spec.rate_rps = rate;
    spec.devices = {DeviceId::Tahiti, DeviceId::SandyBridge};
    return serve::generate_workload(spec);
  }
};

TEST_F(ServeCoreSim, VirtualModeMatchesSerialAcrossShardCounts) {
  const auto reqs = workload(150, 20000);
  std::vector<std::uint64_t> baseline_hash;
  for (int shards : {1, 4}) {
    AsyncOptions aopt;
    aopt.shards = shards;
    aopt.execute_max_n = 64;
    AsyncOutcome async;
    const DiffReport rep =
        serve::run_differential(fleet_server(), reqs, /*max_batch=*/8,
                                /*queue_capacity=*/64, aopt, nullptr,
                                &async);
    EXPECT_TRUE(rep.ok) << rep.detail;
    EXPECT_EQ(rep.async_completed, rep.serial_completed);
    EXPECT_GT(rep.compared_checksums, 0);
    // Bit-identical GEMM results across shard counts, not just vs serial.
    if (baseline_hash.empty())
      baseline_hash = async.result_hash;
    else
      EXPECT_EQ(async.result_hash, baseline_hash) << "shards=" << shards;
  }
}

TEST_F(ServeCoreSim, ChecksumsAreThreadCountInvariant) {
  // The functional GEMM path must produce bit-identical C buffers no
  // matter how many worker threads the engines are configured with.
  const auto reqs = workload(60, 50000, /*seed=*/13);
  std::vector<std::uint64_t> baseline;
  for (int threads : {1, 8}) {
    ServeOptions sopt;
    sopt.threads = threads;
    GemmServer server({DeviceId::Tahiti, DeviceId::SandyBridge}, sopt);
    server.warmup();
    AsyncOptions aopt;
    aopt.shards = 4;
    aopt.execute_max_n = 64;
    AsyncServer async(server, aopt);
    const AsyncOutcome out = async.run(reqs, 8, 64);
    ASSERT_EQ(out.result_hash.size(), reqs.size());
    EXPECT_GT(out.executed, 0);
    if (baseline.empty())
      baseline = out.result_hash;
    else
      EXPECT_EQ(out.result_hash, baseline) << "threads=" << threads;
  }
}

TEST_F(ServeCoreSim, AccountingInvariantHoldsUnderOverload) {
  // Saturating rate + tiny queue forces queue-full shedding; infeasible
  // shedding is armed too. Every generated request must land in exactly
  // one bucket per class.
  const auto reqs = workload(200, 500000, /*seed=*/5);
  AsyncOptions aopt;
  aopt.shards = 4;
  aopt.shed_infeasible = true;
  AsyncServer async(fleet_server(), aopt);
  const AsyncOutcome out = async.run(reqs, /*max_batch=*/4,
                                     /*queue_capacity=*/8);
  std::int64_t generated = 0, completed = 0;
  for (const auto& [shape, c] : out.classes) {
    EXPECT_EQ(c.generated,
              c.completed + c.shed_queue_full + c.shed_infeasible +
                  c.expired)
        << to_string(shape);
    EXPECT_EQ(static_cast<std::uint64_t>(c.completed), c.latency.count())
        << to_string(shape);
    generated += c.generated;
    completed += c.completed;
  }
  EXPECT_EQ(generated, static_cast<std::int64_t>(reqs.size()));
  EXPECT_EQ(completed + out.shed_queue_full + out.shed_infeasible +
                out.expired,
            generated);
  EXPECT_GT(out.shed_queue_full, 0);
  EXPECT_EQ(static_cast<std::uint64_t>(completed), out.latency.count());
}

TEST_F(ServeCoreSim, RealtimeModeDrainsWithInvariantIntact) {
  // Realtime outcomes depend on the wall clock, so assert the structural
  // guarantees rather than exact schedules: every request resolves, the
  // accounting invariant holds, and latency percentiles are populated.
  const auto reqs = workload(120, 50000, /*seed=*/21);
  for (bool serial_exec : {false, true}) {
    AsyncOptions aopt;
    aopt.shards = 4;
    aopt.time_scale = 0.05;
    aopt.serial_execution = serial_exec;
    AsyncServer async(fleet_server(), aopt);
    const AsyncOutcome out = async.run(reqs, 8, 64);
    ASSERT_EQ(out.base.responses.size(), reqs.size());
    // Every response slot was written (the default request_id is -1).
    for (std::size_t i = 0; i < reqs.size(); ++i)
      EXPECT_EQ(out.base.responses[i].request_id, reqs[i].id);
    std::int64_t completed = 0;
    for (const auto& resp : out.base.responses)
      completed += resp.status == RequestStatus::Completed ? 1 : 0;
    EXPECT_EQ(completed + out.shed_queue_full + out.shed_infeasible +
                  out.expired,
              static_cast<std::int64_t>(reqs.size()));
    EXPECT_EQ(static_cast<std::uint64_t>(completed), out.latency.count());
    EXPECT_GT(out.wall_seconds, 0.0);
    if (completed > 0) {
      EXPECT_GT(out.latency.quantile(0.99), 0.0);
    }
  }
}

TEST_F(ServeCoreSim, RetunerRefreshesWithoutDisturbingAccounting) {
  const auto reqs = workload(100, 2000, /*seed=*/9);
  AsyncOptions aopt;
  aopt.shards = 2;
  aopt.time_scale = 1.0;  // 100 arrivals at 2000 rps -> ~50 ms of wall
  aopt.retune = true;
  aopt.retune_interval_ms = 5;
  AsyncServer async(fleet_server(), aopt);
  const AsyncOutcome out = async.run(reqs, 8, 64);
  EXPECT_GE(out.retunes, 1);
  std::int64_t completed = 0;
  for (const auto& resp : out.base.responses)
    completed += resp.status == RequestStatus::Completed ? 1 : 0;
  EXPECT_EQ(completed + out.shed_queue_full + out.shed_infeasible +
                out.expired,
            static_cast<std::int64_t>(reqs.size()));
}

TEST_F(ServeCoreSim, AsyncReportCarriesShedAndPercentileScalars) {
  WorkloadSpec spec;
  spec.requests = 80;
  spec.seed = 17;
  spec.rate_rps = 30000;
  spec.devices = {DeviceId::Tahiti, DeviceId::SandyBridge};
  const auto reqs = serve::generate_workload(spec);
  const ServeOutcome serial = fleet_server().run(reqs, 8, 64);
  AsyncOptions aopt;
  aopt.shards = 4;
  AsyncServer async(fleet_server(), aopt);
  const AsyncOutcome out = async.run(reqs, 8, 64);
  const Json doc = build_async_report(spec, reqs, out, serial,
                                      fleet_server().options(), aopt);
  EXPECT_EQ(doc.at("workload").at("core").as_string(), "async");
  EXPECT_EQ(doc.at("core").at("mode").as_string(), "virtual");
  const Json& sc = doc.at("scalars");
  for (const char* key :
       {"hist.p50_ms", "hist.p99_ms", "hist.p999_ms", "shed.queue_full",
        "shed.infeasible", "shed.expired", "speedup.completed_vs_serial",
        "serial.requests.completed"})
    EXPECT_TRUE(sc.contains(key)) << key;
  // Virtual mode replicates the serial policy exactly.
  EXPECT_DOUBLE_EQ(sc.at("speedup.completed_vs_serial").as_number(), 1.0);
  // Per-class percentiles are present for at least one class.
  bool any_class = false;
  for (const auto& [key, value] : sc.items())
    any_class |= key.rfind("class.", 0) == 0 &&
                 key.find(".p99_ms") != std::string::npos;
  EXPECT_TRUE(any_class);
  EXPECT_TRUE(doc.contains("per_class"));
}

}  // namespace
}  // namespace gemmtune
