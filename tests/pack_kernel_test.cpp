// Generated pack/unpack kernels must agree with the host packing routines
// for every layout and transpose combination.
#include <gtest/gtest.h>

#include <cstring>

#include "codegen/pack_generator.hpp"
#include "common/rng.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune {
namespace {

using codegen::PackKernelArgs;
using codegen::Precision;

simcl::BufferPtr make_buffer(std::size_t bytes) {
  return std::make_shared<simcl::Buffer>(bytes);
}

std::vector<ir::ArgValue> pack_args(simcl::BufferPtr dst, simcl::BufferPtr src,
                                    index_t R, index_t C, index_t Rp,
                                    index_t Cp, index_t ld) {
  std::vector<ir::ArgValue> args(7);
  args[PackKernelArgs::dst] = ir::ArgValue::of(std::move(dst));
  args[PackKernelArgs::src] = ir::ArgValue::of(std::move(src));
  args[PackKernelArgs::R] = ir::ArgValue::of_int(R);
  args[PackKernelArgs::C] = ir::ArgValue::of_int(C);
  args[PackKernelArgs::Rp] = ir::ArgValue::of_int(Rp);
  args[PackKernelArgs::Cp] = ir::ArgValue::of_int(Cp);
  args[PackKernelArgs::ld] = ir::ArgValue::of_int(ld);
  return args;
}

class PackKernel
    : public ::testing::TestWithParam<std::tuple<BlockLayout, Transpose>> {};

TEST_P(PackKernel, MatchesHostPackingForAOperand) {
  const auto [layout, trans] = GetParam();
  const index_t M = 13, K = 7, Mwg = 8, Kwg = 4;
  const auto e = packed_extents(M, 8, K, Mwg, 8, Kwg);
  Rng rng(17);
  Matrix<double> A(trans == Transpose::No ? M : K,
                   trans == Transpose::No ? K : M);
  A.fill_random(rng);
  const auto want = pack_a(A, trans, M, K, e.Mp, e.Kp, layout, Mwg, Kwg);

  // Device path: upload the column-major host matrix, run the generated
  // pack kernel over the live K x M region (dst is pre-zeroed = padding).
  // A operand: dst(r=k, c=m) = op(A)(m, k); for non-transposed A (M x K,
  // col-major, ld = M) that element sits at src[r*ld... see
  // pack_generator.hpp's mapping table.
  auto src = make_buffer(A.size() * sizeof(double));
  std::memcpy(src->data(), A.data(), A.size() * sizeof(double));
  auto dst = make_buffer(want.size() * sizeof(double));
  ir::Kernel k = codegen::generate_pack_kernel(
      Precision::DP, layout, static_cast<int>(Kwg), static_cast<int>(Mwg),
      /*src_row_major_rc=*/trans == Transpose::No);
  ir::launch(k, {K, M}, {1, 1},
             pack_args(dst, src, K, M, e.Kp, e.Mp, A.ld()));

  std::vector<double> got(want.size());
  std::memcpy(got.data(), dst->data(), got.size() * sizeof(double));
  EXPECT_EQ(got, want);
}

TEST_P(PackKernel, MatchesHostPackingForBOperand) {
  const auto [layout, trans] = GetParam();
  const index_t K = 7, N = 11, Kwg = 4, Nwg = 8;
  const auto e = packed_extents(8, N, K, 8, Nwg, Kwg);
  Rng rng(18);
  Matrix<float> B(trans == Transpose::No ? K : N,
                  trans == Transpose::No ? N : K);
  B.fill_random(rng);
  const auto want = pack_b(B, trans, K, N, e.Kp, e.Np, layout, Kwg, Nwg);

  auto src = make_buffer(B.size() * sizeof(float));
  std::memcpy(src->data(), B.data(), B.size() * sizeof(float));
  auto dst = make_buffer(want.size() * sizeof(float));
  // B operand: dst(r=k, c=n) = op(B)(k, n); non-transposed B is col-major
  // K x N so the element is src[c*ld + r] (src_row_major_rc = false).
  ir::Kernel k = codegen::generate_pack_kernel(
      Precision::SP, layout, static_cast<int>(Kwg), static_cast<int>(Nwg),
      /*src_row_major_rc=*/trans == Transpose::Yes);
  ir::launch(k, {K, N}, {1, 1},
             pack_args(dst, src, K, N, e.Kp, e.Np, B.ld()));

  std::vector<float> got(want.size());
  std::memcpy(got.data(), dst->data(), got.size() * sizeof(float));
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackKernel,
    ::testing::Combine(::testing::Values(BlockLayout::RowMajor,
                                         BlockLayout::CBL, BlockLayout::RBL),
                       ::testing::Values(Transpose::No, Transpose::Yes)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) == Transpose::Yes ? "_T" : "_N");
    });

TEST(UnpackKernel, InvertsThePaddedCBuffer) {
  const index_t M = 5, N = 6, Mp = 8, Np = 8;
  Rng rng(19);
  Matrix<double> C(M, N);
  C.fill_random(rng);
  const auto padded = pack_c(C, M, N, Mp, Np);
  auto src = make_buffer(padded.size() * sizeof(double));
  std::memcpy(src->data(), padded.data(), padded.size() * sizeof(double));
  Matrix<double> out(M, N);
  auto dst = make_buffer(out.size() * sizeof(double));
  ir::Kernel k = codegen::generate_unpack_c_kernel(Precision::DP);
  ir::launch(k, {M, N}, {1, 1},
             pack_args(dst, src, M, N, Mp, Np, out.ld()));
  std::memcpy(out.data(), dst->data(), out.size() * sizeof(double));
  EXPECT_EQ(max_abs_diff(out, C), 0.0);
}

TEST(PackKernelSource, EmitsDivModAddressing) {
  const ir::Kernel k = codegen::generate_pack_kernel(Precision::DP,
                                                     BlockLayout::RBL, 8, 16,
                                                     false);
  const std::string src = ir::emit_opencl(k);
  EXPECT_NE(src.find("__kernel"), std::string::npos);
  EXPECT_NE(src.find("/ 8"), std::string::npos);
  EXPECT_NE(src.find("% 16"), std::string::npos);
}

}  // namespace
}  // namespace gemmtune
