// Differential tests for the bytecode interpreter backend (compile.hpp /
// vm.hpp) and the native JIT backend (native.hpp) against the tree-walking
// reference backend: identical buffers and counters for well-formed
// launches at any thread count, identical error messages (modulo the
// source-location prefix) for malformed ones, backend resolution
// precedence, and the process-wide compiled-program cache. The native legs
// run whenever a host toolchain answers the probe (CI always has one);
// without a toolchain they are skipped, not failed — that machine's
// fallback behaviour has its own test in native_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "kernelir/compile.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/kernel.hpp"
#include "kernelir/native.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune::ir {
namespace {

simcl::BufferPtr make_buffer(std::size_t bytes) {
  return std::make_shared<simcl::Buffer>(bytes);
}

// Error::what() is "<file>:<line>: <message>"; the backends raise from
// different source files, so parity is on the stripped message.
std::string strip_loc(const std::string& s) {
  const auto pos = s.find(": ");
  return pos == std::string::npos ? s : s.substr(pos + 2);
}

/// Builds fresh argument buffers for one launch (runs must not share
/// writable state) and returns the args; buffers land in `bufs`.
using ArgFactory =
    std::function<std::vector<ArgValue>(std::vector<simcl::BufferPtr>*)>;

struct RunResult {
  bool threw = false;
  std::string message;
  Counters counters;
  std::vector<std::uint8_t> bytes;  // all argument buffers, concatenated
};

RunResult run_one(const Kernel& k, std::array<std::int64_t, 2> global,
                  std::array<std::int64_t, 2> local, const ArgFactory& make,
                  Backend backend, int threads) {
  std::vector<simcl::BufferPtr> bufs;
  const std::vector<ArgValue> args = make(&bufs);
  RunResult r;
  try {
    r.counters = launch_with_backend(k, global, local, args, threads, backend);
  } catch (const Error& e) {
    r.threw = true;
    r.message = strip_loc(e.what());
  }
  for (const auto& b : bufs) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(b->data());
    r.bytes.insert(r.bytes.end(), p, p + b->size());
  }
  return r;
}

/// Runs tree(1 thread), bytecode(1 thread), bytecode(4 threads) — plus
/// native(1) and native(4) when a host toolchain is available — and checks
/// the differential contract. Buffer contents after a throw are
/// unspecified, so they are only compared on success.
void expect_equivalent(const Kernel& k, std::array<std::int64_t, 2> global,
                       std::array<std::int64_t, 2> local,
                       const ArgFactory& make) {
  const RunResult tree = run_one(k, global, local, make, Backend::Tree, 1);
  const RunResult byte1 =
      run_one(k, global, local, make, Backend::Bytecode, 1);
  const RunResult byte4 =
      run_one(k, global, local, make, Backend::Bytecode, 4);
  EXPECT_EQ(tree.threw, byte1.threw) << k.name;
  EXPECT_EQ(tree.message, byte1.message) << k.name;
  EXPECT_EQ(byte1.threw, byte4.threw) << k.name;
  EXPECT_EQ(byte1.message, byte4.message) << k.name;
  if (!tree.threw && !byte1.threw) {
    EXPECT_EQ(tree.bytes, byte1.bytes) << k.name;
    EXPECT_EQ(tree.counters, byte1.counters) << k.name;
    EXPECT_EQ(byte1.bytes, byte4.bytes) << k.name;
    EXPECT_EQ(byte1.counters, byte4.counters) << k.name;
  }
  if (!native_toolchain_available()) return;
  const RunResult nat1 = run_one(k, global, local, make, Backend::Native, 1);
  const RunResult nat4 = run_one(k, global, local, make, Backend::Native, 4);
  EXPECT_EQ(tree.threw, nat1.threw) << k.name << " (native)";
  EXPECT_EQ(tree.message, nat1.message) << k.name << " (native)";
  EXPECT_EQ(nat1.threw, nat4.threw) << k.name << " (native)";
  EXPECT_EQ(nat1.message, nat4.message) << k.name << " (native)";
  if (!tree.threw && !nat1.threw) {
    EXPECT_EQ(tree.bytes, nat1.bytes) << k.name << " (native)";
    EXPECT_EQ(tree.counters, nat1.counters) << k.name << " (native)";
    EXPECT_EQ(nat1.bytes, nat4.bytes) << k.name << " (native)";
    EXPECT_EQ(nat1.counters, nat4.counters) << k.name << " (native)";
  }
}

// A kernel exercising most of the instruction surface: builtins, local
// staging + barrier, private staging, a uniform loop with an invariant
// subexpression (hoisting), varying div/mod with nonzero divisors, a
// divergent if, select with both uniform and varying conditions, splat /
// lane, and vector arithmetic.
Kernel stress_kernel(Scalar s) {
  const Type t1 = fp(s, 1);
  const Type t2 = fp(s, 2);
  KernelBuilder b(s == Scalar::F64 ? "stress64" : "stress32", s);
  b.add_arg("out", ArgKind::GlobalPtr, s);
  b.add_arg("a", ArgKind::GlobalConstPtr, s);
  b.add_arg("n", ArgKind::Int, Scalar::I32);
  b.add_arg("alpha", ArgKind::Float, s);
  const int gid = b.decl_var("gid", i32());
  const int lx = b.decl_var("lx", i32());
  const int i = b.decl_var("i", i32());
  const int q = b.decl_var("q", i32());
  const int acc = b.decl_var("acc", t2);
  const int t = b.decl_var("t", t1);
  const int lm = b.decl_array("Lm", s, 8, AddrSpace::Local);
  const int pa = b.decl_array("P", s, 4, AddrSpace::Private);
  b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
  b.append(assign(lx, builtin(BuiltinFn::LocalId, 0)));
  b.append(store_local(lm, b.ref(lx), load_global(1, b.ref(gid), t1)));
  b.append(barrier());
  b.append(assign(t, load_local(lm, bin(BinOp::Mod, b.ref(lx) + 1, iconst(4)),
                                t1)));
  b.append(store_private(pa, iconst(0), b.ref(t)));
  b.append(assign(acc, splat(arg_ref(3, t1), 2)));
  b.append(for_loop(
      i, iconst(0), arg_ref(2, i32()), iconst(1),
      {
          // splat(load_private(...)) matches the fused SplatLaneP form.
          assign(acc, mad(splat(load_private(pa, iconst(0), t1), 2),
                          load_global(1, bin(BinOp::Mul, b.ref(gid),
                                             iconst(2)),
                                      t2),
                          b.ref(acc))),
          if_then(bin(BinOp::Lt, b.ref(i), iconst(2)),
                  {assign(t, bin(BinOp::FMul, b.ref(t),
                                 fconst(1.5, t1)))}),
      }));
  // Varying division/modulo with a strictly positive divisor.
  b.append(assign(q, bin(BinOp::Add,
                         bin(BinOp::Div, b.ref(gid), b.ref(lx) + 1),
                         bin(BinOp::Mod, b.ref(gid), b.ref(lx) + 1))));
  b.append(if_then(bin(BinOp::Lt, bin(BinOp::Mod, b.ref(q), iconst(2)),
                       iconst(1)),
                   {assign(acc, bin(BinOp::FAdd, b.ref(acc),
                                    splat(b.ref(t), 2)))}));
  b.append(store_global(
      0, bin(BinOp::Mul, b.ref(gid), iconst(2)),
      select(bin(BinOp::Lt, b.ref(gid), iconst(6)), b.ref(acc),
             bin(BinOp::FAdd, b.ref(acc), b.ref(acc)))));
  return b.build();
}

ArgFactory stress_args(Scalar s, int n_items, int trip) {
  const std::size_t es = s == Scalar::F64 ? 8 : 4;
  return [=](std::vector<simcl::BufferPtr>* bufs) {
    auto out = make_buffer(static_cast<std::size_t>(2 * n_items) * es);
    auto a = make_buffer(static_cast<std::size_t>(2 * n_items) * es);
    for (int j = 0; j < 2 * n_items; ++j) {
      if (s == Scalar::F64) {
        a->as<double>()[j] = 0.25 * j - 3.0;
      } else {
        a->as<float>()[j] = 0.25f * static_cast<float>(j) - 3.0f;
      }
    }
    bufs->push_back(out);
    bufs->push_back(a);
    return std::vector<ArgValue>{ArgValue::of(out), ArgValue::of(a),
                                 ArgValue::of_int(trip),
                                 ArgValue::of_float(1.25)};
  };
}

TEST(VmDifferential, StressKernelBothPrecisions) {
  for (const Scalar s : {Scalar::F64, Scalar::F32}) {
    const Kernel k = stress_kernel(s);
    expect_equivalent(k, {8, 1}, {4, 1}, stress_args(s, 8, 3));
    // Zero-trip loop and a single work-group.
    expect_equivalent(k, {4, 1}, {4, 1}, stress_args(s, 4, 0));
  }
}

TEST(VmDifferential, ManyGroupsThreadInvariance) {
  const Kernel k = stress_kernel(Scalar::F64);
  // 16 groups spread over 1 / 3 / 8 threads must be byte-identical.
  const auto make = stress_args(Scalar::F64, 64, 5);
  const RunResult r1 = run_one(k, {64, 1}, {4, 1}, make, Backend::Bytecode, 1);
  const RunResult r3 = run_one(k, {64, 1}, {4, 1}, make, Backend::Bytecode, 3);
  const RunResult r8 = run_one(k, {64, 1}, {4, 1}, make, Backend::Bytecode, 8);
  ASSERT_FALSE(r1.threw);
  EXPECT_EQ(r1.bytes, r3.bytes);
  EXPECT_EQ(r1.counters, r3.counters);
  EXPECT_EQ(r1.bytes, r8.bytes);
  EXPECT_EQ(r1.counters, r8.counters);
}

// ---- error-message parity --------------------------------------------------

// Each case is a malformed kernel or launch; both backends must throw the
// same message. Single-item or uniform faults keep the reported instance
// deterministic.

TEST(VmErrors, LaunchValidationParity) {
  const Kernel k = stress_kernel(Scalar::F64);
  const auto make = stress_args(Scalar::F64, 8, 1);
  expect_equivalent(k, {8, 1}, {0, 1}, make);   // empty work-group
  expect_equivalent(k, {0, 1}, {4, 1}, make);   // empty NDRange
  expect_equivalent(k, {6, 1}, {4, 1}, make);   // not a multiple
  // Argument count mismatch.
  expect_equivalent(k, {8, 1}, {4, 1}, [](std::vector<simcl::BufferPtr>*) {
    return std::vector<ArgValue>{ArgValue::of_int(1)};
  });
  // Kind mismatch: scalar where a buffer is expected.
  expect_equivalent(k, {8, 1}, {4, 1},
                    [](std::vector<simcl::BufferPtr>* bufs) {
                      auto buf = make_buffer(64);
                      bufs->push_back(buf);
                      return std::vector<ArgValue>{
                          ArgValue::of_int(0), ArgValue::of(buf),
                          ArgValue::of_int(1), ArgValue::of_float(1.0)};
                    });
}

TEST(VmErrors, ReqdWorkGroupSizeParity) {
  KernelBuilder b("wg", Scalar::F32);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
  b.set_reqd_local(4, 1);
  b.append(store_global(0, builtin(BuiltinFn::GlobalId, 0),
                        fconst(1.0, fp(Scalar::F32, 1))));
  const Kernel k = b.build();
  const auto make = [](std::vector<simcl::BufferPtr>* bufs) {
    auto buf = make_buffer(64);
    bufs->push_back(buf);
    return std::vector<ArgValue>{ArgValue::of(buf)};
  };
  expect_equivalent(k, {4, 1}, {2, 1}, make);
  expect_equivalent(k, {4, 1}, {4, 1}, make);  // and the passing shape
}

// Helper: single-item kernel writing out[0], for runtime-fault cases.
ArgFactory one_out(std::size_t out_bytes) {
  return [=](std::vector<simcl::BufferPtr>* bufs) {
    auto out = make_buffer(out_bytes);
    bufs->push_back(out);
    return std::vector<ArgValue>{ArgValue::of(out), ArgValue::of_int(0)};
  };
}

KernelBuilder one_item_builder(const char* name) {
  KernelBuilder b(name, Scalar::F64);
  b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
  b.add_arg("n", ArgKind::Int, Scalar::I32);
  return b;
}

TEST(VmErrors, DivModByZeroParity) {
  const Type t1 = fp(Scalar::F64, 1);
  {
    // Uniform division by a zero scalar argument.
    KernelBuilder b = one_item_builder("udiv0");
    const int q = b.decl_var("q", i32());
    b.append(assign(q, bin(BinOp::Div, iconst(4), arg_ref(1, i32()))));
    b.append(store_global(0, b.ref(q), fconst(1.0, t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
  {
    // Varying modulo: gid % n with n = 0.
    KernelBuilder b = one_item_builder("vmod0");
    const int q = b.decl_var("q", i32());
    b.append(assign(q, bin(BinOp::Mod, builtin(BuiltinFn::GlobalId, 0),
                           arg_ref(1, i32()))));
    b.append(store_global(0, b.ref(q), fconst(1.0, t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
}

TEST(VmErrors, GlobalOutOfRangeParity) {
  const Type t1 = fp(Scalar::F64, 1);
  {
    // Constant store index beyond the 8-element buffer.
    KernelBuilder b = one_item_builder("gstore");
    b.append(store_global(0, iconst(100), fconst(1.0, t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
  {
    // Runtime load index: out[0] = out[n] with n = 99 (message says load).
    KernelBuilder b = one_item_builder("gload");
    b.append(store_global(0, iconst(0),
                          load_global(0, arg_ref(1, i32()), t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1},
                      [](std::vector<simcl::BufferPtr>* bufs) {
                        auto out = make_buffer(64);
                        bufs->push_back(out);
                        return std::vector<ArgValue>{ArgValue::of(out),
                                                     ArgValue::of_int(99)};
                      });
  }
}

TEST(VmErrors, ArrayOutOfRangeParity) {
  const Type t1 = fp(Scalar::F64, 1);
  {
    // Constant local index out of range — caught at compile time in the
    // bytecode backend, at execution in the tree; same message either way.
    KernelBuilder b = one_item_builder("locconst");
    const int lm = b.decl_array("Lm", Scalar::F64, 4, AddrSpace::Local);
    b.append(store_local(lm, iconst(9), fconst(1.0, t1)));
    b.append(store_global(0, iconst(0), load_local(lm, iconst(0), t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
  {
    // Runtime private index from a scalar argument.
    KernelBuilder b = one_item_builder("privrt");
    const int pa = b.decl_array("P", Scalar::F64, 2, AddrSpace::Private);
    b.append(store_private(pa, arg_ref(1, i32()), fconst(1.0, t1)));
    b.append(store_global(0, iconst(0), load_private(pa, iconst(0), t1)));
    expect_equivalent(b.build(), {1, 1}, {1, 1},
                      [](std::vector<simcl::BufferPtr>* bufs) {
                        auto out = make_buffer(64);
                        bufs->push_back(out);
                        return std::vector<ArgValue>{ArgValue::of(out),
                                                     ArgValue::of_int(7)};
                      });
  }
}

TEST(VmErrors, LoopShapeParity) {
  const Type t1 = fp(Scalar::F64, 1);
  {
    // Non-uniform bounds: limit depends on local id.
    KernelBuilder b("nonuni", Scalar::F64);
    b.add_arg("out", ArgKind::GlobalPtr, Scalar::F64);
    const int i = b.decl_var("i", i32());
    const int lx = b.decl_var("lx", i32());
    b.append(assign(lx, builtin(BuiltinFn::LocalId, 0)));
    b.append(for_loop(i, iconst(0), b.ref(lx) + 1, iconst(1),
                      {store_global(0, b.ref(i), fconst(1.0, t1))}));
    expect_equivalent(b.build(), {2, 1}, {2, 1}, [](auto* bufs) {
      auto out = make_buffer(64);
      bufs->push_back(out);
      return std::vector<ArgValue>{ArgValue::of(out)};
    });
  }
  {
    // Constant non-positive step — even for a zero-trip range the step
    // check fires first (matching the tree's evaluation order).
    KernelBuilder b = one_item_builder("step0");
    const int i = b.decl_var("i", i32());
    b.append(for_loop(i, iconst(0), iconst(0), iconst(-1),
                      {store_global(0, b.ref(i), fconst(1.0, t1))}));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
  {
    // Runtime step from a scalar argument (zero at launch).
    KernelBuilder b = one_item_builder("steprt");
    const int i = b.decl_var("i", i32());
    b.append(for_loop(i, iconst(0), iconst(4), arg_ref(1, i32()),
                      {store_global(0, b.ref(i), fconst(1.0, t1))}));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, one_out(64));
  }
}

TEST(VmErrors, BarrierAndReadOnlyParity) {
  {
    KernelBuilder b("divbar", Scalar::F32);
    b.add_arg("out", ArgKind::GlobalPtr, Scalar::F32);
    const int gid = b.decl_var("gid", i32());
    b.append(assign(gid, builtin(BuiltinFn::GlobalId, 0)));
    b.append(if_then(bin(BinOp::Lt, b.ref(gid), iconst(1)), {barrier()}));
    expect_equivalent(b.build(), {2, 1}, {2, 1}, [](auto* bufs) {
      auto out = make_buffer(64);
      bufs->push_back(out);
      return std::vector<ArgValue>{ArgValue::of(out)};
    });
  }
  {
    KernelBuilder b("ro", Scalar::F64);
    b.add_arg("a", ArgKind::GlobalConstPtr, Scalar::F64);
    b.append(store_global(0, iconst(0), fconst(1.0, fp(Scalar::F64, 1))));
    expect_equivalent(b.build(), {1, 1}, {1, 1}, [](auto* bufs) {
      auto buf = make_buffer(64);
      bufs->push_back(buf);
      return std::vector<ArgValue>{ArgValue::of(buf)};
    });
  }
}

TEST(VmErrors, DeadMalformedCodeDoesNotThrow) {
  const Type t1 = fp(Scalar::F64, 1);
  // Malformed accesses behind a statically-false if and a zero-trip
  // runtime loop must not fire in either backend.
  KernelBuilder b = one_item_builder("dead");
  const int i = b.decl_var("i", i32());
  const int lm = b.decl_array("Lm", Scalar::F64, 2, AddrSpace::Local);
  b.append(if_then(bin(BinOp::Lt, iconst(1), iconst(0)),
                   {store_local(lm, iconst(50), fconst(1.0, t1))}));
  b.append(for_loop(i, iconst(0), arg_ref(1, i32()), iconst(1),
                    {store_local(lm, iconst(99), fconst(1.0, t1)),
                     assign(i, bin(BinOp::Div, iconst(1), iconst(0)))}));
  b.append(store_global(0, iconst(0), fconst(2.0, t1)));
  const Kernel k = b.build();
  const RunResult tree = run_one(k, {1, 1}, {1, 1}, one_out(64),
                                 Backend::Tree, 1);
  const RunResult byte = run_one(k, {1, 1}, {1, 1}, one_out(64),
                                 Backend::Bytecode, 1);
  EXPECT_FALSE(tree.threw) << tree.message;
  EXPECT_FALSE(byte.threw) << byte.message;
  EXPECT_EQ(tree.bytes, byte.bytes);
  EXPECT_EQ(tree.counters, byte.counters);
}

// ---- dispatch strategies ---------------------------------------------------

struct DispatchGuard {
  ~DispatchGuard() {
    unsetenv("GEMMTUNE_VM_DISPATCH");
    set_vm_dispatch_override(VmDispatch::Auto);
  }
};

TEST(VmDispatchMode, ThreadedAndSwitchAgree) {
  // The two executors share one instruction set and must be externally
  // indistinguishable: identical buffers and counters on success,
  // identical messages on a fault. (On builds without computed-goto
  // support the threaded run silently resolves to switch and the
  // comparison is trivially true — the test stays valid either way.)
  DispatchGuard guard;
  unsetenv("GEMMTUNE_VM_DISPATCH");
  for (const Scalar s : {Scalar::F64, Scalar::F32}) {
    const Kernel k = stress_kernel(s);
    const auto make = stress_args(s, 8, 3);
    set_vm_dispatch_override(VmDispatch::Switch);
    const RunResult sw = run_one(k, {8, 1}, {4, 1}, make,
                                 Backend::Bytecode, 1);
    set_vm_dispatch_override(VmDispatch::Threaded);
    const RunResult th = run_one(k, {8, 1}, {4, 1}, make,
                                 Backend::Bytecode, 1);
    ASSERT_FALSE(sw.threw) << sw.message;
    ASSERT_FALSE(th.threw) << th.message;
    EXPECT_EQ(sw.bytes, th.bytes) << k.name;
    EXPECT_EQ(sw.counters, th.counters) << k.name;
  }
  // Fault parity: a uniform division by zero must raise the same message
  // from both executors.
  KernelBuilder b = one_item_builder("dispdiv0");
  const int q = b.decl_var("q", i32());
  b.append(assign(q, bin(BinOp::Div, iconst(4), arg_ref(1, i32()))));
  b.append(store_global(0, b.ref(q), fconst(1.0, fp(Scalar::F64, 1))));
  const Kernel bad = b.build();
  set_vm_dispatch_override(VmDispatch::Switch);
  const RunResult esw = run_one(bad, {1, 1}, {1, 1}, one_out(64),
                                Backend::Bytecode, 1);
  set_vm_dispatch_override(VmDispatch::Threaded);
  const RunResult eth = run_one(bad, {1, 1}, {1, 1}, one_out(64),
                                Backend::Bytecode, 1);
  EXPECT_TRUE(esw.threw);
  EXPECT_TRUE(eth.threw);
  EXPECT_EQ(esw.message, eth.message);
}

TEST(VmDispatchMode, ResolutionPrecedence) {
  DispatchGuard guard;
  unsetenv("GEMMTUNE_VM_DISPATCH");
  set_vm_dispatch_override(VmDispatch::Auto);
  // Default: threaded wherever the build carries the computed-goto
  // executor, switch elsewhere.
  const VmDispatch def = vm_threaded_dispatch_supported()
                             ? VmDispatch::Threaded
                             : VmDispatch::Switch;
  EXPECT_EQ(resolve_vm_dispatch(), def);
  EXPECT_EQ(resolve_vm_dispatch(VmDispatch::Switch), VmDispatch::Switch);
  // An unsupported explicit Threaded downgrades rather than failing.
  EXPECT_EQ(resolve_vm_dispatch(VmDispatch::Threaded), def);

  setenv("GEMMTUNE_VM_DISPATCH", "switch", 1);
  EXPECT_EQ(resolve_vm_dispatch(), VmDispatch::Switch);
  setenv("GEMMTUNE_VM_DISPATCH", "threaded", 1);
  EXPECT_EQ(resolve_vm_dispatch(), def);

  // The process-wide override (the --vm-dispatch flag) beats the
  // environment...
  setenv("GEMMTUNE_VM_DISPATCH", "threaded", 1);
  set_vm_dispatch_override(VmDispatch::Switch);
  EXPECT_EQ(resolve_vm_dispatch(), VmDispatch::Switch);
  // ...and an explicit request beats both.
  setenv("GEMMTUNE_VM_DISPATCH", "switch", 1);
  set_vm_dispatch_override(VmDispatch::Switch);
  EXPECT_EQ(resolve_vm_dispatch(VmDispatch::Threaded), def);

  setenv("GEMMTUNE_VM_DISPATCH", "nonsense", 1);
  set_vm_dispatch_override(VmDispatch::Auto);
  try {
    resolve_vm_dispatch();
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(strip_loc(e.what()),
              "GEMMTUNE_VM_DISPATCH: unknown value 'nonsense' "
              "(use switch, threaded)");
  }
  // An explicit mode never consults the (invalid) environment.
  EXPECT_EQ(resolve_vm_dispatch(VmDispatch::Switch), VmDispatch::Switch);
}

// ---- backend resolution and the compiled cache -----------------------------

struct EnvGuard {
  ~EnvGuard() {
    unsetenv("GEMMTUNE_INTERP");
    set_backend_override(Backend::Auto);
  }
};

TEST(VmBackend, ResolutionPrecedence) {
  EnvGuard guard;
  unsetenv("GEMMTUNE_INTERP");
  set_backend_override(Backend::Auto);
  EXPECT_EQ(resolve_backend(Backend::Auto), Backend::Bytecode);
  EXPECT_EQ(resolve_backend(Backend::Tree), Backend::Tree);

  setenv("GEMMTUNE_INTERP", "tree", 1);
  EXPECT_EQ(resolve_backend(Backend::Auto), Backend::Tree);
  setenv("GEMMTUNE_INTERP", "bytecode", 1);
  EXPECT_EQ(resolve_backend(Backend::Auto), Backend::Bytecode);
  setenv("GEMMTUNE_INTERP", "native", 1);
  EXPECT_EQ(resolve_backend(Backend::Auto), Backend::Native);

  // The process-wide override (the CLI flag) beats the environment...
  setenv("GEMMTUNE_INTERP", "bytecode", 1);
  set_backend_override(Backend::Tree);
  EXPECT_EQ(resolve_backend(Backend::Auto), Backend::Tree);
  // ...and an explicit request beats both.
  EXPECT_EQ(resolve_backend(Backend::Bytecode), Backend::Bytecode);

  setenv("GEMMTUNE_INTERP", "nonsense", 1);
  set_backend_override(Backend::Auto);
  EXPECT_THROW(resolve_backend(Backend::Auto), Error);
  try {
    resolve_backend(Backend::Auto);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(strip_loc(e.what()),
              "GEMMTUNE_INTERP: unknown value 'nonsense' "
              "(use tree, bytecode, native)");
  }
  // An explicit backend never consults the (invalid) environment.
  EXPECT_EQ(resolve_backend(Backend::Tree), Backend::Tree);
}

TEST(VmCache, CompileOncePerKernelShape) {
  compiled_cache_clear();
  EXPECT_EQ(compiled_cache_size(), 0u);
  const Kernel k1 = stress_kernel(Scalar::F64);
  const auto make = stress_args(Scalar::F64, 8, 2);
  run_one(k1, {8, 1}, {4, 1}, make, Backend::Bytecode, 1);
  EXPECT_EQ(compiled_cache_size(), 1u);
  // Re-launching the same kernel (rebuilt, so a different object identity
  // but identical serialized form) hits the cache.
  run_one(stress_kernel(Scalar::F64), {8, 1}, {4, 1}, make,
          Backend::Bytecode, 4);
  EXPECT_EQ(compiled_cache_size(), 1u);
  run_one(stress_kernel(Scalar::F32), {8, 1}, {4, 1},
          stress_args(Scalar::F32, 8, 2), Backend::Bytecode, 1);
  EXPECT_EQ(compiled_cache_size(), 2u);
  compiled_cache_clear();
  EXPECT_EQ(compiled_cache_size(), 0u);
}

}  // namespace
}  // namespace gemmtune::ir
