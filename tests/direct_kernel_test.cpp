// Tests for the copy-free direct GEMM kernel (the paper's future-work
// extension, Section V): correctness for all four multiplication types,
// and the GemmEngine's automatic small-size crossover.
#include <gtest/gtest.h>

#include <cstring>

#include "blas/gemm.hpp"
#include "blas/hostblas.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/rng.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::Algorithm;
using codegen::DirectGemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

KernelParams small_params(Precision prec, Algorithm algo, bool share) {
  KernelParams p;
  p.prec = prec;
  p.Mwg = 8;
  p.Nwg = 8;
  p.Kwg = 4;
  p.MdimC = p.NdimC = 4;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 1;
  p.algo = algo;
  p.share_a = p.share_b = share;
  return p;
}

template <typename T>
double run_direct(const KernelParams& p, Transpose ta, Transpose tb,
                  index_t M, index_t N, index_t K, T alpha, T beta,
                  std::uint64_t seed, bool guarded = false) {
  Rng rng(seed);
  Matrix<T> A(ta == Transpose::No ? M : K, ta == Transpose::No ? K : M);
  Matrix<T> B(tb == Transpose::No ? K : N, tb == Transpose::No ? N : K);
  Matrix<T> C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  Matrix<T> Cref = C;
  hostblas::gemm_naive(ta, tb, M, N, K, alpha, A, B, beta, Cref);

  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Tahiti));
  auto dA = ctx.create_buffer(A.size() * sizeof(T));
  auto dB = ctx.create_buffer(B.size() * sizeof(T));
  auto dC = ctx.create_buffer(C.size() * sizeof(T));
  std::memcpy(dA->data(), A.data(), A.size() * sizeof(T));
  std::memcpy(dB->data(), B.data(), B.size() * sizeof(T));
  std::memcpy(dC->data(), C.data(), C.size() * sizeof(T));

  ir::Kernel k = codegen::generate_direct_gemm_kernel(p, ta, tb, guarded);
  const auto ext = packed_extents(M, N, K, p.Mwg, p.Nwg, p.Kwg);
  const auto geo = guarded ? codegen::launch_geometry(p, ext.Mp, ext.Np)
                           : codegen::launch_geometry(p, M, N);
  std::vector<ir::ArgValue> args(11);
  args[DirectGemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[DirectGemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[DirectGemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[DirectGemmKernelArgs::M] = ir::ArgValue::of_int(M);
  args[DirectGemmKernelArgs::N] = ir::ArgValue::of_int(N);
  args[DirectGemmKernelArgs::K] = ir::ArgValue::of_int(K);
  args[DirectGemmKernelArgs::lda] = ir::ArgValue::of_int(A.ld());
  args[DirectGemmKernelArgs::ldb] = ir::ArgValue::of_int(B.ld());
  args[DirectGemmKernelArgs::ldc] = ir::ArgValue::of_int(C.ld());
  args[DirectGemmKernelArgs::alpha] = ir::ArgValue::of_float(alpha);
  args[DirectGemmKernelArgs::beta] = ir::ArgValue::of_float(beta);
  ir::launch(k, geo.global, geo.local, args);

  std::memcpy(C.data(), dC->data(), C.size() * sizeof(T));
  return max_abs_diff(C, Cref);
}

TEST(DirectKernel, AllFourTypesAllAlgorithms) {
  for (Algorithm algo : {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
    for (GemmType type : all_gemm_types()) {
      const KernelParams p =
          small_params(Precision::DP, algo, algo != Algorithm::BA);
      const double err = run_direct<double>(p, trans_a(type), trans_b(type),
                                            16, 16, 12, 1.5, -0.5, 31);
      EXPECT_LE(err, hostblas::gemm_tolerance<double>(12))
          << codegen::to_string(algo) << " " << to_string(type);
    }
  }
}

TEST(DirectKernel, SinglePrecisionAndSharedVariants) {
  for (bool share : {false, true}) {
    const KernelParams p = small_params(Precision::SP, Algorithm::BA, share);
    const double err = run_direct<float>(p, Transpose::No, Transpose::Yes,
                                         24, 16, 8, 2.0f, 1.0f, 32);
    EXPECT_LE(err, hostblas::gemm_tolerance<float>(8)) << share;
  }
}

TEST(DirectKernel, RejectsVectorAccesses) {
  KernelParams p = small_params(Precision::DP, Algorithm::BA, false);
  p.vw = 2;
  EXPECT_THROW(
      codegen::generate_direct_gemm_kernel(p, Transpose::No, Transpose::No),
      Error);
}

TEST(DirectKernel, EmitsLeadingDimensionArguments) {
  const KernelParams p = small_params(Precision::DP, Algorithm::BA, true);
  const ir::Kernel k =
      codegen::generate_direct_gemm_kernel(p, Transpose::Yes, Transpose::No);
  const std::string src = ir::emit_opencl(k);
  EXPECT_NE(src.find("const int lda"), std::string::npos);
  EXPECT_NE(src.find("const int ldb"), std::string::npos);
  EXPECT_NE(src.find("const int ldc"), std::string::npos);
  EXPECT_NE(src.find("dgemm_direct_tn"), std::string::npos);
}

// ---- engine crossover -----------------------------------------------------------

TEST(DirectPath, EngineUsesDirectKernelForSmallDivisibleSizes) {
  blas::GemmEngine engine(simcl::DeviceId::Tahiti);
  const auto p = engine.kernel_for(Precision::DP).params;
  // Small problem, exact multiple of the blocking: direct must win.
  const auto small = engine.estimate(GemmType::NN, Precision::DP,
                                     2 * p.Mwg, 2 * p.Nwg, 2 * p.Kwg);
  EXPECT_TRUE(small.used_direct);
  EXPECT_DOUBLE_EQ(small.copy_seconds, 0.0);
  // Large problem: the copy is amortized and the packed kernel wins.
  const auto large = engine.estimate(GemmType::NN, Precision::DP, 5760, 5760,
                                     5760);
  EXPECT_FALSE(large.used_direct);
  // Tiny non-divisible sizes use the *guarded* direct kernel (bounds
  // checks; no copies, no copy-launch overheads).
  const auto odd = engine.estimate(GemmType::NN, Precision::DP, 50, 50, 50);
  EXPECT_TRUE(odd.used_direct);
  EXPECT_DOUBLE_EQ(odd.copy_seconds, 0.0);
}

TEST(DirectKernel, GuardedHandlesArbitrarySizes) {
  // Bounds-guarded direct kernels: padded NDRange, fringe reads return
  // zero, fringe writes are suppressed — correct for any M, N, K.
  for (GemmType type : all_gemm_types()) {
    KernelParams p = small_params(Precision::DP, Algorithm::BA, true);
    const double err = run_direct<double>(p, trans_a(type), trans_b(type),
                                          13, 11, 7, 1.5, -0.5, 41,
                                          /*guarded=*/true);
    EXPECT_LE(err, hostblas::gemm_tolerance<double>(7)) << to_string(type);
  }
  // Single precision, no sharing.
  KernelParams p = small_params(Precision::SP, Algorithm::BA, false);
  const double err = run_direct<float>(p, Transpose::No, Transpose::No, 17,
                                       9, 5, 2.0f, 1.0f, 42,
                                       /*guarded=*/true);
  EXPECT_LE(err, hostblas::gemm_tolerance<float>(5));
}

TEST(DirectKernel, GuardedRequiresBa) {
  KernelParams p = small_params(Precision::DP, Algorithm::PL, true);
  EXPECT_THROW(codegen::generate_direct_gemm_kernel(
                   p, Transpose::No, Transpose::No, /*guarded=*/true),
               Error);
}

TEST(DirectKernel, GuardedSourceHasTernariesAndIfs) {
  const KernelParams p = small_params(Precision::DP, Algorithm::BA, true);
  const ir::Kernel k = codegen::generate_direct_gemm_kernel(
      p, Transpose::No, Transpose::No, /*guarded=*/true);
  const std::string src = ir::emit_opencl(k);
  EXPECT_NE(src.find(" ? "), std::string::npos);
  EXPECT_NE(src.find("if ("), std::string::npos);
  EXPECT_NE(src.find("&&"), std::string::npos);
}

TEST(DirectPath, ImprovesSmallSizePerformance) {
  // The whole point of the future-work kernel: small sizes get faster.
  blas::GemmEngine with(simcl::DeviceId::Tahiti);
  blas::GemmEngine without(simcl::DeviceId::Tahiti);
  without.set_direct_path(false);
  const auto p = with.kernel_for(Precision::DP).params;
  const index_t n = 4 * lcm3(p.Mwg, p.Nwg, p.Kwg);
  const double fast = with.estimate_gflops(GemmType::NN, Precision::DP, n);
  const double slow =
      without.estimate_gflops(GemmType::NN, Precision::DP, n);
  EXPECT_GE(fast, slow);
}

TEST(DirectPath, FunctionalExecutionMatchesReference) {
  blas::GemmEngine engine(simcl::DeviceId::Tahiti);
  const auto p = engine.kernel_for(Precision::DP).params;
  const index_t M = 2 * p.Mwg, N = 2 * p.Nwg, K = 2 * p.Kwg;
  Rng rng(33);
  Matrix<double> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K, 1.0,
                                A, B, 2.0, C, /*verify=*/true);
  EXPECT_TRUE(prof.used_direct);
  EXPECT_LE(prof.max_error, hostblas::gemm_tolerance<double>(K));
}

}  // namespace
}  // namespace gemmtune
