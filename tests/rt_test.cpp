// Runtime-layer tests: program building, kernel lookup, argument binding
// checks, enqueue semantics and the counter-based duration model.
#include <gtest/gtest.h>

#include "codegen/gemm_generator.hpp"
#include "codegen/pack_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/emit.hpp"
#include "rt/program.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;

const std::string kAxpySrc =
    "__kernel void axpy(__global double* out, __global const double* a, "
    "const double alpha, const int n)\n"
    "{\n"
    "  int gid;\n"
    "  gid = (int)get_global_id(0);\n"
    "  out[gid] = mad(alpha, a[gid], out[gid]);\n"
    "}\n";

TEST(RtProgram, BuildsAndListsKernels) {
  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Fermi));
  std::string src = kAxpySrc;
  src += ir::emit_opencl(codegen::generate_unpack_c_kernel(Precision::DP));
  rt::Program prog(ctx, src);
  const auto names = prog.kernel_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "axpy");
  EXPECT_EQ(names[1], "unpack_c_dp");
  EXPECT_NO_THROW(prog.kernel("axpy"));
  EXPECT_THROW(prog.kernel("missing"), Error);
}

TEST(RtProgram, BuildRejectsOversizedLocalMemory) {
  // A kernel demanding 64 KB of local memory cannot build for Cayman
  // (32 KB) but builds for Tahiti (64 KB).
  std::string src =
      "__kernel void big(__global float* out)\n"
      "{\n"
      "  __local float L[16384];\n"
      "  L[0] = 1.0f;\n"
      "  out[0] = L[0];\n"
      "}\n";
  simcl::Context tahiti(simcl::device_spec(simcl::DeviceId::Tahiti));
  EXPECT_NO_THROW(rt::Program(tahiti, src));
  simcl::Context cayman(simcl::device_spec(simcl::DeviceId::Cayman));
  EXPECT_THROW(rt::Program(cayman, src), Error);
}

TEST(RtKernelCall, BindsArgsAndExecutes) {
  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Tahiti));
  rt::Program prog(ctx, kAxpySrc);
  auto out = ctx.create_buffer(8 * sizeof(double));
  auto a = ctx.create_buffer(8 * sizeof(double));
  for (int i = 0; i < 8; ++i) {
    out->as<double>()[i] = 1.0;
    a->as<double>()[i] = i;
  }
  simcl::CommandQueue q(ctx);
  rt::KernelCall call(prog, "axpy");
  call.arg(0, out).arg(1, a).arg(2, 3.0).arg(3, std::int64_t{8});
  const auto c = call.enqueue(q, {8, 1}, {4, 1});
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(out->as<double>()[i], 1.0 + 3.0 * i);
  EXPECT_EQ(c.work_items, 8u);
  ASSERT_EQ(q.events().size(), 1u);
  EXPECT_EQ(q.events()[0].name, "axpy");
  EXPECT_GT(q.events()[0].seconds, 0);
}

TEST(RtKernelCall, RejectsBadBindings) {
  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Tahiti));
  rt::Program prog(ctx, kAxpySrc);
  rt::KernelCall call(prog, "axpy");
  auto buf = ctx.create_buffer(64);
  EXPECT_THROW(call.arg(0, 5.0), Error);               // buffer arg, float given
  EXPECT_THROW(call.arg(2, buf), Error);               // float arg, buffer given
  EXPECT_THROW(call.arg(3, 2.5), Error);               // int arg, float given
  EXPECT_THROW(call.arg(9, std::int64_t{1}), Error);   // out of range
  // Unbound arguments are caught at enqueue.
  simcl::CommandQueue q(ctx);
  rt::KernelCall incomplete(prog, "axpy");
  incomplete.arg(0, buf);
  EXPECT_THROW(incomplete.enqueue(q, {4, 1}, {4, 1}), Error);
}

TEST(RtKernelCall, ExplicitDurationOverridesTheModel) {
  simcl::Context ctx(simcl::device_spec(simcl::DeviceId::Kepler));
  rt::Program prog(ctx, kAxpySrc);
  auto out = ctx.create_buffer(4 * sizeof(double));
  auto a = ctx.create_buffer(4 * sizeof(double));
  simcl::CommandQueue q(ctx);
  rt::KernelCall call(prog, "axpy");
  call.arg(0, out).arg(1, a).arg(2, 1.0).arg(3, std::int64_t{4});
  call.enqueue(q, {4, 1}, {4, 1}, 0.125);
  EXPECT_DOUBLE_EQ(q.elapsed_seconds(), 0.125);
}

TEST(RtCountersTime, ScalesWithWork) {
  const auto& dev = simcl::device_spec(simcl::DeviceId::Tahiti);
  ir::Counters small, large;
  small.flops = 1000;
  small.global_load_bytes = 1000;
  large.flops = 1000000000;
  large.global_load_bytes = 4000000000;
  EXPECT_GT(rt::counters_time(dev, large), rt::counters_time(dev, small));
  // Launch overhead floors tiny launches.
  EXPECT_GE(rt::counters_time(dev, small), dev.kernel_launch_us * 1e-6);
}

TEST(RtProgram, GemmProgramFromTableII) {
  // A full generated GEMM kernel builds as a program on its own device.
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    const auto p = codegen::table2_entry(id, Precision::SP).params;
    simcl::Context ctx(simcl::device_spec(id));
    const std::string src =
        ir::emit_opencl(codegen::generate_gemm_kernel(p));
    EXPECT_NO_THROW(rt::Program(ctx, src)) << simcl::to_string(id);
  }
}

}  // namespace
}  // namespace gemmtune
