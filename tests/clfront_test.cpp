// OpenCL front-end tests: lexer behaviour, parser diagnostics, and the
// emit -> parse -> execute round trip that proves the shipped OpenCL text
// and the tested IR semantics are the same program.
#include <gtest/gtest.h>

#include <cstring>

#include "clfront/lexer.hpp"
#include "clfront/parser.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune {
namespace {

using codegen::GemmKernelArgs;
using codegen::KernelParams;
using codegen::Precision;

// ---- lexer ------------------------------------------------------------------

TEST(Lexer, TokenKinds) {
  const auto toks = clfront::lex(
      "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"
      "__kernel void f(int x) { x += 2; y = 1.5f; /* c */ z = 3.25; }");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, clfront::TokKind::Pragma);
  EXPECT_EQ(toks[1].kind, clfront::TokKind::Ident);
  EXPECT_EQ(toks[1].text, "__kernel");
  bool saw_pluseq = false, saw_f_suffix = false, saw_double = false;
  for (const auto& t : toks) {
    if (t.kind == clfront::TokKind::Punct && t.text == "+=")
      saw_pluseq = true;
    if (t.kind == clfront::TokKind::FloatLit && t.has_f_suffix) {
      saw_f_suffix = true;
      EXPECT_DOUBLE_EQ(t.fval, 1.5);
    }
    if (t.kind == clfront::TokKind::FloatLit && !t.has_f_suffix &&
        t.fval == 3.25)
      saw_double = true;
  }
  EXPECT_TRUE(saw_pluseq);
  EXPECT_TRUE(saw_f_suffix);
  EXPECT_TRUE(saw_double);
  EXPECT_EQ(toks.back().kind, clfront::TokKind::End);
}

TEST(Lexer, TracksLinesAndRejectsGarbage) {
  const auto toks = clfront::lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_THROW(clfront::lex("a $ b"), Error);
  EXPECT_THROW(clfront::lex("/* unterminated"), Error);
}

// ---- parser diagnostics --------------------------------------------------------

TEST(ClParser, RejectsConstructsOutsideTheSubset) {
  EXPECT_THROW(clfront::parse_kernel("int main() { return 0; }"), Error);
  EXPECT_THROW(clfront::parse_kernel("__kernel void f() { while (1) {} }"),
               Error);
  EXPECT_THROW(
      clfront::parse_kernel("__kernel void f(__global double* C) "
                            "{ C[unknown_var] = 1.0; }"),
      Error);
}

TEST(ClParser, ParsesAMinimalKernel) {
  const ir::Kernel k = clfront::parse_kernel(
      "__kernel void axpy(__global double* out, __global const double* a, "
      "const double alpha, const int n)\n"
      "{\n"
      "  int gid;\n"
      "  gid = (int)get_global_id(0);\n"
      "  out[gid] = mad(alpha, a[gid], out[gid]);\n"
      "}\n");
  EXPECT_EQ(k.name, "axpy");
  ASSERT_EQ(k.args.size(), 4u);
  EXPECT_EQ(k.args[0].kind, ir::ArgKind::GlobalPtr);
  EXPECT_EQ(k.args[1].kind, ir::ArgKind::GlobalConstPtr);
  EXPECT_EQ(k.args[2].kind, ir::ArgKind::Float);
  EXPECT_EQ(k.args[3].kind, ir::ArgKind::Int);

  // Execute it.
  auto out = std::make_shared<simcl::Buffer>(4 * sizeof(double));
  auto a = std::make_shared<simcl::Buffer>(4 * sizeof(double));
  for (int i = 0; i < 4; ++i) {
    out->as<double>()[i] = 1.0;
    a->as<double>()[i] = i;
  }
  ir::launch(k, {4, 1}, {4, 1},
             {ir::ArgValue::of(out), ir::ArgValue::of(a),
              ir::ArgValue::of_float(2.0), ir::ArgValue::of_int(4)});
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out->as<double>()[i], 1.0 + 2.0 * i);
}

TEST(ClParser, UnaryMinusAndPrecedence) {
  const ir::Kernel k = clfront::parse_kernel(
      "__kernel void f(__global double* out)\n"
      "{\n"
      "  int i;\n"
      "  i = 2 + 3 * 4 - 6 / 2;\n"  // 11
      "  out[i - 11] = -1.5;\n"
      "}\n");
  auto out = std::make_shared<simcl::Buffer>(sizeof(double));
  ir::launch(k, {1, 1}, {1, 1}, {ir::ArgValue::of(out)});
  EXPECT_DOUBLE_EQ(out->as<double>()[0], -1.5);
}

// ---- round trip -----------------------------------------------------------------

/// Runs `k` on buffers sized for a packed (Mp, Np, Kp) problem and returns
/// the C buffer contents plus the dynamic counters.
template <typename T>
std::pair<std::vector<T>, ir::Counters> run_gemm_ir(
    const ir::Kernel& k, const KernelParams& p, index_t Mp, index_t Np,
    index_t Kp, std::uint64_t seed) {
  Rng rng(seed);
  auto fill = [&](simcl::Buffer& b) {
    for (std::size_t i = 0; i < b.count<T>(); ++i)
      b.as<T>()[i] = static_cast<T>(rng.next_double(-1, 1));
  };
  auto dA = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(Mp * Kp) * sizeof(T));
  auto dB = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(Kp * Np) * sizeof(T));
  auto dC = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(Mp * Np) * sizeof(T));
  fill(*dA);
  fill(*dB);
  fill(*dC);
  const auto geo = codegen::launch_geometry(p, Mp, Np);
  std::vector<ir::ArgValue> args(8);
  args[GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[GemmKernelArgs::M] = ir::ArgValue::of_int(Mp);
  args[GemmKernelArgs::N] = ir::ArgValue::of_int(Np);
  args[GemmKernelArgs::K] = ir::ArgValue::of_int(Kp);
  args[GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.25);
  args[GemmKernelArgs::beta] = ir::ArgValue::of_float(-0.5);
  const auto counters = ir::launch(k, geo.global, geo.local, args);
  std::vector<T> out(dC->count<T>());
  std::memcpy(out.data(), dC->data(), dC->size());
  return {out, counters};
}

template <typename T>
void round_trip_case(const KernelParams& p, std::uint64_t seed) {
  const ir::Kernel original = codegen::generate_gemm_kernel(p);
  const std::string source = ir::emit_opencl(original);
  const ir::Kernel reparsed = clfront::parse_kernel(source);
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.args.size(), original.args.size());
  EXPECT_EQ(reparsed.local_mem_bytes(), original.local_mem_bytes());

  const index_t Mp = 2 * p.Mwg, Np = 2 * p.Nwg, Kp = 2 * p.Kwg;
  const auto [c1, n1] = run_gemm_ir<T>(original, p, Mp, Np, Kp, seed);
  const auto [c2, n2] = run_gemm_ir<T>(reparsed, p, Mp, Np, Kp, seed);
  // Bit-identical results and identical dynamic work.
  EXPECT_EQ(c1, c2) << p.summary();
  EXPECT_EQ(n1.flops, n2.flops);
  EXPECT_EQ(n1.mads, n2.mads);
  EXPECT_EQ(n1.global_load_bytes, n2.global_load_bytes);
  EXPECT_EQ(n1.global_store_bytes, n2.global_store_bytes);
  EXPECT_EQ(n1.local_load_bytes, n2.local_load_bytes);
  EXPECT_EQ(n1.local_store_bytes, n2.local_store_bytes);
  EXPECT_EQ(n1.barriers, n2.barriers);
}

TEST(RoundTrip, EveryTableIIKernelSurvivesEmitParseExecute) {
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const KernelParams p = codegen::table2_entry(id, prec).params;
      if (prec == Precision::DP) {
        round_trip_case<double>(p, 101);
      } else {
        round_trip_case<float>(p, 102);
      }
    }
  }
}

// The parser discards comments (they carry no semantics), so the textual
// fixed point holds modulo comment-only lines.
std::string strip_comment_lines(const std::string& src) {
  std::string out;
  std::vector<std::string> lines = split(src, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  for (const std::string& line : lines) {
    const std::string t = trim(line);
    if (starts_with(t, "/*") && t.size() >= 2 &&
        t.compare(t.size() - 2, 2, "*/") == 0)
      continue;
    out += line;
    out += '\n';
  }
  return out;
}

TEST(RoundTrip, DirectKernelSurvives) {
  KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 8;
  p.Nwg = 8;
  p.Kwg = 4;
  p.MdimC = p.NdimC = 4;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 1;
  p.share_a = p.share_b = true;
  const ir::Kernel k =
      codegen::generate_direct_gemm_kernel(p, Transpose::Yes, Transpose::No);
  const ir::Kernel back = clfront::parse_kernel(ir::emit_opencl(k));
  EXPECT_EQ(back.args.size(), 11u);
  EXPECT_EQ(back.name, k.name);
  // Re-emission of the reparsed kernel reproduces the original source
  // (modulo dropped comments).
  EXPECT_EQ(ir::emit_opencl(back),
            strip_comment_lines(ir::emit_opencl(k)));
}

TEST(RoundTrip, ReEmissionIsAFixedPoint) {
  // emit(parse(emit(K))) == emit(K): the text representation is stable.
  const KernelParams p =
      codegen::table2_entry(simcl::DeviceId::Tahiti, Precision::SP).params;
  const std::string once =
      ir::emit_opencl(codegen::generate_gemm_kernel(p));
  const std::string twice = ir::emit_opencl(clfront::parse_kernel(once));
  EXPECT_EQ(strip_comment_lines(once), twice);
  // And parsing the re-emission yields the same text again.
  EXPECT_EQ(ir::emit_opencl(clfront::parse_kernel(twice)), twice);
}

}  // namespace
}  // namespace gemmtune

namespace gemmtune {
namespace {

TEST(RoundTrip, GuardedDirectKernelSurvives) {
  // The guarded kernel uses the full control-flow surface: ternaries,
  // comparisons, logical-and, and divergent if statements.
  KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 8;
  p.Nwg = 8;
  p.Kwg = 4;
  p.MdimC = p.NdimC = 4;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 1;
  p.share_a = p.share_b = true;
  const ir::Kernel k = codegen::generate_direct_gemm_kernel(
      p, Transpose::No, Transpose::Yes, /*guarded=*/true);
  const std::string once = ir::emit_opencl(k);
  const ir::Kernel back = clfront::parse_kernel(once);
  EXPECT_EQ(ir::emit_opencl(back), strip_comment_lines(once));
}

}  // namespace
}  // namespace gemmtune
