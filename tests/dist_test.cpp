// Distributed GEMM tests: tile-grid fringe math, largest-remainder
// partitioning (sums, degenerate fleets, tie order), thread-count
// invariance of the full report, steal-guard behavior, the spec parser's
// unknown-key rejection, and the mixed-fleet speedup the subsystem exists
// to deliver.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/report_version.hpp"
#include "dist/executor.hpp"
#include "dist/partition.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using dist::DistExecutor;
using dist::DistOptions;
using dist::DistOutcome;
using dist::DistSpec;
using dist::TileGrid;
using simcl::DeviceId;

TEST(TileGridTest, FringeTilesCarryTheRemainder) {
  const TileGrid g(2500, 2048, 1000, 1024, 1024);
  EXPECT_EQ(g.rows, 3);
  EXPECT_EQ(g.cols, 2);
  EXPECT_EQ(g.total(), 6);
  EXPECT_EQ(g.tile_rows(0), 1024);
  EXPECT_EQ(g.tile_rows(2), 452);  // 2500 - 2*1024
  EXPECT_EQ(g.tile_cols(0), 1024);
  EXPECT_EQ(g.tile_cols(1), 1024);  // divides exactly: no fringe column
  // Row-major index round trip.
  EXPECT_EQ(g.row_of(5), 2);
  EXPECT_EQ(g.col_of(5), 1);
}

TEST(PartitionTest, SharesSumToTotalAndFollowWeights) {
  const auto shares = dist::proportional_split({3.0, 1.0, 2.0}, 60);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0] + shares[1] + shares[2], 60);
  EXPECT_EQ(shares[0], 30);
  EXPECT_EQ(shares[1], 10);
  EXPECT_EQ(shares[2], 20);
}

TEST(PartitionTest, RemaindersGoToLargestFraction) {
  // Quotas 3.5 / 3.5: one leftover unit, tie on the fractional part —
  // the lower index takes it, deterministically.
  const auto shares = dist::proportional_split({1.0, 1.0}, 7);
  EXPECT_EQ(shares[0], 4);
  EXPECT_EQ(shares[1], 3);
}

TEST(PartitionTest, DegenerateFleets) {
  // One device owns everything.
  EXPECT_EQ(dist::proportional_split({5.0}, 64),
            (std::vector<std::int64_t>{64}));
  // All-equal fleet splits evenly.
  EXPECT_EQ(dist::proportional_split({2.0, 2.0, 2.0, 2.0}, 64),
            (std::vector<std::int64_t>{16, 16, 16, 16}));
  // Unusable weights (zero, negative, non-finite) fall back to the even
  // split with earlier devices taking the extras.
  EXPECT_EQ(dist::proportional_split(
                {0.0, -1.0, std::numeric_limits<double>::infinity()}, 8),
            (std::vector<std::int64_t>{3, 3, 2}));
  // A single zero weight among finite ones gets nothing.
  const auto shares = dist::proportional_split({1.0, 0.0}, 10);
  EXPECT_EQ(shares[0], 10);
  EXPECT_EQ(shares[1], 0);
}

TEST(PartitionTest, StartsAreExclusivePrefixSums) {
  EXPECT_EQ(dist::partition_starts({3, 0, 5}),
            (std::vector<std::int64_t>{0, 3, 3}));
}

TEST(DistSpecTest, ParsesEveryKey) {
  const DistSpec spec = dist::parse_dist_spec(
      "m=4096,n=2048,k=1024,prec=DGEMM,type=NT,tile=512,"
      "devices=Tahiti+SandyBridge");
  EXPECT_EQ(spec.M, 4096);
  EXPECT_EQ(spec.N, 2048);
  EXPECT_EQ(spec.K, 1024);
  EXPECT_EQ(spec.prec, Precision::DP);
  EXPECT_EQ(spec.type, GemmType::NT);
  EXPECT_EQ(spec.tile, 512);
  ASSERT_EQ(spec.devices.size(), 2u);
  EXPECT_EQ(spec.devices[0], DeviceId::Tahiti);
  EXPECT_EQ(spec.devices[1], DeviceId::SandyBridge);
  // size= sets all three extents at once.
  const DistSpec cube = dist::parse_dist_spec("size=8192");
  EXPECT_EQ(cube.M, 8192);
  EXPECT_EQ(cube.N, 8192);
  EXPECT_EQ(cube.K, 8192);
}

TEST(DistSpecTest, RejectsUnknownKeysNamingTheKey) {
  try {
    dist::parse_dist_spec("size=1024,tle=512");
    FAIL() << "expected an error for the unknown key";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'tle'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tile"), std::string::npos)
        << "error should list the accepted keys: " << msg;
  }
  EXPECT_THROW(dist::parse_dist_spec("size"), Error);
  EXPECT_THROW(dist::parse_dist_spec("=4"), Error);
  EXPECT_THROW(dist::parse_dist_spec("size=0"), Error);
}

TEST(DistExecutorTest, AutoTileAlignsToTheFleetBlocking) {
  DistExecutor ex({DeviceId::Tahiti, DeviceId::SandyBridge});
  const index_t tile = ex.auto_tile(Precision::SP);
  EXPECT_GE(tile, 1024);
  // Interior tiles must pack without padding on every device.
  for (simcl::DeviceId id : ex.devices()) {
    blas::GemmEngine e(id);
    const auto& p = e.kernel_for(Precision::SP).params;
    EXPECT_EQ(tile % p.Mwg, 0);
    EXPECT_EQ(tile % p.Nwg, 0);
  }
}

TEST(DistExecutorTest, SingleDeviceFleetHasUnitSpeedup) {
  DistExecutor ex({DeviceId::Cayman});
  const DistOutcome o =
      ex.run(GemmType::NN, Precision::SP, 4096, 4096, 4096);
  EXPECT_EQ(o.best_single, 0);
  EXPECT_DOUBLE_EQ(o.speedup, 1.0);
  EXPECT_EQ(o.device_stats[0].executed, o.grid.total());
  EXPECT_EQ(o.device_stats[0].stolen, 0);
}

TEST(DistExecutorTest, EveryTileExecutesExactlyOnce) {
  DistExecutor ex({DeviceId::Cypress, DeviceId::Cayman,
                   DeviceId::SandyBridge});
  const DistOutcome o =
      ex.run(GemmType::NN, Precision::SP, 8192, 8192, 8192);
  ASSERT_EQ(static_cast<std::int64_t>(o.tiles.size()), o.grid.total());
  std::vector<int> seen(static_cast<std::size_t>(o.grid.total()), 0);
  for (const auto& t : o.tiles) seen[static_cast<std::size_t>(t.index)]++;
  for (int c : seen) EXPECT_EQ(c, 1);
  std::int64_t executed = 0, planned = 0;
  for (const auto& ds : o.device_stats) {
    executed += ds.executed;
    planned += ds.planned;
  }
  EXPECT_EQ(executed, o.grid.total());
  EXPECT_EQ(planned, o.grid.total());
}

TEST(DistExecutorTest, TransferNeverOverlapsBadlyAndOrderIsCausal) {
  DistExecutor ex({DeviceId::Tahiti, DeviceId::Fermi});
  const DistOutcome o =
      ex.run(GemmType::NN, Precision::DP, 4096, 4096, 4096);
  for (const auto& t : o.tiles) {
    EXPECT_LE(t.copy_start, t.copy_done);
    EXPECT_LE(t.copy_done, t.compute_start);  // compute waits for its DMA
    EXPECT_LT(t.compute_start, t.compute_done);
    EXPECT_GT(t.bytes, 0);
  }
}

TEST(DistExecutorTest, ReportIsByteIdenticalAcrossThreadCounts) {
  const DistSpec spec = dist::parse_dist_spec(
      "size=8192,prec=SGEMM,devices=Cypress+Cayman+SandyBridge");
  std::vector<std::string> dumps;
  for (int threads : {1, 4}) {
    DistExecutor ex(spec.resolved_devices(), DistOptions{threads});
    const DistOutcome o =
        ex.run(spec.type, spec.prec, spec.M, spec.N, spec.K, spec.tile);
    dumps.push_back(dist::build_dist_report(spec, o).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(DistExecutorTest, MixedFleetBeatsBestSingleDevice) {
  // The acceptance fleet: two mid GPUs plus a CPU an order of magnitude
  // slower. The tiled fleet must clearly beat the best single device.
  DistExecutor ex({DeviceId::Cypress, DeviceId::Cayman,
                   DeviceId::SandyBridge});
  const DistOutcome o =
      ex.run(GemmType::NN, Precision::SP, 8192, 8192, 8192);
  EXPECT_GT(o.speedup, 1.5);
  EXPECT_GT(o.gflops, 0);
  // The slow CPU must not be the straggler that defines the makespan:
  // its share is proportional to its throughput.
  const auto& cpu = o.device_stats[2];
  EXPECT_LT(cpu.executed, o.device_stats[0].executed);
  EXPECT_LT(cpu.executed, o.device_stats[1].executed);
}

TEST(DistExecutorTest, EstimateMatchesRunMakespan) {
  DistExecutor ex({DeviceId::Tahiti, DeviceId::Cayman});
  const double est =
      ex.estimate_seconds(GemmType::NN, Precision::SP, 8192, 8192, 8192);
  const DistOutcome o =
      ex.run(GemmType::NN, Precision::SP, 8192, 8192, 8192);
  EXPECT_DOUBLE_EQ(est, o.makespan_seconds);
}

TEST(DistReportTest, CarriesSchemaAndPerDeviceTileCounts) {
  const DistSpec spec =
      dist::parse_dist_spec("size=4096,devices=Tahiti+Fermi");
  DistExecutor ex(spec.resolved_devices());
  const DistOutcome o =
      ex.run(spec.type, spec.prec, spec.M, spec.N, spec.K, spec.tile);
  const Json doc = dist::build_dist_report(spec, o);
  EXPECT_EQ(doc.at("schema").as_string(), kDistReportSchema);
  const Json& scalars = doc.at("scalars");
  EXPECT_EQ(scalars.at("tiles.total").as_int(), o.grid.total());
  EXPECT_EQ(scalars.at("tiles.dev.Tahiti").as_int(),
            o.device_stats[0].executed);
  EXPECT_EQ(scalars.at("tiles.dev.Fermi").as_int(),
            o.device_stats[1].executed);
  EXPECT_GT(scalars.at("transfer.seconds").as_number(), 0);
  EXPECT_GT(scalars.at("compute.seconds").as_number(), 0);
  EXPECT_EQ(scalars.at("speedup.vs_best_single").as_number(), o.speedup);
  const Json& per_device = doc.at("per_device");
  EXPECT_TRUE(per_device.contains("Tahiti"));
  EXPECT_TRUE(per_device.contains("Fermi"));
  // Small grid: the per-tile timeline is included.
  EXPECT_TRUE(doc.contains("tiles"));
  EXPECT_EQ(doc.at("tiles").size(),
            static_cast<std::size_t>(o.grid.total()));
}

}  // namespace
}  // namespace gemmtune
