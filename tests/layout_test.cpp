// Layout tests: matrix container invariants, block-layout index bijection
// and contiguity properties (Fig. 3), packing round trips with transposition
// and zero padding.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "layout/block_layout.hpp"
#include "layout/gemm_type.hpp"
#include "layout/matrix.hpp"
#include "layout/packing.hpp"

namespace gemmtune {
namespace {

TEST(Matrix, StorageOrders) {
  Matrix<double> col(3, 2, StorageOrder::ColMajor);
  Matrix<double> row(3, 2, StorageOrder::RowMajor);
  col.at(2, 1) = 5;
  row.at(2, 1) = 5;
  EXPECT_EQ(col.data()[1 * 3 + 2], 5);
  EXPECT_EQ(row.data()[2 * 2 + 1], 5);
  EXPECT_THROW(col.at(3, 0), Error);
  EXPECT_THROW(col.at(0, 2), Error);
}

TEST(Matrix, TransposedCopy) {
  Rng rng(1);
  Matrix<float> a(4, 7);
  a.fill_random(rng);
  const Matrix<float> t = a.transposed();
  for (index_t r = 0; r < 4; ++r)
    for (index_t c = 0; c < 7; ++c) EXPECT_EQ(a.at(r, c), t.at(c, r));
}

TEST(Matrix, MaxAbsDiff) {
  Matrix<double> a(2, 2), b(2, 2);
  a.at(1, 1) = 3.0;
  b.at(1, 1) = 2.5;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
}

class IndexerProps : public ::testing::TestWithParam<BlockLayout> {};

TEST_P(IndexerProps, IsABijection) {
  const PackedIndexer idx(GetParam(), 12, 8, 4, 2);
  std::set<std::int64_t> seen;
  for (std::int64_t r = 0; r < 12; ++r)
    for (std::int64_t c = 0; c < 8; ++c) {
      const std::int64_t o = idx.at(r, c);
      EXPECT_GE(o, 0);
      EXPECT_LT(o, idx.size());
      EXPECT_TRUE(seen.insert(o).second) << "collision at " << r << "," << c;
    }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(idx.size()));
}

TEST_P(IndexerProps, RejectsOutOfRange) {
  const PackedIndexer idx(GetParam(), 12, 8, 4, 2);
  EXPECT_THROW(idx.at(12, 0), Error);
  EXPECT_THROW(idx.at(0, 8), Error);
  EXPECT_THROW(idx.at(-1, 0), Error);
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, IndexerProps,
                         ::testing::Values(BlockLayout::RowMajor,
                                           BlockLayout::CBL,
                                           BlockLayout::RBL),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Indexer, RowMajorIsRowMajor) {
  const PackedIndexer idx(BlockLayout::RowMajor, 4, 6, 2, 3);
  EXPECT_EQ(idx.at(0, 0), 0);
  EXPECT_EQ(idx.at(0, 5), 5);
  EXPECT_EQ(idx.at(2, 1), 13);
}

TEST(Indexer, CblColumnBlocksAreContiguous) {
  // In CBL, a whole rows x cblock column block occupies one contiguous
  // range (paper: "matrix data required for a multiplication of a
  // column-block ... are in contiguous memory space").
  const std::int64_t R = 8, C = 12, rb = 4, cb = 3;
  const PackedIndexer idx(BlockLayout::CBL, R, C, rb, cb);
  for (std::int64_t blk = 0; blk < C / cb; ++blk) {
    std::int64_t lo = idx.size(), hi = -1;
    for (std::int64_t r = 0; r < R; ++r)
      for (std::int64_t c = blk * cb; c < (blk + 1) * cb; ++c) {
        lo = std::min(lo, idx.at(r, c));
        hi = std::max(hi, idx.at(r, c));
      }
    EXPECT_EQ(hi - lo + 1, R * cb) << "block " << blk;
    EXPECT_EQ(lo % (R * cb), 0);
  }
}

TEST(Indexer, RblSubBlocksAreContiguous) {
  // In RBL, each rblock x cblock sub-block is contiguous (paper: data for a
  // sub-block multiplication "are in sequential memory space").
  const std::int64_t R = 8, C = 12, rb = 4, cb = 3;
  const PackedIndexer idx(BlockLayout::RBL, R, C, rb, cb);
  for (std::int64_t br = 0; br < R / rb; ++br) {
    for (std::int64_t bc = 0; bc < C / cb; ++bc) {
      std::int64_t lo = idx.size(), hi = -1;
      for (std::int64_t r = br * rb; r < (br + 1) * rb; ++r)
        for (std::int64_t c = bc * cb; c < (bc + 1) * cb; ++c) {
          lo = std::min(lo, idx.at(r, c));
          hi = std::max(hi, idx.at(r, c));
        }
      EXPECT_EQ(hi - lo + 1, rb * cb);
      EXPECT_EQ(lo % (rb * cb), 0);
    }
  }
}

TEST(Indexer, RowsWithinBlocksAreUnitStride) {
  // Every layout keeps a row contiguous within a column block — the
  // property the kernels' vector loads rely on.
  for (BlockLayout l :
       {BlockLayout::RowMajor, BlockLayout::CBL, BlockLayout::RBL}) {
    const PackedIndexer idx(l, 8, 12, 4, 4);
    for (std::int64_t r = 0; r < 8; ++r)
      for (std::int64_t c = 0; c + 1 < 12; ++c) {
        if (c / 4 == (c + 1) / 4) {
          EXPECT_EQ(idx.at(r, c + 1), idx.at(r, c) + 1)
              << to_string(l) << " at " << r << "," << c;
        }
      }
  }
}

TEST(Packing, ExtentsRoundUp) {
  const auto e = packed_extents(13, 11, 7, 8, 8, 4);
  EXPECT_EQ(e.Mp, 16);
  EXPECT_EQ(e.Np, 16);
  EXPECT_EQ(e.Kp, 8);
  EXPECT_THROW(packed_extents(0, 1, 1, 8, 8, 4), Error);
}

class PackRoundTrip
    : public ::testing::TestWithParam<std::tuple<BlockLayout, Transpose>> {};

TEST_P(PackRoundTrip, AOperandHoldsOpATransposed) {
  const auto [layout, trans] = GetParam();
  const index_t M = 13, K = 7, Mwg = 8, Kwg = 4;
  const auto e = packed_extents(M, 8, K, Mwg, 8, Kwg);
  Rng rng(3);
  // Stored matrix: M x K when not transposed, K x M when transposed.
  Matrix<double> A(trans == Transpose::No ? M : K,
                   trans == Transpose::No ? K : M);
  A.fill_random(rng);
  const auto buf = pack_a(A, trans, M, K, e.Mp, e.Kp, layout, Mwg, Kwg);
  const PackedIndexer idx(layout, e.Kp, e.Mp, Kwg, Mwg);
  for (index_t k = 0; k < e.Kp; ++k) {
    for (index_t m = 0; m < e.Mp; ++m) {
      const double got = packed_at(buf, idx, k, m);
      if (k < K && m < M) {
        const double want =
            trans == Transpose::No ? A.at(m, k) : A.at(k, m);
        EXPECT_EQ(got, want) << k << "," << m;
      } else {
        EXPECT_EQ(got, 0.0) << "padding not zero at " << k << "," << m;
      }
    }
  }
}

TEST_P(PackRoundTrip, BOperandHoldsOpB) {
  const auto [layout, trans] = GetParam();
  const index_t K = 7, N = 11, Kwg = 4, Nwg = 8;
  const auto e = packed_extents(8, N, K, 8, Nwg, Kwg);
  Rng rng(4);
  Matrix<float> B(trans == Transpose::No ? K : N,
                  trans == Transpose::No ? N : K);
  B.fill_random(rng);
  const auto buf = pack_b(B, trans, K, N, e.Kp, e.Np, layout, Kwg, Nwg);
  const PackedIndexer idx(layout, e.Kp, e.Np, Kwg, Nwg);
  for (index_t k = 0; k < e.Kp; ++k)
    for (index_t n = 0; n < e.Np; ++n) {
      const float got = packed_at(buf, idx, k, n);
      if (k < K && n < N) {
        EXPECT_EQ(got, trans == Transpose::No ? B.at(k, n) : B.at(n, k));
      } else {
        EXPECT_EQ(got, 0.0f);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackRoundTrip,
    ::testing::Combine(::testing::Values(BlockLayout::RowMajor,
                                         BlockLayout::CBL, BlockLayout::RBL),
                       ::testing::Values(Transpose::No, Transpose::Yes)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) +
             (std::get<1>(info.param) == Transpose::Yes ? "_T" : "_N");
    });

TEST(Packing, CRoundTrip) {
  const index_t M = 5, N = 6, Mp = 8, Np = 8;
  Rng rng(5);
  Matrix<double> C(M, N);
  C.fill_random(rng);
  const auto buf = pack_c(C, M, N, Mp, Np);
  Matrix<double> back(M, N);
  unpack_c(buf, Mp, Np, back, M, N);
  EXPECT_EQ(max_abs_diff(C, back), 0.0);
  // Padding is zero.
  EXPECT_EQ(buf[static_cast<std::size_t>(0 * Np + 7)], 0.0);
  EXPECT_EQ(buf[static_cast<std::size_t>(7 * Np + 0)], 0.0);
}

TEST(GemmTypeHelpers, MapBothWays) {
  EXPECT_EQ(gemm_type_of(Transpose::No, Transpose::No), GemmType::NN);
  EXPECT_EQ(gemm_type_of(Transpose::Yes, Transpose::No), GemmType::TN);
  for (GemmType t : all_gemm_types()) {
    EXPECT_EQ(gemm_type_of(trans_a(t), trans_b(t)), t);
  }
  EXPECT_STREQ(to_string(GemmType::NT), "NT");
}

TEST(BlockLayoutNames, RoundTrip) {
  for (BlockLayout l :
       {BlockLayout::RowMajor, BlockLayout::CBL, BlockLayout::RBL}) {
    EXPECT_EQ(block_layout_from_string(to_string(l)), l);
  }
  EXPECT_THROW(block_layout_from_string("XYZ"), Error);
}

}  // namespace
}  // namespace gemmtune
