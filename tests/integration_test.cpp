// Cross-module integration tests: the paper's headline comparisons
// (Section IV / Table III) must hold end-to-end — GemmEngine (codegen +
// perfmodel + tuner + blas) against the vendor baselines.
#include <gtest/gtest.h>

#include <algorithm>

#include "blas/gemm.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/emit.hpp"
#include "vendor/baselines.hpp"

namespace gemmtune {
namespace {

using blas::GemmEngine;
using codegen::Precision;
using simcl::DeviceId;

double ours_at(DeviceId id, Precision prec, GemmType type, index_t n) {
  GemmEngine engine(id);
  return engine.estimate_gflops(type, prec, n);
}

double vendor_at(DeviceId id, Precision prec, GemmType type, index_t n) {
  return vendor::baseline_gflops(vendor::table3_vendor(id, prec), type, n);
}

TEST(PaperClaims, OursBeatsClBlasOnAmdGpus) {
  // "The performance demonstrated by the best GEMM kernel is superior to
  // the vendor library (clBLAS) on AMD GPUs."
  for (DeviceId id : {DeviceId::Tahiti, DeviceId::Cayman}) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      for (GemmType t : all_gemm_types()) {
        EXPECT_GT(ours_at(id, prec, t, 5760), vendor_at(id, prec, t, 5760))
            << simcl::to_string(id) << " " << to_string(prec) << " "
            << to_string(t);
      }
    }
  }
}

TEST(PaperClaims, OursComparableToCudaLibrariesOnNvidia) {
  // "On NVIDIA GPUs, the GEMM performance is almost equivalent to
  // libraries in CUDA (CUBLAS and MAGMA)."
  for (DeviceId id : {DeviceId::Kepler, DeviceId::Fermi}) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const double ours = ours_at(id, prec, GemmType::NN, 5760);
      const double theirs = vendor_at(id, prec, GemmType::NN, 5760);
      EXPECT_GT(ours / theirs, 0.80)
          << simcl::to_string(id) << " " << to_string(prec);
      EXPECT_LT(ours / theirs, 1.25)
          << simcl::to_string(id) << " " << to_string(prec);
    }
  }
}

TEST(PaperClaims, CpuVendorLibrariesWinByTwoOrMore) {
  // "The performance in OpenCL is twice or more times lower than Intel MKL
  // ... on the Sandy Bridge"; ACML similarly leads on Bulldozer.
  for (DeviceId id : {DeviceId::SandyBridge, DeviceId::Bulldozer}) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const double ours = ours_at(id, prec, GemmType::NN, 1536);
      const double theirs = vendor_at(id, prec, GemmType::NN, 1536);
      EXPECT_LT(ours, theirs) << simcl::to_string(id);
      if (id == DeviceId::SandyBridge) {
        EXPECT_GE(theirs / ours, 1.9) << to_string(prec);
      }
    }
  }
}

TEST(PaperClaims, OursIsTypeInsensitiveUnlikeClBlas) {
  // Table III: clBLAS SGEMM TN collapses to 1476 while its NN reaches
  // 2468; our four types stay within a few percent of each other.
  const double our_spread =
      ours_at(DeviceId::Tahiti, Precision::SP, GemmType::NN, 5760) /
      ours_at(DeviceId::Tahiti, Precision::SP, GemmType::TN, 5760);
  const double clblas_spread =
      vendor_at(DeviceId::Tahiti, Precision::SP, GemmType::NN, 5760) /
      vendor_at(DeviceId::Tahiti, Precision::SP, GemmType::TN, 5760);
  EXPECT_LT(our_spread, 1.05);
  EXPECT_GT(clblas_spread, 1.5);
}

TEST(PaperClaims, CurrentStudyBeatsPreviousStudyOnTahiti) {
  // Fig. 9: this study's implementation outperforms [13] on Tahiti.
  const auto& prev = vendor::baseline_by_name(DeviceId::Tahiti,
                                              Precision::SP,
                                              "Our previous study");
  const double ours = ours_at(DeviceId::Tahiti, Precision::SP, GemmType::NN,
                              5760);
  EXPECT_GT(ours, vendor::baseline_gflops(prev, GemmType::NN, 5760));
}

TEST(PaperClaims, CypressMatchesNakasatoAndBeatsDuEtAl) {
  // Section IV-C: our auto-tuned OpenCL DGEMM reaches 495 GFlop/s on the
  // Cypress, matching Nakasato's 498 IL kernel and well above Du et al.'s
  // 308 OpenCL routine.
  const double ours =
      codegen::table2_entry(DeviceId::Cypress, Precision::DP).max_gflops;
  const auto& nak = vendor::baseline_by_name(DeviceId::Cypress,
                                             Precision::DP, "Nakasato");
  const auto& du = vendor::baseline_by_name(DeviceId::Cypress, Precision::DP,
                                            "Du et al.");
  EXPECT_NEAR(ours, nak.sat[0], 0.02 * nak.sat[0]);
  EXPECT_GT(ours, 1.5 * du.sat[0]);
}

TEST(PaperArtifacts, TableIIKernelsEmitCompleteOpenCl) {
  // Every Table II kernel must emit syntactically plausible OpenCL C with
  // the expected structural features.
  for (DeviceId id : simcl::evaluation_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto p = codegen::table2_entry(id, prec).params;
      const ir::Kernel k = codegen::generate_gemm_kernel(p);
      const std::string src = ir::emit_opencl(k);
      EXPECT_NE(src.find("__kernel"), std::string::npos);
      EXPECT_NE(src.find("reqd_work_group_size"), std::string::npos);
      EXPECT_NE(src.find("mad("), std::string::npos);
      if (p.share_a || p.share_b) {
        EXPECT_NE(src.find("__local"), std::string::npos)
            << simcl::to_string(id);
      }
      EXPECT_EQ(std::count(src.begin(), src.end(), '{'),
                std::count(src.begin(), src.end(), '}'));
      // Local memory declared by the kernel matches the parameter formula.
      EXPECT_EQ(k.local_mem_bytes(), p.local_mem_bytes());
      EXPECT_EQ(k.reqd_local[0], p.MdimC);
      EXPECT_EQ(k.reqd_local[1], p.NdimC);
    }
  }
}

}  // namespace
}  // namespace gemmtune
