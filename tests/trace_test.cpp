// Tests for the observability layer: span recording and nesting, counter
// and gauge aggregation, the deterministic multi-thread merge under the
// shared thread pool, and the JSON schemas round-tripping through the
// common parser.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/thread_pool.hpp"

namespace gemmtune {
namespace {

// The trace state is process-wide, so every test starts from a clean,
// enabled collector and leaves it disabled for the next one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::reset();
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  trace::set_enabled(false);
  {
    trace::Span span("t.off");
    trace::counter_add("t.off_counter", 7);
    trace::gauge_set("t.off_gauge", 1.0);
  }
  const Json m = trace::metrics_json();
  EXPECT_EQ(m.at("spans").size(), 0u);
  EXPECT_EQ(m.at("counters").size(), 0u);
  EXPECT_EQ(m.at("gauges").size(), 0u);
  EXPECT_EQ(trace::trace_json().at("traceEvents").size(), 0u);
}

TEST_F(TraceTest, SpanStatsCountTotalMinMax) {
  for (int i = 0; i < 5; ++i) trace::Span span("t.stats");
  const Json m = trace::metrics_json();
  const Json& s = m.at("spans").at("t.stats");
  EXPECT_EQ(s.at("count").as_int(), 5);
  EXPECT_GE(s.at("min_ns").as_int(), 1);  // 1 ns duration floor
  EXPECT_LE(s.at("min_ns").as_int(), s.at("max_ns").as_int());
  EXPECT_GE(s.at("total_ns").as_int(), 5 * s.at("min_ns").as_int());
  EXPECT_LE(s.at("total_ns").as_int(), 5 * s.at("max_ns").as_int());
}

TEST_F(TraceTest, NestedSpansRecordDepth) {
  {
    trace::Span outer("t.outer");
    trace::Span inner("t.inner");
    { trace::Span leaf("t.leaf"); }
  }
  { trace::Span again("t.outer"); }  // depth back to 0 after unwinding

  const Json events = trace::trace_json().at("traceEvents");
  ASSERT_EQ(events.size(), 4u);
  int depth_by_name[3] = {-1, -1, -1};
  int outer_count = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    const std::string name = e.at("name").as_string();
    const int depth = static_cast<int>(e.at("args").at("depth").as_int());
    if (name == "t.outer") {
      EXPECT_EQ(depth, 0);
      ++outer_count;
    } else if (name == "t.inner") {
      depth_by_name[1] = depth;
    } else if (name == "t.leaf") {
      depth_by_name[2] = depth;
    }
  }
  EXPECT_EQ(outer_count, 2);
  EXPECT_EQ(depth_by_name[1], 1);
  EXPECT_EQ(depth_by_name[2], 2);
}

TEST_F(TraceTest, TraceEventsSortedByTimestamp) {
  for (int i = 0; i < 8; ++i) trace::Span span("t.tick");
  const Json events = trace::trace_json().at("traceEvents");
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events.at(i - 1).at("ts").as_number(),
              events.at(i).at("ts").as_number());
}

TEST_F(TraceTest, CounterAggregationIsSumAcrossThreads) {
  // Each index contributes its own value; the merged total must be the
  // arithmetic series sum no matter how the range was chunked.
  constexpr std::int64_t kN = 1000;
  for (int threads : {1, 2, 4}) {
    trace::reset();
    ThreadPool pool(threads);
    pool.parallel_for(kN, [](std::int64_t begin, std::int64_t end, int) {
      for (std::int64_t i = begin; i < end; ++i) {
        trace::counter_add("t.sum", static_cast<std::uint64_t>(i));
        trace::counter_add("t.calls", 1);
      }
    });
    const Json m = trace::metrics_json();
    EXPECT_EQ(m.at("counters").at("t.sum").as_int(), kN * (kN - 1) / 2)
        << "threads=" << threads;
    EXPECT_EQ(m.at("counters").at("t.calls").as_int(), kN)
        << "threads=" << threads;
  }
}

TEST_F(TraceTest, SpanMergeIsDeterministicAcrossThreadCounts) {
  // The aggregated span document must be identical in every wall-clock
  // independent field (names, counts) at any thread count.
  constexpr std::int64_t kN = 64;
  for (int threads : {1, 3, 8}) {
    trace::reset();
    ThreadPool pool(threads);
    pool.parallel_for(kN, [](std::int64_t begin, std::int64_t end, int) {
      for (std::int64_t i = begin; i < end; ++i) {
        trace::Span outer("t.item");
        trace::Span inner("t.item_inner");
      }
    });
    const Json m = trace::metrics_json();
    EXPECT_EQ(m.at("spans").size(), 2u) << "threads=" << threads;
    EXPECT_EQ(m.at("spans").at("t.item").at("count").as_int(), kN)
        << "threads=" << threads;
    EXPECT_EQ(m.at("spans").at("t.item_inner").at("count").as_int(), kN)
        << "threads=" << threads;
    EXPECT_EQ(trace::trace_json().at("traceEvents").size(),
              static_cast<std::size_t>(2 * kN))
        << "threads=" << threads;
  }
}

TEST_F(TraceTest, GaugeLastWriteWins) {
  trace::gauge_set("t.gauge", 1.0);
  trace::gauge_set("t.gauge", 2.5);
  trace::gauge_set("t.other", -4.0);
  EXPECT_DOUBLE_EQ(trace::metrics_json().at("gauges").at("t.gauge").as_number(),
                   2.5);

  // A later write from a different thread supersedes this thread's value:
  // the merge follows the global write sequence, not buffer order.
  std::thread([] { trace::gauge_set("t.gauge", 9.0); }).join();
  const Json m = trace::metrics_json();
  EXPECT_DOUBLE_EQ(m.at("gauges").at("t.gauge").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(m.at("gauges").at("t.other").as_number(), -4.0);
}

TEST_F(TraceTest, DerivedCacheHitRate) {
  trace::counter_add("perfmodel.cache_hit", 3);
  trace::counter_add("perfmodel.cache_miss", 1);
  const Json m = trace::metrics_json();
  EXPECT_DOUBLE_EQ(m.at("derived").at("perfmodel.cache_hit_rate").as_number(),
                   0.75);
}

TEST_F(TraceTest, MetricsJsonRoundTripsThroughParser) {
  {
    trace::Span span("t.roundtrip");
    trace::counter_add("t.count", 42);
    trace::gauge_set("t.gauge", 3.5);
  }
  const Json m = trace::metrics_json();
  const Json re = Json::parse(m.dump(2));
  EXPECT_EQ(re, m);
  EXPECT_EQ(re.at("schema").as_string(), "gemmtune-metrics-v1");
  ASSERT_TRUE(re.at("spans").contains("t.roundtrip"));
  EXPECT_EQ(re.at("counters").at("t.count").as_int(), 42);
  EXPECT_DOUBLE_EQ(re.at("gauges").at("t.gauge").as_number(), 3.5);
}

TEST_F(TraceTest, TraceJsonRoundTripsThroughParser) {
  {
    trace::Span outer("t.chrome");
    trace::Span inner("t.chrome_inner");
  }
  const Json t = trace::trace_json();
  const Json re = Json::parse(t.dump(2));
  EXPECT_EQ(re, t);
  EXPECT_EQ(re.at("displayTimeUnit").as_string(), "ms");
  ASSERT_EQ(re.at("traceEvents").size(), 2u);
  const Json& e = re.at("traceEvents").at(0);
  EXPECT_EQ(e.at("ph").as_string(), "X");
  EXPECT_EQ(e.at("cat").as_string(), "gemmtune");
  EXPECT_GT(e.at("dur").as_number(), 0.0);
}

TEST_F(TraceTest, ResetClearsEverything) {
  {
    trace::Span span("t.gone");
    trace::counter_add("t.gone", 1);
    trace::gauge_set("t.gone", 1.0);
  }
  trace::reset();
  const Json m = trace::metrics_json();
  EXPECT_EQ(m.at("spans").size(), 0u);
  EXPECT_EQ(m.at("counters").size(), 0u);
  EXPECT_EQ(m.at("gauges").size(), 0u);

  // Still recording after a reset.
  trace::counter_add("t.back", 2);
  EXPECT_EQ(trace::metrics_json().at("counters").at("t.back").as_int(), 2);
}

TEST_F(TraceTest, WriteFilesProduceParsableDocuments) {
  { trace::Span span("t.file"); }
  const std::string dir = ::testing::TempDir();
  const std::string mpath = dir + "/trace_test_metrics.json";
  const std::string tpath = dir + "/trace_test_trace.json";
  trace::write_metrics_file(mpath);
  trace::write_trace_file(tpath);

  auto slurp = [](const std::string& path) {
    std::ifstream f(path);
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
  };
  const Json m = Json::parse(slurp(mpath));
  EXPECT_EQ(m.at("schema").as_string(), "gemmtune-metrics-v1");
  const Json t = Json::parse(slurp(tpath));
  EXPECT_EQ(t.at("traceEvents").size(), 1u);
}

}  // namespace
}  // namespace gemmtune
