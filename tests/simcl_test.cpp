// SimCL runtime tests: the Table I device registry and the simulated
// context / buffer / command-queue behaviour.
#include <gtest/gtest.h>

#include "simcl/device_registry.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune::simcl {
namespace {

TEST(DeviceRegistry, HasTheSixEvaluationProcessorsPlusCypress) {
  EXPECT_EQ(evaluation_devices().size(), 6u);
  EXPECT_EQ(all_devices().size(), 7u);
  for (DeviceId id : all_devices()) {
    const DeviceSpec& d = device_spec(id);
    EXPECT_FALSE(d.code_name.empty());
    EXPECT_GT(d.clock_ghz, 0);
    EXPECT_GT(d.compute_units, 0);
    EXPECT_GT(d.peak_dp_gflops, 0);
    EXPECT_GT(d.peak_sp_gflops, d.peak_dp_gflops);
    EXPECT_GT(d.global_bw_gbs, 0);
    EXPECT_GT(d.local_mem_kb, 0);
    EXPECT_GT(d.simd_width, 0);
    EXPECT_EQ(device_by_name(d.code_name), id);
  }
  EXPECT_THROW(device_by_name("VoodooFX"), Error);
}

TEST(DeviceRegistry, TableIValues) {
  // Spot-check Table I numbers.
  const DeviceSpec& tahiti = device_spec(DeviceId::Tahiti);
  EXPECT_DOUBLE_EQ(tahiti.clock_ghz, 0.925);
  EXPECT_EQ(tahiti.compute_units, 32);
  EXPECT_EQ(tahiti.dp_ops_per_clock, 1024);
  EXPECT_DOUBLE_EQ(tahiti.peak_dp_gflops, 947);
  EXPECT_DOUBLE_EQ(tahiti.peak_sp_gflops, 3789);
  EXPECT_DOUBLE_EQ(tahiti.global_bw_gbs, 264);
  EXPECT_EQ(tahiti.local_mem_kind, LocalMemKind::Scratchpad);

  const DeviceSpec& sb = device_spec(DeviceId::SandyBridge);
  EXPECT_EQ(sb.type, DeviceType::CPU);
  EXPECT_DOUBLE_EQ(sb.peak_dp_gflops, 158.4);
  EXPECT_DOUBLE_EQ(sb.peak_sp_gflops, 316.8);
  EXPECT_EQ(sb.local_mem_kind, LocalMemKind::Global);

  const DeviceSpec& bd = device_spec(DeviceId::Bulldozer);
  EXPECT_DOUBLE_EQ(bd.peak_dp_gflops, 115.2);
  EXPECT_EQ(bd.compute_units, 8);
}

TEST(DeviceRegistry, PeaksAreConsistentWithClockAndWidth) {
  // peak ~= clock * ops_per_clock for every listed processor (Table I is
  // self-consistent; small rounding allowed).
  for (DeviceId id : all_devices()) {
    const DeviceSpec& d = device_spec(id);
    EXPECT_NEAR(d.clock_ghz * d.dp_ops_per_clock, d.peak_dp_gflops,
                0.03 * d.peak_dp_gflops)
        << d.code_name;
    EXPECT_NEAR(d.clock_ghz * d.sp_ops_per_clock, d.peak_sp_gflops,
                0.08 * d.peak_sp_gflops)
        << d.code_name;
  }
}

TEST(DeviceRegistry, TransferModelCombinesLatencyAndBandwidth) {
  for (DeviceId id : all_devices()) {
    const DeviceSpec& d = device_spec(id);
    EXPECT_GT(d.host_bw_gbs, 0) << d.code_name;
    EXPECT_GT(d.transfer_latency_us, 0) << d.code_name;
    // Zero bytes still pay the fixed setup cost.
    EXPECT_DOUBLE_EQ(d.transfer_seconds(0), d.transfer_latency_us * 1e-6);
    EXPECT_NEAR(d.transfer_seconds(1e9),
                d.transfer_latency_us * 1e-6 + 1.0 / d.host_bw_gbs, 1e-12)
        << d.code_name;
  }
  // CPUs map system memory: lower fixed latency than the PCIe GPUs.
  EXPECT_LT(device_spec(DeviceId::SandyBridge).transfer_latency_us,
            device_spec(DeviceId::Tahiti).transfer_latency_us);
  EXPECT_LT(device_spec(DeviceId::Bulldozer).transfer_latency_us,
            device_spec(DeviceId::Cypress).transfer_latency_us);
}

TEST(Context, AllocatesAndTracksBuffers) {
  Context ctx(device_spec(DeviceId::Cayman));  // 1 GB device
  auto b = ctx.create_buffer(1024);
  EXPECT_EQ(b->size(), 1024u);
  EXPECT_EQ(ctx.allocated_bytes(), 1024u);
  // Buffers are zero-initialized.
  for (std::size_t i = 0; i < 1024; ++i)
    EXPECT_EQ(b->data()[i], std::byte{0});
  EXPECT_THROW(ctx.create_buffer(0), Error);
}

TEST(Context, EnforcesGlobalMemoryCapacity) {
  Context ctx(device_spec(DeviceId::Cayman));  // 1 GB
  (void)ctx.create_buffer(800u << 20);
  EXPECT_THROW(ctx.create_buffer(300u << 20), Error);
}

TEST(Queue, TransfersMoveDataAndAdvanceTime) {
  Context ctx(device_spec(DeviceId::Tahiti));
  CommandQueue q(ctx);
  auto buf = ctx.create_buffer(64);
  const double payload[4] = {1, 2, 3, 4};
  q.enqueue_write(*buf, payload, sizeof(payload));
  EXPECT_GT(q.elapsed_seconds(), 0);
  double out[4] = {};
  q.enqueue_read(*buf, out, sizeof(out));
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(q.events().size(), 2u);
  EXPECT_EQ(q.events()[0].name, "write");
  EXPECT_EQ(q.events()[0].bytes, sizeof(payload));
  EXPECT_THROW(q.enqueue_write(*buf, payload, 128), Error);
}

TEST(Queue, KernelEventsAccumulate) {
  Context ctx(device_spec(DeviceId::Fermi));
  CommandQueue q(ctx);
  q.enqueue_kernel("dgemm", 0.25, 100.0);
  q.enqueue_kernel("dgemm", 0.25, 100.0);
  EXPECT_DOUBLE_EQ(q.finish(), 0.5);
  EXPECT_EQ(q.events().size(), 2u);
  EXPECT_THROW(q.enqueue_kernel("bad", -1.0, 0.0), Error);
  q.reset();
  EXPECT_DOUBLE_EQ(q.elapsed_seconds(), 0.0);
  EXPECT_TRUE(q.events().empty());
}

TEST(Queue, CopyMovesWithinDevice) {
  Context ctx(device_spec(DeviceId::Tahiti));
  CommandQueue q(ctx);
  auto a = ctx.create_buffer(16);
  auto b = ctx.create_buffer(16);
  a->as<std::uint32_t>()[0] = 0xDEADBEEF;
  q.enqueue_copy(*a, *b, 16);
  EXPECT_EQ(b->as<std::uint32_t>()[0], 0xDEADBEEF);
}

}  // namespace
}  // namespace gemmtune::simcl
