// Serving subsystem tests: workload generator determinism, trace round
// trip, scheduler batching/backpressure/deadline semantics, thread-count
// invariance of the full report, warm-cache persistence, and the
// batched-vs-unbatched throughput guarantee.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

namespace gemmtune {
namespace {

using codegen::Precision;
using serve::BatchScheduler;
using serve::GemmRequest;
using serve::GemmServer;
using serve::RequestStatus;
using serve::ServeOptions;
using serve::ServeOutcome;
using serve::ShapeClass;
using serve::WorkloadSpec;
using simcl::DeviceId;

GemmRequest small_request(std::int64_t id, double arrival = 0,
                          double deadline = 0, int priority = 0) {
  GemmRequest r;
  r.id = id;
  r.type = GemmType::NN;
  r.prec = Precision::SP;
  r.M = r.N = r.K = 64;
  r.priority = priority;
  r.arrival_seconds = arrival;
  r.deadline_seconds = deadline;
  return r;
}

TEST(ShapeClassTest, QuantizesToTileMultiples) {
  EXPECT_EQ(ShapeClass::quantize(1), 16);
  EXPECT_EQ(ShapeClass::quantize(16), 16);
  EXPECT_EQ(ShapeClass::quantize(17), 32);
  EXPECT_EQ(ShapeClass::quantize(50), 64);
  EXPECT_EQ(ShapeClass::quantize(64), 64);
  // 50^3 and 64^3 SGEMM NN requests share one batch class.
  GemmRequest a = small_request(0);
  GemmRequest b = small_request(1);
  a.M = a.N = a.K = 50;
  EXPECT_EQ(ShapeClass::of(a), ShapeClass::of(b));
}

TEST(WorkloadTest, GeneratorIsDeterministic) {
  WorkloadSpec spec;
  spec.requests = 200;
  spec.seed = 7;
  const auto a = serve::generate_workload(spec);
  const auto b = serve::generate_workload(spec);
  ASSERT_EQ(a.size(), 200u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].M, b[i].M);
    EXPECT_EQ(a[i].prec, b[i].prec);
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].deadline_seconds, b[i].deadline_seconds);
  }
  WorkloadSpec other = spec;
  other.seed = 8;
  const auto c = serve::generate_workload(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_diff |= a[i].M != c[i].M || a[i].arrival_seconds !=
                                        c[i].arrival_seconds;
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadTest, ArrivalsSortedAndDeadlinesAfterArrival) {
  WorkloadSpec spec;
  spec.requests = 300;
  const auto reqs = serve::generate_workload(spec);
  for (std::size_t i = 1; i < reqs.size(); ++i)
    EXPECT_LE(reqs[i - 1].arrival_seconds, reqs[i].arrival_seconds);
  for (const auto& r : reqs) {
    EXPECT_GT(r.M, 0);
    EXPECT_GT(r.N, 0);
    EXPECT_GT(r.K, 0);
    if (r.deadline_seconds > 0) {
      EXPECT_GT(r.deadline_seconds, r.arrival_seconds);
    }
  }
}

TEST(WorkloadTest, TraceFileRoundTrip) {
  WorkloadSpec spec;
  spec.requests = 50;
  spec.seed = 11;
  spec.devices = {DeviceId::Tahiti, DeviceId::Kepler};
  spec.max_batch = 8;
  spec.queue_capacity = 64;
  const auto reqs = serve::generate_workload(spec);
  const std::string path = ::testing::TempDir() + "/serve_trace.json";
  serve::save_workload_file(path, spec, reqs);
  const serve::Workload back = serve::load_workload_file(path);
  EXPECT_EQ(back.spec.seed, spec.seed);
  EXPECT_EQ(back.spec.requests, spec.requests);
  EXPECT_EQ(back.spec.max_batch, spec.max_batch);
  EXPECT_EQ(back.spec.queue_capacity, spec.queue_capacity);
  ASSERT_EQ(back.spec.devices.size(), 2u);
  EXPECT_EQ(back.spec.devices[0], DeviceId::Tahiti);
  ASSERT_EQ(back.requests.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(back.requests[i].id, reqs[i].id);
    EXPECT_EQ(back.requests[i].K, reqs[i].K);
    EXPECT_EQ(back.requests[i].arrival_seconds, reqs[i].arrival_seconds);
  }
  std::remove(path.c_str());
}

TEST(WorkloadTest, LoadCorruptTraceNamesThePath) {
  const std::string path = ::testing::TempDir() + "/serve_corrupt.json";
  {
    std::ofstream f(path);
    f << "{ nope";
  }
  try {
    serve::load_workload_file(path);
    FAIL() << "expected Error for corrupt trace";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(WorkloadTest, SpecParserRoundTrip) {
  const WorkloadSpec spec = serve::parse_spec(
      "requests=123,seed=9,rate=750,max_batch=4,queue=32,"
      "devices=Tahiti+SandyBridge");
  EXPECT_EQ(spec.requests, 123);
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.rate_rps, 750.0);
  EXPECT_EQ(spec.max_batch, 4);
  EXPECT_EQ(spec.queue_capacity, 32);
  ASSERT_EQ(spec.devices.size(), 2u);
  EXPECT_EQ(spec.devices[1], DeviceId::SandyBridge);
  EXPECT_THROW(serve::parse_spec("bogus_key=1"), Error);
  EXPECT_THROW(serve::parse_spec("requests=-5"), Error);
}

TEST(WorkloadTest, SpecParserNamesUnknownKeys) {
  // A typo must fail loudly, naming the offending key and the accepted
  // ones — never silently run with the default it shadowed.
  try {
    serve::parse_spec("requets=10000");
    FAIL() << "expected an error for the unknown key";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown key 'requets'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("requests"), std::string::npos)
        << "error should list the accepted keys: " << msg;
  }
}

TEST(SchedulerTest, BackpressureAtCapacity) {
  BatchScheduler sched(16, 4);
  int admitted = 0;
  for (int i = 0; i < 30; ++i)
    admitted += sched.admit(small_request(i)) ? 1 : 0;
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(sched.depth(), 4u);
  EXPECT_EQ(sched.peak_depth(), 4u);
}

TEST(SchedulerTest, PriorityThenArrivalOrdersGroups) {
  BatchScheduler sched(16, 64);
  GemmRequest lo = small_request(0, 0.0, 0, /*priority=*/0);
  GemmRequest hi = small_request(1, 0.5, 0, /*priority=*/2);
  hi.prec = Precision::DP;  // different group
  ASSERT_TRUE(sched.admit(lo));
  ASSERT_TRUE(sched.admit(hi));
  std::vector<GemmRequest> expired;
  const auto views = sched.group_views(1.0, expired);
  ASSERT_EQ(views.size(), 2u);
  EXPECT_EQ(views[0].head.id, 1) << "high priority first";
  EXPECT_EQ(views[1].head.id, 0);
  EXPECT_TRUE(expired.empty());
}

TEST(SchedulerTest, PopSkimsExpiredWithoutBatchingThem) {
  BatchScheduler sched(16, 64);
  ASSERT_TRUE(sched.admit(small_request(0, 0.0, /*deadline=*/0.5)));
  ASSERT_TRUE(sched.admit(small_request(1, 0.0, /*deadline=*/5.0)));
  ASSERT_TRUE(sched.admit(small_request(2, 0.0, /*deadline=*/0.5)));
  std::vector<GemmRequest> expired;
  const auto batch =
      sched.pop_from(ShapeClass::of(small_request(0)), /*clock=*/1.0, 16,
                     expired);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batch->requests[0].id, 1);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0);
  EXPECT_EQ(expired[1].id, 2);
  EXPECT_TRUE(sched.empty());
}

/// Fixture holding one warmed single-device server shared by the
/// simulation tests (warmup profiles two kernels, so share the cost).
class ServeSim : public ::testing::Test {
 protected:
  static GemmServer& tahiti_server() {
    static GemmServer* server = [] {
      auto* s = new GemmServer({DeviceId::Tahiti}, ServeOptions{});
      s->warmup();
      return s;
    }();
    return *server;
  }
};

TEST_F(ServeSim, BatchingCoalescesSameClassRequests) {
  std::vector<GemmRequest> reqs;
  for (int i = 0; i < 8; ++i) reqs.push_back(small_request(i));
  const ServeOutcome batched = tahiti_server().run(reqs, 8, 64);
  // All arrive at t=0 on one idle device: one dispatch serves all eight.
  ASSERT_EQ(batched.batches.size(), 1u);
  EXPECT_EQ(batched.batches[0].size, 8);
  for (const auto& resp : batched.responses) {
    EXPECT_EQ(resp.status, RequestStatus::Completed);
    EXPECT_EQ(resp.batch_size, 8);
  }
  const ServeOutcome unbatched = tahiti_server().run(reqs, 1, 64);
  EXPECT_EQ(unbatched.batches.size(), 8u);
  // One dispatch overhead instead of eight: batching must finish sooner.
  EXPECT_LT(batched.makespan_seconds, unbatched.makespan_seconds);
}

TEST_F(ServeSim, DeadlineExpiryRejectsQueuedRequests) {
  // Six same-class requests at t=0, unbatched on one device. The deadline
  // (20us) is below the dispatch overhead alone (25us), so only the first
  // request — dispatched immediately at t=0 — beats it; every later
  // dispatch happens after the first batch finishes, past the deadline.
  std::vector<GemmRequest> reqs;
  for (int i = 0; i < 6; ++i)
    reqs.push_back(small_request(i, 0.0, /*deadline=*/20e-6));
  const ServeOutcome out = tahiti_server().run(reqs, 1, 64);
  int completed = 0, deadline = 0;
  for (const auto& resp : out.responses) {
    completed += resp.status == RequestStatus::Completed ? 1 : 0;
    deadline += resp.status == RequestStatus::RejectedDeadline ? 1 : 0;
  }
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(deadline, 5);
}

TEST_F(ServeSim, QueueFullRejectsOnArrival) {
  std::vector<GemmRequest> reqs;
  for (int i = 0; i < 30; ++i) reqs.push_back(small_request(i));
  const ServeOutcome out = tahiti_server().run(reqs, 1, /*queue=*/4);
  int completed = 0, queue_full = 0;
  for (const auto& resp : out.responses) {
    completed += resp.status == RequestStatus::Completed ? 1 : 0;
    queue_full += resp.status == RequestStatus::RejectedQueueFull ? 1 : 0;
  }
  // All 30 arrive at t=0 and are admitted before any dispatch runs: four
  // fill the queue, the other 26 bounce off it.
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(queue_full, 26);
  EXPECT_EQ(out.peak_queue_depth, 4u);
}

TEST(DistRoutingTest, OversizedRequestRunsOnTheWholeFleet) {
  GemmServer server({DeviceId::Tahiti, DeviceId::SandyBridge},
                    ServeOptions{});
  server.warmup();
  std::vector<GemmRequest> reqs;
  reqs.push_back(small_request(0, 0.0, /*deadline=*/1e9));
  GemmRequest big;
  big.id = 1;
  big.type = GemmType::NN;
  big.prec = Precision::SP;
  big.M = big.N = big.K = 4096;  // at the default dist_threshold_n
  big.arrival_seconds = 1e-3;
  big.deadline_seconds = 1e9;
  reqs.push_back(big);
  const ServeOutcome out = server.run(reqs, 16, 64);
  // The small request batches normally on one device.
  EXPECT_EQ(out.responses[0].status, RequestStatus::Completed);
  EXPECT_GE(out.responses[0].device_index, 0);
  // The oversized one completes on the whole fleet (device -1).
  EXPECT_EQ(out.responses[1].status, RequestStatus::Completed);
  EXPECT_EQ(out.responses[1].device_index, -1);
  int dist_batches = 0;
  for (const auto& b : out.batches)
    if (b.distributed) {
      ++dist_batches;
      EXPECT_EQ(b.device_index, -1);
      EXPECT_EQ(b.size, 1);
    }
  EXPECT_EQ(dist_batches, 1);
  // Every device was busy for the distributed window.
  for (const auto& ds : out.device_stats)
    EXPECT_GT(ds.busy_seconds, 0.0);
}

TEST(DistRoutingTest, ThresholdZeroDisablesTheDistributedPath) {
  ServeOptions sopt;
  sopt.dist_threshold_n = 0;
  GemmServer server({DeviceId::Tahiti}, sopt);
  server.warmup();
  GemmRequest big;
  big.id = 0;
  big.type = GemmType::NN;
  big.prec = Precision::SP;
  big.M = big.N = big.K = 4096;
  big.arrival_seconds = 0;
  big.deadline_seconds = 1e9;
  const ServeOutcome out = server.run({big}, 4, 16);
  EXPECT_EQ(out.responses[0].status, RequestStatus::Completed);
  EXPECT_EQ(out.responses[0].device_index, 0);
  for (const auto& b : out.batches) EXPECT_FALSE(b.distributed);
}

TEST(ServeReportTest, IdenticalAcrossThreadCountsAndRuns) {
  WorkloadSpec spec;
  spec.requests = 150;
  spec.seed = 3;
  spec.devices = {DeviceId::Tahiti, DeviceId::Kepler, DeviceId::SandyBridge};
  const auto reqs = serve::generate_workload(spec);
  ServeOptions opt1;
  opt1.threads = 1;
  ServeOptions opt4;
  opt4.threads = 4;
  std::vector<std::string> dumps;
  for (const ServeOptions& opt : {opt1, opt4, opt1}) {
    GemmServer server(spec.resolved_devices(), opt);
    server.warmup();
    const ServeOutcome batched = server.run(reqs, spec.max_batch,
                                            spec.queue_capacity);
    const ServeOutcome unbatched = server.run(reqs, 1, spec.queue_capacity);
    dumps.push_back(
        serve::build_report(spec, reqs, batched, unbatched, opt).dump(2));
  }
  EXPECT_EQ(dumps[0], dumps[1]) << "thread count changed the report";
  EXPECT_EQ(dumps[0], dumps[2]) << "re-run changed the report";
}

TEST(ServeReportTest, BatchedThroughputAtLeastBaseline) {
  // A bursty small-GEMM workload (the regime batching exists for): same
  // class, all queued at once.
  WorkloadSpec spec;
  spec.requests = 64;
  spec.devices = {DeviceId::Tahiti};
  std::vector<GemmRequest> reqs;
  for (int i = 0; i < spec.requests; ++i) reqs.push_back(small_request(i));
  GemmServer server(spec.resolved_devices(), ServeOptions{});
  server.warmup();
  const ServeOutcome batched = server.run(reqs, 16, 512);
  const ServeOutcome unbatched = server.run(reqs, 1, 512);
  const Json report =
      serve::build_report(spec, reqs, batched, unbatched, ServeOptions{});
  const Json& s = report.at("scalars");
  EXPECT_EQ(s.at("requests.completed").as_int(), 64);
  EXPECT_EQ(s.at("baseline.requests.completed").as_int(), 64);
  EXPECT_GE(s.at("speedup.throughput").as_number(), 1.0);
  EXPECT_GT(s.at("batches.avg_size").as_number(), 1.0);
  // Percentiles must be ordered.
  EXPECT_LE(s.at("latency_ms.p50").as_number(),
            s.at("latency_ms.p95").as_number());
  EXPECT_LE(s.at("latency_ms.p95").as_number(),
            s.at("latency_ms.p99").as_number());
  EXPECT_LE(s.at("latency_ms.p99").as_number(),
            s.at("latency_ms.max").as_number());
}

TEST(WarmCacheTest, RoundTripThenCorruptionRecovery) {
  const std::string path = ::testing::TempDir() + "/serve_cache.json";
  std::remove(path.c_str());
  ServeOptions opt;
  opt.cache_path = path;
  {
    GemmServer server({DeviceId::Cayman}, opt);
    const auto info = server.warmup();
    EXPECT_EQ(info.loaded, 0u);
    EXPECT_EQ(info.profiled, 2u);  // DGEMM + SGEMM
    EXPECT_FALSE(info.cache_ignored);
  }
  {
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good()) << "atomic save must not leave temp files";
    GemmServer server({DeviceId::Cayman}, opt);
    const auto info = server.warmup();
    EXPECT_EQ(info.loaded, 2u);
    EXPECT_EQ(info.profiled, 0u);
  }
  {
    std::ofstream f(path, std::ios::trunc);
    f << "{ corrupt";
  }
  {
    GemmServer server({DeviceId::Cayman}, opt);
    const auto info = server.warmup();
    EXPECT_TRUE(info.cache_ignored);
    EXPECT_NE(info.cache_error.find(path), std::string::npos);
    EXPECT_EQ(info.profiled, 2u);  // re-profiled from scratch
  }
  {
    // The corrupt file was rewritten with good contents.
    GemmServer server({DeviceId::Cayman}, opt);
    const auto info = server.warmup();
    EXPECT_EQ(info.loaded, 2u);
    EXPECT_FALSE(info.cache_ignored);
  }
  std::remove(path.c_str());
}

TEST(ServerGuardsTest, RunBeforeWarmupThrows) {
  GemmServer server({DeviceId::Tahiti}, ServeOptions{});
  std::vector<GemmRequest> reqs{small_request(0)};
  EXPECT_THROW(server.run(reqs, 1, 4), Error);
}

TEST(ServerGuardsTest, DuplicateRequestIdsThrow) {
  GemmServer server({DeviceId::Tahiti}, ServeOptions{});
  server.warmup();
  std::vector<GemmRequest> reqs{small_request(5), small_request(5)};
  EXPECT_THROW(server.run(reqs, 1, 4), Error);
}

}  // namespace
}  // namespace gemmtune
