// Distributed GEMM scaling: modeled fleet makespan vs the best single
// device for growing heterogeneous fleets, and the fleet-vs-single
// throughput curve over problem sizes. All numbers come from the same
// analytic transfer + compute model the executor uses, so the bench is
// deterministic and fast enough for CI.
//
// Usage: bench_dist_scaling [size]
//   size  cubic problem extent for the fleet table (default 8192)
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dist/executor.hpp"
#include "simcl/device_registry.hpp"

namespace {

using namespace gemmtune;
using namespace gemmtune::bench;
using codegen::Precision;
using simcl::DeviceId;

struct Fleet {
  std::string name;
  std::vector<DeviceId> devices;
};

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("dist_scaling", &argc, argv);
  const index_t size = argc > 1 ? std::atoll(argv[1]) : 8192;

  const std::vector<Fleet> fleets = {
      {"Cayman", {DeviceId::Cayman}},
      {"Cypress+Cayman", {DeviceId::Cypress, DeviceId::Cayman}},
      {"Cypress+Cayman+SandyBridge",
       {DeviceId::Cypress, DeviceId::Cayman, DeviceId::SandyBridge}},
      {"Tahiti+Kepler", {DeviceId::Tahiti, DeviceId::Kepler}},
      {"all GPUs",
       {DeviceId::Tahiti, DeviceId::Cayman, DeviceId::Cypress,
        DeviceId::Kepler, DeviceId::Fermi}},
  };

  section(strf("Fleet scaling: SGEMM NN %lldx%lldx%lld",
               static_cast<long long>(size), static_cast<long long>(size),
               static_cast<long long>(size)));
  TextTable t;
  t.set_header({"Fleet", "Tiles", "Makespan s", "GFlop/s", "Best single s",
                "Speedup"});
  for (const Fleet& f : fleets) {
    dist::DistExecutor ex(f.devices);
    const dist::DistOutcome o =
        ex.run(GemmType::NN, Precision::SP, size, size, size);
    t.add_row({f.name, std::to_string(o.grid.total()),
               strf("%.4f", o.makespan_seconds), strf("%.1f", o.gflops),
               strf("%.4f", o.best_single_seconds),
               strf("%.2fx", o.speedup)});
    scalar("speedup." + f.name, o.speedup);
    scalar("gflops." + f.name, o.gflops);
  }
  t.print(std::cout);
  note("speedup = best single device solo time / fleet makespan");

  // --- throughput over problem size -----------------------------------------
  // The fleet only wins once tiles are large enough to amortize the host
  // transfers; small problems stay on one device (what the serving layer's
  // dist_threshold_n encodes).
  section("Fleet vs best single device over problem size (SGEMM)");
  const std::vector<DeviceId> fleet_devs = {
      DeviceId::Cypress, DeviceId::Cayman, DeviceId::SandyBridge};
  Series fleet_series{"Cypress+Cayman+SandyBridge", {}};
  Series single_series{"best single", {}};
  for (const index_t n : {2048, 4096, 8192, 16384}) {
    dist::DistExecutor ex(fleet_devs);
    const dist::DistOutcome o =
        ex.run(GemmType::NN, Precision::SP, n, n, n);
    const double flops = 2.0 * static_cast<double>(n) *
                         static_cast<double>(n) * static_cast<double>(n);
    fleet_series.points.emplace_back(n, o.gflops);
    single_series.points.emplace_back(
        n, finite_or(flops / o.best_single_seconds * 1e-9, 0.0));
  }
  print_series({fleet_series, single_series});
  return 0;
}
