// Extension experiment (paper Section V future work): "One possible
// solution for such [small] sizes is to use another GEMM kernel without
// the matrix copying ... and combine it with the current implementation."
//
// Compares, on the Tahiti GPU, the copy-based implementation, the direct
// (copy-free) kernel, and the combined engine that picks per size.
#include "bench_util.hpp"
#include "blas/gemm.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("smallsize_direct", &argc, argv);
  bench::section(
      "Extension: copy-free small-size kernel and the combined engine "
      "(Tahiti DGEMM)");
  blas::GemmEngine combined(simcl::DeviceId::Tahiti);
  blas::GemmEngine copy_only(simcl::DeviceId::Tahiti);
  copy_only.set_direct_path(false);
  const auto p = combined.kernel_for(Precision::DP).params;
  const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);

  bench::Series s_copy{"copy + tuned kernel", {}};
  bench::Series s_combined{"combined (auto)", {}};
  std::int64_t crossover = -1;
  for (std::int64_t n = lcm; n <= 20 * lcm && n <= 6144; n += lcm) {
    const auto c = copy_only.estimate(GemmType::NN, Precision::DP, n, n, n);
    const auto a = combined.estimate(GemmType::NN, Precision::DP, n, n, n);
    s_copy.points.emplace_back(n, c.gflops);
    s_combined.points.emplace_back(n, a.gflops);
    if (!a.used_direct && crossover < 0 && n > lcm) crossover = n;
  }
  bench::print_series({s_copy, s_combined});
  if (crossover > 0) {
    bench::note(strf(
        "the combined engine switches from the direct kernel to the "
        "copy-based path at N = %lld; below that the copy overhead "
        "dominates (ratio O(N^2)/O(N^3)).",
        static_cast<long long>(crossover)));
  } else {
    bench::note("the direct kernel won at every measured size.");
  }
  const double small_gain =
      s_combined.points.front().second / s_copy.points.front().second;
  bench::note(strf("small-size speedup at N=%lld: %.2fx",
                   static_cast<long long>(lcm), small_gain));
  return 0;
}
