// Fig. 8: relative performance of the three GEMM algorithms (BA, PL, DB)
// with respect to the per-processor maximum (Table II).
//
// For each (processor, precision, algorithm) a constrained search selects
// the best kernel using only that algorithm; its peak performance is
// normalized by the overall best. DGEMM+PL on Bulldozer reports "fail",
// matching the paper ("PL algorithm always fail to execute").
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "tuner/search.hpp"

using namespace gemmtune;
using codegen::Algorithm;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("fig8_algorithms", &argc, argv);
  bench::section("Fig. 8: relative performance of BA / PL / DB");
  TextTable t;
  t.set_header({"Processor", "BA (DGEMM)", "PL (DGEMM)", "DB (DGEMM)",
                "BA (SGEMM)", "PL (SGEMM)", "DB (SGEMM)"});
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    std::vector<std::string> row = {simcl::to_string(id)};
    for (Precision prec : {Precision::DP, Precision::SP}) {
      tuner::SearchEngine engine(id);
      double best[3] = {0, 0, 0};
      double overall = 0;
      int i = 0;
      for (Algorithm algo : {Algorithm::BA, Algorithm::PL, Algorithm::DB}) {
        tuner::SearchOptions opt;
        opt.enumeration.max_candidates = 4000;
        opt.restrict_algo = algo;
        try {
          best[i] = engine.tune(prec, opt).best_gflops;
        } catch (const Error&) {
          best[i] = 0;  // every kernel of this algorithm failed
        }
        overall = std::max(overall, best[i]);
        ++i;
      }
      for (int j = 0; j < 3; ++j)
        row.push_back(best[j] == 0 ? "fail"
                                   : strf("%.2f", best[j] / overall));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  bench::note(
      "paper shape: BA best on Tahiti; PL wins Fermi DGEMM; CPUs show small "
      "variation; Bulldozer DGEMM PL fails.");
  return 0;
}
