// Section IV-C: applying the auto-tuning system to the Cypress GPU
// (Radeon HD 5870) and comparing with Nakasato's IL kernel (498 GFlop/s,
// 92% efficiency) and Du et al.'s OpenCL routine (308 GFlop/s, 57%).
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "tuner/results_db.hpp"
#include "vendor/baselines.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("cypress_comparison", &argc, argv);
  bench::section("Section IV-C: DGEMM on the Cypress GPU (HD 5870)");
  const auto entry = codegen::table2_entry(simcl::DeviceId::Cypress,
                                           Precision::DP);
  const auto prof = tuner::profile_kernel(simcl::DeviceId::Cypress,
                                          entry.params);
  const auto& nak = vendor::baseline_by_name(simcl::DeviceId::Cypress,
                                             Precision::DP, "Nakasato");
  const auto& du = vendor::baseline_by_name(simcl::DeviceId::Cypress,
                                            Precision::DP, "Du et al.");
  TextTable t;
  t.set_header({"Implementation", "GFlop/s", "efficiency %"});
  const double peak =
      simcl::device_spec(simcl::DeviceId::Cypress).peak_dp_gflops;
  t.add_row({"This study (auto-tuned OpenCL)", fmt_gflops(prof.best_gflops),
             strf("%.0f", 100 * prof.best_gflops / peak)});
  t.add_row({nak.name, fmt_gflops(nak.sat[0]),
             strf("%.0f", 100 * nak.sat[0] / peak)});
  t.add_row({du.name, fmt_gflops(du.sat[0]),
             strf("%.0f", 100 * du.sat[0] / peak)});
  t.print(std::cout);
  bench::compare("this study (paper 495)", 495, prof.best_gflops);
  bench::note(
      "shape: auto-tuned OpenCL matches the hand-written IL kernel and "
      "clearly exceeds Du et al.'s OpenCL routine.");
  return 0;
}
