// Fig. 11: DGEMM implementations on the Sandy Bridge CPU: this study with
// the Intel SDK 2013 beta and SDK 2012 vs Intel MKL vs ATLAS.
#include "bench_util.hpp"
#include "blas/gemm.hpp"
#include "vendor/baselines.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("fig11_sandybridge", &argc, argv);
  bench::section("Fig. 11: Sandy Bridge DGEMM implementations");
  blas::GemmEngine engine(simcl::DeviceId::SandyBridge);
  const auto& mkl = vendor::baseline_by_name(simcl::DeviceId::SandyBridge,
                                             Precision::DP, "Intel MKL");
  const auto& atlas = vendor::baseline_by_name(simcl::DeviceId::SandyBridge,
                                               Precision::DP, "ATLAS");
  const auto& sdk2012 = vendor::baseline_by_name(
      simcl::DeviceId::SandyBridge, Precision::DP,
      "This study (Intel SDK 2012)");
  bench::Series s_mkl{mkl.name, {}};
  bench::Series s_atlas{atlas.name, {}};
  bench::Series s_2013{"This study (Intel SDK 2013 beta)", {}};
  bench::Series s_2012{sdk2012.name, {}};
  for (index_t n = 256; n <= 5120; n += 512) {
    s_mkl.points.emplace_back(
        n, vendor::baseline_gflops(mkl, GemmType::NN, n));
    s_atlas.points.emplace_back(
        n, vendor::baseline_gflops(atlas, GemmType::NN, n));
    s_2013.points.emplace_back(
        n, engine.estimate_gflops(GemmType::NN, Precision::DP, n));
    s_2012.points.emplace_back(
        n, vendor::baseline_gflops(sdk2012, GemmType::NN, n));
  }
  bench::print_series({s_mkl, s_atlas, s_2013, s_2012});
  const double ours = s_2013.points.back().second;
  bench::note(strf(
      "shape checks: MKL > ATLAS > ours(SDK 2013b) > ours(SDK 2012); the "
      "newer SDK is ~1.2x the older (measured %.2fx); MKL leads ours by "
      "%.1fx (paper: >= 2x).",
      ours / s_2012.points.back().second,
      s_mkl.points.back().second / ours));
  return 0;
}
