// Section IV-A layout ablation on the Tahiti GPU: the fastest DGEMM kernel
// restricted to row-major operand layouts vs the block-major best. The
// paper reports 837 vs 863 GFlop/s, with the row-major kernel collapsing
// at sizes that are multiples of 2048 (memory bank conflicts).
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "perfmodel/model.hpp"
#include "tuner/search.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("ablation_layout", &argc, argv);
  bench::section("Ablation: block-major vs row-major layouts (Tahiti DGEMM)");
  tuner::SearchEngine engine(simcl::DeviceId::Tahiti);

  // Best block-major kernel = the Table II anchor.
  const auto block = codegen::table2_entry(simcl::DeviceId::Tahiti,
                                           Precision::DP);
  auto rm = block.params;
  rm.layout_a = BlockLayout::RowMajor;
  rm.layout_b = BlockLayout::RowMajor;

  const auto curve_block = engine.sweep(block.params, 6144);
  const auto curve_rm = engine.sweep(rm, 6144);
  bench::Series s_block{"block-major (CBL,CBL)", {}};
  bench::Series s_rm{"row-major", {}};
  for (const auto& [n, g] : curve_block) {
    if (n % 768 == 0 || n % 2048 == 0) s_block.points.emplace_back(n, g);
  }
  for (const auto& [n, g] : curve_rm) {
    if (n % 768 == 0 || n % 2048 == 0) s_rm.points.emplace_back(n, g);
  }
  // Make sure the conflict sizes appear even off the LCM grid.
  perfmodel::PerfModel model(simcl::DeviceId::Tahiti);
  for (std::int64_t n : {std::int64_t{2112}, std::int64_t{4032},
                         std::int64_t{6144}}) {
    if (n % block.params.Mwg == 0) {
      s_rm.points.emplace_back(n, model.kernel_gflops(rm, n));
      s_block.points.emplace_back(n,
                                  model.kernel_gflops(block.params, n));
    }
  }
  bench::print_series({s_block, s_rm});

  double rm_best = 0;
  for (const auto& [n, g] : curve_rm) rm_best = std::max(rm_best, g);
  bench::compare("row-major best (paper 837)", 837, rm_best);
  const double at6144 = model.kernel_gflops(rm, 6144);
  const double near = model.kernel_gflops(rm, 6144 - 192);
  bench::note(strf(
      "conflict collapse at N=6144 (multiple of 2048): %.0f GFlop/s vs "
      "%.0f at N=5952 (ratio %.2f; paper: 'drastically deteriorated').",
      at6144, near, at6144 / near));
  return 0;
}
