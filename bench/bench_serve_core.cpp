// Concurrent serving core: overload stress of the sharded async pipeline
// against the serial discrete-event reference.
//
// Two legs:
//  1. Virtual-core differential (deterministic, baseline-gated): the
//     async core in virtual mode must replicate the serial loop exactly
//     on an overloaded workload — identical outcomes, bit-identical GEMM
//     checksums — and its shed/expiry accounting plus the p50/p99/p999
//     latency percentiles (overall and for the hottest shape classes) are
//     recorded as exact scalars.
//  2. Realtime overload stress (gated as a pass/fail bit): the same
//     4-device fleet served by four per-device executor threads versus
//     the serial-execution reference (one thread playing every device
//     back to back), both in scaled wall-clock time. The acceptance
//     criterion — the concurrent core completes >= 1.5x the requests of
//     the serial core under overload — is the gated scalar; raw counts,
//     ratios and wall seconds go to trace gauges (the uncompared metrics
//     section), as wall-clock numbers always do in this suite.
//
// Usage: bench_serve_core [requests]
//   requests  workload size for both legs (default 240)
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/core/async_server.hpp"
#include "serve/core/differential.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "simcl/device_registry.hpp"

namespace {

using namespace gemmtune;
using namespace gemmtune::bench;
using serve::AsyncOptions;
using serve::AsyncOutcome;
using serve::AsyncServer;
using serve::GemmRequest;
using serve::GemmServer;
using serve::RequestStatus;
using serve::ServeOptions;
using serve::WorkloadSpec;
using simcl::DeviceId;

std::int64_t completed_of(const AsyncOutcome& out) {
  std::int64_t n = 0;
  for (const auto& resp : out.base.responses)
    n += resp.status == RequestStatus::Completed ? 1 : 0;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("serve_core", &argc, argv);
  const int requests = argc > 1 ? std::atoi(argv[1]) : 240;

  const std::vector<DeviceId> fleet = {DeviceId::Tahiti, DeviceId::Kepler,
                                       DeviceId::Cayman,
                                       DeviceId::SandyBridge};
  GemmServer server(fleet, ServeOptions{});
  server.warmup();

  // --- Leg 1: virtual-core differential under overload ---------------------
  // A rate well past the fleet's service capacity with a tight queue, so
  // both shedding paths (queue-full backpressure and deadline expiry) are
  // live while the differential holds.
  WorkloadSpec spec;
  spec.requests = requests;
  spec.seed = 42;
  spec.rate_rps = 150000;
  spec.devices = fleet;
  spec.max_batch = 8;
  spec.queue_capacity = 24;
  const auto reqs = serve::generate_workload(spec);

  section(strf("Virtual-core differential: %d requests @ %.0f rps, queue %d",
               requests, spec.rate_rps, spec.queue_capacity));
  AsyncOptions vopt;
  vopt.shards = 4;
  vopt.execute_max_n = 64;
  AsyncOutcome virt;
  const serve::DiffReport diff =
      serve::run_differential(server, reqs, spec.max_batch,
                              spec.queue_capacity, vopt, nullptr, &virt);
  TextTable t;
  t.set_header({"Core", "Completed", "Shed full", "Expired", "p50 ms",
                "p99 ms", "p99.9 ms"});
  t.add_row({"async (virtual)", std::to_string(completed_of(virt)),
             std::to_string(virt.shed_queue_full),
             std::to_string(virt.expired),
             strf("%.3f", virt.latency.quantile(0.50) * 1e3),
             strf("%.3f", virt.latency.quantile(0.99) * 1e3),
             strf("%.3f", virt.latency.quantile(0.999) * 1e3)});
  t.print(std::cout);
  note(diff.ok ? "differential: async == serial (" +
                     std::to_string(diff.compared_checksums) +
                     " GEMM checksums compared)"
               : "differential FAILED: " + diff.detail);
  scalar("serve_core.match", diff.ok ? 1 : 0);
  scalar("serve_core.checksums_compared",
         static_cast<double>(diff.compared_checksums));
  scalar("serve_core.completed", static_cast<double>(completed_of(virt)));
  scalar("serve_core.shed_queue_full",
         static_cast<double>(virt.shed_queue_full));
  scalar("serve_core.expired", static_cast<double>(virt.expired));
  scalar("serve_core.p50_ms", virt.latency.quantile(0.50) * 1e3);
  scalar("serve_core.p99_ms", virt.latency.quantile(0.99) * 1e3);
  scalar("serve_core.p999_ms", virt.latency.quantile(0.999) * 1e3);
  // Tail percentiles of the hottest shape classes (by generated count):
  // the per-class accounting the report schema carries, pinned exactly.
  std::vector<std::pair<std::int64_t, serve::ShapeClass>> hot;
  for (const auto& [shape, acct] : virt.classes)
    hot.emplace_back(acct.generated, shape);
  std::sort(hot.rbegin(), hot.rend());
  for (std::size_t i = 0; i < hot.size() && i < 3; ++i) {
    const auto& acct = virt.classes.at(hot[i].second);
    const std::string name = to_string(hot[i].second);
    scalar("serve_core.class." + name + ".p99_ms",
           acct.latency.quantile(0.99) * 1e3);
    scalar("serve_core.class." + name + ".completed",
           static_cast<double>(acct.completed));
  }

  // --- Leg 2: realtime overload stress --------------------------------------
  // Both cores pace the same arrivals in scaled wall-clock; the serial
  // reference plays all four devices on one thread, so under overload it
  // expires (or back-pressures) what the four per-device executors would
  // have served. The rate sits past one device's capacity but within the
  // fleet's, which is exactly where executor concurrency pays.
  section("Realtime overload: 4 executor threads vs serial execution");
  WorkloadSpec rt_spec = spec;
  rt_spec.rate_rps = 8000;
  rt_spec.queue_capacity = 64;
  const auto rt_reqs = serve::generate_workload(rt_spec);
  AsyncOptions rt;
  rt.shards = 4;
  rt.time_scale = 2.0;
  AsyncOptions ser = rt;
  ser.serial_execution = true;

  AsyncServer async_core(server, rt);
  const AsyncOutcome rt_out =
      async_core.run(rt_reqs, rt_spec.max_batch, rt_spec.queue_capacity);
  AsyncServer serial_core(server, ser);
  const AsyncOutcome ser_out =
      serial_core.run(rt_reqs, rt_spec.max_batch, rt_spec.queue_capacity);

  const std::int64_t rt_completed = completed_of(rt_out);
  const std::int64_t ser_completed = completed_of(ser_out);
  const double ratio =
      ser_completed > 0
          ? static_cast<double>(rt_completed) /
                static_cast<double>(ser_completed)
          : static_cast<double>(rt_completed);
  TextTable rt_table;
  rt_table.set_header({"Core", "Completed", "Expired", "p99 ms", "Wall s"});
  rt_table.add_row({"async, 4 executors", std::to_string(rt_completed),
                    std::to_string(rt_out.expired),
                    strf("%.3f", rt_out.latency.quantile(0.99) * 1e3),
                    strf("%.3f", rt_out.wall_seconds)});
  rt_table.add_row({"serial execution", std::to_string(ser_completed),
                    std::to_string(ser_out.expired),
                    strf("%.3f", ser_out.latency.quantile(0.99) * 1e3),
                    strf("%.3f", ser_out.wall_seconds)});
  rt_table.print(std::cout);
  note(strf("completed ratio %.2fx (acceptance: >= 1.5x)", ratio));
  // The bit is the gated acceptance criterion; the raw numbers are wall-
  // clock-dependent and live in gauges.
  scalar("serve_core.rt_speedup_ge1_5", ratio >= 1.5 ? 1 : 0);
  trace::gauge_set("serve_core.rt_completed_async",
                   static_cast<double>(rt_completed));
  trace::gauge_set("serve_core.rt_completed_serial",
                   static_cast<double>(ser_completed));
  trace::gauge_set("serve_core.rt_completed_ratio", ratio);
  trace::gauge_set("serve_core.rt_p99_ms_async",
                   rt_out.latency.quantile(0.99) * 1e3);
  trace::gauge_set("serve_core.rt_p99_ms_serial",
                   ser_out.latency.quantile(0.99) * 1e3);
  trace::gauge_set("serve_core.rt_wall_s_async", rt_out.wall_seconds);
  trace::gauge_set("serve_core.rt_wall_s_serial", ser_out.wall_seconds);
  return diff.ok ? 0 : 1;
}
