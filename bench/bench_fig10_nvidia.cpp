// Fig. 10: DGEMM and SGEMM implementations on the Fermi and Kepler GPUs:
// this study (OpenCL) vs CUBLAS and MAGMA (CUDA).
#include "bench_util.hpp"
#include "blas/gemm.hpp"
#include "vendor/baselines.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("fig10_nvidia", &argc, argv);
  for (Precision prec : {Precision::DP, Precision::SP}) {
    bench::section(strf("Fig. 10 (%s NN): Fermi & Kepler implementations",
                        to_string(prec)));
    blas::GemmEngine fermi(simcl::DeviceId::Fermi);
    blas::GemmEngine kepler(simcl::DeviceId::Kepler);
    const auto& cublas_f = vendor::baseline_by_name(simcl::DeviceId::Fermi,
                                                    prec, "NVIDIA CUBLAS");
    const auto& magma = vendor::baseline_by_name(simcl::DeviceId::Fermi,
                                                 prec, "MAGMA");
    const auto& cublas_k = vendor::baseline_by_name(simcl::DeviceId::Kepler,
                                                    prec, "NVIDIA CUBLAS");
    bench::Series s_f{"This study (Fermi)", {}};
    bench::Series s_k{"This study (Kepler)", {}};
    bench::Series s_cf{"CUBLAS 4.1.28 (Fermi)", {}};
    bench::Series s_m{"MAGMA 1.2.1 (Fermi)", {}};
    bench::Series s_ck{"CUBLAS 5.0 RC (Kepler)", {}};
    for (index_t n = 512; n <= 6144; n += 512) {
      s_f.points.emplace_back(n,
                              fermi.estimate_gflops(GemmType::NN, prec, n));
      s_k.points.emplace_back(n,
                              kepler.estimate_gflops(GemmType::NN, prec, n));
      s_cf.points.emplace_back(
          n, vendor::baseline_gflops(cublas_f, GemmType::NN, n));
      s_m.points.emplace_back(
          n, vendor::baseline_gflops(magma, GemmType::NN, n));
      s_ck.points.emplace_back(
          n, vendor::baseline_gflops(cublas_k, GemmType::NN, n));
    }
    bench::print_series({s_f, s_cf, s_m, s_k, s_ck});
    bench::note(
        "shape checks: our OpenCL curves are comparable to the CUDA "
        "libraries on both GPUs.");
  }
  return 0;
}
