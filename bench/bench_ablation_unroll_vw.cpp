// Design-choice ablations the paper discusses but does not tabulate:
//  * Section III-A: "the unrolling degree is necessary to be parameterized"
//    — sweep Kwi for each device's best kernel.
//  * Section III-B: "the best [vector] width depends on a processor and an
//    algorithm" — sweep vw.
// Both sweeps hold every other parameter at the Table II optimum.
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "perfmodel/model.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("ablation_unroll_vw", &argc, argv);
  bench::section("Ablation: innermost unrolling factor Kwi (DGEMM)");
  {
    TextTable t;
    t.set_header({"Processor", "Kwi=1", "2", "4", "8", "16", "best(Table II)"});
    for (simcl::DeviceId id : simcl::evaluation_devices()) {
      perfmodel::PerfModel model(id);
      const auto base = codegen::table2_entry(id, Precision::DP).params;
      const std::int64_t n = model.stage1_size(base);
      std::vector<std::string> row = {simcl::to_string(id)};
      for (int kwi : {1, 2, 4, 8, 16}) {
        auto p = base;
        p.Kwi = kwi;
        const auto e = model.kernel_estimate(p, n, n, n);
        row.push_back(e.ok ? fmt_gflops(e.gflops) : "-");
      }
      row.push_back(std::to_string(base.Kwi));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    bench::note(
        "shape: performance rises with unrolling until register pressure "
        "or the tile constraint bites (the tuned Kwi is never 1).");
  }

  bench::section("Ablation: vector width vw (SGEMM)");
  {
    TextTable t;
    t.set_header({"Processor", "vw=1", "2", "4", "8", "best(Table II)"});
    for (simcl::DeviceId id : simcl::evaluation_devices()) {
      perfmodel::PerfModel model(id);
      const auto base = codegen::table2_entry(id, Precision::SP).params;
      const std::int64_t n = model.stage1_size(base);
      std::vector<std::string> row = {simcl::to_string(id)};
      for (int vw : {1, 2, 4, 8}) {
        auto p = base;
        p.vw = vw;
        const auto e = model.kernel_estimate(p, n, n, n);
        row.push_back(e.ok ? fmt_gflops(e.gflops) : "-");
      }
      row.push_back(std::to_string(base.vw));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    bench::note(
        "shape: scalar ALUs (Tahiti, Kepler, Fermi) are insensitive; "
        "VLIW (Cayman) and the CPUs need wide vectors to fill their "
        "lanes — exactly the paper's Section III-B observation.");
  }
  return 0;
}
