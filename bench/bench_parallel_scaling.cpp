// Parallel-execution scaling: wall-clock for a full tune() and for a
// work-group-parallel interpreter launch at 1/2/4/8 threads, with the
// per-run speedup over the 1-thread baseline. Verifies along the way that
// the tuned result is bit-identical at every thread count (the engine's
// determinism contract). Besides the usual human-readable tables, emits
// the rows as one JSON document for dashboards/CI to scrape.
//
// Usage: bench_parallel_scaling [device] [candidates]
//   device      simulated device to tune (default Tahiti)
//   candidates  stage-1 enumeration budget (default 20000, the full search)
#include <chrono>
#include <cstring>

#include "bench_util.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/interp.hpp"
#include "perfmodel/model.hpp"
#include "tuner/search.hpp"

namespace {

using namespace gemmtune;
using namespace gemmtune::bench;
using codegen::Precision;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct Run {
  int threads;
  double seconds;
  double speedup;
};

Json runs_json(const std::vector<Run>& runs) {
  Json arr = Json::array();
  for (const Run& r : runs) {
    Json row = Json::object();
    row["threads"] = r.threads;
    row["seconds"] = r.seconds;
    row["speedup"] = r.speedup;
    arr.push_back(std::move(row));
  }
  return arr;
}

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("parallel_scaling", &argc, argv);
  const std::string device = argc > 1 ? argv[1] : "Tahiti";
  const int candidates = argc > 2 ? std::atoi(argv[2]) : 20000;
  const simcl::DeviceId id = simcl::device_by_name(device);

  Json doc = Json::object();
  doc["bench"] = std::string("parallel_scaling");
  doc["device"] = device;
  doc["hardware_threads"] =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());

  // --- full tune() scaling ---------------------------------------------------
  section("Tuner scaling: full tune(" + device + ", DGEMM, " +
          std::to_string(candidates) + " candidates)");
  std::vector<Run> tune_runs;
  tuner::TunedKernel reference;
  bool identical = true;
  for (const int threads : kThreadCounts) {
    tuner::SearchOptions opt;
    opt.enumeration.max_candidates = candidates;
    opt.threads = threads;
    // Cold per-thread memo on the caller; pool workers are fresh threads.
    perfmodel::PerfModel::clear_thread_cache();
    tuner::SearchEngine engine(id);
    const double t0 = now_seconds();
    const auto tuned = engine.tune(Precision::DP, opt);
    const double dt = now_seconds() - t0;
    if (threads == 1) {
      reference = tuned;
    } else {
      identical = identical && tuned.params == reference.params &&
                  tuned.best_gflops == reference.best_gflops &&
                  tuned.best_n == reference.best_n &&
                  tuned.curve == reference.curve;
    }
    tune_runs.push_back({threads, dt, tune_runs.empty()
                                          ? 1.0
                                          : tune_runs.front().seconds / dt});
  }
  TextTable t1;
  t1.set_header({"Threads", "Seconds", "Speedup"});
  for (const Run& r : tune_runs)
    t1.add_row({std::to_string(r.threads), strf("%.3f", r.seconds),
                strf("%.2fx", r.speedup)});
  t1.print(std::cout);
  note(identical ? "tuned result bit-identical across all thread counts"
                 : "ERROR: tuned result differs across thread counts");
  note(strf("winner: %s at %.1f GFlop/s",
            reference.params.summary().c_str(), reference.best_gflops));
  doc["tune"] = runs_json(tune_runs);
  doc["tune_identical"] = identical;

  // --- interpreter scaling ---------------------------------------------------
  // One generated kernel over a many-group NDRange; work-groups partition
  // across threads.
  const auto params = codegen::table2_entry(id, Precision::DP).params;
  codegen::KernelParams p = params;
  const std::int64_t Mp = 4 * p.Mwg, Np = 4 * p.Nwg, Kp = p.Kwg;
  section(strf("Interpreter scaling: %s kernel, %lldx%lldx%lld (%d groups)",
               codegen::to_string(p.algo), static_cast<long long>(Mp),
               static_cast<long long>(Np), static_cast<long long>(Kp), 16));
  simcl::Context ctx(simcl::device_spec(id));
  const auto es = static_cast<std::size_t>(element_bytes(p.prec));
  auto dA = ctx.create_buffer(static_cast<std::size_t>(Mp * Kp) * es);
  auto dB = ctx.create_buffer(static_cast<std::size_t>(Kp * Np) * es);
  auto dC = ctx.create_buffer(static_cast<std::size_t>(Mp * Np) * es);
  for (std::size_t i = 0; i < dA->count<double>(); ++i)
    dA->as<double>()[i] = static_cast<double>(i % 13) * 0.25;
  for (std::size_t i = 0; i < dB->count<double>(); ++i)
    dB->as<double>()[i] = static_cast<double>(i % 7) * 0.5;
  const ir::Kernel kern = codegen::generate_gemm_kernel(p);
  const auto geo = codegen::launch_geometry(p, Mp, Np);
  std::vector<ir::ArgValue> args(8);
  args[codegen::GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[codegen::GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[codegen::GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[codegen::GemmKernelArgs::M] = ir::ArgValue::of_int(Mp);
  args[codegen::GemmKernelArgs::N] = ir::ArgValue::of_int(Np);
  args[codegen::GemmKernelArgs::K] = ir::ArgValue::of_int(Kp);
  args[codegen::GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.0);
  args[codegen::GemmKernelArgs::beta] = ir::ArgValue::of_float(0.0);

  std::vector<Run> interp_runs;
  for (const int threads : kThreadCounts) {
    const double t0 = now_seconds();
    (void)ir::launch(kern, geo.global, geo.local, args, threads);
    const double dt = now_seconds() - t0;
    interp_runs.push_back({threads, dt, interp_runs.empty()
                                            ? 1.0
                                            : interp_runs.front().seconds /
                                                  dt});
  }
  TextTable t2;
  t2.set_header({"Threads", "Seconds", "Speedup"});
  for (const Run& r : interp_runs)
    t2.add_row({std::to_string(r.threads), strf("%.3f", r.seconds),
                strf("%.2fx", r.speedup)});
  t2.print(std::cout);
  doc["interp"] = runs_json(interp_runs);

  section("JSON");
  std::printf("%s\n", doc.dump(2).c_str());
  return identical ? 0 : 1;
}
