// Table II: parameters of the fastest A^T*B kernel per processor and the
// maximum observed performance, for DGEMM and SGEMM.
//
// Two rows per entry: the paper's parameter set evaluated through our
// performance model (the calibration anchor), and the kernel our own
// search engine selects under a bounded candidate budget.
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "tuner/results_db.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("table2_best_kernels", &argc, argv);
  for (Precision prec : {Precision::DP, Precision::SP}) {
    bench::section(strf("Table II (%s): fastest kernels", to_string(prec)));
    TextTable t;
    t.set_header({"Processor", "Mwg,Nwg,Kwg", "Mwi,Nwi,Kwi", "dimC", "vw",
                  "stride", "shared", "layout", "algo", "GFlop/s", "eff%",
                  "source"});
    for (simcl::DeviceId id : simcl::evaluation_devices()) {
      const auto entry = codegen::table2_entry(id, prec);
      const auto paper_profile = tuner::profile_kernel(id, entry.params);
      const auto& dev = simcl::device_spec(id);
      const double peak = prec == Precision::DP ? dev.peak_dp_gflops
                                                : dev.peak_sp_gflops;
      auto add = [&](const codegen::KernelParams& p, double gflops,
                     const char* source) {
        std::string stride, shared;
        if (p.stride_m) stride += "M";
        if (p.stride_n) stride += stride.empty() ? "N" : ",N";
        if (p.share_a) shared += "A";
        if (p.share_b) shared += shared.empty() ? "B" : ",B";
        t.add_row({simcl::to_string(id),
                   strf("%d,%d,%d", p.Mwg, p.Nwg, p.Kwg),
                   strf("%d,%d,%d", p.Mwi(), p.Nwi(), p.Kwi),
                   strf("%d,%d", p.MdimC, p.NdimC), std::to_string(p.vw),
                   stride.empty() ? "-" : stride,
                   shared.empty() ? "-" : shared,
                   strf("%s,%s", to_string(p.layout_a),
                        to_string(p.layout_b)),
                   to_string(p.algo), fmt_gflops(gflops),
                   strf("%.0f", 100.0 * gflops / peak), source});
      };
      add(entry.params, paper_profile.best_gflops, "paper params");
      tuner::SearchEngine engine(id);
      tuner::SearchOptions opt;
      opt.enumeration.max_candidates = 8000;
      const auto tuned = engine.tune(prec, opt);
      add(tuned.params, tuned.best_gflops, "our search");
      t.add_rule();
    }
    t.print(std::cout);
    bench::note("paper-vs-model anchors:");
    for (simcl::DeviceId id : simcl::evaluation_devices()) {
      const auto entry = codegen::table2_entry(id, prec);
      const auto prof = tuner::profile_kernel(id, entry.params);
      bench::compare(simcl::to_string(id) + " " + to_string(prec),
                     entry.max_gflops, prof.best_gflops);
    }
  }
  return 0;
}
