// Micro-benchmarks (google-benchmark): host packing throughput across the
// three operand layouts, and the reference GEMM tiers.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "blas/hostblas.hpp"
#include "common/rng.hpp"
#include "layout/packing.hpp"

using namespace gemmtune;

namespace {

void BM_PackA(benchmark::State& state, BlockLayout layout) {
  const index_t M = state.range(0), K = state.range(0);
  Rng rng(1);
  Matrix<double> A(M, K);
  A.fill_random(rng);
  const auto e = packed_extents(M, 8, K, 32, 8, 16);
  for (auto _ : state) {
    auto buf = pack_a(A, Transpose::No, M, K, e.Mp, e.Kp, layout, 32, 16);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * M *
                          K * static_cast<std::int64_t>(sizeof(double)));
}

void BM_PackA_RM(benchmark::State& s) { BM_PackA(s, BlockLayout::RowMajor); }
void BM_PackA_CBL(benchmark::State& s) { BM_PackA(s, BlockLayout::CBL); }
void BM_PackA_RBL(benchmark::State& s) { BM_PackA(s, BlockLayout::RBL); }

BENCHMARK(BM_PackA_RM)->Arg(256)->Arg(512);
BENCHMARK(BM_PackA_CBL)->Arg(256)->Arg(512);
BENCHMARK(BM_PackA_RBL)->Arg(256)->Arg(512);

void BM_HostGemm(benchmark::State& state, int tier) {
  const index_t n = state.range(0);
  Rng rng(2);
  Matrix<double> A(n, n), B(n, n), C(n, n);
  A.fill_random(rng);
  B.fill_random(rng);
  for (auto _ : state) {
    if (tier == 0) {
      hostblas::gemm_naive(Transpose::No, Transpose::No, n, n, n, 1.0, A, B,
                           0.0, C);
    } else if (tier == 1) {
      hostblas::gemm_blocked(Transpose::No, Transpose::No, n, n, n, 1.0, A,
                             B, 0.0, C);
    } else {
      hostblas::gemm_parallel(Transpose::No, Transpose::No, n, n, n, 1.0, A,
                              B, 0.0, C);
    }
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_HostGemmNaive(benchmark::State& s) { BM_HostGemm(s, 0); }
void BM_HostGemmBlocked(benchmark::State& s) { BM_HostGemm(s, 1); }
void BM_HostGemmParallel(benchmark::State& s) { BM_HostGemm(s, 2); }

BENCHMARK(BM_HostGemmNaive)->Arg(128);
BENCHMARK(BM_HostGemmBlocked)->Arg(128)->Arg(256);
BENCHMARK(BM_HostGemmParallel)->Arg(256);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records each benchmark's
// per-iteration real time into the common-schema result file.
namespace {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      gemmtune::bench::scalar(r.benchmark_name() + ".real_time_ns",
                              r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("micro_layout", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
