// Micro-benchmarks (google-benchmark): host packing throughput across the
// three operand layouts, and the reference GEMM tiers.
//
// main() also runs a deterministic packing check: every layout's packed
// buffer must match the PackedIndexer ground truth element by element and
// must be byte-identical whether packed with 1 or 4 threads (the packing
// loops are tiled and parallel). The pass/fail bits and exact element sums
// are recorded as scalars gated against bench/baselines/micro_layout.json;
// wall-clock numbers go to gauges, which the gate never compares.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "blas/hostblas.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "layout/packing.hpp"

using namespace gemmtune;

namespace {

void BM_PackA(benchmark::State& state, BlockLayout layout) {
  const index_t M = state.range(0), K = state.range(0);
  Rng rng(1);
  Matrix<double> A(M, K);
  A.fill_random(rng);
  const auto e = packed_extents(M, 8, K, 32, 8, 16);
  for (auto _ : state) {
    auto buf = pack_a(A, Transpose::No, M, K, e.Mp, e.Kp, layout, 32, 16);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * M *
                          K * static_cast<std::int64_t>(sizeof(double)));
}

void BM_PackA_RM(benchmark::State& s) { BM_PackA(s, BlockLayout::RowMajor); }
void BM_PackA_CBL(benchmark::State& s) { BM_PackA(s, BlockLayout::CBL); }
void BM_PackA_RBL(benchmark::State& s) { BM_PackA(s, BlockLayout::RBL); }

BENCHMARK(BM_PackA_RM)->Arg(256)->Arg(512);
BENCHMARK(BM_PackA_CBL)->Arg(256)->Arg(512);
BENCHMARK(BM_PackA_RBL)->Arg(256)->Arg(512);

void BM_HostGemm(benchmark::State& state, int tier) {
  const index_t n = state.range(0);
  Rng rng(2);
  Matrix<double> A(n, n), B(n, n), C(n, n);
  A.fill_random(rng);
  B.fill_random(rng);
  for (auto _ : state) {
    if (tier == 0) {
      hostblas::gemm_naive(Transpose::No, Transpose::No, n, n, n, 1.0, A, B,
                           0.0, C);
    } else if (tier == 1) {
      hostblas::gemm_blocked(Transpose::No, Transpose::No, n, n, n, 1.0, A,
                             B, 0.0, C);
    } else {
      hostblas::gemm_parallel(Transpose::No, Transpose::No, n, n, n, 1.0, A,
                              B, 0.0, C);
    }
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["GFlop/s"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_HostGemmNaive(benchmark::State& s) { BM_HostGemm(s, 0); }
void BM_HostGemmBlocked(benchmark::State& s) { BM_HostGemm(s, 1); }
void BM_HostGemmParallel(benchmark::State& s) { BM_HostGemm(s, 2); }

BENCHMARK(BM_HostGemmNaive)->Arg(128);
BENCHMARK(BM_HostGemmBlocked)->Arg(128)->Arg(256);
BENCHMARK(BM_HostGemmParallel)->Arg(256);

// ---- deterministic packing correctness / thread-invariance gate ------------

void packing_check() {
  bench::section("Packing determinism (all layouts, 1 vs 4 threads)");
  const index_t M = 200, K = 150;  // deliberately not blocking multiples
  Rng rng(11);
  // Transpose::Yes, so the stored matrix is K x M and the pack reads it
  // transposed: buffer element (k, m) = A.at(k, m).
  Matrix<double> A(K, M, StorageOrder::RowMajor);
  A.fill_random(rng);
  const auto e = packed_extents(M, 8, K, 32, 8, 16);
  bool identical = true, correct = true;
  for (const BlockLayout layout :
       {BlockLayout::RowMajor, BlockLayout::CBL, BlockLayout::RBL}) {
    set_thread_override(1);
    const auto one =
        pack_a(A, Transpose::Yes, M, K, e.Mp, e.Kp, layout, 32, 16);
    set_thread_override(4);
    const auto four =
        pack_a(A, Transpose::Yes, M, K, e.Mp, e.Kp, layout, 32, 16);
    identical = identical && one == four;
    // Ground truth: the (checked, per-element) PackedIndexer.
    const PackedIndexer idx(layout, e.Kp, e.Mp, 16, 32);
    double sum = 0;
    for (index_t m = 0; m < M && correct; ++m)
      for (index_t k = 0; k < K; ++k) {
        if (packed_at(one, idx, k, m) != A.at(k, m)) {
          correct = false;
          break;
        }
      }
    for (const double v : one) sum += v;
    bench::scalar(std::string("pack_a.sum.") + to_string(layout), sum);
  }
  set_thread_override(1);
  bench::scalar("pack_a.thread_invariant", identical ? 1 : 0);
  bench::scalar("pack_a.matches_indexer", correct ? 1 : 0);
  bench::note(strf("thread_invariant=%d matches_indexer=%d", identical ? 1 : 0,
                   correct ? 1 : 0));
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records each benchmark's
// per-iteration real time as a gauge (wall-clock lives in the "metrics"
// section, outside the baseline gate) and runs the packing check.
namespace {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      gemmtune::trace::gauge_set(
          (r.benchmark_name() + ".real_time_ns").c_str(),
          r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("micro_layout", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  packing_check();
  return 0;
}
