// Table III: maximum performance of our GEMM implementations (column-major
// API, including the pack/copy overhead) against the vendor library on
// each processor, for all four multiplication types and both precisions.
#include "bench_util.hpp"
#include "blas/gemm.hpp"
#include "vendor/baselines.hpp"

using namespace gemmtune;
using codegen::Precision;

namespace {

// Maximum implementation-level performance over the stage-2 size range,
// like the paper's "maximum performance" rows.
double our_max(blas::GemmEngine& engine, GemmType type, Precision prec) {
  double best = 0;
  for (index_t n = 1024; n <= 8192; n += 512)
    best = std::max(best, engine.estimate_gflops(type, prec, n));
  return best;
}

// Paper Table III "Ours" values, for the comparison printout.
constexpr double kPaperOurs[6][2][4] = {
    // NN, NT, TN, TT per precision {DP, SP}
    {{852, 855, 849, 851}, {2989, 3008, 2970, 2989}},  // Tahiti
    {{568, 567, 565, 565}, {2060, 2096, 2037, 2074}},  // Cayman
    {{127, 128, 127, 128}, {1399, 1417, 1382, 1399}},  // Kepler
    {{366, 368, 363, 365}, {882, 888, 876, 882}},      // Fermi
    {{60, 60, 60, 60}, {132, 133, 132, 133}},          // Sandy Bridge
    {{36, 37, 36, 36}, {74, 78, 70, 74}},              // Bulldozer
};

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("table3_impl_vs_vendor", &argc, argv);
  bench::section("Table III: our GEMM implementations vs vendor libraries");
  TextTable t;
  t.set_header({"Processor", "Impl.", "DGEMM NN", "NT", "TN", "TT",
                "SGEMM NN", "NT", "TN", "TT"});
  int di = 0;
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    blas::GemmEngine engine(id);
    std::vector<std::string> ours = {simcl::to_string(id), "Ours"};
    std::vector<std::string> vend = {"", ""};
    for (Precision prec : {Precision::DP, Precision::SP}) {
      const auto& vb = vendor::table3_vendor(id, prec);
      vend[1] = "Vendor";
      for (GemmType type : all_gemm_types()) {
        ours.push_back(fmt_gflops(our_max(engine, type, prec)));
        vend.push_back(fmt_gflops(vendor::baseline_gflops(vb, type, 8192)));
      }
    }
    t.add_row(std::move(ours));
    t.add_row(std::move(vend));
    t.add_rule();
    ++di;
  }
  t.print(std::cout);

  bench::note("paper-vs-measured, our implementation (max over sizes):");
  di = 0;
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    blas::GemmEngine engine(id);
    int pi = 0;
    for (Precision prec : {Precision::DP, Precision::SP}) {
      int ti = 0;
      for (GemmType type : all_gemm_types()) {
        bench::compare(
            simcl::to_string(id) + " " + to_string(prec) + " " +
                to_string(type),
            kPaperOurs[di][pi][ti], our_max(engine, type, prec));
        ++ti;
      }
      ++pi;
    }
    ++di;
  }
  return 0;
}
