// Fig. 9: DGEMM and SGEMM C <- alpha*A*B + beta*C implementations on the
// Tahiti GPU: this study vs our previous study [13] vs AMD clBLAS.
#include "bench_util.hpp"
#include "blas/gemm.hpp"
#include "vendor/baselines.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("fig9_tahiti", &argc, argv);
  for (Precision prec : {Precision::DP, Precision::SP}) {
    bench::section(strf("Fig. 9 (%s NN): Tahiti implementations vs size",
                        to_string(prec)));
    blas::GemmEngine engine(simcl::DeviceId::Tahiti);
    const auto& prev = vendor::baseline_by_name(
        simcl::DeviceId::Tahiti, prec, "Our previous study");
    const auto& clblas = vendor::baseline_by_name(simcl::DeviceId::Tahiti,
                                                  prec, "AMD clBLAS");
    bench::Series ours{"This study", {}};
    bench::Series prev_s{prev.name, {}};
    bench::Series clblas_s{clblas.name, {}};
    for (index_t n = 512; n <= 6144; n += 512) {
      ours.points.emplace_back(
          n, engine.estimate_gflops(GemmType::NN, prec, n));
      prev_s.points.emplace_back(
          n, vendor::baseline_gflops(prev, GemmType::NN, n));
      clblas_s.points.emplace_back(
          n, vendor::baseline_gflops(clblas, GemmType::NN, n));
    }
    bench::print_series({ours, prev_s, clblas_s});
    const double o = ours.points.back().second;
    const double c = clblas_s.points.back().second;
    bench::note(strf(
        "shape checks: this study > previous study > clBLAS at large N "
        "(ours/clBLAS = %.2f); ours ramps slower at small N (copy "
        "overhead).",
        o / c));
  }
  return 0;
}
