// Micro-benchmarks (google-benchmark): lockstep interpreter throughput on
// generated GEMM kernels, and performance-model / search-engine evaluation
// rates (the quantities that bound a full tuning run's wall-clock).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "kernelir/interp.hpp"
#include "perfmodel/model.hpp"
#include "simcl/runtime.hpp"

using namespace gemmtune;
using codegen::Precision;

namespace {

void BM_InterpretGemmKernel(benchmark::State& state) {
  codegen::KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 16;
  p.Nwg = 16;
  p.Kwg = 8;
  p.MdimC = p.NdimC = 8;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 2;
  p.share_a = p.share_b = true;
  const std::int64_t n = state.range(0);
  const int es = element_bytes(p.prec);
  auto dA = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n * n * es));
  auto dB = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n * n * es));
  auto dC = std::make_shared<simcl::Buffer>(
      static_cast<std::size_t>(n * n * es));
  ir::Kernel k = codegen::generate_gemm_kernel(p);
  const auto geo = codegen::launch_geometry(p, n, n);
  std::vector<ir::ArgValue> args(8);
  args[codegen::GemmKernelArgs::C] = ir::ArgValue::of(dC);
  args[codegen::GemmKernelArgs::A] = ir::ArgValue::of(dA);
  args[codegen::GemmKernelArgs::B] = ir::ArgValue::of(dB);
  args[codegen::GemmKernelArgs::M] = ir::ArgValue::of_int(n);
  args[codegen::GemmKernelArgs::N] = ir::ArgValue::of_int(n);
  args[codegen::GemmKernelArgs::K] = ir::ArgValue::of_int(n);
  args[codegen::GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.0);
  args[codegen::GemmKernelArgs::beta] = ir::ArgValue::of_float(0.0);
  std::uint64_t mads = 0;
  for (auto _ : state) {
    const auto c = ir::launch(k, geo.global, geo.local, args);
    mads += c.mads;
  }
  state.counters["interp_mads/s"] = benchmark::Counter(
      static_cast<double>(mads), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_InterpretGemmKernel)->Arg(32)->Arg(64);

void BM_GenerateKernel(benchmark::State& state) {
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Tahiti, Precision::SP).params;
  for (auto _ : state) {
    ir::Kernel k = codegen::generate_gemm_kernel(p);
    benchmark::DoNotOptimize(k.body.data());
  }
}

BENCHMARK(BM_GenerateKernel);

void BM_PerfModelEstimate(benchmark::State& state) {
  perfmodel::PerfModel model(simcl::DeviceId::Tahiti);
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Tahiti, Precision::DP).params;
  (void)model.kernel_gflops(p, 4032);  // warm the anchor cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.kernel_gflops(p, 4032));
  }
}

BENCHMARK(BM_PerfModelEstimate);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records each benchmark's
// per-iteration real time into the common-schema result file.
namespace {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      gemmtune::bench::scalar(r.benchmark_name() + ".real_time_ns",
                              r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("micro_interp", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
