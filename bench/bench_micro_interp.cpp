// Micro-benchmarks (google-benchmark): interpreter throughput on generated
// GEMM kernels for the interpreter backends (bytecode VM vs the
// tree-walking reference, plus the native JIT in --native mode), and
// performance-model / search-engine evaluation rates (the quantities that
// bound a full tuning run's wall-clock).
//
// Besides the timed runs, main() performs a deterministic differential
// check: all backends must produce bit-identical buffers and counters (at
// several thread counts), and the bytecode backend must be at least 3x
// faster single-threaded than the tree walker. The pass/fail bits and the
// dynamic counters are recorded as scalars (gated against
// bench/baselines/micro_interp.json); wall-clock numbers go to gauges,
// which the baseline gate never compares.
//
// With --native the bench becomes "micro_interp_native": it times the
// native JIT backend too and gates a three-way differential plus the
// native >= 3x-over-bytecode speedup bit against
// bench/baselines/micro_interp_native.json. Without a usable host
// toolchain the native run exits 3 so harnesses can skip it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_util.hpp"

#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/rng.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/native.hpp"
#include "kernelir/vm.hpp"
#include "perfmodel/model.hpp"
#include "simcl/runtime.hpp"

using namespace gemmtune;
using codegen::Precision;

namespace {

codegen::KernelParams micro_params() {
  codegen::KernelParams p;
  p.prec = Precision::DP;
  p.Mwg = 16;
  p.Nwg = 16;
  p.Kwg = 8;
  p.MdimC = p.NdimC = 8;
  p.MdimA = p.NdimB = 8;
  p.Kwi = 2;
  p.vw = 2;
  p.share_a = p.share_b = true;
  return p;
}

/// One prepared launch: kernel, geometry, and freshly-filled buffers.
struct MicroLaunch {
  ir::Kernel kernel;
  codegen::LaunchGeometry geo;
  simcl::BufferPtr dA, dB, dC;
  std::vector<ir::ArgValue> args;

  explicit MicroLaunch(std::int64_t n) {
    const codegen::KernelParams p = micro_params();
    const int es = element_bytes(p.prec);
    const auto bytes = static_cast<std::size_t>(n * n * es);
    dA = std::make_shared<simcl::Buffer>(bytes);
    dB = std::make_shared<simcl::Buffer>(bytes);
    dC = std::make_shared<simcl::Buffer>(bytes);
    Rng rng(7);
    for (std::int64_t i = 0; i < n * n; ++i) {
      dA->as<double>()[i] = rng.next_double(-1.0, 1.0);
      dB->as<double>()[i] = rng.next_double(-1.0, 1.0);
    }
    kernel = codegen::generate_gemm_kernel(p);
    geo = codegen::launch_geometry(p, n, n);
    args.resize(8);
    args[codegen::GemmKernelArgs::C] = ir::ArgValue::of(dC);
    args[codegen::GemmKernelArgs::A] = ir::ArgValue::of(dA);
    args[codegen::GemmKernelArgs::B] = ir::ArgValue::of(dB);
    args[codegen::GemmKernelArgs::M] = ir::ArgValue::of_int(n);
    args[codegen::GemmKernelArgs::N] = ir::ArgValue::of_int(n);
    args[codegen::GemmKernelArgs::K] = ir::ArgValue::of_int(n);
    args[codegen::GemmKernelArgs::alpha] = ir::ArgValue::of_float(1.5);
    args[codegen::GemmKernelArgs::beta] = ir::ArgValue::of_float(0.0);
  }

  ir::Counters run(ir::Backend backend, int threads) const {
    return ir::launch_with_backend(kernel, geo.global, geo.local, args,
                                   threads, backend);
  }
};

void BM_InterpretGemmKernel(benchmark::State& state, ir::Backend backend) {
  const MicroLaunch ml(state.range(0));
  // Warm the compiled-program cache so a first-iteration JIT (native
  // backend) or bytecode compile never lands inside the timing loop.
  (void)ml.run(backend, 1);
  std::uint64_t mads = 0;
  for (auto _ : state) {
    const auto c = ml.run(backend, 1);
    mads += c.mads;
  }
  state.counters["interp_mads/s"] = benchmark::Counter(
      static_cast<double>(mads), benchmark::Counter::kIsRate);
}

void BM_InterpTree(benchmark::State& s) {
  BM_InterpretGemmKernel(s, ir::Backend::Tree);
}
void BM_InterpBytecode(benchmark::State& s) {
  BM_InterpretGemmKernel(s, ir::Backend::Bytecode);
}
// Dispatch axis: the bytecode VM under forced switch dispatch (the
// default resolves to threaded wherever the build supports it).
void BM_InterpBytecodeSwitch(benchmark::State& s) {
  ir::set_vm_dispatch_override(ir::VmDispatch::Switch);
  BM_InterpretGemmKernel(s, ir::Backend::Bytecode);
  ir::set_vm_dispatch_override(ir::VmDispatch::Auto);
}
void BM_InterpNative(benchmark::State& s) {
  BM_InterpretGemmKernel(s, ir::Backend::Native);
}
// SIMD axis: the native JIT with scalar emission forced (the default
// emits explicit vector lanes).
void BM_InterpNativeScalar(benchmark::State& s) {
  ir::set_native_simd_override(ir::NativeSimd::Off);
  BM_InterpretGemmKernel(s, ir::Backend::Native);
  ir::set_native_simd_override(ir::NativeSimd::Auto);
}

BENCHMARK(BM_InterpTree)->Arg(32)->Arg(64);
BENCHMARK(BM_InterpBytecode)->Arg(32)->Arg(64);
BENCHMARK(BM_InterpBytecodeSwitch)->Arg(32)->Arg(64);

void BM_GenerateKernel(benchmark::State& state) {
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Tahiti, Precision::SP).params;
  for (auto _ : state) {
    ir::Kernel k = codegen::generate_gemm_kernel(p);
    benchmark::DoNotOptimize(k.body.data());
  }
}

BENCHMARK(BM_GenerateKernel);

void BM_PerfModelEstimate(benchmark::State& state) {
  perfmodel::PerfModel model(simcl::DeviceId::Tahiti);
  const auto p =
      codegen::table2_entry(simcl::DeviceId::Tahiti, Precision::DP).params;
  (void)model.kernel_gflops(p, 4032);  // warm the anchor cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.kernel_gflops(p, 4032));
  }
}

BENCHMARK(BM_PerfModelEstimate);

// ---- deterministic differential + speedup gate -----------------------------

double min_seconds(int reps, const MicroLaunch& ml, ir::Backend backend) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    (void)ml.run(backend, 1);
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

void differential_check() {
  bench::section("Backend differential (tree vs bytecode, Table II shape)");
  const std::int64_t n = 64;
  const MicroLaunch tree_ml(n);
  const MicroLaunch byte_ml(n);
  const MicroLaunch byte4_ml(n);
  const ir::Counters ct = tree_ml.run(ir::Backend::Tree, 1);
  const ir::Counters cb = byte_ml.run(ir::Backend::Bytecode, 1);
  const ir::Counters cb4 = byte4_ml.run(ir::Backend::Bytecode, 4);
  const bool buffers_equal =
      std::memcmp(tree_ml.dC->data(), byte_ml.dC->data(),
                  tree_ml.dC->size()) == 0 &&
      std::memcmp(byte_ml.dC->data(), byte4_ml.dC->data(),
                  byte_ml.dC->size()) == 0;
  const bool counters_equal = ct == cb && cb == cb4;
  bench::scalar("interp.buffers_equal", buffers_equal ? 1 : 0);
  bench::scalar("interp.counters_equal", counters_equal ? 1 : 0);
  bench::scalar("interp.flops", static_cast<double>(cb.flops));
  bench::scalar("interp.mads", static_cast<double>(cb.mads));
  bench::scalar("interp.global_load_bytes",
                static_cast<double>(cb.global_load_bytes));
  bench::scalar("interp.global_store_bytes",
                static_cast<double>(cb.global_store_bytes));
  bench::scalar("interp.local_load_bytes",
                static_cast<double>(cb.local_load_bytes));
  bench::scalar("interp.local_store_bytes",
                static_cast<double>(cb.local_store_bytes));
  bench::scalar("interp.barriers", static_cast<double>(cb.barriers));

  // Single-thread speedup on the warmed compiled-program cache; the >= 3x
  // bit is the gated acceptance criterion, the raw ratio is a gauge.
  const double t_tree = min_seconds(3, tree_ml, ir::Backend::Tree);
  const double t_byte = min_seconds(5, byte_ml, ir::Backend::Bytecode);
  const double speedup = t_tree / t_byte;
  trace::gauge_set("micro_interp.speedup_tree_over_bytecode", speedup);
  bench::scalar("interp.speedup_ge3x", speedup >= 3.0 ? 1 : 0);
  bench::note(strf("buffers_equal=%d counters_equal=%d speedup=%.1fx "
                   "(tree %.2f ms, bytecode %.2f ms, single thread)",
                   buffers_equal ? 1 : 0, counters_equal ? 1 : 0, speedup,
                   1e3 * t_tree, 1e3 * t_byte));
}

/// Dispatch axis: threaded (computed goto) vs switch execution of the
/// same bytecode. Both must be bit-identical; on builds that carry the
/// threaded executor it must also be >= 1.3x faster on the Table II
/// micro shape (elsewhere the speedup bit is vacuously true — the two
/// modes resolve to the same executor).
void dispatch_differential_check() {
  bench::section("Dispatch differential (threaded vs switch, Table II shape)");
  const std::int64_t n = 64;
  const MicroLaunch sw_ml(n);
  const MicroLaunch th_ml(n);
  ir::set_vm_dispatch_override(ir::VmDispatch::Switch);
  const ir::Counters cs = sw_ml.run(ir::Backend::Bytecode, 1);
  ir::set_vm_dispatch_override(ir::VmDispatch::Threaded);
  const ir::Counters cth = th_ml.run(ir::Backend::Bytecode, 1);
  const bool buffers_equal = std::memcmp(sw_ml.dC->data(), th_ml.dC->data(),
                                         sw_ml.dC->size()) == 0;
  const bool counters_equal = cs == cth;
  bench::scalar("interp.dispatch_buffers_equal", buffers_equal ? 1 : 0);
  bench::scalar("interp.dispatch_counters_equal", counters_equal ? 1 : 0);
  bench::scalar("interp.dispatch_threaded_supported",
                ir::vm_threaded_dispatch_supported() ? 1 : 0);

  ir::set_vm_dispatch_override(ir::VmDispatch::Switch);
  const double t_switch = min_seconds(5, sw_ml, ir::Backend::Bytecode);
  ir::set_vm_dispatch_override(ir::VmDispatch::Threaded);
  const double t_threaded = min_seconds(5, th_ml, ir::Backend::Bytecode);
  ir::set_vm_dispatch_override(ir::VmDispatch::Auto);
  const double speedup = t_switch / t_threaded;
  trace::gauge_set("micro_interp.speedup_threaded_over_switch", speedup);
  const bool ge =
      !ir::vm_threaded_dispatch_supported() || speedup >= 1.3;
  bench::scalar("interp.dispatch_threaded_ge1_3x", ge ? 1 : 0);
  bench::note(strf("buffers_equal=%d counters_equal=%d speedup=%.2fx "
                   "(switch %.2f ms, threaded %.2f ms, single thread)",
                   buffers_equal ? 1 : 0, counters_equal ? 1 : 0, speedup,
                   1e3 * t_switch, 1e3 * t_threaded));
}

/// --native mode: the native JIT joins the differential. All three
/// backends must agree byte-for-byte (buffers and counters, serial and
/// 4-thread native), and the JIT'd kernel must beat the bytecode VM by
/// >= 3x single-threaded on the Table II micro shape.
void native_differential_check() {
  bench::section(
      "Backend differential (native vs bytecode vs tree, Table II shape)");
  const std::int64_t n = 64;
  const MicroLaunch tree_ml(n);
  const MicroLaunch byte_ml(n);
  const MicroLaunch nat_ml(n);
  const MicroLaunch nat4_ml(n);
  const ir::Counters ct = tree_ml.run(ir::Backend::Tree, 1);
  const ir::Counters cb = byte_ml.run(ir::Backend::Bytecode, 1);
  const ir::Counters cn = nat_ml.run(ir::Backend::Native, 1);
  const ir::Counters cn4 = nat4_ml.run(ir::Backend::Native, 4);
  const auto same = [](const MicroLaunch& a, const MicroLaunch& b) {
    return std::memcmp(a.dC->data(), b.dC->data(), a.dC->size()) == 0;
  };
  const bool buffers_equal = same(nat_ml, byte_ml) && same(nat_ml, tree_ml) &&
                             same(nat_ml, nat4_ml);
  const bool counters_equal = cn == cb && cn == ct && cn == cn4;
  bench::scalar("interp.native_buffers_equal", buffers_equal ? 1 : 0);
  bench::scalar("interp.native_counters_equal", counters_equal ? 1 : 0);
  bench::scalar("interp.native_mads", static_cast<double>(cn.mads));
  bench::scalar("interp.native_flops", static_cast<double>(cn.flops));

  // Program cache is warm for both backends by now (the runs above).
  const double t_byte = min_seconds(5, byte_ml, ir::Backend::Bytecode);
  const double t_native = min_seconds(9, nat_ml, ir::Backend::Native);
  const double speedup = t_byte / t_native;
  trace::gauge_set("micro_interp.speedup_native_over_bytecode", speedup);
  bench::scalar("interp.native_speedup_ge3x", speedup >= 3.0 ? 1 : 0);
  bench::note(strf("buffers_equal=%d counters_equal=%d speedup=%.1fx "
                   "(bytecode %.2f ms, native %.2f ms, single thread)",
                   buffers_equal ? 1 : 0, counters_equal ? 1 : 0, speedup,
                   1e3 * t_byte, 1e3 * t_native));
}

/// SIMD axis: explicit-vector emission vs forced scalar emission of the
/// same kernel (both modes are forced through the process-wide override,
/// so the environment cannot skew the comparison). Both natives must
/// agree byte-for-byte with the bytecode reference, and the vectorized
/// object must be >= 1.5x faster than the scalar one on the Table II
/// micro shape.
void simd_differential_check() {
  bench::section(
      "SIMD differential (vector vs scalar native, Table II shape)");
  const std::int64_t n = 64;
  const MicroLaunch byte_ml(n);
  const MicroLaunch scal_ml(n);
  const MicroLaunch simd_ml(n);
  const ir::Counters cb = byte_ml.run(ir::Backend::Bytecode, 1);
  ir::set_native_simd_override(ir::NativeSimd::Off);
  const ir::Counters csc = scal_ml.run(ir::Backend::Native, 1);
  ir::set_native_simd_override(ir::NativeSimd::On);
  const ir::Counters csi = simd_ml.run(ir::Backend::Native, 1);
  const auto same = [](const MicroLaunch& a, const MicroLaunch& b) {
    return std::memcmp(a.dC->data(), b.dC->data(), a.dC->size()) == 0;
  };
  const bool buffers_equal = same(simd_ml, byte_ml) && same(simd_ml, scal_ml);
  const bool counters_equal = csi == cb && csi == csc;
  bench::scalar("interp.simd_buffers_equal", buffers_equal ? 1 : 0);
  bench::scalar("interp.simd_counters_equal", counters_equal ? 1 : 0);

  ir::set_native_simd_override(ir::NativeSimd::Off);
  const double t_scalar = min_seconds(9, scal_ml, ir::Backend::Native);
  ir::set_native_simd_override(ir::NativeSimd::On);
  const double t_simd = min_seconds(9, simd_ml, ir::Backend::Native);
  ir::set_native_simd_override(ir::NativeSimd::Auto);
  const double speedup = t_scalar / t_simd;
  trace::gauge_set("micro_interp.speedup_simd_over_scalar", speedup);
  bench::scalar("interp.native_simd_ge1_5x", speedup >= 1.5 ? 1 : 0);
  bench::note(strf("buffers_equal=%d counters_equal=%d speedup=%.2fx "
                   "(scalar %.2f ms, SIMD %.2f ms, single thread)",
                   buffers_equal ? 1 : 0, counters_equal ? 1 : 0, speedup,
                   1e3 * t_scalar, 1e3 * t_simd));
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): records each benchmark's
// per-iteration real time as a gauge (wall-clock lives in the "metrics"
// section, outside the baseline gate) and runs the differential check.
namespace {

class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      gemmtune::trace::gauge_set(
          (r.benchmark_name() + ".real_time_ns").c_str(),
          r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool native_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--native") {
      native_mode = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  gemmtune::bench::init(native_mode ? "micro_interp_native" : "micro_interp",
                        &argc, argv);
  if (native_mode && !ir::native_toolchain_available()) {
    std::printf("no usable host toolchain; native differential skipped\n");
    return 3;  // harnesses (tools/bench_smoke.sh) treat 3 as "skip"
  }
  if (native_mode) {
    benchmark::RegisterBenchmark("BM_InterpNative", BM_InterpNative)
        ->Arg(32)
        ->Arg(64);
    benchmark::RegisterBenchmark("BM_InterpNativeScalar",
                                 BM_InterpNativeScalar)
        ->Arg(32)
        ->Arg(64);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (native_mode) {
    native_differential_check();
    simd_differential_check();
  } else {
    differential_check();
    dispatch_differential_check();
  }
  return 0;
}
