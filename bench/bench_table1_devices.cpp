// Table I: processor specifications of the simulated devices.
#include "bench_util.hpp"
#include "common/table.hpp"
#include "simcl/device_registry.hpp"

using namespace gemmtune;

int main(int argc, char** argv) {
  gemmtune::bench::init("table1_devices", &argc, argv);
  bench::section("Table I: processor specification (simulated registry)");
  TextTable t;
  t.set_header({"Field", "Tahiti", "Cayman", "Kepler", "Fermi",
                "Sandy Bridge", "Bulldozer"});
  auto row = [&](const std::string& field, auto getter) {
    std::vector<std::string> r = {field};
    for (simcl::DeviceId id : simcl::evaluation_devices())
      r.push_back(getter(simcl::device_spec(id)));
    t.add_row(std::move(r));
  };
  using simcl::DeviceSpec;
  row("Product name", [](const DeviceSpec& d) { return d.product_name; });
  row("Core clock [GHz]",
      [](const DeviceSpec& d) { return strf("%.3g", d.clock_ghz); });
  row("Compute units",
      [](const DeviceSpec& d) { return std::to_string(d.compute_units); });
  row("Max DP ops/clock",
      [](const DeviceSpec& d) { return std::to_string(d.dp_ops_per_clock); });
  row("Max SP ops/clock",
      [](const DeviceSpec& d) { return std::to_string(d.sp_ops_per_clock); });
  row("Peak DP [GFlop/s]",
      [](const DeviceSpec& d) { return fmt_gflops(d.peak_dp_gflops); });
  row("Peak SP [GFlop/s]",
      [](const DeviceSpec& d) { return fmt_gflops(d.peak_sp_gflops); });
  row("Global memory [GB]",
      [](const DeviceSpec& d) { return strf("%.3g", d.global_mem_gb); });
  row("Memory BW [GB/s]",
      [](const DeviceSpec& d) { return strf("%.4g", d.global_bw_gbs); });
  row("Local memory [kB]",
      [](const DeviceSpec& d) { return strf("%.3g", d.local_mem_kb); });
  row("Local memory type", [](const DeviceSpec& d) {
    return std::string(d.local_mem_kind == simcl::LocalMemKind::Scratchpad
                           ? "Scratchpad"
                           : "Global");
  });
  row("OpenCL SDK", [](const DeviceSpec& d) { return d.opencl_sdk; });
  t.print(std::cout);
  return 0;
}
