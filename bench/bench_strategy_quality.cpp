// Guided-search quality vs budget: can the model-ranked and stochastic
// strategies match the exhaustive two-stage search while measuring a
// fraction of its candidates?
//
// For two Table I devices (Tahiti GPU, SandyBridge CPU) x {DGEMM, SGEMM},
// the exhaustive reference tunes over a fixed candidate space, then each
// guided strategy (model_topk, anneal, pso) runs with a measurement budget
// of 10% of that space. Per combination the bench records the selected
// kernel's GFlop/s, the quality ratio against the exhaustive winner, and
// the measured fraction. The acceptance gate — quality >= 1.0 at fraction
// <= 0.10 for model_topk AND anneal on every combination — is emitted as
// gated scalar bits (and the process exit code), so the benchdb trajectory
// CI fails if a strategy regresses below the exhaustive bar. A budget
// sweep on Tahiti DGEMM shows how quality degrades as the budget shrinks.
//
// Everything is a pure function of the device tables (the "measurement" is
// the analytic performance model), so every scalar is exact and the
// baselines are tight.
//
// Usage: bench_strategy_quality [candidates] [budget]
//   candidates  enumeration budget defining the search space (default 2500)
//   budget      guided-strategy measurement budget (default 250 = 10%)
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "tuner/search.hpp"
#include "tuner/strategy/strategy.hpp"

namespace {

using namespace gemmtune;
using namespace gemmtune::bench;
using codegen::Precision;
using simcl::DeviceId;
using tuner::SearchEngine;
using tuner::SearchOptions;
using tuner::TunedKernel;
using tuner::strategy::StrategyKind;
using tuner::strategy::StrategySpec;
using tuner::strategy::StrategyStats;
using tuner::strategy::run_strategy;

struct GuidedResult {
  TunedKernel best;
  StrategyStats stats;
};

GuidedResult run(const SearchEngine& engine, Precision prec,
                 const SearchOptions& opt, StrategyKind kind,
                 std::int64_t budget) {
  StrategySpec spec;
  spec.kind = kind;
  spec.budget = budget;
  GuidedResult r;
  r.best = run_strategy(engine, prec, opt, spec, &r.stats);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  gemmtune::bench::init("strategy_quality", &argc, argv);
  const int candidates = argc > 1 ? std::atoi(argv[1]) : 2500;
  const std::int64_t budget = argc > 2 ? std::atoll(argv[2]) : 250;

  const std::vector<DeviceId> devices = {DeviceId::Tahiti,
                                         DeviceId::SandyBridge};
  const std::vector<Precision> precisions = {Precision::DP, Precision::SP};
  const std::vector<StrategyKind> guided = {
      StrategyKind::ModelTopK, StrategyKind::Anneal, StrategyKind::Pso};

  SearchOptions opt;
  opt.enumeration.max_candidates = candidates;

  bool gate_all = true;
  for (const DeviceId id : devices) {
    const SearchEngine engine(id);
    const std::string dev = simcl::device_spec(id).code_name;
    for (const Precision prec : precisions) {
      const std::string combo = dev + "." + to_string(prec);
      StrategyStats exh_stats;
      TunedKernel exh;
      {
        StrategySpec spec;
        spec.kind = StrategyKind::Exhaustive;
        exh = run_strategy(engine, prec, opt, spec, &exh_stats);
      }
      section(combo + ": exhaustive reference over " +
              std::to_string(exh_stats.space) + " candidates");
      note(strf("exhaustive: %.1f GFlop/s (%s)", exh.best_gflops,
                exh.params.summary().c_str()));
      scalar(combo + ".exhaustive.best_gflops", exh.best_gflops);
      scalar(combo + ".space", static_cast<double>(exh_stats.space));

      TextTable t;
      t.set_header({"Strategy", "Measured", "Fraction", "GFlop/s",
                    "Quality"});
      for (const StrategyKind kind : guided) {
        const GuidedResult r = run(engine, prec, opt, kind, budget);
        const double quality = r.best.best_gflops / exh.best_gflops;
        const std::string name = to_string(kind);
        t.add_row({name, std::to_string(r.stats.measured),
                   strf("%.1f%%", r.stats.fraction_measured * 100),
                   strf("%.1f", r.best.best_gflops),
                   strf("%.4f", quality)});
        scalar(combo + "." + name + ".best_gflops", r.best.best_gflops);
        scalar(combo + "." + name + ".quality", quality);
        scalar(combo + "." + name + ".measured",
               static_cast<double>(r.stats.measured));
        scalar(combo + "." + name + ".fraction", r.stats.fraction_measured);
        // The acceptance gate covers the deterministic model ranking and
        // the seeded annealer; pso is reported but not gated (swarm
        // search has no same-or-better guarantee at this budget).
        if (kind != StrategyKind::Pso) {
          const bool ok = quality >= 1.0 - 1e-9 &&
                          r.stats.fraction_measured <= 0.10 + 1e-9;
          scalar(combo + "." + name + ".gate", ok ? 1 : 0);
          gate_all = gate_all && ok;
        }
      }
      t.print(std::cout);
    }
  }
  section("acceptance gate");
  note(gate_all ? "model_topk and anneal match the exhaustive winner at "
                  "<= 10% of its measurements on every device x precision"
                : "GATE FAILED: a gated strategy fell below the exhaustive "
                  "winner (see quality scalars above)");
  scalar("gate.all", gate_all ? 1 : 0);

  // --- quality vs budget (Tahiti DGEMM) ------------------------------------
  section("quality vs budget: Tahiti DGEMM");
  const SearchEngine tahiti(DeviceId::Tahiti);
  StrategySpec exh_spec;
  exh_spec.kind = StrategyKind::Exhaustive;
  const TunedKernel exh = run_strategy(tahiti, Precision::DP, opt, exh_spec);
  TextTable sweep;
  sweep.set_header({"Budget", "model_topk", "anneal", "pso"});
  for (const std::int64_t b : {budget / 4, budget / 2, budget}) {
    std::vector<std::string> row = {std::to_string(b)};
    for (const StrategyKind kind : guided) {
      const GuidedResult r = run(tahiti, Precision::DP, opt, kind, b);
      const double quality = r.best.best_gflops / exh.best_gflops;
      row.push_back(strf("%.4f", quality));
      scalar("sweep.Tahiti.DP." + std::string(to_string(kind)) + ".budget" +
                 std::to_string(b) + ".quality",
             quality);
    }
    sweep.add_row(row);
  }
  sweep.print(std::cout);

  return gate_all ? 0 : 1;
}
