// Fig. 7: performance of the fastest DGEMM and SGEMM C <- alpha*A^T*B +
// beta*C kernels as a function of problem size, on all six processors.
//
// Each device is measured at the multiple of its blocking LCM closest to a
// common size grid (the paper likewise measures at LCM multiples).
#include "bench_util.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/intmath.hpp"
#include "perfmodel/model.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("fig7_kernel_perf", &argc, argv);
  const std::int64_t grid[] = {512,  1024, 1536, 2048, 2560,
                               3072, 4096, 5120, 6144};
  for (Precision prec : {Precision::DP, Precision::SP}) {
    bench::section(strf("Fig. 7 (%s): kernel GFlop/s vs matrix size",
                        to_string(prec)));
    TextTable t;
    std::vector<std::string> header = {"N (approx)"};
    for (simcl::DeviceId id : simcl::evaluation_devices())
      header.push_back(simcl::to_string(id));
    t.set_header(header);
    for (std::int64_t target : grid) {
      std::vector<std::string> row = {std::to_string(target)};
      for (simcl::DeviceId id : simcl::evaluation_devices()) {
        perfmodel::PerfModel model(id);
        const auto p = codegen::table2_entry(id, prec).params;
        const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);
        const std::int64_t n = largest_multiple_le(target, lcm);
        row.push_back(fmt_gflops(model.kernel_gflops(p, n)));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    bench::note(strf(
        "shape checks (%s): GPUs well above CPUs; Tahiti on top; curves "
        "saturate by N ~ 2048.",
        to_string(prec)));
  }
  return 0;
}
