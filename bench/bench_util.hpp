// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints (a) the regenerated rows/series and (b) where the
// paper states a number, a paper-vs-measured comparison line, so the output
// can be pasted into EXPERIMENTS.md directly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace gemmtune::bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Prints "label: paper=X measured=Y (ratio R)".
inline void compare(const std::string& label, double paper,
                    double measured) {
  std::printf("  %-44s paper=%8s  measured=%8s  ratio=%.2f\n", label.c_str(),
              fmt_gflops(paper).c_str(), fmt_gflops(measured).c_str(),
              measured / paper);
}

/// One named series over problem sizes (a figure line).
struct Series {
  std::string name;
  std::vector<std::pair<std::int64_t, double>> points;  // (N, GFlop/s)
};

/// Prints several series as one aligned table over the union of sizes.
inline void print_series(const std::vector<Series>& series) {
  std::vector<std::int64_t> sizes;
  for (const auto& s : series)
    for (const auto& [n, g] : s.points) {
      if (std::find(sizes.begin(), sizes.end(), n) == sizes.end())
        sizes.push_back(n);
    }
  std::sort(sizes.begin(), sizes.end());
  TextTable t;
  std::vector<std::string> header = {"N"};
  for (const auto& s : series) header.push_back(s.name);
  t.set_header(header);
  for (std::int64_t n : sizes) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& s : series) {
      double val = -1;
      for (const auto& [pn, g] : s.points) {
        if (pn == n) val = g;
      }
      row.push_back(val < 0 ? "-" : fmt_gflops(val));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace gemmtune::bench
