// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench prints (a) the regenerated rows/series and (b) where the
// paper states a number, a paper-vs-measured comparison line, so the output
// can be pasted into EXPERIMENTS.md directly.
//
// Calling init() at the top of main additionally records every comparison,
// series and scalar into a machine-readable result file of a schema common
// to all benches ("gemmtune-bench-v1"), written at process exit:
//   { "schema": "gemmtune-bench-v1", "bench": <name>,
//     "comparisons": [{section, label, paper, measured, ratio}],
//     "series":      [{section, name, points: [[N, gflops], ...]}],
//     "scalars":     { name: number },
//     "metrics":     <trace metrics document> }
// tools/bench_smoke.sh diffs these files against bench/baselines/ in CI.
//
// Flags parsed (and stripped) by init(): --json FILE (result path; default
// <bench>.json), --trace FILE and --metrics FILE (enable the trace layer
// and write its timeline / aggregate documents too).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/report_version.hpp"
#include "common/runmeta.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/interp.hpp"
#include "trace/trace.hpp"

namespace gemmtune::bench {

struct ReportState {
  bool initialized = false;
  std::string name;
  std::string section;
  std::string json_path, trace_path, metrics_path;
  Json comparisons = Json::array();
  Json series_doc = Json::array();
  Json scalars = Json::object();
};

inline ReportState& report() {
  static ReportState s;
  return s;
}

inline void write_report() {
  ReportState& r = report();
  if (!r.initialized) return;
  Json doc = Json::object();
  doc["schema"] = kBenchReportSchema;
  doc["bench"] = r.name;
  // The uniform run-identity block `gemmtune bench-db ingest` keys on:
  // every bench emits it, so no ingest ever has to guess the backend or
  // thread count of a result.
  doc["meta"] = run_meta_json(
      ir::to_string(ir::resolve_backend(ir::Backend::Auto)),
      configured_threads());
  doc["comparisons"] = r.comparisons;
  doc["series"] = r.series_doc;
  doc["scalars"] = r.scalars;
  doc["metrics"] = trace::metrics_json();
  std::ofstream f(r.json_path);
  if (!f.good()) {
    std::fprintf(stderr, "bench: cannot write %s\n", r.json_path.c_str());
    return;
  }
  f << doc.dump(2) << "\n";
  std::printf("\n[wrote %s]\n", r.json_path.c_str());
  if (!r.trace_path.empty()) trace::write_trace_file(r.trace_path);
  if (!r.metrics_path.empty()) trace::write_metrics_file(r.metrics_path);
}

/// Enables result recording for this bench. Parses and strips --json,
/// --trace and --metrics from argv (so google-benchmark binaries can pass
/// the remainder to benchmark::Initialize). Safe to call with null argv.
inline void init(const std::string& name, int* argc = nullptr,
                 char** argv = nullptr) {
  ReportState& r = report();
  r.initialized = true;
  r.name = name;
  r.json_path = name + ".json";
  if (argc && argv) {
    int w = 1;
    for (int i = 1; i < *argc; ++i) {
      const std::string a = argv[i];
      auto value = [&](const char* flag) -> const char* {
        const std::string eq = std::string(flag) + "=";
        if (a.rfind(eq, 0) == 0) return argv[i] + eq.size();
        if (a == flag && i + 1 < *argc) return argv[++i];
        return nullptr;
      };
      if (const char* v = value("--json")) {
        r.json_path = v;
      } else if (const char* v = value("--trace")) {
        r.trace_path = v;
      } else if (const char* v = value("--metrics")) {
        r.metrics_path = v;
      } else {
        argv[w++] = argv[i];
      }
    }
    *argc = w;
  }
  trace::set_enabled(true);  // benches always collect their own metrics
  std::atexit(write_report);
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  report().section = title;
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Records a standalone named value into the result file. Non-finite
/// values are stored as 0: the JSON writer prints doubles verbatim, so an
/// inf/nan (zero-duration division on a tiny problem) would corrupt the
/// document.
inline void scalar(const std::string& name, double value) {
  ReportState& r = report();
  if (r.initialized) r.scalars[name] = finite_or(value, 0.0);
}

/// Prints "label: paper=X measured=Y (ratio R)".
inline void compare(const std::string& label, double paper,
                    double measured) {
  const double ratio = finite_or(measured / paper, 0.0);
  std::printf("  %-44s paper=%8s  measured=%8s  ratio=%.2f\n", label.c_str(),
              fmt_gflops(paper).c_str(), fmt_gflops(measured).c_str(),
              ratio);
  ReportState& r = report();
  if (r.initialized) {
    Json j = Json::object();
    j["section"] = r.section;
    j["label"] = label;
    j["paper"] = finite_or(paper, 0.0);
    j["measured"] = finite_or(measured, 0.0);
    j["ratio"] = ratio;
    r.comparisons.push_back(std::move(j));
  }
}

/// One named series over problem sizes (a figure line).
struct Series {
  std::string name;
  std::vector<std::pair<std::int64_t, double>> points;  // (N, GFlop/s)
};

/// Prints several series as one aligned table over the union of sizes.
/// With init() active, each series is also recorded into the result file.
inline void print_series(const std::vector<Series>& series) {
  ReportState& r = report();
  if (r.initialized) {
    for (const auto& s : series) {
      Json j = Json::object();
      j["section"] = r.section;
      j["name"] = s.name;
      Json pts = Json::array();
      for (const auto& [n, g] : s.points) {
        Json p = Json::array();
        p.push_back(static_cast<std::int64_t>(n));
        p.push_back(g);
        pts.push_back(std::move(p));
      }
      j["points"] = std::move(pts);
      r.series_doc.push_back(std::move(j));
    }
  }
  std::vector<std::int64_t> sizes;
  for (const auto& s : series)
    for (const auto& [n, g] : s.points) {
      if (std::find(sizes.begin(), sizes.end(), n) == sizes.end())
        sizes.push_back(n);
    }
  std::sort(sizes.begin(), sizes.end());
  TextTable t;
  std::vector<std::string> header = {"N"};
  for (const auto& s : series) header.push_back(s.name);
  t.set_header(header);
  for (std::int64_t n : sizes) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto& s : series) {
      double val = -1;
      for (const auto& [pn, g] : s.points) {
        if (pn == n) val = g;
      }
      row.push_back(val < 0 ? "-" : fmt_gflops(val));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace gemmtune::bench
