// Section IV-A local-memory ablation: best kernel with vs without local
// memory on every processor. The paper reports that local memory matters
// on Tahiti, Kepler and Fermi (e.g. Kepler SGEMM 1440 -> ~1150 without),
// makes Cayman *slower* (barrier cost), and is immaterial on the CPUs.
#include "bench_util.hpp"
#include "common/error.hpp"
#include "tuner/search.hpp"

using namespace gemmtune;
using codegen::Precision;

int main(int argc, char** argv) {
  gemmtune::bench::init("ablation_localmem", &argc, argv);
  bench::section("Ablation: local memory usage (Section IV-A)");
  TextTable t;
  t.set_header({"Processor", "Prec", "with local", "without local",
                "without/with"});
  for (simcl::DeviceId id : simcl::evaluation_devices()) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      tuner::SearchEngine engine(id);
      double g[2] = {0, 0};
      int i = 0;
      for (bool local : {true, false}) {
        tuner::SearchOptions opt;
        opt.enumeration.max_candidates = 4000;
        opt.restrict_local = local;
        try {
          g[i] = engine.tune(prec, opt).best_gflops;
        } catch (const Error&) {
          g[i] = 0;
        }
        ++i;
      }
      t.add_row({simcl::to_string(id), to_string(prec), fmt_gflops(g[0]),
                 fmt_gflops(g[1]), strf("%.2f", g[1] / g[0])});
    }
  }
  t.print(std::cout);
  bench::note(
      "paper shape: ratio < 1 on Tahiti/Kepler/Fermi (local memory helps; "
      "Kepler SGEMM paper ratio ~0.80), ratio >= 1 on Cayman, ~1 on CPUs.");
  return 0;
}
