# Empty dependencies file for gemmtune_tool.
# This may be replaced when dependencies are built.
