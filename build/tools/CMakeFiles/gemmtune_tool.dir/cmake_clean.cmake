file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_tool.dir/gemmtune.cpp.o"
  "CMakeFiles/gemmtune_tool.dir/gemmtune.cpp.o.d"
  "gemmtune"
  "gemmtune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
