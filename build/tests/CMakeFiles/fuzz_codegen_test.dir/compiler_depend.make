# Empty compiler generated dependencies file for fuzz_codegen_test.
# This may be replaced when dependencies are built.
