file(REMOVE_RECURSE
  "CMakeFiles/fuzz_codegen_test.dir/fuzz_codegen_test.cpp.o"
  "CMakeFiles/fuzz_codegen_test.dir/fuzz_codegen_test.cpp.o.d"
  "fuzz_codegen_test"
  "fuzz_codegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
