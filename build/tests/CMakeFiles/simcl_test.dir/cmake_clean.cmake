file(REMOVE_RECURSE
  "CMakeFiles/simcl_test.dir/simcl_test.cpp.o"
  "CMakeFiles/simcl_test.dir/simcl_test.cpp.o.d"
  "simcl_test"
  "simcl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
