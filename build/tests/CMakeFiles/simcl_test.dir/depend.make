# Empty dependencies file for simcl_test.
# This may be replaced when dependencies are built.
