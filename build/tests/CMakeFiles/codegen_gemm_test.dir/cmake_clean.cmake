file(REMOVE_RECURSE
  "CMakeFiles/codegen_gemm_test.dir/codegen_gemm_test.cpp.o"
  "CMakeFiles/codegen_gemm_test.dir/codegen_gemm_test.cpp.o.d"
  "codegen_gemm_test"
  "codegen_gemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
