# Empty compiler generated dependencies file for codegen_gemm_test.
# This may be replaced when dependencies are built.
