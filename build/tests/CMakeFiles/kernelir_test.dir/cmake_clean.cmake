file(REMOVE_RECURSE
  "CMakeFiles/kernelir_test.dir/kernelir_test.cpp.o"
  "CMakeFiles/kernelir_test.dir/kernelir_test.cpp.o.d"
  "kernelir_test"
  "kernelir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernelir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
