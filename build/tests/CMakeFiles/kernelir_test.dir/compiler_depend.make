# Empty compiler generated dependencies file for kernelir_test.
# This may be replaced when dependencies are built.
