# Empty dependencies file for pack_kernel_test.
# This may be replaced when dependencies are built.
