file(REMOVE_RECURSE
  "CMakeFiles/pack_kernel_test.dir/pack_kernel_test.cpp.o"
  "CMakeFiles/pack_kernel_test.dir/pack_kernel_test.cpp.o.d"
  "pack_kernel_test"
  "pack_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
