# Empty dependencies file for direct_kernel_test.
# This may be replaced when dependencies are built.
