file(REMOVE_RECURSE
  "CMakeFiles/direct_kernel_test.dir/direct_kernel_test.cpp.o"
  "CMakeFiles/direct_kernel_test.dir/direct_kernel_test.cpp.o.d"
  "direct_kernel_test"
  "direct_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
