# Empty dependencies file for clfront_test.
# This may be replaced when dependencies are built.
