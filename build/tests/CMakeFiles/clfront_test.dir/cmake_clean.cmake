file(REMOVE_RECURSE
  "CMakeFiles/clfront_test.dir/clfront_test.cpp.o"
  "CMakeFiles/clfront_test.dir/clfront_test.cpp.o.d"
  "clfront_test"
  "clfront_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clfront_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
