file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_perfmodel.dir/calibration.cpp.o"
  "CMakeFiles/gemmtune_perfmodel.dir/calibration.cpp.o.d"
  "CMakeFiles/gemmtune_perfmodel.dir/model.cpp.o"
  "CMakeFiles/gemmtune_perfmodel.dir/model.cpp.o.d"
  "CMakeFiles/gemmtune_perfmodel.dir/statics.cpp.o"
  "CMakeFiles/gemmtune_perfmodel.dir/statics.cpp.o.d"
  "libgemmtune_perfmodel.a"
  "libgemmtune_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
