file(REMOVE_RECURSE
  "libgemmtune_perfmodel.a"
)
