# Empty dependencies file for gemmtune_perfmodel.
# This may be replaced when dependencies are built.
