file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_vendor.dir/baselines.cpp.o"
  "CMakeFiles/gemmtune_vendor.dir/baselines.cpp.o.d"
  "libgemmtune_vendor.a"
  "libgemmtune_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
