file(REMOVE_RECURSE
  "libgemmtune_vendor.a"
)
