# Empty compiler generated dependencies file for gemmtune_vendor.
# This may be replaced when dependencies are built.
