# Empty dependencies file for gemmtune_blas.
# This may be replaced when dependencies are built.
