file(REMOVE_RECURSE
  "libgemmtune_blas.a"
)
