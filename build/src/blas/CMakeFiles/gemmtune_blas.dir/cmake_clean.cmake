file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_blas.dir/gemm.cpp.o"
  "CMakeFiles/gemmtune_blas.dir/gemm.cpp.o.d"
  "libgemmtune_blas.a"
  "libgemmtune_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
