file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_hostblas.dir/hostblas.cpp.o"
  "CMakeFiles/gemmtune_hostblas.dir/hostblas.cpp.o.d"
  "libgemmtune_hostblas.a"
  "libgemmtune_hostblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_hostblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
