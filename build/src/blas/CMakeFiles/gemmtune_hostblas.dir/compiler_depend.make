# Empty compiler generated dependencies file for gemmtune_hostblas.
# This may be replaced when dependencies are built.
