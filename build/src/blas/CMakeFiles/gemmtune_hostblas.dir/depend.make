# Empty dependencies file for gemmtune_hostblas.
# This may be replaced when dependencies are built.
