file(REMOVE_RECURSE
  "libgemmtune_hostblas.a"
)
