# Empty dependencies file for gemmtune_clfront.
# This may be replaced when dependencies are built.
