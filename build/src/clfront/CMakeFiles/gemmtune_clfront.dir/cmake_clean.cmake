file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_clfront.dir/lexer.cpp.o"
  "CMakeFiles/gemmtune_clfront.dir/lexer.cpp.o.d"
  "CMakeFiles/gemmtune_clfront.dir/parser.cpp.o"
  "CMakeFiles/gemmtune_clfront.dir/parser.cpp.o.d"
  "libgemmtune_clfront.a"
  "libgemmtune_clfront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_clfront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
