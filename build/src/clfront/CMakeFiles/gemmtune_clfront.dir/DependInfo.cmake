
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clfront/lexer.cpp" "src/clfront/CMakeFiles/gemmtune_clfront.dir/lexer.cpp.o" "gcc" "src/clfront/CMakeFiles/gemmtune_clfront.dir/lexer.cpp.o.d"
  "/root/repo/src/clfront/parser.cpp" "src/clfront/CMakeFiles/gemmtune_clfront.dir/parser.cpp.o" "gcc" "src/clfront/CMakeFiles/gemmtune_clfront.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemmtune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelir/CMakeFiles/gemmtune_kernelir.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/gemmtune_simcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
