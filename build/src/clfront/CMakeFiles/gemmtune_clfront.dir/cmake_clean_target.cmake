file(REMOVE_RECURSE
  "libgemmtune_clfront.a"
)
