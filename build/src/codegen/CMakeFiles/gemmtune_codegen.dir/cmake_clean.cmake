file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_codegen.dir/gemm_generator.cpp.o"
  "CMakeFiles/gemmtune_codegen.dir/gemm_generator.cpp.o.d"
  "CMakeFiles/gemmtune_codegen.dir/pack_generator.cpp.o"
  "CMakeFiles/gemmtune_codegen.dir/pack_generator.cpp.o.d"
  "CMakeFiles/gemmtune_codegen.dir/paper_kernels.cpp.o"
  "CMakeFiles/gemmtune_codegen.dir/paper_kernels.cpp.o.d"
  "CMakeFiles/gemmtune_codegen.dir/params.cpp.o"
  "CMakeFiles/gemmtune_codegen.dir/params.cpp.o.d"
  "libgemmtune_codegen.a"
  "libgemmtune_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
