file(REMOVE_RECURSE
  "libgemmtune_codegen.a"
)
