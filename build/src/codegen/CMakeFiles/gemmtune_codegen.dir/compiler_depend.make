# Empty compiler generated dependencies file for gemmtune_codegen.
# This may be replaced when dependencies are built.
