file(REMOVE_RECURSE
  "libgemmtune_common.a"
)
