# Empty dependencies file for gemmtune_common.
# This may be replaced when dependencies are built.
