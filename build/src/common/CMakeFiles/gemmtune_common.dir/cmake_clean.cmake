file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_common.dir/json.cpp.o"
  "CMakeFiles/gemmtune_common.dir/json.cpp.o.d"
  "CMakeFiles/gemmtune_common.dir/strings.cpp.o"
  "CMakeFiles/gemmtune_common.dir/strings.cpp.o.d"
  "CMakeFiles/gemmtune_common.dir/table.cpp.o"
  "CMakeFiles/gemmtune_common.dir/table.cpp.o.d"
  "libgemmtune_common.a"
  "libgemmtune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
