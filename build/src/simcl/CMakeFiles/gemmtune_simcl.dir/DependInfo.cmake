
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcl/device_registry.cpp" "src/simcl/CMakeFiles/gemmtune_simcl.dir/device_registry.cpp.o" "gcc" "src/simcl/CMakeFiles/gemmtune_simcl.dir/device_registry.cpp.o.d"
  "/root/repo/src/simcl/runtime.cpp" "src/simcl/CMakeFiles/gemmtune_simcl.dir/runtime.cpp.o" "gcc" "src/simcl/CMakeFiles/gemmtune_simcl.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemmtune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
