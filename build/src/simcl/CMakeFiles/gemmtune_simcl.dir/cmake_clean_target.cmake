file(REMOVE_RECURSE
  "libgemmtune_simcl.a"
)
