# Empty dependencies file for gemmtune_simcl.
# This may be replaced when dependencies are built.
