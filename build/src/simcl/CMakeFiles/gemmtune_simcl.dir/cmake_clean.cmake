file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_simcl.dir/device_registry.cpp.o"
  "CMakeFiles/gemmtune_simcl.dir/device_registry.cpp.o.d"
  "CMakeFiles/gemmtune_simcl.dir/runtime.cpp.o"
  "CMakeFiles/gemmtune_simcl.dir/runtime.cpp.o.d"
  "libgemmtune_simcl.a"
  "libgemmtune_simcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_simcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
