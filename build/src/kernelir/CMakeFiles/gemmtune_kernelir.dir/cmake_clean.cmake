file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_kernelir.dir/emit.cpp.o"
  "CMakeFiles/gemmtune_kernelir.dir/emit.cpp.o.d"
  "CMakeFiles/gemmtune_kernelir.dir/interp.cpp.o"
  "CMakeFiles/gemmtune_kernelir.dir/interp.cpp.o.d"
  "CMakeFiles/gemmtune_kernelir.dir/kernel.cpp.o"
  "CMakeFiles/gemmtune_kernelir.dir/kernel.cpp.o.d"
  "libgemmtune_kernelir.a"
  "libgemmtune_kernelir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_kernelir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
