
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelir/emit.cpp" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/emit.cpp.o" "gcc" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/emit.cpp.o.d"
  "/root/repo/src/kernelir/interp.cpp" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/interp.cpp.o" "gcc" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/interp.cpp.o.d"
  "/root/repo/src/kernelir/kernel.cpp" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/kernel.cpp.o" "gcc" "src/kernelir/CMakeFiles/gemmtune_kernelir.dir/kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemmtune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/gemmtune_simcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
