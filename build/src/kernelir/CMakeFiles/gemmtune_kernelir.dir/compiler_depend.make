# Empty compiler generated dependencies file for gemmtune_kernelir.
# This may be replaced when dependencies are built.
