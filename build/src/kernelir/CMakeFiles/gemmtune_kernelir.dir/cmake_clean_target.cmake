file(REMOVE_RECURSE
  "libgemmtune_kernelir.a"
)
