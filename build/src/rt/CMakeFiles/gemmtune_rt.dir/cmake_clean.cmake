file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_rt.dir/program.cpp.o"
  "CMakeFiles/gemmtune_rt.dir/program.cpp.o.d"
  "libgemmtune_rt.a"
  "libgemmtune_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
