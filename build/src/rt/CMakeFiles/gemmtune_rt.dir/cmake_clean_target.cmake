file(REMOVE_RECURSE
  "libgemmtune_rt.a"
)
