# Empty compiler generated dependencies file for gemmtune_rt.
# This may be replaced when dependencies are built.
