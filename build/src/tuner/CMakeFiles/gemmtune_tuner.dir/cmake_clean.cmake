file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_tuner.dir/candidates.cpp.o"
  "CMakeFiles/gemmtune_tuner.dir/candidates.cpp.o.d"
  "CMakeFiles/gemmtune_tuner.dir/results_db.cpp.o"
  "CMakeFiles/gemmtune_tuner.dir/results_db.cpp.o.d"
  "CMakeFiles/gemmtune_tuner.dir/search.cpp.o"
  "CMakeFiles/gemmtune_tuner.dir/search.cpp.o.d"
  "libgemmtune_tuner.a"
  "libgemmtune_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
