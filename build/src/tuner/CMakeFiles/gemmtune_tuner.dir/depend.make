# Empty dependencies file for gemmtune_tuner.
# This may be replaced when dependencies are built.
