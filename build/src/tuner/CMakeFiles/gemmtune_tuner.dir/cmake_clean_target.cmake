file(REMOVE_RECURSE
  "libgemmtune_tuner.a"
)
