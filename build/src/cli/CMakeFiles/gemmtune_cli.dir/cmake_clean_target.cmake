file(REMOVE_RECURSE
  "libgemmtune_cli.a"
)
