# Empty compiler generated dependencies file for gemmtune_cli.
# This may be replaced when dependencies are built.
