file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_cli.dir/cli.cpp.o"
  "CMakeFiles/gemmtune_cli.dir/cli.cpp.o.d"
  "libgemmtune_cli.a"
  "libgemmtune_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
