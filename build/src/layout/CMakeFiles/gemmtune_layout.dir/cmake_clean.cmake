file(REMOVE_RECURSE
  "CMakeFiles/gemmtune_layout.dir/packing.cpp.o"
  "CMakeFiles/gemmtune_layout.dir/packing.cpp.o.d"
  "libgemmtune_layout.a"
  "libgemmtune_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemmtune_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
