file(REMOVE_RECURSE
  "libgemmtune_layout.a"
)
