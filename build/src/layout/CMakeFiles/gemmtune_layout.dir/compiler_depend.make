# Empty compiler generated dependencies file for gemmtune_layout.
# This may be replaced when dependencies are built.
