# Empty dependencies file for blocked_lu.
# This may be replaced when dependencies are built.
