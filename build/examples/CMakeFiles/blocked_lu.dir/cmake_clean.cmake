file(REMOVE_RECURSE
  "CMakeFiles/blocked_lu.dir/blocked_lu.cpp.o"
  "CMakeFiles/blocked_lu.dir/blocked_lu.cpp.o.d"
  "blocked_lu"
  "blocked_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
