# Empty dependencies file for opencl_host_flow.
# This may be replaced when dependencies are built.
