file(REMOVE_RECURSE
  "CMakeFiles/opencl_host_flow.dir/opencl_host_flow.cpp.o"
  "CMakeFiles/opencl_host_flow.dir/opencl_host_flow.cpp.o.d"
  "opencl_host_flow"
  "opencl_host_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opencl_host_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
