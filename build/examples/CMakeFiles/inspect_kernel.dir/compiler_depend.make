# Empty compiler generated dependencies file for inspect_kernel.
# This may be replaced when dependencies are built.
