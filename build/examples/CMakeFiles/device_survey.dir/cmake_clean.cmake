file(REMOVE_RECURSE
  "CMakeFiles/device_survey.dir/device_survey.cpp.o"
  "CMakeFiles/device_survey.dir/device_survey.cpp.o.d"
  "device_survey"
  "device_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
