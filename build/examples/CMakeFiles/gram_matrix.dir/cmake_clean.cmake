file(REMOVE_RECURSE
  "CMakeFiles/gram_matrix.dir/gram_matrix.cpp.o"
  "CMakeFiles/gram_matrix.dir/gram_matrix.cpp.o.d"
  "gram_matrix"
  "gram_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gram_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
