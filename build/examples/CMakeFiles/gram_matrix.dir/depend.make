# Empty dependencies file for gram_matrix.
# This may be replaced when dependencies are built.
