# Empty compiler generated dependencies file for autotune_device.
# This may be replaced when dependencies are built.
