file(REMOVE_RECURSE
  "CMakeFiles/autotune_device.dir/autotune_device.cpp.o"
  "CMakeFiles/autotune_device.dir/autotune_device.cpp.o.d"
  "autotune_device"
  "autotune_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
