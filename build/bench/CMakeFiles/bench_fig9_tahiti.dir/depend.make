# Empty dependencies file for bench_fig9_tahiti.
# This may be replaced when dependencies are built.
