file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tahiti.dir/bench_fig9_tahiti.cpp.o"
  "CMakeFiles/bench_fig9_tahiti.dir/bench_fig9_tahiti.cpp.o.d"
  "bench_fig9_tahiti"
  "bench_fig9_tahiti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tahiti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
