# Empty dependencies file for bench_table3_impl_vs_vendor.
# This may be replaced when dependencies are built.
