file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_impl_vs_vendor.dir/bench_table3_impl_vs_vendor.cpp.o"
  "CMakeFiles/bench_table3_impl_vs_vendor.dir/bench_table3_impl_vs_vendor.cpp.o.d"
  "bench_table3_impl_vs_vendor"
  "bench_table3_impl_vs_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_impl_vs_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
