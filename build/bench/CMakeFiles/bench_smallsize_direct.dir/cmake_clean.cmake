file(REMOVE_RECURSE
  "CMakeFiles/bench_smallsize_direct.dir/bench_smallsize_direct.cpp.o"
  "CMakeFiles/bench_smallsize_direct.dir/bench_smallsize_direct.cpp.o.d"
  "bench_smallsize_direct"
  "bench_smallsize_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallsize_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
