# Empty compiler generated dependencies file for bench_smallsize_direct.
# This may be replaced when dependencies are built.
