# Empty dependencies file for bench_ablation_unroll_vw.
# This may be replaced when dependencies are built.
