file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unroll_vw.dir/bench_ablation_unroll_vw.cpp.o"
  "CMakeFiles/bench_ablation_unroll_vw.dir/bench_ablation_unroll_vw.cpp.o.d"
  "bench_ablation_unroll_vw"
  "bench_ablation_unroll_vw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unroll_vw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
