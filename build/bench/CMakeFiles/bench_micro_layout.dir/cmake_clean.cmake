file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_layout.dir/bench_micro_layout.cpp.o"
  "CMakeFiles/bench_micro_layout.dir/bench_micro_layout.cpp.o.d"
  "bench_micro_layout"
  "bench_micro_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
