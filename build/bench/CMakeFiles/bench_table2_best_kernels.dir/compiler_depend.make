# Empty compiler generated dependencies file for bench_table2_best_kernels.
# This may be replaced when dependencies are built.
