# Empty compiler generated dependencies file for bench_cypress_comparison.
# This may be replaced when dependencies are built.
