file(REMOVE_RECURSE
  "CMakeFiles/bench_cypress_comparison.dir/bench_cypress_comparison.cpp.o"
  "CMakeFiles/bench_cypress_comparison.dir/bench_cypress_comparison.cpp.o.d"
  "bench_cypress_comparison"
  "bench_cypress_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cypress_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
