
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_kernel_perf.cpp" "bench/CMakeFiles/bench_fig7_kernel_perf.dir/bench_fig7_kernel_perf.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_kernel_perf.dir/bench_fig7_kernel_perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/gemmtune_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/gemmtune_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gemmtune_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/gemmtune_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/kernelir/CMakeFiles/gemmtune_kernelir.dir/DependInfo.cmake"
  "/root/repo/build/src/simcl/CMakeFiles/gemmtune_simcl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gemmtune_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
