# Empty dependencies file for bench_fig11_sandybridge.
# This may be replaced when dependencies are built.
