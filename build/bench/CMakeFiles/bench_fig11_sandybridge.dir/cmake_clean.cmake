file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sandybridge.dir/bench_fig11_sandybridge.cpp.o"
  "CMakeFiles/bench_fig11_sandybridge.dir/bench_fig11_sandybridge.cpp.o.d"
  "bench_fig11_sandybridge"
  "bench_fig11_sandybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sandybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
