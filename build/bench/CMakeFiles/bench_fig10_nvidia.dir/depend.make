# Empty dependencies file for bench_fig10_nvidia.
# This may be replaced when dependencies are built.
