file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_nvidia.dir/bench_fig10_nvidia.cpp.o"
  "CMakeFiles/bench_fig10_nvidia.dir/bench_fig10_nvidia.cpp.o.d"
  "bench_fig10_nvidia"
  "bench_fig10_nvidia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
