#include "perfmodel/statics.hpp"

#include "common/error.hpp"

namespace gemmtune::perfmodel {

KernelStatics analyze(const codegen::KernelParams& p, std::int64_t Mp,
                      std::int64_t Np, std::int64_t Kp) {
  check(Mp % p.Mwg == 0 && Np % p.Nwg == 0 && Kp % p.Kwg == 0,
        "analyze: problem not padded to blocking factors");
  const auto es = static_cast<std::uint64_t>(element_bytes(p.prec));
  KernelStatics s;
  s.work_groups = (Mp / p.Mwg) * (Np / p.Nwg);
  s.work_items = s.work_groups * p.wg_size();
  s.tiles = Kp / p.Kwg;

  const auto MN = static_cast<std::uint64_t>(Mp) *
                  static_cast<std::uint64_t>(Np);
  const auto MNK = MN * static_cast<std::uint64_t>(Kp);
  const auto items = static_cast<std::uint64_t>(s.work_items);

  // Micro-kernel: one vw-wide mad per (row, column-chunk, k); merge: one
  // mad plus one multiply per element.
  s.flops = 2 * MNK + 3 * MN;
  s.mads = items *
           (static_cast<std::uint64_t>(Kp) + 1) *
           static_cast<std::uint64_t>(p.Mwi()) *
           static_cast<std::uint64_t>(p.Nwi()) /
           static_cast<std::uint64_t>(p.vw);

  // A operand: with local sharing each work-group loads each tile once
  // (Kwg*Mwg elements, identically for BA's fill, PL's stage and DB's two
  // half-fills); without sharing every work-item streams its own Mwi rows.
  if (p.share_a) {
    s.a_global_load_bytes = es * MNK / static_cast<std::uint64_t>(p.Nwg);
    s.local_store_bytes += es * MNK / static_cast<std::uint64_t>(p.Nwg);
    s.local_load_bytes += es * items * static_cast<std::uint64_t>(Kp) *
                          static_cast<std::uint64_t>(p.Mwi());
  } else {
    s.a_global_load_bytes = es * MNK / static_cast<std::uint64_t>(p.Nwi());
  }
  if (p.share_b) {
    s.b_global_load_bytes = es * MNK / static_cast<std::uint64_t>(p.Mwg);
    s.local_store_bytes += es * MNK / static_cast<std::uint64_t>(p.Mwg);
    s.local_load_bytes += es * items * static_cast<std::uint64_t>(Kp) *
                          static_cast<std::uint64_t>(p.Nwi());
  } else {
    s.b_global_load_bytes = es * MNK / static_cast<std::uint64_t>(p.Mwi());
  }

  // Merge traffic.
  s.c_global_load_bytes = es * MN;
  s.c_global_store_bytes = es * MN;

  // Barrier executions per work-group, per algorithm (matching the
  // generator's Figs. 4-6 structure exactly).
  std::uint64_t per_wg = 0;
  const auto T = static_cast<std::uint64_t>(s.tiles);
  switch (p.algo) {
    case codegen::Algorithm::BA:
      per_wg = (p.share_a || p.share_b) ? 2 * T : 0;
      break;
    case codegen::Algorithm::PL:
      per_wg = 3 * T - 2;
      break;
    case codegen::Algorithm::DB:
      per_wg = 2 * T;
      break;
  }
  s.barriers = per_wg * static_cast<std::uint64_t>(s.work_groups);
  return s;
}

}  // namespace gemmtune::perfmodel
