// Analytic performance model for generated GEMM kernels on the simulated
// devices.
//
// The model combines the mechanisms the paper identifies:
//  * instruction issue: mads vs. staging loads vs. loop overhead (the Kwi
//    unrolling parameter, Section III-A),
//  * vector-width match to the device ALUs (Section III-B),
//  * work-group/wavefront quantization,
//  * occupancy limited by registers and local memory, and the resulting
//    latency hiding,
//  * global-memory traffic with cache-captured reuse when local memory is
//    not used, layout-dependent coalescing, and bank-conflict collapse for
//    row-major pitches at the conflict stride (Section IV-A),
//  * local-memory bandwidth and barrier cost (Cayman's weakness),
//  * per-algorithm overlap: BA relies on multi-work-group occupancy, PL
//    overlaps global loads with compute in-thread, DB overlaps via the
//    double-buffered halves (Section III-E).
//
// The single per-device/precision arithmetic-efficiency anchor is solved so
// the paper's Table II kernel reproduces the paper's GFlop/s; everything
// else creates the *relative* cost surface the tuner searches.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "codegen/params.hpp"
#include "perfmodel/calibration.hpp"
#include "perfmodel/statics.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::perfmodel {

/// Result of timing one kernel launch.
struct Estimate {
  bool ok = false;
  std::string reason;  ///< failure reason when !ok

  double seconds = 0;
  double gflops = 0;  ///< 2*M*N*K / seconds (the paper's metric)

  // Breakdown (exposed for tests, ablation benches and debugging).
  double t_compute = 0;
  double t_global = 0;
  double t_local = 0;
  double t_barrier = 0;
  double occupancy = 0;  ///< concurrent work-groups per compute unit
  double hide = 0;       ///< latency-hiding factor in [0, 1]
  double issue_eff = 0;
  double vec_eff = 0;
  double wg_eff = 0;
  double quant = 0;      ///< wave quantization factor in (0, 1]
};

/// Performance model bound to one simulated device.
///
/// Thread safety: the model is immutable after construction (the Table II
/// anchors are solved eagerly in the constructor), so all const member
/// functions may be called concurrently from any number of threads.
/// kernel_estimate memoizes per (device, params, M, N, K) in a per-thread
/// cache — no locks on the hot path — so repeated stage-1/stage-2
/// evaluations of the same point are free.
class PerfModel {
 public:
  explicit PerfModel(simcl::DeviceId id);

  simcl::DeviceId device_id() const { return id_; }
  const simcl::DeviceSpec& spec() const { return dev_; }
  const DeviceCalib& calib() const { return cal_; }

  /// Times the A^T*B kernel on a padded (Mp, Np, Kp) problem. Memoized in
  /// a per-thread cache; the model is a pure function of its inputs, so
  /// cached and uncached results are identical.
  Estimate kernel_estimate(const codegen::KernelParams& p, std::int64_t Mp,
                           std::int64_t Np, std::int64_t Kp) const;

  /// Drops the calling thread's kernel_estimate memo cache (used by
  /// benchmarks that must time cold evaluations).
  static void clear_thread_cache();

  /// GFlop/s on a square padded problem (0 when the kernel is infeasible).
  double kernel_gflops(const codegen::KernelParams& p, std::int64_t n) const;

  /// Duration of a pack/copy kernel moving `bytes_moved` bytes through
  /// global memory (read + write), the O(N^2) overhead of Section IV-B.
  double copy_seconds(std::uint64_t bytes_moved) const;

  /// The solved arithmetic-efficiency anchor (exposed for tests).
  double alu_anchor(codegen::Precision prec) const;

  /// Problem size the paper's stage-1 search measures at on this device:
  /// the largest multiple of LCM(Mwg,Nwg,Kwg) not exceeding 4096 (GPU) or
  /// 1536 (CPU).
  std::int64_t stage1_size(const codegen::KernelParams& p) const;

 private:
  /// The parameter-dependent compute-efficiency factors. `goodness` is the
  /// part a better-tuned kernel could raise (issue scheduling, work-group
  /// shape); vec and reg are penalties that always apply.
  struct EffFactors {
    bool ok = true;  ///< false: register allocation failed
    double issue = 0, vec = 0, reg = 0, wg = 0;
    double goodness() const { return issue * wg; }
    double product() const { return issue * vec * reg * wg; }
  };
  EffFactors factors(const codegen::KernelParams& p) const;

  Estimate estimate_with_anchor(const codegen::KernelParams& p,
                                std::int64_t Mp, std::int64_t Np,
                                std::int64_t Kp, double anchor) const;
  double solve_anchor(codegen::Precision prec) const;

  simcl::DeviceId id_;
  const simcl::DeviceSpec& dev_;
  const DeviceCalib& cal_;
  /// Ceiling on reported GFlop/s, per precision: 5% above the Table II
  /// maximum (and never above the boosted peak). No real kernel on this
  /// hardware/compiler stack reached more, so the model must not either.
  std::array<double, 2> gflops_ceiling_{1e30, 1e30};
  /// issue*wg goodness of the Table II anchor kernel — treated as this
  /// hardware/compiler stack's demonstrated compute frontier. Penalty
  /// factors (vector mismatch, register spills) apply on top.
  std::array<double, 2> seed_goodness_{1.0, 1.0};
  /// Solved eagerly at construction so const methods stay lock-free.
  std::array<double, 2> anchors_{-1.0, -1.0};
};

}  // namespace gemmtune::perfmodel
