// Per-device calibration knobs for the performance model.
//
// Every knob is tied to a mechanism the paper names; see calibration.cpp
// for the mapping from each value to the sentence in the paper that
// motivates it. The arithmetic-efficiency anchor itself is not a knob: the
// model solves it so that the paper's Table II kernel scores the paper's
// GFlop/s on each device (model.cpp).
#pragma once

#include "codegen/params.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::perfmodel {

struct DeviceCalib {
  /// Vector width needed to fill the ALUs (VLIW slots on Cayman/Cypress,
  /// AVX/FMA lanes on the CPUs, 1 on scalar-ALU GPUs).
  int pref_vw_dp = 1;
  int pref_vw_sp = 1;

  /// Fraction of inter-work-item operand reuse the cache hierarchy captures
  /// when local memory is NOT used for a matrix (1 = caches as good as
  /// explicit sharing; drives the paper's local-memory ablations).
  double cache_eff = 0.9;

  /// Global-memory bandwidth efficiency for row-major operands relative to
  /// block-major (CBL/RBL always run at 1.0).
  double rm_bw_eff = 0.95;
  /// Extra multiplier when a row-major pitch hits the memory-channel
  /// conflict stride (paper: row-major Tahiti DGEMM collapses at sizes that
  /// are multiples of 2048).
  double rm_conflict_eff = 1.0;
  std::int64_t conflict_stride_bytes = 0;  ///< 0 = no conflict modelling

  /// Local-memory bandwidth per compute unit (bytes per clock).
  double lds_bytes_per_clock = 128;
  /// L1/cache bandwidth per compute unit (bytes per clock): the path
  /// unshared operands stream through when local memory is not used. On
  /// CPUs this equals the local-memory bandwidth (local memory *is* cache),
  /// which is why the paper sees no local-memory effect there.
  double l1_bytes_per_clock = 64;
  /// Cost of one work-group barrier in core clocks.
  double barrier_cycles = 60;

  /// Resident work-items per compute unit needed to hide latencies fully.
  double threads_for_latency = 256;
  /// Scheduler cap on concurrent work-groups per compute unit.
  int max_wgs_per_cu = 8;

  /// Instruction-issue weights relative to one mad: a staging load from
  /// local memory, a staging load straight from global memory (64-bit
  /// addressing plus long-latency scheduling make these dearer on GPUs),
  /// and fixed per-pwi-iteration loop overhead.
  double issue_load_cost = 0.3;
  double issue_gload_cost = 0.4;
  double loop_overhead = 4.0;

  /// Global-memory round-trip latency (one barrier-fenced tile fill pays
  /// roughly one of these per work-group per tile unless hidden by the
  /// algorithm or by co-resident work-groups).
  double mem_latency_us = 0.5;

  /// Intra-work-item overlap quality of the PL and DB algorithms
  /// (fraction of the non-dominant time hidden even at occupancy 1).
  double pl_overlap = 0.85;
  double db_overlap = 0.75;

  /// Hardware limit on 32-bit registers per work-item (GCN: 256 VGPRs,
  /// Fermi: 63, Kepler: 255). Exceeding it forces spills, modelled as a
  /// proportional issue slowdown. 0 disables the limit (CPUs spill to L1
  /// nearly for free).
  int max_regs_per_thread = 0;
  /// How far past the register limit a kernel may go before it fails
  /// outright (spills within the window run with a proportional penalty).
  /// AMD scratch spills are fatal for performance (1.0 = hard limit);
  /// NVIDIA spills go to cached local memory (window up to 2x).
  double spill_tolerance = 1.0;

  /// Slowdown of a copy-free kernel reading the column-major host operands
  /// in place: large-stride accesses defeat coalescing on GPUs; CPU caches
  /// tolerate them far better.
  double direct_penalty = 1.25;

  /// Device quirk: the paper reports DGEMM PL kernels "always fail to
  /// execute on the Bulldozer".
  bool pl_dgemm_fails = false;

  int pref_vw(codegen::Precision p) const {
    return p == codegen::Precision::DP ? pref_vw_dp : pref_vw_sp;
  }
};

/// Calibration for one simulated device.
const DeviceCalib& device_calib(simcl::DeviceId id);

}  // namespace gemmtune::perfmodel
