// Static work analysis of a generated GEMM kernel.
//
// Computes, from the parameter set and padded problem size alone, exactly
// the dynamic counts the interpreter would report: flops, bytes loaded and
// stored per address space, barrier executions. The unit test
// perfmodel_statics_test cross-checks these formulas against interpreted
// launches, so the performance model demonstrably times the kernels the
// generator emits.
#pragma once

#include <cstdint>

#include "codegen/params.hpp"

namespace gemmtune::perfmodel {

/// Exact dynamic counts for one kernel launch on a padded (Mp, Np, Kp)
/// problem. All byte counts are raw program counts (no cache modelling).
struct KernelStatics {
  std::int64_t work_groups = 0;
  std::int64_t work_items = 0;
  std::int64_t tiles = 0;  ///< K / Kwg outer iterations

  std::uint64_t flops = 0;  ///< 2*M*N*K micro-kernel + 3*M*N merge
  std::uint64_t mads = 0;

  std::uint64_t a_global_load_bytes = 0;
  std::uint64_t b_global_load_bytes = 0;
  std::uint64_t c_global_load_bytes = 0;
  std::uint64_t c_global_store_bytes = 0;
  std::uint64_t local_load_bytes = 0;
  std::uint64_t local_store_bytes = 0;
  std::uint64_t barriers = 0;  ///< total barrier executions (all groups)

  std::uint64_t global_load_bytes() const {
    return a_global_load_bytes + b_global_load_bytes + c_global_load_bytes;
  }
};

/// Analyzes `p` on the padded problem; extents must be multiples of the
/// blocking factors.
KernelStatics analyze(const codegen::KernelParams& p, std::int64_t Mp,
                      std::int64_t Np, std::int64_t Kp);

}  // namespace gemmtune::perfmodel
