#include "perfmodel/calibration.hpp"

#include <array>

#include "common/error.hpp"

namespace gemmtune::perfmodel {

namespace {

// All per-device fudge lives here, each value annotated with the paper
// observation it encodes.

DeviceCalib tahiti() {
  DeviceCalib c;
  c.pref_vw_dp = 1;  // GCN scalar ALUs; vw mainly affects memory ops
  c.pref_vw_sp = 1;
  c.cache_eff = 0.95;    // "local memory usage affects performance
                         // improvement" — noticeable but not catastrophic
  c.rm_bw_eff = 0.97;    // row-major only 3% behind block-major (863->837)
  c.rm_conflict_eff = 0.35;  // "drastically deteriorated ... multiples of
                             // 2048 ... memory bank conflicts"
  c.conflict_stride_bytes = 2048 * 8;
  c.lds_bytes_per_clock = 128;
  c.barrier_cycles = 60;
  c.threads_for_latency = 256;  // 4 wavefronts per CU
  c.max_wgs_per_cu = 8;
  c.max_regs_per_thread = 256;  // GCN VGPR file
  c.l1_bytes_per_clock = 128;   // 64 B/clk L1 plus intra-wavefront
                                // broadcast of identical addresses
  return c;
}

DeviceCalib cayman() {
  DeviceCalib c;
  c.pref_vw_dp = 2;  // VLIW4: packed ops needed to fill the slots
  c.pref_vw_sp = 4;
  c.cache_eff = 0.98;  // "Cayman runs slower when local memory is
                       // utilized" — caches already capture the reuse...
  c.barrier_cycles = 500;  // ...and its barriers are expensive
  c.rm_bw_eff = 0.95;
  c.rm_conflict_eff = 0.4;
  c.conflict_stride_bytes = 2048 * 8;
  c.lds_bytes_per_clock = 128;
  c.threads_for_latency = 256;
  c.max_wgs_per_cu = 8;
  c.max_regs_per_thread = 256;  // VLIW register file per thread
  return c;
}

DeviceCalib kepler() {
  DeviceCalib c;
  c.pref_vw_dp = 1;
  c.pref_vw_sp = 1;
  c.cache_eff = 0.80;  // SGEMM drops 1440 -> ~1150 without local memory
  c.rm_bw_eff = 0.95;
  c.lds_bytes_per_clock = 256;  // SMX shared memory: 32 banks x 8 bytes
  c.l1_bytes_per_clock = 56;    // Kepler global loads bypass L1; the
                                // read-only/texture path is much narrower
  c.barrier_cycles = 40;
  c.threads_for_latency = 512;  // SMX needs many resident warps
  c.max_wgs_per_cu = 16;
  c.max_regs_per_thread = 255;
  c.spill_tolerance = 2.0;  // spills land in cached local memory
  return c;
}

DeviceCalib fermi() {
  DeviceCalib c;
  c.pref_vw_dp = 1;
  c.pref_vw_sp = 1;
  c.l1_bytes_per_clock = 128;
  c.cache_eff = 0.82;  // local memory matters on Fermi (Section IV-A)
  c.rm_bw_eff = 0.93;
  c.lds_bytes_per_clock = 128;
  c.barrier_cycles = 60;
  c.threads_for_latency = 512;  // big global-memory latency; PL wins DGEMM
  c.max_wgs_per_cu = 8;
  c.max_regs_per_thread = 63;  // Fermi's hard per-thread limit
  c.spill_tolerance = 2.0;     // spills land in L1
  return c;
}

DeviceCalib sandy_bridge() {
  DeviceCalib c;
  c.pref_vw_dp = 4;  // AVX: 4 doubles / 8 floats per vector op
  c.pref_vw_sp = 8;
  c.cache_eff = 0.99;  // "no prominent performance difference ... on the
                       // CPUs depending on the local memory usage"
  c.rm_bw_eff = 0.98;
  c.lds_bytes_per_clock = 32;   // "local" memory is ordinary cached memory
  c.l1_bytes_per_clock = 32;    // ...so the cache path is the same path
  c.issue_gload_cost = 0.5;     // and global loads cost like any load
  c.barrier_cycles = 400;       // software barrier in the CPU runtime
  c.threads_for_latency = 1;    // out-of-order cores self-hide latency
  c.mem_latency_us = 0.08;      // DRAM latency on a prefetching CPU core
  c.direct_penalty = 1.15;      // caches absorb the strided accesses
  c.max_wgs_per_cu = 2;
  c.loop_overhead = 6.0;        // immature CPU OpenCL compilers
  c.issue_load_cost = 0.5;
  return c;
}

DeviceCalib bulldozer() {
  DeviceCalib c = sandy_bridge();
  c.pref_vw_dp = 2;  // FMA4 on 128-bit pipes: 2 doubles / 4 floats
  c.pref_vw_sp = 4;
  c.barrier_cycles = 600;
  c.pl_dgemm_fails = true;  // "DGEMM kernels with PL algorithm always fail
                            // to execute on the Bulldozer"
  return c;
}

DeviceCalib cypress() {
  DeviceCalib c = cayman();  // VLIW5 predecessor of Cayman
  c.pref_vw_sp = 4;
  c.pref_vw_dp = 2;
  c.barrier_cycles = 450;
  return c;
}

const std::array<DeviceCalib, 7>& table() {
  static const std::array<DeviceCalib, 7> t = {
      tahiti(), cayman(), kepler(), fermi(), sandy_bridge(), bulldozer(),
      cypress()};
  return t;
}

}  // namespace

const DeviceCalib& device_calib(simcl::DeviceId id) {
  return table()[static_cast<std::size_t>(id)];
}

}  // namespace gemmtune::perfmodel
