#include "perfmodel/model.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/intmath.hpp"
#include "common/strings.hpp"
#include "trace/trace.hpp"

namespace gemmtune::perfmodel {

using codegen::Algorithm;
using codegen::KernelParams;
using codegen::Precision;

PerfModel::EffFactors PerfModel::factors(const KernelParams& p) const {
  EffFactors f;
  // Instruction issue: staging loads from local memory when the matrix is
  // shared, straight from global memory otherwise (dearer on GPUs), plus
  // amortized local-fill instructions and the Kwi-controlled loop overhead.
  const double mads_per_kk =
      static_cast<double>(p.Mwi()) * p.Nwi() / p.vw;
  const double a_loads = static_cast<double>(p.Mwi()) / p.vw;
  const double b_loads = static_cast<double>(p.Nwi()) / p.vw;
  double load_cost =
      a_loads * (p.share_a ? cal_.issue_load_cost : cal_.issue_gload_cost) +
      b_loads * (p.share_b ? cal_.issue_load_cost : cal_.issue_gload_cost);
  if (p.share_a)
    load_cost += cal_.issue_load_cost * 2.0 * p.Mwg / p.wg_size();
  if (p.share_b)
    load_cost += cal_.issue_load_cost * 2.0 * p.Nwg / p.wg_size();
  f.issue = mads_per_kk /
            (mads_per_kk + load_cost + cal_.loop_overhead / p.Kwi);
  // Vector-width match to the device ALUs.
  f.vec = std::min(1.0, static_cast<double>(p.vw) / cal_.pref_vw(p.prec));
  // Per-thread register limit: spills slow issue in proportion to the
  // overflow; beyond the tolerance window the kernel fails outright.
  f.reg = 1.0;
  if (cal_.max_regs_per_thread > 0) {
    const double regs32 = static_cast<double>(p.private_elements()) *
                              (element_bytes(p.prec) / 4.0) +
                          16;  // addressing temporaries
    if (regs32 > cal_.max_regs_per_thread * cal_.spill_tolerance) {
      f.ok = false;
      return f;
    }
    if (regs32 > cal_.max_regs_per_thread)
      f.reg = cal_.max_regs_per_thread / regs32;
  }
  // Wavefront quantization of the work-group size.
  f.wg = p.wg_size() /
         static_cast<double>(round_up(p.wg_size(), dev_.simd_width));
  return f;
}

PerfModel::PerfModel(simcl::DeviceId id)
    : id_(id), dev_(simcl::device_spec(id)), cal_(device_calib(id)) {
  for (Precision prec : {Precision::DP, Precision::SP}) {
    const auto ref = codegen::table2_entry(id, prec);
    const std::size_t i = prec == Precision::DP ? 0 : 1;
    const double peak = dev_.peak_gflops(prec == Precision::DP);
    gflops_ceiling_[i] = std::min(peak, 1.05 * ref.max_gflops);
    const EffFactors f = factors(ref.params);
    check(f.ok, "PerfModel: Table II kernel fails register allocation");
    seed_goodness_[i] = f.goodness();
    // Solve the anchor now (ceiling and goodness for this precision are
    // already in place) so the model is immutable after construction.
    anchors_[i] = solve_anchor(prec);
  }
}

std::int64_t PerfModel::stage1_size(const KernelParams& p) const {
  const std::int64_t lcm = lcm3(p.Mwg, p.Nwg, p.Kwg);
  const std::int64_t cap = dev_.is_gpu() ? 4096 : 1536;
  return largest_multiple_le(cap, lcm);
}

double PerfModel::copy_seconds(std::uint64_t bytes_moved) const {
  const double bw = dev_.global_bw_gbs * 1e9;
  return dev_.kernel_launch_us * 1e-6 +
         2.0 * static_cast<double>(bytes_moved) / bw;
}

Estimate PerfModel::estimate_with_anchor(const KernelParams& p,
                                         std::int64_t Mp, std::int64_t Np,
                                         std::int64_t Kp,
                                         double anchor) const {
  Estimate e;
  // Device quirks first: some kernels fail at run time on real hardware.
  if (cal_.pl_dgemm_fails && p.algo == Algorithm::PL &&
      p.prec == Precision::DP) {
    e.reason = "PL DGEMM kernels fail to execute on this device";
    return e;
  }
  if (auto why = codegen::validate(p, dev_)) {
    e.reason = *why;
    return e;
  }
  if (Mp % p.Mwg != 0 || Np % p.Nwg != 0 || Kp % p.Kwg != 0) {
    e.reason = "problem size not padded to blocking factors";
    return e;
  }

  const KernelStatics st = analyze(p, Mp, Np, Kp);
  const auto es = static_cast<double>(element_bytes(p.prec));
  const bool dp = p.prec == Precision::DP;
  const double clock_hz = dev_.clock_ghz * 1e9 * dev_.boost_factor;

  const EffFactors f = factors(p);
  if (!f.ok) {
    e.reason = "register allocation failed (spill beyond tolerance)";
    return e;
  }
  e.issue_eff = f.issue;
  e.vec_eff = f.vec;
  e.wg_eff = f.wg;
  const double reg_eff = f.reg;
  const double wg = p.wg_size();

  // --- occupancy -------------------------------------------------------------
  // Live private data plus ~16 32-bit addressing temporaries per item.
  const double priv_bytes_wg =
      (static_cast<double>(p.private_elements()) * es + 64.0) * wg;
  double occ_reg = static_cast<double>(cal_.max_wgs_per_cu);
  if (dev_.is_gpu()) {
    occ_reg = std::floor(dev_.register_bytes_per_cu() / priv_bytes_wg);
    if (occ_reg < 1) {
      e.reason = "register file exceeded";
      return e;
    }
  }
  double occ_lds = static_cast<double>(cal_.max_wgs_per_cu);
  const double lds_bytes = static_cast<double>(p.local_mem_bytes());
  if (lds_bytes > 0)
    occ_lds = std::floor(dev_.local_mem_bytes() / lds_bytes);
  if (occ_lds < 1) {
    e.reason = "local memory exceeded";
    return e;
  }
  e.occupancy = std::max(
      1.0, std::min({occ_reg, occ_lds,
                     static_cast<double>(cal_.max_wgs_per_cu)}));

  // --- latency hiding ---------------------------------------------------------
  // Resident work-items hide memory latency; deep work-item blocking adds
  // instruction-level parallelism that multiplies the effective depth
  // (Volkov-style ILP hiding), with diminishing returns past a small factor.
  const double ilp = std::clamp(
      static_cast<double>(p.Mwi()) * p.Nwi() / 4.0, 1.0, 4.0);
  e.hide = std::min(1.0, e.occupancy * wg * ilp / cal_.threads_for_latency);

  // --- compute time -------------------------------------------------------------
  // The anchor rescales the efficiency product (solved against Table II).
  // The Table II kernel is treated as this toolchain's compute frontier:
  // no candidate's anchored product may exceed the anchor kernel's, so
  // search winners can only tie the frontier on compute and must then be
  // separated by the memory, barrier, and latency terms. Physics still
  // caps at the (boosted) peak.
  const double eff = std::min(
      1.0, anchor *
               std::min(f.goodness(), seed_goodness_[dp ? 0 : 1]) *
               e.vec_eff * reg_eff);
  e.t_compute =
      static_cast<double>(st.flops) / (dev_.peak_gflops(dp) * 1e9 * eff);

  // --- global-memory time ----------------------------------------------------
  const auto mnk = static_cast<double>(Mp) * static_cast<double>(Np) *
                   static_cast<double>(Kp);
  auto operand_bytes = [&](bool shared, std::uint64_t raw_bytes, int wg_blk) {
    if (shared) return static_cast<double>(raw_bytes);
    // Without local memory the program requests raw_bytes, but caches
    // capture a cal_.cache_eff fraction of the inter-item reuse; the floor
    // is the perfectly-shared traffic.
    const double ideal = es * mnk / wg_blk;
    return ideal + (static_cast<double>(raw_bytes) - ideal) *
                       (1.0 - cal_.cache_eff);
  };
  auto layout_eff = [&](BlockLayout l, std::int64_t pitch_elems) {
    if (l != BlockLayout::RowMajor) return 1.0;
    double f = cal_.rm_bw_eff;
    if (cal_.conflict_stride_bytes > 0 &&
        static_cast<std::int64_t>(pitch_elems * es) %
                cal_.conflict_stride_bytes ==
            0)
      f *= cal_.rm_conflict_eff;
    return f;
  };
  const double bytes_a = operand_bytes(p.share_a, st.a_global_load_bytes,
                                       p.Nwg);
  const double bytes_b = operand_bytes(p.share_b, st.b_global_load_bytes,
                                       p.Mwg);
  const double bytes_c = static_cast<double>(st.c_global_load_bytes +
                                             st.c_global_store_bytes);
  const double bw = dev_.global_bw_gbs * 1e9;
  e.t_global = (bytes_a / layout_eff(p.layout_a, Mp) +
                bytes_b / layout_eff(p.layout_b, Np) + bytes_c) /
               bw / std::max(e.hide, 0.05);

  // --- local-memory time --------------------------------------------------------
  const double lds_bw =
      dev_.compute_units * cal_.lds_bytes_per_clock * clock_hz;
  e.t_local = static_cast<double>(st.local_load_bytes +
                                  st.local_store_bytes) /
              lds_bw;
  // Unshared operands stream their full (pre-cache) request volume through
  // the L1 path instead; this is the bandwidth local memory buys back.
  const double l1_bw =
      dev_.compute_units * cal_.l1_bytes_per_clock * clock_hz;
  double cache_stream_bytes = 0;
  if (!p.share_a)
    cache_stream_bytes += static_cast<double>(st.a_global_load_bytes);
  if (!p.share_b)
    cache_stream_bytes += static_cast<double>(st.b_global_load_bytes);
  e.t_local += cache_stream_bytes / l1_bw;

  // --- barrier time ---------------------------------------------------------------
  e.t_barrier = static_cast<double>(st.barriers) * cal_.barrier_cycles /
                clock_hz / (dev_.compute_units * e.occupancy);

  // --- combine -----------------------------------------------------------------
  // Streaming loads overlap with computation up to the max() of the two;
  // a small leak term models imperfect pipelining.
  const double base = std::max({e.t_compute, e.t_global, e.t_local});
  const double rest = e.t_compute + e.t_global + e.t_local - base;
  // Local-memory *fills* are fenced by barriers: within a work-group they
  // serialize against computation. Overlap comes either from co-resident
  // work-groups (BA relies on this; needs occupancy >= 2) or from the
  // algorithm itself (PL stages through registers, DB through the second
  // buffer half) — the mechanism behind Fig. 8's per-device winners.
  double fill_bytes = 0;
  if (p.share_a) fill_bytes += static_cast<double>(st.a_global_load_bytes);
  if (p.share_b) fill_bytes += static_cast<double>(st.b_global_load_bytes);
  double t_fill = fill_bytes / bw;
  if (fill_bytes > 0) {
    // Each barrier-fenced fill pays one global round trip per tile; the
    // work-groups on a compute unit serialize these unless overlapped.
    const double wg_slots =
        static_cast<double>(st.work_groups) /
        (dev_.compute_units * e.occupancy);
    t_fill += wg_slots * static_cast<double>(st.tiles) *
              cal_.mem_latency_us * 1e-6;
  }
  double q_algo = 0.0;
  if (p.algo == Algorithm::PL) q_algo = cal_.pl_overlap;
  if (p.algo == Algorithm::DB) q_algo = cal_.db_overlap;
  // Each extra co-resident work-group covers a stalled one's fill with its
  // own compute phase, so coverage grows faster than 1 - 1/occ.
  const double q_cross =
      std::min(0.97, 1.0 - 1.0 / (1.0 + 2.0 * (e.occupancy - 1.0)));
  const double q = std::max(q_cross, q_algo);
  double t = base + 0.03 * rest + (1.0 - q) * t_fill + e.t_barrier;

  // --- wave quantization --------------------------------------------------------
  const double slots = dev_.compute_units * e.occupancy;
  const double waves =
      std::ceil(static_cast<double>(st.work_groups) / slots);
  e.quant = static_cast<double>(st.work_groups) / (waves * slots);
  t /= e.quant;

  t += dev_.kernel_launch_us * 1e-6;

  // Reported-performance ceiling: nothing on this hardware/compiler stack
  // demonstrably exceeded the Table II maximum by more than a few percent.
  t = std::max(t, 2.0 * mnk / (gflops_ceiling_[dp ? 0 : 1] * 1e9));

  e.ok = true;
  e.seconds = t;
  e.gflops = 2.0 * mnk / t / 1e9;
  return e;
}

double PerfModel::solve_anchor(Precision prec) const {
  const codegen::PaperKernelResult ref = codegen::table2_entry(id_, prec);
  const std::int64_t n = stage1_size(ref.params);
  // gflops is monotonically increasing in the anchor; bisect.
  double lo = 0.005, hi = 1.8;
  for (int it = 0; it < 60; ++it) {
    const double mid = 0.5 * (lo + hi);
    const Estimate e = estimate_with_anchor(ref.params, n, n, n, mid);
    check(e.ok, "solve_anchor: Table II kernel rejected: " + e.reason +
                    " [" + ref.params.summary() + "]");
    if (e.gflops < ref.max_gflops) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double PerfModel::alu_anchor(Precision prec) const {
  return anchors_[prec == Precision::DP ? 0 : 1];
}

namespace {

/// Per-thread memo for kernel_estimate, keyed by (device, params, sizes).
/// Thread-local, so the tuner's worker threads never contend on it.
using EstimateCache = std::unordered_map<std::string, Estimate>;

EstimateCache& estimate_cache() {
  thread_local EstimateCache cache;
  return cache;
}

// A full 20k-candidate stage-1 pass inserts one entry per candidate; the
// cap bounds memory across many tunes while never evicting mid-search.
constexpr std::size_t kEstimateCacheCap = 1 << 20;

}  // namespace

void PerfModel::clear_thread_cache() { estimate_cache().clear(); }

Estimate PerfModel::kernel_estimate(const KernelParams& p, std::int64_t Mp,
                                    std::int64_t Np, std::int64_t Kp) const {
  EstimateCache& cache = estimate_cache();
  std::string key = strf("%d|%s|%lld|%lld|%lld", static_cast<int>(id_),
                         p.key().c_str(), static_cast<long long>(Mp),
                         static_cast<long long>(Np),
                         static_cast<long long>(Kp));
  const auto it = cache.find(key);
  if (it != cache.end()) {
    trace::counter_add("perfmodel.cache_hit", 1);
    return it->second;
  }
  trace::counter_add("perfmodel.cache_miss", 1);
  const Estimate e = estimate_with_anchor(p, Mp, Np, Kp, alu_anchor(p.prec));
  if (cache.size() >= kEstimateCacheCap) cache.clear();
  cache.emplace(std::move(key), e);
  return e;
}

double PerfModel::kernel_gflops(const KernelParams& p,
                                std::int64_t n) const {
  const Estimate e = kernel_estimate(p, n, n, n);
  return e.ok ? e.gflops : 0.0;
}

}  // namespace gemmtune::perfmodel
