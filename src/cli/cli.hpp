// Command-line interface, exposed as a library so tests can drive it.
//
// Global options (before the command):
//   --threads N                      worker threads for tuning and kernel
//                                    interpretation (overrides the
//                                    GEMMTUNE_THREADS environment variable)
//   --interp <tree|bytecode>         kernel interpreter backend (overrides
//                                    the GEMMTUNE_INTERP environment
//                                    variable; default bytecode)
//   --trace FILE                     enable tracing; write a Chrome
//                                    trace-event JSON timeline to FILE
//   --metrics FILE                   enable tracing; write the aggregated
//                                    metrics JSON (spans, counters, gauges)
//                                    to FILE
//
// Subcommands:
//   devices                          list the simulated processors
//   emit <device> <DGEMM|SGEMM>      print the tuned kernel's OpenCL C
//   compile <file.cl>                parse an OpenCL kernel, print a summary
//   tune <device> <DGEMM|SGEMM> [budget] [out.json]
//                                    run the two-stage search
//   estimate <device> <DGEMM|SGEMM> <NN|NT|TN|TT> <n>
//                                    implementation-level GFlop/s estimate
//   sweep <device> <DGEMM|SGEMM> <maxN>
//                                    kernel GFlop/s curve
//   verify <device> <DGEMM|SGEMM> <M> <N> <K>
//                                    functional run against the reference
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gemmtune::cli {

/// Runs one CLI invocation; returns the process exit code. All output goes
/// to `out` (errors included, prefixed "error:").
int run(const std::vector<std::string>& args, std::ostream& out);

}  // namespace gemmtune::cli
