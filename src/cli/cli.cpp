#include "cli/cli.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "benchdb/benchdb.hpp"
#include "blas/gemm.hpp"
#include "blas/hostblas.hpp"
#include "clfront/parser.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "dist/executor.hpp"
#include "kernelir/emit.hpp"
#include "kernelir/interp.hpp"
#include "kernelir/native.hpp"
#include "kernelir/vm.hpp"
#include "layout/matrix.hpp"
#include "serve/core/async_server.hpp"
#include "serve/core/differential.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "trace/trace.hpp"
#include "tuner/results_db.hpp"
#include "tuner/strategy/strategy.hpp"
#include "vendor/baselines.hpp"

namespace gemmtune::cli {

namespace {

using codegen::Precision;

Precision parse_precision(const std::string& s) {
  if (s == "DGEMM" || s == "dgemm") return Precision::DP;
  if (s == "SGEMM" || s == "sgemm") return Precision::SP;
  fail("unknown precision '" + s + "' (use DGEMM or SGEMM)");
}

GemmType parse_type(const std::string& s) {
  for (GemmType t : all_gemm_types()) {
    if (s == to_string(t)) return t;
  }
  fail("unknown GEMM type '" + s + "' (use NN, NT, TN or TT)");
}

int cmd_devices(std::ostream& out) {
  TextTable t;
  t.set_header({"Device", "Type", "Clock GHz", "CUs", "Peak DP", "Peak SP",
                "BW GB/s", "Host GB/s", "Xfer us", "Local kB"});
  for (simcl::DeviceId id : simcl::all_devices()) {
    const auto& d = simcl::device_spec(id);
    t.add_row({d.code_name, d.is_gpu() ? "GPU" : "CPU",
               strf("%.3g", d.clock_ghz), std::to_string(d.compute_units),
               fmt_gflops(d.peak_dp_gflops), fmt_gflops(d.peak_sp_gflops),
               strf("%.4g", d.global_bw_gbs), strf("%.3g", d.host_bw_gbs),
               strf("%.3g", d.transfer_latency_us),
               strf("%.3g", d.local_mem_kb)});
  }
  t.print(out);
  return 0;
}

int cmd_emit(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 2, "usage: emit <device> <DGEMM|SGEMM>");
  const auto id = simcl::device_by_name(args[0]);
  const auto entry = codegen::table2_entry(id, parse_precision(args[1]));
  out << "// " << entry.params.summary() << "\n";
  out << ir::emit_opencl(codegen::generate_gemm_kernel(entry.params));
  return 0;
}

int cmd_compile(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 1, "usage: compile <file.cl>");
  std::ifstream f(args[0]);
  check(f.good(), "cannot open " + args[0]);
  std::ostringstream ss;
  ss << f.rdbuf();
  const ir::Kernel k = clfront::parse_kernel(ss.str());
  out << "kernel: " << k.name << "\n";
  out << "arguments: " << k.args.size() << "\n";
  out << "symbols: " << k.symbols.size() << "\n";
  out << "local memory: " << k.local_mem_bytes() << " bytes\n";
  out << "private elements/work-item: " << k.private_scalars() << "\n";
  if (k.reqd_local[0] > 0)
    out << strf("required work-group: %lld x %lld\n",
                static_cast<long long>(k.reqd_local[0]),
                static_cast<long long>(k.reqd_local[1]));
  return 0;
}

/// Functional spot-check of a tuned kernel: one blocking tile
/// (Mwg x Nwg x Kwg) through the interpreter against the host reference.
/// Cheap (one work-group of real execution), and it exercises the
/// interpreter so a `tune --metrics` run reports interp counters too.
template <typename T>
std::pair<double, double> functional_check(simcl::DeviceId id,
                                           const tuner::TunedKernel& best) {
  tuner::TunedDatabase db;
  db.put(id, best.params.prec, best);
  blas::GemmEngine engine(id, std::move(db));
  const index_t M = best.params.Mwg;
  const index_t N = best.params.Nwg;
  const index_t K = best.params.Kwg;
  Rng rng(2026);
  Matrix<T> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                T(1.5), A, B, T(-0.5), C, true);
  return {prof.max_error, hostblas::gemm_tolerance<T>(K)};
}

/// Parses the flag tail shared by `tune`, `serve` and `replay`. Returns
/// the value consumed for `flag` at `i` (advancing `i` for the two-token
/// form), or nullopt when args[i] is a different flag.
std::optional<std::string> flag_value(const std::vector<std::string>& args,
                                      std::size_t& i, const char* flag) {
  const std::string& a = args[i];
  const std::string eq = std::string(flag) + "=";
  if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
  if (a == flag) {
    check(i + 1 < args.size(), std::string(flag) + " requires a value");
    return args[++i];
  }
  return std::nullopt;
}

/// Parses "MxNxK" (e.g. "2048x64x2048") for `tune --shape`.
tuner::ShapeClass parse_shape_class(const std::string& text, Precision prec) {
  index_t dims[3] = {0, 0, 0};
  std::size_t pos = 0;
  for (int d = 0; d < 3; ++d) {
    std::size_t used = 0;
    try {
      dims[d] = std::stoll(text.substr(pos), &used);
    } catch (const std::exception&) {
      used = 0;
    }
    check(used > 0 && dims[d] > 0,
          "--shape expects MxNxK with positive extents, got '" + text + "'");
    pos += used;
    if (d < 2) {
      check(pos < text.size() && text[pos] == 'x',
            "--shape expects MxNxK with positive extents, got '" + text +
                "'");
      ++pos;
    }
  }
  check(pos == text.size(),
        "--shape expects MxNxK with positive extents, got '" + text + "'");
  tuner::ShapeClass s;
  s.prec = prec;
  s.type = GemmType::NN;
  s.Mc = tuner::ShapeClass::quantize(dims[0]);
  s.Nc = tuner::ShapeClass::quantize(dims[1]);
  s.Kc = tuner::ShapeClass::quantize(dims[2]);
  return s;
}

int cmd_tune(const std::vector<std::string>& args, std::ostream& out) {
  // Flags may be interleaved with the positional arguments; split first so
  // the classic `tune <device> <DGEMM|SGEMM> [budget] [out.json]` form
  // keeps working unchanged.
  std::vector<std::string> pos;
  std::string strategy_text, shape_text;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--strategy")) strategy_text = *v;
    else if (auto v = flag_value(args, i, "--shape")) shape_text = *v;
    else if (args[i].rfind("--", 0) == 0)
      fail("tune: unknown argument '" + args[i] + "'");
    else pos.push_back(args[i]);
  }
  check(pos.size() >= 2,
        "usage: tune <device> <DGEMM|SGEMM> [budget] [out.json] "
        "[--strategy SPEC] [--shape MxNxK]");
  const auto id = simcl::device_by_name(pos[0]);
  const Precision prec = parse_precision(pos[1]);
  tuner::SearchOptions opt;
  if (pos.size() >= 3) opt.enumeration.max_candidates = std::stoi(pos[2]);
  if (!shape_text.empty()) opt.shape = parse_shape_class(shape_text, prec);
  const tuner::strategy::StrategySpec spec =
      strategy_text.empty()
          ? tuner::strategy::StrategySpec{}  // exhaustive reference
          : tuner::strategy::parse_strategy_spec(strategy_text);
  tuner::SearchEngine engine(id);
  tuner::strategy::StrategyStats sstats;
  const auto best =
      tuner::strategy::run_strategy(engine, prec, opt, spec, &sstats);
  const tuner::SearchStats& stats = sstats.search;
  if (!strategy_text.empty())
    out << strf("strategy %s: measured %lld of %lld candidates (%.1f%%)\n",
                to_string(spec.kind),
                static_cast<long long>(sstats.measured),
                static_cast<long long>(sstats.space),
                sstats.fraction_measured * 100);
  if (opt.shape)
    out << "shape class: " << to_string(*opt.shape) << "\n";
  out << "evaluated " << stats.stage1_evaluated << " kernels ("
      << stats.stage1_failed << " failed), stage-2 points "
      << stats.stage2_points << "\n";
  if (stats.stage2_empty > 0)
    out << "stage-2 empty sweeps: " << stats.stage2_empty
        << (stats.used_stage1_fallback ? " (fell back to the stage-1 result)"
                                       : "")
        << "\n";
  out << "best: " << best.params.summary() << "\n";
  out << strf("best performance: %.1f GFlop/s at N=%lld\n", best.best_gflops,
              static_cast<long long>(best.best_n));
  const auto paper = codegen::table2_entry(id, prec);
  out << strf("paper Table II: %.1f GFlop/s (ratio %.2f)\n", paper.max_gflops,
              best.best_gflops / paper.max_gflops);
  const auto [err, tol] = prec == Precision::DP
                              ? functional_check<double>(id, best)
                              : functional_check<float>(id, best);
  out << strf("functional check (one %dx%dx%d tile): max |error| = %.3e "
              "(tolerance %.3e): %s\n",
              best.params.Mwg, best.params.Nwg, best.params.Kwg, err, tol,
              err <= tol ? "PASS" : "FAIL");
  check(err <= tol, "tune: winning kernel failed the functional check");
  if (pos.size() >= 4) {
    tuner::TunedDatabase db;
    db.put(id, prec, best.shape, best);
    db.save_file(pos[3]);
    out << "saved to " << pos[3] << "\n";
  }
  return 0;
}

int cmd_estimate(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 4,
        "usage: estimate <device> <DGEMM|SGEMM> <NN|NT|TN|TT> <n>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const GemmType type = parse_type(args[2]);
  const index_t n = std::stoll(args[3]);
  blas::GemmEngine engine(id);
  const auto prof = engine.estimate(type, prec, n, n, n);
  out << strf("%s %s %s N=%lld: %.1f GFlop/s (%s; copy %.3f ms, kernel "
              "%.3f ms)\n",
              args[0].c_str(), to_string(prec), to_string(type),
              static_cast<long long>(n), prof.gflops,
              prof.used_direct ? "direct kernel" : "copy + tuned kernel",
              prof.copy_seconds * 1e3, prof.kernel_seconds * 1e3);
  const auto& vb = vendor::table3_vendor(id, prec);
  out << strf("vendor (%s): %.1f GFlop/s\n", vb.name.c_str(),
              vendor::baseline_gflops(vb, type, n));
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 3, "usage: sweep <device> <DGEMM|SGEMM> <maxN>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const std::int64_t max_n = std::stoll(args[2]);
  tuner::SearchEngine engine(id);
  const auto p = codegen::table2_entry(id, prec).params;
  TextTable t;
  t.set_header({"N", "GFlop/s"});
  for (const auto& [n, g] : engine.sweep(p, max_n))
    t.add_row({std::to_string(n), fmt_gflops(g)});
  t.print(out);
  return 0;
}

int cmd_verify(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 5,
        "usage: verify <device> <DGEMM|SGEMM> <M> <N> <K>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const index_t M = std::stoll(args[2]);
  const index_t N = std::stoll(args[3]);
  const index_t K = std::stoll(args[4]);
  check(M > 0 && N > 0 && K > 0 && M <= 512 && N <= 512 && K <= 512,
        "sizes must be in [1, 512] (functional execution is interpreted)");
  blas::GemmEngine engine(id);
  Rng rng(2026);
  double err, tol;
  if (prec == Precision::DP) {
    Matrix<double> A(M, K), B(K, N), C(M, N);
    A.fill_random(rng);
    B.fill_random(rng);
    C.fill_random(rng);
    const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                  1.5, A, B, -0.5, C, true);
    err = prof.max_error;
    tol = hostblas::gemm_tolerance<double>(K);
  } else {
    Matrix<float> A(M, K), B(K, N), C(M, N);
    A.fill_random(rng);
    B.fill_random(rng);
    C.fill_random(rng);
    const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                  1.5f, A, B, -0.5f, C, true);
    err = prof.max_error;
    tol = hostblas::gemm_tolerance<float>(K);
  }
  out << strf("max |error| = %.3e (tolerance %.3e): %s\n", err, tol,
              err <= tol ? "PASS" : "FAIL");
  return err <= tol ? 0 : 1;
}

/// Serving-core selection shared by `serve` and `replay`.
struct ServeCoreOptions {
  std::string core = "serial";  ///< serial | async | diff
  int shards = 4;
  double slo_ms = 0;  ///< > 0: override every deadline to arrival + SLO
  bool shed_infeasible = false;
  std::string tune_strategy;  ///< --tune-strategy: per-class guided warmup
  int tune_candidates = 1500;  ///< --tune-candidates: per-class search space
};

/// Writes a report document to `path` (shared by every serve core).
void write_report_file(const Json& report, const std::string& path,
                       std::ostream& out) {
  std::ofstream f(path, std::ios::trunc);
  check(f.good(), "serve: cannot write report " + path);
  f << report.dump(2) << "\n";
  check(f.good(), "serve: write failed for " + path);
  out << "wrote " << path << "\n";
}

/// Runs the concurrent core (virtual mode: deterministic) next to the
/// serial reference and prints/writes the extended report.
int run_serve_async(serve::GemmServer& server,
                    const serve::WorkloadSpec& spec,
                    const std::vector<serve::GemmRequest>& requests,
                    const ServeCoreOptions& copt,
                    const std::string& report_path, std::ostream& out) {
  serve::AsyncOptions aopt;
  aopt.shards = copt.shards;
  aopt.shed_infeasible = copt.shed_infeasible;
  aopt.execute_max_n = 64;  // checksum small requests on the executors
  const auto serial =
      server.run(requests, spec.max_batch, spec.queue_capacity);
  serve::AsyncServer async(server, aopt);
  const auto outcome =
      async.run(requests, spec.max_batch, spec.queue_capacity);
  const Json report = serve::build_async_report(
      spec, requests, outcome, serial, server.options(), aopt);
  const Json& s = report.at("scalars");
  out << strf("async core: %d shards, virtual mode, %lld requests "
              "executed on %zu device executors\n",
              aopt.shards, static_cast<long long>(outcome.executed),
              server.devices().size());
  out << strf("served: %lld completed, shed %lld (queue full) + %lld "
              "(infeasible), %lld expired\n",
              static_cast<long long>(s.at("requests.completed").as_int()),
              static_cast<long long>(outcome.shed_queue_full),
              static_cast<long long>(outcome.shed_infeasible),
              static_cast<long long>(outcome.expired));
  out << strf("latency: p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms "
              "(%zu shape classes)\n",
              s.at("hist.p50_ms").as_number(),
              s.at("hist.p99_ms").as_number(),
              s.at("hist.p999_ms").as_number(), outcome.classes.size());
  out << strf("vs serial core: completed %.3fx, throughput %.3fx\n",
              s.at("speedup.completed_vs_serial").as_number(),
              s.at("speedup.throughput_vs_serial").as_number());
  if (!report_path.empty()) write_report_file(report, report_path, out);
  return 0;
}

/// Replays the workload through both cores and reports the differential.
int run_serve_diff(serve::GemmServer& server,
                   const serve::WorkloadSpec& spec,
                   const std::vector<serve::GemmRequest>& requests,
                   const ServeCoreOptions& copt, std::ostream& out) {
  serve::AsyncOptions aopt;
  aopt.shards = copt.shards;
  aopt.execute_max_n = 64;
  const auto rep = serve::run_differential(
      server, requests, spec.max_batch, spec.queue_capacity, aopt);
  out << strf("differential: serial %lld completed, async %lld completed "
              "(ratio %.4f), %lld GEMM checksums compared\n",
              static_cast<long long>(rep.serial_completed),
              static_cast<long long>(rep.async_completed),
              rep.completed_ratio,
              static_cast<long long>(rep.compared_checksums));
  out << (rep.ok ? "cores agree: PASS\n"
                 : "cores diverge: FAIL (" + rep.detail + ")\n");
  return rep.ok ? 0 : 1;
}

/// Shared tail of `serve` and `replay`: warm up, run the selected core,
/// print the summary and optionally write the report file.
int run_serve(const serve::WorkloadSpec& spec,
              const std::vector<serve::GemmRequest>& requests_in,
              const std::string& cache_path, const std::string& report_path,
              const ServeCoreOptions& copt, std::ostream& out) {
  serve::ServeOptions sopt;
  sopt.cache_path = cache_path;
  sopt.tune_strategy = copt.tune_strategy;
  sopt.tune_candidates = copt.tune_candidates;
  serve::GemmServer server(spec.resolved_devices(), sopt);
  const auto info = server.warmup();
  if (info.cache_ignored)
    out << "warning: ignoring corrupt warm cache: " << info.cache_error
        << "\n";
  out << strf("warmup: %zu kernels ready (%zu from cache, %zu profiled)\n",
              info.loaded + info.profiled, info.loaded, info.profiled);
  if (!copt.tune_strategy.empty())
    out << "tune strategy: " << copt.tune_strategy
        << " (per shape class, " << copt.tune_candidates
        << " candidates)\n";
  std::vector<serve::GemmRequest> requests = requests_in;
  if (copt.slo_ms > 0) {
    // One service-level objective for every request, replacing the
    // per-class deadline budgets.
    for (auto& r : requests)
      r.deadline_seconds = r.arrival_seconds + copt.slo_ms / 1e3;
    out << strf("slo: deadlines overridden to arrival + %.3g ms\n",
                copt.slo_ms);
  }
  if (copt.core == "async")
    return run_serve_async(server, spec, requests, copt, report_path, out);
  if (copt.core == "diff")
    return run_serve_diff(server, spec, requests, copt, out);
  const auto batched =
      server.run(requests, spec.max_batch, spec.queue_capacity);
  const auto unbatched = server.run(requests, 1, spec.queue_capacity);
  const Json report =
      serve::build_report(spec, requests, batched, unbatched, sopt);
  const Json& s = report.at("scalars");
  out << strf("workload: %d requests, seed %llu, %.4g req/s, %zu devices\n",
              spec.requests,
              static_cast<unsigned long long>(spec.seed), spec.rate_rps,
              spec.resolved_devices().size());
  out << strf("served: %lld completed, %lld rejected (queue full), "
              "%lld rejected (deadline)\n",
              static_cast<long long>(
                  s.at("requests.completed").as_int()),
              static_cast<long long>(
                  s.at("requests.rejected_queue_full").as_int()),
              static_cast<long long>(
                  s.at("requests.rejected_deadline").as_int()));
  out << strf("batches: %lld (avg %.2f, max %lld, %.0f%% direct path)\n",
              static_cast<long long>(s.at("batches.count").as_int()),
              s.at("batches.avg_size").as_number(),
              static_cast<long long>(s.at("batches.max_size").as_int()),
              s.at("batches.direct_fraction").as_number() * 100);
  out << strf("latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  "
              "max %.3f ms\n",
              s.at("latency_ms.p50").as_number(),
              s.at("latency_ms.p95").as_number(),
              s.at("latency_ms.p99").as_number(),
              s.at("latency_ms.max").as_number());
  out << strf("throughput: %.1f GFlop/s over %.4f s simulated\n",
              s.at("throughput.gflops").as_number(),
              s.at("sim.makespan_seconds").as_number());
  out << strf("baseline (unbatched): %.1f GFlop/s -> speedup %.2fx\n",
              s.at("baseline.throughput.gflops").as_number(),
              s.at("speedup.throughput").as_number());
  if (!report_path.empty()) write_report_file(report, report_path, out);
  return 0;
}

/// Parses the core-selection flags shared by `serve` and `replay`.
/// Returns true when args[i] was consumed.
bool core_flag(const std::vector<std::string>& args, std::size_t& i,
               ServeCoreOptions& copt) {
  if (auto v = flag_value(args, i, "--core")) {
    if (*v != "serial" && *v != "async" && *v != "diff")
      fail_unknown_value("--core", *v, {"serial", "async", "diff"});
    copt.core = *v;
    return true;
  }
  if (auto v = flag_value(args, i, "--shards")) {
    try {
      std::size_t used = 0;
      copt.shards = std::stoi(*v, &used);
      check(used == v->size() && copt.shards >= 1, "");
    } catch (const std::exception&) {
      fail("--shards expects an integer >= 1, got '" + *v + "'");
    }
    return true;
  }
  if (auto v = flag_value(args, i, "--slo-ms")) {
    try {
      std::size_t used = 0;
      copt.slo_ms = std::stod(*v, &used);
      check(used == v->size() && copt.slo_ms > 0, "");
    } catch (const std::exception&) {
      fail("--slo-ms expects a number > 0, got '" + *v + "'");
    }
    return true;
  }
  if (args[i] == "--shed-infeasible") {
    copt.shed_infeasible = true;
    return true;
  }
  if (auto v = flag_value(args, i, "--tune-strategy")) {
    // Validate eagerly so a typo fails before the workload is generated.
    (void)tuner::strategy::parse_strategy_spec(*v);
    copt.tune_strategy = *v;
    return true;
  }
  if (auto v = flag_value(args, i, "--tune-candidates")) {
    try {
      std::size_t used = 0;
      copt.tune_candidates = std::stoi(*v, &used);
      check(used == v->size() && copt.tune_candidates >= 1, "");
    } catch (const std::exception&) {
      fail("--tune-candidates expects an integer >= 1, got '" + *v + "'");
    }
    return true;
  }
  return false;
}

int cmd_serve(const std::vector<std::string>& args, std::ostream& out) {
  std::string spec_text, report_path, cache_path, trace_path;
  ServeCoreOptions copt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--workload")) spec_text = *v;
    else if (auto v = flag_value(args, i, "--report")) report_path = *v;
    else if (auto v = flag_value(args, i, "--cache")) cache_path = *v;
    else if (auto v = flag_value(args, i, "--save-trace")) trace_path = *v;
    else if (core_flag(args, i, copt)) continue;
    else fail("serve: unknown argument '" + args[i] + "'");
  }
  const serve::WorkloadSpec spec = serve::parse_spec(spec_text);
  const auto requests = serve::generate_workload(spec);
  if (!trace_path.empty()) {
    serve::save_workload_file(trace_path, spec, requests);
    out << "saved workload trace to " << trace_path << "\n";
  }
  return run_serve(spec, requests, cache_path, report_path, copt, out);
}

int cmd_replay(const std::vector<std::string>& args, std::ostream& out) {
  check(!args.empty() && !args[0].starts_with("--"),
        "usage: replay <trace.json> [--report FILE] [--cache FILE] "
        "[--core C] [--shards N] [--slo-ms X]");
  std::string report_path, cache_path;
  ServeCoreOptions copt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--report")) report_path = *v;
    else if (auto v = flag_value(args, i, "--cache")) cache_path = *v;
    else if (core_flag(args, i, copt)) continue;
    else fail("replay: unknown argument '" + args[i] + "'");
  }
  const serve::Workload w = serve::load_workload_file(args[0]);
  return run_serve(w.spec, w.requests, cache_path, report_path, copt, out);
}

int cmd_dist(const std::vector<std::string>& args, std::ostream& out) {
  std::string spec_text, report_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--spec")) spec_text = *v;
    else if (auto v = flag_value(args, i, "--report")) report_path = *v;
    else fail("dist: unknown argument '" + args[i] + "'");
  }
  const dist::DistSpec spec = dist::parse_dist_spec(spec_text);
  const auto devices = spec.resolved_devices();
  dist::DistExecutor ex(devices);
  const auto o =
      ex.run(spec.type, spec.prec, spec.M, spec.N, spec.K, spec.tile);
  out << strf("problem: %s %s %lldx%lldx%lld, tile %lldx%lld -> "
              "%lldx%lld grid (%lld tiles)\n",
              to_string(spec.prec), to_string(spec.type),
              static_cast<long long>(spec.M), static_cast<long long>(spec.N),
              static_cast<long long>(spec.K),
              static_cast<long long>(o.grid.tile_m),
              static_cast<long long>(o.grid.tile_n),
              static_cast<long long>(o.grid.rows),
              static_cast<long long>(o.grid.cols),
              static_cast<long long>(o.grid.total()));
  TextTable t;
  t.set_header({"Device", "Tiles", "Stolen", "Compute s", "Transfer s",
                "Solo s"});
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const auto& ds = o.device_stats[d];
    t.add_row({simcl::to_string(devices[d]), std::to_string(ds.executed),
               std::to_string(ds.stolen), strf("%.4f", ds.compute_seconds),
               strf("%.4f", ds.transfer_seconds),
               strf("%.4f", o.single_seconds[d])});
  }
  t.print(out);
  out << strf("fleet: %.4f s simulated (%.1f GFlop/s)\n",
              o.makespan_seconds, o.gflops);
  out << strf("best single device: %s at %.4f s -> speedup %.2fx\n",
              simcl::to_string(devices[static_cast<std::size_t>(
                                   o.best_single)])
                  .c_str(),
              o.best_single_seconds, o.speedup);
  if (!report_path.empty()) {
    const Json report = dist::build_dist_report(spec, o);
    std::ofstream f(report_path, std::ios::trunc);
    check(f.good(), "dist: cannot write report " + report_path);
    f << report.dump(2) << "\n";
    check(f.good(), "dist: write failed for " + report_path);
    out << "wrote " << report_path << "\n";
  }
  return 0;
}

int usage(std::ostream& out) {
  out << "usage: gemmtune [--threads N] [--interp B] [--jit-cache-dir D]\n"
         "                [--vm-dispatch D] [--native-simd M]\n"
         "                [--trace FILE] [--metrics FILE] <command> [args]\n"
         "options:\n"
         "  --threads N     worker threads for tuning and kernel\n"
         "                  interpretation (default: GEMMTUNE_THREADS if\n"
         "                  set, else all hardware threads)\n"
         "  --interp B      kernel interpreter backend: bytecode (default),\n"
         "                  tree (reference) or native (JIT to a shared\n"
         "                  object via the host C++ compiler, falling back\n"
         "                  to bytecode when no toolchain is available;\n"
         "                  also GEMMTUNE_INTERP)\n"
         "  --jit-cache-dir D\n"
         "                  persistent directory for native-backend shared\n"
         "                  objects (also GEMMTUNE_JIT_CACHE); warm starts\n"
         "                  dlopen cached objects without a compiler\n"
         "  --vm-dispatch D bytecode executor dispatch: threaded (computed\n"
         "                  goto, default where supported) or switch\n"
         "                  (also GEMMTUNE_VM_DISPATCH); both produce\n"
         "                  bit-identical results\n"
         "  --native-simd M explicit vector lanes in the native JIT\n"
         "                  emitter: on (default) or off for scalar\n"
         "                  emission (also GEMMTUNE_NATIVE_SIMD); both\n"
         "                  produce bit-identical buffers\n"
         "  --trace FILE    write a Chrome trace-event JSON timeline\n"
         "  --metrics FILE  write aggregated metrics JSON (span durations,\n"
         "                  counters, gauges, cache hit rates)\n"
         "commands:\n"
         "  devices\n"
         "  emit <device> <DGEMM|SGEMM>\n"
         "  compile <file.cl>\n"
         "  tune <device> <DGEMM|SGEMM> [budget] [out.json]\n"
         "       [--strategy SPEC] [--shape MxNxK]\n"
         "                  SPEC selects the search strategy:\n"
         "                  exhaustive (default), model_topk, anneal, pso,\n"
         "                  with k=v options, e.g. model_topk,budget=64 or\n"
         "                  anneal,budget=256,seed=7,restarts=8 or\n"
         "                  pso,budget=256,particles=16; --shape tunes for\n"
         "                  one NN shape class (pack cost + direct path)\n"
         "                  instead of the size-agnostic square sweep\n"
         "  estimate <device> <DGEMM|SGEMM> <NN|NT|TN|TT> <n>\n"
         "  sweep <device> <DGEMM|SGEMM> <maxN>\n"
         "  verify <device> <DGEMM|SGEMM> <M> <N> <K>\n"
         "  serve [--workload SPEC] [--report FILE] [--cache FILE]\n"
         "        [--save-trace FILE] [--core serial|async|diff]\n"
         "        [--shards N] [--slo-ms X] [--shed-infeasible]\n"
         "        [--tune-strategy SPEC] [--tune-candidates N]\n"
         "                  run the batched GEMM service on a seeded\n"
         "                  synthetic workload; SPEC is k=v pairs, e.g.\n"
         "                  requests=1000,seed=42,rate=2000,max_batch=16,\n"
         "                  queue=512,arrival=poisson,devices=Tahiti+Kepler\n"
         "                  --core async runs the sharded concurrent core\n"
         "                  (deterministic virtual mode) with per-shape-\n"
         "                  class p50/p99/p999; --core diff replays the\n"
         "                  workload through both cores and checks they\n"
         "                  agree; --slo-ms X replaces every deadline with\n"
         "                  arrival + X ms; --shed-infeasible also rejects\n"
         "                  deadline-infeasible requests at admission;\n"
         "                  --tune-strategy SPEC tunes a kernel per shape\n"
         "                  class with the budgeted strategy (see tune)\n"
         "                  instead of the Table II warmup kernel\n"
         "  replay <trace.json> [--report FILE] [--cache FILE]\n"
         "         [--core C] [--shards N] [--slo-ms X]\n"
         "         [--tune-strategy SPEC] [--tune-candidates N]\n"
         "                  re-run a workload trace saved by serve\n"
         "  dist [--spec SPEC] [--report FILE]\n"
         "                  run one large GEMM tiled across the whole\n"
         "                  fleet; SPEC is k=v pairs, e.g. size=8192,\n"
         "                  prec=SGEMM,type=NN,tile=1024,\n"
         "                  devices=Cypress+Cayman+SandyBridge\n"
         "  bench-db <ingest|query|compare|trend|gate> [flags]\n"
         "                  benchmark experiment database: ingest\n"
         "                  bench/serve/dist reports into an append-only\n"
         "                  JSONL store, query and diff them, render\n"
         "                  trend reports, and gate CI on the last-K\n"
         "                  performance trajectory (`bench-db` for the\n"
         "                  subcommand list)\n";
  return 2;
}

}  // namespace

namespace {

void set_interp_backend(const std::string& value) {
  if (value == "tree") {
    ir::set_backend_override(ir::Backend::Tree);
  } else if (value == "bytecode") {
    ir::set_backend_override(ir::Backend::Bytecode);
  } else if (value == "native") {
    ir::set_backend_override(ir::Backend::Native);
  } else {
    fail_unknown_value("--interp", value, {"tree", "bytecode", "native"});
  }
}

void set_vm_dispatch(const std::string& value) {
  if (value == "switch") {
    ir::set_vm_dispatch_override(ir::VmDispatch::Switch);
  } else if (value == "threaded") {
    ir::set_vm_dispatch_override(ir::VmDispatch::Threaded);
  } else {
    fail_unknown_value("--vm-dispatch", value, {"switch", "threaded"});
  }
}

void set_native_simd(const std::string& value) {
  if (value == "on") {
    ir::set_native_simd_override(ir::NativeSimd::On);
  } else if (value == "off") {
    ir::set_native_simd_override(ir::NativeSimd::Off);
  } else {
    fail_unknown_value("--native-simd", value, {"on", "off"});
  }
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out) {
  // Global options precede the command.
  std::size_t first = 0;
  std::string trace_file, metrics_file;
  try {
    while (first < args.size() && args[first].starts_with("--")) {
      const std::string& flag = args[first];
      if (flag == "--threads") {
        check(first + 1 < args.size(), "--threads requires a value");
        set_thread_override(parse_thread_count("--threads", args[first + 1]));
        first += 2;
      } else if (flag.starts_with("--threads=")) {
        set_thread_override(parse_thread_count("--threads", flag.substr(10)));
        first += 1;
      } else if (flag == "--interp") {
        check(first + 1 < args.size(), "--interp requires a value");
        set_interp_backend(args[first + 1]);
        first += 2;
      } else if (flag.starts_with("--interp=")) {
        set_interp_backend(flag.substr(9));
        first += 1;
      } else if (flag == "--jit-cache-dir") {
        check(first + 1 < args.size(), "--jit-cache-dir requires a value");
        ir::set_jit_cache_dir(args[first + 1]);
        first += 2;
      } else if (flag.starts_with("--jit-cache-dir=")) {
        ir::set_jit_cache_dir(flag.substr(16));
        first += 1;
      } else if (flag == "--vm-dispatch") {
        check(first + 1 < args.size(), "--vm-dispatch requires a value");
        set_vm_dispatch(args[first + 1]);
        first += 2;
      } else if (flag.starts_with("--vm-dispatch=")) {
        set_vm_dispatch(flag.substr(14));
        first += 1;
      } else if (flag == "--native-simd") {
        check(first + 1 < args.size(), "--native-simd requires a value");
        set_native_simd(args[first + 1]);
        first += 2;
      } else if (flag.starts_with("--native-simd=")) {
        set_native_simd(flag.substr(14));
        first += 1;
      } else if (flag == "--trace" || flag == "--metrics") {
        check(first + 1 < args.size(), flag + " requires a file path");
        (flag == "--trace" ? trace_file : metrics_file) = args[first + 1];
        first += 2;
      } else if (flag.starts_with("--trace=")) {
        trace_file = flag.substr(8);
        first += 1;
      } else if (flag.starts_with("--metrics=")) {
        metrics_file = flag.substr(10);
        first += 1;
      } else {
        fail("unknown option '" + flag + "'");
      }
    }
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  }
  if (!trace_file.empty() || !metrics_file.empty()) {
    trace::reset();
    trace::set_enabled(true);
  }
  // Writes the requested observability files; runs even when the command
  // failed, so a crashing tune still leaves its partial timeline behind.
  auto write_observability = [&](int rc) {
    try {
      if (!trace_file.empty()) trace::write_trace_file(trace_file);
      if (!metrics_file.empty()) trace::write_metrics_file(metrics_file);
    } catch (const std::exception& e) {
      out << "error: " << e.what() << "\n";
      return rc == 0 ? 1 : rc;
    }
    return rc;
  };
  if (first >= args.size()) return write_observability(usage(out));
  const std::string cmd = args[first];
  const std::vector<std::string> rest(args.begin() +
                                          static_cast<std::ptrdiff_t>(first) +
                                          1,
                                      args.end());
  try {
    if (cmd == "devices") return write_observability(cmd_devices(out));
    if (cmd == "emit") return write_observability(cmd_emit(rest, out));
    if (cmd == "compile") return write_observability(cmd_compile(rest, out));
    if (cmd == "tune") return write_observability(cmd_tune(rest, out));
    if (cmd == "estimate")
      return write_observability(cmd_estimate(rest, out));
    if (cmd == "sweep") return write_observability(cmd_sweep(rest, out));
    if (cmd == "verify") return write_observability(cmd_verify(rest, out));
    if (cmd == "serve") return write_observability(cmd_serve(rest, out));
    if (cmd == "replay") return write_observability(cmd_replay(rest, out));
    if (cmd == "dist") return write_observability(cmd_dist(rest, out));
    if (cmd == "bench-db")
      return write_observability(benchdb::run_cli(rest, out));
    return write_observability(usage(out));
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return write_observability(1);
  }
}

}  // namespace gemmtune::cli
