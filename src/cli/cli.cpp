#include "cli/cli.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "blas/gemm.hpp"
#include "blas/hostblas.hpp"
#include "clfront/parser.hpp"
#include "codegen/gemm_generator.hpp"
#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/emit.hpp"
#include "layout/matrix.hpp"
#include "trace/trace.hpp"
#include "tuner/results_db.hpp"
#include "vendor/baselines.hpp"

namespace gemmtune::cli {

namespace {

using codegen::Precision;

Precision parse_precision(const std::string& s) {
  if (s == "DGEMM" || s == "dgemm") return Precision::DP;
  if (s == "SGEMM" || s == "sgemm") return Precision::SP;
  fail("unknown precision '" + s + "' (use DGEMM or SGEMM)");
}

GemmType parse_type(const std::string& s) {
  for (GemmType t : all_gemm_types()) {
    if (s == to_string(t)) return t;
  }
  fail("unknown GEMM type '" + s + "' (use NN, NT, TN or TT)");
}

int cmd_devices(std::ostream& out) {
  TextTable t;
  t.set_header({"Device", "Type", "Clock GHz", "CUs", "Peak DP", "Peak SP",
                "BW GB/s", "Local kB"});
  for (simcl::DeviceId id : simcl::all_devices()) {
    const auto& d = simcl::device_spec(id);
    t.add_row({d.code_name, d.is_gpu() ? "GPU" : "CPU",
               strf("%.3g", d.clock_ghz), std::to_string(d.compute_units),
               fmt_gflops(d.peak_dp_gflops), fmt_gflops(d.peak_sp_gflops),
               strf("%.4g", d.global_bw_gbs), strf("%.3g", d.local_mem_kb)});
  }
  t.print(out);
  return 0;
}

int cmd_emit(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 2, "usage: emit <device> <DGEMM|SGEMM>");
  const auto id = simcl::device_by_name(args[0]);
  const auto entry = codegen::table2_entry(id, parse_precision(args[1]));
  out << "// " << entry.params.summary() << "\n";
  out << ir::emit_opencl(codegen::generate_gemm_kernel(entry.params));
  return 0;
}

int cmd_compile(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 1, "usage: compile <file.cl>");
  std::ifstream f(args[0]);
  check(f.good(), "cannot open " + args[0]);
  std::ostringstream ss;
  ss << f.rdbuf();
  const ir::Kernel k = clfront::parse_kernel(ss.str());
  out << "kernel: " << k.name << "\n";
  out << "arguments: " << k.args.size() << "\n";
  out << "symbols: " << k.symbols.size() << "\n";
  out << "local memory: " << k.local_mem_bytes() << " bytes\n";
  out << "private elements/work-item: " << k.private_scalars() << "\n";
  if (k.reqd_local[0] > 0)
    out << strf("required work-group: %lld x %lld\n",
                static_cast<long long>(k.reqd_local[0]),
                static_cast<long long>(k.reqd_local[1]));
  return 0;
}

/// Functional spot-check of a tuned kernel: one blocking tile
/// (Mwg x Nwg x Kwg) through the interpreter against the host reference.
/// Cheap (one work-group of real execution), and it exercises the
/// interpreter so a `tune --metrics` run reports interp counters too.
template <typename T>
std::pair<double, double> functional_check(simcl::DeviceId id,
                                           const tuner::TunedKernel& best) {
  tuner::TunedDatabase db;
  db.put(id, best.params.prec, best);
  blas::GemmEngine engine(id, std::move(db));
  const index_t M = best.params.Mwg;
  const index_t N = best.params.Nwg;
  const index_t K = best.params.Kwg;
  Rng rng(2026);
  Matrix<T> A(M, K), B(K, N), C(M, N);
  A.fill_random(rng);
  B.fill_random(rng);
  C.fill_random(rng);
  const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                T(1.5), A, B, T(-0.5), C, true);
  return {prof.max_error, hostblas::gemm_tolerance<T>(K)};
}

int cmd_tune(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 2, "usage: tune <device> <DGEMM|SGEMM> [budget] [out.json]");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  tuner::SearchOptions opt;
  if (args.size() >= 3) opt.enumeration.max_candidates = std::stoi(args[2]);
  tuner::SearchEngine engine(id);
  tuner::SearchStats stats;
  const auto best = engine.tune(prec, opt, &stats);
  out << "evaluated " << stats.stage1_evaluated << " kernels ("
      << stats.stage1_failed << " failed), stage-2 points "
      << stats.stage2_points << "\n";
  if (stats.stage2_empty > 0)
    out << "stage-2 empty sweeps: " << stats.stage2_empty
        << (stats.used_stage1_fallback ? " (fell back to the stage-1 result)"
                                       : "")
        << "\n";
  out << "best: " << best.params.summary() << "\n";
  out << strf("best performance: %.1f GFlop/s at N=%lld\n", best.best_gflops,
              static_cast<long long>(best.best_n));
  const auto paper = codegen::table2_entry(id, prec);
  out << strf("paper Table II: %.1f GFlop/s (ratio %.2f)\n", paper.max_gflops,
              best.best_gflops / paper.max_gflops);
  const auto [err, tol] = prec == Precision::DP
                              ? functional_check<double>(id, best)
                              : functional_check<float>(id, best);
  out << strf("functional check (one %dx%dx%d tile): max |error| = %.3e "
              "(tolerance %.3e): %s\n",
              best.params.Mwg, best.params.Nwg, best.params.Kwg, err, tol,
              err <= tol ? "PASS" : "FAIL");
  check(err <= tol, "tune: winning kernel failed the functional check");
  if (args.size() >= 4) {
    tuner::TunedDatabase db;
    db.put(id, prec, best);
    db.save_file(args[3]);
    out << "saved to " << args[3] << "\n";
  }
  return 0;
}

int cmd_estimate(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 4,
        "usage: estimate <device> <DGEMM|SGEMM> <NN|NT|TN|TT> <n>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const GemmType type = parse_type(args[2]);
  const index_t n = std::stoll(args[3]);
  blas::GemmEngine engine(id);
  const auto prof = engine.estimate(type, prec, n, n, n);
  out << strf("%s %s %s N=%lld: %.1f GFlop/s (%s; copy %.3f ms, kernel "
              "%.3f ms)\n",
              args[0].c_str(), to_string(prec), to_string(type),
              static_cast<long long>(n), prof.gflops,
              prof.used_direct ? "direct kernel" : "copy + tuned kernel",
              prof.copy_seconds * 1e3, prof.kernel_seconds * 1e3);
  const auto& vb = vendor::table3_vendor(id, prec);
  out << strf("vendor (%s): %.1f GFlop/s\n", vb.name.c_str(),
              vendor::baseline_gflops(vb, type, n));
  return 0;
}

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 3, "usage: sweep <device> <DGEMM|SGEMM> <maxN>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const std::int64_t max_n = std::stoll(args[2]);
  tuner::SearchEngine engine(id);
  const auto p = codegen::table2_entry(id, prec).params;
  TextTable t;
  t.set_header({"N", "GFlop/s"});
  for (const auto& [n, g] : engine.sweep(p, max_n))
    t.add_row({std::to_string(n), fmt_gflops(g)});
  t.print(out);
  return 0;
}

int cmd_verify(const std::vector<std::string>& args, std::ostream& out) {
  check(args.size() >= 5,
        "usage: verify <device> <DGEMM|SGEMM> <M> <N> <K>");
  const auto id = simcl::device_by_name(args[0]);
  const Precision prec = parse_precision(args[1]);
  const index_t M = std::stoll(args[2]);
  const index_t N = std::stoll(args[3]);
  const index_t K = std::stoll(args[4]);
  check(M > 0 && N > 0 && K > 0 && M <= 512 && N <= 512 && K <= 512,
        "sizes must be in [1, 512] (functional execution is interpreted)");
  blas::GemmEngine engine(id);
  Rng rng(2026);
  double err, tol;
  if (prec == Precision::DP) {
    Matrix<double> A(M, K), B(K, N), C(M, N);
    A.fill_random(rng);
    B.fill_random(rng);
    C.fill_random(rng);
    const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                  1.5, A, B, -0.5, C, true);
    err = prof.max_error;
    tol = hostblas::gemm_tolerance<double>(K);
  } else {
    Matrix<float> A(M, K), B(K, N), C(M, N);
    A.fill_random(rng);
    B.fill_random(rng);
    C.fill_random(rng);
    const auto prof = engine.gemm(Transpose::No, Transpose::No, M, N, K,
                                  1.5f, A, B, -0.5f, C, true);
    err = prof.max_error;
    tol = hostblas::gemm_tolerance<float>(K);
  }
  out << strf("max |error| = %.3e (tolerance %.3e): %s\n", err, tol,
              err <= tol ? "PASS" : "FAIL");
  return err <= tol ? 0 : 1;
}

int usage(std::ostream& out) {
  out << "usage: gemmtune [--threads N] [--trace FILE] [--metrics FILE] "
         "<command> [args]\n"
         "options:\n"
         "  --threads N     worker threads for tuning and kernel\n"
         "                  interpretation (default: GEMMTUNE_THREADS if\n"
         "                  set, else all hardware threads)\n"
         "  --trace FILE    write a Chrome trace-event JSON timeline\n"
         "  --metrics FILE  write aggregated metrics JSON (span durations,\n"
         "                  counters, gauges, cache hit rates)\n"
         "commands:\n"
         "  devices\n"
         "  emit <device> <DGEMM|SGEMM>\n"
         "  compile <file.cl>\n"
         "  tune <device> <DGEMM|SGEMM> [budget] [out.json]\n"
         "  estimate <device> <DGEMM|SGEMM> <NN|NT|TN|TT> <n>\n"
         "  sweep <device> <DGEMM|SGEMM> <maxN>\n"
         "  verify <device> <DGEMM|SGEMM> <M> <N> <K>\n";
  return 2;
}

}  // namespace

namespace {

int parse_thread_count(const std::string& value) {
  int n = 0;
  try {
    std::size_t used = 0;
    n = std::stoi(value, &used);
    check(used == value.size(), "--threads expects an integer, got '" +
                                    value + "'");
  } catch (const std::invalid_argument&) {
    fail("--threads expects an integer, got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail("--threads value '" + value + "' is out of range");
  }
  check(n >= 1, "--threads must be >= 1");
  return n;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out) {
  // Global options precede the command.
  std::size_t first = 0;
  std::string trace_file, metrics_file;
  try {
    while (first < args.size() && args[first].starts_with("--")) {
      const std::string& flag = args[first];
      if (flag == "--threads") {
        check(first + 1 < args.size(), "--threads requires a value");
        set_thread_override(parse_thread_count(args[first + 1]));
        first += 2;
      } else if (flag.starts_with("--threads=")) {
        set_thread_override(parse_thread_count(flag.substr(10)));
        first += 1;
      } else if (flag == "--trace" || flag == "--metrics") {
        check(first + 1 < args.size(), flag + " requires a file path");
        (flag == "--trace" ? trace_file : metrics_file) = args[first + 1];
        first += 2;
      } else if (flag.starts_with("--trace=")) {
        trace_file = flag.substr(8);
        first += 1;
      } else if (flag.starts_with("--metrics=")) {
        metrics_file = flag.substr(10);
        first += 1;
      } else {
        fail("unknown option '" + flag + "'");
      }
    }
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  }
  if (!trace_file.empty() || !metrics_file.empty()) {
    trace::reset();
    trace::set_enabled(true);
  }
  // Writes the requested observability files; runs even when the command
  // failed, so a crashing tune still leaves its partial timeline behind.
  auto write_observability = [&](int rc) {
    try {
      if (!trace_file.empty()) trace::write_trace_file(trace_file);
      if (!metrics_file.empty()) trace::write_metrics_file(metrics_file);
    } catch (const std::exception& e) {
      out << "error: " << e.what() << "\n";
      return rc == 0 ? 1 : rc;
    }
    return rc;
  };
  if (first >= args.size()) return write_observability(usage(out));
  const std::string cmd = args[first];
  const std::vector<std::string> rest(args.begin() +
                                          static_cast<std::ptrdiff_t>(first) +
                                          1,
                                      args.end());
  try {
    if (cmd == "devices") return write_observability(cmd_devices(out));
    if (cmd == "emit") return write_observability(cmd_emit(rest, out));
    if (cmd == "compile") return write_observability(cmd_compile(rest, out));
    if (cmd == "tune") return write_observability(cmd_tune(rest, out));
    if (cmd == "estimate")
      return write_observability(cmd_estimate(rest, out));
    if (cmd == "sweep") return write_observability(cmd_sweep(rest, out));
    if (cmd == "verify") return write_observability(cmd_verify(rest, out));
    return write_observability(usage(out));
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return write_observability(1);
  }
}

}  // namespace gemmtune::cli
