// Shape-aware batching scheduler: a bounded admission queue that groups
// pending requests by ShapeClass and forms dispatch batches.
//
// Design points (all load-bearing for the serve report's determinism):
//  * Bounded queue: admit() refuses requests once `queue_capacity` are
//    pending — the service's backpressure signal. The caller turns a
//    refusal into a RejectedQueueFull response instead of queueing
//    unboundedly.
//  * Deterministic selection: group_views() orders groups by head
//    priority (descending), breaking ties by earliest arrival, then
//    lowest request id, then ShapeClass order. Within a group requests
//    leave in FIFO order. No wall-clock input anywhere, so a replayed
//    workload forms the identical batch sequence.
//  * Deadline enforcement at dispatch: requests whose deadline has passed
//    by the simulated clock are skimmed off into `expired` rather than
//    dispatched, charging the batch only for live work.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "serve/request.hpp"

namespace gemmtune::serve {

/// A formed batch: same-shape-class requests served by one dispatch.
struct PendingBatch {
  ShapeClass shape;
  std::vector<GemmRequest> requests;
};

class BatchScheduler {
 public:
  BatchScheduler(int max_batch, int queue_capacity);

  /// Admits a request; false when the queue is full (backpressure).
  bool admit(const GemmRequest& r);

  std::size_t depth() const { return depth_; }
  std::size_t peak_depth() const { return peak_depth_; }
  bool empty() const { return depth_ == 0; }

  /// One pending group as seen by the dispatcher: its shape class, the
  /// request at its head, and how many live requests queue behind it.
  struct GroupView {
    ShapeClass shape;
    GemmRequest head;
    std::size_t size = 0;
  };

  /// Skims deadline-expired requests off every group head into `expired`
  /// and returns the remaining groups in dispatch-priority order: head
  /// priority descending, then head arrival ascending, then head id, then
  /// ShapeClass order. The caller walks this list and decides, per group,
  /// whether a device is worth dispatching to now or the group should
  /// wait for a better device to free up.
  std::vector<GroupView> group_views(double clock,
                                     std::vector<GemmRequest>& expired);

  /// Pops up to `max_take` (>= 1) requests of `shape` in FIFO order as one
  /// batch. Requests past their deadline at `clock` are appended to
  /// `expired` without counting against the batch. Returns nullopt when
  /// the group has no live request left.
  std::optional<PendingBatch> pop_from(const ShapeClass& shape, double clock,
                                       std::size_t max_take,
                                       std::vector<GemmRequest>& expired);

 private:
  /// Drops expired requests from the front of `q` into `expired`.
  void skim_expired(std::deque<GemmRequest>& q, double clock,
                    std::vector<GemmRequest>& expired);

  int max_batch_;
  int capacity_;
  std::size_t depth_ = 0;
  std::size_t peak_depth_ = 0;
  std::map<ShapeClass, std::deque<GemmRequest>> groups_;
};

}  // namespace gemmtune::serve
