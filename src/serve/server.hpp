// The GEMM serving engine: warm cache, shape-aware scheduling across
// several simulated devices, and the "gemmtune-serve-v1" report.
//
// Lifecycle:
//  1. warmup() — loads the persistent tuned-kernel cache (if configured),
//     profiles whatever device x precision entries are missing on the
//     worker pool, saves the cache back atomically, and builds one
//     GemmEngine per device. Cold-start tuning therefore never blocks a
//     request: no traffic is admitted before warmup returns.
//  2. run() — a deterministic discrete-event simulation of the service.
//     Per-batch costs come from a shape-class estimate table that is
//     precomputed in parallel (PerfModel is a pure function, so thread
//     count cannot change any value in it); the event loop itself is
//     serial, so the same workload yields the bit-identical outcome at
//     any --threads / GEMMTUNE_THREADS setting.
//
// Batch cost model: one dispatch pays a fixed enqueue overhead (the
// OpenCL-era kernel-launch cost) plus the per-request time of the batch's
// shape class on the chosen device — the PerfModel-backed choice between
// the pack path and the paper Section V copy-free direct path. Coalescing
// B same-class requests into one dispatch amortizes the overhead B-fold,
// which is exactly where the batched service beats the one-request-at-a-
// time baseline.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "dist/executor.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "tuner/strategy/strategy.hpp"

namespace gemmtune::serve {

/// Service configuration beyond what the workload spec carries.
struct ServeOptions {
  /// Per-dispatch enqueue overhead (seconds of simulated device time).
  double dispatch_overhead_seconds = 25e-6;
  /// Cap on one batch's serial device time: a batch of B requests holds
  /// its device for B * estimate seconds, so B is limited to
  /// max_batch_seconds / estimate. Cheap shapes (where the dispatch
  /// overhead actually matters) batch up to max_batch; an expensive GEMM
  /// dispatches alone, keeping load balancing as fine-grained as the
  /// unbatched baseline. <= 0 disables the cap.
  double max_batch_seconds = 2e-3;
  /// Stage-2 sweep ceiling for warmup profiling of missing cache entries
  /// (smaller than the tuner's 8192: serving needs the kernel parameters,
  /// not the full paper curve).
  std::int64_t warmup_sweep_n = 2048;
  /// Worker threads for warmup and estimate precompute. 0 follows the
  /// process-wide configuration (--threads / GEMMTUNE_THREADS / hardware),
  /// so the service honors the same concurrency controls as the tuner.
  int threads = 0;
  /// Persistent warm-cache path (TunedDatabase JSON). Empty: in-memory
  /// only. A corrupt cache file is ignored (and rewritten), not fatal.
  std::string cache_path;
  /// Problem-size threshold for the distributed path: a request whose
  /// largest extent reaches this value bypasses batching and runs as a
  /// tile-partitioned GEMM across the whole fleet (src/dist). Such a
  /// request acts as a fleet barrier — no new batch is fed while it
  /// waits, so the devices drain and then all execute it together.
  /// <= 0 disables distributed dispatch. The default sits above the
  /// generated workload's largest shape (2048), so distribution only
  /// triggers for explicitly oversized requests.
  index_t dist_threshold_n = 4096;
  /// Input-aware warmup: a --strategy spec (e.g. "model_topk,budget=64").
  /// When set, the estimate table is built from kernels tuned per observed
  /// shape class by the budgeted strategy instead of the size-agnostic
  /// Table II warmup kernel. Empty keeps the classic behavior.
  std::string tune_strategy;
  /// Enumeration budget for each per-class strategy tune (the candidate
  /// space the strategy searches within). Only used with tune_strategy.
  int tune_candidates = 1500;
};

/// What warmup did (surfaced by the CLI).
struct WarmupInfo {
  std::size_t loaded = 0;    ///< entries taken from the cache file
  std::size_t profiled = 0;  ///< entries profiled this run
  bool cache_ignored = false;  ///< cache file existed but was corrupt
  std::string cache_error;     ///< why it was ignored
};

/// One dispatched batch, in simulated time.
struct BatchRecord {
  std::int64_t id = 0;
  int device_index = 0;  ///< -1 for a distributed (whole-fleet) dispatch
  ShapeClass shape;
  int size = 0;
  double start_seconds = 0;
  double finish_seconds = 0;
  bool used_direct = false;
  bool distributed = false;  ///< ran tiled across every device (src/dist)
};

/// Per-device aggregates over one run.
struct DeviceStats {
  std::int64_t batches = 0;
  std::int64_t requests = 0;
  double busy_seconds = 0;
};

/// Everything one simulated run produced.
struct ServeOutcome {
  std::vector<GemmResponse> responses;  ///< parallel to the request vector
  std::vector<BatchRecord> batches;
  std::vector<DeviceStats> device_stats;  ///< parallel to the device list
  std::size_t peak_queue_depth = 0;
  double makespan_seconds = 0;  ///< first arrival -> last completion
  double completed_flops = 0;
};

/// Modeled cost of serving one request of a shape class on one device:
/// the PerfModel-backed choice between the pack path and the copy-free
/// direct path. Shared between the serial event loop and the concurrent
/// core (src/serve/core), which must place batches from the same numbers
/// to stay differentially comparable.
struct PathEstimate {
  double seconds = 0;       ///< per-request service time
  bool used_direct = false;
  double gflops = 0;
};

class GemmServer {
 public:
  GemmServer(std::vector<simcl::DeviceId> devices, ServeOptions opt);

  const std::vector<simcl::DeviceId>& devices() const { return devices_; }
  const ServeOptions& options() const { return opt_; }
  bool warmed() const { return warmed_; }

  /// Prepares tuned kernels for every device x {DGEMM, SGEMM} before any
  /// traffic is admitted. Must be called once before run().
  WarmupInfo warmup();

  /// Serves `requests` (sorted by arrival; ids unique) with batches of up
  /// to `max_batch` and a bounded queue of `queue_capacity`. Deterministic
  /// for fixed inputs at any thread count. max_batch == 1 is the
  /// unbatched one-request-at-a-time baseline.
  ServeOutcome run(const std::vector<GemmRequest>& requests, int max_batch,
                   int queue_capacity);

  /// Fills the estimate table for every shape class in `requests` on every
  /// device (parallel; pure, so thread-count invariant).
  void ensure_estimates(const std::vector<GemmRequest>& requests);

  /// The estimate row (index parallel to devices()) for one shape class;
  /// throws if ensure_estimates has not covered it.
  const std::vector<PathEstimate>& estimates_for(const ShapeClass& s) const;

  /// The whole estimate table (the async core snapshots it at start and
  /// lets its re-tuner refresh the snapshot without touching this one).
  const std::map<ShapeClass, std::vector<PathEstimate>>& estimates() const {
    return estimates_;
  }

  /// Warmed per-device engines (parallel to devices()); valid after
  /// warmup(). GemmEngine::gemm/estimate are safe to call concurrently.
  const std::vector<std::unique_ptr<blas::GemmEngine>>& engines() const {
    return engines_;
  }

  /// Modeled fleet makespan of one distributed request (memoized; builds
  /// the executor over the warmed engines on first use).
  double dist_seconds(const GemmRequest& r);

  /// Recomputes one device's estimate column for `shapes` from scratch
  /// (the async core's re-tuner exercises this refresh path). Classic
  /// mode re-profiles the Table II kernel into a fresh engine; guided
  /// mode re-derives the rows from the per-class tuned kernels. Either
  /// way the simulator is deterministic, so the values match the table.
  std::vector<PathEstimate> fresh_estimates(
      std::size_t d, codegen::Precision prec,
      const std::vector<ShapeClass>& shapes);

  /// Distinct per-shape-class kernels tuned so far (guided mode only).
  std::size_t class_kernels() const { return class_db_.size(); }

 private:
  /// One device x shape-class estimate via the guided strategy: tunes a
  /// kernel for the class (memoized in class_db_) and prices it with
  /// shape_cost, the same cost model the classic path uses.
  PathEstimate class_estimate(std::size_t d, const ShapeClass& s);

  std::vector<simcl::DeviceId> devices_;
  ServeOptions opt_;
  /// Parsed opt_.tune_strategy (parsed eagerly so a bad spec fails at
  /// construction, not mid-warmup); empty = classic warmup.
  std::optional<tuner::strategy::StrategySpec> strategy_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<blas::GemmEngine>> engines_;
  /// Per-shape-class tuned kernels (guided mode); get_or_tune dedupes
  /// concurrent tunes of the same class.
  tuner::TunedDatabase class_db_;
  /// One SearchEngine per device (guided mode, built lazily): its
  /// candidate-space memo makes the enumeration walk a once-per-device
  /// cost instead of once per shape class.
  std::vector<std::unique_ptr<tuner::SearchEngine>> search_engines_;
  /// shape class -> per-device estimate (index parallel to devices_).
  std::map<ShapeClass, std::vector<PathEstimate>> estimates_;
  std::unique_ptr<dist::DistExecutor> dist_;
  std::map<std::tuple<GemmType, codegen::Precision, index_t, index_t,
                      index_t>,
           double>
      dist_cache_;
  bool warmed_ = false;
};

/// Flattens one outcome into a report's scalar map under `prefix`
/// (requests.*, batches.*, latency_ms.*, queue.*, sim.*, throughput.*).
/// Shared by the serial and the concurrent (src/serve/core) reports.
void outcome_scalars(Json& scalars, const std::string& prefix,
                     const std::vector<GemmRequest>& requests,
                     const ServeOutcome& o);

/// Builds the "gemmtune-serve-v1" report from a batched run and its
/// unbatched baseline on the same workload. The document is a pure
/// function of its inputs (no wall clock), so identical runs produce
/// byte-identical reports; `scalars` follows the bench-report convention
/// consumed by tools/compare_bench.py.
Json build_report(const WorkloadSpec& spec,
                  const std::vector<GemmRequest>& requests,
                  const ServeOutcome& batched, const ServeOutcome& unbatched,
                  const ServeOptions& opt);

}  // namespace gemmtune::serve
