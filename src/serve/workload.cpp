#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/report_version.hpp"
#include "common/rng.hpp"

namespace gemmtune::serve {

using codegen::Precision;

namespace {

struct Shape {
  index_t M, N, K;
};

// The size palettes of the mixture. Quantized-popular sizes plus a couple
// of deliberately unaligned ones (50, 100) so the shape-class bucketing is
// exercised by every default workload.
constexpr Shape kSmall[] = {
    {16, 16, 16},   {32, 32, 32},  {48, 48, 48},
    {50, 50, 50},   {64, 64, 64},  {64, 64, 32},
    {96, 96, 96},   {100, 100, 100}, {128, 128, 128},
    {128, 64, 64},
};
constexpr Shape kMedium[] = {
    {256, 256, 256}, {384, 384, 384}, {512, 512, 512},
    {512, 256, 256}, {768, 768, 768},
};
constexpr Shape kLarge[] = {
    {1024, 1024, 1024},
    {1536, 1536, 1536},
    {2048, 2048, 2048},
};

// Per-class latency budget: generous at the default rate (the acceptance
// bar is zero deadline violations there) yet tight enough that a
// saturating workload visibly expires requests.
constexpr double kSmallDeadline = 0.10;
constexpr double kMediumDeadline = 0.30;
constexpr double kLargeDeadline = 2.0;

Precision parse_precision(const std::string& s) {
  if (s == to_string(Precision::DP)) return Precision::DP;
  if (s == to_string(Precision::SP)) return Precision::SP;
  fail("workload: unknown precision '" + s + "'");
}

GemmType parse_type(const std::string& s) {
  for (GemmType t : all_gemm_types()) {
    if (s == to_string(t)) return t;
  }
  fail("workload: unknown GEMM type '" + s + "'");
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t n = std::stoll(value, &used);
    check(used == value.size(),
          "workload spec: " + key + " expects an integer, got '" + value +
              "'");
    return n;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail("workload spec: " + key + " expects an integer, got '" + value +
         "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double d = std::stod(value, &used);
    check(used == value.size(),
          "workload spec: " + key + " expects a number, got '" + value +
              "'");
    return d;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail("workload spec: " + key + " expects a number, got '" + value + "'");
  }
}

}  // namespace

Arrival parse_arrival(const std::string& context, const std::string& value) {
  if (value == "poisson") return Arrival::Poisson;
  if (value == "uniform") return Arrival::Uniform;
  if (value == "burst") return Arrival::Burst;
  fail_unknown_value(context, value, {"poisson", "uniform", "burst"});
}

std::vector<simcl::DeviceId> WorkloadSpec::resolved_devices() const {
  return devices.empty() ? simcl::evaluation_devices() : devices;
}

WorkloadSpec parse_spec(const std::string& text) {
  WorkloadSpec spec;
  for (const auto& [key, value] : parse_keyval_spec(text, "workload spec")) {
    if (key == "requests") {
      spec.requests = static_cast<int>(parse_int(key, value));
      check(spec.requests > 0, "workload spec: requests must be > 0");
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "rate") {
      spec.rate_rps = parse_double(key, value);
      check(spec.rate_rps > 0, "workload spec: rate must be > 0");
    } else if (key == "arrival") {
      spec.arrival = parse_arrival("workload spec: arrival", value);
    } else if (key == "max_batch") {
      spec.max_batch = static_cast<int>(parse_int(key, value));
      check(spec.max_batch >= 1, "workload spec: max_batch must be >= 1");
    } else if (key == "queue") {
      spec.queue_capacity = static_cast<int>(parse_int(key, value));
      check(spec.queue_capacity >= 1, "workload spec: queue must be >= 1");
    } else if (key == "devices") {
      spec.devices.clear();
      std::istringstream ds(value);
      std::string name;
      while (std::getline(ds, name, '+'))
        spec.devices.push_back(simcl::device_by_name(name));
      check(!spec.devices.empty(), "workload spec: devices list is empty");
    } else {
      fail_unknown_key("workload spec", key,
                       {"requests", "seed", "rate", "arrival", "devices",
                        "max_batch", "queue"});
    }
  }
  return spec;
}

std::vector<GemmRequest> generate_workload(const WorkloadSpec& spec) {
  Rng rng(spec.seed);
  std::vector<GemmRequest> out;
  out.reserve(static_cast<std::size_t>(spec.requests));
  double t = 0;
  for (int i = 0; i < spec.requests; ++i) {
    // Fixed draw order per request — interarrival, class, shape,
    // precision, type, priority — so the stream is a pure function of the
    // seed regardless of how any draw is consumed downstream. Every
    // arrival process consumes the interarrival draw (even when it ignores
    // it), so the request *mixture* is identical across processes.
    const double u = rng.next_double();
    switch (spec.arrival) {
      case Arrival::Poisson:
        t += -std::log(1.0 - u) / spec.rate_rps;
        break;
      case Arrival::Uniform:
        t += 1.0 / spec.rate_rps;
        break;
      case Arrival::Burst:
        // kBurstSize requests land at one instant; the gap between bursts
        // is exponential with mean kBurstSize/rate, preserving the rate.
        if (i % kBurstSize == 0)
          t += -std::log(1.0 - u) * kBurstSize / spec.rate_rps;
        break;
    }
    const double cls = rng.next_double();
    const Shape* palette;
    std::size_t palette_size;
    double deadline_budget;
    if (cls < 0.70) {
      palette = kSmall;
      palette_size = std::size(kSmall);
      deadline_budget = kSmallDeadline;
    } else if (cls < 0.95) {
      palette = kMedium;
      palette_size = std::size(kMedium);
      deadline_budget = kMediumDeadline;
    } else {
      palette = kLarge;
      palette_size = std::size(kLarge);
      deadline_budget = kLargeDeadline;
    }
    const Shape s = palette[rng.next_below(palette_size)];
    GemmRequest r;
    r.id = i;
    r.M = s.M;
    r.N = s.N;
    r.K = s.K;
    r.prec = rng.next_double() < 0.5 ? Precision::DP : Precision::SP;
    const double ty = rng.next_double();
    r.type = ty < 0.70   ? GemmType::NN
             : ty < 0.80 ? GemmType::NT
             : ty < 0.90 ? GemmType::TN
                         : GemmType::TT;
    const double pr = rng.next_double();
    r.priority = pr < 0.80 ? 0 : pr < 0.95 ? 1 : 2;
    r.arrival_seconds = t;
    r.deadline_seconds = t + deadline_budget;
    out.push_back(r);
  }
  return out;
}

Json workload_json(const WorkloadSpec& spec,
                   const std::vector<GemmRequest>& requests) {
  Json doc = Json::object();
  doc["schema"] = kWorkloadSchema;
  Json sp = Json::object();
  sp["seed"] = static_cast<std::int64_t>(spec.seed);
  sp["requests"] = spec.requests;
  sp["rate_rps"] = spec.rate_rps;
  sp["arrival"] = to_string(spec.arrival);
  Json devs = Json::array();
  for (simcl::DeviceId id : spec.resolved_devices())
    devs.push_back(simcl::to_string(id));
  sp["devices"] = std::move(devs);
  sp["max_batch"] = spec.max_batch;
  sp["queue_capacity"] = spec.queue_capacity;
  doc["spec"] = std::move(sp);
  Json reqs = Json::array();
  for (const GemmRequest& r : requests) {
    Json j = Json::object();
    j["id"] = r.id;
    j["type"] = to_string(r.type);
    j["prec"] = to_string(r.prec);
    j["m"] = r.M;
    j["n"] = r.N;
    j["k"] = r.K;
    j["priority"] = r.priority;
    j["arrival_s"] = r.arrival_seconds;
    j["deadline_s"] = r.deadline_seconds;
    reqs.push_back(std::move(j));
  }
  doc["requests"] = std::move(reqs);
  return doc;
}

Workload workload_from_json(const Json& doc) {
  check(doc.contains("schema") &&
            doc.at("schema").as_string() == kWorkloadSchema,
        "workload: not a " + std::string(kWorkloadSchema) + " document");
  Workload w;
  const Json& sp = doc.at("spec");
  w.spec.seed = static_cast<std::uint64_t>(sp.at("seed").as_int());
  w.spec.requests = static_cast<int>(sp.at("requests").as_int());
  w.spec.rate_rps = sp.at("rate_rps").as_number();
  // Traces written before the arrival key existed are Poisson by
  // construction, so the absent-field default keeps them loading.
  if (sp.contains("arrival"))
    w.spec.arrival =
        parse_arrival("workload spec: arrival", sp.at("arrival").as_string());
  const Json& devs = sp.at("devices");
  for (std::size_t i = 0; i < devs.size(); ++i)
    w.spec.devices.push_back(simcl::device_by_name(devs.at(i).as_string()));
  w.spec.max_batch = static_cast<int>(sp.at("max_batch").as_int());
  w.spec.queue_capacity =
      static_cast<int>(sp.at("queue_capacity").as_int());
  const Json& reqs = doc.at("requests");
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Json& j = reqs.at(i);
    GemmRequest r;
    r.id = j.at("id").as_int();
    r.type = parse_type(j.at("type").as_string());
    r.prec = parse_precision(j.at("prec").as_string());
    r.M = j.at("m").as_int();
    r.N = j.at("n").as_int();
    r.K = j.at("k").as_int();
    check(r.M > 0 && r.N > 0 && r.K > 0,
          "workload: request " + std::to_string(r.id) +
              " has non-positive extents");
    r.priority = static_cast<int>(j.at("priority").as_int());
    r.arrival_seconds = j.at("arrival_s").as_number();
    r.deadline_seconds = j.at("deadline_s").as_number();
    w.requests.push_back(r);
  }
  std::sort(w.requests.begin(), w.requests.end(),
            [](const GemmRequest& a, const GemmRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });
  return w;
}

void save_workload_file(const std::string& path, const WorkloadSpec& spec,
                        const std::vector<GemmRequest>& requests) {
  // Same crash-safety discipline as TunedDatabase::save_file: a reader
  // never observes a half-written trace.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    check(f.good(), "save_workload_file: cannot open " + tmp);
    f << workload_json(spec, requests).dump(2) << "\n";
    f.flush();
    check(f.good(), "save_workload_file: write failed for " + tmp);
  }
  check(std::rename(tmp.c_str(), path.c_str()) == 0,
        "save_workload_file: cannot rename " + tmp + " -> " + path);
}

Workload load_workload_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "load_workload_file: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    return workload_from_json(Json::parse(ss.str()));
  } catch (const Error& e) {
    fail("load_workload_file: corrupt workload trace '" + path +
         "': " + e.what());
  }
}

}  // namespace gemmtune::serve
