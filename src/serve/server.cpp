#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <limits>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/report_version.hpp"
#include "common/runmeta.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/interp.hpp"
#include "trace/trace.hpp"

namespace gemmtune::serve {

using codegen::Precision;

GemmServer::GemmServer(std::vector<simcl::DeviceId> devices, ServeOptions opt)
    : devices_(std::move(devices)), opt_(std::move(opt)),
      pool_(opt_.threads) {
  check(!devices_.empty(), "GemmServer: need at least one device");
  check(opt_.dispatch_overhead_seconds >= 0,
        "GemmServer: dispatch overhead must be >= 0");
  if (!opt_.tune_strategy.empty()) {
    strategy_ = tuner::strategy::parse_strategy_spec(opt_.tune_strategy);
    check(opt_.tune_candidates > 0,
          "GemmServer: tune_candidates must be > 0");
    search_engines_.reserve(devices_.size());
    for (simcl::DeviceId id : devices_)
      search_engines_.push_back(std::make_unique<tuner::SearchEngine>(id));
  }
}

WarmupInfo GemmServer::warmup() {
  trace::Span span("serve.warmup");
  WarmupInfo info;
  tuner::TunedDatabase db;
  if (!opt_.cache_path.empty()) {
    if (std::ifstream probe(opt_.cache_path); probe.good()) {
      probe.close();
      try {
        db = tuner::TunedDatabase::load_file(opt_.cache_path);
      } catch (const Error& e) {
        // A serving process must survive a torn/corrupt cache: start cold
        // and overwrite it below.
        info.cache_ignored = true;
        info.cache_error = e.what();
        db = tuner::TunedDatabase();
      }
    }
  }
  struct Missing {
    simcl::DeviceId id;
    Precision prec;
  };
  std::vector<Missing> missing;
  for (simcl::DeviceId id : devices_) {
    for (Precision prec : {Precision::DP, Precision::SP}) {
      if (db.find(id, prec))
        ++info.loaded;
      else
        missing.push_back({id, prec});
    }
  }
  // Profile the gaps in parallel; TunedDatabase::put is thread-safe and
  // each (device, precision) key is written by exactly one chunk.
  pool_.parallel_for(
      static_cast<std::int64_t>(missing.size()),
      [&](std::int64_t begin, std::int64_t end, int) {
        for (std::int64_t i = begin; i < end; ++i) {
          const Missing& m = missing[static_cast<std::size_t>(i)];
          db.put(m.id, m.prec,
                 tuner::profile_kernel(
                     m.id, codegen::table2_entry(m.id, m.prec).params,
                     opt_.warmup_sweep_n));
        }
      });
  info.profiled = missing.size();
  trace::counter_add("serve.warmup_profiled", info.profiled);
  if (!opt_.cache_path.empty() && (info.profiled > 0 || info.cache_ignored))
    db.save_file(opt_.cache_path);
  engines_.clear();
  engines_.reserve(devices_.size());
  for (simcl::DeviceId id : devices_) {
    tuner::TunedDatabase local;
    for (Precision prec : {Precision::DP, Precision::SP})
      local.put(id, prec, *db.find(id, prec));
    engines_.push_back(
        std::make_unique<blas::GemmEngine>(id, std::move(local)));
  }
  warmed_ = true;
  return info;
}

void GemmServer::ensure_estimates(
    const std::vector<GemmRequest>& requests) {
  std::vector<ShapeClass> shapes;
  for (const GemmRequest& r : requests) {
    const ShapeClass s = ShapeClass::of(r);
    if (!estimates_.contains(s)) shapes.push_back(s);
  }
  std::sort(shapes.begin(), shapes.end());
  shapes.erase(std::unique(shapes.begin(), shapes.end()), shapes.end());
  if (shapes.empty()) return;
  trace::Span span("serve.precompute");
  if (strategy_) {
    // Guided warmup: tune a kernel per (device, shape class) with the
    // configured strategy. The outer loop stays serial — each strategy
    // parallelizes its own search internally, and every strategy is
    // bit-reproducible at any thread count, so the table is too.
    for (const ShapeClass& s : shapes) {
      std::vector<PathEstimate>& per_dev = estimates_[s];
      per_dev.resize(devices_.size());
      for (std::size_t d = 0; d < devices_.size(); ++d)
        per_dev[d] = class_estimate(d, s);
    }
    return;
  }
  const std::int64_t nd = static_cast<std::int64_t>(devices_.size());
  const std::int64_t ns = static_cast<std::int64_t>(shapes.size());
  // Device-major flat index; GemmEngine::estimate is safe to call
  // concurrently once warmup populated every (device, precision) entry,
  // and PerfModel is pure, so this table is thread-count invariant.
  const auto flat = parallel_map<PathEstimate>(
      pool_, nd * ns, [&](std::int64_t i) {
        const auto d = static_cast<std::size_t>(i / ns);
        const ShapeClass& s = shapes[static_cast<std::size_t>(i % ns)];
        const auto prof =
            engines_[d]->estimate(s.type, s.prec, s.Mc, s.Nc, s.Kc);
        return PathEstimate{prof.total_seconds, prof.used_direct,
                            prof.gflops};
      });
  for (std::int64_t si = 0; si < ns; ++si) {
    std::vector<PathEstimate>& per_dev =
        estimates_[shapes[static_cast<std::size_t>(si)]];
    per_dev.resize(static_cast<std::size_t>(nd));
    for (std::int64_t d = 0; d < nd; ++d)
      per_dev[static_cast<std::size_t>(d)] =
          flat[static_cast<std::size_t>(d * ns + si)];
  }
}

const std::vector<PathEstimate>& GemmServer::estimates_for(
    const ShapeClass& s) const {
  const auto it = estimates_.find(s);
  check(it != estimates_.end(),
        "GemmServer::estimates_for: no estimates for " + to_string(s) +
            " (call ensure_estimates first)");
  return it->second;
}

PathEstimate GemmServer::class_estimate(std::size_t d, const ShapeClass& s) {
  const simcl::DeviceId id = devices_[d];
  const tuner::TunedKernel& t = class_db_.get_or_tune(id, s.prec, s, [&] {
    trace::Span tune_span("serve.class_tune");
    tuner::SearchOptions sopt;
    sopt.enumeration.max_candidates = opt_.tune_candidates;
    sopt.threads = opt_.threads;
    sopt.shape = s;
    return tuner::strategy::run_strategy(*search_engines_[d], s.prec, sopt,
                                         *strategy_);
  });
  // Price the class kernel with the same cost model the classic path uses
  // (pack path vs guarded direct), so estimates stay comparable across
  // modes; the strategy can only improve on the Table II seed it includes.
  const tuner::ShapeCost c =
      tuner::shape_cost(engines_[d]->model(), t.params, s.Mc, s.Nc, s.Kc);
  check(c.ok, "GemmServer::class_estimate: tuned kernel unusable for " +
                  to_string(s));
  return PathEstimate{c.seconds, c.used_direct, c.gflops};
}

std::vector<PathEstimate> GemmServer::fresh_estimates(
    std::size_t d, Precision prec, const std::vector<ShapeClass>& shapes) {
  check(d < devices_.size(), "GemmServer::fresh_estimates: bad device");
  std::vector<PathEstimate> col(shapes.size());
  if (strategy_) {
    for (std::size_t i = 0; i < shapes.size(); ++i)
      col[i] = class_estimate(d, shapes[i]);
    return col;
  }
  // Classic refresh: re-profile the Table II kernel into a fresh engine
  // and re-derive the rows, exactly as warmup would.
  const simcl::DeviceId id = devices_[d];
  tuner::TunedDatabase fresh;
  fresh.put(id, prec,
            tuner::profile_kernel(id, codegen::table2_entry(id, prec).params,
                                  opt_.warmup_sweep_n));
  blas::GemmEngine engine(id, std::move(fresh));
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const ShapeClass& s = shapes[i];
    const auto prof = engine.estimate(s.type, s.prec, s.Mc, s.Nc, s.Kc);
    col[i] = PathEstimate{prof.total_seconds, prof.used_direct, prof.gflops};
  }
  return col;
}

double GemmServer::dist_seconds(const GemmRequest& r) {
  const auto key = std::make_tuple(r.type, r.prec, r.M, r.N, r.K);
  const auto it = dist_cache_.find(key);
  if (it != dist_cache_.end()) return it->second;
  if (!dist_) {
    std::vector<blas::GemmEngine*> engines;
    engines.reserve(engines_.size());
    for (const auto& e : engines_) engines.push_back(e.get());
    dist_ = std::make_unique<dist::DistExecutor>(
        std::move(engines), dist::DistOptions{opt_.threads});
  }
  const double s = dist_->estimate_seconds(r.type, r.prec, r.M, r.N, r.K);
  dist_cache_.emplace(key, s);
  return s;
}

ServeOutcome GemmServer::run(const std::vector<GemmRequest>& requests,
                             int max_batch, int queue_capacity) {
  check(warmed_, "GemmServer::run: call warmup() first");
  ensure_estimates(requests);
  trace::Span span("serve.simulate");

  const std::size_t n = requests.size();
  std::map<std::int64_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < n; ++i) {
    check(slot_of.emplace(requests[i].id, i).second,
          "GemmServer::run: duplicate request id " +
              std::to_string(requests[i].id));
    check(i == 0 || requests[i - 1].arrival_seconds <=
                        requests[i].arrival_seconds,
          "GemmServer::run: requests must be sorted by arrival time");
  }

  ServeOutcome out;
  out.responses.resize(n);
  out.device_stats.resize(devices_.size());

  struct Running {
    PendingBatch batch;
    double start = 0;
    double finish = 0;
    bool used_direct = false;
    bool distributed = false;
    std::int64_t batch_id = 0;
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::optional<Running>> running(devices_.size());
  BatchScheduler sched(max_batch, queue_capacity);
  std::deque<GemmRequest> dist_queue;  // oversized requests, FIFO
  const auto is_distributed = [&](const GemmRequest& r) {
    return opt_.dist_threshold_n > 0 &&
           std::max({r.M, r.N, r.K}) >= opt_.dist_threshold_n;
  };
  std::size_t next_arrival = 0;
  double last_finish = 0;

  const auto complete = [&](int d) {
    const Running& run = *running[static_cast<std::size_t>(d)];
    for (const GemmRequest& r : run.batch.requests) {
      GemmResponse& resp = out.responses[slot_of.at(r.id)];
      resp.request_id = r.id;
      resp.status = RequestStatus::Completed;
      resp.finish_seconds = run.finish;
      resp.latency_seconds = run.finish - r.arrival_seconds;
      resp.wait_seconds = run.start - r.arrival_seconds;
      resp.device_index = run.distributed ? -1 : d;
      resp.batch_id = run.batch_id;
      resp.batch_size = static_cast<int>(run.batch.requests.size());
      resp.used_direct = run.used_direct;
      out.completed_flops += r.flops();
      trace::counter_add(
          "serve.wait_us",
          static_cast<std::uint64_t>(resp.wait_seconds * 1e6));
    }
    DeviceStats& ds = out.device_stats[static_cast<std::size_t>(d)];
    // A distributed dispatch occupies every device but is one batch; only
    // the device carrying the request record counts it.
    if (!run.batch.requests.empty()) ds.batches += 1;
    ds.requests += static_cast<std::int64_t>(run.batch.requests.size());
    ds.busy_seconds += run.finish - run.start;
    last_finish = std::max(last_finish, run.finish);
    running[static_cast<std::size_t>(d)].reset();
  };

  const auto reject = [&](const GemmRequest& r, RequestStatus status,
                          double when) {
    GemmResponse& resp = out.responses[slot_of.at(r.id)];
    resp.request_id = r.id;
    resp.status = status;
    resp.finish_seconds = when;
    resp.wait_seconds = when - r.arrival_seconds;
    trace::counter_add(status == RequestStatus::RejectedQueueFull
                           ? "serve.rejects_queue_full"
                           : "serve.rejects_deadline",
                       1);
  };

  for (;;) {
    const double t_arrival =
        next_arrival < n ? requests[next_arrival].arrival_seconds : kInf;
    double t_device = kInf;
    for (const auto& r : running)
      if (r) t_device = std::min(t_device, r->finish);
    const double clock = std::min(t_arrival, t_device);
    if (!std::isfinite(clock)) break;  // drained: no arrivals, all idle

    // 1. Completions at `clock`, in device order.
    for (std::size_t d = 0; d < running.size(); ++d)
      if (running[d] && running[d]->finish <= clock)
        complete(static_cast<int>(d));

    // 2. Admissions at `clock` (bounded queue -> backpressure).
    while (next_arrival < n &&
           requests[next_arrival].arrival_seconds <= clock) {
      const GemmRequest& r = requests[next_arrival++];
      trace::counter_add("serve.requests", 1);
      if (is_distributed(r)) {
        dist_queue.push_back(r);
        trace::counter_add("serve.distributed_requests", 1);
      } else if (!sched.admit(r)) {
        reject(r, RequestStatus::RejectedQueueFull, r.arrival_seconds);
      }
    }

    // 3. Dispatch by earliest completion time. For each pending group (in
    //    priority order) the preferred device minimises
    //    free_time + overhead + estimate over ALL devices — idle or busy.
    //    A group whose preferred device is busy waits for it: handing its
    //    work to a slower idle device just because it is idle is how a
    //    CPU ends up serialising 2048^3 GEMMs while the fast GPU sits at
    //    half load (the classic list-scheduling anomaly). Cheap shapes
    //    always find an idle device with a competitive completion time,
    //    so devices rarely idle while compatible work queues.
    for (;;) {
      std::size_t idle = 0;
      for (const auto& r : running) idle += r ? 0 : 1;
      if (idle == 0) break;
      // A pending distributed request is a fleet barrier: no new batch is
      // fed while it waits, so the devices drain; once every device is
      // idle the request occupies them all for the modeled tiled-fleet
      // makespan (src/dist), then normal dispatching resumes.
      if (!dist_queue.empty()) {
        if (idle < running.size()) break;
        const GemmRequest r = dist_queue.front();
        dist_queue.pop_front();
        if (r.deadline_seconds < clock) {
          reject(r, RequestStatus::RejectedDeadline, clock);
          continue;
        }
        trace::Span dist_span("serve.dist_batch");
        const double secs = dist_seconds(r);
        const double finish =
            clock + opt_.dispatch_overhead_seconds + secs;
        const std::int64_t batch_id =
            static_cast<std::int64_t>(out.batches.size());
        for (std::size_t d = 0; d < running.size(); ++d) {
          Running run;
          run.batch.shape = ShapeClass::of(r);
          if (d == 0) run.batch.requests.push_back(r);
          run.start = clock;
          run.finish = finish;
          run.distributed = true;
          run.batch_id = batch_id;
          running[d] = std::move(run);
        }
        out.batches.push_back({batch_id, -1, ShapeClass::of(r), 1, clock,
                               finish, false, true});
        trace::counter_add("serve.batches", 1);
        trace::counter_add("serve.distributed_batches", 1);
        continue;  // all devices busy now; loop exits via idle == 0
      }
      std::vector<GemmRequest> expired;
      const auto views = sched.group_views(clock, expired);
      for (const GemmRequest& r : expired)
        reject(r, RequestStatus::RejectedDeadline, clock);
      expired.clear();
      bool dispatched = false;
      for (const auto& view : views) {
        const std::vector<PathEstimate>& per_dev = estimates_.at(view.shape);
        int dev = -1;
        double best_ect = kInf;
        for (std::size_t d = 0; d < running.size(); ++d) {
          const double free_at = running[d] ? running[d]->finish : clock;
          const double ect = free_at + opt_.dispatch_overhead_seconds +
                             per_dev[d].seconds;
          if (ect < best_ect) {
            best_ect = ect;
            dev = static_cast<int>(d);
          }
        }
        if (running[static_cast<std::size_t>(dev)])
          continue;  // preferred device busy: this group waits for it
        const PathEstimate& est = per_dev[static_cast<std::size_t>(dev)];
        // Batch size: bound the batch's serial device time, and share a
        // large group across the devices idle this round instead of
        // serialising it on one while the others sit empty.
        std::size_t limit = (view.size + idle - 1) / idle;
        if (opt_.max_batch_seconds > 0 && est.seconds > 0) {
          const double cap =
              std::floor(opt_.max_batch_seconds / est.seconds);
          if (cap < static_cast<double>(limit))
            limit = static_cast<std::size_t>(std::max(cap, 1.0));
        }
        auto batch = sched.pop_from(view.shape, clock, limit, expired);
        for (const GemmRequest& r : expired)
          reject(r, RequestStatus::RejectedDeadline, clock);
        expired.clear();
        if (!batch) continue;
        trace::Span batch_span("serve.batch");
        Running run;
        run.batch = std::move(*batch);
        run.start = clock;
        run.finish = clock + opt_.dispatch_overhead_seconds +
                     est.seconds *
                         static_cast<double>(run.batch.requests.size());
        run.used_direct = est.used_direct;
        run.batch_id = static_cast<std::int64_t>(out.batches.size());
        out.batches.push_back({run.batch_id, dev, run.batch.shape,
                               static_cast<int>(run.batch.requests.size()),
                               run.start, run.finish, run.used_direct});
        trace::counter_add("serve.batches", 1);
        trace::counter_add("serve.batched_requests",
                           run.batch.requests.size());
        running[static_cast<std::size_t>(dev)] = std::move(run);
        dispatched = true;
        break;  // device set changed: recompute views and idle count
      }
      if (!dispatched) break;
    }
  }
  check(sched.empty(), "GemmServer::run: scheduler drained incompletely");
  check(dist_queue.empty(),
        "GemmServer::run: distributed queue drained incompletely");

  out.peak_queue_depth = sched.peak_depth();
  const double first_arrival = n > 0 ? requests.front().arrival_seconds : 0;
  out.makespan_seconds = last_finish > first_arrival
                             ? last_finish - first_arrival
                             : 0;
  return out;
}

void outcome_scalars(Json& scalars, const std::string& prefix,
                     const std::vector<GemmRequest>& requests,
                     const ServeOutcome& o) {
  std::int64_t completed = 0, queue_full = 0, deadline = 0;
  std::vector<double> latencies_ms;
  for (const GemmResponse& r : o.responses) {
    switch (r.status) {
      case RequestStatus::Completed:
        ++completed;
        latencies_ms.push_back(r.latency_seconds * 1e3);
        break;
      case RequestStatus::RejectedQueueFull: ++queue_full; break;
      case RequestStatus::RejectedDeadline: ++deadline; break;
    }
  }
  std::int64_t direct_batches = 0;
  std::int64_t dist_batches = 0;
  std::int64_t max_batch_size = 0;
  for (const BatchRecord& b : o.batches) {
    if (b.used_direct) ++direct_batches;
    if (b.distributed) ++dist_batches;
    max_batch_size = std::max(max_batch_size,
                              static_cast<std::int64_t>(b.size));
  }
  scalars[prefix + "requests.total"] =
      static_cast<std::int64_t>(requests.size());
  scalars[prefix + "requests.completed"] = completed;
  scalars[prefix + "requests.rejected_queue_full"] = queue_full;
  scalars[prefix + "requests.rejected_deadline"] = deadline;
  scalars[prefix + "batches.count"] =
      static_cast<std::int64_t>(o.batches.size());
  scalars[prefix + "batches.avg_size"] = finite_or(
      static_cast<double>(completed) /
          static_cast<double>(o.batches.size()),
      0.0);
  scalars[prefix + "batches.max_size"] = max_batch_size;
  scalars[prefix + "batches.distributed"] = dist_batches;
  scalars[prefix + "batches.direct_fraction"] = finite_or(
      static_cast<double>(direct_batches) /
          static_cast<double>(o.batches.size()),
      0.0);
  scalars[prefix + "latency_ms.mean"] = mean(latencies_ms);
  scalars[prefix + "latency_ms.p50"] = percentile(latencies_ms, 0.50);
  scalars[prefix + "latency_ms.p95"] = percentile(latencies_ms, 0.95);
  scalars[prefix + "latency_ms.p99"] = percentile(latencies_ms, 0.99);
  scalars[prefix + "latency_ms.p999"] = percentile(latencies_ms, 0.999);
  scalars[prefix + "latency_ms.max"] =
      latencies_ms.empty()
          ? 0.0
          : *std::max_element(latencies_ms.begin(), latencies_ms.end());
  scalars[prefix + "queue.peak_depth"] =
      static_cast<std::int64_t>(o.peak_queue_depth);
  scalars[prefix + "sim.makespan_seconds"] = o.makespan_seconds;
  scalars[prefix + "throughput.gflops"] =
      safe_gflops(o.completed_flops, o.makespan_seconds);
}

Json build_report(const WorkloadSpec& spec,
                  const std::vector<GemmRequest>& requests,
                  const ServeOutcome& batched, const ServeOutcome& unbatched,
                  const ServeOptions& opt) {
  Json doc = Json::object();
  doc["schema"] = kServeReportSchema;
  doc["meta"] = run_meta_json(
      ir::to_string(ir::resolve_backend(ir::Backend::Auto)),
      configured_threads());
  // The workload block mirrors the trace's spec object, so a report from
  // `serve` and one from `replay` of the saved trace are byte-identical.
  Json wl = Json::object();
  wl["seed"] = static_cast<std::int64_t>(spec.seed);
  wl["requests"] = spec.requests;
  wl["rate_rps"] = spec.rate_rps;
  wl["arrival"] = to_string(spec.arrival);
  Json devs = Json::array();
  for (simcl::DeviceId id : spec.resolved_devices())
    devs.push_back(simcl::to_string(id));
  wl["devices"] = std::move(devs);
  wl["max_batch"] = spec.max_batch;
  wl["queue_capacity"] = spec.queue_capacity;
  doc["workload"] = std::move(wl);

  Json options = Json::object();
  options["dispatch_overhead_us"] = opt.dispatch_overhead_seconds * 1e6;
  options["max_batch_ms"] = opt.max_batch_seconds * 1e3;
  options["warmup_sweep_n"] = opt.warmup_sweep_n;
  options["dist_threshold_n"] = opt.dist_threshold_n;
  options["tune_strategy"] =
      opt.tune_strategy.empty() ? "table2" : opt.tune_strategy;
  doc["options"] = std::move(options);

  Json scalars = Json::object();
  outcome_scalars(scalars, "", requests, batched);
  outcome_scalars(scalars, "baseline.", requests, unbatched);
  const double batched_tp = scalars.at("throughput.gflops").as_number();
  const double base_tp =
      scalars.at("baseline.throughput.gflops").as_number();
  scalars["speedup.throughput"] = finite_or(batched_tp / base_tp, 1.0);
  scalars["speedup.makespan"] = finite_or(
      unbatched.makespan_seconds / batched.makespan_seconds, 1.0);
  // Under overload the two runs reject different requests, which makes a
  // raw GFlop/s comparison misleading; completed-count speedup shows how
  // much more of the offered work batching actually served.
  scalars["speedup.completed"] = finite_or(
      scalars.at("requests.completed").as_number() /
          scalars.at("baseline.requests.completed").as_number(),
      1.0);
  doc["scalars"] = std::move(scalars);

  Json per_device = Json::object();
  const auto devices = spec.resolved_devices();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const DeviceStats ds = d < batched.device_stats.size()
                               ? batched.device_stats[d]
                               : DeviceStats{};
    Json j = Json::object();
    j["batches"] = ds.batches;
    j["requests"] = ds.requests;
    j["busy_seconds"] = ds.busy_seconds;
    j["utilization"] = finite_or(
        ds.busy_seconds / batched.makespan_seconds, 0.0);
    per_device[simcl::to_string(devices[d])] = std::move(j);
  }
  doc["per_device"] = std::move(per_device);
  return doc;
}

}  // namespace gemmtune::serve
