#include "serve/core/differential.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace gemmtune::serve {

namespace {

std::string describe(const GemmRequest& r) {
  std::ostringstream ss;
  ss << "request " << r.id << " (" << to_string(ShapeClass::of(r)) << ")";
  return ss.str();
}

bool same_response(const GemmResponse& a, const GemmResponse& b) {
  return a.request_id == b.request_id && a.status == b.status &&
         a.finish_seconds == b.finish_seconds &&
         a.latency_seconds == b.latency_seconds &&
         a.wait_seconds == b.wait_seconds &&
         a.device_index == b.device_index && a.batch_id == b.batch_id &&
         a.batch_size == b.batch_size && a.used_direct == b.used_direct;
}

bool same_batch(const BatchRecord& a, const BatchRecord& b) {
  return a.id == b.id && a.device_index == b.device_index &&
         a.shape == b.shape && a.size == b.size &&
         a.start_seconds == b.start_seconds &&
         a.finish_seconds == b.finish_seconds &&
         a.used_direct == b.used_direct && a.distributed == b.distributed;
}

}  // namespace

DiffReport run_differential(GemmServer& server,
                            const std::vector<GemmRequest>& requests,
                            int max_batch, int queue_capacity,
                            const AsyncOptions& aopt,
                            ServeOutcome* serial_out,
                            AsyncOutcome* async_out) {
  DiffReport rep;
  const auto fail_with = [&](const std::string& why) {
    rep.ok = false;
    if (rep.detail.empty()) rep.detail = why;
  };

  ServeOutcome serial = server.run(requests, max_batch, queue_capacity);
  AsyncServer async_server(server, aopt);
  AsyncOutcome async =
      async_server.run(requests, max_batch, queue_capacity);
  rep.ok = true;

  // 1. Accounting invariant, globally and per class (every mode).
  std::int64_t acct_total = 0;
  for (const auto& [shape, c] : async.classes) {
    const std::int64_t sum = c.completed + c.shed_queue_full +
                             c.shed_infeasible + c.expired;
    if (sum != c.generated)
      fail_with("class " + to_string(shape) +
                ": completed+shed+expired != generated (" +
                std::to_string(sum) + " vs " +
                std::to_string(c.generated) + ")");
    acct_total += c.generated;
  }
  if (acct_total != static_cast<std::int64_t>(requests.size()))
    fail_with("per-class generated counts do not cover the workload");

  for (const GemmResponse& r : serial.responses)
    rep.serial_completed += r.status == RequestStatus::Completed ? 1 : 0;
  for (const GemmResponse& r : async.base.responses)
    rep.async_completed += r.status == RequestStatus::Completed ? 1 : 0;
  rep.completed_ratio =
      rep.serial_completed > 0
          ? static_cast<double>(rep.async_completed) /
                static_cast<double>(rep.serial_completed)
          : 1.0;

  // 2. Exact lockstep comparison — only meaningful when the async core is
  // configured to replicate the serial policy (virtual mode, no extra
  // shedding).
  const bool comparable = aopt.time_scale == 0 && !aopt.shed_infeasible;
  if (comparable) {
    if (async.base.responses.size() != serial.responses.size())
      fail_with("response vector sizes differ");
    for (std::size_t i = 0;
         rep.ok && i < serial.responses.size(); ++i) {
      if (!same_response(serial.responses[i], async.base.responses[i]))
        fail_with(describe(requests[i]) + ": responses diverge (serial " +
                  to_string(serial.responses[i].status) + ", async " +
                  to_string(async.base.responses[i].status) + ")");
    }
    if (async.base.batches.size() != serial.batches.size())
      fail_with("batch counts differ: serial " +
                std::to_string(serial.batches.size()) + ", async " +
                std::to_string(async.base.batches.size()));
    for (std::size_t i = 0; rep.ok && i < serial.batches.size(); ++i)
      if (!same_batch(serial.batches[i], async.base.batches[i]))
        fail_with("batch " + std::to_string(serial.batches[i].id) +
                  " diverges");
    if (async.base.peak_queue_depth != serial.peak_queue_depth)
      fail_with("peak queue depths differ");
    if (async.base.makespan_seconds != serial.makespan_seconds)
      fail_with("makespans differ");

    // 3. GEMM results: the async executors' checksums must equal the same
    // request run on the same device by this (serial) thread.
    if (aopt.execute_max_n > 0) {
      for (std::size_t i = 0; rep.ok && i < requests.size(); ++i) {
        const GemmRequest& r = requests[i];
        const GemmResponse& resp = serial.responses[i];
        if (resp.status != RequestStatus::Completed ||
            resp.device_index < 0 ||
            std::max({r.M, r.N, r.K}) > aopt.execute_max_n)
          continue;
        const std::uint64_t ref = execute_checksum(
            *server.engines()[static_cast<std::size_t>(resp.device_index)],
            r, aopt.result_seed);
        if (async.result_hash[i] != ref)
          fail_with(describe(r) + ": GEMM checksum mismatch");
        ++rep.compared_checksums;
      }
    }
    if (rep.ok && rep.async_completed != rep.serial_completed)
      fail_with("completed counts differ in lockstep mode");
  }

  if (serial_out) *serial_out = std::move(serial);
  if (async_out) *async_out = std::move(async);
  return rep;
}

}  // namespace gemmtune::serve
