#include "serve/core/async_server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>

#include "codegen/paper_kernels.hpp"
#include "common/error.hpp"
#include "common/report_version.hpp"
#include "common/runmeta.hpp"
#include "common/stats.hpp"
#include "kernelir/interp.hpp"
#include "serve/core/sharded_queue.hpp"
#include "trace/trace.hpp"

namespace gemmtune::serve {

using codegen::Precision;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::uint64_t gemm_checksum(blas::GemmEngine& engine, const GemmRequest& r,
                            std::uint64_t seed) {
  Rng rng(seed);
  const bool ta = trans_a(r.type) == Transpose::Yes;
  const bool tb = trans_b(r.type) == Transpose::Yes;
  Matrix<T> A(ta ? r.K : r.M, ta ? r.M : r.K);
  Matrix<T> B(tb ? r.N : r.K, tb ? r.K : r.N);
  Matrix<T> C(r.M, r.N);
  A.fill_random(rng);
  B.fill_random(rng);
  engine.gemm<T>(trans_a(r.type), trans_b(r.type), r.M, r.N, r.K, T(1), A, B,
                 T(0), C);
  return fnv1a(C.data(), C.size() * sizeof(T));
}

/// Slot lookup + input validation shared by both modes.
std::map<std::int64_t, std::size_t> index_requests(
    const std::vector<GemmRequest>& requests) {
  std::map<std::int64_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    check(slot_of.emplace(requests[i].id, i).second,
          "AsyncServer::run: duplicate request id " +
              std::to_string(requests[i].id));
    check(i == 0 || requests[i - 1].arrival_seconds <=
                        requests[i].arrival_seconds,
          "AsyncServer::run: requests must be sorted by arrival time");
  }
  return slot_of;
}

/// Turns per-slot responses into the per-class/global shed accounting and
/// latency histograms. Pure post-processing over the response vector, so
/// it is identical however many threads produced the responses.
void finalize_accounting(const std::vector<GemmRequest>& requests,
                         const std::vector<char>& infeasible,
                         AsyncOutcome& out) {
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const GemmRequest& r = requests[i];
    const GemmResponse& resp = out.base.responses[i];
    ClassAccounting& c = out.classes[ShapeClass::of(r)];
    ++c.generated;
    switch (resp.status) {
      case RequestStatus::Completed:
        ++c.completed;
        c.latency.record(resp.latency_seconds);
        out.latency.record(resp.latency_seconds);
        break;
      case RequestStatus::RejectedQueueFull:
        ++c.shed_queue_full;
        ++out.shed_queue_full;
        break;
      case RequestStatus::RejectedDeadline:
        if (!infeasible.empty() && infeasible[i]) {
          ++c.shed_infeasible;
          ++out.shed_infeasible;
        } else {
          ++c.expired;
          ++out.expired;
        }
        break;
    }
  }
}

}  // namespace

std::uint64_t execute_checksum(blas::GemmEngine& engine, const GemmRequest& r,
                               std::uint64_t result_seed) {
  const std::uint64_t seed =
      result_seed ^ splitmix(static_cast<std::uint64_t>(r.id));
  return r.prec == Precision::SP ? gemm_checksum<float>(engine, r, seed)
                                 : gemm_checksum<double>(engine, r, seed);
}

AsyncServer::AsyncServer(GemmServer& server, AsyncOptions opt)
    : server_(server), opt_(opt) {
  check(server_.warmed(), "AsyncServer: server must be warmed first");
  check(opt_.shards >= 1, "AsyncServer: shards must be >= 1");
  check(opt_.time_scale >= 0, "AsyncServer: time_scale must be >= 0");
  check(opt_.retune_interval_ms > 0,
        "AsyncServer: retune_interval_ms must be > 0");
}

AsyncOutcome AsyncServer::run(const std::vector<GemmRequest>& requests,
                              int max_batch, int queue_capacity) {
  server_.ensure_estimates(requests);
  return opt_.time_scale > 0
             ? run_realtime(requests, max_batch, queue_capacity)
             : run_virtual(requests, max_batch, queue_capacity);
}

// ---------------------------------------------------------------------------
// Virtual mode: the serial discrete-event loop over the sharded queue, with
// executor threads carrying only the functional GEMM work. Every scheduling
// decision below must stay in lockstep with GemmServer::run — the
// differential harness enforces it.
// ---------------------------------------------------------------------------

AsyncOutcome AsyncServer::run_virtual(const std::vector<GemmRequest>& requests,
                                      int max_batch, int queue_capacity) {
  trace::Span span("servecore.virtual");
  const ServeOptions& opt = server_.options();
  const std::size_t n = requests.size();
  const std::size_t nd = server_.devices().size();
  const auto slot_of = index_requests(requests);

  AsyncOutcome out;
  out.base.responses.resize(n);
  out.base.device_stats.resize(nd);
  out.result_hash.assign(n, 0);
  std::vector<char> infeasible(n, 0);

  // Per-device execution channels: the coordinator hands each dispatched
  // batch's executable requests to its device's executor thread, which
  // runs the real kernel and records the checksum. Execution is a pure
  // side channel — it never feeds back into scheduling — so the event
  // loop stays bit-identical to the serial reference.
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<GemmRequest>> tasks;
    bool done = false;
  };
  std::vector<std::unique_ptr<Channel>> channels;
  std::vector<std::thread> executors;
  std::atomic<std::int64_t> executed{0};
  const bool executing = opt_.execute_max_n > 0;
  if (executing) {
    for (std::size_t d = 0; d < nd; ++d)
      channels.push_back(std::make_unique<Channel>());
    for (std::size_t d = 0; d < nd; ++d) {
      executors.emplace_back([&, d] {
        blas::GemmEngine& engine = *server_.engines()[d];
        Channel& ch = *channels[d];
        for (;;) {
          std::vector<GemmRequest> task;
          {
            std::unique_lock<std::mutex> lock(ch.mu);
            ch.cv.wait(lock, [&] { return ch.done || !ch.tasks.empty(); });
            if (ch.tasks.empty()) return;  // done and drained
            task = std::move(ch.tasks.front());
            ch.tasks.pop_front();
          }
          for (const GemmRequest& r : task) {
            out.result_hash[slot_of.at(r.id)] =
                execute_checksum(engine, r, opt_.result_seed);
            executed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  const auto submit_exec = [&](std::size_t d,
                               const std::vector<GemmRequest>& batch) {
    if (!executing) return;
    std::vector<GemmRequest> task;
    for (const GemmRequest& r : batch)
      if (std::max({r.M, r.N, r.K}) <= opt_.execute_max_n)
        task.push_back(r);
    if (task.empty()) return;
    Channel& ch = *channels[d];
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.tasks.push_back(std::move(task));
    }
    ch.cv.notify_one();
  };

  struct Running {
    PendingBatch batch;
    double start = 0;
    double finish = 0;
    bool used_direct = false;
    bool distributed = false;
    std::int64_t batch_id = 0;
  };
  std::vector<std::optional<Running>> running(nd);
  ShardedQueue queue(opt_.shards, max_batch, queue_capacity);
  std::deque<GemmRequest> dist_queue;
  const auto is_distributed = [&](const GemmRequest& r) {
    return opt.dist_threshold_n > 0 &&
           std::max({r.M, r.N, r.K}) >= opt.dist_threshold_n;
  };
  std::size_t next_arrival = 0;
  double last_finish = 0;

  const auto complete = [&](int d) {
    const Running& run = *running[static_cast<std::size_t>(d)];
    for (const GemmRequest& r : run.batch.requests) {
      GemmResponse& resp = out.base.responses[slot_of.at(r.id)];
      resp.request_id = r.id;
      resp.status = RequestStatus::Completed;
      resp.finish_seconds = run.finish;
      resp.latency_seconds = run.finish - r.arrival_seconds;
      resp.wait_seconds = run.start - r.arrival_seconds;
      resp.device_index = run.distributed ? -1 : d;
      resp.batch_id = run.batch_id;
      resp.batch_size = static_cast<int>(run.batch.requests.size());
      resp.used_direct = run.used_direct;
      out.base.completed_flops += r.flops();
    }
    DeviceStats& ds = out.base.device_stats[static_cast<std::size_t>(d)];
    if (!run.batch.requests.empty()) ds.batches += 1;
    ds.requests += static_cast<std::int64_t>(run.batch.requests.size());
    ds.busy_seconds += run.finish - run.start;
    last_finish = std::max(last_finish, run.finish);
    running[static_cast<std::size_t>(d)].reset();
  };

  const auto reject = [&](const GemmRequest& r, RequestStatus status,
                          double when) {
    GemmResponse& resp = out.base.responses[slot_of.at(r.id)];
    resp.request_id = r.id;
    resp.status = status;
    resp.finish_seconds = when;
    resp.wait_seconds = when - r.arrival_seconds;
  };

  // Minimum achievable completion time from a cold start: the best device
  // taking the request alone, right now. Used by the infeasibility shed.
  const auto best_case_seconds = [&](const GemmRequest& r) {
    const auto& per_dev = server_.estimates_for(ShapeClass::of(r));
    double best = kInf;
    for (const PathEstimate& e : per_dev)
      best = std::min(best, opt.dispatch_overhead_seconds + e.seconds);
    return best;
  };

  for (;;) {
    const double t_arrival =
        next_arrival < n ? requests[next_arrival].arrival_seconds : kInf;
    double t_device = kInf;
    for (const auto& r : running)
      if (r) t_device = std::min(t_device, r->finish);
    const double clock = std::min(t_arrival, t_device);
    if (!std::isfinite(clock)) break;

    for (std::size_t d = 0; d < running.size(); ++d)
      if (running[d] && running[d]->finish <= clock)
        complete(static_cast<int>(d));

    while (next_arrival < n &&
           requests[next_arrival].arrival_seconds <= clock) {
      const GemmRequest& r = requests[next_arrival++];
      trace::counter_add("servecore.requests", 1);
      if (is_distributed(r)) {
        dist_queue.push_back(r);
      } else if (opt_.shed_infeasible && r.deadline_seconds > 0 &&
                 r.arrival_seconds + best_case_seconds(r) >
                     r.deadline_seconds) {
        infeasible[slot_of.at(r.id)] = 1;
        reject(r, RequestStatus::RejectedDeadline, r.arrival_seconds);
        trace::counter_add("servecore.shed_infeasible", 1);
      } else if (!queue.admit(r)) {
        reject(r, RequestStatus::RejectedQueueFull, r.arrival_seconds);
        trace::counter_add("servecore.shed_queue_full", 1);
      }
    }

    for (;;) {
      std::size_t idle = 0;
      for (const auto& r : running) idle += r ? 0 : 1;
      if (idle == 0) break;
      if (!dist_queue.empty()) {
        // Fleet barrier, exactly as in the serial loop: drain, then every
        // device runs the tiled dispatch together.
        if (idle < running.size()) break;
        const GemmRequest r = dist_queue.front();
        dist_queue.pop_front();
        if (r.deadline_seconds < clock) {
          reject(r, RequestStatus::RejectedDeadline, clock);
          continue;
        }
        const double secs = server_.dist_seconds(r);
        const double finish = clock + opt.dispatch_overhead_seconds + secs;
        const std::int64_t batch_id =
            static_cast<std::int64_t>(out.base.batches.size());
        for (std::size_t d = 0; d < running.size(); ++d) {
          Running run;
          run.batch.shape = ShapeClass::of(r);
          if (d == 0) run.batch.requests.push_back(r);
          run.start = clock;
          run.finish = finish;
          run.distributed = true;
          run.batch_id = batch_id;
          running[d] = std::move(run);
        }
        out.base.batches.push_back({batch_id, -1, ShapeClass::of(r), 1,
                                    clock, finish, false, true});
        continue;
      }
      std::vector<GemmRequest> expired;
      const auto views = queue.group_views(clock, expired);
      for (const GemmRequest& r : expired)
        reject(r, RequestStatus::RejectedDeadline, clock);
      expired.clear();
      bool dispatched = false;
      for (const auto& view : views) {
        const std::vector<PathEstimate>& per_dev =
            server_.estimates_for(view.shape);
        int dev = -1;
        double best_ect = kInf;
        for (std::size_t d = 0; d < running.size(); ++d) {
          const double free_at = running[d] ? running[d]->finish : clock;
          const double ect = free_at + opt.dispatch_overhead_seconds +
                             per_dev[d].seconds;
          if (ect < best_ect) {
            best_ect = ect;
            dev = static_cast<int>(d);
          }
        }
        if (running[static_cast<std::size_t>(dev)]) continue;
        const PathEstimate& est = per_dev[static_cast<std::size_t>(dev)];
        std::size_t limit = (view.size + idle - 1) / idle;
        if (opt.max_batch_seconds > 0 && est.seconds > 0) {
          const double cap = std::floor(opt.max_batch_seconds / est.seconds);
          if (cap < static_cast<double>(limit))
            limit = static_cast<std::size_t>(std::max(cap, 1.0));
        }
        auto batch = queue.pop_from(view.shape, clock, limit, expired);
        for (const GemmRequest& r : expired)
          reject(r, RequestStatus::RejectedDeadline, clock);
        expired.clear();
        if (!batch) continue;
        Running run;
        run.batch = std::move(*batch);
        run.start = clock;
        run.finish = clock + opt.dispatch_overhead_seconds +
                     est.seconds *
                         static_cast<double>(run.batch.requests.size());
        run.used_direct = est.used_direct;
        run.batch_id = static_cast<std::int64_t>(out.base.batches.size());
        out.base.batches.push_back(
            {run.batch_id, dev, run.batch.shape,
             static_cast<int>(run.batch.requests.size()), run.start,
             run.finish, run.used_direct});
        trace::counter_add("servecore.batches", 1);
        submit_exec(static_cast<std::size_t>(dev), run.batch.requests);
        running[static_cast<std::size_t>(dev)] = std::move(run);
        dispatched = true;
        break;
      }
      if (!dispatched) break;
    }
  }
  check(queue.empty(), "AsyncServer: queue drained incompletely");
  check(dist_queue.empty(),
        "AsyncServer: distributed queue drained incompletely");

  if (executing) {
    for (auto& ch : channels) {
      {
        std::lock_guard<std::mutex> lock(ch->mu);
        ch->done = true;
      }
      ch->cv.notify_one();
    }
    for (auto& t : executors) t.join();
  }

  out.base.peak_queue_depth = queue.peak_depth();
  const double first_arrival = n > 0 ? requests.front().arrival_seconds : 0;
  out.base.makespan_seconds =
      last_finish > first_arrival ? last_finish - first_arrival : 0;
  out.executed = executed.load();
  finalize_accounting(requests, infeasible, out);
  return out;
}

// ---------------------------------------------------------------------------
// Realtime mode: arrivals paced in scaled wall clock, executors pulling
// from the shards themselves. Not deterministic (the wall clock is in the
// loop) — but the accounting invariant and the differential's completed-
// count tolerance hold, and this is the mode where executor parallelism
// buys real throughput.
// ---------------------------------------------------------------------------

AsyncOutcome AsyncServer::run_realtime(
    const std::vector<GemmRequest>& requests, int max_batch,
    int queue_capacity) {
  trace::Span span("servecore.realtime");
  using Clock = std::chrono::steady_clock;
  const ServeOptions& opt = server_.options();
  const std::size_t n = requests.size();
  const std::size_t nd = server_.devices().size();
  const auto slot_of = index_requests(requests);
  const double scale = opt_.time_scale;

  AsyncOutcome out;
  out.base.responses.resize(n);
  out.base.device_stats.resize(nd);
  out.result_hash.assign(n, 0);
  std::vector<char> infeasible(n, 0);

  // Estimate snapshot the re-tuner refreshes; executors read it under a
  // shared lock so a swap never tears a row.
  std::shared_mutex est_mu;
  std::map<ShapeClass, std::vector<PathEstimate>> est = server_.estimates();
  const auto estimate_row = [&](const ShapeClass& s) {
    std::shared_lock<std::shared_mutex> lock(est_mu);
    return est.at(s);  // copied out under the lock
  };

  const auto start_wall = Clock::now();
  const auto virtual_now = [&] {
    return std::chrono::duration<double>(Clock::now() - start_wall).count() /
           scale;
  };
  const auto sleep_until_virtual = [&](double t) {
    std::this_thread::sleep_until(
        start_wall + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(t * scale)));
  };

  ShardedQueue queue(opt_.shards, max_batch, queue_capacity);
  std::atomic<bool> arrivals_done{false};
  std::atomic<std::int64_t> in_flight{0};
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> retunes{0};
  std::atomic<bool> stop_retuner{false};

  // Modeled time each device is occupied through; the ECT placement reads
  // these instead of the serial loop's `running` array.
  std::vector<std::atomic<double>> busy_until(nd);
  for (auto& b : busy_until) b.store(0);

  const auto reject = [&](const GemmRequest& r, RequestStatus status,
                          double when) {
    GemmResponse& resp = out.base.responses[slot_of.at(r.id)];
    resp.request_id = r.id;
    resp.status = status;
    resp.finish_seconds = when;
    resp.wait_seconds = when - r.arrival_seconds;
  };

  // --- Admission thread: open-loop arrivals at the workload's pace. ---
  std::thread admitter([&] {
    for (std::size_t i = 0; i < n; ++i) {
      const GemmRequest& r = requests[i];
      sleep_until_virtual(r.arrival_seconds);
      trace::counter_add("servecore.requests", 1);
      if (opt_.shed_infeasible && r.deadline_seconds > 0) {
        const auto per_dev = estimate_row(ShapeClass::of(r));
        double best = kInf;
        for (const PathEstimate& e : per_dev)
          best = std::min(best, opt.dispatch_overhead_seconds + e.seconds);
        if (r.arrival_seconds + best > r.deadline_seconds) {
          infeasible[i] = 1;
          reject(r, RequestStatus::RejectedDeadline, r.arrival_seconds);
          trace::counter_add("servecore.shed_infeasible", 1);
          continue;
        }
      }
      in_flight.fetch_add(1, std::memory_order_acq_rel);
      if (!queue.admit(r)) {
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
        reject(r, RequestStatus::RejectedQueueFull, r.arrival_seconds);
        trace::counter_add("servecore.shed_queue_full", 1);
      }
    }
    arrivals_done.store(true, std::memory_order_release);
  });

  // --- Executor threads: one per device, or one for the whole fleet. ---
  struct ExecutorLocal {
    std::vector<DeviceStats> device_stats;
    std::vector<BatchRecord> batches;
    double last_finish = 0;
  };
  const int executor_count = opt_.serial_execution ? 1 : static_cast<int>(nd);
  std::vector<ExecutorLocal> locals(
      static_cast<std::size_t>(executor_count));
  for (auto& l : locals) l.device_stats.resize(nd);
  std::atomic<std::int64_t> next_batch_id{0};

  const auto executor_loop = [&](int worker) {
    ExecutorLocal& local = locals[static_cast<std::size_t>(worker)];
    // The devices this thread plays: all of them in serial mode, else its
    // own. `mine(d)` gates dispatch, ECT always ranks every device.
    const auto mine = [&](int d) {
      return opt_.serial_execution || d == worker;
    };
    std::vector<GemmRequest> expired;
    for (;;) {
      const double clock = virtual_now();
      expired.clear();
      const auto views = queue.group_views(clock, expired);
      for (const GemmRequest& r : expired) {
        reject(r, RequestStatus::RejectedDeadline, clock);
        in_flight.fetch_sub(1, std::memory_order_acq_rel);
      }
      std::size_t idle = 0;
      for (std::size_t d = 0; d < nd; ++d)
        if (busy_until[d].load(std::memory_order_relaxed) <= clock) ++idle;
      if (idle == 0) idle = 1;
      bool dispatched = false;
      for (const auto& view : views) {
        const auto per_dev = estimate_row(view.shape);
        int dev = -1;
        double best_ect = kInf;
        for (std::size_t d = 0; d < nd; ++d) {
          const double free_at = std::max(
              busy_until[d].load(std::memory_order_relaxed), clock);
          const double ect = free_at + opt.dispatch_overhead_seconds +
                             per_dev[d].seconds;
          if (ect < best_ect) {
            best_ect = ect;
            dev = static_cast<int>(d);
          }
        }
        if (!mine(dev)) continue;  // another executor's device is better
        const double dev_free =
            busy_until[static_cast<std::size_t>(dev)].load(
                std::memory_order_relaxed);
        if (!opt_.serial_execution && dev_free > clock)
          continue;  // this device is mid-batch; the group waits for it
        const PathEstimate& e = per_dev[static_cast<std::size_t>(dev)];
        std::size_t limit = (view.size + idle - 1) / idle;
        if (opt.max_batch_seconds > 0 && e.seconds > 0) {
          const double cap = std::floor(opt.max_batch_seconds / e.seconds);
          if (cap < static_cast<double>(limit))
            limit = static_cast<std::size_t>(std::max(cap, 1.0));
        }
        expired.clear();
        auto batch = queue.pop_from(view.shape, clock, limit, expired);
        for (const GemmRequest& r : expired) {
          reject(r, RequestStatus::RejectedDeadline, clock);
          in_flight.fetch_sub(1, std::memory_order_acq_rel);
        }
        if (!batch) continue;
        const double start = std::max(clock, dev_free);
        const double finish =
            start + opt.dispatch_overhead_seconds +
            e.seconds * static_cast<double>(batch->requests.size());
        busy_until[static_cast<std::size_t>(dev)].store(
            finish, std::memory_order_relaxed);
        // Optional functional execution (host time, unscaled) before the
        // modeled occupancy: the checksum side channel of virtual mode.
        if (opt_.execute_max_n > 0) {
          blas::GemmEngine& engine =
              *server_.engines()[static_cast<std::size_t>(dev)];
          for (const GemmRequest& r : batch->requests) {
            if (std::max({r.M, r.N, r.K}) > opt_.execute_max_n) continue;
            out.result_hash[slot_of.at(r.id)] =
                execute_checksum(engine, r, opt_.result_seed);
            executed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        sleep_until_virtual(finish);  // occupy the device
        const std::int64_t batch_id =
            next_batch_id.fetch_add(1, std::memory_order_relaxed);
        for (const GemmRequest& r : batch->requests) {
          GemmResponse& resp = out.base.responses[slot_of.at(r.id)];
          resp.request_id = r.id;
          resp.status = RequestStatus::Completed;
          resp.finish_seconds = finish;
          resp.latency_seconds = finish - r.arrival_seconds;
          resp.wait_seconds = start - r.arrival_seconds;
          resp.device_index = dev;
          resp.batch_id = batch_id;
          resp.batch_size = static_cast<int>(batch->requests.size());
          resp.used_direct = e.used_direct;
        }
        DeviceStats& ds = local.device_stats[static_cast<std::size_t>(dev)];
        ds.batches += 1;
        ds.requests += static_cast<std::int64_t>(batch->requests.size());
        ds.busy_seconds += finish - start;
        local.batches.push_back(
            {batch_id, dev, batch->shape,
             static_cast<int>(batch->requests.size()), start, finish,
             e.used_direct});
        local.last_finish = std::max(local.last_finish, finish);
        trace::counter_add("servecore.batches", 1);
        in_flight.fetch_sub(
            static_cast<std::int64_t>(batch->requests.size()),
            std::memory_order_acq_rel);
        dispatched = true;
        break;
      }
      if (!dispatched) {
        if (arrivals_done.load(std::memory_order_acquire) &&
            in_flight.load(std::memory_order_acquire) == 0)
          return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  };
  std::vector<std::thread> executors;
  executors.reserve(static_cast<std::size_t>(executor_count));
  for (int w = 0; w < executor_count; ++w)
    executors.emplace_back(executor_loop, w);

  // --- Re-tuner thread: refreshes warm TunedDatabase entries and swaps
  // fresh estimate rows in without ever blocking the dispatch path for
  // longer than one row copy. ---
  std::thread retuner;
  if (opt_.retune) {
    retuner = std::thread([&] {
      std::size_t round = 0;
      const auto interval = std::chrono::duration<double, std::milli>(
          opt_.retune_interval_ms);
      while (!stop_retuner.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(interval);
        if (stop_retuner.load(std::memory_order_acquire)) break;
        const std::size_t d = round % nd;
        const Precision prec =
            (round / nd) % 2 == 0 ? Precision::DP : Precision::SP;
        ++round;
        // Rebuild this device's estimate column from scratch off-lock
        // (classic: a fresh Table II profile; guided: the per-class tuned
        // kernels) and swap the rows in briefly. The simulator is
        // deterministic, so the values match — the machinery (not the
        // numbers) is what this thread exercises.
        std::vector<ShapeClass> shapes;
        {
          std::shared_lock<std::shared_mutex> lock(est_mu);
          for (const auto& [s, row] : est)
            if (s.prec == prec) shapes.push_back(s);
        }
        const std::vector<PathEstimate> fresh_col =
            server_.fresh_estimates(d, prec, shapes);
        {
          std::unique_lock<std::shared_mutex> lock(est_mu);
          for (std::size_t i = 0; i < shapes.size(); ++i) {
            const auto it = est.find(shapes[i]);
            if (it != est.end()) it->second[d] = fresh_col[i];
          }
        }
        retunes.fetch_add(1, std::memory_order_relaxed);
        trace::counter_add("servecore.retunes", 1);
      }
    });
  }

  admitter.join();
  for (auto& t : executors) t.join();
  stop_retuner.store(true, std::memory_order_release);
  if (retuner.joinable()) retuner.join();

  check(queue.empty(), "AsyncServer: queue drained incompletely");
  out.base.peak_queue_depth = queue.peak_depth();
  double last_finish = 0;
  for (const ExecutorLocal& l : locals) {
    last_finish = std::max(last_finish, l.last_finish);
    for (std::size_t d = 0; d < nd; ++d) {
      out.base.device_stats[d].batches += l.device_stats[d].batches;
      out.base.device_stats[d].requests += l.device_stats[d].requests;
      out.base.device_stats[d].busy_seconds += l.device_stats[d].busy_seconds;
    }
    out.base.batches.insert(out.base.batches.end(), l.batches.begin(),
                            l.batches.end());
  }
  std::sort(out.base.batches.begin(), out.base.batches.end(),
            [](const BatchRecord& a, const BatchRecord& b) {
              return a.id < b.id;
            });
  for (const GemmResponse& r : out.base.responses)
    if (r.status == RequestStatus::Completed)
      out.base.completed_flops +=
          requests[slot_of.at(r.request_id)].flops();
  const double first_arrival = n > 0 ? requests.front().arrival_seconds : 0;
  out.base.makespan_seconds =
      last_finish > first_arrival ? last_finish - first_arrival : 0;
  out.executed = executed.load();
  out.retunes = retunes.load();
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start_wall).count();
  finalize_accounting(requests, infeasible, out);
  return out;
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

Json build_async_report(const WorkloadSpec& spec,
                        const std::vector<GemmRequest>& requests,
                        const AsyncOutcome& async, const ServeOutcome& serial,
                        const ServeOptions& opt, const AsyncOptions& aopt) {
  Json doc = Json::object();
  doc["schema"] = kServeReportSchema;
  doc["meta"] = run_meta_json(
      ir::to_string(ir::resolve_backend(ir::Backend::Auto)),
      configured_threads());
  Json wl = Json::object();
  wl["seed"] = static_cast<std::int64_t>(spec.seed);
  wl["requests"] = spec.requests;
  wl["rate_rps"] = spec.rate_rps;
  wl["arrival"] = to_string(spec.arrival);
  wl["core"] = "async";
  Json devs = Json::array();
  for (simcl::DeviceId id : spec.resolved_devices())
    devs.push_back(simcl::to_string(id));
  wl["devices"] = std::move(devs);
  wl["max_batch"] = spec.max_batch;
  wl["queue_capacity"] = spec.queue_capacity;
  doc["workload"] = std::move(wl);

  Json options = Json::object();
  options["dispatch_overhead_us"] = opt.dispatch_overhead_seconds * 1e6;
  options["max_batch_ms"] = opt.max_batch_seconds * 1e3;
  options["warmup_sweep_n"] = opt.warmup_sweep_n;
  options["dist_threshold_n"] = opt.dist_threshold_n;
  doc["options"] = std::move(options);

  Json core = Json::object();
  core["mode"] = aopt.time_scale > 0 ? "realtime" : "virtual";
  core["shards"] = aopt.shards;
  core["time_scale"] = aopt.time_scale;
  core["serial_execution"] = aopt.serial_execution;
  core["shed_infeasible"] = aopt.shed_infeasible;
  core["retune"] = aopt.retune;
  core["execute_max_n"] = aopt.execute_max_n;
  // The wall clock is the one non-deterministic input; keep it out of the
  // scalar map (which CI compares exactly) and only record it for
  // realtime runs, where nothing is byte-stable anyway.
  if (aopt.time_scale > 0) core["wall_seconds"] = async.wall_seconds;
  doc["core"] = std::move(core);

  Json scalars = Json::object();
  outcome_scalars(scalars, "", requests, async.base);
  scalars["shed.queue_full"] = async.shed_queue_full;
  scalars["shed.infeasible"] = async.shed_infeasible;
  scalars["shed.expired"] = async.expired;
  scalars["requests.executed"] = async.executed;
  scalars["retune.rounds"] = async.retunes;
  scalars["hist.p50_ms"] = async.latency.quantile(0.50) * 1e3;
  scalars["hist.p99_ms"] = async.latency.quantile(0.99) * 1e3;
  scalars["hist.p999_ms"] = async.latency.quantile(0.999) * 1e3;
  for (const auto& [shape, acct] : async.classes) {
    const std::string key = "class." + to_string(shape) + ".";
    scalars[key + "completed"] = acct.completed;
    scalars[key + "p50_ms"] = acct.latency.quantile(0.50) * 1e3;
    scalars[key + "p99_ms"] = acct.latency.quantile(0.99) * 1e3;
    scalars[key + "p999_ms"] = acct.latency.quantile(0.999) * 1e3;
  }
  outcome_scalars(scalars, "serial.", requests, serial);
  const std::int64_t serial_completed =
      static_cast<std::int64_t>(
          scalars.at("serial.requests.completed").as_int());
  const std::int64_t async_completed =
      static_cast<std::int64_t>(scalars.at("requests.completed").as_int());
  scalars["speedup.completed_vs_serial"] = finite_or(
      static_cast<double>(async_completed) /
          static_cast<double>(serial_completed),
      1.0);
  scalars["speedup.throughput_vs_serial"] = finite_or(
      scalars.at("throughput.gflops").as_number() /
          scalars.at("serial.throughput.gflops").as_number(),
      1.0);
  doc["scalars"] = std::move(scalars);

  Json per_class = Json::object();
  for (const auto& [shape, acct] : async.classes) {
    Json j = Json::object();
    j["generated"] = acct.generated;
    j["completed"] = acct.completed;
    j["shed_queue_full"] = acct.shed_queue_full;
    j["shed_infeasible"] = acct.shed_infeasible;
    j["expired"] = acct.expired;
    j["latency"] = acct.latency.summary_json();
    per_class[to_string(shape)] = std::move(j);
  }
  doc["per_class"] = std::move(per_class);
  return doc;
}

}  // namespace gemmtune::serve
