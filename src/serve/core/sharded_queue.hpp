// Sharded bounded admission queue for the concurrent serving core.
//
// The serial BatchScheduler keeps every pending group behind one implicit
// lock (it is only ever touched by the event loop). At serving scale the
// admission path and several executors hammer that structure concurrently,
// so this variant splits the groups across `shards` independently locked
// maps, hashed by ShapeClass — two threads working different shape classes
// almost never contend.
//
// Parity rules (all load-bearing for the serial-vs-async differential):
//  * The depth bound is GLOBAL, not per-shard: one atomic counter carries
//    the capacity check, so whether a request is shed by backpressure is
//    invariant under the shard count. Sharding partitions the lock domain
//    and the storage, never the admission decision.
//  * group_views() merges the per-shard views into exactly the serial
//    dispatch order (head priority desc, arrival asc, id asc). That
//    comparator is a total order — a request lives in exactly one group,
//    so head ids are unique — which makes the merged order independent of
//    shard count and visitation order.
//  * pop_from()/skim semantics match BatchScheduler verbatim: FIFO within
//    a group, expired requests skimmed into `expired` without counting
//    against the batch, takes capped by min(max_batch, max(max_take, 1)).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/scheduler.hpp"

namespace gemmtune::serve {

class ShardedQueue {
 public:
  ShardedQueue(int shards, int max_batch, int queue_capacity);

  int shards() const { return static_cast<int>(shards_.size()); }

  /// Admits a request; false when the global depth bound is hit
  /// (backpressure). Thread-safe.
  bool admit(const GemmRequest& r);

  std::size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  std::size_t peak_depth() const {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  bool empty() const { return depth() == 0; }

  /// Shard that owns a shape class (exposed for tests).
  std::size_t shard_of(const ShapeClass& s) const;

  /// Merged dispatch-priority view over every shard (serial order; see
  /// header comment). Skims deadline-expired group heads into `expired`.
  /// Thread-safe; shards are visited one lock at a time, so the view is a
  /// consistent snapshot per shard, not across shards — exact global
  /// consistency only holds for a single-threaded caller (virtual mode).
  std::vector<BatchScheduler::GroupView> group_views(
      double clock, std::vector<GemmRequest>& expired);

  /// Pops up to `max_take` live requests of `shape` as one batch; expired
  /// requests met on the way are appended to `expired`. Thread-safe.
  std::optional<PendingBatch> pop_from(const ShapeClass& shape, double clock,
                                       std::size_t max_take,
                                       std::vector<GemmRequest>& expired);

 private:
  struct Shard {
    std::mutex mu;
    std::map<ShapeClass, std::deque<GemmRequest>> groups;
  };

  /// Pops expired requests off the front of `q`, releasing their depth.
  void skim_expired(std::deque<GemmRequest>& q, double clock,
                    std::vector<GemmRequest>& expired);
  void release(std::size_t n);  ///< returns n admissions to the bound

  std::vector<std::unique_ptr<Shard>> shards_;
  int max_batch_;
  std::size_t capacity_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> peak_depth_{0};
};

}  // namespace gemmtune::serve
