// The concurrent serving core: sharded admission, per-device executor
// threads, background re-tuning, overload shedding, and tail-latency
// accounting (p50/p99/p999 per shape class).
//
// Two execution modes, selected by AsyncOptions::time_scale:
//
//  * Virtual mode (time_scale == 0, the default). A single coordinator
//    drives the same discrete-event simulation as the serial GemmServer —
//    identical earliest-completion-time placement, batch spread cap,
//    per-batch serial-time cap, deadline expiry, and distributed-request
//    barrier — over the ShardedQueue instead of the BatchScheduler. Every
//    scheduling decision is bit-identical to the serial reference at any
//    shard or thread count; the executor threads only carry the functional
//    GEMM work (real kernel execution + checksum of the C buffer) for
//    requests small enough to execute. This is the mode the differential
//    harness compares against the serial loop, and the mode CI gates,
//    because its whole outcome is deterministic.
//
//  * Realtime mode (time_scale > 0). Arrivals are paced in scaled
//    wall-clock time by an admission thread; per-device executor threads
//    pull work from the shards themselves (the fine-grained-locking hot
//    path TSAN watches), occupy their device for the modeled batch time
//    scaled by time_scale, and an optional re-tuner thread refreshes warm
//    TunedDatabase entries in the background. Latencies are measured in
//    virtual (modeled) seconds derived from the wall clock, so they are
//    comparable with — but not identical to — the virtual mode. With
//    serial_execution, one thread plays every device back to back: the
//    serial-core reference the overload stress bench beats.
//
// Shedding: queue-full rejection is always on (the bounded queue), and
// shed_infeasible additionally rejects at admission any request whose
// deadline cannot be met even by the best device starting immediately —
// refusing work that is already dead costs one estimate lookup and saves a
// queue slot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "serve/server.hpp"

namespace gemmtune::serve {

/// Configuration of the concurrent core, on top of ServeOptions.
struct AsyncOptions {
  /// Admission shards (lock domains). Outcomes are shard-count invariant.
  int shards = 4;
  /// 0: virtual (deterministic discrete-event) mode. > 0: realtime mode,
  /// one modeled second occupies a device for `time_scale` wall seconds.
  double time_scale = 0;
  /// Realtime only: one executor thread plays all devices sequentially —
  /// the serial-core reference for the overload comparison.
  bool serial_execution = false;
  /// Also shed requests whose deadline is infeasible at admission.
  bool shed_infeasible = false;
  /// Realtime only: run the background re-tuner thread.
  bool retune = false;
  /// Wall milliseconds between re-tune rounds.
  double retune_interval_ms = 50;
  /// Execute the real generated kernel (and checksum C) for requests whose
  /// largest extent is <= this; 0 disables execution. Keep it modest
  /// (e.g. 64): interpreted GEMM costs real host milliseconds.
  index_t execute_max_n = 0;
  /// Seed mixed with each request id to generate its operand data, so the
  /// serial reference and the async core hash identical inputs.
  std::uint64_t result_seed = 42;
};

/// Per-shape-class accounting over one run. generated ==
/// completed + shed_queue_full + shed_infeasible + expired at drain.
struct ClassAccounting {
  std::int64_t generated = 0;
  std::int64_t completed = 0;
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_infeasible = 0;
  std::int64_t expired = 0;  ///< admitted but dead by dispatch time
  LatencyHistogram latency;  ///< completed requests only (virtual seconds)
};

/// Everything one concurrent run produced.
struct AsyncOutcome {
  ServeOutcome base;  ///< responses/batches/device stats, serial-compatible
  /// FNV-1a checksum of the result matrix per request slot (parallel to
  /// the request vector); 0 when the request was not executed.
  std::vector<std::uint64_t> result_hash;
  std::map<ShapeClass, ClassAccounting> classes;
  LatencyHistogram latency;  ///< all completed requests
  std::int64_t shed_queue_full = 0;
  std::int64_t shed_infeasible = 0;
  std::int64_t expired = 0;
  std::int64_t executed = 0;  ///< requests run through the real kernel
  std::int64_t retunes = 0;   ///< re-tuner refresh rounds completed
  double wall_seconds = 0;    ///< realtime mode: host time of the run
};

/// Deterministic operand checksum: fills op-shaped A and B from
/// Rng(seed ^ splitmix(id)), runs the engine's real kernel with alpha=1,
/// beta=0, and returns the FNV-1a hash of the C buffer bytes.
std::uint64_t execute_checksum(blas::GemmEngine& engine, const GemmRequest& r,
                               std::uint64_t result_seed);

/// The concurrent core. Borrows a warmed GemmServer for its engines and
/// shape-class estimate table so both cores place batches from the same
/// numbers; the server must outlive the AsyncServer.
class AsyncServer {
 public:
  AsyncServer(GemmServer& server, AsyncOptions opt);

  const AsyncOptions& options() const { return opt_; }

  /// Serves `requests` (sorted by arrival; ids unique). Virtual mode is
  /// deterministic at any shard/thread count; realtime mode is not (wall
  /// clock), but its accounting invariant always holds.
  AsyncOutcome run(const std::vector<GemmRequest>& requests, int max_batch,
                   int queue_capacity);

 private:
  AsyncOutcome run_virtual(const std::vector<GemmRequest>& requests,
                           int max_batch, int queue_capacity);
  AsyncOutcome run_realtime(const std::vector<GemmRequest>& requests,
                            int max_batch, int queue_capacity);

  GemmServer& server_;
  AsyncOptions opt_;
};

/// Builds the extended "gemmtune-serve-v1" report for a concurrent run:
/// the serial-report layout plus core/shard metadata, shed counters, and
/// histogram percentiles (overall and per shape class) under "scalars".
/// `serial` is the serial reference outcome on the same workload (its
/// scalars land under the "serial." prefix, with completed/throughput
/// ratios alongside). Pure function of its inputs.
Json build_async_report(const WorkloadSpec& spec,
                        const std::vector<GemmRequest>& requests,
                        const AsyncOutcome& async, const ServeOutcome& serial,
                        const ServeOptions& opt, const AsyncOptions& aopt);

}  // namespace gemmtune::serve
