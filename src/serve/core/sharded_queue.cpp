#include "serve/core/sharded_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gemmtune::serve {

ShardedQueue::ShardedQueue(int shards, int max_batch, int queue_capacity)
    : max_batch_(max_batch),
      capacity_(static_cast<std::size_t>(queue_capacity)) {
  check(shards >= 1, "ShardedQueue: shards must be >= 1");
  check(max_batch_ >= 1, "ShardedQueue: max_batch must be >= 1");
  check(queue_capacity >= 1, "ShardedQueue: queue_capacity must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::size_t ShardedQueue::shard_of(const ShapeClass& s) const {
  return static_cast<std::size_t>(shape_class_hash(s) % shards_.size());
}

bool ShardedQueue::admit(const GemmRequest& r) {
  // Reserve a depth slot first (the global capacity check), then insert
  // under the owning shard's lock. The reservation makes the admission
  // decision a pure function of the arrival sequence — it cannot depend on
  // which shard the request hashes to.
  std::size_t d = depth_.load(std::memory_order_relaxed);
  for (;;) {
    if (d >= capacity_) return false;
    if (depth_.compare_exchange_weak(d, d + 1, std::memory_order_relaxed))
      break;
  }
  std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (peak < d + 1 &&
         !peak_depth_.compare_exchange_weak(peak, d + 1,
                                            std::memory_order_relaxed)) {
  }
  Shard& sh = *shards_[shard_of(ShapeClass::of(r))];
  std::lock_guard<std::mutex> lock(sh.mu);
  sh.groups[ShapeClass::of(r)].push_back(r);
  return true;
}

void ShardedQueue::release(std::size_t n) {
  if (n > 0) depth_.fetch_sub(n, std::memory_order_relaxed);
}

void ShardedQueue::skim_expired(std::deque<GemmRequest>& q, double clock,
                                std::vector<GemmRequest>& expired) {
  std::size_t dropped = 0;
  while (!q.empty() && q.front().expired_at(clock)) {
    expired.push_back(q.front());
    q.pop_front();
    ++dropped;
  }
  release(dropped);
}

std::vector<BatchScheduler::GroupView> ShardedQueue::group_views(
    double clock, std::vector<GemmRequest>& expired) {
  std::vector<BatchScheduler::GroupView> views;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->groups.begin(); it != shard->groups.end();) {
      skim_expired(it->second, clock, expired);
      if (it->second.empty()) {
        it = shard->groups.erase(it);
        continue;
      }
      views.push_back({it->first, it->second.front(), it->second.size()});
      ++it;
    }
  }
  // Serial dispatch order. Head ids are unique across groups, so this is a
  // total order — the merge is independent of the shard walk above.
  std::sort(views.begin(), views.end(),
            [](const BatchScheduler::GroupView& a,
               const BatchScheduler::GroupView& b) {
              if (a.head.priority != b.head.priority)
                return a.head.priority > b.head.priority;
              if (a.head.arrival_seconds != b.head.arrival_seconds)
                return a.head.arrival_seconds < b.head.arrival_seconds;
              return a.head.id < b.head.id;
            });
  return views;
}

std::optional<PendingBatch> ShardedQueue::pop_from(
    const ShapeClass& shape, double clock, std::size_t max_take,
    std::vector<GemmRequest>& expired) {
  Shard& sh = *shards_[shard_of(shape)];
  std::lock_guard<std::mutex> lock(sh.mu);
  const auto it = sh.groups.find(shape);
  if (it == sh.groups.end()) return std::nullopt;
  auto& q = it->second;
  const std::size_t limit =
      std::min(static_cast<std::size_t>(max_batch_),
               std::max<std::size_t>(max_take, 1));
  PendingBatch batch{shape, {}};
  std::size_t popped = 0;
  while (!q.empty() && batch.requests.size() < limit) {
    if (q.front().expired_at(clock))
      expired.push_back(q.front());
    else
      batch.requests.push_back(q.front());
    q.pop_front();
    ++popped;
  }
  if (q.empty()) sh.groups.erase(it);
  release(popped);
  if (batch.requests.empty()) return std::nullopt;
  return batch;
}

}  // namespace gemmtune::serve
