// Serial-vs-concurrent differential harness (the tree-vs-bytecode pattern
// applied to the serving layer): replay one seeded workload through the
// serial GemmServer and the concurrent AsyncServer and compare.
//
// In virtual mode (time_scale == 0, shed_infeasible off) the comparison is
// exact — every response field, every batch record, the queue peak and the
// makespan must match bit for bit, and each executed request's C-buffer
// checksum must equal the checksum of the same request run on the same
// device serially. In realtime mode the outcomes legitimately diverge
// (that is the point of executor parallelism), so the harness checks the
// accounting invariant and reports the completed-count ratio instead of
// failing on it.
#pragma once

#include <string>
#include <vector>

#include "serve/core/async_server.hpp"

namespace gemmtune::serve {

/// What one differential replay found.
struct DiffReport {
  bool ok = false;
  std::string detail;  ///< first mismatch, empty when ok
  std::int64_t compared_checksums = 0;  ///< GEMM results verified
  std::int64_t serial_completed = 0;
  std::int64_t async_completed = 0;
  double completed_ratio = 1.0;  ///< async / serial completed counts
};

/// Runs `requests` through both cores on the warmed `server` and compares
/// (see header comment). The accounting invariant — generated ==
/// completed + shed_queue_full + shed_infeasible + expired, globally and
/// per class — is checked in every mode. Optionally hands back the raw
/// outcomes for report building.
DiffReport run_differential(GemmServer& server,
                            const std::vector<GemmRequest>& requests,
                            int max_batch, int queue_capacity,
                            const AsyncOptions& aopt,
                            ServeOutcome* serial_out = nullptr,
                            AsyncOutcome* async_out = nullptr);

}  // namespace gemmtune::serve
