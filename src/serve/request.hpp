// Request/response types of the GEMM serving subsystem.
//
// A GemmRequest is one C <- alpha*op(A)*op(B) + beta*C problem submitted
// to the service at a simulated arrival time, with a priority and an
// absolute deadline. The scheduler coalesces requests of the same
// ShapeClass — precision, multiplication type and tile-quantized extents —
// into batches that one device dispatch serves together (the batched-GEMM
// pattern of real serving traffic, where a handful of popular shapes
// dominate). The quantization to multiples of 16 lets near-miss shapes
// (e.g. 50^3 and 64^3) share a guarded launch geometry, exactly like the
// guarded direct kernel handles non-divisible fringes.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "codegen/params.hpp"
#include "layout/gemm_type.hpp"
#include "layout/matrix.hpp"
#include "simcl/device_registry.hpp"
#include "tuner/shape.hpp"

namespace gemmtune::serve {

/// One GEMM problem submitted to the service.
struct GemmRequest {
  std::int64_t id = 0;
  GemmType type = GemmType::NN;
  codegen::Precision prec = codegen::Precision::DP;
  index_t M = 0, N = 0, K = 0;
  int priority = 0;              ///< higher dispatches first
  double arrival_seconds = 0;    ///< simulated submission time
  /// Absolute simulated deadline; a request still queued past it is
  /// rejected instead of dispatched. <= 0 means no deadline.
  double deadline_seconds = 0;

  double flops() const {
    return 2.0 * static_cast<double>(M) * static_cast<double>(N) *
           static_cast<double>(K);
  }
  bool expired_at(double clock) const {
    return deadline_seconds > 0 && clock > deadline_seconds;
  }
};

/// Batching key: requests of one shape class share a single dispatch.
/// The definition lives in tuner/shape.hpp so the tuner can key searches
/// and databases per class; re-exported here (with its to_string and the
/// shard-picking hash) so serving code keeps naming it serve::ShapeClass.
using ShapeClass = tuner::ShapeClass;
using tuner::shape_class_hash;
using tuner::to_string;

/// Terminal state of a request.
enum class RequestStatus {
  Completed,          ///< served; latency/batch fields are filled
  RejectedQueueFull,  ///< backpressure: the bounded queue was full on arrival
  RejectedDeadline    ///< still queued past its deadline at dispatch time
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Completed: return "completed";
    case RequestStatus::RejectedQueueFull: return "rejected_queue_full";
    case RequestStatus::RejectedDeadline: return "rejected_deadline";
  }
  return "?";
}

/// Outcome of one request, in simulated time.
struct GemmResponse {
  std::int64_t request_id = -1;
  RequestStatus status = RequestStatus::Completed;
  double finish_seconds = 0;   ///< completion (or rejection) time
  double latency_seconds = 0;  ///< finish - arrival (completed only)
  double wait_seconds = 0;     ///< queue wait before dispatch
  int device_index = -1;       ///< index into the server's device list
  std::int64_t batch_id = -1;
  int batch_size = 0;
  bool used_direct = false;    ///< served by the copy-free direct path
};

}  // namespace gemmtune::serve
