// Request/response types of the GEMM serving subsystem.
//
// A GemmRequest is one C <- alpha*op(A)*op(B) + beta*C problem submitted
// to the service at a simulated arrival time, with a priority and an
// absolute deadline. The scheduler coalesces requests of the same
// ShapeClass — precision, multiplication type and tile-quantized extents —
// into batches that one device dispatch serves together (the batched-GEMM
// pattern of real serving traffic, where a handful of popular shapes
// dominate). The quantization to multiples of 16 lets near-miss shapes
// (e.g. 50^3 and 64^3) share a guarded launch geometry, exactly like the
// guarded direct kernel handles non-divisible fringes.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "codegen/params.hpp"
#include "layout/gemm_type.hpp"
#include "layout/matrix.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::serve {

/// One GEMM problem submitted to the service.
struct GemmRequest {
  std::int64_t id = 0;
  GemmType type = GemmType::NN;
  codegen::Precision prec = codegen::Precision::DP;
  index_t M = 0, N = 0, K = 0;
  int priority = 0;              ///< higher dispatches first
  double arrival_seconds = 0;    ///< simulated submission time
  /// Absolute simulated deadline; a request still queued past it is
  /// rejected instead of dispatched. <= 0 means no deadline.
  double deadline_seconds = 0;

  double flops() const {
    return 2.0 * static_cast<double>(M) * static_cast<double>(N) *
           static_cast<double>(K);
  }
  bool expired_at(double clock) const {
    return deadline_seconds > 0 && clock > deadline_seconds;
  }
};

/// Batching key: requests of one shape class share a single dispatch.
struct ShapeClass {
  codegen::Precision prec = codegen::Precision::DP;
  GemmType type = GemmType::NN;
  index_t Mc = 0, Nc = 0, Kc = 0;  ///< extents rounded up to multiples of 16

  static index_t quantize(index_t n) {
    return n <= 16 ? 16 : (n + 15) / 16 * 16;
  }
  static ShapeClass of(const GemmRequest& r) {
    return {r.prec, r.type, quantize(r.M), quantize(r.N), quantize(r.K)};
  }

  friend bool operator<(const ShapeClass& a, const ShapeClass& b) {
    return std::tuple(static_cast<int>(a.prec), static_cast<int>(a.type),
                      a.Mc, a.Nc, a.Kc) <
           std::tuple(static_cast<int>(b.prec), static_cast<int>(b.type),
                      b.Mc, b.Nc, b.Kc);
  }
  friend bool operator==(const ShapeClass& a, const ShapeClass& b) {
    return !(a < b) && !(b < a);
  }
};

/// Stable display/report key for a shape class, e.g. "SGEMM.NN.64x64x64".
inline std::string to_string(const ShapeClass& c) {
  return std::string(to_string(c.prec)) + "." + to_string(c.type) + "." +
         std::to_string(c.Mc) + "x" + std::to_string(c.Nc) + "x" +
         std::to_string(c.Kc);
}

/// FNV-1a hash of the class fields; used to pick the admission shard, so
/// it must depend only on the class (never on arrival order or pointers).
inline std::uint64_t shape_class_hash(const ShapeClass& c) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(c.prec));
  mix(static_cast<std::uint64_t>(c.type));
  mix(static_cast<std::uint64_t>(c.Mc));
  mix(static_cast<std::uint64_t>(c.Nc));
  mix(static_cast<std::uint64_t>(c.Kc));
  return h;
}

/// Terminal state of a request.
enum class RequestStatus {
  Completed,          ///< served; latency/batch fields are filled
  RejectedQueueFull,  ///< backpressure: the bounded queue was full on arrival
  RejectedDeadline    ///< still queued past its deadline at dispatch time
};

inline const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::Completed: return "completed";
    case RequestStatus::RejectedQueueFull: return "rejected_queue_full";
    case RequestStatus::RejectedDeadline: return "rejected_deadline";
  }
  return "?";
}

/// Outcome of one request, in simulated time.
struct GemmResponse {
  std::int64_t request_id = -1;
  RequestStatus status = RequestStatus::Completed;
  double finish_seconds = 0;   ///< completion (or rejection) time
  double latency_seconds = 0;  ///< finish - arrival (completed only)
  double wait_seconds = 0;     ///< queue wait before dispatch
  int device_index = -1;       ///< index into the server's device list
  std::int64_t batch_id = -1;
  int batch_size = 0;
  bool used_direct = false;    ///< served by the copy-free direct path
};

}  // namespace gemmtune::serve
