// Synthetic serving workloads: a seeded, fully deterministic request
// generator plus a JSON trace format so any workload — generated or
// captured — can be replayed bit-identically ("gemmtune-workload-v1").
//
// The generated mixture follows what input-aware GEMM studies observe in
// real traffic: a heavy tail of small problems (where the paper's
// copy-free direct kernel wins), a medium band around the paper's
// evaluation sizes, and a few large problems that dominate the flop
// count. Arrivals are exponential at `rate_rps`; every draw flows through
// the library Rng, so a (seed, request-count, rate) triple names one
// exact workload forever.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "serve/request.hpp"

namespace gemmtune::serve {

/// Arrival process of a synthetic workload. All three consume the same
/// per-request draw sequence, so switching the process changes *when*
/// requests arrive but never *what* they are — the shape/precision/type/
/// priority stream for a given seed is identical across processes.
enum class Arrival {
  Poisson,  ///< open-loop exponential interarrivals at rate_rps (default)
  Uniform,  ///< fixed 1/rate_rps spacing (closed-form, zero jitter)
  Burst     ///< groups of kBurstSize arrive together, exponential gaps
};

/// Requests per burst for Arrival::Burst.
inline constexpr int kBurstSize = 32;

inline const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::Poisson: return "poisson";
    case Arrival::Uniform: return "uniform";
    case Arrival::Burst: return "burst";
  }
  return "?";
}

/// Parses "poisson" | "uniform" | "burst"; throws the keyval unknown-value
/// error (naming `context`) otherwise.
Arrival parse_arrival(const std::string& context, const std::string& value);

/// Parameters naming one synthetic workload plus the scheduler limits a
/// replay must reuse to be comparable.
struct WorkloadSpec {
  std::uint64_t seed = 42;
  int requests = 1000;
  double rate_rps = 5000;  ///< mean arrival rate
  Arrival arrival = Arrival::Poisson;
  std::vector<simcl::DeviceId> devices;  ///< empty -> evaluation set
  int max_batch = 16;
  int queue_capacity = 512;

  /// Devices, defaulting to the paper's evaluation set when unset.
  std::vector<simcl::DeviceId> resolved_devices() const;
};

/// Parses a "key=value,key=value" spec string. Keys: requests, seed, rate,
/// arrival (poisson|uniform|burst), devices (a '+'-separated list of code
/// names), max_batch, queue. An empty string yields the defaults. Throws
/// on unknown keys or bad values.
WorkloadSpec parse_spec(const std::string& text);

/// Generates the spec's request stream, sorted by arrival time.
std::vector<GemmRequest> generate_workload(const WorkloadSpec& spec);

/// Serializes spec + requests as a "gemmtune-workload-v1" document.
Json workload_json(const WorkloadSpec& spec,
                   const std::vector<GemmRequest>& requests);

/// Parses a "gemmtune-workload-v1" document (throws on schema mismatch or
/// malformed entries). Requests come back sorted by (arrival, id).
struct Workload {
  WorkloadSpec spec;
  std::vector<GemmRequest> requests;
};
Workload workload_from_json(const Json& doc);

/// File round trip for traces; load reports the offending path on error.
void save_workload_file(const std::string& path, const WorkloadSpec& spec,
                        const std::vector<GemmRequest>& requests);
Workload load_workload_file(const std::string& path);

}  // namespace gemmtune::serve
