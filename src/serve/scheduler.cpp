#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace gemmtune::serve {

BatchScheduler::BatchScheduler(int max_batch, int queue_capacity)
    : max_batch_(max_batch), capacity_(queue_capacity) {
  check(max_batch_ >= 1, "BatchScheduler: max_batch must be >= 1");
  check(capacity_ >= 1, "BatchScheduler: queue_capacity must be >= 1");
}

bool BatchScheduler::admit(const GemmRequest& r) {
  if (depth_ >= static_cast<std::size_t>(capacity_)) return false;
  groups_[ShapeClass::of(r)].push_back(r);
  ++depth_;
  peak_depth_ = std::max(peak_depth_, depth_);
  trace::gauge_set("serve.queue_depth", static_cast<double>(depth_));
  return true;
}

void BatchScheduler::skim_expired(std::deque<GemmRequest>& q, double clock,
                                  std::vector<GemmRequest>& expired) {
  while (!q.empty() && q.front().expired_at(clock)) {
    expired.push_back(q.front());
    q.pop_front();
    --depth_;
  }
}

std::vector<BatchScheduler::GroupView> BatchScheduler::group_views(
    double clock, std::vector<GemmRequest>& expired) {
  std::vector<GroupView> views;
  for (auto it = groups_.begin(); it != groups_.end();) {
    skim_expired(it->second, clock, expired);
    if (it->second.empty()) {
      it = groups_.erase(it);
      continue;
    }
    views.push_back({it->first, it->second.front(), it->second.size()});
    ++it;
  }
  trace::gauge_set("serve.queue_depth", static_cast<double>(depth_));
  // Priority desc, arrival asc, id asc; stable_sort keeps the map's
  // ShapeClass order as the final tiebreak.
  std::stable_sort(views.begin(), views.end(),
                   [](const GroupView& a, const GroupView& b) {
                     if (a.head.priority != b.head.priority)
                       return a.head.priority > b.head.priority;
                     if (a.head.arrival_seconds != b.head.arrival_seconds)
                       return a.head.arrival_seconds < b.head.arrival_seconds;
                     return a.head.id < b.head.id;
                   });
  return views;
}

std::optional<PendingBatch> BatchScheduler::pop_from(
    const ShapeClass& shape, double clock, std::size_t max_take,
    std::vector<GemmRequest>& expired) {
  auto it = groups_.find(shape);
  if (it == groups_.end()) return std::nullopt;
  auto& q = it->second;
  const std::size_t limit =
      std::min(static_cast<std::size_t>(max_batch_),
               std::max<std::size_t>(max_take, 1));
  PendingBatch batch{shape, {}};
  while (!q.empty() && batch.requests.size() < limit) {
    if (q.front().expired_at(clock))
      expired.push_back(q.front());
    else
      batch.requests.push_back(q.front());
    q.pop_front();
    --depth_;
  }
  if (q.empty()) groups_.erase(it);
  trace::gauge_set("serve.queue_depth", static_cast<double>(depth_));
  if (batch.requests.empty()) return std::nullopt;
  return batch;
}

}  // namespace gemmtune::serve
