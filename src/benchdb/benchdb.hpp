// Benchmark experiment database: an append-only store of every benchmark
// result the project ever measured, keyed well enough to query and to
// gate CI on the performance *trajectory* instead of one pinned baseline.
//
// One Record holds the full scalar set of one report (a bench_util
// "gemmtune-bench-v1" file, a `serve` report, a `dist` report), flattened
// to a metric-name -> value map, plus the key fields that identify the
// experiment: commit, commit time, host, device, precision, interpreter
// backend, bench, scenario and thread count. Records serialize one per
// line ("gemmtune-benchdb-v1") into a JSONL file via common/jsonl, so the
// database is grown by appending and merged with `cat`.
//
// The regression policy layer (gate) compares each metric's current value
// against the *median of its last K recorded values* with a per-metric
// tolerance and a worse-direction inferred from the metric name — the
// trajectory version of tools/compare_bench.py's single-baseline rtol,
// able to catch slow multi-commit drift that any one baseline misses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/jsonl.hpp"

namespace gemmtune::benchdb {

/// One experiment record: the scalar set of one report plus its key.
struct Record {
  std::string commit;            // 40-hex id or "unknown"
  std::int64_t commit_time = 0;  // committer unix seconds (0 = unknown)
  std::string host;
  std::string device;   // "Tahiti", "Cypress+Cayman+...", or "mixed"
  std::string prec;     // "DGEMM", "SGEMM" or "mixed"
  std::string backend;  // tree | bytecode | native
  std::string bench;    // producing harness: bench name, "serve", "dist"
  std::string scenario;  // deterministic scenario id within the bench
  int threads = 0;
  std::string source_schema;  // schema of the ingested report
  std::map<std::string, double> metrics;

  /// Compact single-line JSON (stable key order; metrics sorted by name).
  Json to_json() const;
  /// Parses a record; throws gemmtune::Error naming the first missing or
  /// mistyped field.
  static Record from_json(const Json& doc);
};

struct LoadResult {
  std::vector<Record> records;      // file order == ingest order
  std::vector<JsonlBadLine> skipped;  // corrupt lines, with offsets
};

/// Loads a database file. Missing file -> empty database. Lines that are
/// not valid records are reported in `skipped`, never fatal.
LoadResult load_db(const std::string& path);

/// Appends records to a database file (crash-safe, see common/jsonl).
void append_db(const std::string& path, const std::vector<Record>& recs);

// ---------------------------------------------------------------------
// Ingest

/// Optional key overrides applied after extraction (CI seeding, tests).
struct IngestOverrides {
  std::string commit;
  std::optional<std::int64_t> commit_time;
};

/// Converts one report document into a record. Accepts the three known
/// schemas (gemmtune-bench-v1 / serve-v1 / dist-v1); anything else — or a
/// report whose "meta" block is absent or missing a key field — throws
/// gemmtune::Error naming `origin` and the offending field. Flattening:
///   scalars                 kept under their own names
///   comparisons             "comparison.<section>/<label>" = measured
///   series                  "series.<section>/<name>@<N>"  = value
Record ingest_report(const Json& doc, const std::string& origin,
                     const IngestOverrides& ov = {});

// ---------------------------------------------------------------------
// Query

/// Conjunctive record filter; empty fields match everything.
struct Filter {
  std::string commit;  // prefix match (so short ids work)
  std::string device, prec, backend, bench, scenario;
  std::optional<int> threads;
  std::string metric;  // keeps only matching metrics ('*' suffix = prefix)

  bool matches(const Record& r) const;
};

/// True when `name` matches `pattern` (exact, or prefix when the pattern
/// ends in '*'; empty pattern matches all).
bool metric_matches(const std::string& pattern, const std::string& name);

/// Filters and deterministically orders records: (commit_time, commit,
/// bench, scenario, device, prec, backend, threads), ties kept in file
/// order. When `f.metric` is set, records keep only matching metrics and
/// records left with none are dropped.
std::vector<Record> query(const std::vector<Record>& records,
                          const Filter& f);

/// Distinct commits of `records` in order of first appearance (the ingest
/// trajectory; append-only files make this the commit timeline).
std::vector<std::string> commit_sequence(
    const std::vector<Record>& records);

// ---------------------------------------------------------------------
// Compare / gate / trend

/// Per-metric tolerance table: exact name or '*'-suffix prefix patterns,
/// first match wins, falling back to `default_rtol`.
struct Tolerances {
  double default_rtol = 1e-4;
  std::vector<std::pair<std::string, double>> per_metric;

  double for_metric(const std::string& name) const;
};

/// Compares the deterministic sections of two report documents (the
/// compare_bench.py contract: comparisons, series and scalars must match
/// within rtol; missing or extra entries fail; the wall-clock "metrics"
/// and host "meta" sections are ignored). Returns the number of
/// mismatches after printing one line per mismatch to `out`.
int compare_reports(const Json& baseline, const Json& current, double rtol,
                    std::ostream& out);

/// Compares the records of two commits (prefix-resolved) metric by
/// metric with symmetric rtol. Returns the mismatch count.
int compare_commits(const std::vector<Record>& records,
                    const std::string& ref_a, const std::string& ref_b,
                    const Tolerances& tol, std::ostream& out);

/// True when a larger value of this metric is worse (durations,
/// latencies, rejections, misses); everything else is higher-is-better.
bool lower_is_better(const std::string& metric);

struct GateOptions {
  int last_k = 5;        // trailing window size (median of up to K values)
  Tolerances tol;        // gate tolerances (default_rtol applies per metric)
  std::string commit;    // commit under test; empty = last in trajectory
  bool group_threads = false;  // include thread count in the series key
  // Symmetric mode flags any |relative change| beyond tolerance instead
  // of only worse-direction moves (the `compare --last K` contract).
  bool symmetric = false;
};

struct GateFailure {
  std::string key;     // "<bench> <scenario> [dev prec backend]"
  std::string metric;
  double median = 0, current = 0, rel_change = 0, tolerance = 0;
  int window = 0;  // records behind the median
};

struct GateResult {
  int checked = 0;     // metrics with at least one historical value
  int no_history = 0;  // metrics seen only at the current commit
  std::vector<GateFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Trajectory gate: for every metric series, the current commit's value
/// must not be worse than the median of the up-to-K preceding records by
/// more than the metric's tolerance (exactly at tolerance passes). Fewer
/// than K prior records gate against what exists; none at all is counted
/// in `no_history` and passes.
GateResult gate(const std::vector<Record>& records, const GateOptions& opt);

/// One metric's trajectory over the commit sequence, for trend rendering.
struct TrendSeries {
  std::string key;     // series identity (bench/scenario/device/...)
  std::string metric;
  std::vector<std::string> commits;  // ordered, parallel to values
  std::vector<double> values;
};

/// Builds per-metric trajectories over the last `last_k` commits of the
/// filtered records (0 = all commits), deterministically ordered by key
/// then metric name.
std::vector<TrendSeries> trend(const std::vector<Record>& records,
                               const Filter& f, int last_k);

/// Unicode block sparkline (▁▂▃▄▅▆▇█), scaled to the series' own
/// min..max; constant series render as all-▁. Requires a non-empty input.
std::string sparkline(const std::vector<double>& values);

/// Renders trajectories as an aligned table with unicode sparklines.
void print_trend(const std::vector<TrendSeries>& series, std::ostream& out);

/// Writes a self-contained HTML trend report (inline SVG sparklines, no
/// external resources; byte-deterministic for a given input).
void write_trend_html(const std::vector<TrendSeries>& series,
                      const std::string& path);

// ---------------------------------------------------------------------
// CLI

/// The `gemmtune bench-db` verb: ingest | query | compare | trend | gate.
/// Returns a process exit code (0 ok, 1 gate/compare failure or error).
int run_cli(const std::vector<std::string>& args, std::ostream& out);

}  // namespace gemmtune::benchdb
