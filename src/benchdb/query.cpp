#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

#include "benchdb/benchdb.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gemmtune::benchdb {

namespace {

/// Identity of a metric series across commits: everything in the record
/// key except commit/time/host (hosts change per CI runner, commits are
/// the x-axis). Thread count joins only on request: results are
/// bit-identical at any thread count by design, and CI runners disagree
/// about core counts.
std::string series_key(const Record& r, bool group_threads) {
  std::string key = r.bench;
  if (r.scenario != r.bench) key += " " + r.scenario;
  key += " [" + r.device + " " + r.prec + " " + r.backend;
  if (group_threads) key += strf(" t%d", r.threads);
  key += "]";
  return key;
}

double median_of(std::vector<double> v) {
  check(!v.empty(), "median of empty window");
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

bool close(double a, double b, double rtol) {
  if (a == b) return true;
  const double denom = std::max(std::fabs(a), std::fabs(b));
  return denom > 0 && std::fabs(a - b) / denom <= rtol;
}

}  // namespace

bool metric_matches(const std::string& pattern, const std::string& name) {
  if (pattern.empty()) return true;
  if (!pattern.empty() && pattern.back() == '*')
    return starts_with(name, pattern.substr(0, pattern.size() - 1));
  return name == pattern;
}

bool Filter::matches(const Record& r) const {
  if (!commit.empty() && !starts_with(r.commit, commit)) return false;
  if (!device.empty() && r.device != device) return false;
  if (!prec.empty() && r.prec != prec) return false;
  if (!backend.empty() && r.backend != backend) return false;
  if (!bench.empty() && r.bench != bench) return false;
  if (!scenario.empty() && r.scenario != scenario) return false;
  if (threads && r.threads != *threads) return false;
  return true;
}

std::vector<Record> query(const std::vector<Record>& records,
                          const Filter& f) {
  std::vector<Record> out;
  for (const Record& r : records) {
    if (!f.matches(r)) continue;
    if (!f.metric.empty()) {
      Record kept = r;
      kept.metrics.clear();
      for (const auto& [name, value] : r.metrics)
        if (metric_matches(f.metric, name)) kept.metrics[name] = value;
      if (kept.metrics.empty()) continue;
      out.push_back(std::move(kept));
    } else {
      out.push_back(r);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return std::tie(a.commit_time, a.commit, a.bench,
                                     a.scenario, a.device, a.prec, a.backend,
                                     a.threads) <
                            std::tie(b.commit_time, b.commit, b.bench,
                                     b.scenario, b.device, b.prec, b.backend,
                                     b.threads);
                   });
  return out;
}

std::vector<std::string> commit_sequence(
    const std::vector<Record>& records) {
  std::vector<std::string> seq;
  for (const Record& r : records) {
    if (std::find(seq.begin(), seq.end(), r.commit) == seq.end())
      seq.push_back(r.commit);
  }
  return seq;
}

double Tolerances::for_metric(const std::string& name) const {
  for (const auto& [pattern, rtol] : per_metric) {
    if (metric_matches(pattern, name)) return rtol;
  }
  return default_rtol;
}

bool lower_is_better(const std::string& metric) {
  // "_ms" covers the serving layer's histogram percentiles
  // (hist.p99_ms, class.<shape>.p999_ms, ...): every *_ms metric in the
  // suite is a duration. "shed"/"expired" are the overload counters.
  for (const char* marker :
       {"seconds", "latency", "time", "rejected", "miss", "failed", "_ms",
        "shed", "expired"}) {
    if (metric.find(marker) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// compare

namespace {

void diff_key_sets(const char* kind,
                   const std::map<std::string, double>& base,
                   const std::map<std::string, double>& cur,
                   std::ostream& out, int& mismatches) {
  for (const auto& [k, v] : base) {
    if (!cur.contains(k)) {
      out << "  " << kind << " " << k << ": missing from current result\n";
      ++mismatches;
    }
  }
  for (const auto& [k, v] : cur) {
    if (!base.contains(k)) {
      out << "  " << kind << " " << k
          << ": not in baseline (update baselines?)\n";
      ++mismatches;
    }
  }
}

void compare_values(const char* kind,
                    const std::map<std::string, double>& base,
                    const std::map<std::string, double>& cur, double rtol,
                    std::ostream& out, int& mismatches) {
  diff_key_sets(kind, base, cur, out, mismatches);
  for (const auto& [k, bv] : base) {
    auto it = cur.find(k);
    if (it == cur.end()) continue;
    if (!close(bv, it->second, rtol)) {
      out << "  " << kind << " " << k << ": "
          << strf("baseline %.6g vs current %.6g", bv, it->second) << "\n";
      ++mismatches;
    }
  }
}

/// Flattens a report's deterministic sections into one name -> value map
/// (the same shape compare_bench.py indexes). Reused for both sides of a
/// file comparison so missing/extra detection is symmetric.
std::map<std::string, double> comparable_values(const Json& doc) {
  std::map<std::string, double> out;
  if (doc.contains("scalars")) {
    for (const auto& [name, value] : doc.at("scalars").items())
      out["scalar " + name] = value.as_number();
  }
  if (doc.contains("comparisons")) {
    const Json& comps = doc.at("comparisons");
    for (std::size_t i = 0; i < comps.size(); ++i) {
      const Json& c = comps.at(i);
      const std::string key = "comparison (" + c.at("section").as_string() +
                              ", " + c.at("label").as_string() + ")";
      out[key + " paper"] = c.at("paper").as_number();
      out[key + " measured"] = c.at("measured").as_number();
    }
  }
  if (doc.contains("series")) {
    const Json& series = doc.at("series");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Json& s = series.at(i);
      const std::string key = "series (" + s.at("section").as_string() +
                              ", " + s.at("name").as_string() + ")";
      const Json& points = s.at("points");
      for (std::size_t p = 0; p < points.size(); ++p) {
        const Json& pt = points.at(p);
        out[key + strf(" at N=%lld",
                       static_cast<long long>(
                           pt.at(std::size_t{0}).as_int()))] =
            pt.at(std::size_t{1}).as_number();
      }
    }
  }
  return out;
}

}  // namespace

int compare_reports(const Json& baseline, const Json& current, double rtol,
                    std::ostream& out) {
  int mismatches = 0;
  const std::string bs =
      baseline.contains("schema") ? baseline.at("schema").as_string() : "?";
  const std::string cs =
      current.contains("schema") ? current.at("schema").as_string() : "?";
  if (bs != cs) {
    out << "  schema mismatch: baseline '" << bs << "' vs current '" << cs
        << "'\n";
    return 1;
  }
  const auto base = comparable_values(baseline);
  const auto cur = comparable_values(current);
  compare_values("", base, cur, rtol, out, mismatches);
  return mismatches;
}

int compare_commits(const std::vector<Record>& records,
                    const std::string& ref_a, const std::string& ref_b,
                    const Tolerances& tol, std::ostream& out) {
  // One flat map per commit: "<series key> <metric>" -> value.
  auto values_of = [&](const std::string& ref,
                       std::map<std::string, double>& out_map) {
    bool found = false;
    for (const Record& r : records) {
      if (!starts_with(r.commit, ref)) continue;
      found = true;
      const std::string key = series_key(r, /*group_threads=*/false);
      for (const auto& [name, value] : r.metrics)
        out_map[key + " " + name] = value;
    }
    check(found, "compare: no records for commit '" + ref + "'");
  };
  std::map<std::string, double> a, b;
  values_of(ref_a, a);
  values_of(ref_b, b);
  int mismatches = 0;
  diff_key_sets("metric", a, b, out, mismatches);
  for (const auto& [k, av] : a) {
    auto it = b.find(k);
    if (it == b.end()) continue;
    // Extract the metric name (last space-separated token) for the
    // per-metric tolerance lookup.
    const std::string metric = k.substr(k.rfind(' ') + 1);
    if (!close(av, it->second, tol.for_metric(metric))) {
      out << "  metric " << k << ": "
          << strf("%.6g vs %.6g", av, it->second) << "\n";
      ++mismatches;
    }
  }
  return mismatches;
}

// ---------------------------------------------------------------------
// gate

GateResult gate(const std::vector<Record>& records,
                const GateOptions& opt) {
  GateResult result;
  const auto seq = commit_sequence(records);
  if (seq.empty()) return result;
  std::string current = opt.commit.empty() ? seq.back() : "";
  if (!opt.commit.empty()) {
    for (const std::string& c : seq)
      if (starts_with(c, opt.commit)) current = c;
    check(!current.empty(),
          "gate: no records for commit '" + opt.commit + "'");
  }
  // Metric series: (series key, metric) -> values in ingest order,
  // separated into history (pre-current commits) and the current value.
  struct SeriesState {
    std::vector<double> history;
    std::optional<double> current;
  };
  std::map<std::pair<std::string, std::string>, SeriesState> series;
  for (const Record& r : records) {
    const std::string key = series_key(r, opt.group_threads);
    for (const auto& [name, value] : r.metrics) {
      SeriesState& s = series[{key, name}];
      if (r.commit == current)
        s.current = value;  // last write wins (re-ingest of same commit)
      else if (!s.current)
        s.history.push_back(value);
      // Records ingested *after* the current commit's are ignored: the
      // gate asks "is the commit under test worse than its past".
    }
  }
  for (const auto& [id, s] : series) {
    if (!s.current) continue;  // series absent at the current commit
    if (s.history.empty()) {
      ++result.no_history;
      continue;
    }
    ++result.checked;
    const int k = std::max(1, opt.last_k);
    const std::size_t take =
        std::min(s.history.size(), static_cast<std::size_t>(k));
    const std::vector<double> window(s.history.end() -
                                         static_cast<std::ptrdiff_t>(take),
                                     s.history.end());
    const double med = median_of(window);
    const double tol = opt.tol.for_metric(id.second);
    const double denom = std::fabs(med);
    double worse = 0;  // relative worsening, positive = regression
    if (denom > 0) {
      const double delta = (*s.current - med) / denom;
      worse = opt.symmetric ? std::fabs(delta)
              : lower_is_better(id.second) ? delta
                                           : -delta;
    } else if (*s.current != med) {
      // Median 0: any nonzero "worse-direction" value is an infinite
      // relative change; flag it unless the direction improved.
      const bool regressed = opt.symmetric ? true
                             : lower_is_better(id.second) ? *s.current > 0
                                                          : *s.current < 0;
      worse = regressed ? std::numeric_limits<double>::infinity() : 0;
    }
    if (worse > tol) {
      result.failures.push_back({id.first, id.second, med, *s.current,
                                 worse, tol, static_cast<int>(take)});
    }
  }
  return result;
}

// ---------------------------------------------------------------------
// trend

std::vector<TrendSeries> trend(const std::vector<Record>& records,
                               const Filter& f, int last_k) {
  const std::vector<Record> kept = [&] {
    std::vector<Record> v;
    for (const Record& r : records)
      if (f.matches(r)) v.push_back(r);
    return v;
  }();
  auto seq = commit_sequence(kept);
  if (last_k > 0 && static_cast<int>(seq.size()) > last_k)
    seq.erase(seq.begin(),
              seq.end() - static_cast<std::ptrdiff_t>(last_k));
  std::map<std::pair<std::string, std::string>,
           std::map<std::string, double>>
      by_series;  // (key, metric) -> commit -> value
  for (const Record& r : kept) {
    if (std::find(seq.begin(), seq.end(), r.commit) == seq.end()) continue;
    const std::string key = series_key(r, /*group_threads=*/false);
    for (const auto& [name, value] : r.metrics) {
      if (!metric_matches(f.metric, name)) continue;
      by_series[{key, name}][r.commit] = value;
    }
  }
  std::vector<TrendSeries> out;
  for (const auto& [id, per_commit] : by_series) {
    TrendSeries t;
    t.key = id.first;
    t.metric = id.second;
    for (const std::string& c : seq) {
      auto it = per_commit.find(c);
      if (it == per_commit.end()) continue;
      t.commits.push_back(c);
      t.values.push_back(it->second);
    }
    if (!t.values.empty()) out.push_back(std::move(t));
  }
  return out;
}

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (double v : values) {
    int level = 0;
    if (hi > lo)
      level = static_cast<int>(std::floor((v - lo) / (hi - lo) * 7.999));
    out += kBlocks[std::clamp(level, 0, 7)];
  }
  return out;
}

void print_trend(const std::vector<TrendSeries>& series,
                 std::ostream& out) {
  if (series.empty()) {
    out << "trend: no matching metric series\n";
    return;
  }
  TextTable t;
  t.set_header({"Series", "Metric", "Trend", "First", "Last", "Change"});
  for (const TrendSeries& s : series) {
    const double first = s.values.front();
    const double last = s.values.back();
    const double change =
        first != 0 ? (last - first) / std::fabs(first) * 100 : 0;
    t.add_row({s.key, s.metric, sparkline(s.values), strf("%.6g", first),
               strf("%.6g", last),
               s.values.size() > 1 ? strf("%+.2f%%", change) : "-"});
  }
  t.print(out);
}

}  // namespace gemmtune::benchdb
