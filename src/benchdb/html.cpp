// Self-contained HTML trend report: one table row per metric series with
// an inline-SVG sparkline over the commit trajectory. No external
// resources (CI uploads the file as a standalone artifact) and
// byte-deterministic for a given database, so reports diff cleanly.
#include <cmath>
#include <fstream>

#include "benchdb/benchdb.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::benchdb {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '&') out += "&amp;";
    else if (c == '<') out += "&lt;";
    else if (c == '>') out += "&gt;";
    else out += c;
  }
  return out;
}

/// 2px polyline scaled into a fixed viewBox, plus an 8px end marker on
/// the latest value. Fixed-precision coordinates keep the file
/// deterministic.
std::string sparkline_svg(const std::vector<double>& values) {
  const double w = 160, h = 36, pad = 5;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1;
  auto x = [&](std::size_t i) {
    return values.size() > 1
               ? pad + (w - 2 * pad) * static_cast<double>(i) /
                     static_cast<double>(values.size() - 1)
               : w / 2;
  };
  auto y = [&](double v) { return h - pad - (h - 2 * pad) * (v - lo) / span; };
  std::string pts;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!pts.empty()) pts += ' ';
    pts += strf("%.2f,%.2f", x(i), y(values[i]));
  }
  std::string svg = strf(
      "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" "
      "role=\"img\" aria-label=\"trend over %zu commits\">",
      w, h, w, h, values.size());
  svg += "<polyline fill=\"none\" stroke=\"var(--series-1)\" "
         "stroke-width=\"2\" stroke-linejoin=\"round\" "
         "stroke-linecap=\"round\" points=\"" + pts + "\"/>";
  svg += strf(
      "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"4\" fill=\"var(--series-1)\" "
      "stroke=\"var(--surface-1)\" stroke-width=\"2\"/>",
      x(values.size() - 1), y(values.back()));
  svg += "</svg>";
  return svg;
}

}  // namespace

void write_trend_html(const std::vector<TrendSeries>& series,
                      const std::string& path) {
  std::size_t max_commits = 0;
  for (const TrendSeries& s : series)
    max_commits = std::max(max_commits, s.commits.size());
  std::ofstream f(path, std::ios::trunc);
  check(f.good(), "trend: cannot write " + path);
  f << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
       "<meta charset=\"utf-8\">\n"
       "<title>gemmtune benchmark trend</title>\n"
       "<style>\n"
       ".viz-root { color-scheme: light;\n"
       "  --surface-1: #fcfcfb; --text-primary: #0b0b0b;\n"
       "  --text-secondary: #52514e; --series-1: #2a78d6;\n"
       "  --grid: #e4e3df; }\n"
       "@media (prefers-color-scheme: dark) { .viz-root {\n"
       "  color-scheme: dark;\n"
       "  --surface-1: #1a1a19; --text-primary: #ffffff;\n"
       "  --text-secondary: #c3c2b7; --series-1: #3987e5;\n"
       "  --grid: #3a3936; } }\n"
       "body { margin: 0; }\n"
       ".viz-root { background: var(--surface-1);\n"
       "  color: var(--text-primary);\n"
       "  font: 14px/1.5 system-ui, sans-serif;\n"
       "  padding: 24px; min-height: 100vh; }\n"
       "h1 { font-size: 18px; margin: 0 0 4px; }\n"
       ".sub { color: var(--text-secondary); margin: 0 0 20px; }\n"
       "table { border-collapse: collapse; width: 100%; }\n"
       "th { text-align: left; color: var(--text-secondary);\n"
       "  font-weight: 600; font-size: 12px;\n"
       "  border-bottom: 1px solid var(--grid); padding: 6px 12px; }\n"
       "td { border-bottom: 1px solid var(--grid); padding: 6px 12px;\n"
       "  vertical-align: middle; }\n"
       "td.num { text-align: right;\n"
       "  font-variant-numeric: tabular-nums; }\n"
       "td.key { color: var(--text-secondary); }\n"
       "svg { display: block; }\n"
       "</style>\n</head>\n<body>\n<div class=\"viz-root\">\n";
  f << "<h1>Benchmark trend</h1>\n";
  f << "<p class=\"sub\">" << series.size() << " metric series over up to "
    << max_commits << " commits (oldest → newest)</p>\n";
  f << "<table>\n<thead><tr><th>Series</th><th>Metric</th>"
       "<th>Trend</th><th>First</th><th>Last</th><th>Change</th></tr>"
       "</thead>\n<tbody>\n";
  for (const TrendSeries& s : series) {
    const double first = s.values.front();
    const double last = s.values.back();
    const double change =
        first != 0 ? (last - first) / std::fabs(first) * 100 : 0;
    f << "<tr><td class=\"key\">" << html_escape(s.key) << "</td><td>"
      << html_escape(s.metric) << "</td><td>" << sparkline_svg(s.values)
      << "</td><td class=\"num\">" << strf("%.6g", first)
      << "</td><td class=\"num\">" << strf("%.6g", last)
      << "</td><td class=\"num\">"
      << (s.values.size() > 1 ? strf("%+.2f%%", change) : "&ndash;")
      << "</td></tr>\n";
  }
  f << "</tbody>\n</table>\n</div>\n</body>\n</html>\n";
  check(f.good(), "trend: write failed for " + path);
}

}  // namespace gemmtune::benchdb
