#include "benchdb/benchdb.hpp"
#include "common/error.hpp"
#include "common/report_version.hpp"
#include "common/strings.hpp"

namespace gemmtune::benchdb {

namespace {

/// Pulls one required field out of a report's meta block, with errors
/// that name the file and the field so a rejected ingest is actionable.
const Json& meta_field(const Json& meta, const std::string& origin,
                       const char* name) {
  check(meta.contains(name),
        "ingest: " + origin + ": meta missing required field '" + name +
            "'");
  return meta.at(name);
}

std::string join_devices(const Json& devices) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < devices.size(); ++i)
    names.push_back(devices.at(i).as_string());
  return names.empty() ? std::string("mixed") : join(names, "+");
}

/// Flattens the three deterministic bench-v1 sections into the metric
/// map. The wall-clock "metrics" (trace) section is deliberately not
/// ingested: span durations vary run to run and would make every gate
/// flaky.
void flatten_bench_sections(const Json& doc,
                            std::map<std::string, double>& out) {
  if (doc.contains("scalars")) {
    for (const auto& [name, value] : doc.at("scalars").items())
      out[name] = value.as_number();
  }
  if (doc.contains("comparisons")) {
    const Json& comps = doc.at("comparisons");
    for (std::size_t i = 0; i < comps.size(); ++i) {
      const Json& c = comps.at(i);
      out["comparison." + c.at("section").as_string() + "/" +
          c.at("label").as_string()] = c.at("measured").as_number();
    }
  }
  if (doc.contains("series")) {
    const Json& series = doc.at("series");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Json& s = series.at(i);
      const std::string prefix = "series." + s.at("section").as_string() +
                                 "/" + s.at("name").as_string() + "@";
      const Json& points = s.at("points");
      for (std::size_t p = 0; p < points.size(); ++p) {
        const Json& pt = points.at(p);
        out[prefix + std::to_string(pt.at(std::size_t{0}).as_int())] =
            pt.at(std::size_t{1}).as_number();
      }
    }
  }
}

}  // namespace

Record ingest_report(const Json& doc, const std::string& origin,
                     const IngestOverrides& ov) {
  check(doc.contains("schema"),
        "ingest: " + origin + ": document has no 'schema' field");
  const std::string schema = doc.at("schema").as_string();
  check(schema == kBenchReportSchema || schema == kServeReportSchema ||
            schema == kDistReportSchema,
        "ingest: " + origin + ": unsupported schema '" + schema + "' (use " +
            kBenchReportSchema + ", " + kServeReportSchema + " or " +
            kDistReportSchema + ")");
  check(doc.contains("meta"),
        "ingest: " + origin + ": report missing required field 'meta' "
        "(re-run the bench with a current build)");
  const Json& meta = doc.at("meta");

  Record r;
  r.source_schema = schema;
  r.commit = meta_field(meta, origin, "commit").as_string();
  r.commit_time = meta_field(meta, origin, "commit_time").as_int();
  r.host = meta_field(meta, origin, "host").as_string();
  r.backend = meta_field(meta, origin, "backend").as_string();
  r.threads = static_cast<int>(meta_field(meta, origin, "threads").as_int());
  r.device = "mixed";
  r.prec = "mixed";

  if (schema == kBenchReportSchema) {
    check(doc.contains("bench"),
          "ingest: " + origin + ": bench report missing 'bench' name");
    r.bench = doc.at("bench").as_string();
    r.scenario = r.bench;
    flatten_bench_sections(doc, r.metrics);
  } else if (schema == kServeReportSchema) {
    const Json& wl = doc.at("workload");
    r.bench = "serve";
    r.device = join_devices(wl.at("devices"));
    r.scenario = strf(
        "requests=%lld,seed=%lld,rate=%g,max_batch=%lld",
        static_cast<long long>(wl.at("requests").as_int()),
        static_cast<long long>(wl.at("seed").as_int()),
        wl.at("rate_rps").as_number(),
        static_cast<long long>(wl.at("max_batch").as_int()));
    // Concurrent-core reports tag their scenario so serial and async runs
    // of the same workload track separate trajectories.
    if (wl.contains("core"))
      r.scenario += ",core=" + wl.at("core").as_string();
    for (const auto& [name, value] : doc.at("scalars").items())
      r.metrics[name] = value.as_number();
  } else {  // dist
    const Json& problem = doc.at("problem");
    r.bench = "dist";
    r.device = join_devices(problem.at("devices"));
    r.prec = problem.at("prec").as_string();
    r.scenario = strf("%s,m=%lld,n=%lld,k=%lld",
                      problem.at("type").as_string().c_str(),
                      static_cast<long long>(problem.at("m").as_int()),
                      static_cast<long long>(problem.at("n").as_int()),
                      static_cast<long long>(problem.at("k").as_int()));
    for (const auto& [name, value] : doc.at("scalars").items())
      r.metrics[name] = value.as_number();
  }

  if (!ov.commit.empty()) r.commit = ov.commit;
  if (ov.commit_time) r.commit_time = *ov.commit_time;
  check(!r.metrics.empty(),
        "ingest: " + origin + ": report has no deterministic metrics");
  return r;
}

}  // namespace gemmtune::benchdb
