#include <utility>

#include "benchdb/benchdb.hpp"
#include "common/error.hpp"
#include "common/report_version.hpp"

namespace gemmtune::benchdb {

namespace {

const std::string& field_string(const Json& doc, const char* name) {
  check(doc.contains(name),
        std::string("record missing required field '") + name + "'");
  return doc.at(name).as_string();
}

std::int64_t field_int(const Json& doc, const char* name) {
  check(doc.contains(name),
        std::string("record missing required field '") + name + "'");
  return doc.at(name).as_int();
}

}  // namespace

Json Record::to_json() const {
  Json doc = Json::object();
  doc["schema"] = kBenchDbSchema;
  doc["commit"] = commit;
  doc["commit_time"] = commit_time;
  doc["host"] = host;
  doc["device"] = device;
  doc["prec"] = prec;
  doc["backend"] = backend;
  doc["bench"] = bench;
  doc["scenario"] = scenario;
  doc["threads"] = threads;
  doc["source_schema"] = source_schema;
  Json m = Json::object();
  for (const auto& [name, value] : metrics) m[name] = value;
  doc["metrics"] = std::move(m);
  return doc;
}

Record Record::from_json(const Json& doc) {
  check(field_string(doc, "schema") == kBenchDbSchema,
        "record has unexpected schema '" + doc.at("schema").as_string() +
            "' (want " + kBenchDbSchema + ")");
  Record r;
  r.commit = field_string(doc, "commit");
  r.commit_time = field_int(doc, "commit_time");
  r.host = field_string(doc, "host");
  r.device = field_string(doc, "device");
  r.prec = field_string(doc, "prec");
  r.backend = field_string(doc, "backend");
  r.bench = field_string(doc, "bench");
  r.scenario = field_string(doc, "scenario");
  r.threads = static_cast<int>(field_int(doc, "threads"));
  r.source_schema = field_string(doc, "source_schema");
  check(doc.contains("metrics"), "record missing required field 'metrics'");
  for (const auto& [name, value] : doc.at("metrics").items())
    r.metrics[name] = value.as_number();
  return r;
}

LoadResult load_db(const std::string& path) {
  LoadResult out;
  JsonlFile file = load_jsonl(path, /*missing_ok=*/true);
  out.skipped = std::move(file.bad);
  for (const JsonlLine& line : file.lines) {
    try {
      out.records.push_back(Record::from_json(line.value));
    } catch (const Error& e) {
      // A parseable JSON line that is not a valid record is corruption
      // too: report it at the same offset granularity and keep going.
      out.skipped.push_back({line.line_no, line.byte_offset, e.what()});
    }
  }
  return out;
}

void append_db(const std::string& path, const std::vector<Record>& recs) {
  std::vector<Json> docs;
  docs.reserve(recs.size());
  for (const Record& r : recs) docs.push_back(r.to_json());
  append_jsonl(path, docs);
}

}  // namespace gemmtune::benchdb
