// The `gemmtune bench-db` verb: the CLI face of the experiment store.
//
//   ingest FILE... --db PATH     consume bench/serve/dist reports
//   query  --db PATH [filters]   list records (table or --json)
//   compare BASE CUR             diff two report files (compare_bench's
//                                old job), or two commits with --db
//   trend  --db PATH             sparkline table + optional --html report
//   gate   --db PATH             trajectory regression gate for CI
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>

#include "benchdb/benchdb.hpp"
#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gemmtune::benchdb {

namespace {

/// `--flag value` / `--flag=value` parsing (same contract as the serve
/// and dist verbs): returns the value and advances `i` when args[i] is
/// `flag`, nullopt otherwise.
std::optional<std::string> flag_value(const std::vector<std::string>& args,
                                      std::size_t& i, const char* flag) {
  const std::string& a = args[i];
  const std::string eq = std::string(flag) + "=";
  if (a.rfind(eq, 0) == 0) return a.substr(eq.size());
  if (a == flag) {
    check(i + 1 < args.size(), std::string(flag) + " requires a value");
    return args[++i];
  }
  return std::nullopt;
}

int parse_int(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const int n = std::stoi(value, &used);
    check(used == value.size(),
          flag + " expects an integer, got '" + value + "'");
    return n;
  } catch (const Error&) {
    throw;
  } catch (...) {
    fail(flag + " expects an integer, got '" + value + "'");
  }
}

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double d = std::stod(value, &used);
    check(used == value.size(),
          flag + " expects a number, got '" + value + "'");
    return d;
  } catch (const Error&) {
    throw;
  } catch (...) {
    fail(flag + " expects a number, got '" + value + "'");
  }
}

Json load_json_file(const std::string& path) {
  std::ifstream f(path);
  check(f.good(), "cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    return Json::parse(ss.str());
  } catch (const Error& e) {
    fail("malformed JSON in '" + path + "': " + e.what());
  }
}

/// Loads a database and reports (but tolerates) corrupt lines, so one
/// torn append can never wedge CI.
std::vector<Record> load_reporting(const std::string& db_path,
                                   std::ostream& out) {
  const LoadResult loaded = load_db(db_path);
  if (!loaded.skipped.empty()) {
    out << "warning: " << db_path << ": skipped "
        << loaded.skipped.size() << " corrupt line(s):\n";
    for (const JsonlBadLine& bad : loaded.skipped)
      out << strf("  line %lld (byte offset %lld): ",
                  static_cast<long long>(bad.line_no),
                  static_cast<long long>(bad.byte_offset))
          << bad.error << "\n";
  }
  return loaded.records;
}

/// Shared filter flags of query/trend/gate. Returns true when args[i]
/// was consumed.
bool parse_filter_flag(const std::vector<std::string>& args, std::size_t& i,
                       Filter& f) {
  if (auto v = flag_value(args, i, "--commit")) f.commit = *v;
  else if (auto v = flag_value(args, i, "--device")) f.device = *v;
  else if (auto v = flag_value(args, i, "--prec")) f.prec = *v;
  else if (auto v = flag_value(args, i, "--backend")) f.backend = *v;
  else if (auto v = flag_value(args, i, "--bench")) f.bench = *v;
  else if (auto v = flag_value(args, i, "--scenario")) f.scenario = *v;
  else if (auto v = flag_value(args, i, "--threads"))
    f.threads = parse_int("--threads", *v);
  else if (auto v = flag_value(args, i, "--metric")) f.metric = *v;
  else return false;
  return true;
}

/// `--tol name=rtol` (name may end in '*'); appended to `tol.per_metric`.
void parse_tol(const std::string& value, Tolerances& tol) {
  const auto eq = value.find('=');
  check(eq != std::string::npos && eq > 0,
        "--tol expects METRIC=RTOL, got '" + value + "'");
  tol.per_metric.emplace_back(
      value.substr(0, eq), parse_double("--tol", value.substr(eq + 1)));
}

int cmd_ingest(const std::vector<std::string>& args, std::ostream& out) {
  std::string db_path;
  IngestOverrides ov;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--db")) db_path = *v;
    else if (auto v = flag_value(args, i, "--commit")) ov.commit = *v;
    else if (auto v = flag_value(args, i, "--time"))
      ov.commit_time = parse_int("--time", *v);
    else if (starts_with(args[i], "--"))
      fail("ingest: unknown flag '" + args[i] + "'");
    else files.push_back(args[i]);
  }
  check(!db_path.empty(), "ingest: --db PATH is required");
  check(!files.empty(), "usage: bench-db ingest FILE... --db PATH");
  std::vector<Record> records;
  for (const std::string& file : files)
    records.push_back(ingest_report(load_json_file(file), file, ov));
  append_db(db_path, records);
  out << "ingested " << records.size() << " record(s) into " << db_path
      << "\n";
  return 0;
}

int cmd_query(const std::vector<std::string>& args, std::ostream& out) {
  std::string db_path;
  Filter f;
  bool as_json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--db")) db_path = *v;
    else if (args[i] == "--json") as_json = true;
    else if (parse_filter_flag(args, i, f)) continue;
    else fail("query: unknown flag '" + args[i] + "'");
  }
  check(!db_path.empty(), "query: --db PATH is required");
  const auto records = query(load_reporting(db_path, out), f);
  if (as_json) {
    Json arr = Json::array();
    for (const Record& r : records) arr.push_back(r.to_json());
    out << arr.dump(2) << "\n";
    return 0;
  }
  TextTable t;
  const bool per_metric = !f.metric.empty();
  if (per_metric)
    t.set_header({"Commit", "Bench", "Scenario", "Device", "Prec",
                  "Backend", "Thr", "Metric", "Value"});
  else
    t.set_header({"Commit", "Bench", "Scenario", "Device", "Prec",
                  "Backend", "Thr", "Metrics"});
  for (const Record& r : records) {
    const std::string commit = r.commit.substr(0, 12);
    if (per_metric) {
      for (const auto& [name, value] : r.metrics)
        t.add_row({commit, r.bench, r.scenario, r.device, r.prec,
                   r.backend, std::to_string(r.threads), name,
                   strf("%.6g", value)});
    } else {
      t.add_row({commit, r.bench, r.scenario, r.device, r.prec, r.backend,
                 std::to_string(r.threads),
                 std::to_string(r.metrics.size())});
    }
  }
  t.print(out);
  out << records.size() << " record(s)\n";
  return 0;
}

int cmd_compare(const std::vector<std::string>& args, std::ostream& out) {
  std::string db_path, commit;
  Tolerances tol;
  int last_k = 0;
  std::vector<std::string> refs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--db")) db_path = *v;
    else if (auto v = flag_value(args, i, "--rtol"))
      tol.default_rtol = parse_double("--rtol", *v);
    else if (auto v = flag_value(args, i, "--tol")) parse_tol(*v, tol);
    else if (auto v = flag_value(args, i, "--last"))
      last_k = parse_int("--last", *v);
    else if (auto v = flag_value(args, i, "--commit")) commit = *v;
    else if (starts_with(args[i], "--"))
      fail("compare: unknown flag '" + args[i] + "'");
    else refs.push_back(args[i]);
  }
  int mismatches = 0;
  if (db_path.empty()) {
    // File mode: two report documents (the compare_bench.py contract).
    check(refs.size() == 2,
          "usage: bench-db compare BASELINE CURRENT [--rtol X]");
    const Json base = load_json_file(refs[0]);
    const Json cur = load_json_file(refs[1]);
    std::ostringstream detail;
    mismatches = compare_reports(base, cur, tol.default_rtol, detail);
    const std::string name = base.contains("bench")
                                 ? base.at("bench").as_string()
                                 : base.contains("schema")
                                       ? base.at("schema").as_string()
                                       : "?";
    if (mismatches > 0) {
      out << "[" << name << "] " << mismatches
          << " mismatch(es) vs baseline:\n" << detail.str();
    } else {
      out << "[" << name << "] OK: deterministic sections match (rtol "
          << strf("%g", tol.default_rtol) << ")\n";
    }
  } else {
    const auto records = load_reporting(db_path, out);
    if (last_k > 0) {
      // last-K-vs-current: symmetric gate against the window median.
      check(refs.empty(),
            "compare: --last takes no positional refs (use --commit)");
      GateOptions opt;
      opt.last_k = last_k;
      opt.tol = tol;
      opt.commit = commit;
      opt.symmetric = true;
      const GateResult res = gate(records, opt);
      mismatches = static_cast<int>(res.failures.size());
      for (const GateFailure& fl : res.failures)
        out << "  " << fl.key << " " << fl.metric << ": "
            << strf("median(last %d) %.6g vs current %.6g "
                    "(%+.2f%%, rtol %g)",
                    fl.window, fl.median, fl.current,
                    (fl.current - fl.median) /
                        (fl.median != 0 ? std::abs(fl.median) : 1) * 100,
                    fl.tolerance)
            << "\n";
      out << (mismatches == 0 ? "compare OK: " : "compare FAILED: ")
          << res.checked << " metric series vs last-" << last_k
          << " median, " << mismatches << " mismatch(es)\n";
    } else {
      check(refs.size() == 2,
            "usage: bench-db compare --db PATH REF_A REF_B, or "
            "--db PATH --last K");
      std::ostringstream detail;
      mismatches =
          compare_commits(records, refs[0], refs[1], tol, detail);
      if (mismatches > 0)
        out << refs[0] << " vs " << refs[1] << ": " << mismatches
            << " mismatch(es):\n" << detail.str();
      else
        out << refs[0] << " vs " << refs[1] << ": OK (rtol "
            << strf("%g", tol.default_rtol) << ")\n";
    }
  }
  return mismatches == 0 ? 0 : 1;
}

int cmd_trend(const std::vector<std::string>& args, std::ostream& out) {
  std::string db_path, html_path;
  Filter f;
  int last_k = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--db")) db_path = *v;
    else if (auto v = flag_value(args, i, "--last"))
      last_k = parse_int("--last", *v);
    else if (auto v = flag_value(args, i, "--html")) html_path = *v;
    else if (parse_filter_flag(args, i, f)) continue;
    else fail("trend: unknown flag '" + args[i] + "'");
  }
  check(!db_path.empty(), "trend: --db PATH is required");
  const auto series = trend(load_reporting(db_path, out), f, last_k);
  print_trend(series, out);
  if (!html_path.empty()) {
    write_trend_html(series, html_path);
    out << "wrote " << html_path << "\n";
  }
  return 0;
}

int cmd_gate(const std::vector<std::string>& args, std::ostream& out) {
  std::string db_path;
  Filter f;
  GateOptions opt;
  opt.tol.default_rtol = 0.05;  // trajectory gates are coarser than rtol
                                // diffs: catch real drift, not noise
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (auto v = flag_value(args, i, "--db")) db_path = *v;
    else if (auto v = flag_value(args, i, "--last"))
      opt.last_k = parse_int("--last", *v);
    else if (auto v = flag_value(args, i, "--rtol"))
      opt.tol.default_rtol = parse_double("--rtol", *v);
    else if (auto v = flag_value(args, i, "--tol")) parse_tol(*v, opt.tol);
    else if (args[i] == "--group-threads") opt.group_threads = true;
    else if (parse_filter_flag(args, i, f)) continue;
    else fail("gate: unknown flag '" + args[i] + "'");
  }
  check(!db_path.empty(), "gate: --db PATH is required");
  // The --commit filter doubles as the commit under test.
  opt.commit = f.commit;
  f.commit.clear();
  std::vector<Record> records;
  for (const Record& r : load_reporting(db_path, out))
    if (f.matches(r)) records.push_back(r);
  const GateResult res = gate(records, opt);
  if (!res.ok()) {
    TextTable t;
    t.set_header({"Series", "Metric", "Median", "Current", "Worse by",
                  "Tolerance", "Window"});
    for (const GateFailure& fl : res.failures)
      t.add_row({fl.key, fl.metric, strf("%.6g", fl.median),
                 strf("%.6g", fl.current), strf("%.2f%%", fl.rel_change * 100),
                 strf("%g", fl.tolerance), std::to_string(fl.window)});
    t.print(out);
  }
  out << (res.ok() ? "gate OK: " : "gate FAILED: ") << res.checked
      << " metric series gated against the last-" << opt.last_k
      << " median (" << res.no_history << " new, "
      << res.failures.size() << " regression(s))\n";
  return res.ok() ? 0 : 1;
}

int usage(std::ostream& out) {
  out << "usage: gemmtune bench-db <subcommand> [flags]\n"
         "subcommands:\n"
         "  ingest FILE... --db PATH [--commit C] [--time T]\n"
         "      append bench/serve/dist report files as experiment\n"
         "      records (key fields come from each report's meta block)\n"
         "  query --db PATH [--commit C] [--bench B] [--scenario S]\n"
         "        [--device D] [--prec P] [--backend B] [--threads N]\n"
         "        [--metric M] [--json]\n"
         "      list records, deterministically ordered\n"
         "  compare BASELINE CURRENT [--rtol X]\n"
         "      diff two report files' deterministic sections\n"
         "  compare --db PATH REF_A REF_B | --db PATH --last K\n"
         "      diff two commits, or the current commit vs the median of\n"
         "      the last K records per metric\n"
         "  trend --db PATH [--last K] [filters] [--html FILE]\n"
         "      per-metric trajectory sparklines (terminal + HTML)\n"
         "  gate --db PATH [--last K] [--rtol X] [--tol METRIC=X]...\n"
         "       [--commit C] [filters] [--group-threads]\n"
         "      fail when the current commit is worse than the last-K\n"
         "      median by more than the metric's tolerance\n";
  return 2;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out) {
  try {
    if (args.empty()) return usage(out);
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (args[0] == "ingest") return cmd_ingest(rest, out);
    if (args[0] == "query") return cmd_query(rest, out);
    if (args[0] == "compare") return cmd_compare(rest, out);
    if (args[0] == "trend") return cmd_trend(rest, out);
    if (args[0] == "gate") return cmd_gate(rest, out);
    fail_unknown_value("bench-db", args[0],
                       {"ingest", "query", "compare", "trend", "gate"});
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace gemmtune::benchdb
