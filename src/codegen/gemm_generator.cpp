#include "codegen/gemm_generator.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/intmath.hpp"
#include "common/strings.hpp"

namespace gemmtune::codegen {

using namespace gemmtune::ir;

LaunchGeometry launch_geometry(const KernelParams& p, std::int64_t Mp,
                               std::int64_t Np) {
  check(Mp > 0 && Np > 0, "launch_geometry: empty problem");
  check(Mp % p.Mwg == 0 && Np % p.Nwg == 0,
        "launch_geometry: problem not padded to work-group blocking");
  return LaunchGeometry{{Mp / p.Mwi(), Np / p.Nwi()},
                        {p.MdimC, p.NdimC}};
}

namespace {

/// Builds the kernel body for one parameter set. The construction mirrors
/// the paper's Figs. 4-6 line by line; helpers are named after the figure
/// vocabulary (fill = "load elements of A into Alm", stage/commit = the PL
/// prologue registers, compute = the pwi inner loop, merge = line "merge
/// Cpm with elements of C").
class Generator {
 public:
  explicit Generator(const KernelParams& p)
      : p_(p),
        sc_(p.prec == Precision::SP ? Scalar::F32 : Scalar::F64),
        b_(kernel_name(p), sc_) {}

  /// Direct-mode constructor: the kernel reads the column-major host
  /// operands in place (no packed buffers, no padding); `ta`/`tb` select
  /// the transpose handling in the index math.
  Generator(const KernelParams& p, Transpose ta, Transpose tb, bool guarded)
      : p_(p),
        sc_(p.prec == Precision::SP ? Scalar::F32 : Scalar::F64),
        b_(direct_kernel_name(p, ta, tb), sc_),
        direct_(true),
        guarded_(guarded),
        ta_(ta),
        tb_(tb) {}

  Kernel run() {
    declare_signature();
    declare_symbols();
    b_.set_reqd_local(p_.MdimC, p_.NdimC);
    preamble();
    zero_accumulators();
    switch (p_.algo) {
      case Algorithm::BA: emit_ba(); break;
      case Algorithm::PL: emit_pl(); break;
      case Algorithm::DB: emit_db(); break;
    }
    merge();
    return b_.build();
  }

 private:
  /// Source of one operand's elements inside the compute loop.
  struct Src {
    int local_slot = -1;  ///< local array, or -1 for direct global loads
    int row_off = 0;      ///< tile row held at local row 0 (DB second half)
    ExprPtr tile;         ///< tile base k for direct global loads
    bool local() const { return local_slot >= 0; }
  };

  static std::string kernel_name(const KernelParams& p) {
    std::string n = p.prec == Precision::SP ? "sgemm" : "dgemm";
    n += "_atb_";
    n += to_string(p.algo);
    return n;
  }

  static std::string direct_kernel_name(const KernelParams& p, Transpose ta,
                                        Transpose tb) {
    std::string n = p.prec == Precision::SP ? "sgemm" : "dgemm";
    n += "_direct_";
    n += ta == Transpose::Yes ? 't' : 'n';
    n += tb == Transpose::Yes ? 't' : 'n';
    n += "_";
    n += to_string(p.algo);
    return n;
  }

  void declare_signature() {
    const Scalar s = sc_;
    check(GemmKernelArgs::C ==
              b_.add_arg("C", ArgKind::GlobalPtr, s),
          "arg order");
    b_.add_arg("A", ArgKind::GlobalConstPtr, s);
    b_.add_arg("B", ArgKind::GlobalConstPtr, s);
    b_.add_arg("M", ArgKind::Int, Scalar::I32);
    b_.add_arg("N", ArgKind::Int, Scalar::I32);
    b_.add_arg("K", ArgKind::Int, Scalar::I32);
    if (direct_) {
      b_.add_arg("lda", ArgKind::Int, Scalar::I32);
      b_.add_arg("ldb", ArgKind::Int, Scalar::I32);
      b_.add_arg("ldc", ArgKind::Int, Scalar::I32);
    }
    b_.add_arg("alpha", ArgKind::Float, s);
    b_.add_arg("beta", ArgKind::Float, s);
  }

  int arg_alpha() const {
    return direct_ ? DirectGemmKernelArgs::alpha : GemmKernelArgs::alpha;
  }
  int arg_beta() const {
    return direct_ ? DirectGemmKernelArgs::beta : GemmKernelArgs::beta;
  }

  void declare_symbols() {
    v_lx_ = b_.decl_var("lx", i32());
    v_ly_ = b_.decl_var("ly", i32());
    v_gx_ = b_.decl_var("gx", i32());
    v_gy_ = b_.decl_var("gy", i32());
    v_pwg_ = b_.decl_var("pwg", i32());
    v_pwi_ = b_.decl_var("pwi", i32());
    v_avec_ = b_.decl_var("a_ik", fp(sc_, p_.vw));
    if (p_.share_a || p_.share_b) v_t_ = b_.decl_var("tid", i32());
    if (p_.share_a) {
      v_am_ = b_.decl_var("a_m", i32());
      v_ak_ = b_.decl_var("a_k", i32());
    }
    if (p_.share_b) {
      v_bn_ = b_.decl_var("b_n", i32());
      v_bk_ = b_.decl_var("b_k", i32());
    }
    arr_cpm_ = b_.decl_array("Cpm", sc_, p_.Mwi() * p_.Nwi(),
                             AddrSpace::Private);
    arr_apm_ = b_.decl_array("Apm", sc_, p_.Kwi * p_.Mwi(),
                             AddrSpace::Private);
    arr_bpm_ = b_.decl_array("Bpm", sc_, p_.Kwi * p_.Nwi(),
                             AddrSpace::Private);
    const int half = p_.Kwg / 2;
    if (p_.share_a) {
      if (p_.algo == Algorithm::DB) {
        arr_alm_ = b_.decl_array("Alm0", sc_, half * p_.Mwg,
                                 AddrSpace::Local);
        arr_alm1_ = b_.decl_array("Alm1", sc_, half * p_.Mwg,
                                  AddrSpace::Local);
      } else {
        arr_alm_ =
            b_.decl_array("Alm", sc_, p_.Kwg * p_.Mwg, AddrSpace::Local);
      }
      if (p_.algo == Algorithm::PL)
        arr_areg_ = b_.decl_array("Areg", sc_, p_.KwiA() * p_.MwiA(),
                                  AddrSpace::Private);
    }
    if (p_.share_b) {
      if (p_.algo == Algorithm::DB) {
        arr_blm_ = b_.decl_array("Blm0", sc_, half * p_.Nwg,
                                 AddrSpace::Local);
        arr_blm1_ = b_.decl_array("Blm1", sc_, half * p_.Nwg,
                                  AddrSpace::Local);
      } else {
        arr_blm_ =
            b_.decl_array("Blm", sc_, p_.Kwg * p_.Nwg, AddrSpace::Local);
      }
      if (p_.algo == Algorithm::PL)
        arr_breg_ = b_.decl_array("Breg", sc_, p_.KwiB() * p_.NwiB(),
                                  AddrSpace::Private);
    }
  }

  // ---- common expression pieces --------------------------------------------

  ExprPtr argi(int a) const { return arg_ref(a, i32()); }
  ExprPtr argf(int a) const { return arg_ref(a, fp(sc_, 1)); }
  ExprPtr lx() const { return b_.ref(v_lx_); }
  ExprPtr ly() const { return b_.ref(v_ly_); }
  ExprPtr gx() const { return b_.ref(v_gx_); }
  ExprPtr gy() const { return b_.ref(v_gy_); }
  ExprPtr pwg() const { return b_.ref(v_pwg_); }
  ExprPtr pwi() const { return b_.ref(v_pwi_); }

  /// Local-m offset (within [0, Mwg)) of the first row of the work-item's
  /// ci-th vw-wide row chunk: unit stride packs the item's rows together;
  /// non-unit stride interleaves items at vw granularity (Fig. 2(b)).
  ExprPtr lm_chunk(int ci) const {
    if (!p_.stride_m) return lx() * p_.Mwi() + ci * p_.vw;
    return lx() * p_.vw + iconst(static_cast<std::int64_t>(ci) * p_.MdimC *
                                 p_.vw);
  }
  /// Local-m offset of the work-item's i-th row (scalar).
  ExprPtr lm_row(int i) const {
    return lm_chunk(i / p_.vw) + (i % p_.vw);
  }
  /// Local-n offset of the cj-th vw-wide column chunk.
  ExprPtr ln_chunk(int cj) const {
    if (!p_.stride_n) return ly() * p_.Nwi() + cj * p_.vw;
    return ly() * p_.vw + iconst(static_cast<std::int64_t>(cj) * p_.NdimC *
                                 p_.vw);
  }

  /// A direct-mode global load of op(A)(gx*Mwg+lm, tile+kk), bounds-
  /// guarded when `guarded_` (out-of-bounds elements read as zero; the
  /// ternary in the emitted code — like the interpreter's select — never
  /// evaluates the out-of-bounds address).
  ExprPtr load_a_direct(ExprPtr tile, ExprPtr kk, ExprPtr lm) const {
    const Type t1 = fp(sc_, 1);
    ExprPtr loadv = load_global(GemmKernelArgs::A, a_gidx(tile, kk, lm), t1);
    if (!guarded_) return loadv;
    ExprPtr inb = bin(BinOp::And,
                      bin(BinOp::Lt, tile + kk, argi(GemmKernelArgs::K)),
                      bin(BinOp::Lt, gx() * p_.Mwg + lm,
                          argi(GemmKernelArgs::M)));
    return select(std::move(inb), std::move(loadv), fconst(0.0, t1));
  }

  ExprPtr load_b_direct(ExprPtr tile, ExprPtr kk, ExprPtr ln) const {
    const Type t1 = fp(sc_, 1);
    ExprPtr loadv = load_global(GemmKernelArgs::B, b_gidx(tile, kk, ln), t1);
    if (!guarded_) return loadv;
    ExprPtr inb = bin(BinOp::And,
                      bin(BinOp::Lt, tile + kk, argi(GemmKernelArgs::K)),
                      bin(BinOp::Lt, gy() * p_.Nwg + ln,
                          argi(GemmKernelArgs::N)));
    return select(std::move(inb), std::move(loadv), fconst(0.0, t1));
  }

  /// Global element index of A(tile + kk, gx*Mwg + lm) in layout_a.
  /// `kk` must stay inside [0, Kwg) and `tile` must be a multiple of Kwg
  /// (guaranteed by construction), which lets block layouts avoid any
  /// division in the generated code.
  ExprPtr a_gidx(ExprPtr tile, ExprPtr kk, ExprPtr lm) const {
    if (direct_) {
      // Column-major host matrix read in place: op(A)(m, k) with
      // m = gx*Mwg + lm and k = tile + kk.
      ExprPtr k = tile + kk;
      ExprPtr m = gx() * p_.Mwg + lm;
      ExprPtr lda = argi(DirectGemmKernelArgs::lda);
      return ta_ == Transpose::No ? k * lda + m : m * lda + k;
    }
    switch (p_.layout_a) {
      case BlockLayout::RowMajor:
        return (tile + kk) * argi(GemmKernelArgs::M) + gx() * p_.Mwg + lm;
      case BlockLayout::CBL:
        return gx() * (argi(GemmKernelArgs::K) * iconst(p_.Mwg)) +
               (tile + kk) * p_.Mwg + lm;
      case BlockLayout::RBL:
        return tile * argi(GemmKernelArgs::M) +
               gx() * (p_.Kwg * p_.Mwg) + kk * p_.Mwg + lm;
    }
    fail("a_gidx: bad layout");
  }

  /// Global element index of B(tile + kk, gy*Nwg + ln) in layout_b.
  ExprPtr b_gidx(ExprPtr tile, ExprPtr kk, ExprPtr ln) const {
    if (direct_) {
      ExprPtr k = tile + kk;
      ExprPtr n = gy() * p_.Nwg + ln;
      ExprPtr ldb = argi(DirectGemmKernelArgs::ldb);
      return tb_ == Transpose::No ? n * ldb + k : k * ldb + n;
    }
    switch (p_.layout_b) {
      case BlockLayout::RowMajor:
        return (tile + kk) * argi(GemmKernelArgs::N) + gy() * p_.Nwg + ln;
      case BlockLayout::CBL:
        return gy() * (argi(GemmKernelArgs::K) * iconst(p_.Nwg)) +
               (tile + kk) * p_.Nwg + ln;
      case BlockLayout::RBL:
        return tile * argi(GemmKernelArgs::N) +
               gy() * (p_.Kwg * p_.Nwg) + kk * p_.Nwg + ln;
    }
    fail("b_gidx: bad layout");
  }

  // ---- body sections ---------------------------------------------------------

  void preamble() {
    b_.append(comment(p_.summary()));
    b_.append(assign(v_lx_, builtin(BuiltinFn::LocalId, 0)));
    b_.append(assign(v_ly_, builtin(BuiltinFn::LocalId, 1)));
    b_.append(assign(v_gx_, builtin(BuiltinFn::GroupId, 0)));
    b_.append(assign(v_gy_, builtin(BuiltinFn::GroupId, 1)));
    if (p_.share_a || p_.share_b)
      b_.append(assign(v_t_, ly() * p_.MdimC + lx()));
    if (p_.share_a) {
      b_.append(assign(v_am_, bin(BinOp::Mod, b_.ref(v_t_),
                                  iconst(p_.MdimA))));
      b_.append(assign(v_ak_, bin(BinOp::Div, b_.ref(v_t_),
                                  iconst(p_.MdimA))));
    }
    if (p_.share_b) {
      b_.append(assign(v_bn_, bin(BinOp::Mod, b_.ref(v_t_),
                                  iconst(p_.NdimB))));
      b_.append(assign(v_bk_, bin(BinOp::Div, b_.ref(v_t_),
                                  iconst(p_.NdimB))));
    }
  }

  void zero_accumulators() {
    const Type vt = fp(sc_, p_.vw);
    for (int idx = 0; idx < p_.Mwi() * p_.Nwi(); idx += p_.vw)
      b_.append(store_private(arr_cpm_, iconst(idx), fconst(0.0, vt)));
  }

  /// "load MwiA * KwiA elements of A into Alm" (rows [kk0, kk0 + rows) of
  /// tile `tile`, into the local array `dst`). Emitted into `out`.
  void fill_a(std::vector<StmtPtr>& out, ExprPtr tile, int kk0, int rows,
              int dst) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < rows / p_.KdimA(); ++q) {
      for (int r = 0; r < p_.MwiA(); ++r) {
        ExprPtr row = b_.ref(v_ak_) + q * p_.KdimA();
        ExprPtr lm = b_.ref(v_am_) + r * p_.MdimA;
        ExprPtr src =
            direct_ ? load_a_direct(tile, row + kk0, lm)
                    : load_global(GemmKernelArgs::A,
                                  a_gidx(tile, row + kk0, lm), t1);
        out.push_back(store_local(dst, row * p_.Mwg + lm, src));
      }
    }
  }

  /// Same for B.
  void fill_b(std::vector<StmtPtr>& out, ExprPtr tile, int kk0, int rows,
              int dst) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < rows / p_.KdimB(); ++q) {
      for (int r = 0; r < p_.NwiB(); ++r) {
        ExprPtr row = b_.ref(v_bk_) + q * p_.KdimB();
        ExprPtr ln = b_.ref(v_bn_) + r * p_.NdimB;
        ExprPtr src =
            direct_ ? load_b_direct(tile, row + kk0, ln)
                    : load_global(GemmKernelArgs::B,
                                  b_gidx(tile, row + kk0, ln), t1);
        out.push_back(store_local(dst, row * p_.Nwg + ln, src));
      }
    }
  }

  /// PL: load tile `tile` of A into the private staging array Areg.
  void stage_a(std::vector<StmtPtr>& out, ExprPtr tile) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < p_.KwiA(); ++q)
      for (int r = 0; r < p_.MwiA(); ++r)
        out.push_back(store_private(
            arr_areg_, iconst(q * p_.MwiA() + r),
            load_global(GemmKernelArgs::A,
                        a_gidx(tile, b_.ref(v_ak_) + q * p_.KdimA(),
                               b_.ref(v_am_) + r * p_.MdimA),
                        t1)));
  }

  void stage_b(std::vector<StmtPtr>& out, ExprPtr tile) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < p_.KwiB(); ++q)
      for (int r = 0; r < p_.NwiB(); ++r)
        out.push_back(store_private(
            arr_breg_, iconst(q * p_.NwiB() + r),
            load_global(GemmKernelArgs::B,
                        b_gidx(tile, b_.ref(v_bk_) + q * p_.KdimB(),
                               b_.ref(v_bn_) + r * p_.NdimB),
                        t1)));
  }

  /// PL: copy the staged registers into local memory.
  void commit_a(std::vector<StmtPtr>& out) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < p_.KwiA(); ++q)
      for (int r = 0; r < p_.MwiA(); ++r) {
        ExprPtr row = b_.ref(v_ak_) + q * p_.KdimA();
        ExprPtr lm = b_.ref(v_am_) + r * p_.MdimA;
        out.push_back(store_local(
            arr_alm_, row * p_.Mwg + lm,
            load_private(arr_areg_, iconst(q * p_.MwiA() + r), t1)));
      }
  }

  void commit_b(std::vector<StmtPtr>& out) const {
    const Type t1 = fp(sc_, 1);
    for (int q = 0; q < p_.KwiB(); ++q)
      for (int r = 0; r < p_.NwiB(); ++r) {
        ExprPtr row = b_.ref(v_bk_) + q * p_.KdimB();
        ExprPtr ln = b_.ref(v_bn_) + r * p_.NdimB;
        out.push_back(store_local(
            arr_blm_, row * p_.Nwg + ln,
            load_private(arr_breg_, iconst(q * p_.NwiB() + r), t1)));
      }
  }

  /// The pwi inner loop over tile rows [pwi0, pwi1): load Kwi slices of A
  /// and B into private memory and accumulate Mwi x Nwi mads per slice
  /// (fully unrolled micro-kernel; the Kwi factor is the paper's loop
  /// unrolling parameter).
  StmtPtr compute(const Src& a, const Src& bsrc, int pwi0, int pwi1) const {
    const Type vt = fp(sc_, p_.vw);
    std::vector<StmtPtr> body;
    for (int kk = 0; kk < p_.Kwi; ++kk) {
      ExprPtr krow = pwi() + kk;
      // Stage the A slice.
      for (int ci = 0; ci < p_.Mwi() / p_.vw; ++ci) {
        ExprPtr src =
            a.local()
                ? load_local(a.local_slot,
                             (krow - iconst(a.row_off)) * p_.Mwg +
                                 lm_chunk(ci),
                             vt)
                : (direct_
                       ? load_a_direct(a.tile, krow, lm_chunk(ci))
                       : load_global(GemmKernelArgs::A,
                                     a_gidx(a.tile, krow, lm_chunk(ci)),
                                     vt));
        body.push_back(
            store_private(arr_apm_, iconst(kk * p_.Mwi() + ci * p_.vw), src));
      }
      // Stage the B slice.
      for (int cj = 0; cj < p_.Nwi() / p_.vw; ++cj) {
        ExprPtr src =
            bsrc.local()
                ? load_local(bsrc.local_slot,
                             (krow - iconst(bsrc.row_off)) * p_.Nwg +
                                 ln_chunk(cj),
                             vt)
                : (direct_
                       ? load_b_direct(bsrc.tile, krow, ln_chunk(cj))
                       : load_global(GemmKernelArgs::B,
                                     b_gidx(bsrc.tile, krow, ln_chunk(cj)),
                                     vt));
        body.push_back(
            store_private(arr_bpm_, iconst(kk * p_.Nwi() + cj * p_.vw), src));
      }
      // Rank-1 update of the accumulators.
      for (int i = 0; i < p_.Mwi(); ++i) {
        ExprPtr a_sc = lane(
            load_private(arr_apm_,
                         iconst(kk * p_.Mwi() + (i / p_.vw) * p_.vw), vt),
            i % p_.vw);
        body.push_back(assign(v_avec_, splat(a_sc, p_.vw)));
        for (int cj = 0; cj < p_.Nwi() / p_.vw; ++cj) {
          ExprPtr cidx = iconst(i * p_.Nwi() + cj * p_.vw);
          body.push_back(store_private(
              arr_cpm_, cidx,
              mad(b_.ref(v_avec_),
                  load_private(arr_bpm_, iconst(kk * p_.Nwi() + cj * p_.vw),
                               vt),
                  load_private(arr_cpm_, cidx, vt))));
        }
      }
    }
    return for_loop(v_pwi_, iconst(pwi0), iconst(pwi1), iconst(p_.Kwi),
                    std::move(body));
  }

  Src a_src_local(int slot, int row_off) const {
    Src s;
    s.local_slot = slot;
    s.row_off = row_off;
    return s;
  }
  Src src_direct(ExprPtr tile) const {
    Src s;
    s.tile = std::move(tile);
    return s;
  }

  Src a_of(ExprPtr tile, int local_slot, int row_off = 0) const {
    return p_.share_a ? a_src_local(local_slot, row_off)
                      : src_direct(std::move(tile));
  }
  Src b_of(ExprPtr tile, int local_slot, int row_off = 0) const {
    return p_.share_b ? a_src_local(local_slot, row_off)
                      : src_direct(std::move(tile));
  }

  // ---- Fig. 4: basic algorithm ----------------------------------------------

  void emit_ba() {
    std::vector<StmtPtr> body;
    if (p_.share_a) fill_a(body, pwg(), 0, p_.Kwg, arr_alm_);
    if (p_.share_b) fill_b(body, pwg(), 0, p_.Kwg, arr_blm_);
    const bool shared = p_.share_a || p_.share_b;
    if (shared) body.push_back(barrier());
    body.push_back(
        compute(a_of(pwg(), arr_alm_), b_of(pwg(), arr_blm_), 0, p_.Kwg));
    if (shared) body.push_back(barrier());
    // Guarded kernels loop over K rounded up to the tile (the guards zero
    // the phantom tail); exact kernels loop over K itself.
    ExprPtr limit =
        guarded_ ? bin(BinOp::Div,
                       argi(GemmKernelArgs::K) + iconst(p_.Kwg - 1),
                       iconst(p_.Kwg)) *
                       p_.Kwg
                 : argi(GemmKernelArgs::K);
    b_.append(for_loop(v_pwg_, iconst(0), std::move(limit), iconst(p_.Kwg),
                       std::move(body)));
  }

  // ---- Fig. 5: software pipelining --------------------------------------------

  void emit_pl() {
    // Prologue: first tile into local memory.
    std::vector<StmtPtr> pro;
    if (p_.share_a) fill_a(pro, iconst(0), 0, p_.Kwg, arr_alm_);
    if (p_.share_b) fill_b(pro, iconst(0), 0, p_.Kwg, arr_blm_);
    for (auto& s : pro) b_.append(std::move(s));
    b_.append(barrier());
    // Pipelined main loop over tiles 0 .. K/Kwg - 2.
    std::vector<StmtPtr> body;
    if (p_.share_a) stage_a(body, pwg() + p_.Kwg);
    if (p_.share_b) stage_b(body, pwg() + p_.Kwg);
    body.push_back(barrier());
    body.push_back(
        compute(a_of(pwg(), arr_alm_), b_of(pwg(), arr_blm_), 0, p_.Kwg));
    body.push_back(barrier());
    if (p_.share_a) commit_a(body);
    if (p_.share_b) commit_b(body);
    body.push_back(barrier());
    b_.append(for_loop(v_pwg_, iconst(0),
                       argi(GemmKernelArgs::K) - iconst(p_.Kwg),
                       iconst(p_.Kwg), std::move(body)));
    // Epilogue: the last tile is already in local memory.
    b_.append(assign(v_pwg_, argi(GemmKernelArgs::K) - iconst(p_.Kwg)));
    b_.append(
        compute(a_of(pwg(), arr_alm_), b_of(pwg(), arr_blm_), 0, p_.Kwg));
  }

  // ---- Fig. 6: double buffering -----------------------------------------------

  void emit_db() {
    const int half = p_.Kwg / 2;
    // Prologue: half 0 of tile 0 into buffer 0.
    std::vector<StmtPtr> pro;
    if (p_.share_a) fill_a(pro, iconst(0), 0, half, arr_alm_);
    if (p_.share_b) fill_b(pro, iconst(0), 0, half, arr_blm_);
    for (auto& s : pro) b_.append(std::move(s));
    // Main loop over tiles 0 .. K/Kwg - 2.
    std::vector<StmtPtr> body;
    body.push_back(barrier());
    if (p_.share_a) fill_a(body, pwg(), half, half, arr_alm1_);
    if (p_.share_b) fill_b(body, pwg(), half, half, arr_blm1_);
    body.push_back(
        compute(a_of(pwg(), arr_alm_), b_of(pwg(), arr_blm_), 0, half));
    body.push_back(barrier());
    if (p_.share_a) fill_a(body, pwg() + p_.Kwg, 0, half, arr_alm_);
    if (p_.share_b) fill_b(body, pwg() + p_.Kwg, 0, half, arr_blm_);
    body.push_back(compute(a_of(pwg(), arr_alm1_, half),
                           b_of(pwg(), arr_blm1_, half), half, p_.Kwg));
    b_.append(for_loop(v_pwg_, iconst(0),
                       argi(GemmKernelArgs::K) - iconst(p_.Kwg),
                       iconst(p_.Kwg), std::move(body)));
    // Epilogue: last tile; buffer 0 already holds its first half.
    b_.append(assign(v_pwg_, argi(GemmKernelArgs::K) - iconst(p_.Kwg)));
    b_.append(barrier());
    std::vector<StmtPtr> tail;
    if (p_.share_a) fill_a(tail, pwg(), half, half, arr_alm1_);
    if (p_.share_b) fill_b(tail, pwg(), half, half, arr_blm1_);
    for (auto& s : tail) b_.append(std::move(s));
    b_.append(
        compute(a_of(pwg(), arr_alm_), b_of(pwg(), arr_blm_), 0, half));
    b_.append(barrier());
    b_.append(compute(a_of(pwg(), arr_alm1_, half),
                      b_of(pwg(), arr_blm1_, half), half, p_.Kwg));
  }

  // ---- merge -------------------------------------------------------------------

  void merge() {
    const Type vt = fp(sc_, p_.vw);
    b_.append(comment("merge Cpm with C: C = alpha*Cpm + beta*C"));
    for (int i = 0; i < p_.Mwi(); ++i) {
      for (int cj = 0; cj < p_.Nwi() / p_.vw; ++cj) {
        // Packed mode writes the padded row-major C buffer; direct mode
        // writes the column-major host matrix in place.
        ExprPtr gidx =
            direct_
                ? (gy() * p_.Nwg + ln_chunk(cj)) *
                          argi(DirectGemmKernelArgs::ldc) +
                      gx() * p_.Mwg + lm_row(i)
                : (gx() * p_.Mwg + lm_row(i)) * argi(GemmKernelArgs::N) +
                      gy() * p_.Nwg + ln_chunk(cj);
        ExprPtr val =
            mad(splat(argf(arg_alpha()), p_.vw),
                load_private(arr_cpm_, iconst(i * p_.Nwi() + cj * p_.vw), vt),
                bin(BinOp::FMul, splat(argf(arg_beta()), p_.vw),
                    load_global(GemmKernelArgs::C, gidx, vt)));
        if (guarded_) {
          // Out-of-bounds rows/columns must neither read nor write C.
          ExprPtr inb = bin(
              BinOp::And,
              bin(BinOp::Lt, gx() * p_.Mwg + lm_row(i),
                  argi(GemmKernelArgs::M)),
              bin(BinOp::Lt, gy() * p_.Nwg + ln_chunk(cj),
                  argi(GemmKernelArgs::N)));
          b_.append(if_then(std::move(inb),
                            {store_global(GemmKernelArgs::C, gidx, val)}));
        } else {
          b_.append(store_global(GemmKernelArgs::C, gidx, val));
        }
      }
    }
  }

  const KernelParams& p_;
  Scalar sc_;
  KernelBuilder b_;
  int v_lx_ = -1, v_ly_ = -1, v_gx_ = -1, v_gy_ = -1, v_t_ = -1;
  int v_am_ = -1, v_ak_ = -1, v_bn_ = -1, v_bk_ = -1;
  int v_pwg_ = -1, v_pwi_ = -1, v_avec_ = -1;
  int arr_cpm_ = -1, arr_apm_ = -1, arr_bpm_ = -1;
  int arr_alm_ = -1, arr_alm1_ = -1, arr_blm_ = -1, arr_blm1_ = -1;
  int arr_areg_ = -1, arr_breg_ = -1;
  bool direct_ = false;
  bool guarded_ = false;
  Transpose ta_ = Transpose::No, tb_ = Transpose::No;
};

}  // namespace

ir::Kernel generate_gemm_kernel(const KernelParams& p) {
  check(p.Mwg % p.MdimC == 0 && p.Nwg % p.NdimC == 0,
        "generate_gemm_kernel: work-item blocking does not divide");
  check(p.Mwi() % p.vw == 0 && p.Nwi() % p.vw == 0,
        "generate_gemm_kernel: vector width does not divide blocking");
  check(p.Kwg % p.Kwi == 0, "generate_gemm_kernel: Kwi does not divide Kwg");
  if (p.share_a)
    check(p.wg_size() % p.MdimA == 0 && p.Mwg % p.MdimA == 0 &&
              p.Kwg % p.KdimA() == 0,
          "generate_gemm_kernel: A local-fill reshape does not tile");
  if (p.share_b)
    check(p.wg_size() % p.NdimB == 0 && p.Nwg % p.NdimB == 0 &&
              p.Kwg % p.KdimB() == 0,
          "generate_gemm_kernel: B local-fill reshape does not tile");
  if (p.algo != Algorithm::BA)
    check(p.share_a || p.share_b,
          "generate_gemm_kernel: PL/DB require local memory");
  if (p.algo == Algorithm::DB) {
    check(p.Kwg % 2 == 0 && (p.Kwg / 2) % p.Kwi == 0,
          "generate_gemm_kernel: DB tiling constraints");
    if (p.share_a)
      check((p.Kwg / 2) % p.KdimA() == 0,
            "generate_gemm_kernel: DB A-fill constraint");
    if (p.share_b)
      check((p.Kwg / 2) % p.KdimB() == 0,
            "generate_gemm_kernel: DB B-fill constraint");
  }
  return Generator(p).run();
}

ir::Kernel generate_direct_gemm_kernel(const KernelParams& p, Transpose ta,
                                       Transpose tb, bool guarded) {
  check(p.vw == 1,
        "generate_direct_gemm_kernel: in-place operands require scalar "
        "accesses (vw = 1)");
  check(!guarded || p.algo == Algorithm::BA,
        "generate_direct_gemm_kernel: guarded kernels use the BA algorithm "
        "(pipelined prologue/epilogue arithmetic assumes exact tiles)");
  // The structural constraints are the same as the packed kernel's; the
  // layouts are simply ignored.
  KernelParams q = p;
  q.layout_a = q.layout_b = BlockLayout::RowMajor;
  (void)generate_gemm_kernel(q);  // reuse the structural validation
  return Generator(p, ta, tb, guarded).run();
}

}  // namespace gemmtune::codegen
