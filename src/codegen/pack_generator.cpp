#include "codegen/pack_generator.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::codegen {

using namespace gemmtune::ir;

namespace {

Scalar scalar_of(Precision p) {
  return p == Precision::SP ? Scalar::F32 : Scalar::F64;
}

void declare_pack_signature(KernelBuilder& b, Scalar s) {
  b.add_arg("dst", ArgKind::GlobalPtr, s);
  b.add_arg("src", ArgKind::GlobalConstPtr, s);
  b.add_arg("R", ArgKind::Int, Scalar::I32);
  b.add_arg("C", ArgKind::Int, Scalar::I32);
  b.add_arg("Rp", ArgKind::Int, Scalar::I32);
  b.add_arg("Cp", ArgKind::Int, Scalar::I32);
  b.add_arg("ld", ArgKind::Int, Scalar::I32);
}

}  // namespace

ir::Kernel generate_pack_kernel(Precision prec, BlockLayout layout,
                                int rblock, int cblock,
                                bool src_row_major_rc) {
  check(rblock > 0 && cblock > 0, "generate_pack_kernel: bad blocking");
  const Scalar s = scalar_of(prec);
  KernelBuilder b(strf("pack_%s_%s_%dx%d_%s",
                       prec == Precision::SP ? "sp" : "dp",
                       gemmtune::to_string(layout), rblock, cblock,
                       src_row_major_rc ? "rm" : "cm"),
                  s);
  declare_pack_signature(b, s);
  const int v_r = b.decl_var("r", i32());
  const int v_c = b.decl_var("c", i32());
  b.append(assign(v_r, builtin(BuiltinFn::GlobalId, 0)));
  b.append(assign(v_c, builtin(BuiltinFn::GlobalId, 1)));
  ExprPtr r = b.ref(v_r);
  ExprPtr c = b.ref(v_c);
  ExprPtr ld = arg_ref(PackKernelArgs::ld, i32());
  ExprPtr cp = arg_ref(PackKernelArgs::Cp, i32());
  ExprPtr rp = arg_ref(PackKernelArgs::Rp, i32());
  ExprPtr src_idx = src_row_major_rc ? r * ld + c : c * ld + r;
  ExprPtr dst_idx;
  switch (layout) {
    case BlockLayout::RowMajor:
      dst_idx = r * cp + c;
      break;
    case BlockLayout::CBL:
      dst_idx = bin(BinOp::Div, c, iconst(cblock)) * (rp * iconst(cblock)) +
                r * cblock + bin(BinOp::Mod, c, iconst(cblock));
      break;
    case BlockLayout::RBL:
      dst_idx = bin(BinOp::Div, r, iconst(rblock)) * (iconst(rblock) * cp) +
                bin(BinOp::Div, c, iconst(cblock)) *
                    iconst(static_cast<std::int64_t>(rblock) * cblock) +
                bin(BinOp::Mod, r, iconst(rblock)) * cblock +
                bin(BinOp::Mod, c, iconst(cblock));
      break;
  }
  const Type t1 = fp(s, 1);
  b.append(store_global(PackKernelArgs::dst, dst_idx,
                        load_global(PackKernelArgs::src, src_idx, t1)));
  return b.build();
}

ir::Kernel generate_unpack_c_kernel(Precision prec) {
  const Scalar s = scalar_of(prec);
  KernelBuilder b(strf("unpack_c_%s", prec == Precision::SP ? "sp" : "dp"),
                  s);
  declare_pack_signature(b, s);
  const int v_r = b.decl_var("r", i32());
  const int v_c = b.decl_var("c", i32());
  b.append(assign(v_r, builtin(BuiltinFn::GlobalId, 0)));
  b.append(assign(v_c, builtin(BuiltinFn::GlobalId, 1)));
  ExprPtr r = b.ref(v_r);
  ExprPtr c = b.ref(v_c);
  ExprPtr ld = arg_ref(PackKernelArgs::ld, i32());
  ExprPtr cp = arg_ref(PackKernelArgs::Cp, i32());
  const Type t1 = fp(s, 1);
  // dst is column-major with leading dimension ld; src is the padded
  // row-major kernel output.
  b.append(store_global(PackKernelArgs::dst, c * ld + r,
                        load_global(PackKernelArgs::src, r * cp + c, t1)));
  return b.build();
}

}  // namespace gemmtune::codegen
