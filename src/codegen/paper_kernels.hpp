// The paper's Table II: the fastest C <- alpha*A^T*B + beta*C kernel
// parameters found by the authors' search on each processor, plus the
// reported maximum performance and efficiency.
//
// These serve three roles in the reproduction:
//  * calibration anchors for the performance model (the model's per-device
//    arithmetic-efficiency knob is solved so these kernels score the
//    paper's GFlop/s),
//  * seeds for the heuristic search engine, and
//  * regression fixtures (every set must pass validate() on its device).
//
// Where the scanned table is ambiguous (column alignment in the source
// text), the reconstruction keeps every constraint of Section III
// satisfiable; deviations are noted inline and in EXPERIMENTS.md.
#pragma once

#include "codegen/params.hpp"
#include "simcl/device_registry.hpp"

namespace gemmtune::codegen {

/// Reported maximum kernel performance for a device/precision (Table II).
struct PaperKernelResult {
  KernelParams params;
  double max_gflops = 0;   ///< paper's "Max perf." row
  double efficiency = 0;   ///< paper's efficiency row (fraction of peak)
};

/// Table II entry for one evaluation processor. Throws for Cypress (not in
/// Table II; Section IV-C reports only the DGEMM implementation number).
PaperKernelResult table2_entry(simcl::DeviceId id, Precision prec);

/// True when the paper tabulates a best kernel for this device.
bool has_table2_entry(simcl::DeviceId id);

}  // namespace gemmtune::codegen
