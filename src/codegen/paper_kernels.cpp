#include "codegen/paper_kernels.hpp"

#include "common/error.hpp"

namespace gemmtune::codegen {

namespace {

KernelParams base(Precision prec, int Mwg, int Nwg, int Kwg, int MdimC,
                  int NdimC, int MdimA, int NdimB, int Kwi, int vw,
                  BlockLayout la, BlockLayout lb, Algorithm algo) {
  KernelParams p;
  p.prec = prec;
  p.Mwg = Mwg;
  p.Nwg = Nwg;
  p.Kwg = Kwg;
  p.MdimC = MdimC;
  p.NdimC = NdimC;
  p.MdimA = MdimA;
  p.NdimB = NdimB;
  p.Kwi = Kwi;
  p.vw = vw;
  p.layout_a = la;
  p.layout_b = lb;
  p.algo = algo;
  return p;
}

PaperKernelResult make(KernelParams p, double gflops, double eff) {
  return PaperKernelResult{p, gflops, eff};
}

using simcl::DeviceId;
constexpr auto CBL = BlockLayout::CBL;
constexpr auto RBL = BlockLayout::RBL;

PaperKernelResult entry_dp(DeviceId id) {
  switch (id) {
    case DeviceId::Tahiti: {
      // 96,32,48 / 6,2,2 / 16,16 / vw 2 / shared B / CBL,CBL / BA / 863 (91%)
      KernelParams p = base(Precision::DP, 96, 32, 48, 16, 16, 16, 16, 2, 2,
                            CBL, CBL, Algorithm::BA);
      p.share_b = true;
      return make(p, 863, 0.91);
    }
    case DeviceId::Cayman: {
      // 64,32,48 / 4,4,24 / 16,8 / vw 2 / stride N / no local (the paper
      // reports Cayman runs slower with local memory) / CBL,CBL / BA / 580
      KernelParams p = base(Precision::DP, 64, 32, 48, 16, 8, 16, 8, 24, 2,
                            CBL, CBL, Algorithm::BA);
      p.stride_n = true;
      return make(p, 580, 0.86);
    }
    case DeviceId::Kepler: {
      // 32,64,8 / 2,4,4 / 16,16 / 32,8 / 8,32 / vw 1 / stride N /
      // shared A,B / CBL,CBL / BA / 128 (105%, boosted clock)
      KernelParams p = base(Precision::DP, 32, 64, 8, 16, 16, 32, 32, 4, 1,
                            CBL, CBL, Algorithm::BA);
      p.stride_n = true;
      p.share_a = p.share_b = true;
      return make(p, 128, 1.05);
    }
    case DeviceId::Fermi: {
      // 64,64,8 / 4,4,2 / 16,16 / 64,4 / 4,64 / vw 1 / stride N /
      // shared B / CBL,RBL / PL / 370 (56%)
      KernelParams p = base(Precision::DP, 64, 64, 8, 16, 16, 64, 64, 2, 1,
                            CBL, RBL, Algorithm::PL);
      p.stride_n = true;
      p.share_b = true;
      return make(p, 370, 0.56);
    }
    case DeviceId::SandyBridge: {
      // 64,32,64 / 4,8,4 / 16,4 / vw 4 / shared B / RBL,RBL / DB / 64 (40%)
      KernelParams p = base(Precision::DP, 64, 32, 64, 16, 4, 16, 4, 4, 4,
                            RBL, RBL, Algorithm::DB);
      p.share_b = true;
      return make(p, 64, 0.40);
    }
    case DeviceId::Bulldozer: {
      // 48,32,96 / 2,8,16 / 24,4 / 48,2 / vw 2 / stride M / shared B /
      // CBL,RBL / DB / 37 (32%)
      KernelParams p = base(Precision::DP, 48, 32, 96, 24, 4, 24, 2, 16, 2,
                            CBL, RBL, Algorithm::DB);
      p.stride_m = true;
      p.share_b = true;
      return make(p, 37, 0.32);
    }
    case DeviceId::Cypress: {
      // Not in Table II; Section IV-C reports 495 GFlop/s for the tuned
      // OpenCL DGEMM implementation (92% of 544 is Nakasato's IL kernel).
      // Seed with a Tahiti-style kernel scaled to Cypress's 32 KB LDS.
      KernelParams p = base(Precision::DP, 64, 32, 32, 16, 8, 16, 8, 4, 2,
                            CBL, CBL, Algorithm::BA);
      p.share_b = true;
      return make(p, 495, 0.91);
    }
  }
  fail("entry_dp: bad device");
}

PaperKernelResult entry_sp(DeviceId id) {
  switch (id) {
    case DeviceId::Tahiti: {
      // 96,96,16 / 6,6,2 / 16,16 / vw 1 / stride M / shared A,B /
      // CBL,CBL / BA / 3047 (80%)
      KernelParams p = base(Precision::SP, 96, 96, 16, 16, 16, 16, 16, 2, 1,
                            CBL, CBL, Algorithm::BA);
      p.stride_m = true;
      p.share_a = p.share_b = true;
      return make(p, 3047, 0.80);
    }
    case DeviceId::Cayman: {
      // 128,64,96 / 8,8,24 / 16,8 / vw 4 / stride N / PL / 2167 (80%).
      // Sharing both matrices at Kwg=96 would need 74 KB of local memory
      // (Cayman has 32 KB); B-only sharing fits and satisfies PL.
      KernelParams p = base(Precision::SP, 128, 64, 96, 16, 8, 16, 8, 24, 4,
                            CBL, CBL, Algorithm::PL);
      p.stride_n = true;
      p.share_b = true;
      return make(p, 2167, 0.80);
    }
    case DeviceId::Kepler: {
      // 64,64,8 / 8,4,8 / 8,16 / 32,4 / 4,32 / vw 2 / stride M /
      // shared A,B / CBL,CBL / PL / 1440 (49%)
      KernelParams p = base(Precision::SP, 64, 64, 8, 8, 16, 32, 32, 8, 2,
                            CBL, CBL, Algorithm::PL);
      p.stride_m = true;
      p.share_a = p.share_b = true;
      return make(p, 1440, 0.49);
    }
    case DeviceId::Fermi: {
      // 64,64,16 / 8,4,16 / 8,16 / 32,4 / 8,16 / vw 2 / stride M,N /
      // shared B / CBL,CBL / BA / 896 (67%)
      KernelParams p = base(Precision::SP, 64, 64, 16, 8, 16, 32, 16, 16, 2,
                            CBL, CBL, Algorithm::BA);
      p.stride_m = p.stride_n = true;
      p.share_b = true;
      return make(p, 896, 0.67);
    }
    case DeviceId::SandyBridge: {
      // 64,64,64 / 8,8,8 / 8,8 / vw 8 / stride M / RBL,RBL / BA / 140 (44%)
      KernelParams p = base(Precision::SP, 64, 64, 64, 8, 8, 8, 8, 8, 8,
                            RBL, RBL, Algorithm::BA);
      p.stride_m = true;
      return make(p, 140, 0.44);
    }
    case DeviceId::Bulldozer: {
      // 32,48,192 / 4,12,4 / 8,4 / vw 4 / stride M / no local /
      // CBL,CBL / BA / 87 (38%)
      KernelParams p = base(Precision::SP, 32, 48, 192, 8, 4, 8, 4, 4, 4,
                            CBL, CBL, Algorithm::BA);
      p.stride_m = true;
      return make(p, 87, 0.38);
    }
    case DeviceId::Cypress: {
      // Not reported; scaled from the Cayman-class VLIW5 architecture.
      KernelParams p = base(Precision::SP, 64, 64, 32, 16, 8, 16, 8, 8, 4,
                            CBL, CBL, Algorithm::BA);
      p.share_b = true;
      return make(p, 1720, 0.63);
    }
  }
  fail("entry_sp: bad device");
}

}  // namespace

PaperKernelResult table2_entry(simcl::DeviceId id, Precision prec) {
  return prec == Precision::DP ? entry_dp(id) : entry_sp(id);
}

bool has_table2_entry(simcl::DeviceId id) {
  return id != simcl::DeviceId::Cypress;
}

}  // namespace gemmtune::codegen
