// Generators for the copy/pack kernels of the GEMM implementation
// (paper Section IV-B: "Our GEMM implementations execute the A^T*B kernel
// after copying matrix data. Matrix data are transposed and changed into a
// block-major order during the copying.").
//
// A single generic pack kernel covers all operand cases. The destination is
// a padded Rp x Cp matrix in a block layout with (rblock, cblock) blocking;
// the source is a column-major host-layout matrix with leading dimension
// ld. With `src_row_major_rc` = false the source element for destination
// coordinate (r, c) is src[c*ld + r]; with true it is src[r*ld + c]:
//   A operand (dst = op(A)^T, K x M):  non-transposed A -> true,
//                                       transposed A    -> false
//   B operand (dst = op(B), K x N):    non-transposed B -> false,
//                                       transposed B    -> true
//   C operand (dst = row-major M x N): -> false
// The destination buffer must be zero-filled beforehand (zero padding);
// the kernel only writes the live R x C region, launched as an (R, C)
// NDRange.
#pragma once

#include "codegen/params.hpp"
#include "kernelir/kernel.hpp"

namespace gemmtune::codegen {

/// Pack-kernel argument order.
struct PackKernelArgs {
  static constexpr int dst = 0;
  static constexpr int src = 1;
  static constexpr int R = 2;    ///< live rows (unused in indexing; doc)
  static constexpr int C = 3;    ///< live cols (unused in indexing; doc)
  static constexpr int Rp = 4;   ///< padded rows
  static constexpr int Cp = 5;   ///< padded cols
  static constexpr int ld = 6;   ///< source leading dimension
};

/// Generates a pack kernel for one operand configuration.
ir::Kernel generate_pack_kernel(Precision prec, BlockLayout layout,
                                int rblock, int cblock,
                                bool src_row_major_rc);

/// Generates the inverse kernel for the C result: reads the padded
/// row-major Rp x Cp buffer and writes the live R x C region into a
/// column-major destination with leading dimension ld. Argument order
/// matches PackKernelArgs (dst = column-major host-layout buffer).
ir::Kernel generate_unpack_c_kernel(Precision prec);

}  // namespace gemmtune::codegen
