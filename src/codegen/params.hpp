// The code generator's parameter space (paper Section III).
//
// A KernelParams value fully determines one generated C <- alpha*A^T*B +
// beta*C kernel. The tuner enumerates these; validate() implements the
// structural constraints ("kernels which are failed in code generation...
// are not counted", Section III-F).
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "layout/block_layout.hpp"
#include "simcl/device_spec.hpp"

namespace gemmtune::codegen {

/// The three GEMM algorithms of Section III-E.
enum class Algorithm {
  BA,  ///< basic (Fig. 4), Volkov-Demmel style
  PL,  ///< software pipelining (Fig. 5), MAGMA/Kurzak style
  DB   ///< double buffering in local memory (Fig. 6), Tan et al. style
};

const char* to_string(Algorithm a);
Algorithm algorithm_from_string(const std::string& s);

/// GEMM precision.
enum class Precision { SP, DP };

inline const char* to_string(Precision p) {
  return p == Precision::SP ? "SGEMM" : "DGEMM";
}
inline int element_bytes(Precision p) { return p == Precision::SP ? 4 : 8; }

/// Complete parameter set for one generated kernel.
///
/// Derived values follow the paper's definitions:
///   Mwi = Mwg / MdimC, Nwi = Nwg / NdimC (work-item blocking)
///   KdimA = MdimC*NdimC / MdimA, KdimB = MdimC*NdimC / NdimB
///   MwiA = Mwg / MdimA, KwiA = Kwg / KdimA (per-item local-fill counts)
///   KwiB = Kwg / KdimB, NwiB = Nwg / NdimB
struct KernelParams {
  Precision prec = Precision::DP;
  // Work-group blocking factors (Section III-A).
  int Mwg = 64, Nwg = 64, Kwg = 16;
  // Work-group shape; work-item blocking is derived.
  int MdimC = 16, NdimC = 16;
  // Local-memory load reshape (Section III-C).
  int MdimA = 16, NdimB = 16;
  // Innermost unroll factor (categorized as a blocking factor).
  int Kwi = 1;
  // Vector width of loads/stores and mads (Section III-B).
  int vw = 1;
  // Non-unit-stride private-C access per direction (Section III-B).
  bool stride_m = false, stride_n = false;
  // Local-memory usage per matrix (Section III-C).
  bool share_a = false, share_b = false;
  // Operand data layouts (Section III-D).
  BlockLayout layout_a = BlockLayout::CBL;
  BlockLayout layout_b = BlockLayout::CBL;
  // Algorithm selection (Section III-E).
  Algorithm algo = Algorithm::BA;

  // Derived blocking values.
  int Mwi() const { return Mwg / MdimC; }
  int Nwi() const { return Nwg / NdimC; }
  int KdimA() const { return MdimC * NdimC / MdimA; }
  int KdimB() const { return MdimC * NdimC / NdimB; }
  int MwiA() const { return Mwg / MdimA; }
  int KwiA() const { return Kwg / KdimA(); }
  int KwiB() const { return Kwg / KdimB(); }
  int NwiB() const { return Nwg / NdimB; }
  int wg_size() const { return MdimC * NdimC; }

  /// Local memory the kernel will declare, in bytes.
  std::int64_t local_mem_bytes() const {
    std::int64_t elems = 0;
    if (share_a) elems += static_cast<std::int64_t>(Kwg) * Mwg;
    if (share_b) elems += static_cast<std::int64_t>(Kwg) * Nwg;
    return elems * element_bytes(prec);
  }

  /// Live private elements per work-item: accumulators, the operand slices
  /// a compiler keeps live at once (at most two of the Kwi unrolled slices —
  /// register allocators reuse the rest), and PL's pipeline registers.
  /// Proxy for register pressure in validation and the occupancy model.
  std::int64_t private_elements() const {
    std::int64_t n = static_cast<std::int64_t>(Mwi()) * Nwi();  // Cpm
    n += static_cast<std::int64_t>(Kwi > 2 ? 2 : Kwi) *
         (Mwi() + Nwi());  // live Apm/Bpm slices
    if (algo == Algorithm::PL) {
      if (share_a) n += static_cast<std::int64_t>(MwiA()) * KwiA();
      if (share_b) n += static_cast<std::int64_t>(KwiB()) * NwiB();
    }
    return n;
  }

  /// One-line summary in the style of a Table II column.
  std::string summary() const;

  /// Stable short identifier for result caching (round-trips all fields).
  std::string key() const;

  Json to_json() const;
  static KernelParams from_json(const Json& j);

  bool operator==(const KernelParams&) const = default;
};

/// Structural validation of a parameter set against a device.
/// Returns std::nullopt when the kernel can be generated and launched on
/// the device, otherwise the reason it is rejected.
std::optional<std::string> validate(const KernelParams& p,
                                    const simcl::DeviceSpec& dev);

}  // namespace gemmtune::codegen
