// The GEMM code generator (paper Section III).
//
// Produces C <- alpha * A^T * B + beta * C kernels in the kernel IR for any
// valid KernelParams. Operand buffers:
//   A: padded Kp x Mp matrix (op(A)^T) in layout_a with (Kwg, Mwg) blocking
//   B: padded Kp x Np matrix (op(B))  in layout_b with (Kwg, Nwg) blocking
//   C: padded Mp x Np row-major matrix
// Kernel arguments, in order: C, A, B, M(=Mp), N(=Np), K(=Kp), alpha, beta.
//
// The generated NDRange is two-dimensional: a work-group of MdimC x NdimC
// work-items computes one Mwg x Nwg block of C; each work-item accumulates
// an Mwi x Nwi private sub-block (Fig. 1 and Fig. 2).
#pragma once

#include <array>
#include <cstdint>

#include "codegen/params.hpp"
#include "kernelir/kernel.hpp"
#include "layout/matrix.hpp"

namespace gemmtune::codegen {

/// NDRange for launching a generated kernel on a padded (Mp, Np) problem.
struct LaunchGeometry {
  std::array<std::int64_t, 2> global;
  std::array<std::int64_t, 2> local;
};

/// Computes the launch geometry; Mp / Np must be multiples of Mwg / Nwg.
LaunchGeometry launch_geometry(const KernelParams& p, std::int64_t Mp,
                               std::int64_t Np);

/// Generates the A^T*B kernel for `p`. The caller is expected to have
/// passed `p` through validate() for the target device; structural
/// impossibilities still throw gemmtune::Error.
ir::Kernel generate_gemm_kernel(const KernelParams& p);

/// Indices of the generated kernel's arguments (fixed order).
struct GemmKernelArgs {
  static constexpr int C = 0;
  static constexpr int A = 1;
  static constexpr int B = 2;
  static constexpr int M = 3;
  static constexpr int N = 4;
  static constexpr int K = 5;
  static constexpr int alpha = 6;
  static constexpr int beta = 7;
};

/// The paper's future-work extension (Section V): a GEMM kernel that reads
/// the column-major host operands *directly* — no copy into block-major
/// buffers — so that small problems do not pay the O(N^2) pack overhead.
/// Restrictions: scalar accesses (vw is forced to 1) and operand layouts
/// are ignored. Without `guarded`, M / N / K must be exact multiples of
/// Mwg / Nwg / Kwg (there is no zero padding without a copy); with
/// `guarded` the kernel bounds-checks every access (BA algorithm only) and
/// handles arbitrary sizes — launch it on the padded NDRange. Argument
/// order below.
ir::Kernel generate_direct_gemm_kernel(const KernelParams& p,
                                       gemmtune::Transpose ta,
                                       gemmtune::Transpose tb,
                                       bool guarded = false);

/// Argument indices of the direct (copy-free) kernel.
struct DirectGemmKernelArgs {
  static constexpr int C = 0;
  static constexpr int A = 1;
  static constexpr int B = 2;
  static constexpr int M = 3;
  static constexpr int N = 4;
  static constexpr int K = 5;
  static constexpr int lda = 6;
  static constexpr int ldb = 7;
  static constexpr int ldc = 8;
  static constexpr int alpha = 9;
  static constexpr int beta = 10;
};

}  // namespace gemmtune::codegen
