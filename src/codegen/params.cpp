#include "codegen/params.hpp"

#include "common/error.hpp"
#include "common/intmath.hpp"
#include "common/strings.hpp"

namespace gemmtune::codegen {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::BA: return "BA";
    case Algorithm::PL: return "PL";
    case Algorithm::DB: return "DB";
  }
  return "?";
}

Algorithm algorithm_from_string(const std::string& s) {
  if (s == "BA") return Algorithm::BA;
  if (s == "PL") return Algorithm::PL;
  if (s == "DB") return Algorithm::DB;
  fail("unknown algorithm '" + s + "'");
}

std::string KernelParams::summary() const {
  std::string stride;
  if (stride_m) stride += "M";
  if (stride_n) stride += stride.empty() ? "N" : ",N";
  if (stride.empty()) stride = "-";
  std::string shared;
  if (share_a) shared += "A";
  if (share_b) shared += shared.empty() ? "B" : ",B";
  if (shared.empty()) shared = "-";
  return strf(
      "%s wg=%d,%d,%d wi=%d,%d,%d dimC=%d,%d dimA=%d,%d dimB=%d,%d vw=%d "
      "stride=%s shared=%s layout=%s,%s %s",
      to_string(prec), Mwg, Nwg, Kwg, Mwi(), Nwi(), Kwi, MdimC, NdimC, MdimA,
      KdimA(), KdimB(), NdimB, vw, stride.c_str(), shared.c_str(),
      gemmtune::to_string(layout_a), gemmtune::to_string(layout_b),
      to_string(algo));
}

std::string KernelParams::key() const {
  return strf("%c.%d.%d.%d.%d.%d.%d.%d.%d.%d.%d%d.%d%d.%s.%s.%s",
              prec == Precision::SP ? 's' : 'd', Mwg, Nwg, Kwg, MdimC, NdimC,
              MdimA, NdimB, Kwi, vw, stride_m ? 1 : 0, stride_n ? 1 : 0,
              share_a ? 1 : 0, share_b ? 1 : 0,
              gemmtune::to_string(layout_a), gemmtune::to_string(layout_b),
              to_string(algo));
}

Json KernelParams::to_json() const {
  Json j = Json::object();
  j["prec"] = std::string(to_string(prec));
  j["Mwg"] = Mwg;
  j["Nwg"] = Nwg;
  j["Kwg"] = Kwg;
  j["MdimC"] = MdimC;
  j["NdimC"] = NdimC;
  j["MdimA"] = MdimA;
  j["NdimB"] = NdimB;
  j["Kwi"] = Kwi;
  j["vw"] = vw;
  j["stride_m"] = stride_m;
  j["stride_n"] = stride_n;
  j["share_a"] = share_a;
  j["share_b"] = share_b;
  j["layout_a"] = std::string(gemmtune::to_string(layout_a));
  j["layout_b"] = std::string(gemmtune::to_string(layout_b));
  j["algo"] = std::string(to_string(algo));
  return j;
}

KernelParams KernelParams::from_json(const Json& j) {
  KernelParams p;
  p.prec = j.at("prec").as_string() == "SGEMM" ? Precision::SP : Precision::DP;
  p.Mwg = static_cast<int>(j.at("Mwg").as_int());
  p.Nwg = static_cast<int>(j.at("Nwg").as_int());
  p.Kwg = static_cast<int>(j.at("Kwg").as_int());
  p.MdimC = static_cast<int>(j.at("MdimC").as_int());
  p.NdimC = static_cast<int>(j.at("NdimC").as_int());
  p.MdimA = static_cast<int>(j.at("MdimA").as_int());
  p.NdimB = static_cast<int>(j.at("NdimB").as_int());
  p.Kwi = static_cast<int>(j.at("Kwi").as_int());
  p.vw = static_cast<int>(j.at("vw").as_int());
  p.stride_m = j.at("stride_m").as_bool();
  p.stride_n = j.at("stride_n").as_bool();
  p.share_a = j.at("share_a").as_bool();
  p.share_b = j.at("share_b").as_bool();
  p.layout_a = block_layout_from_string(j.at("layout_a").as_string());
  p.layout_b = block_layout_from_string(j.at("layout_b").as_string());
  p.algo = algorithm_from_string(j.at("algo").as_string());
  return p;
}

std::optional<std::string> validate(const KernelParams& p,
                                    const simcl::DeviceSpec& dev) {
  auto reject = [](const std::string& why) {
    return std::optional<std::string>(why);
  };
  if (p.Mwg <= 0 || p.Nwg <= 0 || p.Kwg <= 0 || p.MdimC <= 0 ||
      p.NdimC <= 0 || p.MdimA <= 0 || p.NdimB <= 0 || p.Kwi <= 0)
    return reject("non-positive parameter");
  if (p.vw != 1 && p.vw != 2 && p.vw != 4 && p.vw != 8 && p.vw != 16)
    return reject("vector width not in {1,2,4,8,16}");
  if (p.wg_size() > dev.max_workgroup_size)
    return reject("work-group exceeds device limit");
  if (p.Mwg % p.MdimC != 0) return reject("MdimC does not divide Mwg");
  if (p.Nwg % p.NdimC != 0) return reject("NdimC does not divide Nwg");
  if (p.Kwg % p.Kwi != 0) return reject("Kwi does not divide Kwg");
  if (p.Mwi() % p.vw != 0) return reject("vw does not divide Mwi");
  if (p.Nwi() % p.vw != 0) return reject("vw does not divide Nwi");
  // The local-fill reshape must tile the A/B blocks exactly (Section III-C:
  // "reshaping the block is possible as long as the shapes completely
  // overlay the corresponding matrix").
  if (p.share_a) {
    if (p.wg_size() % p.MdimA != 0)
      return reject("MdimA does not divide work-group size");
    if (p.Mwg % p.MdimA != 0) return reject("MdimA does not divide Mwg");
    if (p.Kwg % p.KdimA() != 0) return reject("KdimA does not divide Kwg");
  }
  if (p.share_b) {
    if (p.wg_size() % p.NdimB != 0)
      return reject("NdimB does not divide work-group size");
    if (p.Nwg % p.NdimB != 0) return reject("NdimB does not divide Nwg");
    if (p.Kwg % p.KdimB() != 0) return reject("KdimB does not divide Kwg");
  }
  if (p.local_mem_bytes() > static_cast<std::int64_t>(dev.local_mem_bytes()))
    return reject("local memory exceeds device capacity");
  if ((p.algo == Algorithm::PL || p.algo == Algorithm::DB) && !p.share_a &&
      !p.share_b)
    return reject("PL/DB require local memory for at least one matrix");
  if (p.algo == Algorithm::DB) {
    // Fig. 6 double-buffers half-tiles of Kwg/2 rows.
    if (p.Kwg % 2 != 0) return reject("DB requires even Kwg");
    if ((p.Kwg / 2) % p.Kwi != 0)
      return reject("DB requires Kwi to divide Kwg/2");
    if (p.share_a && (p.Kwg / 2) % p.KdimA() != 0)
      return reject("DB requires KdimA to divide Kwg/2");
    if (p.share_b && (p.Kwg / 2) % p.KdimB() != 0)
      return reject("DB requires KdimB to divide Kwg/2");
  }
  // Hard register-file limit: a work-group whose private data cannot fit in
  // the compute unit's register file will not launch ("failed in
  // compilation or testing").
  const double priv_bytes =
      static_cast<double>(p.private_elements()) * element_bytes(p.prec) *
      p.wg_size();
  if (dev.is_gpu() && priv_bytes > dev.register_bytes_per_cu())
    return reject("register file exceeded");
  return std::nullopt;
}

}  // namespace gemmtune::codegen
