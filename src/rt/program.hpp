// OpenCL-style host runtime on top of SimCL.
//
// Mirrors the host workflow the paper's system uses on a real OpenCL
// implementation:
//   clBuildProgram            -> rt::Program (front-end parse of the
//                                generated OpenCL C)
//   clCreateKernel/SetKernelArg -> rt::KernelCall argument binding
//   clEnqueueNDRangeKernel    -> KernelCall::enqueue — functional execution
//                                through the lockstep interpreter plus a
//                                simulated duration on the command queue
// The default duration model derives from the launch's own dynamic
// counters (arithmetic at a fraction of peak, global traffic at a fraction
// of bandwidth); callers with a better model (the GEMM performance model)
// can pass an explicit duration.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "kernelir/interp.hpp"
#include "simcl/runtime.hpp"

namespace gemmtune::rt {

/// Duration of a launch from its dynamic counters on a device: issue-bound
/// arithmetic, bandwidth-bound global traffic and local traffic, plus the
/// fixed launch overhead. A deliberately simple model for auxiliary
/// kernels (packing, unpacking); the tuned GEMM kernels use the full
/// performance model instead.
double counters_time(const simcl::DeviceSpec& dev, const ir::Counters& c);

/// A built program: one or more kernels compiled from OpenCL C text.
class Program {
 public:
  /// Builds (parses and checks) `source` for the context's device.
  /// Throws gemmtune::Error on any front-end diagnostic.
  Program(simcl::Context& ctx, const std::string& source);

  std::vector<std::string> kernel_names() const;
  const ir::Kernel& kernel(const std::string& name) const;
  simcl::Context& context() const { return *ctx_; }

 private:
  simcl::Context* ctx_;
  std::vector<ir::Kernel> kernels_;
};

/// A kernel invocation in preparation: bind arguments, then enqueue.
class KernelCall {
 public:
  KernelCall(const Program& program, const std::string& kernel_name);

  /// Binds argument `i` (buffer, integer or floating scalar). Checks the
  /// kind against the kernel signature.
  KernelCall& arg(int i, simcl::BufferPtr buffer);
  KernelCall& arg(int i, std::int64_t value);
  KernelCall& arg(int i, double value);

  /// Executes the kernel functionally over the NDRange and records a
  /// simulated-duration event on the queue. When `seconds` is absent the
  /// counter-based model supplies the duration. Returns the counters.
  ir::Counters enqueue(simcl::CommandQueue& queue,
                       std::array<std::int64_t, 2> global,
                       std::array<std::int64_t, 2> local,
                       std::optional<double> seconds = std::nullopt);

 private:
  const Program* program_;
  const ir::Kernel* kernel_;
  std::vector<ir::ArgValue> args_;
  std::vector<bool> bound_;
};

}  // namespace gemmtune::rt
