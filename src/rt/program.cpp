#include "rt/program.hpp"

#include <algorithm>

#include "clfront/parser.hpp"
#include "common/error.hpp"

namespace gemmtune::rt {

double counters_time(const simcl::DeviceSpec& dev, const ir::Counters& c) {
  // Auxiliary kernels rarely reach peak rates; 60% of arithmetic peak and
  // 80% of bandwidth are conventional engineering margins.
  const double flop_rate = 0.6 * dev.peak_gflops(true) * 1e9 * 2;  // ~SP mix
  const double bw = 0.8 * dev.global_bw_gbs * 1e9;
  const double t_arith = static_cast<double>(c.flops) / flop_rate;
  const double t_mem =
      static_cast<double>(c.global_load_bytes + c.global_store_bytes) / bw;
  return dev.kernel_launch_us * 1e-6 + std::max(t_arith, t_mem);
}

Program::Program(simcl::Context& ctx, const std::string& source)
    : ctx_(&ctx), kernels_(clfront::parse_program(source)) {
  // Build-time checks a real driver performs: local memory must fit the
  // device, and the required work-group size must be launchable.
  for (const auto& k : kernels_) {
    check(k.local_mem_bytes() <=
              static_cast<std::int64_t>(ctx.device().local_mem_bytes()),
          "Program: kernel '" + k.name + "' exceeds device local memory");
    if (k.reqd_local[0] > 0) {
      check(k.reqd_local[0] * k.reqd_local[1] <=
                ctx.device().max_workgroup_size,
            "Program: kernel '" + k.name +
                "' required work-group exceeds device limit");
    }
  }
}

std::vector<std::string> Program::kernel_names() const {
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& k : kernels_) names.push_back(k.name);
  return names;
}

const ir::Kernel& Program::kernel(const std::string& name) const {
  for (const auto& k : kernels_) {
    if (k.name == name) return k;
  }
  fail("Program: no kernel named '" + name + "'");
}

KernelCall::KernelCall(const Program& program,
                       const std::string& kernel_name)
    : program_(&program), kernel_(&program.kernel(kernel_name)) {
  args_.resize(kernel_->args.size());
  bound_.assign(kernel_->args.size(), false);
}

namespace {
const ir::ArgInfo& arg_info(const ir::Kernel& k, int i) {
  check(i >= 0 && i < static_cast<int>(k.args.size()),
        "KernelCall: argument index out of range");
  return k.args[static_cast<std::size_t>(i)];
}
}  // namespace

KernelCall& KernelCall::arg(int i, simcl::BufferPtr buffer) {
  const auto& info = arg_info(*kernel_, i);
  check(info.kind == ir::ArgKind::GlobalPtr ||
            info.kind == ir::ArgKind::GlobalConstPtr,
        "KernelCall: argument '" + info.name + "' is not a buffer");
  check(buffer != nullptr, "KernelCall: null buffer");
  args_[static_cast<std::size_t>(i)] = ir::ArgValue::of(std::move(buffer));
  bound_[static_cast<std::size_t>(i)] = true;
  return *this;
}

KernelCall& KernelCall::arg(int i, std::int64_t value) {
  const auto& info = arg_info(*kernel_, i);
  check(info.kind == ir::ArgKind::Int,
        "KernelCall: argument '" + info.name + "' is not an int");
  args_[static_cast<std::size_t>(i)] = ir::ArgValue::of_int(value);
  bound_[static_cast<std::size_t>(i)] = true;
  return *this;
}

KernelCall& KernelCall::arg(int i, double value) {
  const auto& info = arg_info(*kernel_, i);
  check(info.kind == ir::ArgKind::Float,
        "KernelCall: argument '" + info.name + "' is not a float");
  args_[static_cast<std::size_t>(i)] = ir::ArgValue::of_float(value);
  bound_[static_cast<std::size_t>(i)] = true;
  return *this;
}

ir::Counters KernelCall::enqueue(simcl::CommandQueue& queue,
                                 std::array<std::int64_t, 2> global,
                                 std::array<std::int64_t, 2> local,
                                 std::optional<double> seconds) {
  for (std::size_t i = 0; i < bound_.size(); ++i) {
    check(bound_[i], "KernelCall: argument '" + kernel_->args[i].name +
                         "' not bound");
  }
  const ir::Counters c = ir::launch(*kernel_, global, local, args_);
  const double t =
      seconds ? *seconds : counters_time(queue.context().device(), c);
  queue.enqueue_kernel(kernel_->name, t,
                       static_cast<double>(c.flops) / 1e9);
  return c;
}

}  // namespace gemmtune::rt
