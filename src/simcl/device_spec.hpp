// Device descriptions for the simulated OpenCL runtime.
//
// Each DeviceSpec carries the paper's Table I columns plus the
// architectural quantities the performance model needs (SIMD width,
// register file, preferred vector widths, barrier cost class). The six
// evaluation processors — and the Cypress GPU used in the Section IV-C
// comparison — are available from the registry in device_registry.hpp.
#pragma once

#include <cstdint>
#include <string>

namespace gemmtune::simcl {

/// Coarse device class; drives defaults in the performance model.
enum class DeviceType { GPU, CPU };

/// Where OpenCL local memory lives (Table I "Local memory type").
enum class LocalMemKind {
  Scratchpad,  ///< dedicated on-chip memory (all four GPUs)
  Global       ///< emulated in cache/DRAM (both CPUs)
};

/// Full description of a simulated OpenCL device.
///
/// Fields in the first block are verbatim Table I entries; the second block
/// holds architectural values the paper does not tabulate but that its
/// analysis references (SIMD width, registers, boost), with sources noted
/// in device_registry.cpp.
struct DeviceSpec {
  // --- Table I ---
  std::string code_name;           ///< e.g. "Tahiti"
  std::string product_name;        ///< e.g. "Radeon HD 7970"
  DeviceType type = DeviceType::GPU;
  double clock_ghz = 0;            ///< core clock
  int compute_units = 0;           ///< CUs (GPU) or cores (CPU)
  int dp_ops_per_clock = 0;        ///< device-wide DP flops per clock
  int sp_ops_per_clock = 0;        ///< device-wide SP flops per clock
  double peak_dp_gflops = 0;       ///< listed peak, double precision
  double peak_sp_gflops = 0;       ///< listed peak, single precision
  double global_mem_gb = 0;        ///< device memory capacity
  double global_bw_gbs = 0;        ///< peak global-memory bandwidth
  double l3_cache_mb = 0;          ///< 0 when absent
  double l2_cache_kb = 0;          ///< per processor (GPU) / per core or module (CPU)
  double l1_cache_kb = 0;          ///< per compute unit / core
  double local_mem_kb = 0;         ///< OpenCL local memory per compute unit
  LocalMemKind local_mem_kind = LocalMemKind::Scratchpad;
  std::string opencl_sdk;          ///< Table I "OpenCL SDK"
  std::string driver;              ///< Table I driver version

  // --- architectural values used by the performance model ---
  int simd_width = 0;              ///< wavefront/warp/vector-lane width
  int max_workgroup_size = 256;    ///< CL_DEVICE_MAX_WORK_GROUP_SIZE
  double registers_per_cu_kb = 0;  ///< register file per compute unit
  double boost_factor = 1.0;       ///< dynamic clock boost (Kepler GTX 670 OC)
  double host_bw_gbs = 6.0;        ///< host<->device transfer bandwidth
  double kernel_launch_us = 8.0;   ///< fixed launch overhead
  /// Fixed per-transfer latency (DMA setup, doorbell, driver round trip)
  /// paid by every host<->device copy before the first byte moves. PCIe
  /// GPUs sit in the 10-20 us range of the era; the CPUs "transfer"
  /// within system memory and pay only a map/unmap cost.
  double transfer_latency_us = 15.0;

  /// Peak arithmetic rate for the given element width (8 => DP, 4 => SP),
  /// including boost.
  double peak_gflops(bool double_precision) const {
    return (double_precision ? peak_dp_gflops : peak_sp_gflops) *
           boost_factor;
  }

  /// Duration of one host<->device transfer of `bytes`: the fixed
  /// per-transfer latency plus the bandwidth term. This is the per-device
  /// transfer-cost model the distributed executor charges for every tile
  /// panel it ships to (or result it fetches from) a device.
  double transfer_seconds(double bytes) const {
    return transfer_latency_us * 1e-6 + bytes / (host_bw_gbs * 1e9);
  }

  /// Local memory capacity per compute unit in bytes.
  double local_mem_bytes() const { return local_mem_kb * 1024.0; }

  /// Register file per compute unit in bytes.
  double register_bytes_per_cu() const { return registers_per_cu_kb * 1024.0; }

  bool is_gpu() const { return type == DeviceType::GPU; }
};

}  // namespace gemmtune::simcl
