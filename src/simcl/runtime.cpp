#include "simcl/runtime.hpp"

#include <cstring>

namespace gemmtune::simcl {

BufferPtr Context::create_buffer(std::size_t bytes) {
  check(bytes > 0, "Context: zero-sized buffer");
  const double capacity = spec_.global_mem_gb * 1024.0 * 1024.0 * 1024.0;
  check(static_cast<double>(allocated_ + bytes) <= capacity,
        "Context: device global memory exhausted on " + spec_.code_name);
  allocated_ += bytes;
  return std::make_shared<Buffer>(bytes);
}

double CommandQueue::transfer_seconds(std::size_t bytes) const {
  const double bw = ctx_->device().host_bw_gbs * 1e9;
  // Fixed submission latency plus bandwidth term.
  return 10e-6 + static_cast<double>(bytes) / bw;
}

void CommandQueue::enqueue_write(Buffer& dst, const void* src,
                                 std::size_t bytes, std::size_t dst_offset) {
  check(dst_offset + bytes <= dst.size(), "enqueue_write: out of range");
  std::memcpy(dst.data() + dst_offset, src, bytes);
  const double t = transfer_seconds(bytes);
  elapsed_ += t;
  events_.push_back({"write", t, 0.0, bytes});
}

void CommandQueue::enqueue_read(const Buffer& src, void* dst,
                                std::size_t bytes, std::size_t src_offset) {
  check(src_offset + bytes <= src.size(), "enqueue_read: out of range");
  std::memcpy(dst, src.data() + src_offset, bytes);
  const double t = transfer_seconds(bytes);
  elapsed_ += t;
  events_.push_back({"read", t, 0.0, bytes});
}

void CommandQueue::enqueue_copy(const Buffer& src, Buffer& dst,
                                std::size_t bytes) {
  check(bytes <= src.size() && bytes <= dst.size(),
        "enqueue_copy: out of range");
  std::memcpy(dst.data(), src.data(), bytes);
  // Device-side copies run at global-memory bandwidth (read + write).
  const double bw = ctx_->device().global_bw_gbs * 1e9;
  const double t = 2.0 * static_cast<double>(bytes) / bw +
                   ctx_->device().kernel_launch_us * 1e-6;
  elapsed_ += t;
  events_.push_back({"copy", t, 0.0, bytes});
}

void CommandQueue::enqueue_kernel(const std::string& name, double seconds,
                                  double gflop) {
  check(seconds >= 0, "enqueue_kernel: negative duration");
  elapsed_ += seconds;
  events_.push_back({name, seconds, gflop, 0});
}

void CommandQueue::reset() {
  elapsed_ = 0;
  events_.clear();
}

}  // namespace gemmtune::simcl
