// Registry of the simulated devices used in the paper's evaluation.
#pragma once

#include <string>
#include <vector>

#include "simcl/device_spec.hpp"

namespace gemmtune::simcl {

/// Stable identifiers for the simulated processors.
enum class DeviceId {
  Tahiti,       ///< AMD Radeon HD 7970
  Cayman,       ///< AMD Radeon HD 6970
  Kepler,       ///< NVIDIA GeForce GTX 670 (overclocked)
  Fermi,        ///< NVIDIA Tesla M2090
  SandyBridge,  ///< Intel Core i7 3960X
  Bulldozer,    ///< AMD FX-8150
  Cypress       ///< AMD Radeon HD 5870 (Section IV-C comparison)
};

/// All devices of the paper's main evaluation (Table I order).
std::vector<DeviceId> evaluation_devices();

/// All registered devices (evaluation set + Cypress).
std::vector<DeviceId> all_devices();

/// Specification lookup.
const DeviceSpec& device_spec(DeviceId id);

/// Lookup by code name ("Tahiti", "Sandy Bridge", ...); throws on unknown.
DeviceId device_by_name(const std::string& code_name);

/// Code name of a device id.
std::string to_string(DeviceId id);

}  // namespace gemmtune::simcl
