// SimCL runtime: OpenCL-shaped host API over simulated devices.
//
// Mirrors the OpenCL object model the paper's host code uses — context,
// buffers, command queue — with simulated time. Data movement is performed
// for real (buffers are host memory), so kernels interpreted against these
// buffers compute real results; operation *durations* are simulated from the
// device specification (transfers) or supplied by the caller (kernel
// launches, whose durations come from the performance model).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "simcl/device_spec.hpp"

namespace gemmtune::simcl {

/// Device-resident memory object (OpenCL cl_mem analogue). Owns real host
/// storage so interpreted kernels operate on actual data.
class Buffer {
 public:
  explicit Buffer(std::size_t bytes) : storage_(bytes, std::byte{0}) {}

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  std::size_t size() const { return storage_.size(); }
  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

  /// Typed view helpers. Element count is in T units.
  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(storage_.data());
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(storage_.data());
  }
  template <typename T>
  std::size_t count() const {
    return storage_.size() / sizeof(T);
  }

 private:
  std::vector<std::byte> storage_;
};

using BufferPtr = std::shared_ptr<Buffer>;

/// One completed queue operation with its simulated duration; the analogue
/// of an OpenCL profiling event.
struct ProfileEvent {
  std::string name;        ///< operation label ("write", "gemm_kernel", ...)
  double seconds = 0;      ///< simulated duration
  double gflop = 0;        ///< arithmetic work, for GFlop/s reporting
  std::size_t bytes = 0;   ///< data moved (transfers)
};

/// Execution context bound to one device (OpenCL cl_context analogue).
class Context {
 public:
  explicit Context(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& device() const { return spec_; }

  /// Allocates a device buffer; throws when the allocation would exceed the
  /// device's global memory capacity (matching CL_MEM_OBJECT_ALLOCATION_FAILURE).
  BufferPtr create_buffer(std::size_t bytes);

  /// Bytes currently allocated on the device.
  std::size_t allocated_bytes() const { return allocated_; }

 private:
  DeviceSpec spec_;
  std::size_t allocated_ = 0;
};

/// In-order command queue with simulated timing (cl_command_queue analogue).
class CommandQueue {
 public:
  explicit CommandQueue(Context& ctx) : ctx_(&ctx) {}

  const Context& context() const { return *ctx_; }

  /// Host -> device transfer; copies the bytes and charges transfer time at
  /// the device's host bandwidth.
  void enqueue_write(Buffer& dst, const void* src, std::size_t bytes,
                     std::size_t dst_offset = 0);

  /// Device -> host transfer.
  void enqueue_read(const Buffer& src, void* dst, std::size_t bytes,
                    std::size_t src_offset = 0);

  /// Device-side copy between buffers (used by the pack step when operands
  /// are already resident).
  void enqueue_copy(const Buffer& src, Buffer& dst, std::size_t bytes);

  /// Records a kernel execution whose duration was produced by the
  /// performance model. `gflop` is the kernel's arithmetic work.
  void enqueue_kernel(const std::string& name, double seconds, double gflop);

  /// Blocks until all enqueued work is "done" (no-op in simulation) and
  /// returns the total simulated time so far.
  double finish() const { return elapsed_; }

  /// Total simulated seconds accumulated on this queue.
  double elapsed_seconds() const { return elapsed_; }

  /// Profiling trace of every operation, in submission order.
  const std::vector<ProfileEvent>& events() const { return events_; }

  /// Clears accumulated time and the profiling trace.
  void reset();

 private:
  double transfer_seconds(std::size_t bytes) const;

  Context* ctx_;
  double elapsed_ = 0;
  std::vector<ProfileEvent> events_;
};

}  // namespace gemmtune::simcl
