#include "simcl/device_registry.hpp"

#include <array>

#include "common/error.hpp"

namespace gemmtune::simcl {

namespace {

// Table I of the paper, plus architectural values the paper's analysis
// relies on but does not tabulate:
//  * simd_width: GCN/VLIW wavefront = 64, NVIDIA warp = 32, AVX/FMA lanes
//    on CPUs (8 SP lanes on Sandy Bridge AVX, 8 on Bulldozer FMA4).
//  * registers_per_cu_kb: GCN CU = 256 KB vector registers; Cayman VLIW4
//    SIMD = 256 KB; Fermi SM = 128 KB (32768 x 4 B); Kepler SMX = 256 KB
//    (65536 x 4 B); CPUs: 16 YMM registers = 0.5 KB (per core).
//  * boost_factor: the GTX 670 card is overclocked and boosts above the
//    listed clock — the paper notes measured performance may exceed the
//    listed peak (Table II reports 105% DGEMM efficiency).
//  * host_bw_gbs: PCIe 2.0/3.0-era effective transfer rates; CPUs copy
//    within system memory.
//  * transfer_latency_us: fixed per-transfer cost (DMA setup + driver
//    round trip) — 11-18 us across the PCIe GPUs (NVIDIA's stack of the
//    era was a little leaner than Catalyst), a few us of map/unmap on the
//    CPUs.
//  * CPU global_bw_gbs is not in Table I: Sandy Bridge-E has quad-channel
//    DDR3-1600 (51.2 GB/s), the FX-8150 dual-channel DDR3-1866 (29.9 GB/s
//    listed, ~21 sustained).
DeviceSpec make_tahiti() {
  DeviceSpec d;
  d.code_name = "Tahiti";
  d.product_name = "Radeon HD 7970";
  d.type = DeviceType::GPU;
  d.clock_ghz = 0.925;
  d.compute_units = 32;
  d.dp_ops_per_clock = 1024;
  d.sp_ops_per_clock = 4096;
  d.peak_dp_gflops = 947;
  d.peak_sp_gflops = 3789;
  d.global_mem_gb = 3;
  d.global_bw_gbs = 264;
  d.l3_cache_mb = 0;
  d.l2_cache_kb = 768;
  d.l1_cache_kb = 16;
  d.local_mem_kb = 64;
  d.local_mem_kind = LocalMemKind::Scratchpad;
  d.opencl_sdk = "AMD APP 2.6";
  d.driver = "Catalyst 12.3";
  d.simd_width = 64;
  d.max_workgroup_size = 256;
  d.registers_per_cu_kb = 256;
  d.host_bw_gbs = 6.0;
  d.transfer_latency_us = 14.0;
  d.kernel_launch_us = 8.0;
  return d;
}

DeviceSpec make_cayman() {
  DeviceSpec d;
  d.code_name = "Cayman";
  d.product_name = "Radeon HD 6970";
  d.type = DeviceType::GPU;
  d.clock_ghz = 0.88;
  d.compute_units = 24;
  d.dp_ops_per_clock = 768;
  d.sp_ops_per_clock = 3072;
  d.peak_dp_gflops = 676;
  d.peak_sp_gflops = 2703;
  d.global_mem_gb = 1;
  d.global_bw_gbs = 176;
  d.l3_cache_mb = 0;
  d.l2_cache_kb = 512;
  d.l1_cache_kb = 8;
  d.local_mem_kb = 32;
  d.local_mem_kind = LocalMemKind::Scratchpad;
  d.opencl_sdk = "AMD APP 2.6";
  d.driver = "Catalyst 11.11";
  d.simd_width = 64;
  d.max_workgroup_size = 256;
  d.registers_per_cu_kb = 256;
  d.host_bw_gbs = 5.5;
  d.transfer_latency_us = 16.0;
  d.kernel_launch_us = 10.0;
  return d;
}

DeviceSpec make_kepler() {
  DeviceSpec d;
  d.code_name = "Kepler";
  d.product_name = "GeForce GTX 670 OC";
  d.type = DeviceType::GPU;
  d.clock_ghz = 1.085;
  d.compute_units = 7;
  d.dp_ops_per_clock = 112;  // 7 SMX x 8 FP64 units x 2 flops
  d.sp_ops_per_clock = 2688;
  d.peak_dp_gflops = 122;
  d.peak_sp_gflops = 2916;
  d.global_mem_gb = 2;
  d.global_bw_gbs = 192;
  d.l3_cache_mb = 0;
  d.l2_cache_kb = 512;
  d.l1_cache_kb = 16;
  d.local_mem_kb = 48;
  d.local_mem_kind = LocalMemKind::Scratchpad;
  d.opencl_sdk = "CUDA 5.0 RC";
  d.driver = "304.33";
  d.simd_width = 32;
  d.max_workgroup_size = 1024;
  d.registers_per_cu_kb = 256;
  d.boost_factor = 1.12;  // overclocked card boosts past the listed clock
                          // (Table II reports 105% DGEMM efficiency)
  d.host_bw_gbs = 6.0;
  d.transfer_latency_us = 11.0;
  d.kernel_launch_us = 6.0;
  return d;
}

DeviceSpec make_fermi() {
  DeviceSpec d;
  d.code_name = "Fermi";
  d.product_name = "Tesla M2090";
  d.type = DeviceType::GPU;
  d.clock_ghz = 1.3;
  d.compute_units = 16;
  d.dp_ops_per_clock = 512;
  d.sp_ops_per_clock = 1024;
  d.peak_dp_gflops = 665;
  d.peak_sp_gflops = 1331;
  d.global_mem_gb = 6;
  d.global_bw_gbs = 177;
  d.l3_cache_mb = 0;
  d.l2_cache_kb = 768;
  d.l1_cache_kb = 16;
  d.local_mem_kb = 48;
  d.local_mem_kind = LocalMemKind::Scratchpad;
  d.opencl_sdk = "CUDA 4.1.28";
  d.driver = "285.05";
  d.simd_width = 32;
  d.max_workgroup_size = 1024;
  d.registers_per_cu_kb = 128;
  d.host_bw_gbs = 5.8;
  d.transfer_latency_us = 13.0;
  d.kernel_launch_us = 7.0;
  return d;
}

DeviceSpec make_sandy_bridge() {
  DeviceSpec d;
  d.code_name = "Sandy Bridge";
  d.product_name = "Core i7 3960X";
  d.type = DeviceType::CPU;
  d.clock_ghz = 3.3;
  d.compute_units = 6;
  d.dp_ops_per_clock = 48;
  d.sp_ops_per_clock = 96;
  d.peak_dp_gflops = 158.4;
  d.peak_sp_gflops = 316.8;
  d.global_mem_gb = 16;
  d.global_bw_gbs = 51.2;
  d.l3_cache_mb = 15;
  d.l2_cache_kb = 256;
  d.l1_cache_kb = 32;
  d.local_mem_kb = 32;
  d.local_mem_kind = LocalMemKind::Global;
  d.opencl_sdk = "Intel 2013 beta";
  d.driver = "";
  d.simd_width = 8;
  d.max_workgroup_size = 1024;
  d.registers_per_cu_kb = 0.5;
  d.host_bw_gbs = 12.0;
  d.transfer_latency_us = 3.0;
  d.kernel_launch_us = 25.0;
  return d;
}

DeviceSpec make_bulldozer() {
  DeviceSpec d;
  d.code_name = "Bulldozer";
  d.product_name = "FX-8150";
  d.type = DeviceType::CPU;
  d.clock_ghz = 3.6;
  d.compute_units = 8;
  d.dp_ops_per_clock = 32;
  d.sp_ops_per_clock = 64;
  d.peak_dp_gflops = 115.2;
  d.peak_sp_gflops = 230.4;
  d.global_mem_gb = 8;
  d.global_bw_gbs = 21.3;
  d.l3_cache_mb = 8;
  d.l2_cache_kb = 2048;  // per two-core module
  d.l1_cache_kb = 16;
  d.local_mem_kb = 32;
  d.local_mem_kind = LocalMemKind::Global;
  d.opencl_sdk = "AMD APP 2.7";
  d.driver = "";
  d.simd_width = 8;
  d.max_workgroup_size = 1024;
  d.registers_per_cu_kb = 0.5;
  d.host_bw_gbs = 9.0;
  d.transfer_latency_us = 4.0;
  d.kernel_launch_us = 30.0;
  return d;
}

// Cypress (Radeon HD 5870) is not in Table I; Section IV-C compares our
// auto-tuned DGEMM (495 GFlop/s) with Nakasato's IL kernel (498, 92%
// efficiency) and Du et al. (308, 57%). Specs are the public HD 5870 values.
DeviceSpec make_cypress() {
  DeviceSpec d;
  d.code_name = "Cypress";
  d.product_name = "Radeon HD 5870";
  d.type = DeviceType::GPU;
  d.clock_ghz = 0.85;
  d.compute_units = 20;
  d.dp_ops_per_clock = 640;
  d.sp_ops_per_clock = 3200;
  d.peak_dp_gflops = 544;
  d.peak_sp_gflops = 2720;
  d.global_mem_gb = 1;
  d.global_bw_gbs = 153.6;
  d.l3_cache_mb = 0;
  d.l2_cache_kb = 512;
  d.l1_cache_kb = 8;
  d.local_mem_kb = 32;
  d.local_mem_kind = LocalMemKind::Scratchpad;
  d.opencl_sdk = "AMD APP 2.5";
  d.driver = "";
  d.simd_width = 64;
  d.max_workgroup_size = 256;
  d.registers_per_cu_kb = 256;
  d.host_bw_gbs = 5.0;
  d.transfer_latency_us = 18.0;
  d.kernel_launch_us = 10.0;
  return d;
}

const std::array<DeviceSpec, 7>& registry() {
  static const std::array<DeviceSpec, 7> specs = {
      make_tahiti(),       make_cayman(),    make_kepler(), make_fermi(),
      make_sandy_bridge(), make_bulldozer(), make_cypress()};
  return specs;
}

}  // namespace

std::vector<DeviceId> evaluation_devices() {
  return {DeviceId::Tahiti, DeviceId::Cayman,      DeviceId::Kepler,
          DeviceId::Fermi,  DeviceId::SandyBridge, DeviceId::Bulldozer};
}

std::vector<DeviceId> all_devices() {
  auto v = evaluation_devices();
  v.push_back(DeviceId::Cypress);
  return v;
}

const DeviceSpec& device_spec(DeviceId id) {
  return registry()[static_cast<std::size_t>(id)];
}

DeviceId device_by_name(const std::string& code_name) {
  // Exact match first; then a space-free alias ("SandyBridge"), which
  // spec strings like serve's "devices=Tahiti+SandyBridge" need because
  // their separators cannot carry a quoted space.
  const auto strip = [](const std::string& s) {
    std::string out;
    for (char c : s)
      if (c != ' ') out.push_back(c);
    return out;
  };
  for (DeviceId id : all_devices()) {
    if (device_spec(id).code_name == code_name) return id;
  }
  for (DeviceId id : all_devices()) {
    if (strip(device_spec(id).code_name) == strip(code_name)) return id;
  }
  fail("unknown device '" + code_name + "'");
}

std::string to_string(DeviceId id) { return device_spec(id).code_name; }

}  // namespace gemmtune::simcl
