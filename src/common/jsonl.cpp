#include "common/jsonl.hpp"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/error.hpp"

namespace gemmtune {

namespace {

// Serializes in-process appends: append_jsonl is read-modify-write, so two
// threads appending to the same (or any) JSONL file must not interleave.
std::mutex& append_mutex() {
  static std::mutex mu;
  return mu;
}

bool blank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

JsonlFile load_jsonl(const std::string& path, bool missing_ok) {
  JsonlFile out;
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    check(missing_ok, "load_jsonl: cannot open " + path);
    return out;
  }
  std::string line;
  std::int64_t line_no = 0;
  std::int64_t offset = 0;
  while (std::getline(f, line)) {
    ++line_no;
    const std::int64_t line_offset = offset;
    offset += static_cast<std::int64_t>(line.size()) + 1;  // +1 for '\n'
    if (blank(line)) continue;
    try {
      out.lines.push_back({Json::parse(line), line_no, line_offset});
    } catch (const Error& e) {
      out.bad.push_back({line_no, line_offset, e.what()});
    }
  }
  return out;
}

void append_jsonl(const std::string& path, const std::vector<Json>& docs) {
  if (docs.empty()) return;
  std::lock_guard<std::mutex> lock(append_mutex());
  std::string content;
  {
    std::ifstream f(path, std::ios::binary);
    if (f.good()) {
      std::ostringstream ss;
      ss << f.rdbuf();
      content = ss.str();
      if (!content.empty() && content.back() != '\n') content += '\n';
    }
  }
  for (const Json& d : docs) {
    content += d.dump();
    content += '\n';
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    check(f.good(), "append_jsonl: cannot open " + tmp);
    f << content;
    f.flush();
    check(f.good(), "append_jsonl: write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("append_jsonl: cannot rename " + tmp + " -> " + path);
  }
}

}  // namespace gemmtune
