// The single home of every machine-readable report schema tag.
//
// Each JSON document the project emits carries a "schema" field naming its
// format and version; tools/compare_bench.py and the tests key on these
// strings. Bumping a version is a one-line change here, and a grep for the
// constant finds every producer and consumer.
#pragma once

namespace gemmtune {

/// Bench reproduction reports (bench/bench_util.hpp).
inline constexpr const char* kBenchReportSchema = "gemmtune-bench-v1";

/// Batched serving reports (`gemmtune serve` / `gemmtune replay`).
inline constexpr const char* kServeReportSchema = "gemmtune-serve-v1";

/// Distributed multi-device GEMM reports (`gemmtune dist`).
inline constexpr const char* kDistReportSchema = "gemmtune-dist-v1";

/// Benchmark experiment database records (src/benchdb), one per line of
/// the append-only JSONL store.
inline constexpr const char* kBenchDbSchema = "gemmtune-benchdb-v1";

/// Aggregated trace metrics (src/trace).
inline constexpr const char* kMetricsSchema = "gemmtune-metrics-v1";

/// Serialized serving workload traces (src/serve/workload.hpp).
inline constexpr const char* kWorkloadSchema = "gemmtune-workload-v1";

}  // namespace gemmtune
