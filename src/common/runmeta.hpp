// Identity of the producing run, for machine-readable reports.
//
// Every report the project emits (gemmtune-bench-v1 / serve-v1 / dist-v1)
// carries a "meta" block naming the commit, commit timestamp, host,
// interpreter backend and thread count of the run that produced it, so
// `gemmtune bench-db ingest` can key records without guessing. The git
// facts come from `git rev-parse` / `git show` on the current directory
// and fall back to "unknown" / 0 outside a repository (or when git is
// absent), so every binary keeps working from a bare tarball.
//
// Environment overrides (checked first, useful for CI and tests):
//   GEMMTUNE_COMMIT       commit id recorded in reports
//   GEMMTUNE_COMMIT_TIME  unix seconds recorded as the commit time
//   GEMMTUNE_HOSTNAME     host name recorded in reports
//
// The commit *time* (not wall clock) is deliberately the only timestamp:
// it is a pure function of the checkout, so reports — and therefore
// bench-db records — stay byte-deterministic across reruns of the same
// commit.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace gemmtune {

/// Commit id of the working tree: GEMMTUNE_COMMIT, else `git rev-parse
/// HEAD`, else "unknown". Cached after the first call.
const std::string& git_commit();

/// Committer timestamp (unix seconds) of that commit: GEMMTUNE_COMMIT_TIME,
/// else `git show -s --format=%ct HEAD`, else 0. Cached.
std::int64_t git_commit_time();

/// Host name: GEMMTUNE_HOSTNAME, else gethostname(), else "unknown".
const std::string& run_host();

/// The uniform "meta" block: {backend, commit, commit_time, host, threads}.
/// `backend` is the resolved interpreter backend name and `threads` the
/// effective worker count; callers pass them in so this layer stays free
/// of kernelir dependencies.
Json run_meta_json(const std::string& backend, int threads);

}  // namespace gemmtune
