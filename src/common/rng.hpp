// Deterministic pseudo-random number generation.
//
// All randomness in the library (matrix fill, tuner tie-breaking, test data)
// flows through this splitmix64-based generator so that every run, test and
// benchmark is reproducible from an explicit seed.
#pragma once

#include <cstdint>

namespace gemmtune {

/// splitmix64: tiny, fast, well-distributed 64-bit PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace gemmtune
