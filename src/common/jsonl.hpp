// JSON-Lines file helpers: one JSON document per line, append-only.
//
// The benchmark experiment database (src/benchdb) stores one record per
// line so the file can be grown forever and merged with plain `cat`. Two
// properties matter and both live here:
//  * Crash-safe appends: the whole file (existing bytes + new lines) is
//    written to a sibling temp file and renamed over the destination, so
//    a reader — or a crash mid-append — never observes a torn line.
//    In-process concurrent appends are serialized on a global mutex.
//  * Corruption-tolerant loads: a bad line (truncated write from a kill
//    -9, a botched hand edit, a merge marker) is skipped and reported
//    with its line number and byte offset instead of poisoning the whole
//    file; every parseable record stays loadable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace gemmtune {

/// One successfully parsed line of a JSONL file.
struct JsonlLine {
  Json value;
  std::int64_t line_no = 0;      // 1-based
  std::int64_t byte_offset = 0;  // offset of the line's first byte
};

/// One line that failed to parse, with enough context to find and fix it.
struct JsonlBadLine {
  std::int64_t line_no = 0;
  std::int64_t byte_offset = 0;
  std::string error;
};

struct JsonlFile {
  std::vector<JsonlLine> lines;
  std::vector<JsonlBadLine> bad;
};

/// Loads `path`, parsing each non-blank line as one JSON document.
/// Unparseable lines land in `bad` (with line number and byte offset)
/// instead of throwing. A missing file yields an empty result when
/// `missing_ok` is true and throws gemmtune::Error naming the path
/// otherwise.
JsonlFile load_jsonl(const std::string& path, bool missing_ok = true);

/// Appends `docs` (one line each, compact dump) to `path`, creating it if
/// needed. Crash-safe: existing bytes are preserved verbatim (including
/// corrupt lines, which are evidence) and the combined content is
/// published with a temp-file + rename. Safe to call concurrently from
/// multiple threads of one process.
void append_jsonl(const std::string& path, const std::vector<Json>& docs);

}  // namespace gemmtune
