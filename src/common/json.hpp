// Minimal JSON value type with serializer and parser.
//
// Used by the tuner to persist search results (best kernel parameters per
// device/precision) and by benches to emit machine-readable series. Supports
// the JSON subset the library emits: objects, arrays, strings, finite
// numbers, booleans and null; no unicode escapes beyond \uXXXX pass-through.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gemmtune {

/// Tagged-union JSON value with value semantics.
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double d) : kind_(Kind::Number), num_(d) {}
  Json(int i) : kind_(Kind::Number), num_(i) {}
  Json(std::int64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Json(const char* s) : kind_(Kind::String), str_(s) {}
  Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  /// Creates an empty array / object.
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Typed accessors; throw gemmtune::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array operations.
  void push_back(Json v);
  std::size_t size() const;
  const Json& at(std::size_t i) const;

  /// Object operations. operator[] inserts null on missing key (non-const).
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  /// Removes a key from an object (no-op when absent).
  void erase(const std::string& key);
  const std::map<std::string, Json>& items() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws gemmtune::Error on syntax error.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace gemmtune
