// String formatting helpers (GCC 12 lacks std::format; these cover the
// library's needs: printf-style formatting, joining, simple templating).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace gemmtune {

/// printf-style formatting into std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Repeats `s` `n` times.
std::string repeat(const std::string& s, int n);

/// True when `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Formats a GFlop/s value the way the paper's tables do (no decimals above
/// 100, one decimal below).
std::string fmt_gflops(double gflops);

}  // namespace gemmtune
