// Small numeric helpers shared by the bench reporters and the serving
// layer.
//
// Two recurring needs:
//  * JSON-safe numbers: the JSON writer prints doubles with %.17g
//    verbatim, so an inf/nan ratio (zero or denormal denominator from a
//    tiny problem on a fast simulated device) would corrupt the document.
//    finite_or() is the single choke point for that.
//  * Latency summaries: nearest-rank percentiles over a sample, the
//    convention used by the serve report (p50/p95/p99).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace gemmtune {

/// `v` when finite, `fallback` otherwise (inf, -inf or nan).
inline double finite_or(double v, double fallback) {
  return std::isfinite(v) ? v : fallback;
}

/// GFlop/s for `flops` floating-point operations in `seconds`; 0 when the
/// duration is zero/denormal or the ratio is not finite.
inline double safe_gflops(double flops, double seconds) {
  if (!(seconds > 0.0)) return 0.0;
  return finite_or(flops / seconds / 1e9, 0.0);
}

/// Nearest-rank percentile of a sample: the smallest value such that at
/// least q*100% of the sample is <= it. q is clamped to [0, 1]; an empty
/// sample yields 0. Deterministic for a deterministic sample.
inline double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::min(1.0, std::max(0.0, q));
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(xs.size())));
  return xs[rank > 0 ? rank - 1 : 0];
}

/// Arithmetic mean; 0 on an empty sample.
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace gemmtune
