// Error handling for gemmtune.
//
// The library reports unrecoverable misuse (bad parameters, out-of-range
// accesses in the simulator, malformed kernels) through gemmtune::Error,
// which carries a human-readable message and the source location of the
// failed check. Recoverable conditions (a candidate kernel that fails
// validation during tuning) are reported through return values instead.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace gemmtune {

/// Exception thrown on precondition violations and internal invariant
/// failures anywhere in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const std::string& msg,
                               const std::source_location& loc) {
  throw Error(std::string(loc.file_name()) + ":" +
              std::to_string(loc.line()) + ": " + msg);
}
}  // namespace detail

/// Checks a precondition; throws gemmtune::Error with the caller's source
/// location when `cond` is false.
inline void check(bool cond, const std::string& msg,
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!cond) detail::raise(msg, loc);
}

/// Unconditional failure with message; used for unreachable branches.
[[noreturn]] inline void fail(const std::string& msg,
                              const std::source_location loc =
                                  std::source_location::current()) {
  detail::raise(msg, loc);
}

}  // namespace gemmtune
