#include "common/keyval.hpp"

#include <sstream>

#include "common/error.hpp"

namespace gemmtune {

std::vector<KeyValue> parse_keyval_spec(const std::string& text,
                                        const std::string& context) {
  std::vector<KeyValue> out;
  if (text.empty()) return out;
  std::istringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto eq = item.find('=');
    check(eq != std::string::npos,
          context + ": expected key=value, got '" + item + "'");
    check(eq > 0, context + ": empty key in '" + item + "'");
    out.push_back({item.substr(0, eq), item.substr(eq + 1)});
  }
  return out;
}

namespace {
std::string allowed_list(const std::vector<std::string>& allowed) {
  std::string list;
  for (const std::string& a : allowed) {
    if (!list.empty()) list += ", ";
    list += a;
  }
  return list;
}
}  // namespace

void fail_unknown_key(const std::string& context, const std::string& key,
                      const std::vector<std::string>& allowed) {
  fail(context + ": unknown key '" + key + "' (use " + allowed_list(allowed) +
       ")");
}

void fail_unknown_value(const std::string& context, const std::string& value,
                        const std::vector<std::string>& allowed) {
  fail(context + ": unknown value '" + value + "' (use " +
       allowed_list(allowed) + ")");
}

}  // namespace gemmtune
