// Small integer helpers used throughout the blocking and layout math.
#pragma once

#include <cstdint>
#include <numeric>

#include "common/error.hpp"

namespace gemmtune {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

/// Rounds `a` down to the previous multiple of `b` (b > 0).
constexpr std::int64_t round_down(std::int64_t a, std::int64_t b) {
  return (a / b) * b;
}

/// True when `a` is a (positive) multiple of `b`.
constexpr bool divides(std::int64_t b, std::int64_t a) {
  return b != 0 && a % b == 0;
}

/// Least common multiple of three positive integers; the paper uses
/// LCM(Mwg, Nwg, Kwg) to pick benchmark problem sizes (Section III-F).
inline std::int64_t lcm3(std::int64_t a, std::int64_t b, std::int64_t c) {
  check(a > 0 && b > 0 && c > 0, "lcm3 requires positive arguments");
  return std::lcm(std::lcm(a, b), c);
}

/// True when `x` is a power of two (x > 0).
constexpr bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }

/// Largest problem size `n <= cap` that is a positive multiple of `step`;
/// returns `step` itself when cap < step (the paper clamps the same way by
/// construction since blocking factors never exceed the stage-1 size).
inline std::int64_t largest_multiple_le(std::int64_t cap, std::int64_t step) {
  check(step > 0, "step must be positive");
  const std::int64_t n = round_down(cap, step);
  return n >= step ? n : step;
}

}  // namespace gemmtune
