#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace gemmtune {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string repeat(const std::string& s, int n) {
  std::string out;
  out.reserve(s.size() * static_cast<std::size_t>(n > 0 ? n : 0));
  for (int i = 0; i < n; ++i) out += s;
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string fmt_gflops(double gflops) {
  if (gflops >= 100.0) return strf("%.0f", gflops);
  return strf("%.1f", gflops);
}

}  // namespace gemmtune
