#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace gemmtune {

namespace {

constexpr double kNsPerSecond = 1e9;

}  // namespace

std::size_t LatencyHistogram::bucket_of(double seconds) {
  if (!(seconds > 0)) return 0;
  const double ns_d = seconds * kNsPerSecond;
  // Everything past ~2^63 ns (~292 years) saturates into the last octave.
  const std::uint64_t ns =
      ns_d >= 9.2e18 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(ns_d);
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  // Octave = position of the highest set bit; the remaining bits pick the
  // linear sub-bucket inside the octave.
  const int octave = 63 - std::countl_zero(ns);
  const std::uint64_t base = std::uint64_t{1} << octave;
  const std::uint64_t sub = (ns - base) >> (octave - 3);  // 2^3 sub-buckets
  // The first log2(kSubBuckets) octaves are covered by the linear ramp
  // [0, kSubBuckets); each later octave contributes kSubBuckets buckets.
  return static_cast<std::size_t>(kSubBuckets +
                                  (octave - 3) * kSubBuckets + sub);
}

double LatencyHistogram::bucket_upper_seconds(std::size_t index) {
  if (index < kSubBuckets) return static_cast<double>(index + 1) / kNsPerSecond;
  const std::size_t rel = index - kSubBuckets;
  const int octave = static_cast<int>(rel / kSubBuckets) + 3;
  const std::uint64_t sub = rel % kSubBuckets;
  const double base = std::ldexp(1.0, octave);
  const double width = std::ldexp(1.0, octave - 3);
  return (base + static_cast<double>(sub + 1) * width) / kNsPerSecond;
}

void LatencyHistogram::record(double seconds) {
  const double v = seconds > 0 ? seconds : 0;
  const std::size_t idx = bucket_of(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = rank > 0 ? rank : 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target)
      return std::min(bucket_upper_seconds(i), max_);
  }
  return max_;
}

Json LatencyHistogram::summary_json() const {
  Json j = Json::object();
  j["count"] = static_cast<std::int64_t>(count_);
  j["min_ms"] = min_seconds() * 1e3;
  j["max_ms"] = max_seconds() * 1e3;
  j["mean_ms"] = mean_seconds() * 1e3;
  j["p50_ms"] = quantile(0.50) * 1e3;
  j["p99_ms"] = quantile(0.99) * 1e3;
  j["p999_ms"] = quantile(0.999) * 1e3;
  return j;
}

}  // namespace gemmtune
