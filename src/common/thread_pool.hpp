// Shared parallel-execution layer: a reusable worker pool with
// parallel_for / parallel_map helpers.
//
// Design points (all load-bearing for the tuner and the interpreter):
//  * Static chunking: the index range [0, n) is split into one contiguous
//    chunk per worker, so a work item's chunk — and therefore the order in
//    which per-chunk results are concatenated — depends only on n and the
//    worker count, never on scheduling.
//  * Deterministic results: parallel_map writes result i to slot i, so the
//    output vector is identical to the serial map regardless of thread
//    count or interleaving.
//  * Exception propagation: the first (lowest-chunk) exception thrown by
//    any worker is rethrown on the calling thread after all workers finish.
//  * Caller participation: the calling thread executes chunk 0 itself, so
//    a pool of size 1 runs fully inline (no cross-thread hops) and a pool
//    of size N uses N-1 background workers.
//
// Thread-count configuration, in decreasing priority:
//  1. set_thread_override(n)  — the CLI's --threads flag,
//  2. GEMMTUNE_THREADS        — environment variable,
//  3. std::thread::hardware_concurrency().
//
// The pool itself is thread-compatible, not thread-safe: one parallel_for
// runs at a time per pool (nested or concurrent calls on the *same* pool
// fall back to inline execution rather than deadlocking). The process-wide
// global() pool serializes dispatches internally.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gemmtune {

/// Inclusive bounds every explicit thread-count setting must satisfy.
inline constexpr int kMinThreads = 1;
inline constexpr int kMaxThreads = 1024;

/// Parses an explicit thread-count setting (the --threads flag or the
/// GEMMTUNE_THREADS variable). Throws gemmtune::Error naming `origin` and
/// the allowed range [kMinThreads, kMaxThreads] when `value` is not a
/// plain decimal integer in range — garbage, zero, negatives, trailing
/// junk, and out-of-range counts are all rejected instead of silently
/// falling back to a default.
int parse_thread_count(const std::string& origin, const std::string& value);

/// Threads parallel sections will use: override > GEMMTUNE_THREADS > number
/// of hardware threads (always >= 1). Throws (via parse_thread_count) when
/// GEMMTUNE_THREADS is set to an invalid value.
int configured_threads();

/// Sets the process-wide thread-count override (the CLI --threads flag);
/// 0 clears the override. Takes effect for pools created afterwards and
/// for ThreadPool::global() dispatches.
void set_thread_override(int n);

/// Fixed-size worker pool executing statically chunked index ranges.
class ThreadPool {
 public:
  /// Creates a pool of `threads` workers; 0 means configured_threads().
  /// The calling thread counts as worker 0, so `threads - 1` background
  /// threads are spawned.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (including the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(begin, end, worker)` over a static partition of [0, n) into
  /// size() contiguous chunks (worker w gets chunk w; empty chunks are
  /// skipped). Blocks until every chunk finished; rethrows the
  /// lowest-chunk exception if any chunk threw. Reentrant calls (from
  /// inside a chunk) and concurrent calls from other threads execute the
  /// whole range inline on the calling thread.
  void parallel_for(
      std::int64_t n,
      const std::function<void(std::int64_t, std::int64_t, int)>& fn);

  /// The process-wide pool, created on first use with configured_threads()
  /// workers. Recreated (under lock) when the configured count changes, so
  /// a later set_thread_override takes effect.
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::int64_t, std::int64_t, int)>* fn = nullptr;
    std::int64_t n = 0;
    std::uint64_t epoch = 0;
  };

  void worker_loop(int worker);
  void run_chunk(const Job& job, int worker);
  static std::int64_t chunk_begin(std::int64_t n, int chunks, int i);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  Job job_;
  int pending_ = 0;           // workers still running the current job
  bool stop_ = false;
  bool busy_ = false;         // a parallel_for is in flight
  std::vector<std::exception_ptr> errors_;  // slot per worker
};

/// Maps `fn(i)` over [0, n) on `pool`, returning results in index order
/// (bit-identical to the serial loop for any thread count). `Fn` must be
/// safe to call concurrently from different threads for distinct `i`.
template <typename T, typename Fn>
std::vector<T> parallel_map(ThreadPool& pool, std::int64_t n, Fn&& fn) {
  std::vector<T> out(static_cast<std::size_t>(n));
  pool.parallel_for(n, [&](std::int64_t begin, std::int64_t end, int) {
    for (std::int64_t i = begin; i < end; ++i)
      out[static_cast<std::size_t>(i)] = fn(i);
  });
  return out;
}

}  // namespace gemmtune
