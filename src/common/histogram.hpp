// Log-bucketed latency histogram for the serving layer's tail-latency
// accounting (p50/p99/p999 per shape class).
//
// Design points:
//  * Log-linear buckets: each power-of-two octave of the nanosecond scale
//    is split into kSubBuckets linear sub-buckets, so the relative
//    resolution is bounded (~1/kSubBuckets) across twelve decades while
//    the whole table stays a few hundred counters. This is the classic
//    HdrHistogram/hiccup layout, sized for 1 ns .. ~18 minutes.
//  * Order-independent: record() only increments a counter, so the
//    histogram built from a set of samples is identical no matter which
//    thread observed which sample or in which order — merging per-executor
//    histograms after a concurrent run is deterministic.
//  * Conservative quantiles: quantile() returns the upper bound of the
//    nearest-rank bucket (clamped to the true maximum), so a reported p99
//    never understates the tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace gemmtune {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave (relative error <= 1/8).
  static constexpr int kSubBuckets = 8;

  /// Records one latency sample (seconds; negatives count as zero).
  void record(double seconds);

  /// Adds every bucket of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  double min_seconds() const { return count_ ? min_ : 0; }
  double max_seconds() const { return count_ ? max_ : 0; }
  double mean_seconds() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0;
  }

  /// Nearest-rank quantile (q clamped to [0, 1]): the upper bound of the
  /// first bucket whose cumulative count reaches ceil(q * count), clamped
  /// to the exact observed maximum. 0 on an empty histogram.
  double quantile(double q) const;

  /// {count, min_ms, max_ms, mean_ms, p50_ms, p99_ms, p999_ms}. A pure
  /// function of the recorded multiset, so reports built from it are
  /// deterministic for deterministic samples.
  Json summary_json() const;

  /// Bucket index for a sample (exposed for tests).
  static std::size_t bucket_of(double seconds);
  /// Upper bound, in seconds, of bucket `index` (exposed for tests).
  static double bucket_upper_seconds(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  // grown lazily to the max index
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace gemmtune
