#include "common/thread_pool.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/error.hpp"

namespace gemmtune {

namespace {
std::atomic<int> g_thread_override{0};
}  // namespace

int parse_thread_count(const std::string& origin, const std::string& value) {
  const auto bad = [&]() -> int {
    fail(origin + ": invalid thread count '" + value + "' (use an integer " +
         std::to_string(kMinThreads) + ".." + std::to_string(kMaxThreads) +
         ")");
  };
  if (value.empty()) bad();
  long parsed = 0;
  for (const char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) bad();
    parsed = parsed * 10 + (c - '0');
    if (parsed > kMaxThreads) bad();
  }
  if (parsed < kMinThreads) bad();
  return static_cast<int>(parsed);
}

void set_thread_override(int n) { g_thread_override.store(n > 0 ? n : 0); }

int configured_threads() {
  const int o = g_thread_override.load();
  if (o > 0) return o;
  if (const char* env = std::getenv("GEMMTUNE_THREADS")) {
    return parse_thread_count("GEMMTUNE_THREADS", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  int n = threads > 0 ? threads : configured_threads();
  if (n < 1) n = 1;
  errors_.resize(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n - 1));
  for (int w = 1; w < n; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

std::int64_t ThreadPool::chunk_begin(std::int64_t n, int chunks, int i) {
  return n * i / chunks;
}

void ThreadPool::run_chunk(const Job& job, int worker) {
  const int chunks = size();
  const std::int64_t begin = chunk_begin(job.n, chunks, worker);
  const std::int64_t end = chunk_begin(job.n, chunks, worker + 1);
  if (begin >= end) return;
  try {
    (*job.fn)(begin, end, worker);
  } catch (...) {
    errors_[static_cast<std::size_t>(worker)] = std::current_exception();
  }
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_start_.wait(lock, [&] { return stop_ || job_.epoch != seen; });
    if (stop_) return;
    seen = job_.epoch;
    const Job job = job_;
    lock.unlock();
    run_chunk(job, worker);
    lock.lock();
    if (--pending_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t n,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  if (n <= 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (busy_ || workers_.empty()) {
    // Reentrant / concurrent dispatch on the same pool, or a 1-thread
    // pool: run the whole range inline.
    lock.unlock();
    fn(0, n, 0);
    return;
  }
  busy_ = true;
  job_.fn = &fn;
  job_.n = n;
  ++job_.epoch;
  pending_ = static_cast<int>(workers_.size());
  for (auto& e : errors_) e = nullptr;
  cv_start_.notify_all();
  lock.unlock();
  run_chunk(job_, 0);  // the caller is worker 0
  lock.lock();
  cv_done_.wait(lock, [&] { return pending_ == 0; });
  busy_ = false;
  std::exception_ptr err;
  for (const auto& e : errors_) {
    if (e) {
      err = e;
      break;
    }
  }
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

ThreadPool& ThreadPool::global() {
  static std::mutex mu;
  // One pool per configured size, never destroyed: worker threads must not
  // be joined from static destructors (other statics they may touch could
  // already be gone), and handed-out references stay valid after a later
  // set_thread_override changes the configured count.
  static auto* pools = new std::map<int, std::unique_ptr<ThreadPool>>();
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*pools)[configured_threads()];
  if (!slot) slot = std::make_unique<ThreadPool>(configured_threads());
  return *slot;
}

}  // namespace gemmtune
