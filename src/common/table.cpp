#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != 'E' && c != ',') {
      return false;
    }
  }
  return digit;
}
}  // namespace

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  check(header_.empty() || row.size() == header_.size(),
        "row width does not match header");
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  const std::size_t ncol = header_.size();
  std::vector<std::size_t> width(ncol, 0);
  std::vector<bool> numeric(ncol, true);
  for (std::size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < ncol; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < ncol; ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (numeric[c] && &row != &header_) {
        os << " " << std::string(pad, ' ') << cell << " |";
      } else {
        os << " " << cell << std::string(pad, ' ') << " |";
      }
    }
    os << "\n";
  };
  auto rule = [&]() {
    os << "|";
    for (std::size_t c = 0; c < ncol; ++c)
      os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
  };
  emit(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit(row);
    }
  }
}

std::string TextTable::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace gemmtune
