// Shared "key=value,key=value" spec-string parsing.
//
// Both CLI spec surfaces — the serving workload spec and the distributed
// GEMM spec — accept comma-separated key=value lists. This helper is the
// one choke point for their lexical handling, so every spec rejects
// malformed items and unknown keys the same way: with an error that names
// the offending key and lists the accepted ones, never by silently
// ignoring a typo (a misspelled `requets=10000` that quietly runs the
// 1000-request default is a debugging session nobody needs).
#pragma once

#include <string>
#include <vector>

namespace gemmtune {

/// One `key=value` item of a spec string, in spec order.
struct KeyValue {
  std::string key;
  std::string value;
};

/// Splits `text` ("k=v,k=v,..."; empty yields {}) into items. Throws
/// gemmtune::Error naming `context` when an item has no '=' or an empty
/// key.
std::vector<KeyValue> parse_keyval_spec(const std::string& text,
                                        const std::string& context);

/// Throws gemmtune::Error: "<context>: unknown key '<key>' (use a, b, c)".
/// Call from the final `else` of a spec's key dispatch so no key is ever
/// silently dropped.
[[noreturn]] void fail_unknown_key(const std::string& context,
                                   const std::string& key,
                                   const std::vector<std::string>& allowed);

/// Throws gemmtune::Error: "<context>: unknown value '<value>' (use a, b,
/// c)". The enumerated-value counterpart of fail_unknown_key, for options
/// (CLI flags, environment variables) whose value must come from a fixed
/// set.
[[noreturn]] void fail_unknown_value(const std::string& context,
                                     const std::string& value,
                                     const std::vector<std::string>& allowed);

}  // namespace gemmtune
