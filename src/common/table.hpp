// Plain-text table printer used by the benchmark harnesses to render the
// paper's tables (Table I, II, III) and figure series as aligned columns.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gemmtune {

/// Column-aligned ASCII table. Cells are strings; alignment is inferred
/// per column (numeric-looking columns right-align).
class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Renders the table to `os` with single-space-padded `|` separators.
  void print(std::ostream& os) const;

  /// Renders to a string (convenience for tests).
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

}  // namespace gemmtune
