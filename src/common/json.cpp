#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune {

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

bool Json::as_bool() const {
  check(kind_ == Kind::Bool, "Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  check(kind_ == Kind::Number, "Json: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  check(kind_ == Kind::Number, "Json: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Json::as_string() const {
  check(kind_ == Kind::String, "Json: not a string");
  return str_;
}

void Json::push_back(Json v) {
  check(kind_ == Kind::Array, "Json: push_back on non-array");
  arr_.push_back(std::move(v));
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return arr_.size();
  if (kind_ == Kind::Object) return obj_.size();
  fail("Json: size() on non-container");
}

const Json& Json::at(std::size_t i) const {
  check(kind_ == Kind::Array, "Json: at(index) on non-array");
  check(i < arr_.size(), "Json: array index out of range");
  return arr_[i];
}

Json& Json::operator[](const std::string& key) {
  check(kind_ == Kind::Object || kind_ == Kind::Null,
        "Json: operator[] on non-object");
  kind_ = Kind::Object;
  return obj_[key];
}

const Json& Json::at(const std::string& key) const {
  check(kind_ == Kind::Object, "Json: at(key) on non-object");
  auto it = obj_.find(key);
  check(it != obj_.end(), "Json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return kind_ == Kind::Object && obj_.count(key) > 0;
}

void Json::erase(const std::string& key) {
  check(kind_ == Kind::Object, "Json: erase(key) on non-object");
  obj_.erase(key);
}

const std::map<std::string, Json>& Json::items() const {
  check(kind_ == Kind::Object, "Json: items() on non-object");
  return obj_;
}

namespace {
void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    out += strf("%lld", static_cast<long long>(d));
  } else {
    out += strf("%.17g", d);
  }
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
  const std::string padend =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: number_to(num_, out); break;
    case Kind::String: escape_to(str_, out); break;
    case Kind::Array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad;
        arr_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += nl;
      }
      out += padend;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : obj_) {
        out += pad;
        escape_to(k, out);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
        if (++i < obj_.size()) out += ',';
        out += nl;
      }
      out += padend;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    check(pos_ == s_.size(), "Json: trailing characters at " +
                                 std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    check(pos_ < s_.size(), "Json: unexpected end of input");
    return s_[pos_];
  }

  char take() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    check(take() == c, strf("Json: expected '%c' at %zu", c, pos_ - 1));
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = take();
      if (c == '"') break;
      if (c == '\\') {
        char e = take();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            check(pos_ + 4 <= s_.size(), "Json: bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("Json: bad hex digit in \\u escape");
            }
            // ASCII-only round trip is sufficient for our own documents.
            check(code < 0x80, "Json: non-ASCII \\u escape unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: fail("Json: bad escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    check(pos_ > start, "Json: invalid number");
    return Json(std::stod(s_.substr(start, pos_ - start)));
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = take();
      if (c == ']') break;
      check(c == ',', "Json: expected ',' or ']' in array");
    }
    return arr;
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = take();
      if (c == '}') break;
      check(c == ',', "Json: expected ',' or '}' in object");
    }
    return obj;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};
}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool operator==(const Json& a, const Json& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Json::Kind::Null: return true;
    case Json::Kind::Bool: return a.bool_ == b.bool_;
    case Json::Kind::Number: return a.num_ == b.num_;
    case Json::Kind::String: return a.str_ == b.str_;
    case Json::Kind::Array: return a.arr_ == b.arr_;
    case Json::Kind::Object: return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace gemmtune
