#include "common/runmeta.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace gemmtune {

namespace {

/// Runs `cmd` and returns its trimmed stdout, or "" on any failure (no
/// git, not a repository, command not found). stderr is discarded so a
/// bench run outside a checkout stays clean.
std::string capture_command(const std::string& cmd) {
  FILE* pipe = ::popen((cmd + " 2>/dev/null").c_str(), "r");
  if (!pipe) return "";
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), pipe)) out += buf;
  const int rc = ::pclose(pipe);
  if (rc != 0) return "";
  return trim(out);
}

}  // namespace

const std::string& git_commit() {
  static const std::string commit = [] {
    if (const char* env = std::getenv("GEMMTUNE_COMMIT"); env && *env)
      return std::string(env);
    const std::string head = capture_command("git rev-parse HEAD");
    return head.empty() ? std::string("unknown") : head;
  }();
  return commit;
}

std::int64_t git_commit_time() {
  static const std::int64_t time = [] {
    const char* env = std::getenv("GEMMTUNE_COMMIT_TIME");
    const std::string text =
        env && *env ? env : capture_command("git show -s --format=%ct HEAD");
    if (text.empty()) return std::int64_t{0};
    try {
      return static_cast<std::int64_t>(std::stoll(text));
    } catch (...) {
      return std::int64_t{0};
    }
  }();
  return time;
}

const std::string& run_host() {
  static const std::string host = [] {
    if (const char* env = std::getenv("GEMMTUNE_HOSTNAME"); env && *env)
      return std::string(env);
    char buf[256] = {0};
    if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0')
      return std::string(buf);
    return std::string("unknown");
  }();
  return host;
}

Json run_meta_json(const std::string& backend, int threads) {
  Json meta = Json::object();
  meta["backend"] = backend;
  meta["commit"] = git_commit();
  meta["commit_time"] = git_commit_time();
  meta["host"] = run_host();
  meta["threads"] = threads;
  return meta;
}

}  // namespace gemmtune
