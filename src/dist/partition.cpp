#include "dist/partition.hpp"

#include <algorithm>
#include <cmath>

namespace gemmtune::dist {

std::vector<std::int64_t> proportional_split(
    const std::vector<double>& weights, std::int64_t total) {
  check(!weights.empty(), "proportional_split: no weights");
  check(total >= 0, "proportional_split: negative total");
  const std::size_t n = weights.size();
  std::vector<double> w(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = (std::isfinite(weights[i]) && weights[i] > 0) ? weights[i] : 0;
    sum += w[i];
  }
  if (sum <= 0) {
    // Degenerate fleet: no usable weights — split as evenly as possible,
    // earlier devices taking the extra units.
    std::vector<std::int64_t> shares(n, total / static_cast<std::int64_t>(n));
    for (std::int64_t i = 0; i < total % static_cast<std::int64_t>(n); ++i)
      shares[static_cast<std::size_t>(i)] += 1;
    return shares;
  }
  std::vector<std::int64_t> shares(n);
  std::vector<std::pair<double, std::size_t>> remainder(n);
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double quota = static_cast<double>(total) * w[i] / sum;
    shares[i] = static_cast<std::int64_t>(std::floor(quota));
    assigned += shares[i];
    remainder[i] = {quota - std::floor(quota), i};
  }
  // Hand the leftover units to the largest fractional remainders; ties go
  // to the lower device index so the split never depends on sort
  // implementation details.
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (std::int64_t i = 0; i < total - assigned; ++i)
    shares[remainder[static_cast<std::size_t>(i)].second] += 1;
  return shares;
}

std::vector<std::int64_t> partition_starts(
    const std::vector<std::int64_t>& shares) {
  std::vector<std::int64_t> starts(shares.size());
  std::int64_t at = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    starts[i] = at;
    at += shares[i];
  }
  return starts;
}

}  // namespace gemmtune::dist
