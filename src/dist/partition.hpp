// Tile partitioning for distributed GEMM (SUMMA-style 2D decomposition).
//
// One large C <- alpha*op(A)*op(B) + beta*C is cut into a 2D grid of
// (tile_m x tile_n) output tiles, each carrying the full K extent: tile
// (i, j) needs the i-th row panel of op(A), the j-th column panel of
// op(B), and its own C block — so a device that computes several tiles of
// one grid row re-uses the A panel it already holds, and the executor's
// panel cache rewards contiguous (row-major) tile runs.
//
// The static partitioner splits the grid proportionally to each device's
// demonstrated throughput (largest-remainder apportionment: shares sum to
// the grid exactly, deterministically), and assigns each device one
// contiguous row-major run of tiles. Imbalance left over — fringe tiles,
// model error, panel-cache effects — is absorbed at run time by the
// executor's deterministic work stealing, not by re-planning.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/intmath.hpp"
#include "layout/matrix.hpp"

namespace gemmtune::dist {

/// The 2D output-tile grid of one distributed GEMM. Interior tiles are
/// tile_m x tile_n; the last row/column carries the fringe.
struct TileGrid {
  index_t M = 0, N = 0, K = 0;
  index_t tile_m = 0, tile_n = 0;
  index_t rows = 0, cols = 0;

  TileGrid() = default;
  TileGrid(index_t M_, index_t N_, index_t K_, index_t tm, index_t tn)
      : M(M_), N(N_), K(K_), tile_m(tm), tile_n(tn),
        rows(ceil_div(M_, tm)), cols(ceil_div(N_, tn)) {
    check(M_ > 0 && N_ > 0 && K_ > 0, "TileGrid: empty problem");
    check(tm > 0 && tn > 0, "TileGrid: empty tile");
  }

  std::int64_t total() const { return rows * cols; }
  index_t row_of(std::int64_t t) const { return t / cols; }
  index_t col_of(std::int64_t t) const { return t % cols; }

  /// Extents of tile (r, c): interior tiles are full-size, the last
  /// row/column holds the remainder.
  index_t tile_rows(index_t r) const {
    return r + 1 < rows ? tile_m : M - r * tile_m;
  }
  index_t tile_cols(index_t c) const {
    return c + 1 < cols ? tile_n : N - c * tile_n;
  }
};

/// Largest-remainder (Hamilton) apportionment of `total` indivisible units
/// over `weights`: shares are proportional to weight, sum to `total`
/// exactly, and are a pure function of the inputs (remainder ties break
/// toward the lower index). Non-positive and non-finite weights count as
/// zero; if every weight is zero the split is as even as possible.
std::vector<std::int64_t> proportional_split(
    const std::vector<double>& weights, std::int64_t total);

/// Contiguous row-major tile ranges from a split: device d owns tiles
/// [starts[d], starts[d] + shares[d]). starts.size() == shares.size().
std::vector<std::int64_t> partition_starts(
    const std::vector<std::int64_t>& shares);

}  // namespace gemmtune::dist
