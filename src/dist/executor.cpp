#include "dist/executor.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/report_version.hpp"
#include "common/runmeta.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "kernelir/interp.hpp"
#include "layout/packing.hpp"
#include "simcl/device_registry.hpp"
#include "trace/trace.hpp"

namespace gemmtune::dist {

using codegen::Precision;

namespace {

Precision parse_precision(const std::string& s) {
  if (s == to_string(Precision::DP)) return Precision::DP;
  if (s == to_string(Precision::SP)) return Precision::SP;
  fail("dist spec: unknown precision '" + s + "' (use DGEMM or SGEMM)");
}

GemmType parse_type(const std::string& s) {
  for (GemmType t : all_gemm_types())
    if (s == to_string(t)) return t;
  fail("dist spec: unknown GEMM type '" + s + "' (use NN, NT, TN or TT)");
}

index_t parse_extent(const std::string& key, const std::string& value) {
  std::int64_t n = 0;
  try {
    std::size_t used = 0;
    n = std::stoll(value, &used);
    check(used == value.size(),
          "dist spec: " + key + " expects an integer, got '" + value + "'");
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    fail("dist spec: " + key + " expects an integer, got '" + value + "'");
  }
  check(n > 0, "dist spec: " + key + " must be > 0");
  return n;
}

}  // namespace

std::vector<simcl::DeviceId> DistSpec::resolved_devices() const {
  return devices.empty() ? simcl::evaluation_devices() : devices;
}

DistSpec parse_dist_spec(const std::string& text) {
  DistSpec spec;
  for (const auto& [key, value] : parse_keyval_spec(text, "dist spec")) {
    if (key == "m") {
      spec.M = parse_extent(key, value);
    } else if (key == "n") {
      spec.N = parse_extent(key, value);
    } else if (key == "k") {
      spec.K = parse_extent(key, value);
    } else if (key == "size") {
      spec.M = spec.N = spec.K = parse_extent(key, value);
    } else if (key == "prec") {
      spec.prec = parse_precision(value);
    } else if (key == "type") {
      spec.type = parse_type(value);
    } else if (key == "tile") {
      spec.tile = parse_extent(key, value);
    } else if (key == "devices") {
      spec.devices.clear();
      std::istringstream ds(value);
      std::string name;
      while (std::getline(ds, name, '+'))
        spec.devices.push_back(simcl::device_by_name(name));
      check(!spec.devices.empty(), "dist spec: devices list is empty");
    } else {
      fail_unknown_key("dist spec", key,
                       {"m", "n", "k", "size", "prec", "type", "devices",
                        "tile"});
    }
  }
  return spec;
}

DistExecutor::DistExecutor(std::vector<simcl::DeviceId> devices,
                           DistOptions opt)
    : devices_(std::move(devices)), opt_(opt), pool_(opt_.threads) {
  check(!devices_.empty(), "DistExecutor: need at least one device");
  owned_.reserve(devices_.size());
  for (simcl::DeviceId id : devices_) {
    owned_.push_back(std::make_unique<blas::GemmEngine>(id));
    engines_.push_back(owned_.back().get());
  }
}

DistExecutor::DistExecutor(std::vector<blas::GemmEngine*> engines,
                           DistOptions opt)
    : opt_(opt), pool_(opt_.threads), engines_(std::move(engines)) {
  check(!engines_.empty(), "DistExecutor: need at least one engine");
  for (const blas::GemmEngine* e : engines_) {
    check(e != nullptr, "DistExecutor: null engine");
    devices_.push_back(e->device_id());
  }
}

index_t DistExecutor::auto_tile(Precision prec) {
  std::int64_t align = 1;
  for (blas::GemmEngine* e : engines_) {
    const codegen::KernelParams& p = e->kernel_for(prec).params;
    align = std::lcm(align, std::lcm<std::int64_t>(p.Mwg, p.Nwg));
  }
  return round_up(1024, align);
}

std::map<std::pair<index_t, index_t>,
         std::vector<DistExecutor::TileEstimate>>
DistExecutor::tile_estimates(const TileGrid& grid, GemmType type,
                             Precision prec) {
  // The grid has at most four distinct tile shapes: interior, right
  // fringe, bottom fringe, corner.
  std::set<std::pair<index_t, index_t>> shape_set;
  for (index_t r : {index_t{0}, grid.rows - 1})
    for (index_t c : {index_t{0}, grid.cols - 1})
      shape_set.insert({grid.tile_rows(r), grid.tile_cols(c)});
  const std::vector<std::pair<index_t, index_t>> shapes(shape_set.begin(),
                                                        shape_set.end());
  // Prewarm each engine's tuned kernel serially (kernel_for seeds its
  // database on first use), then fan the pure estimates out; the result
  // table is thread-count invariant because estimate() is a pure function
  // once the kernels exist.
  for (blas::GemmEngine* e : engines_) e->kernel_for(prec);
  const std::int64_t nd = static_cast<std::int64_t>(engines_.size());
  const std::int64_t ns = static_cast<std::int64_t>(shapes.size());
  const auto flat = parallel_map<TileEstimate>(
      pool_, nd * ns, [&](std::int64_t i) {
        const auto d = static_cast<std::size_t>(i / ns);
        const auto [mt, nt] = shapes[static_cast<std::size_t>(i % ns)];
        const auto prof = engines_[d]->estimate(type, prec, mt, nt, grid.K);
        const codegen::KernelParams& p = engines_[d]->kernel_for(prec).params;
        const PackedExtents ext =
            packed_extents(mt, nt, grid.K, p.Mwg, p.Nwg, p.Kwg);
        return TileEstimate{prof.total_seconds, ext.Mp, ext.Np, ext.Kp};
      });
  std::map<std::pair<index_t, index_t>, std::vector<TileEstimate>> out;
  for (std::int64_t si = 0; si < ns; ++si) {
    std::vector<TileEstimate>& per_dev =
        out[shapes[static_cast<std::size_t>(si)]];
    per_dev.resize(static_cast<std::size_t>(nd));
    for (std::int64_t d = 0; d < nd; ++d)
      per_dev[static_cast<std::size_t>(d)] =
          flat[static_cast<std::size_t>(d * ns + si)];
  }
  return out;
}

DistExecutor::SimResult DistExecutor::simulate(
    const TileGrid& grid, Precision prec,
    const std::map<std::pair<index_t, index_t>,
                   std::vector<TileEstimate>>& est,
    const std::vector<int>& participants,
    const std::vector<std::int64_t>& shares) const {
  check(participants.size() == shares.size(),
        "DistExecutor::simulate: participants/shares mismatch");
  const std::size_t np = participants.size();
  const auto es = static_cast<std::int64_t>(element_bytes(prec));

  struct SimDevice {
    std::deque<std::int64_t> queue;
    double copy_free = 0;
    double compute_free = 0;
    /// Compute-finish history; with double-buffered tile staging the copy
    /// of tile t waits for tile t-2's compute (two buffers in flight).
    std::deque<double> in_flight;
    std::set<index_t> a_panels, b_panels;  ///< panels resident on device
    DeviceTileStats stats;
  };
  std::vector<SimDevice> devs(np);
  const auto starts = partition_starts(shares);
  for (std::size_t i = 0; i < np; ++i) {
    devs[i].stats.planned = shares[i];
    for (std::int64_t t = starts[i]; t < starts[i] + shares[i]; ++t)
      devs[i].queue.push_back(t);
  }

  // Per-tile seconds and transfer bytes on a given participant, from the
  // estimate table and the device's current panel caches (peek only).
  const auto tile_seconds = [&](std::size_t i, std::int64_t t) {
    const index_t r = grid.row_of(t);
    const index_t c = grid.col_of(t);
    return est.at({grid.tile_rows(r), grid.tile_cols(c)})[static_cast<
               std::size_t>(participants[i])]
        .seconds;
  };
  const auto tile_bytes = [&](std::size_t i, std::int64_t t) {
    const index_t r = grid.row_of(t);
    const index_t c = grid.col_of(t);
    const TileEstimate& te =
        est.at({grid.tile_rows(r), grid.tile_cols(c)})[static_cast<
            std::size_t>(participants[i])];
    std::int64_t bytes = 2 * es * te.Mp * te.Np;
    if (!devs[i].a_panels.count(r)) bytes += es * te.Kp * te.Mp;
    if (!devs[i].b_panels.count(c)) bytes += es * te.Kp * te.Np;
    return bytes;
  };

  SimResult out;
  std::vector<char> parked(np, 0);  // declined a steal; out of the run
  std::int64_t remaining = grid.total();
  while (remaining > 0) {
    // Next pull: the device whose copy engine (gated by the free tile
    // buffer) is ready first; ties break to the lower participant index.
    std::size_t d = np;
    double best_ready = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < np; ++i) {
      if (parked[i]) continue;
      SimDevice& sd = devs[i];
      const double gate =
          sd.in_flight.size() >= 2 ? sd.in_flight.front() : 0.0;
      const double ready = std::max(sd.copy_free, gate);
      if (ready < best_ready) {
        best_ready = ready;
        d = i;
      }
    }
    if (d == np) break;  // defensive; owners of remaining tiles never park
    SimDevice& sd = devs[d];
    bool stolen = false;
    std::int64_t tile;
    if (!sd.queue.empty()) {
      tile = sd.queue.front();
      sd.queue.pop_front();
    } else {
      // Deterministic steal: one tile off the tail of the longest
      // remaining queue (ties to the lowest index). The tail is the work
      // the victim would reach last, so the thief disturbs the victim's
      // panel locality least.
      std::size_t victim = np;
      std::size_t most = 0;
      for (std::size_t i = 0; i < np; ++i)
        if (devs[i].queue.size() > most) {
          most = devs[i].queue.size();
          victim = i;
        }
      if (victim == np) break;  // defensive; remaining > 0 implies a queue
      tile = devs[victim].queue.back();
      // Steal guard: take the tile only when the thief would finish it
      // before the victim would even reach it — otherwise a slow device
      // stealing in the endgame becomes the straggler that defines the
      // makespan. A device that declines parks for the rest of the run
      // (queues only shrink, so a declined steal never becomes a good one).
      double victim_finish = devs[victim].compute_free;
      for (std::int64_t t : devs[victim].queue)
        victim_finish += tile_seconds(victim, t);
      const double tr_est =
          simcl::device_spec(devices_[static_cast<std::size_t>(
                                 participants[d])])
              .transfer_seconds(static_cast<double>(tile_bytes(d, tile)));
      const double thief_finish =
          std::max(sd.compute_free, best_ready + tr_est) +
          tile_seconds(d, tile);
      if (thief_finish >= victim_finish) {
        parked[d] = 1;
        continue;
      }
      devs[victim].queue.pop_back();
      stolen = true;
    }
    --remaining;

    trace::Span tile_span("dist.tile");
    const index_t r = grid.row_of(tile);
    const index_t c = grid.col_of(tile);
    const TileEstimate& te =
        est.at({grid.tile_rows(r), grid.tile_cols(c)})[static_cast<
            std::size_t>(participants[d])];
    // Bytes this tile ships: the C block down and back up always; the A
    // row panel and B column panel only when not already resident from an
    // earlier tile (SUMMA reuse — contiguous row-major runs mostly re-fetch
    // just one new B panel per tile). Padded extents come from the
    // device's own tuned blocking, i.e. what its pack kernels materialize.
    std::int64_t bytes = 2 * es * te.Mp * te.Np;
    if (sd.a_panels.insert(r).second) {
      bytes += es * te.Kp * te.Mp;
      sd.stats.a_panel_fetches += 1;
      trace::counter_add("dist.panel_fetches", 1);
    }
    if (sd.b_panels.insert(c).second) {
      bytes += es * te.Kp * te.Np;
      sd.stats.b_panel_fetches += 1;
      trace::counter_add("dist.panel_fetches", 1);
    }
    const double tr = simcl::device_spec(devices_[static_cast<std::size_t>(
                                             participants[d])])
                          .transfer_seconds(static_cast<double>(bytes));

    TileRecord rec;
    rec.index = tile;
    rec.device = participants[d];
    rec.stolen = stolen;
    rec.bytes = bytes;
    const double gate = sd.in_flight.size() >= 2 ? sd.in_flight.front() : 0.0;
    if (sd.in_flight.size() >= 2) sd.in_flight.pop_front();
    rec.copy_start = std::max(sd.copy_free, gate);
    rec.copy_done = rec.copy_start + tr;
    sd.copy_free = rec.copy_done;
    rec.compute_start = std::max(sd.compute_free, rec.copy_done);
    rec.compute_done = rec.compute_start + te.seconds;
    sd.compute_free = rec.compute_done;
    sd.in_flight.push_back(rec.compute_done);

    sd.stats.executed += 1;
    if (stolen) {
      sd.stats.stolen += 1;
      trace::counter_add("dist.tiles_stolen", 1);
    }
    sd.stats.compute_seconds += te.seconds;
    sd.stats.transfer_seconds += tr;
    sd.stats.finish_seconds = rec.compute_done;
    sd.stats.bytes += bytes;
    trace::counter_add("dist.tiles", 1);
    trace::counter_add("dist.transfer_bytes",
                       static_cast<std::uint64_t>(bytes));
    out.tiles.push_back(rec);
    out.makespan = std::max(out.makespan, rec.compute_done);
  }
  out.stats.reserve(np);
  for (SimDevice& sd : devs) out.stats.push_back(sd.stats);
  return out;
}

DistOutcome DistExecutor::run(GemmType type, Precision prec, index_t M,
                              index_t N, index_t K, index_t tile) {
  trace::Span span("dist.run");
  if (tile == 0) tile = auto_tile(prec);
  DistOutcome out;
  out.grid = TileGrid(M, N, K, tile, tile);
  const auto est = tile_estimates(out.grid, type, prec);

  // Static shares from each device's tuned interior-tile throughput.
  const std::pair<index_t, index_t> interior{out.grid.tile_rows(0),
                                             out.grid.tile_cols(0)};
  std::vector<double> weights(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const double s = est.at(interior)[d].seconds;
    weights[d] = s > 0 ? 1.0 / s : 0.0;
  }
  const auto shares = proportional_split(
      weights, out.grid.total());

  std::vector<int> all(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d)
    all[d] = static_cast<int>(d);
  SimResult fleet = simulate(out.grid, prec, est, all, shares);
  out.tiles = std::move(fleet.tiles);
  out.device_stats = std::move(fleet.stats);
  out.makespan_seconds = fleet.makespan;
  const double flops = 2.0 * static_cast<double>(M) *
                       static_cast<double>(N) * static_cast<double>(K);
  out.gflops = safe_gflops(flops, out.makespan_seconds);

  // Speedup baseline: the identical tiled pipeline on each device alone.
  out.single_seconds.resize(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const SimResult solo = simulate(out.grid, prec, est,
                                    {static_cast<int>(d)},
                                    {out.grid.total()});
    out.single_seconds[d] = solo.makespan;
    if (out.best_single < 0 || solo.makespan < out.best_single_seconds) {
      out.best_single = static_cast<int>(d);
      out.best_single_seconds = solo.makespan;
    }
  }
  out.speedup = finite_or(out.best_single_seconds / out.makespan_seconds,
                          1.0);
  trace::gauge_set("dist.speedup", out.speedup);
  return out;
}

double DistExecutor::estimate_seconds(GemmType type, Precision prec,
                                      index_t M, index_t N, index_t K) {
  const index_t tile = auto_tile(prec);
  const TileGrid grid(M, N, K, tile, tile);
  const auto est = tile_estimates(grid, type, prec);
  const std::pair<index_t, index_t> interior{grid.tile_rows(0),
                                             grid.tile_cols(0)};
  std::vector<double> weights(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    const double s = est.at(interior)[d].seconds;
    weights[d] = s > 0 ? 1.0 / s : 0.0;
  }
  std::vector<int> all(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d)
    all[d] = static_cast<int>(d);
  return simulate(grid, prec, est, all,
                  proportional_split(weights, grid.total()))
      .makespan;
}

Json build_dist_report(const DistSpec& spec, const DistOutcome& o) {
  Json doc = Json::object();
  doc["schema"] = kDistReportSchema;
  doc["meta"] = run_meta_json(
      ir::to_string(ir::resolve_backend(ir::Backend::Auto)),
      configured_threads());

  Json problem = Json::object();
  problem["m"] = o.grid.M;
  problem["n"] = o.grid.N;
  problem["k"] = o.grid.K;
  problem["prec"] = to_string(spec.prec);
  problem["type"] = to_string(spec.type);
  problem["tile_m"] = o.grid.tile_m;
  problem["tile_n"] = o.grid.tile_n;
  problem["grid_rows"] = o.grid.rows;
  problem["grid_cols"] = o.grid.cols;
  Json devs = Json::array();
  for (simcl::DeviceId id : spec.resolved_devices())
    devs.push_back(simcl::to_string(id));
  problem["devices"] = std::move(devs);
  doc["problem"] = std::move(problem);

  const auto devices = spec.resolved_devices();
  double transfer_total = 0, compute_total = 0;
  std::int64_t bytes_total = 0, stolen_total = 0;
  for (const DeviceTileStats& ds : o.device_stats) {
    transfer_total += ds.transfer_seconds;
    compute_total += ds.compute_seconds;
    bytes_total += ds.bytes;
    stolen_total += ds.stolen;
  }

  Json scalars = Json::object();
  scalars["tiles.total"] = o.grid.total();
  scalars["tiles.stolen"] = stolen_total;
  scalars["makespan_seconds"] = o.makespan_seconds;
  scalars["throughput.gflops"] = o.gflops;
  scalars["transfer.seconds"] = transfer_total;
  scalars["compute.seconds"] = compute_total;
  scalars["transfer.bytes"] = bytes_total;
  scalars["single.best_seconds"] = o.best_single_seconds;
  scalars["single.best_gflops"] = safe_gflops(
      2.0 * static_cast<double>(o.grid.M) * static_cast<double>(o.grid.N) *
          static_cast<double>(o.grid.K),
      o.best_single_seconds);
  scalars["speedup.vs_best_single"] = o.speedup;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const DeviceTileStats& ds = o.device_stats[d];
    scalars["tiles.dev." + simcl::to_string(devices[d])] = ds.executed;
  }
  doc["scalars"] = std::move(scalars);

  Json per_device = Json::object();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    const DeviceTileStats& ds = o.device_stats[d];
    Json j = Json::object();
    j["planned"] = ds.planned;
    j["executed"] = ds.executed;
    j["stolen"] = ds.stolen;
    j["compute_seconds"] = ds.compute_seconds;
    j["transfer_seconds"] = ds.transfer_seconds;
    j["finish_seconds"] = ds.finish_seconds;
    j["bytes"] = ds.bytes;
    j["a_panel_fetches"] = ds.a_panel_fetches;
    j["b_panel_fetches"] = ds.b_panel_fetches;
    j["utilization"] = finite_or(
        ds.compute_seconds / o.makespan_seconds, 0.0);
    j["single_device_seconds"] = o.single_seconds[d];
    per_device[simcl::to_string(devices[d])] = std::move(j);
  }
  doc["per_device"] = std::move(per_device);

  // The full per-tile timeline is only worth its bytes on small grids;
  // the cap depends on the grid alone, so the document stays a pure
  // function of the run's inputs.
  if (o.grid.total() <= 256) {
    Json tiles = Json::array();
    for (const TileRecord& t : o.tiles) {
      Json j = Json::object();
      j["tile"] = t.index;
      j["device"] = t.device;
      j["stolen"] = t.stolen;
      j["copy_start"] = t.copy_start;
      j["copy_done"] = t.copy_done;
      j["compute_start"] = t.compute_start;
      j["compute_done"] = t.compute_done;
      j["bytes"] = t.bytes;
      tiles.push_back(std::move(j));
    }
    doc["tiles"] = std::move(tiles);
  }
  return doc;
}

}  // namespace gemmtune::dist
