// Distributed multi-device GEMM: one C <- alpha*op(A)*op(B) + beta*C
// executed as a 2D tile grid across the whole simulated fleet.
//
// Execution model (all simulated time, no wall clock anywhere):
//  * SUMMA-style decomposition: the output is cut into tile_m x tile_n
//    tiles carrying the full K extent (partition.hpp). The default tile
//    edge is 1024 rounded up to the LCM of every device's tuned Mwg/Nwg,
//    so interior tiles pack without padding waste on any device; per-tile
//    padded transfer sizes come from the same layout/ packing math the
//    kernels use.
//  * Static partition: tiles are apportioned proportionally to each
//    device's tuned throughput on an interior tile (largest-remainder
//    split, contiguous row-major runs to maximize panel reuse).
//  * Transfer/compute overlap: each device has one copy engine and one
//    compute engine. A tile's panels (A row panel + B column panel, each
//    cached once fetched, plus the C block down and up) ship as one DMA
//    paying the DeviceSpec transfer model (fixed latency + bytes/bandwidth).
//    With double-buffered tile staging, the copy of tile t may start as
//    soon as tile t-2's compute finished, so steady-state tile time is
//    max(transfer, compute), not their sum.
//  * Deterministic work stealing: when a device's own queue drains it
//    steals one tile from the tail of the longest remaining queue (ties to
//    the lowest device index) — but only when it would finish the tile
//    before the victim would even reach it; a device that cannot beat the
//    victim parks, so a slow device never becomes the straggler by
//    stealing in the endgame. The event loop is serial and orders pulls
//    by (ready time, device index); worker threads only precompute the
//    pure per-tile estimate table, so the outcome — and the
//    "gemmtune-dist-v1" report — is byte-identical at any --threads value.
//
// The speedup baseline runs the same tiled pipeline on each device alone
// (same grid, same transfer model, full panel reuse) and takes the best.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"
#include "dist/partition.hpp"

namespace gemmtune::dist {

/// Everything naming one distributed GEMM run (the `gemmtune dist` spec).
struct DistSpec {
  index_t M = 8192, N = 8192, K = 8192;
  codegen::Precision prec = codegen::Precision::SP;
  GemmType type = GemmType::NN;
  std::vector<simcl::DeviceId> devices;  ///< empty -> evaluation set
  index_t tile = 0;                      ///< 0 -> auto (LCM-aligned ~1024)

  std::vector<simcl::DeviceId> resolved_devices() const;
};

/// Parses a "key=value,key=value" dist spec. Keys: m, n, k, size (sets
/// m=n=k), prec (DGEMM|SGEMM), type (NN|NT|TN|TT), devices ('+'-separated
/// code names), tile. Unknown keys are rejected with an error naming the
/// key.
DistSpec parse_dist_spec(const std::string& text);

struct DistOptions {
  /// Worker threads for the estimate precompute. 0 follows the
  /// process-wide configuration (--threads / GEMMTUNE_THREADS / hardware).
  int threads = 0;
};

/// One executed tile, in simulated time.
struct TileRecord {
  std::int64_t index = 0;  ///< row-major tile index in the grid
  int device = -1;         ///< index into the executor's device list
  bool stolen = false;     ///< pulled from another device's queue
  double copy_start = 0, copy_done = 0;
  double compute_start = 0, compute_done = 0;
  std::int64_t bytes = 0;  ///< host<->device bytes this tile moved
};

/// Per-device aggregates over one distributed run.
struct DeviceTileStats {
  std::int64_t planned = 0;   ///< tiles from the static partition
  std::int64_t executed = 0;  ///< tiles actually computed
  std::int64_t stolen = 0;    ///< executed tiles taken from another queue
  double compute_seconds = 0;
  double transfer_seconds = 0;
  double finish_seconds = 0;  ///< when this device went idle for good
  std::int64_t bytes = 0;
  std::int64_t a_panel_fetches = 0, b_panel_fetches = 0;
};

/// Everything one distributed run produced.
struct DistOutcome {
  TileGrid grid;
  std::vector<TileRecord> tiles;             ///< in execution (pull) order
  std::vector<DeviceTileStats> device_stats; ///< parallel to device list
  double makespan_seconds = 0;
  double gflops = 0;
  /// The same tiled pipeline on each device alone (parallel to the device
  /// list), and the best of them — the speedup denominator's identity.
  std::vector<double> single_seconds;
  int best_single = -1;
  double best_single_seconds = 0;
  double speedup = 0;  ///< best_single_seconds / makespan_seconds
};

/// Distributed GEMM executor bound to a fleet of simulated devices.
class DistExecutor {
 public:
  explicit DistExecutor(std::vector<simcl::DeviceId> devices,
                        DistOptions opt = {});
  /// Reuses engines owned by the caller (the serving layer's warmed
  /// engines); `engines` must outlive the executor.
  explicit DistExecutor(std::vector<blas::GemmEngine*> engines,
                        DistOptions opt = {});

  const std::vector<simcl::DeviceId>& devices() const { return devices_; }

  /// The fleet tile edge for `prec`: 1024 rounded up to the LCM of every
  /// device's tuned Mwg and Nwg.
  index_t auto_tile(codegen::Precision prec);

  /// Runs the full distributed simulation (tile == 0 picks auto_tile).
  DistOutcome run(GemmType type, codegen::Precision prec, index_t M,
                  index_t N, index_t K, index_t tile = 0);

  /// Fleet makespan only — what the serving layer's router needs to price
  /// a distributed dispatch. Pure function of the inputs.
  double estimate_seconds(GemmType type, codegen::Precision prec, index_t M,
                          index_t N, index_t K);

 private:
  struct TileEstimate {
    double seconds = 0;  ///< per-tile device time (pack + kernel)
    index_t Mp = 0, Np = 0, Kp = 0;  ///< padded extents on this device
  };
  struct SimResult {
    std::vector<TileRecord> tiles;
    std::vector<DeviceTileStats> stats;  ///< parallel to `participants`
    double makespan = 0;
  };

  /// Per-device estimates for every distinct tile shape in the grid
  /// (interior/right/bottom/corner), device-major; pure, so the parallel
  /// precompute is thread-count invariant.
  std::map<std::pair<index_t, index_t>, std::vector<TileEstimate>>
  tile_estimates(const TileGrid& grid, GemmType type,
                 codegen::Precision prec);

  /// Serial discrete-event simulation over `participants` (indices into
  /// the device list) with `shares[i]` contiguous row-major tiles queued
  /// on participants[i].
  SimResult simulate(
      const TileGrid& grid, codegen::Precision prec,
      const std::map<std::pair<index_t, index_t>,
                     std::vector<TileEstimate>>& est,
      const std::vector<int>& participants,
      const std::vector<std::int64_t>& shares) const;

  std::vector<simcl::DeviceId> devices_;
  DistOptions opt_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<blas::GemmEngine>> owned_;
  std::vector<blas::GemmEngine*> engines_;  ///< parallel to devices_
};

/// Builds the "gemmtune-dist-v1" report: per-device tile counts, transfer
/// vs compute seconds, speedup vs the best single device. A pure function
/// of its inputs — identical runs produce byte-identical documents; the
/// `scalars` section follows the convention tools/compare_bench.py gates.
Json build_dist_report(const DistSpec& spec, const DistOutcome& o);

}  // namespace gemmtune::dist
