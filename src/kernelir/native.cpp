// JIT driver for the native backend: host-toolchain compilation, on-disk
// shared-object cache, dlopen, and the launch bridge.
//
// Pipeline (get_or_compile_native):
//  1. key = serialize_kernel(); consult the process-wide program cache's
//     native slot (compile.hpp) — hits and sticky failures return
//     immediately, so the compiler runs at most once per kernel shape.
//  2. hash the (emitter version + flags + key) bytes; if a .so with that
//     hash already sits in the cache directory, dlopen it directly — a
//     warm start never invokes the compiler.
//  3. otherwise emit the specialized source, run the host C++ compiler
//     (-O2 -fPIC -shared -ffp-contract=off; contraction off keeps the
//     generated arithmetic bit-identical to the interpreter's), publish
//     the object with temp-file + rename (concurrent processes race
//     benignly: rename is atomic and either winner's object is valid),
//     and dlopen the result.
// Every failure is soft: the cause is recorded in the cache as a sticky
// per-kernel failure and the caller falls back to the bytecode VM.
#include "kernelir/native.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/strings.hpp"
#include "trace/trace.hpp"

#ifndef GEMMTUNE_HOST_CXX
#define GEMMTUNE_HOST_CXX ""
#endif

namespace gemmtune::ir {

namespace {

/// Bumping this invalidates every cached .so (the hash covers it).
constexpr const char* kEmitterVersion = "gemmtune-native-emit-v2";
/// Scalar FP codegen: the backend contract is byte-identical buffers
/// against the interpreter, and GCC's tree/SLP vectorizers can reorganize
/// the emitted (double)(float) rounding chains at a one-ULP cost on f32
/// kernels. Contraction is off for the same reason.
constexpr const char* kJitFlagsScalar =
    "-std=c++17 -O2 -fPIC -shared -ffp-contract=off "
    "-fno-tree-vectorize -fno-tree-slp-vectorize";
/// SIMD emitter path: the vector lanes are explicit in the source (with
/// f32 rounding as per-element conversions inside the vector body), so
/// the loop vectorizer is free to run — per-element semantics are already
/// pinned. SLP stays off: it is the pass that reorganized scalar rounding
/// chains at a one-ULP cost, and the explicit vectors leave it no upside.
constexpr const char* kJitFlagsSimd =
    "-std=c++17 -O3 -fPIC -shared -ffp-contract=off "
    "-fno-tree-slp-vectorize";

std::atomic<NativeSimd> g_simd_override{NativeSimd::Auto};

/// Widest vector of doubles the host CPU runs natively; the generic
/// 2-lane fallback still wins on baseline x86-64 (SSE2) and lets non-x86
/// hosts use the synthesized GCC vector ops.
int probed_simd_width() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx512f")) return 8;
  if (__builtin_cpu_supports("avx2")) return 4;
#endif
  return 2;
}

/// Compiler flags for one native compile at the given emit width. The
/// arch flag must cover the vector width the emitter baked in, and both
/// feed the .so hash so changing either never reuses a stale object.
std::string jit_flags_for(int simd_w) {
  if (simd_w <= 0) return kJitFlagsScalar;
  std::string flags = kJitFlagsSimd;
#if defined(__x86_64__)
  if (simd_w >= 8) {
    flags += " -mavx512f";
  } else if (simd_w >= 4) {
    flags += " -mavx2";
  }
#endif
  return flags;
}

std::mutex g_native_mutex;
std::string g_cache_dir_override;   // --jit-cache-dir
std::string g_temp_dir;             // lazily created mkdtemp fallback
bool g_probe_done = false;
std::string g_probe_cxx;            // empty = no usable compiler

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

bool dir_writable(const std::string& dir) {
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  return ::access(dir.c_str(), W_OK | X_OK) == 0;
}

/// Quotes a path for the shell command line.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

bool probe_cxx(const std::string& cxx) {
  if (cxx.empty()) return false;
  if (trace::enabled()) trace::counter_add("interp.toolchain_probe", 1);
  const std::string cmd = shq(cxx) + " --version >/dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

/// Resolves the host compiler once. GEMMTUNE_JIT_CXX, when set, is used
/// exclusively (even if unusable — that's how tests simulate a machine
/// without a toolchain); otherwise the compiler this library was built
/// with, then common names from PATH.
const std::string& toolchain_cxx() {
  std::lock_guard<std::mutex> lock(g_native_mutex);
  if (!g_probe_done) {
    g_probe_done = true;
    g_probe_cxx.clear();
    if (const char* env = std::getenv("GEMMTUNE_JIT_CXX")) {
      if (probe_cxx(env)) g_probe_cxx = env;
    } else {
      for (const char* cand :
           {GEMMTUNE_HOST_CXX, "c++", "g++", "clang++"}) {
        if (probe_cxx(cand)) {
          g_probe_cxx = cand;
          break;
        }
      }
    }
  }
  return g_probe_cxx;
}

/// FNV-1a 64 over the emitter version, JIT flags, and the cache key (the
/// serialized kernel plus the SIMD-mode suffix).
std::uint64_t jit_hash(const std::string& flags, const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const char* s, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(s[i]);
      h *= 1099511628211ull;
    }
  };
  mix(kEmitterVersion, std::strlen(kEmitterVersion));
  mix(flags.data(), flags.size());
  mix(key.data(), key.size());
  return h;
}

/// Lazily created process-lifetime temp directory for objects that have no
/// persistent home (no cache dir configured, or the configured one is
/// unwritable). Never cleaned up mid-process: dlopen'd objects must
/// outlive their NativeKernel.
const std::string& temp_dir() {
  std::lock_guard<std::mutex> lock(g_native_mutex);
  if (g_temp_dir.empty()) {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(base && *base ? base : "/tmp") + "/gemmtune-jit-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) != nullptr) g_temp_dir = buf.data();
  }
  return g_temp_dir;
}

/// The persistent cache directory, or "" when none is usable. Creates the
/// configured directory if absent (one level, like TunedDatabase).
std::string persistent_dir() {
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(g_native_mutex);
    dir = g_cache_dir_override;
  }
  if (dir.empty()) {
    if (const char* env = std::getenv("GEMMTUNE_JIT_CACHE")) dir = env;
  }
  if (dir.empty()) return "";
  if (!file_exists(dir)) ::mkdir(dir.c_str(), 0755);
  return dir_writable(dir) ? dir : "";
}

struct DlHandle {
  void* handle = nullptr;
  NativeEntryFn fn = nullptr;
  std::string error;
};

DlHandle dl_load(const std::string& so_path) {
  DlHandle out;
  out.handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (out.handle == nullptr) {
    const char* e = ::dlerror();
    out.error = strf("dlopen failed: %s", e != nullptr ? e : "unknown");
    return out;
  }
  out.fn = reinterpret_cast<NativeEntryFn>(
      ::dlsym(out.handle, kNativeEntrySymbol));
  if (out.fn == nullptr) {
    out.error = strf("symbol %s missing (stale cache object?)",
                     kNativeEntrySymbol);
    ::dlclose(out.handle);
    out.handle = nullptr;
  }
  return out;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  f.flush();
  return static_cast<bool>(f);
}

/// Runs the host compiler on `src_path`, producing `so_path` via a
/// temporary + rename. Returns "" on success, else the cause (with the
/// first compiler diagnostic line when available).
std::string run_jit_compiler(const std::string& cxx,
                             const std::string& flags,
                             const std::string& src_path,
                             const std::string& so_path) {
  const std::string tmp_so = so_path + strf(".tmp.%d", ::getpid());
  const std::string log = tmp_so + ".log";
  const std::string cmd = shq(cxx) + " " + flags + " -o " + shq(tmp_so) +
                          " " + shq(src_path) + " 2> " + shq(log);
  const int rc = std::system(cmd.c_str());
  std::string cause;
  if (rc != 0) {
    std::ifstream lf(log);
    std::string first_line;
    std::getline(lf, first_line);
    cause = strf("host compiler failed (exit %d)", rc);
    if (!first_line.empty()) cause += ": " + first_line;
    std::remove(tmp_so.c_str());
  } else if (std::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    cause = "rename into cache failed";
    std::remove(tmp_so.c_str());
  }
  std::remove(log.c_str());
  return cause;
}

/// Builds (or loads) the shared object for one kernel. On success returns
/// the NativeKernel; on failure returns null with the cause in `why`.
NativeKernelPtr jit_build(const Kernel& kernel, const std::string& key,
                          int simd_w, std::string* why) {
  const std::string flags = jit_flags_for(simd_w);
  const std::string so_name = strf("gemmtune-%016llx.so",
                                   static_cast<unsigned long long>(
                                       jit_hash(flags, key)));
  const std::string pdir = persistent_dir();

  // Warm start: a cached object needs no compiler at all.
  if (!pdir.empty()) {
    const std::string cached = pdir + "/" + so_name;
    if (file_exists(cached)) {
      DlHandle h = dl_load(cached);
      if (h.fn != nullptr) {
        if (trace::enabled())
          trace::counter_add("interp.native_disk_hits", 1);
        return std::make_shared<const NativeKernel>(h.handle, h.fn, cached);
      }
      // Stale or corrupt: fall through and rebuild over it.
    }
  }

  const std::string& cxx = toolchain_cxx();
  if (cxx.empty()) {
    if (why != nullptr) {
      const char* env = std::getenv("GEMMTUNE_JIT_CXX");
      *why = env != nullptr
                 ? strf("GEMMTUNE_JIT_CXX compiler '%s' is not usable", env)
                 : "no usable host C++ compiler found";
    }
    return nullptr;
  }

  std::string dir = pdir.empty() ? temp_dir() : pdir;
  if (dir.empty()) {
    if (why != nullptr) *why = "no writable directory for JIT objects";
    return nullptr;
  }

  const CompiledKernelPtr prog = get_or_compile(kernel);
  NativeEmitOptions opts;
  opts.simd_width = simd_w;
  const std::string source = emit_native_source(kernel, *prog, opts);
  const std::string src_path =
      dir + strf("/gemmtune-%016llx.%d.cpp",
                 static_cast<unsigned long long>(jit_hash(flags, key)),
                 ::getpid());
  if (!write_file(src_path, source)) {
    if (why != nullptr) *why = "cannot write JIT source to " + dir;
    return nullptr;
  }

  std::string so_path = dir + "/" + so_name;
  std::string cause;
  {
    trace::Span span("interp.native_jit");
    if (trace::enabled()) trace::counter_add("interp.native_compiles", 1);
    cause = run_jit_compiler(cxx, flags, src_path, so_path);
  }
  std::remove(src_path.c_str());
  if (!cause.empty()) {
    if (why != nullptr) *why = cause;
    return nullptr;
  }

  DlHandle h = dl_load(so_path);
  if (h.fn == nullptr) {
    if (why != nullptr) *why = h.error;
    return nullptr;
  }
  // Objects in the process temp dir are unlinked once mapped; the mapping
  // stays valid and the directory stays clean.
  if (pdir.empty()) std::remove(so_path.c_str());
  return std::make_shared<const NativeKernel>(h.handle, h.fn, so_path);
}

}  // namespace

NativeKernel::~NativeKernel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void set_jit_cache_dir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_native_mutex);
  g_cache_dir_override = dir;
}

bool native_toolchain_available() { return !toolchain_cxx().empty(); }

void set_native_simd_override(NativeSimd m) {
  g_simd_override.store(m, std::memory_order_relaxed);
}

int native_simd_width() {
  NativeSimd m = g_simd_override.load(std::memory_order_relaxed);
  if (m == NativeSimd::Auto) {
    if (const char* env = std::getenv("GEMMTUNE_NATIVE_SIMD")) {
      if (std::strcmp(env, "off") == 0) {
        m = NativeSimd::Off;
      } else if (std::strcmp(env, "on") == 0) {
        m = NativeSimd::On;
      } else {
        fail_unknown_value("GEMMTUNE_NATIVE_SIMD", env, {"on", "off"});
      }
    }
  }
  if (m == NativeSimd::Off) return 0;
  return probed_simd_width();
}

void reset_native_probe() {
  std::lock_guard<std::mutex> lock(g_native_mutex);
  g_probe_done = false;
  g_probe_cxx.clear();
}

NativeKernelPtr get_or_compile_native(const Kernel& kernel,
                                      std::string* why) {
  // The SIMD mode is part of the identity of a compiled object: scalar
  // and SIMD programs for the same kernel live in separate cache slots
  // (and separate hash-named .so files), so flipping the mode mid-process
  // never serves a stale object.
  const int simd_w = native_simd_width();
  std::string key = serialize_kernel(kernel);
  if (simd_w > 0) key += strf("#simd=w%d", simd_w);
  const NativeSlot slot = native_cache_lookup(key);
  if (slot.present) {
    if (slot.kernel) {
      if (trace::enabled()) trace::counter_add("interp.native_hits", 1);
      return slot.kernel;
    }
    if (why != nullptr) *why = "native compilation previously failed";
    return nullptr;
  }
  std::string cause;
  NativeKernelPtr nk = jit_build(kernel, key, simd_w, &cause);
  if (!nk) {
    native_cache_store(key, nullptr, true);
    if (why != nullptr) *why = cause;
    return nullptr;
  }
  return native_cache_store(key, std::move(nk), false);
}

void warn_native_fallback(const std::string& why) {
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (seen->insert(why).second) {
    std::fprintf(stderr,
                 "gemmtune: native backend unavailable (%s); "
                 "falling back to bytecode\n",
                 why.c_str());
  }
}

Counters native_run_range(const NativeKernel& nk, const LaunchPlan& plan,
                          std::int64_t begin, std::int64_t end) {
  const std::size_t n = plan.views.size();
  std::vector<double*> f64(n > 0 ? n : 1, nullptr);
  std::vector<float*> f32(n > 0 ? n : 1, nullptr);
  std::vector<long long> elems(n > 0 ? n : 1, 0);
  std::vector<long long> iargs(n > 0 ? n : 1, 0);
  std::vector<double> fargs(n > 0 ? n : 1, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    const LaunchPlan::ArgView& v = plan.views[a];
    f64[a] = v.f64;
    f32[a] = v.f32;
    elems[a] = v.elems;
    iargs[a] = v.i;
    fargs[a] = v.f;
  }
  unsigned long long raw[7] = {0, 0, 0, 0, 0, 0, 0};
  char err[640] = {0};
  const long long rc =
      nk.fn()(begin, end, plan.global[0], plan.global[1], plan.local[0],
              plan.local[1], f64.data(), f32.data(), elems.data(),
              iargs.data(), fargs.data(), raw, err,
              static_cast<long long>(sizeof err));
  if (rc != 0) {
    err[sizeof err - 1] = '\0';
    fail(err[0] != '\0' ? std::string(err)
                        : std::string("native kernel failed"));
  }
  Counters c;
  c.flops = raw[0];
  c.mads = raw[1];
  c.global_load_bytes = raw[2];
  c.global_store_bytes = raw[3];
  c.local_load_bytes = raw[4];
  c.local_store_bytes = raw[5];
  c.barriers = raw[6];
  return c;
}

}  // namespace gemmtune::ir
