// Bytecode virtual machine: instruction-major execution of a
// CompiledKernel. Every run-time check the tree-walker performs (launch
// validation, loop-bound uniformity, bounds, divide-by-zero, barrier
// divergence) is re-raised here with the same message text, and every
// counter is accumulated per work-item exactly where the tree would.
#include "kernelir/vm.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace gemmtune::ir {

LaunchPlan::LaunchPlan(const Kernel& k, std::array<std::int64_t, 2> g,
                       std::array<std::int64_t, 2> l,
                       const std::vector<ArgValue>& a)
    : kernel(&k), global(g), local(l), args(&a) {
  check(local[0] > 0 && local[1] > 0, "launch: empty work-group");
  check(global[0] > 0 && global[1] > 0, "launch: empty NDRange");
  check(global[0] % local[0] == 0 && global[1] % local[1] == 0,
        "launch: global size not a multiple of local size");
  if (k.reqd_local[0] > 0) {
    check(k.reqd_local[0] == local[0] && k.reqd_local[1] == local[1],
          "launch: work-group size violates reqd_work_group_size");
  }
  check(a.size() == k.args.size(), "launch: argument count mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool is_ptr = k.args[i].kind == ArgKind::GlobalPtr ||
                        k.args[i].kind == ArgKind::GlobalConstPtr;
    check(is_ptr == (a[i].buffer != nullptr),
          "launch: argument " + k.args[i].name + " kind mismatch");
  }
  ngx = global[0] / local[0];
  ngroups = ngx * (global[1] / local[1]);
  items_per_group = local[0] * local[1];
  for (const auto& sym : k.symbols) {
    if (sym.array_len == 0) {
      ++n_vars;
    } else if (sym.space == AddrSpace::Private) {
      ++n_parrays;
    } else {
      ++n_larrays;
    }
  }
  views.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ArgView& v = views[i];
    v.i = a[i].i;
    v.f = a[i].f;
    if (a[i].buffer) {
      simcl::Buffer& buf = *a[i].buffer;
      if (k.args[i].elem == Scalar::F64) {
        v.f64 = buf.as<double>();
        v.elems = static_cast<std::int64_t>(buf.size()) / 8;
      } else {
        v.f32 = buf.as<float>();
        v.elems = static_cast<std::int64_t>(buf.size()) / 4;
      }
    }
  }
}

VmMachine::VmMachine(const CompiledKernel& prog, const LaunchPlan& plan)
    : p_(prog), plan_(plan) {
  nitems_ = static_cast<int>(plan.items_per_group);
  u_.assign(static_cast<std::size_t>(p_.n_u), 0);
  vi_.assign(static_cast<std::size_t>(p_.n_vi) *
                 static_cast<std::size_t>(nitems_),
             0);
  vf_.assign(static_cast<std::size_t>(p_.n_vf) *
                 static_cast<std::size_t>(nitems_),
             0.0);
  parr_.assign(static_cast<std::size_t>(p_.parr_doubles) *
                   static_cast<std::size_t>(nitems_),
               0.0);
  larr_.assign(static_cast<std::size_t>(p_.larr_doubles), 0.0);
  mask_.assign(static_cast<std::size_t>(nitems_), 1);
  mask_stack_.resize(static_cast<std::size_t>(p_.max_mask_depth));
  for (auto& f : mask_stack_)
    f.saved.assign(static_cast<std::size_t>(nitems_), 1);
}

Counters VmMachine::run_range(std::int64_t begin, std::int64_t end) {
  for (std::int64_t g = begin; g < end; ++g)
    run_group(g % plan_.ngx, g / plan_.ngx);
  return counters_;
}

std::int64_t VmMachine::builtin_u(int fn_dim) const {
  const int dim = fn_dim & 1;
  const auto fn = static_cast<BuiltinFn>(fn_dim >> 1);
  const std::int64_t gid = dim == 0 ? gx_ : gy_;
  const std::int64_t lsz = plan_.local[static_cast<std::size_t>(dim)];
  const std::int64_t gsz = plan_.global[static_cast<std::size_t>(dim)];
  switch (fn) {
    case BuiltinFn::GroupId: return gid;
    case BuiltinFn::LocalSize: return lsz;
    case BuiltinFn::NumGroups: return gsz / lsz;
    default: break;
  }
  fail("interp: bad builtin");
}

void VmMachine::run_group(std::int64_t gx, std::int64_t gy) {
  gx_ = gx;
  gy_ = gy;
  const int ni = nitems_;
  const auto nu = static_cast<std::size_t>(ni);
  // Per-group state reset mirrors the tree's fresh Item/array vectors:
  // variables and slabs read as zero until written; temporaries are
  // provably written before read (their defining instruction dominates
  // every use in the same group).
  std::fill(u_.begin(), u_.end(), 0);
  std::fill(vi_.begin(), vi_.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(
                                               p_.n_vi_vars) *
                                           nu),
            0);
  std::fill(vf_.begin(), vf_.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(
                                               p_.n_vf_vars) *
                                           nu),
            0.0);
  std::fill(parr_.begin(), parr_.end(), 0.0);
  std::fill(larr_.begin(), larr_.end(), 0.0);
  std::fill(mask_.begin(), mask_.end(), 1);
  active_ = ni;
  mask_depth_ = 0;

  const Insn* code = p_.code.data();
  const std::int64_t lsx = plan_.local[0];
  std::int64_t pc = 0;
  for (;;) {
    const Insn& in = code[pc];
    ++pc;
    switch (in.op) {
      case Op::Halt:
        return;
      case Op::UConst:
        u_[static_cast<std::size_t>(in.dst)] = in.imm;
        break;
      case Op::UArg:
        u_[static_cast<std::size_t>(in.dst)] =
            plan_.views[static_cast<std::size_t>(in.a)].i;
        break;
      case Op::UBuiltin:
        u_[static_cast<std::size_t>(in.dst)] = builtin_u(in.aux);
        break;
      case Op::UAdd:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] +
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::USub:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] -
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::UMul:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] *
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::UDiv: {
        const std::int64_t d = u_[static_cast<std::size_t>(in.b)];
        if (d == 0) fail("interp: integer division by zero");
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] / d;
        break;
      }
      case Op::UMod: {
        const std::int64_t d = u_[static_cast<std::size_t>(in.b)];
        if (d == 0) fail("interp: integer modulo by zero");
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] % d;
        break;
      }
      case Op::ULt:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] <
                    u_[static_cast<std::size_t>(in.b)]
                ? 1
                : 0;
        break;
      case Op::UAnd:
        u_[static_cast<std::size_t>(in.dst)] =
            (u_[static_cast<std::size_t>(in.a)] != 0 &&
             u_[static_cast<std::size_t>(in.b)] != 0)
                ? 1
                : 0;
        break;
      case Op::UMov:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)];
        break;
      case Op::UStepCheck:
        if (u_[static_cast<std::size_t>(in.a)] <= 0)
          fail("for: non-positive step");
        break;
      case Op::VBuiltin: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const int dim = in.aux & 1;
        const auto fn = static_cast<BuiltinFn>(in.aux >> 1);
        for (int t = 0; t < ni; ++t) {
          const std::int64_t lid = dim == 0 ? t % lsx : t / lsx;
          switch (fn) {
            case BuiltinFn::LocalId:
              dst[t] = lid;
              break;
            case BuiltinFn::GlobalId:
              dst[t] = (dim == 0 ? gx_ : gy_) *
                           plan_.local[static_cast<std::size_t>(dim)] +
                       lid;
              break;
            default:
              dst[t] = builtin_u(in.aux);
              break;
          }
        }
        break;
      }
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VLt:
      case Op::VAnd: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* a =
            in.flags & kAUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b =
            in.flags & kBUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t au =
            a ? 0 : u_[static_cast<std::size_t>(in.a)];
        const std::int64_t bu =
            b ? 0 : u_[static_cast<std::size_t>(in.b)];
        for (int t = 0; t < ni; ++t) {
          const std::int64_t x = a ? a[t] : au;
          const std::int64_t y = b ? b[t] : bu;
          switch (in.op) {
            case Op::VAdd: dst[t] = x + y; break;
            case Op::VSub: dst[t] = x - y; break;
            case Op::VMul: dst[t] = x * y; break;
            case Op::VLt: dst[t] = x < y ? 1 : 0; break;
            default: dst[t] = (x != 0 && y != 0) ? 1 : 0; break;
          }
        }
        break;
      }
      case Op::VDiv:
      case Op::VMod: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* a =
            in.flags & kAUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b =
            in.flags & kBUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t au =
            a ? 0 : u_[static_cast<std::size_t>(in.a)];
        const std::int64_t bu =
            b ? 0 : u_[static_cast<std::size_t>(in.b)];
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t x = a ? a[t] : au;
          const std::int64_t y = b ? b[t] : bu;
          if (in.op == Op::VDiv) {
            if (y == 0) fail("interp: integer division by zero");
            dst[t] = x / y;
          } else {
            if (y == 0) fail("interp: integer modulo by zero");
            dst[t] = x % y;
          }
        }
        break;
      }
      case Op::VMovU: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t v = u_[static_cast<std::size_t>(in.a)];
        if (in.flags & kMasked) {
          for (int t = 0; t < ni; ++t)
            if (mask_[static_cast<std::size_t>(t)]) dst[t] = v;
        } else {
          for (int t = 0; t < ni; ++t) dst[t] = v;
        }
        break;
      }
      case Op::VMov: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* src = &vi_[static_cast<std::size_t>(in.a) * nu];
        if (in.flags & kMasked) {
          for (int t = 0; t < ni; ++t)
            if (mask_[static_cast<std::size_t>(t)]) dst[t] = src[t];
        } else {
          for (int t = 0; t < ni; ++t) dst[t] = src[t];
        }
        break;
      }
      case Op::FConst: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &p_.fpool[static_cast<std::size_t>(in.imm)];
        const int w = in.lanes;
        for (int t = 0; t < ni; ++t)
          for (int l = 0; l < w; ++l)
            dst[t * w + l] = src[l];
        break;
      }
      case Op::FArg: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        double x = plan_.views[static_cast<std::size_t>(in.a)].f;
        if (in.aux & kRoundF32)
          x = static_cast<double>(static_cast<float>(x));
        const int w = in.lanes;
        for (int t = 0; t < ni; ++t) {
          dst[t * w] = x;
          for (int l = 1; l < w; ++l) dst[t * w + l] = 0.0;
        }
        break;
      }
      case Op::FMov: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int dw = in.b, sw = in.c, n = in.lanes;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < n; ++l) dst[t * dw + l] = src[t * sw + l];
          for (int l = n; l < dw; ++l) dst[t * dw + l] = 0.0;
        }
        break;
      }
      case Op::FSplat: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int w = in.lanes, sw = in.aux;
        for (int t = 0; t < ni; ++t) {
          const double x = src[t * sw];
          for (int l = 0; l < w; ++l) dst[t * w + l] = x;
        }
        break;
      }
      case Op::FLane: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int sw = in.aux;
        const auto ln = static_cast<int>(in.imm);
        for (int t = 0; t < ni; ++t)
          dst[t] = ln < sw ? src[t * sw + ln] : 0.0;
        break;
      }
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* a = &vf_[static_cast<std::size_t>(in.a) * nu];
        const double* b = &vf_[static_cast<std::size_t>(in.b) * nu];
        const int w = in.lanes;
        const bool rnd = in.aux & kRoundF32;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < w; ++l) {
            double r = 0;
            if (in.op == Op::FAdd) r = a[t * w + l] + b[t * w + l];
            if (in.op == Op::FSub) r = a[t * w + l] - b[t * w + l];
            if (in.op == Op::FMul) r = a[t * w + l] * b[t * w + l];
            dst[t * w + l] =
                rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += static_cast<std::uint64_t>(w);
        }
        break;
      }
      case Op::FMad: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* a = &vf_[static_cast<std::size_t>(in.a) * nu];
        const double* b = &vf_[static_cast<std::size_t>(in.b) * nu];
        const double* c = &vf_[static_cast<std::size_t>(in.c) * nu];
        const int w = in.lanes;
        const bool rnd = in.aux & kRoundF32;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < w; ++l) {
            const double r =
                a[t * w + l] * b[t * w + l] + c[t * w + l];
            dst[t * w + l] =
                rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += 2u * static_cast<std::uint64_t>(w);
          ++counters_.mads;
        }
        break;
      }
      case Op::FmaPP: {
        // Fused rank-1 update step: Cpm[ci..] = a * Bpm[bi..] + Cpm[ci..]
        // per item, private addressing resolved at compile time. Counters
        // match the tree's Mad evaluation (private traffic counts none).
        const ArrayRef& cr = p_.arrays[static_cast<std::size_t>(in.a)];
        const ArrayRef& br = p_.arrays[static_cast<std::size_t>(in.b)];
        const double* av = &vf_[static_cast<std::size_t>(in.c) * nu];
        const int w = in.lanes;
        const int stride = in.aux >> 3;
        const bool rnd = in.aux & kRoundF32;
        const std::int64_t coff = cr.offset + in.dst;
        const std::int64_t boff = br.offset + in.imm;
        for (int t = 0; t < ni; ++t) {
          double* pa = &parr_[static_cast<std::size_t>(t) *
                              static_cast<std::size_t>(p_.parr_doubles)];
          double* cp = pa + coff;
          const double* bp = pa + boff;
          const double* ap = av + t * stride;
          for (int l = 0; l < w; ++l) {
            const double r = ap[l] * bp[l] + cp[l];
            cp[l] = rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += 2u * static_cast<std::uint64_t>(w);
          ++counters_.mads;
        }
        break;
      }
      case Op::SplatLaneP: {
        // Fused avec = splat(lane(Apm[imm])): one private read splatted
        // into the variable's slab, zero-filled to its full width.
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const int w = in.lanes, dw = in.b;
        const std::int64_t off = ar.offset + in.imm;
        for (int t = 0; t < ni; ++t) {
          const double x = parr_[static_cast<std::size_t>(t) *
                                     static_cast<std::size_t>(
                                         p_.parr_doubles) +
                                 static_cast<std::size_t>(off)];
          for (int l = 0; l < w; ++l) dst[t * dw + l] = x;
          for (int l = w; l < dw; ++l) dst[t * dw + l] = 0.0;
        }
        break;
      }
      case Op::LoadG:
      case Op::StoreG: {
        const bool is_store = in.op == Op::StoreG;
        const LaunchPlan::ArgView& view =
            plan_.views[static_cast<std::size_t>(in.a)];
        const int w = in.lanes;
        const bool f32 = in.aux & kElemF32;
        const int ebytes = f32 ? 4 : 8;
        const bool masked = in.flags & kMasked;
        const std::int64_t* addr_v =
            (in.flags & (kImmAddr | kBUni))
                ? nullptr
                : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t addr_u =
            in.flags & kImmAddr
                ? in.imm
                : (addr_v ? 0 : u_[static_cast<std::size_t>(in.b)]);
        double* dst = is_store
                          ? nullptr
                          : &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* val =
            is_store ? &vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
          if (idx < 0 || idx + w > view.elems)
            fail(strf("global %s out of range: index %lld + %d lanes, "
                      "buffer %lld elements",
                      is_store ? "store" : "load",
                      static_cast<long long>(idx), w,
                      static_cast<long long>(view.elems)));
          if (is_store) {
            if (f32) {
              for (int l = 0; l < w; ++l)
                view.f32[idx + l] =
                    static_cast<float>(val[t * w + l]);
            } else {
              for (int l = 0; l < w; ++l)
                view.f64[idx + l] = val[t * w + l];
            }
          } else {
            if (f32) {
              for (int l = 0; l < w; ++l)
                dst[t * w + l] =
                    static_cast<double>(view.f32[idx + l]);
            } else {
              for (int l = 0; l < w; ++l) dst[t * w + l] = view.f64[idx + l];
            }
          }
          const auto bytes = static_cast<std::uint64_t>(w) *
                             static_cast<std::uint64_t>(ebytes);
          if (is_store) {
            counters_.global_store_bytes += bytes;
          } else {
            counters_.global_load_bytes += bytes;
          }
        }
        break;
      }
      case Op::LoadL:
      case Op::StoreL:
      case Op::LoadP:
      case Op::StoreP: {
        const bool is_store = in.op == Op::StoreL || in.op == Op::StoreP;
        const bool local = in.op == Op::LoadL || in.op == Op::StoreL;
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        const int w = in.lanes;
        const bool masked = in.flags & kMasked;
        const std::int64_t* addr_v =
            (in.flags & (kImmAddr | kBUni))
                ? nullptr
                : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t addr_u =
            in.flags & kImmAddr
                ? in.imm
                : (addr_v ? 0 : u_[static_cast<std::size_t>(in.b)]);
        double* dst = is_store
                          ? nullptr
                          : &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* val =
            is_store ? &vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
        const auto bytes = static_cast<std::uint64_t>(w) *
                           (in.aux & kCount8 ? 8u : 4u);
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
          if (idx < 0 || idx + w > ar.len)
            fail(strf("%s array '%s' %s out of range: index %lld + %d "
                      "lanes, %zu elements",
                      local ? "local" : "private", ar.name.c_str(),
                      is_store ? "store" : "load",
                      static_cast<long long>(idx), w,
                      static_cast<std::size_t>(ar.len)));
          double* slab =
              local ? larr_.data()
                    : &parr_[static_cast<std::size_t>(t) *
                             static_cast<std::size_t>(p_.parr_doubles)];
          double* p = slab + ar.offset + idx;
          if (is_store) {
            for (int l = 0; l < w; ++l) p[l] = val[t * w + l];
            if (local) counters_.local_store_bytes += bytes;
          } else {
            for (int l = 0; l < w; ++l) dst[t * w + l] = p[l];
            if (local) counters_.local_load_bytes += bytes;
          }
        }
        break;
      }
      case Op::Jmp:
        pc = in.imm;
        break;
      case Op::JzU:
        if (u_[static_cast<std::size_t>(in.a)] == 0) pc = in.imm;
        break;
      case Op::JgeU:
        if (u_[static_cast<std::size_t>(in.a)] >=
            u_[static_cast<std::size_t>(in.b)])
          pc = in.imm;
        break;
      case Op::JNone:
        if (active_ == 0) pc = in.imm;
        break;
      case Op::ForCheckV: {
        // The tree evaluates loop bounds at the first active item, then
        // verifies every active item agrees before checking the step.
        const std::int64_t* a = &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b = &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t* c = &vi_[static_cast<std::size_t>(in.c) * nu];
        int first = -1;
        for (int t = 0; t < ni; ++t) {
          if (mask_[static_cast<std::size_t>(t)]) {
            first = t;
            break;
          }
        }
        if (first < 0) {
          pc = in.imm;
          break;
        }
        const std::int64_t init = a[first], lim = b[first], stp = c[first];
        for (int t = first; t < ni; ++t) {
          if (!mask_[static_cast<std::size_t>(t)]) continue;
          if (a[t] != init || b[t] != lim || c[t] != stp)
            fail("for: non-uniform loop bounds across work-group");
        }
        if (stp <= 0) fail("for: non-positive step");
        u_[static_cast<std::size_t>(in.dst)] = init;
        u_[static_cast<std::size_t>(in.dst) + 1] = lim;
        u_[static_cast<std::size_t>(in.dst) + 2] = stp;
        break;
      }
      case Op::MaskPush: {
        MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
        ++mask_depth_;
        f.saved = mask_;
        f.cond = in.a;
        f.saved_active = active_;
        const std::int64_t* c = &vi_[static_cast<std::size_t>(in.a) * nu];
        int n = 0;
        for (int t = 0; t < ni; ++t) {
          auto& m = mask_[static_cast<std::size_t>(t)];
          m = m && c[t] != 0 ? 1 : 0;
          n += m;
        }
        active_ = n;
        break;
      }
      case Op::MaskFlip: {
        MaskFrame& f =
            mask_stack_[static_cast<std::size_t>(mask_depth_ - 1)];
        const std::int64_t* c =
            &vi_[static_cast<std::size_t>(f.cond) * nu];
        int n = 0;
        for (int t = 0; t < ni; ++t) {
          auto& m = mask_[static_cast<std::size_t>(t)];
          m = f.saved[static_cast<std::size_t>(t)] && c[t] == 0 ? 1 : 0;
          n += m;
        }
        active_ = n;
        break;
      }
      case Op::MaskPop: {
        --mask_depth_;
        MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
        mask_.swap(f.saved);
        active_ = f.saved_active;
        break;
      }
      case Op::Barrier:
        for (char m : mask_)
          if (m == 0) fail("barrier inside divergent control flow");
        ++counters_.barriers;
        break;
      case Op::Throw:
        fail(p_.messages[static_cast<std::size_t>(in.imm)]);
    }
  }
}

}  // namespace gemmtune::ir
