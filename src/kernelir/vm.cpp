// Bytecode virtual machine: instruction-major execution of a
// CompiledKernel. Every run-time check the tree-walker performs (launch
// validation, loop-bound uniformity, bounds, divide-by-zero, barrier
// divergence) is re-raised here with the same message text, and every
// counter is accumulated per work-item exactly where the tree would.
#include "kernelir/vm.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/keyval.hpp"
#include "common/strings.hpp"

// Threaded-code dispatch needs the GNU labels-as-values extension
// (computed goto). GCC and Clang both provide it; anything else falls
// back to the portable switch executor.
#if defined(__GNUC__) || defined(__clang__)
#define GEMMTUNE_VM_THREADED 1
#else
#define GEMMTUNE_VM_THREADED 0
#endif

namespace gemmtune::ir {

LaunchPlan::LaunchPlan(const Kernel& k, std::array<std::int64_t, 2> g,
                       std::array<std::int64_t, 2> l,
                       const std::vector<ArgValue>& a)
    : kernel(&k), global(g), local(l), args(&a) {
  check(local[0] > 0 && local[1] > 0, "launch: empty work-group");
  check(global[0] > 0 && global[1] > 0, "launch: empty NDRange");
  check(global[0] % local[0] == 0 && global[1] % local[1] == 0,
        "launch: global size not a multiple of local size");
  if (k.reqd_local[0] > 0) {
    check(k.reqd_local[0] == local[0] && k.reqd_local[1] == local[1],
          "launch: work-group size violates reqd_work_group_size");
  }
  check(a.size() == k.args.size(), "launch: argument count mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool is_ptr = k.args[i].kind == ArgKind::GlobalPtr ||
                        k.args[i].kind == ArgKind::GlobalConstPtr;
    check(is_ptr == (a[i].buffer != nullptr),
          "launch: argument " + k.args[i].name + " kind mismatch");
  }
  ngx = global[0] / local[0];
  ngroups = ngx * (global[1] / local[1]);
  items_per_group = local[0] * local[1];
  for (const auto& sym : k.symbols) {
    if (sym.array_len == 0) {
      ++n_vars;
    } else if (sym.space == AddrSpace::Private) {
      ++n_parrays;
    } else {
      ++n_larrays;
    }
  }
  views.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ArgView& v = views[i];
    v.i = a[i].i;
    v.f = a[i].f;
    if (a[i].buffer) {
      simcl::Buffer& buf = *a[i].buffer;
      if (k.args[i].elem == Scalar::F64) {
        v.f64 = buf.as<double>();
        v.elems = static_cast<std::int64_t>(buf.size()) / 8;
      } else {
        v.f32 = buf.as<float>();
        v.elems = static_cast<std::int64_t>(buf.size()) / 4;
      }
    }
  }
}

namespace {
std::atomic<VmDispatch> g_dispatch_override{VmDispatch::Auto};
}  // namespace

void set_vm_dispatch_override(VmDispatch d) {
  g_dispatch_override.store(d, std::memory_order_relaxed);
}

bool vm_threaded_dispatch_supported() { return GEMMTUNE_VM_THREADED != 0; }

VmDispatch resolve_vm_dispatch(VmDispatch requested) {
  VmDispatch d = requested;
  if (d == VmDispatch::Auto)
    d = g_dispatch_override.load(std::memory_order_relaxed);
  if (d == VmDispatch::Auto) {
    if (const char* env = std::getenv("GEMMTUNE_VM_DISPATCH")) {
      if (std::strcmp(env, "switch") == 0) {
        d = VmDispatch::Switch;
      } else if (std::strcmp(env, "threaded") == 0) {
        d = VmDispatch::Threaded;
      } else {
        fail_unknown_value("GEMMTUNE_VM_DISPATCH", env,
                           {"switch", "threaded"});
      }
    }
  }
  if (d == VmDispatch::Auto) d = VmDispatch::Threaded;
  if (d == VmDispatch::Threaded && !vm_threaded_dispatch_supported())
    d = VmDispatch::Switch;
  return d;
}

const char* to_string(VmDispatch d) {
  switch (d) {
    case VmDispatch::Auto: return "auto";
    case VmDispatch::Switch: return "switch";
    case VmDispatch::Threaded: return "threaded";
  }
  return "auto";
}

VmMachine::VmMachine(const CompiledKernel& prog, const LaunchPlan& plan)
    : p_(prog), plan_(plan) {
  threaded_ = resolve_vm_dispatch() == VmDispatch::Threaded;
  nitems_ = static_cast<int>(plan.items_per_group);
  u_.assign(static_cast<std::size_t>(p_.n_u), 0);
  vi_.assign(static_cast<std::size_t>(p_.n_vi) *
                 static_cast<std::size_t>(nitems_),
             0);
  vf_.assign(static_cast<std::size_t>(p_.n_vf) *
                 static_cast<std::size_t>(nitems_),
             0.0);
  parr_.assign(static_cast<std::size_t>(p_.parr_doubles) *
                   static_cast<std::size_t>(nitems_),
               0.0);
  larr_.assign(static_cast<std::size_t>(p_.larr_doubles), 0.0);
  mask_.assign(static_cast<std::size_t>(nitems_), 1);
  mask_stack_.resize(static_cast<std::size_t>(p_.max_mask_depth));
  for (auto& f : mask_stack_)
    f.saved.assign(static_cast<std::size_t>(nitems_), 1);
}

Counters VmMachine::run_range(std::int64_t begin, std::int64_t end) {
  for (std::int64_t g = begin; g < end; ++g)
    run_group(g % plan_.ngx, g / plan_.ngx);
  return counters_;
}

std::int64_t VmMachine::builtin_u(int fn_dim) const {
  const int dim = fn_dim & 1;
  const auto fn = static_cast<BuiltinFn>(fn_dim >> 1);
  const std::int64_t gid = dim == 0 ? gx_ : gy_;
  const std::int64_t lsz = plan_.local[static_cast<std::size_t>(dim)];
  const std::int64_t gsz = plan_.global[static_cast<std::size_t>(dim)];
  switch (fn) {
    case BuiltinFn::GroupId: return gid;
    case BuiltinFn::LocalSize: return lsz;
    case BuiltinFn::NumGroups: return gsz / lsz;
    default: break;
  }
  fail("interp: bad builtin");
}

void VmMachine::run_group(std::int64_t gx, std::int64_t gy) {
  gx_ = gx;
  gy_ = gy;
  const int ni = nitems_;
  const auto nu = static_cast<std::size_t>(ni);
  // Per-group state reset mirrors the tree's fresh Item/array vectors:
  // variables and slabs read as zero until written; temporaries are
  // provably written before read (their defining instruction dominates
  // every use in the same group).
  std::fill(u_.begin(), u_.end(), 0);
  std::fill(vi_.begin(), vi_.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(
                                               p_.n_vi_vars) *
                                           nu),
            0);
  std::fill(vf_.begin(), vf_.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(
                                               p_.n_vf_vars) *
                                           nu),
            0.0);
  std::fill(parr_.begin(), parr_.end(), 0.0);
  std::fill(larr_.begin(), larr_.end(), 0.0);
  std::fill(mask_.begin(), mask_.end(), 1);
  active_ = ni;
  mask_depth_ = 0;
  if (threaded_) {
    run_group_threaded();
  } else {
    run_group_switch();
  }
}

void VmMachine::run_group_switch() {
  const int ni = nitems_;
  const auto nu = static_cast<std::size_t>(ni);
  const Insn* code = p_.code.data();
  const std::int64_t lsx = plan_.local[0];
  std::int64_t pc = 0;
  for (;;) {
    const Insn& in = code[pc];
    ++pc;
    switch (in.op) {
      case Op::Halt:
        return;
      case Op::UConst:
        u_[static_cast<std::size_t>(in.dst)] = in.imm;
        break;
      case Op::UArg:
        u_[static_cast<std::size_t>(in.dst)] =
            plan_.views[static_cast<std::size_t>(in.a)].i;
        break;
      case Op::UBuiltin:
        u_[static_cast<std::size_t>(in.dst)] = builtin_u(in.aux);
        break;
      case Op::UAdd:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] +
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::USub:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] -
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::UMul:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] *
            u_[static_cast<std::size_t>(in.b)];
        break;
      case Op::UDiv: {
        const std::int64_t d = u_[static_cast<std::size_t>(in.b)];
        if (d == 0) fail("interp: integer division by zero");
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] / d;
        break;
      }
      case Op::UMod: {
        const std::int64_t d = u_[static_cast<std::size_t>(in.b)];
        if (d == 0) fail("interp: integer modulo by zero");
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] % d;
        break;
      }
      case Op::ULt:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)] <
                    u_[static_cast<std::size_t>(in.b)]
                ? 1
                : 0;
        break;
      case Op::UAnd:
        u_[static_cast<std::size_t>(in.dst)] =
            (u_[static_cast<std::size_t>(in.a)] != 0 &&
             u_[static_cast<std::size_t>(in.b)] != 0)
                ? 1
                : 0;
        break;
      case Op::UMov:
        u_[static_cast<std::size_t>(in.dst)] =
            u_[static_cast<std::size_t>(in.a)];
        break;
      case Op::UStepCheck:
        if (u_[static_cast<std::size_t>(in.a)] <= 0)
          fail("for: non-positive step");
        break;
      case Op::VBuiltin: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const int dim = in.aux & 1;
        const auto fn = static_cast<BuiltinFn>(in.aux >> 1);
        for (int t = 0; t < ni; ++t) {
          const std::int64_t lid = dim == 0 ? t % lsx : t / lsx;
          switch (fn) {
            case BuiltinFn::LocalId:
              dst[t] = lid;
              break;
            case BuiltinFn::GlobalId:
              dst[t] = (dim == 0 ? gx_ : gy_) *
                           plan_.local[static_cast<std::size_t>(dim)] +
                       lid;
              break;
            default:
              dst[t] = builtin_u(in.aux);
              break;
          }
        }
        break;
      }
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VLt:
      case Op::VAnd: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* a =
            in.flags & kAUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b =
            in.flags & kBUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t au =
            a ? 0 : u_[static_cast<std::size_t>(in.a)];
        const std::int64_t bu =
            b ? 0 : u_[static_cast<std::size_t>(in.b)];
        for (int t = 0; t < ni; ++t) {
          const std::int64_t x = a ? a[t] : au;
          const std::int64_t y = b ? b[t] : bu;
          switch (in.op) {
            case Op::VAdd: dst[t] = x + y; break;
            case Op::VSub: dst[t] = x - y; break;
            case Op::VMul: dst[t] = x * y; break;
            case Op::VLt: dst[t] = x < y ? 1 : 0; break;
            default: dst[t] = (x != 0 && y != 0) ? 1 : 0; break;
          }
        }
        break;
      }
      case Op::VDiv:
      case Op::VMod: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* a =
            in.flags & kAUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b =
            in.flags & kBUni ? nullptr
                             : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t au =
            a ? 0 : u_[static_cast<std::size_t>(in.a)];
        const std::int64_t bu =
            b ? 0 : u_[static_cast<std::size_t>(in.b)];
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t x = a ? a[t] : au;
          const std::int64_t y = b ? b[t] : bu;
          if (in.op == Op::VDiv) {
            if (y == 0) fail("interp: integer division by zero");
            dst[t] = x / y;
          } else {
            if (y == 0) fail("interp: integer modulo by zero");
            dst[t] = x % y;
          }
        }
        break;
      }
      case Op::VMovU: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t v = u_[static_cast<std::size_t>(in.a)];
        if (in.flags & kMasked) {
          for (int t = 0; t < ni; ++t)
            if (mask_[static_cast<std::size_t>(t)]) dst[t] = v;
        } else {
          for (int t = 0; t < ni; ++t) dst[t] = v;
        }
        break;
      }
      case Op::VMov: {
        std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
        const std::int64_t* src = &vi_[static_cast<std::size_t>(in.a) * nu];
        if (in.flags & kMasked) {
          for (int t = 0; t < ni; ++t)
            if (mask_[static_cast<std::size_t>(t)]) dst[t] = src[t];
        } else {
          for (int t = 0; t < ni; ++t) dst[t] = src[t];
        }
        break;
      }
      case Op::FConst: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &p_.fpool[static_cast<std::size_t>(in.imm)];
        const int w = in.lanes;
        for (int t = 0; t < ni; ++t)
          for (int l = 0; l < w; ++l)
            dst[t * w + l] = src[l];
        break;
      }
      case Op::FArg: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        double x = plan_.views[static_cast<std::size_t>(in.a)].f;
        if (in.aux & kRoundF32)
          x = static_cast<double>(static_cast<float>(x));
        const int w = in.lanes;
        for (int t = 0; t < ni; ++t) {
          dst[t * w] = x;
          for (int l = 1; l < w; ++l) dst[t * w + l] = 0.0;
        }
        break;
      }
      case Op::FMov: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int dw = in.b, sw = in.c, n = in.lanes;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < n; ++l) dst[t * dw + l] = src[t * sw + l];
          for (int l = n; l < dw; ++l) dst[t * dw + l] = 0.0;
        }
        break;
      }
      case Op::FSplat: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int w = in.lanes, sw = in.aux;
        for (int t = 0; t < ni; ++t) {
          const double x = src[t * sw];
          for (int l = 0; l < w; ++l) dst[t * w + l] = x;
        }
        break;
      }
      case Op::FLane: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
        const int sw = in.aux;
        const auto ln = static_cast<int>(in.imm);
        for (int t = 0; t < ni; ++t)
          dst[t] = ln < sw ? src[t * sw + ln] : 0.0;
        break;
      }
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* a = &vf_[static_cast<std::size_t>(in.a) * nu];
        const double* b = &vf_[static_cast<std::size_t>(in.b) * nu];
        const int w = in.lanes;
        const bool rnd = in.aux & kRoundF32;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < w; ++l) {
            double r = 0;
            if (in.op == Op::FAdd) r = a[t * w + l] + b[t * w + l];
            if (in.op == Op::FSub) r = a[t * w + l] - b[t * w + l];
            if (in.op == Op::FMul) r = a[t * w + l] * b[t * w + l];
            dst[t * w + l] =
                rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += static_cast<std::uint64_t>(w);
        }
        break;
      }
      case Op::FMad: {
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* a = &vf_[static_cast<std::size_t>(in.a) * nu];
        const double* b = &vf_[static_cast<std::size_t>(in.b) * nu];
        const double* c = &vf_[static_cast<std::size_t>(in.c) * nu];
        const int w = in.lanes;
        const bool rnd = in.aux & kRoundF32;
        const bool masked = in.flags & kMasked;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          for (int l = 0; l < w; ++l) {
            const double r =
                a[t * w + l] * b[t * w + l] + c[t * w + l];
            dst[t * w + l] =
                rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += 2u * static_cast<std::uint64_t>(w);
          ++counters_.mads;
        }
        break;
      }
      case Op::FmaPP: {
        // Fused rank-1 update step: Cpm[ci..] = a * Bpm[bi..] + Cpm[ci..]
        // per item, private addressing resolved at compile time. Counters
        // match the tree's Mad evaluation (private traffic counts none).
        const ArrayRef& cr = p_.arrays[static_cast<std::size_t>(in.a)];
        const ArrayRef& br = p_.arrays[static_cast<std::size_t>(in.b)];
        const double* av = &vf_[static_cast<std::size_t>(in.c) * nu];
        const int w = in.lanes;
        const int stride = in.aux >> 3;
        const bool rnd = in.aux & kRoundF32;
        const std::int64_t coff = cr.offset + in.dst;
        const std::int64_t boff = br.offset + in.imm;
        for (int t = 0; t < ni; ++t) {
          double* pa = &parr_[static_cast<std::size_t>(t) *
                              static_cast<std::size_t>(p_.parr_doubles)];
          double* cp = pa + coff;
          const double* bp = pa + boff;
          const double* ap = av + t * stride;
          for (int l = 0; l < w; ++l) {
            const double r = ap[l] * bp[l] + cp[l];
            cp[l] = rnd ? static_cast<double>(static_cast<float>(r)) : r;
          }
          counters_.flops += 2u * static_cast<std::uint64_t>(w);
          ++counters_.mads;
        }
        break;
      }
      case Op::SplatLaneP: {
        // Fused avec = splat(lane(Apm[imm])): one private read splatted
        // into the variable's slab, zero-filled to its full width.
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
        const int w = in.lanes, dw = in.b;
        const std::int64_t off = ar.offset + in.imm;
        for (int t = 0; t < ni; ++t) {
          const double x = parr_[static_cast<std::size_t>(t) *
                                     static_cast<std::size_t>(
                                         p_.parr_doubles) +
                                 static_cast<std::size_t>(off)];
          for (int l = 0; l < w; ++l) dst[t * dw + l] = x;
          for (int l = w; l < dw; ++l) dst[t * dw + l] = 0.0;
        }
        break;
      }
      case Op::LoadG:
      case Op::StoreG: {
        const bool is_store = in.op == Op::StoreG;
        const LaunchPlan::ArgView& view =
            plan_.views[static_cast<std::size_t>(in.a)];
        const int w = in.lanes;
        const bool f32 = in.aux & kElemF32;
        const int ebytes = f32 ? 4 : 8;
        const bool masked = in.flags & kMasked;
        const std::int64_t* addr_v =
            (in.flags & (kImmAddr | kBUni))
                ? nullptr
                : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t addr_u =
            in.flags & kImmAddr
                ? in.imm
                : (addr_v ? 0 : u_[static_cast<std::size_t>(in.b)]);
        double* dst = is_store
                          ? nullptr
                          : &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* val =
            is_store ? &vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
          if (idx < 0 || idx + w > view.elems)
            fail(strf("global %s out of range: index %lld + %d lanes, "
                      "buffer %lld elements",
                      is_store ? "store" : "load",
                      static_cast<long long>(idx), w,
                      static_cast<long long>(view.elems)));
          if (is_store) {
            if (f32) {
              for (int l = 0; l < w; ++l)
                view.f32[idx + l] =
                    static_cast<float>(val[t * w + l]);
            } else {
              for (int l = 0; l < w; ++l)
                view.f64[idx + l] = val[t * w + l];
            }
          } else {
            if (f32) {
              for (int l = 0; l < w; ++l)
                dst[t * w + l] =
                    static_cast<double>(view.f32[idx + l]);
            } else {
              for (int l = 0; l < w; ++l) dst[t * w + l] = view.f64[idx + l];
            }
          }
          const auto bytes = static_cast<std::uint64_t>(w) *
                             static_cast<std::uint64_t>(ebytes);
          if (is_store) {
            counters_.global_store_bytes += bytes;
          } else {
            counters_.global_load_bytes += bytes;
          }
        }
        break;
      }
      case Op::LoadL:
      case Op::StoreL:
      case Op::LoadP:
      case Op::StoreP: {
        const bool is_store = in.op == Op::StoreL || in.op == Op::StoreP;
        const bool local = in.op == Op::LoadL || in.op == Op::StoreL;
        const ArrayRef& ar = p_.arrays[static_cast<std::size_t>(in.a)];
        const int w = in.lanes;
        const bool masked = in.flags & kMasked;
        const std::int64_t* addr_v =
            (in.flags & (kImmAddr | kBUni))
                ? nullptr
                : &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t addr_u =
            in.flags & kImmAddr
                ? in.imm
                : (addr_v ? 0 : u_[static_cast<std::size_t>(in.b)]);
        double* dst = is_store
                          ? nullptr
                          : &vf_[static_cast<std::size_t>(in.dst) * nu];
        const double* val =
            is_store ? &vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
        const auto bytes = static_cast<std::uint64_t>(w) *
                           (in.aux & kCount8 ? 8u : 4u);
        for (int t = 0; t < ni; ++t) {
          if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
          const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
          if (idx < 0 || idx + w > ar.len)
            fail(strf("%s array '%s' %s out of range: index %lld + %d "
                      "lanes, %zu elements",
                      local ? "local" : "private", ar.name.c_str(),
                      is_store ? "store" : "load",
                      static_cast<long long>(idx), w,
                      static_cast<std::size_t>(ar.len)));
          double* slab =
              local ? larr_.data()
                    : &parr_[static_cast<std::size_t>(t) *
                             static_cast<std::size_t>(p_.parr_doubles)];
          double* p = slab + ar.offset + idx;
          if (is_store) {
            for (int l = 0; l < w; ++l) p[l] = val[t * w + l];
            if (local) counters_.local_store_bytes += bytes;
          } else {
            for (int l = 0; l < w; ++l) dst[t * w + l] = p[l];
            if (local) counters_.local_load_bytes += bytes;
          }
        }
        break;
      }
      case Op::Jmp:
        pc = in.imm;
        break;
      case Op::JzU:
        if (u_[static_cast<std::size_t>(in.a)] == 0) pc = in.imm;
        break;
      case Op::JgeU:
        if (u_[static_cast<std::size_t>(in.a)] >=
            u_[static_cast<std::size_t>(in.b)])
          pc = in.imm;
        break;
      case Op::JNone:
        if (active_ == 0) pc = in.imm;
        break;
      case Op::ForCheckV: {
        // The tree evaluates loop bounds at the first active item, then
        // verifies every active item agrees before checking the step.
        const std::int64_t* a = &vi_[static_cast<std::size_t>(in.a) * nu];
        const std::int64_t* b = &vi_[static_cast<std::size_t>(in.b) * nu];
        const std::int64_t* c = &vi_[static_cast<std::size_t>(in.c) * nu];
        int first = -1;
        for (int t = 0; t < ni; ++t) {
          if (mask_[static_cast<std::size_t>(t)]) {
            first = t;
            break;
          }
        }
        if (first < 0) {
          pc = in.imm;
          break;
        }
        const std::int64_t init = a[first], lim = b[first], stp = c[first];
        for (int t = first; t < ni; ++t) {
          if (!mask_[static_cast<std::size_t>(t)]) continue;
          if (a[t] != init || b[t] != lim || c[t] != stp)
            fail("for: non-uniform loop bounds across work-group");
        }
        if (stp <= 0) fail("for: non-positive step");
        u_[static_cast<std::size_t>(in.dst)] = init;
        u_[static_cast<std::size_t>(in.dst) + 1] = lim;
        u_[static_cast<std::size_t>(in.dst) + 2] = stp;
        break;
      }
      case Op::MaskPush: {
        MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
        ++mask_depth_;
        f.saved = mask_;
        f.cond = in.a;
        f.saved_active = active_;
        const std::int64_t* c = &vi_[static_cast<std::size_t>(in.a) * nu];
        int n = 0;
        for (int t = 0; t < ni; ++t) {
          auto& m = mask_[static_cast<std::size_t>(t)];
          m = m && c[t] != 0 ? 1 : 0;
          n += m;
        }
        active_ = n;
        break;
      }
      case Op::MaskFlip: {
        MaskFrame& f =
            mask_stack_[static_cast<std::size_t>(mask_depth_ - 1)];
        const std::int64_t* c =
            &vi_[static_cast<std::size_t>(f.cond) * nu];
        int n = 0;
        for (int t = 0; t < ni; ++t) {
          auto& m = mask_[static_cast<std::size_t>(t)];
          m = f.saved[static_cast<std::size_t>(t)] && c[t] == 0 ? 1 : 0;
          n += m;
        }
        active_ = n;
        break;
      }
      case Op::MaskPop: {
        --mask_depth_;
        MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
        mask_.swap(f.saved);
        active_ = f.saved_active;
        break;
      }
      case Op::Barrier:
        for (char m : mask_)
          if (m == 0) fail("barrier inside divergent control flow");
        ++counters_.barriers;
        break;
      case Op::Throw:
        fail(p_.messages[static_cast<std::size_t>(in.imm)]);
    }
  }
}

// Shared op bodies for the threaded executor's specialized handlers. Each
// template bakes the operand shape the pre-decoder proved for one
// instruction — lane width W (0 keeps it a runtime value), f32 rounding
// RND, divergence masking MASKED, operand uniformity — so the optimizer
// unrolls the lane loops and drops the dead tests the switch executor
// re-evaluates per item. Every body replicates run_group_switch exactly:
// same evaluation order, same counter totals, same error messages. f32
// rounding chains keep the runtime-width loop shape (W == 0) the switch
// executor compiles from, so the host build cannot reorganize them
// differently between the two dispatch modes.
struct VmMachine::Ops {
  template <Op OPK, int W, bool RND, bool MASKED>
  static void fbin(VmMachine& m, const Insn& in) {
    const auto nu = static_cast<std::size_t>(m.nitems_);
    double* const dst = &m.vf_[static_cast<std::size_t>(in.dst) * nu];
    const double* const a = &m.vf_[static_cast<std::size_t>(in.a) * nu];
    const double* const b = &m.vf_[static_cast<std::size_t>(in.b) * nu];
    const int w = W > 0 ? W : in.lanes;
    const int ni = m.nitems_;
    for (int t = 0; t < ni; ++t) {
      if (MASKED && !m.mask_[static_cast<std::size_t>(t)]) continue;
      for (int l = 0; l < w; ++l) {
        const int i = t * w + l;
        double r = 0;
        if (OPK == Op::FAdd) r = a[i] + b[i];
        if (OPK == Op::FSub) r = a[i] - b[i];
        if (OPK == Op::FMul) r = a[i] * b[i];
        dst[i] = RND ? static_cast<double>(static_cast<float>(r)) : r;
      }
      m.counters_.flops += static_cast<std::uint64_t>(w);
    }
  }

  template <int W, bool RND, bool MASKED>
  static void fmad(VmMachine& m, const Insn& in) {
    const auto nu = static_cast<std::size_t>(m.nitems_);
    double* const dst = &m.vf_[static_cast<std::size_t>(in.dst) * nu];
    const double* const a = &m.vf_[static_cast<std::size_t>(in.a) * nu];
    const double* const b = &m.vf_[static_cast<std::size_t>(in.b) * nu];
    const double* const c = &m.vf_[static_cast<std::size_t>(in.c) * nu];
    const int w = W > 0 ? W : in.lanes;
    const int ni = m.nitems_;
    for (int t = 0; t < ni; ++t) {
      if (MASKED && !m.mask_[static_cast<std::size_t>(t)]) continue;
      for (int l = 0; l < w; ++l) {
        const int i = t * w + l;
        const double r = a[i] * b[i] + c[i];
        dst[i] = RND ? static_cast<double>(static_cast<float>(r)) : r;
      }
      m.counters_.flops += 2u * static_cast<std::uint64_t>(w);
      ++m.counters_.mads;
    }
  }

  template <int W, bool RND>
  static void fmapp(VmMachine& m, const Insn& in) {
    const ArrayRef& cr = m.p_.arrays[static_cast<std::size_t>(in.a)];
    const ArrayRef& br = m.p_.arrays[static_cast<std::size_t>(in.b)];
    const auto nu = static_cast<std::size_t>(m.nitems_);
    const double* const av = &m.vf_[static_cast<std::size_t>(in.c) * nu];
    const int w = W > 0 ? W : in.lanes;
    const int stride = in.aux >> 3;
    const std::int64_t coff = cr.offset + in.dst;
    const std::int64_t boff = br.offset + in.imm;
    const std::size_t pd = static_cast<std::size_t>(m.p_.parr_doubles);
    double* const parr = m.parr_.data();
    const int ni = m.nitems_;
    for (int t = 0; t < ni; ++t) {
      double* const pa = parr + static_cast<std::size_t>(t) * pd;
      double* const cp = pa + coff;
      const double* const bp = pa + boff;
      const double* const ap = av + t * stride;
      for (int l = 0; l < w; ++l) {
        const double r = ap[l] * bp[l] + cp[l];
        cp[l] = RND ? static_cast<double>(static_cast<float>(r)) : r;
      }
      m.counters_.flops += 2u * static_cast<std::uint64_t>(w);
      ++m.counters_.mads;
    }
  }

  template <int W>
  static void splatp(VmMachine& m, const Insn& in) {
    const ArrayRef& ar = m.p_.arrays[static_cast<std::size_t>(in.a)];
    const auto nu = static_cast<std::size_t>(m.nitems_);
    double* const dst = &m.vf_[static_cast<std::size_t>(in.dst) * nu];
    const int w = W > 0 ? W : in.lanes;
    const int dw = in.b;
    const std::int64_t off = ar.offset + in.imm;
    const std::size_t pd = static_cast<std::size_t>(m.p_.parr_doubles);
    const double* const parr = m.parr_.data();
    const int ni = m.nitems_;
    if (w == dw) {  // splat fills the whole register: no zero tail
      for (int t = 0; t < ni; ++t) {
        const double x = parr[static_cast<std::size_t>(t) * pd +
                              static_cast<std::size_t>(off)];
        for (int l = 0; l < w; ++l) dst[t * w + l] = x;
      }
    } else {
      for (int t = 0; t < ni; ++t) {
        const double x = parr[static_cast<std::size_t>(t) * pd +
                              static_cast<std::size_t>(off)];
        for (int l = 0; l < w; ++l) dst[t * dw + l] = x;
        for (int l = w; l < dw; ++l) dst[t * dw + l] = 0.0;
      }
    }
  }

  template <bool STORE, bool LOCAL, int W, bool MASKED>
  static void lmem(VmMachine& m, const Insn& in) {
    const ArrayRef& ar = m.p_.arrays[static_cast<std::size_t>(in.a)];
    const auto nu = static_cast<std::size_t>(m.nitems_);
    const int w = W > 0 ? W : in.lanes;
    const std::int64_t* const addr_v =
        (in.flags & (kImmAddr | kBUni))
            ? nullptr
            : &m.vi_[static_cast<std::size_t>(in.b) * nu];
    const std::int64_t addr_u =
        in.flags & kImmAddr
            ? in.imm
            : (addr_v ? 0 : m.u_[static_cast<std::size_t>(in.b)]);
    double* const dst =
        STORE ? nullptr : &m.vf_[static_cast<std::size_t>(in.dst) * nu];
    const double* const val =
        STORE ? &m.vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
    const auto bytes = static_cast<std::uint64_t>(w) *
                       (in.aux & kCount8 ? 8u : 4u);
    const std::size_t pd = static_cast<std::size_t>(m.p_.parr_doubles);
    const int ni = m.nitems_;
    for (int t = 0; t < ni; ++t) {
      if (MASKED && !m.mask_[static_cast<std::size_t>(t)]) continue;
      const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
      if (idx < 0 || idx + w > ar.len)
        fail(strf("%s array '%s' %s out of range: index %lld + %d "
                  "lanes, %zu elements",
                  LOCAL ? "local" : "private", ar.name.c_str(),
                  STORE ? "store" : "load", static_cast<long long>(idx), w,
                  static_cast<std::size_t>(ar.len)));
      double* const slab =
          LOCAL ? m.larr_.data()
                : &m.parr_[static_cast<std::size_t>(t) * pd];
      double* const p = slab + ar.offset + idx;
      if (STORE) {
        for (int l = 0; l < w; ++l) p[l] = val[t * w + l];
        if (LOCAL) m.counters_.local_store_bytes += bytes;
      } else {
        for (int l = 0; l < w; ++l) dst[t * w + l] = p[l];
        if (LOCAL) m.counters_.local_load_bytes += bytes;
      }
    }
  }

  template <Op OPK, bool AU, bool BU>
  static void vbin(VmMachine& m, const Insn& in) {
    const auto nu = static_cast<std::size_t>(m.nitems_);
    std::int64_t* const dst = &m.vi_[static_cast<std::size_t>(in.dst) * nu];
    const std::int64_t* const a =
        AU ? nullptr : &m.vi_[static_cast<std::size_t>(in.a) * nu];
    const std::int64_t* const b =
        BU ? nullptr : &m.vi_[static_cast<std::size_t>(in.b) * nu];
    const std::int64_t au = AU ? m.u_[static_cast<std::size_t>(in.a)] : 0;
    const std::int64_t bu = BU ? m.u_[static_cast<std::size_t>(in.b)] : 0;
    const int ni = m.nitems_;
    for (int t = 0; t < ni; ++t) {
      const std::int64_t x = AU ? au : a[t];
      const std::int64_t y = BU ? bu : b[t];
      if (OPK == Op::VAdd) {
        dst[t] = x + y;
      } else if (OPK == Op::VSub) {
        dst[t] = x - y;
      } else if (OPK == Op::VMul) {
        dst[t] = x * y;
      } else if (OPK == Op::VLt) {
        dst[t] = x < y ? 1 : 0;
      } else {
        dst[t] = (x != 0 && y != 0) ? 1 : 0;
      }
    }
  }
};

void VmMachine::run_group_threaded() {
#if GEMMTUNE_VM_THREADED
  const int ni = nitems_;
  const auto nu = static_cast<std::size_t>(ni);
  const Insn* const code = p_.code.data();
  const std::int64_t lsx = plan_.local[0];

  if (tcode_.size() != p_.code.size()) {
    // Generic handler table, indexed by Op in declaration order. Families
    // the decoder always specializes still get a generic entry that
    // branches on the runtime flags, so a missed decode case degrades to
    // switch-equivalent behaviour instead of a wrong handler.
    static const void* const generic[] = {
        &&g_halt,      &&g_uconst,  &&g_uarg,     &&g_ubuiltin, &&g_uadd,
        &&g_usub,      &&g_umul,    &&g_udiv,     &&g_umod,     &&g_ult,
        &&g_uand,      &&g_umov,    &&g_ustep,    &&g_vbuiltin, &&g_vbin,
        &&g_vbin,      &&g_vbin,    &&g_vdivmod,  &&g_vdivmod,  &&g_vbin,
        &&g_vbin,      &&g_vmovu,   &&g_vmov,     &&g_fconst,   &&g_farg,
        &&g_fmov,      &&g_fsplat,  &&g_flane,    &&g_fbin,     &&g_fbin,
        &&g_fbin,      &&g_fmad,    &&g_fmapp,    &&g_splatp,   &&g_gmem,
        &&g_gmem,      &&g_lmem,    &&g_lmem,     &&g_lmem,     &&g_lmem,
        &&g_jmp,       &&g_jzu,     &&g_jgeu,     &&g_jnone,    &&g_forv,
        &&g_maskpush,  &&g_maskflip, &&g_maskpop, &&g_barrier,  &&g_throw};
    tcode_.clear();
    tcode_.reserve(p_.code.size());
#define GEMMTUNE_PICK_W(p)                                                \
  (in.lanes == 1   ? &&p##1                                               \
   : in.lanes == 2 ? &&p##2                                               \
   : in.lanes == 4 ? &&p##4                                               \
   : in.lanes == 8 ? &&p##8                                               \
                   : &&p##g)
    for (const Insn& in : p_.code) {
      const bool masked = (in.flags & kMasked) != 0;
      const bool rnd = (in.aux & kRoundF32) != 0;
      const void* h = generic[static_cast<std::size_t>(in.op)];
      switch (in.op) {
        case Op::FAdd:
          h = masked ? (rnd ? &&s_fadd_mr : &&s_fadd_m)
              : rnd  ? &&s_fadd_r
                     : GEMMTUNE_PICK_W(s_fadd_w);
          break;
        case Op::FSub:
          h = masked ? (rnd ? &&s_fsub_mr : &&s_fsub_m)
              : rnd  ? &&s_fsub_r
                     : GEMMTUNE_PICK_W(s_fsub_w);
          break;
        case Op::FMul:
          h = masked ? (rnd ? &&s_fmul_mr : &&s_fmul_m)
              : rnd  ? &&s_fmul_r
                     : GEMMTUNE_PICK_W(s_fmul_w);
          break;
        case Op::FMad:
          h = masked ? (rnd ? &&s_fmad_mr : &&s_fmad_m)
              : rnd  ? &&s_fmad_r
                     : GEMMTUNE_PICK_W(s_fmad_w);
          break;
        case Op::FmaPP:
          h = rnd ? &&s_fmapp_r : GEMMTUNE_PICK_W(s_fmapp_w);
          break;
        case Op::SplatLaneP:
          h = GEMMTUNE_PICK_W(s_splat_w);
          break;
        case Op::LoadL:
          h = masked ? &&s_ldl_m : GEMMTUNE_PICK_W(s_ldl_w);
          break;
        case Op::StoreL:
          h = masked ? &&s_stl_m : GEMMTUNE_PICK_W(s_stl_w);
          break;
        case Op::LoadP:
          h = masked ? &&s_ldp_m : GEMMTUNE_PICK_W(s_ldp_w);
          break;
        case Op::StoreP:
          h = masked ? &&s_stp_m : GEMMTUNE_PICK_W(s_stp_w);
          break;
        case Op::VAdd:
          h = (in.flags & kAUni)
                  ? ((in.flags & kBUni) ? &&s_vadd_uu : &&s_vadd_uv)
                  : ((in.flags & kBUni) ? &&s_vadd_vu : &&s_vadd_vv);
          break;
        case Op::VSub:
          h = (in.flags & kAUni)
                  ? ((in.flags & kBUni) ? &&s_vsub_uu : &&s_vsub_uv)
                  : ((in.flags & kBUni) ? &&s_vsub_vu : &&s_vsub_vv);
          break;
        case Op::VMul:
          h = (in.flags & kAUni)
                  ? ((in.flags & kBUni) ? &&s_vmul_uu : &&s_vmul_uv)
                  : ((in.flags & kBUni) ? &&s_vmul_vu : &&s_vmul_vv);
          break;
        case Op::VLt:
          h = (in.flags & kAUni)
                  ? ((in.flags & kBUni) ? &&s_vlt_uu : &&s_vlt_uv)
                  : ((in.flags & kBUni) ? &&s_vlt_vu : &&s_vlt_vv);
          break;
        case Op::VAnd:
          h = (in.flags & kAUni)
                  ? ((in.flags & kBUni) ? &&s_vand_uu : &&s_vand_uv)
                  : ((in.flags & kBUni) ? &&s_vand_vu : &&s_vand_vv);
          break;
        default:
          break;
      }
      tcode_.push_back(h);
    }
#undef GEMMTUNE_PICK_W
  }

  const void* const* const tc = tcode_.data();
  const Insn* ip = code;
  std::int64_t pc = 0;
#define GT_NEXT                    \
  {                                \
    const std::int64_t i_ = pc;    \
    ++pc;                          \
    ip = code + i_;                \
    goto *tc[i_];                  \
  }
  GT_NEXT;

  // --- generic handlers: verbatim transcriptions of the switch bodies ---
g_halt:
  return;
g_uconst:
  u_[static_cast<std::size_t>(ip->dst)] = ip->imm;
  GT_NEXT;
g_uarg:
  u_[static_cast<std::size_t>(ip->dst)] =
      plan_.views[static_cast<std::size_t>(ip->a)].i;
  GT_NEXT;
g_ubuiltin:
  u_[static_cast<std::size_t>(ip->dst)] = builtin_u(ip->aux);
  GT_NEXT;
g_uadd:
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] +
      u_[static_cast<std::size_t>(ip->b)];
  GT_NEXT;
g_usub:
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] -
      u_[static_cast<std::size_t>(ip->b)];
  GT_NEXT;
g_umul:
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] *
      u_[static_cast<std::size_t>(ip->b)];
  GT_NEXT;
g_udiv: {
  const std::int64_t d = u_[static_cast<std::size_t>(ip->b)];
  if (d == 0) fail("interp: integer division by zero");
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] / d;
}
  GT_NEXT;
g_umod: {
  const std::int64_t d = u_[static_cast<std::size_t>(ip->b)];
  if (d == 0) fail("interp: integer modulo by zero");
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] % d;
}
  GT_NEXT;
g_ult:
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)] <
              u_[static_cast<std::size_t>(ip->b)]
          ? 1
          : 0;
  GT_NEXT;
g_uand:
  u_[static_cast<std::size_t>(ip->dst)] =
      (u_[static_cast<std::size_t>(ip->a)] != 0 &&
       u_[static_cast<std::size_t>(ip->b)] != 0)
          ? 1
          : 0;
  GT_NEXT;
g_umov:
  u_[static_cast<std::size_t>(ip->dst)] =
      u_[static_cast<std::size_t>(ip->a)];
  GT_NEXT;
g_ustep:
  if (u_[static_cast<std::size_t>(ip->a)] <= 0)
    fail("for: non-positive step");
  GT_NEXT;
g_vbuiltin: {
  const Insn& in = *ip;
  std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
  const int dim = in.aux & 1;
  const auto fn = static_cast<BuiltinFn>(in.aux >> 1);
  for (int t = 0; t < ni; ++t) {
    const std::int64_t lid = dim == 0 ? t % lsx : t / lsx;
    switch (fn) {
      case BuiltinFn::LocalId:
        dst[t] = lid;
        break;
      case BuiltinFn::GlobalId:
        dst[t] = (dim == 0 ? gx_ : gy_) *
                     plan_.local[static_cast<std::size_t>(dim)] +
                 lid;
        break;
      default:
        dst[t] = builtin_u(in.aux);
        break;
    }
  }
}
  GT_NEXT;
g_vbin: {
  const Insn& in = *ip;
  std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
  const std::int64_t* a =
      in.flags & kAUni ? nullptr : &vi_[static_cast<std::size_t>(in.a) * nu];
  const std::int64_t* b =
      in.flags & kBUni ? nullptr : &vi_[static_cast<std::size_t>(in.b) * nu];
  const std::int64_t au = a ? 0 : u_[static_cast<std::size_t>(in.a)];
  const std::int64_t bu = b ? 0 : u_[static_cast<std::size_t>(in.b)];
  for (int t = 0; t < ni; ++t) {
    const std::int64_t x = a ? a[t] : au;
    const std::int64_t y = b ? b[t] : bu;
    switch (in.op) {
      case Op::VAdd: dst[t] = x + y; break;
      case Op::VSub: dst[t] = x - y; break;
      case Op::VMul: dst[t] = x * y; break;
      case Op::VLt: dst[t] = x < y ? 1 : 0; break;
      default: dst[t] = (x != 0 && y != 0) ? 1 : 0; break;
    }
  }
}
  GT_NEXT;
g_vdivmod: {
  const Insn& in = *ip;
  std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
  const std::int64_t* a =
      in.flags & kAUni ? nullptr : &vi_[static_cast<std::size_t>(in.a) * nu];
  const std::int64_t* b =
      in.flags & kBUni ? nullptr : &vi_[static_cast<std::size_t>(in.b) * nu];
  const std::int64_t au = a ? 0 : u_[static_cast<std::size_t>(in.a)];
  const std::int64_t bu = b ? 0 : u_[static_cast<std::size_t>(in.b)];
  const bool masked = in.flags & kMasked;
  for (int t = 0; t < ni; ++t) {
    if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
    const std::int64_t x = a ? a[t] : au;
    const std::int64_t y = b ? b[t] : bu;
    if (in.op == Op::VDiv) {
      if (y == 0) fail("interp: integer division by zero");
      dst[t] = x / y;
    } else {
      if (y == 0) fail("interp: integer modulo by zero");
      dst[t] = x % y;
    }
  }
}
  GT_NEXT;
g_vmovu: {
  const Insn& in = *ip;
  std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
  const std::int64_t v = u_[static_cast<std::size_t>(in.a)];
  if (in.flags & kMasked) {
    for (int t = 0; t < ni; ++t)
      if (mask_[static_cast<std::size_t>(t)]) dst[t] = v;
  } else {
    for (int t = 0; t < ni; ++t) dst[t] = v;
  }
}
  GT_NEXT;
g_vmov: {
  const Insn& in = *ip;
  std::int64_t* dst = &vi_[static_cast<std::size_t>(in.dst) * nu];
  const std::int64_t* src = &vi_[static_cast<std::size_t>(in.a) * nu];
  if (in.flags & kMasked) {
    for (int t = 0; t < ni; ++t)
      if (mask_[static_cast<std::size_t>(t)]) dst[t] = src[t];
  } else {
    for (int t = 0; t < ni; ++t) dst[t] = src[t];
  }
}
  GT_NEXT;
g_fconst: {
  const Insn& in = *ip;
  double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
  const double* src = &p_.fpool[static_cast<std::size_t>(in.imm)];
  const int w = in.lanes;
  for (int t = 0; t < ni; ++t)
    for (int l = 0; l < w; ++l) dst[t * w + l] = src[l];
}
  GT_NEXT;
g_farg: {
  const Insn& in = *ip;
  double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
  double x = plan_.views[static_cast<std::size_t>(in.a)].f;
  if (in.aux & kRoundF32) x = static_cast<double>(static_cast<float>(x));
  const int w = in.lanes;
  for (int t = 0; t < ni; ++t) {
    dst[t * w] = x;
    for (int l = 1; l < w; ++l) dst[t * w + l] = 0.0;
  }
}
  GT_NEXT;
g_fmov: {
  const Insn& in = *ip;
  double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
  const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
  const int dw = in.b, sw = in.c, n = in.lanes;
  const bool masked = in.flags & kMasked;
  for (int t = 0; t < ni; ++t) {
    if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
    for (int l = 0; l < n; ++l) dst[t * dw + l] = src[t * sw + l];
    for (int l = n; l < dw; ++l) dst[t * dw + l] = 0.0;
  }
}
  GT_NEXT;
g_fsplat: {
  const Insn& in = *ip;
  double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
  const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
  const int w = in.lanes, sw = in.aux;
  for (int t = 0; t < ni; ++t) {
    const double x = src[t * sw];
    for (int l = 0; l < w; ++l) dst[t * w + l] = x;
  }
}
  GT_NEXT;
g_flane: {
  const Insn& in = *ip;
  double* dst = &vf_[static_cast<std::size_t>(in.dst) * nu];
  const double* src = &vf_[static_cast<std::size_t>(in.a) * nu];
  const int sw = in.aux;
  const auto ln = static_cast<int>(in.imm);
  for (int t = 0; t < ni; ++t) dst[t] = ln < sw ? src[t * sw + ln] : 0.0;
}
  GT_NEXT;
g_fbin: {
  const Insn& in = *ip;
  const bool rnd = in.aux & kRoundF32;
  if (in.flags & kMasked) {
    if (rnd) {
      if (in.op == Op::FAdd) Ops::fbin<Op::FAdd, 0, true, true>(*this, in);
      if (in.op == Op::FSub) Ops::fbin<Op::FSub, 0, true, true>(*this, in);
      if (in.op == Op::FMul) Ops::fbin<Op::FMul, 0, true, true>(*this, in);
    } else {
      if (in.op == Op::FAdd) Ops::fbin<Op::FAdd, 0, false, true>(*this, in);
      if (in.op == Op::FSub) Ops::fbin<Op::FSub, 0, false, true>(*this, in);
      if (in.op == Op::FMul) Ops::fbin<Op::FMul, 0, false, true>(*this, in);
    }
  } else {
    if (rnd) {
      if (in.op == Op::FAdd) Ops::fbin<Op::FAdd, 0, true, false>(*this, in);
      if (in.op == Op::FSub) Ops::fbin<Op::FSub, 0, true, false>(*this, in);
      if (in.op == Op::FMul) Ops::fbin<Op::FMul, 0, true, false>(*this, in);
    } else {
      if (in.op == Op::FAdd) Ops::fbin<Op::FAdd, 0, false, false>(*this, in);
      if (in.op == Op::FSub) Ops::fbin<Op::FSub, 0, false, false>(*this, in);
      if (in.op == Op::FMul) Ops::fbin<Op::FMul, 0, false, false>(*this, in);
    }
  }
}
  GT_NEXT;
g_fmad: {
  const Insn& in = *ip;
  const bool rnd = in.aux & kRoundF32;
  if (in.flags & kMasked) {
    if (rnd) {
      Ops::fmad<0, true, true>(*this, in);
    } else {
      Ops::fmad<0, false, true>(*this, in);
    }
  } else {
    if (rnd) {
      Ops::fmad<0, true, false>(*this, in);
    } else {
      Ops::fmad<0, false, false>(*this, in);
    }
  }
}
  GT_NEXT;
g_fmapp: {
  const Insn& in = *ip;
  if (in.aux & kRoundF32) {
    Ops::fmapp<0, true>(*this, in);
  } else {
    Ops::fmapp<0, false>(*this, in);
  }
}
  GT_NEXT;
g_splatp:
  Ops::splatp<0>(*this, *ip);
  GT_NEXT;
g_gmem: {
  const Insn& in = *ip;
  const bool is_store = in.op == Op::StoreG;
  const LaunchPlan::ArgView& view =
      plan_.views[static_cast<std::size_t>(in.a)];
  const int w = in.lanes;
  const bool f32 = in.aux & kElemF32;
  const int ebytes = f32 ? 4 : 8;
  const bool masked = in.flags & kMasked;
  const std::int64_t* addr_v =
      (in.flags & (kImmAddr | kBUni))
          ? nullptr
          : &vi_[static_cast<std::size_t>(in.b) * nu];
  const std::int64_t addr_u =
      in.flags & kImmAddr
          ? in.imm
          : (addr_v ? 0 : u_[static_cast<std::size_t>(in.b)]);
  double* dst =
      is_store ? nullptr : &vf_[static_cast<std::size_t>(in.dst) * nu];
  const double* val =
      is_store ? &vf_[static_cast<std::size_t>(in.c) * nu] : nullptr;
  for (int t = 0; t < ni; ++t) {
    if (masked && !mask_[static_cast<std::size_t>(t)]) continue;
    const std::int64_t idx = addr_v ? addr_v[t] : addr_u;
    if (idx < 0 || idx + w > view.elems)
      fail(strf("global %s out of range: index %lld + %d lanes, "
                "buffer %lld elements",
                is_store ? "store" : "load", static_cast<long long>(idx), w,
                static_cast<long long>(view.elems)));
    if (is_store) {
      if (f32) {
        for (int l = 0; l < w; ++l)
          view.f32[idx + l] = static_cast<float>(val[t * w + l]);
      } else {
        for (int l = 0; l < w; ++l) view.f64[idx + l] = val[t * w + l];
      }
    } else {
      if (f32) {
        for (int l = 0; l < w; ++l)
          dst[t * w + l] = static_cast<double>(view.f32[idx + l]);
      } else {
        for (int l = 0; l < w; ++l) dst[t * w + l] = view.f64[idx + l];
      }
    }
    const auto bytes = static_cast<std::uint64_t>(w) *
                       static_cast<std::uint64_t>(ebytes);
    if (is_store) {
      counters_.global_store_bytes += bytes;
    } else {
      counters_.global_load_bytes += bytes;
    }
  }
}
  GT_NEXT;
g_lmem: {
  const Insn& in = *ip;
  const bool is_store = in.op == Op::StoreL || in.op == Op::StoreP;
  const bool local = in.op == Op::LoadL || in.op == Op::StoreL;
  const bool masked = in.flags & kMasked;
  if (is_store) {
    if (local) {
      if (masked) {
        Ops::lmem<true, true, 0, true>(*this, in);
      } else {
        Ops::lmem<true, true, 0, false>(*this, in);
      }
    } else {
      if (masked) {
        Ops::lmem<true, false, 0, true>(*this, in);
      } else {
        Ops::lmem<true, false, 0, false>(*this, in);
      }
    }
  } else {
    if (local) {
      if (masked) {
        Ops::lmem<false, true, 0, true>(*this, in);
      } else {
        Ops::lmem<false, true, 0, false>(*this, in);
      }
    } else {
      if (masked) {
        Ops::lmem<false, false, 0, true>(*this, in);
      } else {
        Ops::lmem<false, false, 0, false>(*this, in);
      }
    }
  }
}
  GT_NEXT;
g_jmp:
  pc = ip->imm;
  GT_NEXT;
g_jzu:
  if (u_[static_cast<std::size_t>(ip->a)] == 0) pc = ip->imm;
  GT_NEXT;
g_jgeu:
  if (u_[static_cast<std::size_t>(ip->a)] >=
      u_[static_cast<std::size_t>(ip->b)])
    pc = ip->imm;
  GT_NEXT;
g_jnone:
  if (active_ == 0) pc = ip->imm;
  GT_NEXT;
g_forv: {
  const Insn& in = *ip;
  const std::int64_t* a = &vi_[static_cast<std::size_t>(in.a) * nu];
  const std::int64_t* b = &vi_[static_cast<std::size_t>(in.b) * nu];
  const std::int64_t* c = &vi_[static_cast<std::size_t>(in.c) * nu];
  int first = -1;
  for (int t = 0; t < ni; ++t) {
    if (mask_[static_cast<std::size_t>(t)]) {
      first = t;
      break;
    }
  }
  if (first < 0) {
    pc = in.imm;
  } else {
    const std::int64_t init = a[first], lim = b[first], stp = c[first];
    for (int t = first; t < ni; ++t) {
      if (!mask_[static_cast<std::size_t>(t)]) continue;
      if (a[t] != init || b[t] != lim || c[t] != stp)
        fail("for: non-uniform loop bounds across work-group");
    }
    if (stp <= 0) fail("for: non-positive step");
    u_[static_cast<std::size_t>(in.dst)] = init;
    u_[static_cast<std::size_t>(in.dst) + 1] = lim;
    u_[static_cast<std::size_t>(in.dst) + 2] = stp;
  }
}
  GT_NEXT;
g_maskpush: {
  const Insn& in = *ip;
  MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
  ++mask_depth_;
  f.saved = mask_;
  f.cond = in.a;
  f.saved_active = active_;
  const std::int64_t* c = &vi_[static_cast<std::size_t>(in.a) * nu];
  int n = 0;
  for (int t = 0; t < ni; ++t) {
    auto& m = mask_[static_cast<std::size_t>(t)];
    m = m && c[t] != 0 ? 1 : 0;
    n += m;
  }
  active_ = n;
}
  GT_NEXT;
g_maskflip: {
  MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_ - 1)];
  const std::int64_t* c = &vi_[static_cast<std::size_t>(f.cond) * nu];
  int n = 0;
  for (int t = 0; t < ni; ++t) {
    auto& m = mask_[static_cast<std::size_t>(t)];
    m = f.saved[static_cast<std::size_t>(t)] && c[t] == 0 ? 1 : 0;
    n += m;
  }
  active_ = n;
}
  GT_NEXT;
g_maskpop: {
  --mask_depth_;
  MaskFrame& f = mask_stack_[static_cast<std::size_t>(mask_depth_)];
  mask_.swap(f.saved);
  active_ = f.saved_active;
}
  GT_NEXT;
g_barrier:
  for (char m : mask_)
    if (m == 0) fail("barrier inside divergent control flow");
  ++counters_.barriers;
  GT_NEXT;
g_throw:
  fail(p_.messages[static_cast<std::size_t>(ip->imm)]);

  // --- specialized handlers: shape baked at decode time ---
s_fadd_w1: Ops::fbin<Op::FAdd, 1, false, false>(*this, *ip); GT_NEXT;
s_fadd_w2: Ops::fbin<Op::FAdd, 2, false, false>(*this, *ip); GT_NEXT;
s_fadd_w4: Ops::fbin<Op::FAdd, 4, false, false>(*this, *ip); GT_NEXT;
s_fadd_w8: Ops::fbin<Op::FAdd, 8, false, false>(*this, *ip); GT_NEXT;
s_fadd_wg: Ops::fbin<Op::FAdd, 0, false, false>(*this, *ip); GT_NEXT;
s_fadd_r:  Ops::fbin<Op::FAdd, 0, true, false>(*this, *ip); GT_NEXT;
s_fadd_m:  Ops::fbin<Op::FAdd, 0, false, true>(*this, *ip); GT_NEXT;
s_fadd_mr: Ops::fbin<Op::FAdd, 0, true, true>(*this, *ip); GT_NEXT;
s_fsub_w1: Ops::fbin<Op::FSub, 1, false, false>(*this, *ip); GT_NEXT;
s_fsub_w2: Ops::fbin<Op::FSub, 2, false, false>(*this, *ip); GT_NEXT;
s_fsub_w4: Ops::fbin<Op::FSub, 4, false, false>(*this, *ip); GT_NEXT;
s_fsub_w8: Ops::fbin<Op::FSub, 8, false, false>(*this, *ip); GT_NEXT;
s_fsub_wg: Ops::fbin<Op::FSub, 0, false, false>(*this, *ip); GT_NEXT;
s_fsub_r:  Ops::fbin<Op::FSub, 0, true, false>(*this, *ip); GT_NEXT;
s_fsub_m:  Ops::fbin<Op::FSub, 0, false, true>(*this, *ip); GT_NEXT;
s_fsub_mr: Ops::fbin<Op::FSub, 0, true, true>(*this, *ip); GT_NEXT;
s_fmul_w1: Ops::fbin<Op::FMul, 1, false, false>(*this, *ip); GT_NEXT;
s_fmul_w2: Ops::fbin<Op::FMul, 2, false, false>(*this, *ip); GT_NEXT;
s_fmul_w4: Ops::fbin<Op::FMul, 4, false, false>(*this, *ip); GT_NEXT;
s_fmul_w8: Ops::fbin<Op::FMul, 8, false, false>(*this, *ip); GT_NEXT;
s_fmul_wg: Ops::fbin<Op::FMul, 0, false, false>(*this, *ip); GT_NEXT;
s_fmul_r:  Ops::fbin<Op::FMul, 0, true, false>(*this, *ip); GT_NEXT;
s_fmul_m:  Ops::fbin<Op::FMul, 0, false, true>(*this, *ip); GT_NEXT;
s_fmul_mr: Ops::fbin<Op::FMul, 0, true, true>(*this, *ip); GT_NEXT;
s_fmad_w1: Ops::fmad<1, false, false>(*this, *ip); GT_NEXT;
s_fmad_w2: Ops::fmad<2, false, false>(*this, *ip); GT_NEXT;
s_fmad_w4: Ops::fmad<4, false, false>(*this, *ip); GT_NEXT;
s_fmad_w8: Ops::fmad<8, false, false>(*this, *ip); GT_NEXT;
s_fmad_wg: Ops::fmad<0, false, false>(*this, *ip); GT_NEXT;
s_fmad_r:  Ops::fmad<0, true, false>(*this, *ip); GT_NEXT;
s_fmad_m:  Ops::fmad<0, false, true>(*this, *ip); GT_NEXT;
s_fmad_mr: Ops::fmad<0, true, true>(*this, *ip); GT_NEXT;
s_fmapp_w1: Ops::fmapp<1, false>(*this, *ip); GT_NEXT;
s_fmapp_w2: Ops::fmapp<2, false>(*this, *ip); GT_NEXT;
s_fmapp_w4: Ops::fmapp<4, false>(*this, *ip); GT_NEXT;
s_fmapp_w8: Ops::fmapp<8, false>(*this, *ip); GT_NEXT;
s_fmapp_wg: Ops::fmapp<0, false>(*this, *ip); GT_NEXT;
s_fmapp_r:  Ops::fmapp<0, true>(*this, *ip); GT_NEXT;
s_splat_w1: Ops::splatp<1>(*this, *ip); GT_NEXT;
s_splat_w2: Ops::splatp<2>(*this, *ip); GT_NEXT;
s_splat_w4: Ops::splatp<4>(*this, *ip); GT_NEXT;
s_splat_w8: Ops::splatp<8>(*this, *ip); GT_NEXT;
s_splat_wg: Ops::splatp<0>(*this, *ip); GT_NEXT;
s_ldl_w1: Ops::lmem<false, true, 1, false>(*this, *ip); GT_NEXT;
s_ldl_w2: Ops::lmem<false, true, 2, false>(*this, *ip); GT_NEXT;
s_ldl_w4: Ops::lmem<false, true, 4, false>(*this, *ip); GT_NEXT;
s_ldl_w8: Ops::lmem<false, true, 8, false>(*this, *ip); GT_NEXT;
s_ldl_wg: Ops::lmem<false, true, 0, false>(*this, *ip); GT_NEXT;
s_ldl_m:  Ops::lmem<false, true, 0, true>(*this, *ip); GT_NEXT;
s_stl_w1: Ops::lmem<true, true, 1, false>(*this, *ip); GT_NEXT;
s_stl_w2: Ops::lmem<true, true, 2, false>(*this, *ip); GT_NEXT;
s_stl_w4: Ops::lmem<true, true, 4, false>(*this, *ip); GT_NEXT;
s_stl_w8: Ops::lmem<true, true, 8, false>(*this, *ip); GT_NEXT;
s_stl_wg: Ops::lmem<true, true, 0, false>(*this, *ip); GT_NEXT;
s_stl_m:  Ops::lmem<true, true, 0, true>(*this, *ip); GT_NEXT;
s_ldp_w1: Ops::lmem<false, false, 1, false>(*this, *ip); GT_NEXT;
s_ldp_w2: Ops::lmem<false, false, 2, false>(*this, *ip); GT_NEXT;
s_ldp_w4: Ops::lmem<false, false, 4, false>(*this, *ip); GT_NEXT;
s_ldp_w8: Ops::lmem<false, false, 8, false>(*this, *ip); GT_NEXT;
s_ldp_wg: Ops::lmem<false, false, 0, false>(*this, *ip); GT_NEXT;
s_ldp_m:  Ops::lmem<false, false, 0, true>(*this, *ip); GT_NEXT;
s_stp_w1: Ops::lmem<true, false, 1, false>(*this, *ip); GT_NEXT;
s_stp_w2: Ops::lmem<true, false, 2, false>(*this, *ip); GT_NEXT;
s_stp_w4: Ops::lmem<true, false, 4, false>(*this, *ip); GT_NEXT;
s_stp_w8: Ops::lmem<true, false, 8, false>(*this, *ip); GT_NEXT;
s_stp_wg: Ops::lmem<true, false, 0, false>(*this, *ip); GT_NEXT;
s_stp_m:  Ops::lmem<true, false, 0, true>(*this, *ip); GT_NEXT;
s_vadd_vv: Ops::vbin<Op::VAdd, false, false>(*this, *ip); GT_NEXT;
s_vadd_uv: Ops::vbin<Op::VAdd, true, false>(*this, *ip); GT_NEXT;
s_vadd_vu: Ops::vbin<Op::VAdd, false, true>(*this, *ip); GT_NEXT;
s_vadd_uu: Ops::vbin<Op::VAdd, true, true>(*this, *ip); GT_NEXT;
s_vsub_vv: Ops::vbin<Op::VSub, false, false>(*this, *ip); GT_NEXT;
s_vsub_uv: Ops::vbin<Op::VSub, true, false>(*this, *ip); GT_NEXT;
s_vsub_vu: Ops::vbin<Op::VSub, false, true>(*this, *ip); GT_NEXT;
s_vsub_uu: Ops::vbin<Op::VSub, true, true>(*this, *ip); GT_NEXT;
s_vmul_vv: Ops::vbin<Op::VMul, false, false>(*this, *ip); GT_NEXT;
s_vmul_uv: Ops::vbin<Op::VMul, true, false>(*this, *ip); GT_NEXT;
s_vmul_vu: Ops::vbin<Op::VMul, false, true>(*this, *ip); GT_NEXT;
s_vmul_uu: Ops::vbin<Op::VMul, true, true>(*this, *ip); GT_NEXT;
s_vlt_vv: Ops::vbin<Op::VLt, false, false>(*this, *ip); GT_NEXT;
s_vlt_uv: Ops::vbin<Op::VLt, true, false>(*this, *ip); GT_NEXT;
s_vlt_vu: Ops::vbin<Op::VLt, false, true>(*this, *ip); GT_NEXT;
s_vlt_uu: Ops::vbin<Op::VLt, true, true>(*this, *ip); GT_NEXT;
s_vand_vv: Ops::vbin<Op::VAnd, false, false>(*this, *ip); GT_NEXT;
s_vand_uv: Ops::vbin<Op::VAnd, true, false>(*this, *ip); GT_NEXT;
s_vand_vu: Ops::vbin<Op::VAnd, false, true>(*this, *ip); GT_NEXT;
s_vand_uu: Ops::vbin<Op::VAnd, true, true>(*this, *ip); GT_NEXT;
#undef GT_NEXT
#else
  run_group_switch();
#endif
}

}  // namespace gemmtune::ir
