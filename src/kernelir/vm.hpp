// Launch plan + bytecode virtual machine.
//
// LaunchPlan is the shared immutable per-launch setup both interpreter
// backends execute against: it validates the geometry and arguments once
// on the calling thread and resolves the storage layout (symbol counts,
// typed buffer views), so per-worker execution contexts only allocate
// scratch instead of re-validating per Machine.
//
// VmMachine executes a CompiledKernel over a contiguous range of
// work-groups. Like the tree-walker's Machine, each worker thread owns its
// own VmMachine (registers, slabs, divergence mask, counters), sharing only
// the plan, the program, and the global buffers — so buffers and counters
// are bit-identical to the serial run at any thread count.
//
// Two dispatch strategies execute the same instruction set with identical
// buffers, counters, and error messages:
//  - "switch": the portable for(;;)-switch interpreter (every toolchain).
//  - "threaded": classic threaded code — the program is pre-decoded once
//    per machine into a table of computed-goto handler addresses, with hot
//    opcodes specialized on their baked operand shapes (lane width, f32
//    rounding, divergence masking, operand uniformity). Available on
//    compilers with the GNU labels-as-values extension (GCC/Clang); on
//    anything else "threaded" silently resolves to "switch".
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kernelir/compile.hpp"
#include "kernelir/interp.hpp"

namespace gemmtune::ir {

/// Validated launch geometry and resolved argument views, computed once per
/// launch and shared (read-only) by every worker Machine of both backends.
struct LaunchPlan {
  /// A kernel argument resolved for execution: raw typed pointer for
  /// buffers, immediate values for scalars.
  struct ArgView {
    double* f64 = nullptr;    ///< element pointer when the buffer is F64
    float* f32 = nullptr;     ///< element pointer when the buffer is F32
    std::int64_t elems = 0;   ///< buffer length in elements
    std::int64_t i = 0;       ///< Int argument value
    double f = 0;             ///< Float argument value
  };

  const Kernel* kernel = nullptr;
  std::array<std::int64_t, 2> global{}, local{};
  const std::vector<ArgValue>* args = nullptr;
  std::int64_t ngx = 0, ngroups = 0, items_per_group = 0;
  int n_vars = 0, n_parrays = 0, n_larrays = 0;  ///< tree storage counts
  std::vector<ArgView> views;

  /// Validates the launch (same checks and messages as the interpreter has
  /// always thrown) and resolves the layout. Throws gemmtune::Error on a
  /// malformed launch. The kernel and argument vectors must outlive the
  /// plan.
  LaunchPlan(const Kernel& k, std::array<std::int64_t, 2> global,
             std::array<std::int64_t, 2> local,
             const std::vector<ArgValue>& args);
};

/// Bytecode dispatch strategy. Resolution precedence mirrors Backend:
/// explicit request > set_vm_dispatch_override > GEMMTUNE_VM_DISPATCH >
/// threaded when the toolchain supports it, else switch.
enum class VmDispatch { Auto, Switch, Threaded };

/// Process-wide dispatch override (the --vm-dispatch flag); Auto clears it.
void set_vm_dispatch_override(VmDispatch d);

/// Resolves the dispatch mode a VmMachine constructed now would use.
/// Rejects unknown GEMMTUNE_VM_DISPATCH values; a resolved Threaded is
/// downgraded to Switch when the build lacks computed-goto support.
VmDispatch resolve_vm_dispatch(VmDispatch requested = VmDispatch::Auto);

/// True when this build carries the computed-goto executor.
bool vm_threaded_dispatch_supported();

const char* to_string(VmDispatch d);

/// One bytecode execution context (registers, slabs, mask, counters); owns
/// all mutable state, so work-group parallelism gives each worker its own
/// VmMachine over a disjoint slice of the group space.
class VmMachine {
 public:
  VmMachine(const CompiledKernel& prog, const LaunchPlan& plan);

  /// Runs work-groups [begin, end) of the row-major linearized group space
  /// and returns the counters accumulated over them.
  Counters run_range(std::int64_t begin, std::int64_t end);

 private:
  struct Ops;  // shared op bodies for the specialized threaded handlers
  void run_group(std::int64_t gx, std::int64_t gy);
  void run_group_switch();
  void run_group_threaded();
  std::int64_t builtin_u(int fn_dim) const;

  const CompiledKernel& p_;
  const LaunchPlan& plan_;
  int nitems_ = 0;
  std::int64_t gx_ = 0, gy_ = 0;
  std::vector<std::int64_t> u_;
  std::vector<std::int64_t> vi_;   ///< reg-major: vi_[reg * nitems + item]
  std::vector<double> vf_;         ///< vf_[base * nitems + item * width + l]
  std::vector<double> parr_;       ///< parr_[item * parr_doubles + off]
  std::vector<double> larr_;
  std::vector<char> mask_;
  int active_ = 0;
  struct MaskFrame {
    std::vector<char> saved;
    std::int32_t cond = 0;
    int saved_active = 0;
  };
  std::vector<MaskFrame> mask_stack_;
  int mask_depth_ = 0;
  Counters counters_;
  bool threaded_ = false;          ///< resolved at construction
  std::vector<const void*> tcode_; ///< pre-decoded handler addresses
};

}  // namespace gemmtune::ir
