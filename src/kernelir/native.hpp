// Native-compiled kernel backend: JIT to specialized C++ via the host
// toolchain, loaded with dlopen.
//
// emit_native_source() translates one compiled bytecode program into a
// self-contained C++ translation unit specialized for that kernel: every
// instruction becomes straight-line code with its operand registers, lane
// counts, array offsets and constants baked in as literals, work-item
// lanes become plain `for (t ...)` loops the host compiler can unroll and
// vectorize, and when the kernel declares reqd_work_group_size the
// work-group size itself is a compile-time constant. Bounds checks the
// bytecode pass already proved (constant private/local addressing lowered
// to FmaPP / SplatLaneP / kImmAddr forms) are gone entirely; the remaining
// runtime checks raise the exact same message text as the tree walker and
// the VM.
//
// get_or_compile_native() drives the pipeline: emit the source, invoke the
// host C++ compiler (GEMMTUNE_JIT_CXX, else the compiler this library was
// built with, else c++/g++/clang++ from PATH), dlopen the resulting shared
// object, and publish it into the process-wide program cache
// (kernelir/compile.hpp) keyed on the kernel's serialized bytes. Shared
// objects are also cached on disk, hash-named under --jit-cache-dir /
// GEMMTUNE_JIT_CACHE (temp-file + rename, like TunedDatabase), so a warm
// start dlopens the cached .so without ever running the compiler. Every
// failure path (no toolchain, unwritable cache dir, compile error) is
// soft: the caller falls back to the bytecode VM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "kernelir/compile.hpp"
#include "kernelir/vm.hpp"

namespace gemmtune::ir {

/// Exported entry point of a generated shared object. Flat C ABI — no
/// shared struct layouts between the host build and the JIT build:
///   (group_begin, group_end, global0, global1, local0, local1,
///    arg_f64[], arg_f32[], arg_elems[], arg_i[], arg_f[],
///    counters[7] = {flops, mads, global_load_bytes, global_store_bytes,
///                   local_load_bytes, local_store_bytes, barriers},
///    err, err_cap)
/// Returns 0 on success; nonzero with the error message (no source-location
/// prefix) written into `err`.
using NativeEntryFn = long long (*)(
    long long, long long, long long, long long, long long, long long,
    double* const*, float* const*, const long long*, const long long*,
    const double*, unsigned long long*, char*, long long);

/// Symbol name of the entry point; versioned so a stale cached .so from an
/// older ABI fails dlsym instead of being called with the wrong contract.
inline constexpr const char* kNativeEntrySymbol = "gemmtune_native_entry_v1";

/// A dlopen'd compiled kernel; closes the handle when the last reference
/// (program cache entry or in-flight launch) drops.
class NativeKernel {
 public:
  NativeKernel(void* handle, NativeEntryFn fn, std::string so_path)
      : handle_(handle), fn_(fn), so_path_(std::move(so_path)) {}
  ~NativeKernel();
  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;

  NativeEntryFn fn() const { return fn_; }
  const std::string& so_path() const { return so_path_; }

 private:
  void* handle_ = nullptr;
  NativeEntryFn fn_ = nullptr;
  std::string so_path_;
};

/// SIMD mode for the native emitter. Resolution precedence mirrors
/// Backend / VmDispatch: set_native_simd_override > GEMMTUNE_NATIVE_SIMD
/// ("on" / "off") > on. When on, the emitter prints explicit fixed-width
/// vector lanes (GCC/Clang vector extensions) for the unmasked FP ops,
/// with f32 rounding as per-element widen→op→narrow conversions inside
/// the vector body, so buffers stay bit-identical to the scalar backends.
enum class NativeSimd { Auto, Off, On };

/// Process-wide SIMD override (the --native-simd flag); Auto clears it.
void set_native_simd_override(NativeSimd m);

/// Resolved vector width (in doubles) a native compile started now would
/// emit: 0 for scalar emission, else the probed host width (8 with
/// AVX-512F, 4 with AVX2, 2 baseline). The width is folded into both the
/// program-cache key and the on-disk .so hash, so scalar and SIMD objects
/// for the same kernel never collide.
int native_simd_width();

/// Options for emit_native_source(); defaults reproduce scalar emission.
struct NativeEmitOptions {
  int simd_width = 0;  ///< vector lanes in doubles; 0 = scalar emission
};

/// Emits the specialized C++ translation unit for one compiled kernel.
/// Pure and deterministic (the source depends only on the program, the
/// kernel's reqd_work_group_size / argument shapes, and the options).
std::string emit_native_source(const Kernel& kernel,
                               const CompiledKernel& prog,
                               const NativeEmitOptions& opts = {});

/// Sets the on-disk .so cache directory (the --jit-cache-dir flag). An
/// empty string restores the default: GEMMTUNE_JIT_CACHE if set, else a
/// process-lifetime temporary directory whose objects are unlinked after
/// dlopen.
void set_jit_cache_dir(const std::string& dir);

/// True when a host C++ compiler answers the probe. The probe runs once
/// per process and is cached; every probe subprocess actually spawned is
/// counted on interp.toolchain_probe, so repeated cold compiles add
/// nothing. reset_native_probe() re-reads the environment (tests).
bool native_toolchain_available();
void reset_native_probe();

/// Returns the native-compiled kernel for `kernel`, building (or loading
/// from the on-disk cache) on first use, via the process-wide program
/// cache. Returns nullptr when the native backend is unavailable for this
/// kernel — no toolchain, compile or dlopen failure — with the cause in
/// `*why`; the failure is cached per kernel so repeated launches don't
/// re-run the compiler. Thread-safe; first insert wins.
NativeKernelPtr get_or_compile_native(const Kernel& kernel,
                                      std::string* why = nullptr);

/// Prints a one-line warning to stderr naming the fallback cause; each
/// distinct cause is printed once per process.
void warn_native_fallback(const std::string& why);

/// Runs work-groups [begin, end) of the plan through a native kernel and
/// returns the counters. Throws gemmtune::Error (same message text as the
/// other backends) when the kernel reports a runtime fault.
Counters native_run_range(const NativeKernel& nk, const LaunchPlan& plan,
                          std::int64_t begin, std::int64_t end);

}  // namespace gemmtune::ir
