// Kernel container and builder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernelir/ir.hpp"

namespace gemmtune::ir {

/// Kernel argument kinds (subset of OpenCL: global pointers and scalars).
enum class ArgKind { GlobalPtr, GlobalConstPtr, Int, Float };

/// One kernel argument.
struct ArgInfo {
  std::string name;
  ArgKind kind = ArgKind::Int;
  Scalar elem = Scalar::I32;  ///< pointee/scalar element type
};

/// Address space of an IR symbol.
enum class AddrSpace { Private, Local };

/// A declared symbol: either a private scalar/vector variable
/// (array_len == 0) or an array of scalar elements in private or local
/// memory (array_len > 0; vector access uses vload/vstore semantics).
struct Symbol {
  std::string name;
  Type type;           ///< variable type, or array *element* scalar type
  int array_len = 0;   ///< 0 => plain variable
  AddrSpace space = AddrSpace::Private;
  int storage = -1;    ///< interpreter storage index within its class
};

/// A complete kernel: signature, symbol table, and body.
struct Kernel {
  std::string name;
  Scalar precision = Scalar::F64;  ///< element type of the GEMM
  std::vector<ArgInfo> args;
  std::vector<Symbol> symbols;
  std::vector<StmtPtr> body;
  std::int64_t reqd_local[2] = {0, 0};  ///< required work-group size (x, y)

  /// Total local-memory bytes declared by the kernel.
  std::int64_t local_mem_bytes() const;

  /// Estimated private elements (scalars) per work-item: plain variables
  /// (lanes each) plus private arrays. A proxy for register pressure, used
  /// by the occupancy model (paper Section III-A on unrolling/registers).
  std::int64_t private_scalars() const;
};

/// Incrementally builds a Kernel: interns symbols/arguments, hands out
/// slots, and assigns interpreter storage indices.
class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name, Scalar precision);

  /// Adds a kernel argument; returns its argument index.
  int add_arg(const std::string& name, ArgKind kind, Scalar elem);

  /// Declares a private variable; returns its symbol slot.
  int decl_var(const std::string& name, Type t);

  /// Declares an array of `len` scalar elements; returns its symbol slot.
  int decl_array(const std::string& name, Scalar elem, int len,
                 AddrSpace space);

  /// Reads a declared variable.
  ExprPtr ref(int slot) const;

  /// Sets the required work-group size.
  void set_reqd_local(std::int64_t x, std::int64_t y);

  /// Appends a top-level statement.
  void append(StmtPtr s);

  /// Finalizes and returns the kernel.
  Kernel build();

  const Symbol& symbol(int slot) const;

 private:
  Kernel k_;
  int n_priv_vars_ = 0;
  int n_priv_arrays_ = 0;
  int n_local_arrays_ = 0;
  bool built_ = false;
};

}  // namespace gemmtune::ir
