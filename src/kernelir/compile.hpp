// Bytecode compiler for IR kernels.
//
// compile() lowers an ir::Kernel into a flat register-machine program the
// bytecode VM (vm.hpp) executes instruction-major: every operand is a
// pre-resolved register slot or constant-pool entry, so the hot path never
// touches the shared_ptr expression tree, the symbol table, or a Val copy.
//
// Lowering runs four optimization passes, all restricted so that buffers
// AND dynamic counters stay bit-identical to the tree-walking interpreter:
//  * constant folding + value numbering of pure integer expressions
//    (floating arithmetic and loads/stores are never folded or CSE'd —
//    they carry counters),
//  * loop-invariant hoisting of index arithmetic into loop preheaders
//    (uniform work-group values hoist all the way to a once-per-group
//    preamble),
//  * strength reduction of the Kwi-unrolled rank-1 update into fused
//    ops: SplatLaneP (avec = splat(lane(Apm[const]))) and FmaPP
//    (Cpm[const] = mad(avec, Bpm[const], Cpm[const])) with compile-time
//    bounds-checked private-array addressing,
//  * precision-aware rounding: the per-op float32 round is a flag that F64
//    kernels simply never set, eliding round_fp entirely.
//
// Compiled programs are immutable and shared: get_or_compile() keys a
// process-wide, mutex-protected cache on the kernel's exact canonical
// serialization (no hash collisions), so the tuner's thousands of repeated
// launches compile once. Cache traffic is traced as interp.cache_hit /
// interp.cache_miss counters and an "interp.compile" span.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernelir/kernel.hpp"

namespace gemmtune::ir {

/// Bytecode operations. Prefix U = uniform integer (one value per
/// work-group), V = varying integer (one per work-item), F = floating
/// (per-item lane vectors).
enum class Op : std::uint8_t {
  Halt,
  // uniform integers
  UConst,      ///< u[dst] = imm
  UArg,        ///< u[dst] = int argument a
  UBuiltin,    ///< u[dst] = builtin (aux = fn*2 + dim)
  UAdd, USub, UMul, UDiv, UMod, ULt, UAnd,  ///< u[dst] = u[a] op u[b]
  UMov,        ///< u[dst] = u[a]
  UStepCheck,  ///< throw "for: non-positive step" unless u[a] > 0
  // varying integers (flags select uniform operands)
  VBuiltin,    ///< vi[dst] = builtin per item (aux = fn*2 + dim)
  VAdd, VSub, VMul, VDiv, VMod, VLt, VAnd,  ///< vi[dst] = a op b per item
  VMovU,       ///< vi[dst][t] = u[a]
  VMov,        ///< vi[dst][t] = vi[a][t]
  // floating
  FConst,      ///< vf[dst] = fpool[imm .. imm+lanes)
  FArg,        ///< vf[dst] = {round(arg a), 0, ...} (aux&1: round to f32)
  FMov,        ///< vf[dst][0..lanes) = vf[a]; zero-fill lanes..b (dst width)
  FSplat,      ///< vf[dst][l] = vf[a][0] (aux = src width)
  FLane,       ///< vf[dst][0] = vf[a][imm] (aux = src width)
  FAdd, FSub, FMul,  ///< lane-wise arith; aux&1 rounds to f32; counts flops
  FMad,        ///< vf[dst] = a*b+c; counts 2*lanes flops + 1 mad per item
  FmaPP,       ///< parr[a][dst..] = mad(vf[c], parr[b][imm..], parr[a][dst..])
  SplatLaneP,  ///< vf[dst][l] = parr[a][imm]; zero-fill to width b
  // memory (flags kImmAddr: address in imm, else reg b; aux&2: f32 elems)
  LoadG,       ///< vf[dst] = global arg a at address; counts bytes
  StoreG,      ///< global arg a at address = vf[c]; counts bytes
  LoadL, StoreL,  ///< local array a (aux&4: count 8-byte elems, else 4)
  LoadP, StoreP,  ///< private array a (no byte counters)
  // control flow (jump targets in imm)
  Jmp,
  JzU,         ///< jump if u[a] == 0
  JgeU,        ///< jump if u[a] >= u[b] (loop exit test)
  JNone,       ///< jump if no work-item is active
  ForCheckV,   ///< verify per-item bounds vi[a],vi[b],vi[c] uniform across
               ///< active items and step > 0; set u[dst..dst+2] =
               ///< (init, limit, step); jump imm if no item is active
  MaskPush,    ///< push mask, mask &= (vi[a] != 0)
  MaskFlip,    ///< mask = saved & (vi[cond] == 0) for the top entry
  MaskPop,     ///< restore pushed mask
  Barrier,     ///< reject divergence, count a barrier
  Throw,       ///< throw messages[imm]
};

/// Operand/behaviour flags on an instruction.
enum : std::uint8_t {
  kAUni = 1,      ///< operand a is a uniform register
  kBUni = 2,      ///< operand b is a uniform register
  kCUni = 4,      ///< operand c is a uniform register
  kMasked = 8,    ///< honour the divergence mask (skip inactive items)
  kImmAddr = 16,  ///< memory address is the compile-time constant `imm`
};

/// Aux bits (op-specific, see Op comments).
enum : std::uint8_t {
  kRoundF32 = 1,  ///< round arithmetic results through float
  kElemF32 = 2,   ///< global buffer elements are float (else double)
  kCount8 = 4,    ///< local access counts 8 bytes per lane (else 4)
};

/// One fixed-width bytecode instruction (32 bytes).
struct Insn {
  Op op = Op::Halt;
  std::uint8_t flags = 0;
  std::uint8_t lanes = 1;
  std::uint8_t aux = 0;
  std::int32_t dst = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int64_t imm = 0;
};

/// A local or private array resolved to a slab offset.
struct ArrayRef {
  std::int32_t offset = 0;  ///< element offset into its slab
  std::int32_t len = 0;     ///< elements
  bool local = false;
  std::string name;         ///< for out-of-range messages
};

/// An immutable compiled kernel: the program plus the register-file and
/// slab shapes the VM must allocate.
struct CompiledKernel {
  std::vector<Insn> code;            ///< ends with Halt
  std::vector<double> fpool;         ///< pre-rounded floating constants
  std::vector<std::string> messages; ///< Throw texts (compile-time exact)
  std::vector<ArrayRef> arrays;
  int n_u = 0;             ///< uniform int registers
  int n_vi = 0;            ///< varying int registers
  int n_vi_vars = 0;       ///< leading vi registers zeroed per group (vars)
  int n_vf = 0;            ///< per-item floating slab doubles
  int n_vf_vars = 0;       ///< leading vf doubles zeroed per group (vars)
  std::int64_t parr_doubles = 0;  ///< private slab doubles per item
  std::int64_t larr_doubles = 0;  ///< local slab doubles per group
  int max_mask_depth = 0;
};

using CompiledKernelPtr = std::shared_ptr<const CompiledKernel>;

class NativeKernel;  // native.hpp: a dlopen'd JIT-compiled kernel
using NativeKernelPtr = std::shared_ptr<const NativeKernel>;

/// Lowers `kernel` to bytecode. Deterministic; throws gemmtune::Error only
/// on IR that the builders cannot produce (malformed-but-reachable
/// constructs lower to runtime Throw instructions so dead code stays
/// launchable, exactly like the tree-walker).
CompiledKernelPtr compile(const Kernel& kernel);

/// Canonical byte serialization of a kernel; two kernels share a compiled
/// program iff their serializations are equal.
std::string serialize_kernel(const Kernel& kernel);

/// Thread-safe process-wide compiled-program cache keyed by
/// serialize_kernel(). Compiles outside the lock on a miss (first insert
/// wins). Traces interp.cache_hit / interp.cache_miss / interp.compile.
/// The cache is LRU-bounded: at most GEMMTUNE_PROGRAM_CACHE_MAX entries
/// (default 256, minimum 1); evictions bump interp.cache_evict. One entry
/// holds both the bytecode program and, when the native backend has run,
/// its dlopen'd shared object (or a sticky per-kernel native failure so
/// the JIT compiler isn't re-invoked every launch).
CompiledKernelPtr get_or_compile(const Kernel& kernel);

/// Native-backend slot of a cache entry (see native.hpp for the producer).
struct NativeSlot {
  NativeKernelPtr kernel;  ///< null when absent or failed
  bool failed = false;     ///< sticky: native compile failed for this key
  bool present = false;    ///< a native outcome (either way) is recorded
};

/// Reads / publishes the native slot for a serialized-kernel key. Stores
/// follow first-insert-wins like get_or_compile; storing refreshes the
/// entry's LRU position. Both are thread-safe.
NativeSlot native_cache_lookup(const std::string& key);
NativeKernelPtr native_cache_store(const std::string& key,
                                   NativeKernelPtr kernel, bool failed);

/// Overrides the entry cap (tests); 0 restores the environment default.
void set_program_cache_max(std::size_t cap);

/// Entries currently cached / drop all entries (tests and benchmarks).
std::size_t compiled_cache_size();
void compiled_cache_clear();

}  // namespace gemmtune::ir
